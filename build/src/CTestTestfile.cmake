# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("simcore")
subdirs("net")
subdirs("tc")
subdirs("dl")
subdirs("cluster")
subdirs("tensorlights")
subdirs("metrics")
subdirs("workload")
subdirs("exp")
