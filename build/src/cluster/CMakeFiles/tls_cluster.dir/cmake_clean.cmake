file(REMOVE_RECURSE
  "CMakeFiles/tls_cluster.dir/launcher.cpp.o"
  "CMakeFiles/tls_cluster.dir/launcher.cpp.o.d"
  "CMakeFiles/tls_cluster.dir/placement.cpp.o"
  "CMakeFiles/tls_cluster.dir/placement.cpp.o.d"
  "CMakeFiles/tls_cluster.dir/scheduler.cpp.o"
  "CMakeFiles/tls_cluster.dir/scheduler.cpp.o.d"
  "libtls_cluster.a"
  "libtls_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
