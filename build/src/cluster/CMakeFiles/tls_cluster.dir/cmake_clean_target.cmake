file(REMOVE_RECURSE
  "libtls_cluster.a"
)
