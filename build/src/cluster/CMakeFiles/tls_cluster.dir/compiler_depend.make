# Empty compiler generated dependencies file for tls_cluster.
# This may be replaced when dependencies are built.
