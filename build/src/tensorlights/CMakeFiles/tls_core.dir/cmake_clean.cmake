file(REMOVE_RECURSE
  "CMakeFiles/tls_core.dir/controller.cpp.o"
  "CMakeFiles/tls_core.dir/controller.cpp.o.d"
  "CMakeFiles/tls_core.dir/coordinator.cpp.o"
  "CMakeFiles/tls_core.dir/coordinator.cpp.o.d"
  "CMakeFiles/tls_core.dir/policy.cpp.o"
  "CMakeFiles/tls_core.dir/policy.cpp.o.d"
  "libtls_core.a"
  "libtls_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
