# Empty dependencies file for tls_net.
# This may be replaced when dependencies are built.
