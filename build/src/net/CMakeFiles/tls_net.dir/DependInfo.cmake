
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/classifier.cpp" "src/net/CMakeFiles/tls_net.dir/classifier.cpp.o" "gcc" "src/net/CMakeFiles/tls_net.dir/classifier.cpp.o.d"
  "/root/repo/src/net/fabric.cpp" "src/net/CMakeFiles/tls_net.dir/fabric.cpp.o" "gcc" "src/net/CMakeFiles/tls_net.dir/fabric.cpp.o.d"
  "/root/repo/src/net/htb_qdisc.cpp" "src/net/CMakeFiles/tls_net.dir/htb_qdisc.cpp.o" "gcc" "src/net/CMakeFiles/tls_net.dir/htb_qdisc.cpp.o.d"
  "/root/repo/src/net/pfifo_fast_qdisc.cpp" "src/net/CMakeFiles/tls_net.dir/pfifo_fast_qdisc.cpp.o" "gcc" "src/net/CMakeFiles/tls_net.dir/pfifo_fast_qdisc.cpp.o.d"
  "/root/repo/src/net/pfifo_qdisc.cpp" "src/net/CMakeFiles/tls_net.dir/pfifo_qdisc.cpp.o" "gcc" "src/net/CMakeFiles/tls_net.dir/pfifo_qdisc.cpp.o.d"
  "/root/repo/src/net/port.cpp" "src/net/CMakeFiles/tls_net.dir/port.cpp.o" "gcc" "src/net/CMakeFiles/tls_net.dir/port.cpp.o.d"
  "/root/repo/src/net/prio_qdisc.cpp" "src/net/CMakeFiles/tls_net.dir/prio_qdisc.cpp.o" "gcc" "src/net/CMakeFiles/tls_net.dir/prio_qdisc.cpp.o.d"
  "/root/repo/src/net/tbf_qdisc.cpp" "src/net/CMakeFiles/tls_net.dir/tbf_qdisc.cpp.o" "gcc" "src/net/CMakeFiles/tls_net.dir/tbf_qdisc.cpp.o.d"
  "/root/repo/src/net/wdrr.cpp" "src/net/CMakeFiles/tls_net.dir/wdrr.cpp.o" "gcc" "src/net/CMakeFiles/tls_net.dir/wdrr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/tls_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
