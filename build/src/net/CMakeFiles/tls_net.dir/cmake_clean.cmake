file(REMOVE_RECURSE
  "CMakeFiles/tls_net.dir/classifier.cpp.o"
  "CMakeFiles/tls_net.dir/classifier.cpp.o.d"
  "CMakeFiles/tls_net.dir/fabric.cpp.o"
  "CMakeFiles/tls_net.dir/fabric.cpp.o.d"
  "CMakeFiles/tls_net.dir/htb_qdisc.cpp.o"
  "CMakeFiles/tls_net.dir/htb_qdisc.cpp.o.d"
  "CMakeFiles/tls_net.dir/pfifo_fast_qdisc.cpp.o"
  "CMakeFiles/tls_net.dir/pfifo_fast_qdisc.cpp.o.d"
  "CMakeFiles/tls_net.dir/pfifo_qdisc.cpp.o"
  "CMakeFiles/tls_net.dir/pfifo_qdisc.cpp.o.d"
  "CMakeFiles/tls_net.dir/port.cpp.o"
  "CMakeFiles/tls_net.dir/port.cpp.o.d"
  "CMakeFiles/tls_net.dir/prio_qdisc.cpp.o"
  "CMakeFiles/tls_net.dir/prio_qdisc.cpp.o.d"
  "CMakeFiles/tls_net.dir/tbf_qdisc.cpp.o"
  "CMakeFiles/tls_net.dir/tbf_qdisc.cpp.o.d"
  "CMakeFiles/tls_net.dir/wdrr.cpp.o"
  "CMakeFiles/tls_net.dir/wdrr.cpp.o.d"
  "libtls_net.a"
  "libtls_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
