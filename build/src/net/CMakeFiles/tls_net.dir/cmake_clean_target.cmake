file(REMOVE_RECURSE
  "libtls_net.a"
)
