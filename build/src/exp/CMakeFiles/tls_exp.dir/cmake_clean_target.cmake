file(REMOVE_RECURSE
  "libtls_exp.a"
)
