file(REMOVE_RECURSE
  "CMakeFiles/tls_exp.dir/cli.cpp.o"
  "CMakeFiles/tls_exp.dir/cli.cpp.o.d"
  "CMakeFiles/tls_exp.dir/experiment.cpp.o"
  "CMakeFiles/tls_exp.dir/experiment.cpp.o.d"
  "CMakeFiles/tls_exp.dir/export.cpp.o"
  "CMakeFiles/tls_exp.dir/export.cpp.o.d"
  "libtls_exp.a"
  "libtls_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
