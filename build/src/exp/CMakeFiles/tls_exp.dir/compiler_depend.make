# Empty compiler generated dependencies file for tls_exp.
# This may be replaced when dependencies are built.
