file(REMOVE_RECURSE
  "CMakeFiles/tls_simcore.dir/event_queue.cpp.o"
  "CMakeFiles/tls_simcore.dir/event_queue.cpp.o.d"
  "CMakeFiles/tls_simcore.dir/log.cpp.o"
  "CMakeFiles/tls_simcore.dir/log.cpp.o.d"
  "CMakeFiles/tls_simcore.dir/rng.cpp.o"
  "CMakeFiles/tls_simcore.dir/rng.cpp.o.d"
  "CMakeFiles/tls_simcore.dir/simulator.cpp.o"
  "CMakeFiles/tls_simcore.dir/simulator.cpp.o.d"
  "libtls_simcore.a"
  "libtls_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
