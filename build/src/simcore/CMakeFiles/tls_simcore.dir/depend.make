# Empty dependencies file for tls_simcore.
# This may be replaced when dependencies are built.
