file(REMOVE_RECURSE
  "libtls_simcore.a"
)
