
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/background.cpp" "src/workload/CMakeFiles/tls_workload.dir/background.cpp.o" "gcc" "src/workload/CMakeFiles/tls_workload.dir/background.cpp.o.d"
  "/root/repo/src/workload/gridsearch.cpp" "src/workload/CMakeFiles/tls_workload.dir/gridsearch.cpp.o" "gcc" "src/workload/CMakeFiles/tls_workload.dir/gridsearch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dl/CMakeFiles/tls_dl.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tls_net.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/tls_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
