# Empty dependencies file for tls_workload.
# This may be replaced when dependencies are built.
