file(REMOVE_RECURSE
  "CMakeFiles/tls_workload.dir/background.cpp.o"
  "CMakeFiles/tls_workload.dir/background.cpp.o.d"
  "CMakeFiles/tls_workload.dir/gridsearch.cpp.o"
  "CMakeFiles/tls_workload.dir/gridsearch.cpp.o.d"
  "libtls_workload.a"
  "libtls_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
