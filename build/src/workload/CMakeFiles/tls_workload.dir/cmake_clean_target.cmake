file(REMOVE_RECURSE
  "libtls_workload.a"
)
