# Empty dependencies file for tls_metrics.
# This may be replaced when dependencies are built.
