file(REMOVE_RECURSE
  "libtls_metrics.a"
)
