file(REMOVE_RECURSE
  "CMakeFiles/tls_metrics.dir/report.cpp.o"
  "CMakeFiles/tls_metrics.dir/report.cpp.o.d"
  "CMakeFiles/tls_metrics.dir/stats.cpp.o"
  "CMakeFiles/tls_metrics.dir/stats.cpp.o.d"
  "CMakeFiles/tls_metrics.dir/util_sampler.cpp.o"
  "CMakeFiles/tls_metrics.dir/util_sampler.cpp.o.d"
  "libtls_metrics.a"
  "libtls_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
