# Empty dependencies file for tls_dl.
# This may be replaced when dependencies are built.
