file(REMOVE_RECURSE
  "CMakeFiles/tls_dl.dir/barrier_log.cpp.o"
  "CMakeFiles/tls_dl.dir/barrier_log.cpp.o.d"
  "CMakeFiles/tls_dl.dir/job_runtime.cpp.o"
  "CMakeFiles/tls_dl.dir/job_runtime.cpp.o.d"
  "CMakeFiles/tls_dl.dir/model.cpp.o"
  "CMakeFiles/tls_dl.dir/model.cpp.o.d"
  "libtls_dl.a"
  "libtls_dl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_dl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
