file(REMOVE_RECURSE
  "libtls_dl.a"
)
