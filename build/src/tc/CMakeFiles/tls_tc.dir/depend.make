# Empty dependencies file for tls_tc.
# This may be replaced when dependencies are built.
