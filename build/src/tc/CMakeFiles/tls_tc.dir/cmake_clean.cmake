file(REMOVE_RECURSE
  "CMakeFiles/tls_tc.dir/parser.cpp.o"
  "CMakeFiles/tls_tc.dir/parser.cpp.o.d"
  "CMakeFiles/tls_tc.dir/spec.cpp.o"
  "CMakeFiles/tls_tc.dir/spec.cpp.o.d"
  "CMakeFiles/tls_tc.dir/tc.cpp.o"
  "CMakeFiles/tls_tc.dir/tc.cpp.o.d"
  "libtls_tc.a"
  "libtls_tc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_tc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
