file(REMOVE_RECURSE
  "libtls_tc.a"
)
