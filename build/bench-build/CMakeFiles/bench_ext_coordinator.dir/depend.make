# Empty dependencies file for bench_ext_coordinator.
# This may be replaced when dependencies are built.
