file(REMOVE_RECURSE
  "../bench/bench_ext_coordinator"
  "../bench/bench_ext_coordinator.pdb"
  "CMakeFiles/bench_ext_coordinator.dir/bench_ext_coordinator.cpp.o"
  "CMakeFiles/bench_ext_coordinator.dir/bench_ext_coordinator.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_coordinator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
