# Empty compiler generated dependencies file for bench_ablate_assigner.
# This may be replaced when dependencies are built.
