file(REMOVE_RECURSE
  "../bench/bench_ablate_assigner"
  "../bench/bench_ablate_assigner.pdb"
  "CMakeFiles/bench_ablate_assigner.dir/bench_ablate_assigner.cpp.o"
  "CMakeFiles/bench_ablate_assigner.dir/bench_ablate_assigner.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_assigner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
