file(REMOVE_RECURSE
  "../bench/bench_ablate_interval"
  "../bench/bench_ablate_interval.pdb"
  "CMakeFiles/bench_ablate_interval.dir/bench_ablate_interval.cpp.o"
  "CMakeFiles/bench_ablate_interval.dir/bench_ablate_interval.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
