# Empty dependencies file for bench_ablate_scheduler.
# This may be replaced when dependencies are built.
