file(REMOVE_RECURSE
  "../bench/bench_ablate_scheduler"
  "../bench/bench_ablate_scheduler.pdb"
  "CMakeFiles/bench_ablate_scheduler.dir/bench_ablate_scheduler.cpp.o"
  "CMakeFiles/bench_ablate_scheduler.dir/bench_ablate_scheduler.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
