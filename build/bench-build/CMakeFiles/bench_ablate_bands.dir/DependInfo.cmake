
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablate_bands.cpp" "bench-build/CMakeFiles/bench_ablate_bands.dir/bench_ablate_bands.cpp.o" "gcc" "bench-build/CMakeFiles/bench_ablate_bands.dir/bench_ablate_bands.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/tls_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/tensorlights/CMakeFiles/tls_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tc/CMakeFiles/tls_tc.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/tls_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/tls_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tls_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/dl/CMakeFiles/tls_dl.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tls_net.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/tls_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
