file(REMOVE_RECURSE
  "../bench/bench_ablate_bands"
  "../bench/bench_ablate_bands.pdb"
  "CMakeFiles/bench_ablate_bands.dir/bench_ablate_bands.cpp.o"
  "CMakeFiles/bench_ablate_bands.dir/bench_ablate_bands.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_bands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
