# Empty compiler generated dependencies file for bench_ablate_bands.
# This may be replaced when dependencies are built.
