file(REMOVE_RECURSE
  "../bench/bench_ablate_two_sided"
  "../bench/bench_ablate_two_sided.pdb"
  "CMakeFiles/bench_ablate_two_sided.dir/bench_ablate_two_sided.cpp.o"
  "CMakeFiles/bench_ablate_two_sided.dir/bench_ablate_two_sided.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_two_sided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
