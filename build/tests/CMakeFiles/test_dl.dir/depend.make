# Empty dependencies file for test_dl.
# This may be replaced when dependencies are built.
