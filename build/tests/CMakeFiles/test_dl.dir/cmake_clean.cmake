file(REMOVE_RECURSE
  "CMakeFiles/test_dl.dir/dl/barrier_log_test.cpp.o"
  "CMakeFiles/test_dl.dir/dl/barrier_log_test.cpp.o.d"
  "CMakeFiles/test_dl.dir/dl/job_runtime_test.cpp.o"
  "CMakeFiles/test_dl.dir/dl/job_runtime_test.cpp.o.d"
  "CMakeFiles/test_dl.dir/dl/model_test.cpp.o"
  "CMakeFiles/test_dl.dir/dl/model_test.cpp.o.d"
  "CMakeFiles/test_dl.dir/dl/multi_ps_test.cpp.o"
  "CMakeFiles/test_dl.dir/dl/multi_ps_test.cpp.o.d"
  "CMakeFiles/test_dl.dir/dl/transmission_gate_test.cpp.o"
  "CMakeFiles/test_dl.dir/dl/transmission_gate_test.cpp.o.d"
  "test_dl"
  "test_dl.pdb"
  "test_dl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
