# Empty dependencies file for test_tensorlights.
# This may be replaced when dependencies are built.
