file(REMOVE_RECURSE
  "CMakeFiles/test_tensorlights.dir/tensorlights/controller_test.cpp.o"
  "CMakeFiles/test_tensorlights.dir/tensorlights/controller_test.cpp.o.d"
  "CMakeFiles/test_tensorlights.dir/tensorlights/coordinator_test.cpp.o"
  "CMakeFiles/test_tensorlights.dir/tensorlights/coordinator_test.cpp.o.d"
  "CMakeFiles/test_tensorlights.dir/tensorlights/multi_ps_controller_test.cpp.o"
  "CMakeFiles/test_tensorlights.dir/tensorlights/multi_ps_controller_test.cpp.o.d"
  "CMakeFiles/test_tensorlights.dir/tensorlights/policy_test.cpp.o"
  "CMakeFiles/test_tensorlights.dir/tensorlights/policy_test.cpp.o.d"
  "CMakeFiles/test_tensorlights.dir/tensorlights/two_sided_test.cpp.o"
  "CMakeFiles/test_tensorlights.dir/tensorlights/two_sided_test.cpp.o.d"
  "test_tensorlights"
  "test_tensorlights.pdb"
  "test_tensorlights[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tensorlights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
