file(REMOVE_RECURSE
  "CMakeFiles/test_net.dir/net/classifier_test.cpp.o"
  "CMakeFiles/test_net.dir/net/classifier_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/fabric_test.cpp.o"
  "CMakeFiles/test_net.dir/net/fabric_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/htb_qdisc_test.cpp.o"
  "CMakeFiles/test_net.dir/net/htb_qdisc_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/pfifo_fast_tbf_test.cpp.o"
  "CMakeFiles/test_net.dir/net/pfifo_fast_tbf_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/pfifo_qdisc_test.cpp.o"
  "CMakeFiles/test_net.dir/net/pfifo_qdisc_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/port_test.cpp.o"
  "CMakeFiles/test_net.dir/net/port_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/prio_qdisc_test.cpp.o"
  "CMakeFiles/test_net.dir/net/prio_qdisc_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/qdisc_properties_test.cpp.o"
  "CMakeFiles/test_net.dir/net/qdisc_properties_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/qdisc_stats_test.cpp.o"
  "CMakeFiles/test_net.dir/net/qdisc_stats_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/wdrr_test.cpp.o"
  "CMakeFiles/test_net.dir/net/wdrr_test.cpp.o.d"
  "test_net"
  "test_net.pdb"
  "test_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
