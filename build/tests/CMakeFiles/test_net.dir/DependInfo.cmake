
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/classifier_test.cpp" "tests/CMakeFiles/test_net.dir/net/classifier_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/classifier_test.cpp.o.d"
  "/root/repo/tests/net/fabric_test.cpp" "tests/CMakeFiles/test_net.dir/net/fabric_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/fabric_test.cpp.o.d"
  "/root/repo/tests/net/htb_qdisc_test.cpp" "tests/CMakeFiles/test_net.dir/net/htb_qdisc_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/htb_qdisc_test.cpp.o.d"
  "/root/repo/tests/net/pfifo_fast_tbf_test.cpp" "tests/CMakeFiles/test_net.dir/net/pfifo_fast_tbf_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/pfifo_fast_tbf_test.cpp.o.d"
  "/root/repo/tests/net/pfifo_qdisc_test.cpp" "tests/CMakeFiles/test_net.dir/net/pfifo_qdisc_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/pfifo_qdisc_test.cpp.o.d"
  "/root/repo/tests/net/port_test.cpp" "tests/CMakeFiles/test_net.dir/net/port_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/port_test.cpp.o.d"
  "/root/repo/tests/net/prio_qdisc_test.cpp" "tests/CMakeFiles/test_net.dir/net/prio_qdisc_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/prio_qdisc_test.cpp.o.d"
  "/root/repo/tests/net/qdisc_properties_test.cpp" "tests/CMakeFiles/test_net.dir/net/qdisc_properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/qdisc_properties_test.cpp.o.d"
  "/root/repo/tests/net/qdisc_stats_test.cpp" "tests/CMakeFiles/test_net.dir/net/qdisc_stats_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/qdisc_stats_test.cpp.o.d"
  "/root/repo/tests/net/wdrr_test.cpp" "tests/CMakeFiles/test_net.dir/net/wdrr_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/wdrr_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/tls_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/tensorlights/CMakeFiles/tls_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tc/CMakeFiles/tls_tc.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/tls_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/tls_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tls_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/dl/CMakeFiles/tls_dl.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tls_net.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/tls_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
