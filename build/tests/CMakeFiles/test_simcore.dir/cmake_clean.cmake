file(REMOVE_RECURSE
  "CMakeFiles/test_simcore.dir/simcore/event_queue_test.cpp.o"
  "CMakeFiles/test_simcore.dir/simcore/event_queue_test.cpp.o.d"
  "CMakeFiles/test_simcore.dir/simcore/log_test.cpp.o"
  "CMakeFiles/test_simcore.dir/simcore/log_test.cpp.o.d"
  "CMakeFiles/test_simcore.dir/simcore/rng_test.cpp.o"
  "CMakeFiles/test_simcore.dir/simcore/rng_test.cpp.o.d"
  "CMakeFiles/test_simcore.dir/simcore/simulator_test.cpp.o"
  "CMakeFiles/test_simcore.dir/simcore/simulator_test.cpp.o.d"
  "CMakeFiles/test_simcore.dir/simcore/time_test.cpp.o"
  "CMakeFiles/test_simcore.dir/simcore/time_test.cpp.o.d"
  "test_simcore"
  "test_simcore.pdb"
  "test_simcore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
