file(REMOVE_RECURSE
  "CMakeFiles/test_tc.dir/tc/parser_test.cpp.o"
  "CMakeFiles/test_tc.dir/tc/parser_test.cpp.o.d"
  "CMakeFiles/test_tc.dir/tc/spec_test.cpp.o"
  "CMakeFiles/test_tc.dir/tc/spec_test.cpp.o.d"
  "CMakeFiles/test_tc.dir/tc/tc_qdisc_kinds_test.cpp.o"
  "CMakeFiles/test_tc.dir/tc/tc_qdisc_kinds_test.cpp.o.d"
  "CMakeFiles/test_tc.dir/tc/tc_test.cpp.o"
  "CMakeFiles/test_tc.dir/tc/tc_test.cpp.o.d"
  "test_tc"
  "test_tc.pdb"
  "test_tc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
