# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_simcore[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_tc[1]_include.cmake")
include("/root/repo/build/tests/test_dl[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_tensorlights[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_exp[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
