file(REMOVE_RECURSE
  "CMakeFiles/tlsim.dir/tlsim.cpp.o"
  "CMakeFiles/tlsim.dir/tlsim.cpp.o.d"
  "tlsim"
  "tlsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
