file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_mix.dir/heterogeneous_mix.cpp.o"
  "CMakeFiles/heterogeneous_mix.dir/heterogeneous_mix.cpp.o.d"
  "heterogeneous_mix"
  "heterogeneous_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
