# Empty compiler generated dependencies file for heterogeneous_mix.
# This may be replaced when dependencies are built.
