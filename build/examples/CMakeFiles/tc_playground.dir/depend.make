# Empty dependencies file for tc_playground.
# This may be replaced when dependencies are built.
