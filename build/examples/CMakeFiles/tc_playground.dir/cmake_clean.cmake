file(REMOVE_RECURSE
  "CMakeFiles/tc_playground.dir/tc_playground.cpp.o"
  "CMakeFiles/tc_playground.dir/tc_playground.cpp.o.d"
  "tc_playground"
  "tc_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
