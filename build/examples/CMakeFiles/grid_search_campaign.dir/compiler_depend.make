# Empty compiler generated dependencies file for grid_search_campaign.
# This may be replaced when dependencies are built.
