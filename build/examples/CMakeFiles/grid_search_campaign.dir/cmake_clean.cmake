file(REMOVE_RECURSE
  "CMakeFiles/grid_search_campaign.dir/grid_search_campaign.cpp.o"
  "CMakeFiles/grid_search_campaign.dir/grid_search_campaign.cpp.o.d"
  "grid_search_campaign"
  "grid_search_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_search_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
