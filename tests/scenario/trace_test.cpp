#include "scenario/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace tls::scenario {
namespace {

TraceConfig small_config() {
  TraceConfig c;
  c.num_jobs = 40;
  c.mean_interarrival_s = 5;
  c.models = {"resnet32_cifar10", "alexnet"};
  c.min_workers = 2;
  c.max_workers = 5;
  c.min_iterations = 10;
  c.max_iterations = 30;
  c.seed = 7;
  return c;
}

TEST(Trace, GenerationIsDeterministic) {
  TraceConfig c = small_config();
  Trace a = generate_trace(c);
  Trace b = generate_trace(c);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  EXPECT_EQ(trace_csv(a), trace_csv(b));
}

TEST(Trace, DifferentSeedsDiffer) {
  TraceConfig c = small_config();
  Trace a = generate_trace(c);
  c.seed = 8;
  Trace b = generate_trace(c);
  EXPECT_NE(trace_csv(a), trace_csv(b));
}

TEST(Trace, ArrivalsNondecreasingAndFieldsInRange) {
  TraceConfig c = small_config();
  Trace t = generate_trace(c);
  ASSERT_EQ(t.jobs.size(), static_cast<std::size_t>(c.num_jobs));
  sim::Time prev{};
  for (const TraceJob& j : t.jobs) {
    EXPECT_GE(j.arrival, prev);
    prev = j.arrival;
    EXPECT_GE(j.num_workers, c.min_workers);
    EXPECT_LE(j.num_workers, c.max_workers);
    EXPECT_GE(j.iterations, c.min_iterations);
    EXPECT_LE(j.iterations, c.max_iterations);
    EXPECT_TRUE(j.model == "resnet32_cifar10" || j.model == "alexnet")
        << j.model;
    EXPECT_EQ(j.lifetime, sim::Time{});  // evict_fraction = 0
  }
}

TEST(Trace, BoundedParetoStaysWithinBounds) {
  // Inverse CDF: u = 0 must map to lo, u -> 1 must approach hi.
  EXPECT_DOUBLE_EQ(bounded_pareto(0.0, 1.5, 2.0, 600.0), 2.0);
  for (double u = 0.0; u < 1.0; u += 0.01) {
    double x = bounded_pareto(u, 1.5, 2.0, 600.0);
    EXPECT_GE(x, 2.0) << "u=" << u;
    EXPECT_LE(x, 600.0) << "u=" << u;
  }
  EXPECT_NEAR(bounded_pareto(std::nextafter(1.0, 0.0), 1.5, 2.0, 600.0), 600.0,
              1e-6);
}

TEST(Trace, ParetoInterarrivalsRespectConfiguredBounds) {
  TraceConfig c = small_config();
  c.process = ArrivalProcess::kParetoBounded;
  c.pareto_alpha = 1.2;
  c.pareto_min_s = 3;
  c.pareto_max_s = 50;
  Trace t = generate_trace(c);
  sim::Time prev{};
  for (const TraceJob& j : t.jobs) {
    double gap_s = sim::to_seconds(j.arrival) - sim::to_seconds(prev);
    EXPECT_GE(gap_s, 3 - 1e-9);
    EXPECT_LE(gap_s, 50 + 1e-9);
    prev = j.arrival;
  }
}

TEST(Trace, EvictFractionOneGivesEveryJobALifetime) {
  TraceConfig c = small_config();
  c.evict_fraction = 1.0;
  c.evict_min_s = 10;
  c.evict_max_s = 20;
  Trace t = generate_trace(c);
  for (const TraceJob& j : t.jobs) {
    double life_s = sim::to_seconds(j.lifetime);
    EXPECT_GE(life_s, 10 - 1e-9);
    EXPECT_LE(life_s, 20 + 1e-9);
  }
}

TEST(Trace, CsvRoundTripIsExact) {
  TraceConfig c = small_config();
  c.evict_fraction = 0.5;
  Trace t = generate_trace(c);
  std::string csv = trace_csv(t);
  Trace parsed;
  std::string error;
  ASSERT_TRUE(parse_trace_csv(csv, &parsed, &error)) << error;
  ASSERT_EQ(parsed.jobs.size(), t.jobs.size());
  for (std::size_t i = 0; i < t.jobs.size(); ++i) {
    EXPECT_EQ(parsed.jobs[i].job_id, t.jobs[i].job_id);
    EXPECT_EQ(parsed.jobs[i].arrival, t.jobs[i].arrival);
    EXPECT_EQ(parsed.jobs[i].lifetime, t.jobs[i].lifetime);
    EXPECT_EQ(parsed.jobs[i].model, t.jobs[i].model);
    EXPECT_EQ(parsed.jobs[i].num_workers, t.jobs[i].num_workers);
    EXPECT_EQ(parsed.jobs[i].local_batch_size, t.jobs[i].local_batch_size);
    EXPECT_EQ(parsed.jobs[i].iterations, t.jobs[i].iterations);
  }
  // And the re-serialization is byte-identical.
  EXPECT_EQ(trace_csv(parsed), csv);
}

TEST(Trace, ParseSortsByArrivalThenJobId) {
  std::string csv =
      "job_id,arrival_s,lifetime_s,model,workers,batch,iterations\n"
      "2,5.0,0.0,alexnet,2,1,10\n"
      "1,1.0,0.0,alexnet,2,1,10\n"
      "0,5.0,0.0,alexnet,2,1,10\n";
  Trace t;
  std::string error;
  ASSERT_TRUE(parse_trace_csv(csv, &t, &error)) << error;
  ASSERT_EQ(t.jobs.size(), 3u);
  EXPECT_EQ(t.jobs[0].job_id, 1);
  EXPECT_EQ(t.jobs[1].job_id, 0);
  EXPECT_EQ(t.jobs[2].job_id, 2);
}

TEST(Trace, ParseRejectsWrongFieldCount) {
  Trace t;
  std::string error;
  EXPECT_FALSE(parse_trace_csv("0,1.0,0.0,alexnet,2,1\n", &t, &error));
  EXPECT_NE(error.find("expected 7 fields"), std::string::npos) << error;
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

TEST(Trace, ParseRejectsBadValues) {
  Trace t;
  std::string error;
  EXPECT_FALSE(
      parse_trace_csv("x,1.0,0.0,alexnet,2,1,10\n", &t, &error));
  EXPECT_NE(error.find("bad job_id"), std::string::npos) << error;
  EXPECT_FALSE(
      parse_trace_csv("0,-1.0,0.0,alexnet,2,1,10\n", &t, &error));
  EXPECT_NE(error.find("bad arrival_s"), std::string::npos) << error;
  EXPECT_FALSE(parse_trace_csv("0,1.0,0.0,alexnet,0,1,10\n", &t, &error));
  EXPECT_NE(error.find("bad workers"), std::string::npos) << error;
  EXPECT_FALSE(parse_trace_csv("0,1.0,0.0,,2,1,10\n", &t, &error));
  EXPECT_NE(error.find("empty model"), std::string::npos) << error;
}

TEST(Trace, ParseRejectsDuplicateJobIds) {
  std::string csv =
      "0,1.0,0.0,alexnet,2,1,10\n"
      "0,2.0,0.0,alexnet,2,1,10\n";
  Trace t;
  std::string error;
  EXPECT_FALSE(parse_trace_csv(csv, &t, &error));
  EXPECT_NE(error.find("duplicate job_id"), std::string::npos) << error;
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(Trace, ModelMixParsesNamesAndExpandsMix) {
  std::vector<std::string> models;
  std::string error;
  ASSERT_TRUE(parse_model_mix("alexnet,vgg16", &models, &error)) << error;
  ASSERT_EQ(models.size(), 2u);
  EXPECT_EQ(models[0], "alexnet");
  EXPECT_EQ(models[1], "vgg16");

  ASSERT_TRUE(parse_model_mix("mix", &models, &error)) << error;
  EXPECT_GE(models.size(), 4u);  // the whole zoo
}

TEST(Trace, ModelMixRejectsUnknownListingValidNames) {
  std::vector<std::string> models;
  std::string error;
  EXPECT_FALSE(parse_model_mix("resnet999", &models, &error));
  EXPECT_NE(error.find("unknown model 'resnet999'"), std::string::npos)
      << error;
  EXPECT_NE(error.find("resnet32_cifar10"), std::string::npos) << error;
  EXPECT_NE(error.find("|mix"), std::string::npos) << error;

  EXPECT_FALSE(parse_model_mix("", &models, &error));
  EXPECT_NE(error.find("empty model mix"), std::string::npos) << error;
}

TEST(Trace, GenerateValidatesConfig) {
  TraceConfig c = small_config();
  c.num_jobs = 0;
  EXPECT_THROW(generate_trace(c), std::invalid_argument);

  c = small_config();
  c.mean_interarrival_s = 0;
  EXPECT_THROW(generate_trace(c), std::invalid_argument);

  c = small_config();
  c.models = {"no_such_model"};
  EXPECT_THROW(generate_trace(c), std::invalid_argument);

  c = small_config();
  c.min_workers = 4;
  c.max_workers = 2;
  EXPECT_THROW(generate_trace(c), std::invalid_argument);

  c = small_config();
  c.evict_fraction = 1.5;
  EXPECT_THROW(generate_trace(c), std::invalid_argument);

  c = small_config();
  c.process = ArrivalProcess::kParetoBounded;
  c.pareto_max_s = c.pareto_min_s;
  EXPECT_THROW(generate_trace(c), std::invalid_argument);
}

TEST(Trace, ArrivalProcessNames) {
  EXPECT_STREQ(to_string(ArrivalProcess::kPoisson), "poisson");
  EXPECT_STREQ(to_string(ArrivalProcess::kParetoBounded), "pareto");
}

}  // namespace
}  // namespace tls::scenario
