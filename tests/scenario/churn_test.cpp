// Churn leak checks: a dynamic cluster admits, departs, and re-admits
// jobs for hours, so every per-job resource — scheduler load accounting,
// controller band maps, fabric flows, egress backlogs, PS port slots —
// must return to zero when a job leaves, whether it completed or was
// evicted mid-flight.
#include <gtest/gtest.h>

#include "cluster/launcher.hpp"
#include "cluster/scheduler.hpp"
#include "dl/model.hpp"
#include "scenario/engine.hpp"
#include "scenario/export.hpp"
#include "tensorlights/controller.hpp"

namespace tls::scenario {
namespace {

class ChurnTest : public ::testing::Test {
 protected:
  static constexpr int kHosts = 4;

  ChurnTest()
      : fabric_(sim_, fabric_config()),
        control_(fabric_),
        controller_(sim_, control_, controller_config()),
        scheduler_(kHosts, cluster::SchedulerPolicy::kPsAware),
        launcher_(sim_, fabric_) {
    launcher_.add_listener(&controller_);
  }

  static net::FabricConfig fabric_config() {
    net::FabricConfig c;
    c.num_hosts = kHosts;
    return c;
  }

  static core::ControllerConfig controller_config() {
    core::ControllerConfig c;
    c.policy = core::PolicyKind::kTlsOne;  // no rotation timer: queue drains
    return c;
  }

  dl::JobSpec spec(std::int32_t job_id, std::int64_t iterations) {
    dl::JobSpec s;
    s.job_id = job_id;
    s.model = dl::zoo::resnet32_cifar10();
    s.num_workers = 2;
    s.local_batch_size = 1;
    s.global_step_target = iterations * s.num_workers;
    return s;
  }

  /// try_place + admit; scheduler accounting is released on departure,
  /// exactly as the scenario engine wires it.
  dl::JobRuntime& admit(dl::JobSpec s) {
    cluster::Admission a = scheduler_.try_place(s);
    EXPECT_EQ(a.outcome, cluster::AdmissionOutcome::kPlaced);
    return launcher_.admit(std::move(s), std::move(a.placement), {},
                           [this](const dl::JobRuntime& j) {
                             scheduler_.remove(j.spec(), j.placement());
                           });
  }

  void run_until_idle() { sim_.run(sim_.now() + 3600 * sim::kSecond); }

  void expect_no_residue() {
    EXPECT_EQ(fabric_.active_flows(), 0u);
    EXPECT_EQ(controller_.total_managed_jobs(), 0);
    for (net::HostId h{0}; h < net::HostId{kHosts}; ++h) {
      EXPECT_EQ(scheduler_.task_count(h), 0) << "host " << h.idx();
      EXPECT_EQ(scheduler_.ps_count(h), 0) << "host " << h.idx();
      EXPECT_EQ(controller_.managed_job_count(h), 0) << "host " << h.idx();
      const net::EgressPort& port = fabric_.egress(h);
      EXPECT_FALSE(port.busy()) << "host " << h.idx();
      EXPECT_EQ(port.qdisc().backlog_chunks(), 0u) << "host " << h.idx();
      EXPECT_EQ(port.qdisc().backlog_bytes(), net::Bytes{0}) << "host " << h.idx();
    }
  }

  sim::Simulator sim_{11};
  net::Fabric fabric_;
  tc::TrafficControl control_;
  core::Controller controller_;
  cluster::OnlineScheduler scheduler_;
  cluster::Launcher launcher_;
};

TEST_F(ChurnTest, AdmitDepartReadmitLeavesNoResidue) {
  for (std::int32_t round = 0; round < 3; ++round) {
    dl::JobRuntime& job = admit(spec(round, 3));
    run_until_idle();
    EXPECT_TRUE(job.finished());
    EXPECT_FALSE(job.evicted());
    expect_no_residue();
  }
  EXPECT_EQ(launcher_.finished_count(), 3);
}

TEST_F(ChurnTest, MidFlightEvictionDrainsEveryByte) {
  // A job that would run for a very long time, cut down after one second:
  // in-flight flows must still deliver (or cancel) completely, leaving no
  // backlog stranded in any qdisc and no flow alive in the fabric.
  dl::JobRuntime& job = admit(spec(0, 1'000'000));
  sim_.run(1 * sim::kSecond);
  EXPECT_FALSE(job.finished());
  launcher_.evict(job);
  run_until_idle();
  EXPECT_TRUE(job.finished());
  EXPECT_TRUE(job.evicted());
  EXPECT_GT(job.iteration(), 0);
  expect_no_residue();
}

TEST_F(ChurnTest, EvictionIsNoOpOnFinishedJob) {
  dl::JobRuntime& job = admit(spec(0, 2));
  run_until_idle();
  ASSERT_TRUE(job.finished());
  launcher_.evict(job);
  run_until_idle();
  EXPECT_FALSE(job.evicted());
  EXPECT_EQ(launcher_.finished_count(), 1);
}

TEST_F(ChurnTest, PortSlotsAreRecycledAcrossGenerations) {
  dl::JobRuntime& a = admit(spec(0, 2));
  std::uint16_t first_port = a.spec().ps_port;
  run_until_idle();
  ASSERT_TRUE(a.finished());
  // The departed job's slot is the lowest free one, so the next admit
  // reuses it — churn never walks off the 16-bit port space.
  dl::JobRuntime& b = admit(spec(1, 2));
  EXPECT_EQ(b.spec().ps_port, first_port);
  run_until_idle();
  expect_no_residue();
}

TEST_F(ChurnTest, ConcurrentJobsDepartIndependently) {
  dl::JobRuntime& lhs = admit(spec(0, 1'000'000));
  dl::JobRuntime& rhs = admit(spec(1, 3));
  sim_.run(500 * sim::kMillisecond);
  launcher_.evict(lhs);
  run_until_idle();
  EXPECT_TRUE(lhs.evicted());
  EXPECT_TRUE(rhs.finished());
  EXPECT_FALSE(rhs.evicted());
  expect_no_residue();
}

// Engine-level churn: a heavy-eviction queue-admission scenario stays
// deterministic and drains its whole trace.
TEST(ChurnScenario, EvictionChurnIsDeterministicAndDrains) {
  Config c;
  c.num_hosts = 4;
  c.cores_per_host = 4;
  c.admission = cluster::AdmissionPolicy::kQueue;
  c.ps_band_limit = 1;
  c.controller.policy = core::PolicyKind::kTlsRR;
  c.controller.rotation_interval = 2 * sim::kSecond;
  c.sample_period = sim::Time{0};
  c.trace.num_jobs = 10;
  c.trace.mean_interarrival_s = 1;
  c.trace.min_workers = 2;
  c.trace.max_workers = 3;
  c.trace.min_iterations = 3;
  c.trace.max_iterations = 6;
  c.trace.local_batch_size = 1;
  c.trace.evict_fraction = 0.5;
  c.trace.evict_min_s = 1;
  c.trace.evict_max_s = 4;
  c.trace.seed = 21;
  c.seed = 13;

  Result a = run_scenario(c);
  Result b = run_scenario(c);
  EXPECT_EQ(scenario_json(a), scenario_json(b));
  EXPECT_TRUE(a.trace_drained);
  EXPECT_EQ(a.completed + a.evicted + a.rejected + a.unfinished, 10u);
  EXPECT_EQ(a.rejected, 0u);
  EXPECT_EQ(a.unfinished, 0u);
}

}  // namespace
}  // namespace tls::scenario
