#include "scenario/engine.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "scenario/export.hpp"

namespace tls::scenario {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Generated-trace config small enough to finish in tens of milliseconds.
Config small_config() {
  Config c;
  c.num_hosts = 4;
  c.cores_per_host = 4;
  c.trace.num_jobs = 6;
  c.trace.mean_interarrival_s = 3;
  c.trace.min_workers = 2;
  c.trace.max_workers = 3;
  c.trace.min_iterations = 3;
  c.trace.max_iterations = 5;
  c.trace.local_batch_size = 1;
  c.trace.seed = 5;
  c.seed = 9;
  c.controller.policy = core::PolicyKind::kTlsOne;
  c.sample_period = sim::Time{0};
  return c;
}

/// Hand-built burst: `n` jobs arriving in the first half second on a
/// 2-host cluster (workers clamp to 1), so a band limit of 1 exhausts
/// admission after a single running job.
Config burst_config(int n, cluster::AdmissionPolicy admission) {
  Config c;
  c.num_hosts = 2;
  c.cores_per_host = 4;
  c.admission = admission;
  c.ps_band_limit = 1;
  c.seed = 3;
  c.controller.policy = core::PolicyKind::kTlsOne;
  c.sample_period = sim::Time{0};
  for (int j = 0; j < n; ++j) {
    TraceJob job;
    job.job_id = j;
    job.arrival = j * 100 * sim::kMillisecond;
    job.num_workers = 1;
    job.local_batch_size = 1;
    job.iterations = 3;
    c.replay.jobs.push_back(job);
  }
  return c;
}

TEST(ScenarioEngine, RepeatedRunsAreByteIdentical) {
  Config c = small_config();
  Result a = run_scenario(c);
  Result b = run_scenario(c);
  EXPECT_EQ(scenario_json(a), scenario_json(b));
  EXPECT_EQ(scenario_csv(a), scenario_csv(b));
}

TEST(ScenarioEngine, SmallTlsOneScenarioMatchesGolden) {
  Config c = small_config();
  std::string got = scenario_json(run_scenario(c));
  ASSERT_FALSE(got.empty());

  fs::path golden = fs::path(TLS_SCENARIO_GOLDEN_DIR) / "scenario_v1_small.json";
  if (std::getenv("TLS_REGOLDEN") != nullptr) {
    fs::create_directories(golden.parent_path());
    std::ofstream out(golden, std::ios::binary);
    out << got;
    GTEST_SKIP() << "regenerated " << golden;
  }
  std::string want = read_file(golden);
  ASSERT_FALSE(want.empty())
      << "missing golden " << golden << " — regenerate with TLS_REGOLDEN=1";
  EXPECT_EQ(got, want)
      << "scenario-v1 export or engine behaviour drifted; if intentional, "
         "regenerate the golden with TLS_REGOLDEN=1";
}

TEST(ScenarioEngine, AllJobsCompleteOnAnUncontendedCluster) {
  Result r = run_scenario(small_config());
  EXPECT_TRUE(r.trace_drained);
  EXPECT_EQ(r.completed, 6u);
  EXPECT_EQ(r.evicted, 0u);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.unfinished, 0u);
  EXPECT_EQ(r.jct.count, 6u);
  EXPECT_GT(r.jct.mean, 0);
  EXPECT_GT(r.cluster_cpu_util, 0);
  EXPECT_GT(r.sim_events, 0u);
  for (const JobOutcome& o : r.jobs) {
    EXPECT_EQ(o.status, JobStatus::kCompleted);
    EXPECT_EQ(o.iterations_done, o.iterations_target);
    EXPECT_GE(o.band_at_admit, 0);  // TLs-One assigns a band at admission
    EXPECT_GE(o.finish_s, o.admit_s);
  }
}

TEST(ScenarioEngine, QueueAdmissionHoldsOverflowUntilDeparture) {
  Result r = run_scenario(burst_config(4, cluster::AdmissionPolicy::kQueue));
  EXPECT_TRUE(r.trace_drained);
  EXPECT_EQ(r.completed, 4u);
  EXPECT_EQ(r.rejected, 0u);
  // Later arrivals waited for the head job's departure.
  EXPECT_GT(r.queue_wait.max, 0);
  // FIFO retry: admissions happen in arrival order.
  for (std::size_t i = 1; i < r.jobs.size(); ++i) {
    EXPECT_GE(r.jobs[i].admit_s, r.jobs[i - 1].admit_s);
  }
  // The band limit held: never more than one PS job per host.
  EXPECT_LE(r.peak_ps_colocation, 1);
}

TEST(ScenarioEngine, RejectAdmissionRefusesOverflow) {
  Result r = run_scenario(burst_config(4, cluster::AdmissionPolicy::kReject));
  EXPECT_TRUE(r.trace_drained);
  EXPECT_GT(r.rejected, 0u);
  EXPECT_EQ(r.completed + r.rejected, 4u);
  for (const JobOutcome& o : r.jobs) {
    if (o.status == JobStatus::kRejected) {
      EXPECT_EQ(o.admit_s, -1);
      EXPECT_EQ(o.jct_s, -1);
      EXPECT_GE(o.finish_s, 0);  // resolution time is recorded
    }
  }
}

TEST(ScenarioEngine, ShareBandAdmitsPastTheLimit) {
  Result r = run_scenario(burst_config(4, cluster::AdmissionPolicy::kShareBand));
  EXPECT_TRUE(r.trace_drained);
  EXPECT_EQ(r.completed, 4u);
  // Everything was admitted on arrival; colocation blew past the budget.
  EXPECT_EQ(r.queue_wait.max, 0);
  EXPECT_GT(r.peak_ps_colocation, 1);
}

TEST(ScenarioEngine, TimeLimitMarksUnfinishedJobs) {
  Config c = burst_config(4, cluster::AdmissionPolicy::kShareBand);
  c.time_limit = 500 * sim::kMillisecond;  // cuts into the burst
  Result r = run_scenario(c);
  EXPECT_FALSE(r.trace_drained);
  EXPECT_GT(r.unfinished, 0u);
  EXPECT_LE(r.horizon_s, 0.5 + 1e-9);
}

TEST(ScenarioEngine, FifoLeavesBandsUnassigned) {
  Config c = small_config();
  c.controller.policy = core::PolicyKind::kFifo;
  Result r = run_scenario(c);
  EXPECT_EQ(r.completed, 6u);
  for (const JobOutcome& o : r.jobs) EXPECT_EQ(o.band_at_admit, -1);
  EXPECT_EQ(r.tc_commands, 0u);
}

TEST(ScenarioEngine, LifetimeEvictsMidFlight) {
  Config c = burst_config(2, cluster::AdmissionPolicy::kShareBand);
  for (TraceJob& j : c.replay.jobs) {
    j.iterations = 10000;  // would run far past the lifetime
    j.lifetime = 1 * sim::kSecond;
  }
  Result r = run_scenario(c);
  EXPECT_TRUE(r.trace_drained);
  EXPECT_EQ(r.evicted, 2u);
  EXPECT_EQ(r.jct.count, 0u);  // evicted jobs are excluded from the JCT summary
  for (const JobOutcome& o : r.jobs) {
    EXPECT_EQ(o.status, JobStatus::kEvicted);
    EXPECT_LT(o.iterations_done, o.iterations_target);
    EXPECT_NEAR(o.jct_s, 1.0, 0.1);
  }
}

TEST(ScenarioEngine, CsvHasHeaderAndOneRowPerJob) {
  Result r = run_scenario(small_config());
  std::string csv = scenario_csv(r);
  std::istringstream in(csv);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            "job_id,model,workers,iters_target,iters_done,arrival_s,admit_s,"
            "finish_s,queue_wait_s,jct_s,band,status");
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, r.jobs.size());
}

TEST(ScenarioEngine, JsonDeclaresSchemaAndPolicy) {
  Result r = run_scenario(small_config());
  std::string json = scenario_json(r);
  EXPECT_NE(json.find("\"schema\": \"scenario-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"policy\": \"TLs-One\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs_detail\""), std::string::npos);
}

TEST(ScenarioEngine, WritesMetricsTimeseriesWhenAsked) {
  fs::path dir = fs::path(testing::TempDir()) / "tls_scenario_metrics";
  fs::create_directories(dir);
  Config c = small_config();
  c.sample_period = 1 * sim::kSecond;
  c.metrics_path = (dir / "metrics.csv").string();
  run_scenario(c);
  std::string csv = read_file(c.metrics_path);
  EXPECT_NE(csv.find("scenario_active_jobs"), std::string::npos);
  EXPECT_NE(csv.find("scenario_band_jobs"), std::string::npos);
}

TEST(ScenarioEngine, RejectsBadConfigs) {
  Config c = small_config();
  c.num_hosts = 1;
  EXPECT_THROW(run_scenario(c), std::invalid_argument);

  c = small_config();
  c.cores_per_host = 0;
  EXPECT_THROW(run_scenario(c), std::invalid_argument);

  c = small_config();
  TraceJob bad;
  bad.model = "no_such_model";
  c.replay.jobs.push_back(bad);
  EXPECT_THROW(run_scenario(c), std::invalid_argument);
}

TEST(ScenarioEngine, JobStatusNames) {
  EXPECT_STREQ(to_string(JobStatus::kCompleted), "completed");
  EXPECT_STREQ(to_string(JobStatus::kEvicted), "evicted");
  EXPECT_STREQ(to_string(JobStatus::kRejected), "rejected");
  EXPECT_STREQ(to_string(JobStatus::kUnfinished), "unfinished");
}

}  // namespace
}  // namespace tls::scenario
