// Unit tests for the tls::obs trace layer: category parsing and filtering,
// the event-log cap, tracer/registry coupling, and per-run artifact path
// derivation used by tls::runtime sweeps.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include "obs/metrics_registry.hpp"

namespace tls::obs {
namespace {

TEST(ParseCategories, AcceptsNamesAllAndNone) {
  std::uint32_t mask = 0;
  std::string err;
  ASSERT_TRUE(parse_categories("all", &mask, &err));
  EXPECT_EQ(mask, kAllCats);
  ASSERT_TRUE(parse_categories("none", &mask, &err));
  EXPECT_EQ(mask, 0u);
  ASSERT_TRUE(parse_categories("chunk,htb", &mask, &err));
  EXPECT_EQ(mask, static_cast<std::uint32_t>(Cat::kChunk) |
                      static_cast<std::uint32_t>(Cat::kHtb));
  // Spaces around tokens are shell-quoting artifacts; tolerate them.
  ASSERT_TRUE(parse_categories(" barrier , sample ", &mask, &err));
  EXPECT_EQ(mask, static_cast<std::uint32_t>(Cat::kBarrier) |
                      static_cast<std::uint32_t>(Cat::kSample));
}

TEST(ParseCategories, RejectsUnknownAndEmpty) {
  std::uint32_t mask = 0;
  std::string err;
  EXPECT_FALSE(parse_categories("qdsic", &mask, &err));
  EXPECT_NE(err.find("qdsic"), std::string::npos);
  // The error lists the known names so the CLI message is self-serve.
  EXPECT_NE(err.find("rotation"), std::string::npos);
  err.clear();
  EXPECT_FALSE(parse_categories("", &mask, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(parse_categories(" , ,", &mask, &err));
}

TEST(ParseCategories, EveryCatRoundTripsThroughItsName) {
  for (Cat cat : {Cat::kChunk, Cat::kQdisc, Cat::kHtb, Cat::kRotation,
                  Cat::kBarrier, Cat::kStraggler, Cat::kSample, Cat::kFlow,
                  Cat::kIngress, Cat::kCompute}) {
    std::uint32_t mask = 0;
    ASSERT_TRUE(parse_categories(to_string(cat), &mask, nullptr));
    EXPECT_EQ(mask, static_cast<std::uint32_t>(cat)) << to_string(cat);
  }
}

TEST(ParseSampling, AcceptsTermsAndRejectsBadOnes) {
  std::uint32_t every[kNumCats] = {};
  std::string err;
  ASSERT_TRUE(parse_sampling("qdisc=16, htb=8", every, &err)) << err;
  EXPECT_EQ(every[cat_index(Cat::kQdisc)], 16u);
  EXPECT_EQ(every[cat_index(Cat::kHtb)], 8u);

  EXPECT_FALSE(parse_sampling("qdisc=0", every, &err));
  EXPECT_NE(err.find("qdisc=0"), std::string::npos);
  err.clear();
  EXPECT_FALSE(parse_sampling("", every, &err));
  EXPECT_EQ(err, "empty sampling spec");
}

TEST(ParseSampling, UnknownCategoryErrorListsTheKnownNames) {
  // The CLI message must be self-serve: a typo'd category name comes back
  // with the full list of valid ones (same helper parse_categories uses).
  std::uint32_t every[kNumCats] = {};
  std::string err;
  EXPECT_FALSE(parse_sampling("qdsic=16", every, &err));
  EXPECT_NE(err.find("qdsic=16"), std::string::npos);
  for (const char* name : {"chunk", "qdisc", "htb", "rotation", "barrier",
                           "straggler", "sample", "flow", "ingress",
                           "compute"}) {
    EXPECT_NE(err.find(name), std::string::npos) << name << " in: " << err;
  }
}

TEST(Tracer, MaskFiltersEventLog) {
  Tracer t(static_cast<std::uint32_t>(Cat::kBarrier));
  t.chunk_enqueue(tls::sim::Time{10}, tls::net::HostId{0}, -1, tls::net::BandId{1}, 42, 0, tls::net::Bytes{1000});  // filtered out
  t.barrier_enter(tls::sim::Time{20}, 3, 1, 5);                // recorded
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.events()[0].kind, EventKind::kBarrierEnter);
  EXPECT_EQ(t.events()[0].at, tls::sim::Time{20});
  EXPECT_EQ(t.events()[0].job, 3);
  EXPECT_EQ(t.events()[0].a, 1);  // worker id rides in `a`
  EXPECT_EQ(t.events()[0].b, 5);  // iteration rides in `b`
}

TEST(Tracer, InactiveWhenMaskEmptyAndNoRegistry) {
  Tracer t(0);
  EXPECT_FALSE(t.active());
  // Attaching a registry re-activates emission even with the event log off:
  // --metrics without --trace still needs counters updated.
  Registry r;
  t.set_registry(&r);
  EXPECT_TRUE(t.active());
}

TEST(Tracer, RegistryFedEvenForFilteredCategories) {
  Tracer t(0);
  Registry r;
  t.set_registry(&r);
  t.chunk_dequeue(tls::sim::Time{50}, tls::net::HostId{2}, -1, tls::net::BandId{0}, 7, 0, tls::net::Bytes{4096}, tls::sim::Time{30});
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(r.counters().at(MetricKey{"bytes_drained", 2, -1, 0}).value(),
            4096);
  EXPECT_EQ(r.histograms().at(MetricKey{"queue_wait_ns", 2, -1, 0}).count(),
            1);
}

TEST(Tracer, HtbSendSplitsGreenAndYellow) {
  Tracer t;
  Registry r;
  t.set_registry(&r);
  t.htb_send(tls::sim::Time{1}, tls::net::HostId{0}, tls::net::BandId{2}, tls::net::Bytes{100}, /*borrowed=*/false);
  t.htb_send(tls::sim::Time{2}, tls::net::HostId{0}, tls::net::BandId{2}, tls::net::Bytes{250}, /*borrowed=*/true);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.events()[0].kind, EventKind::kHtbGreen);
  EXPECT_EQ(t.events()[1].kind, EventKind::kHtbYellow);
  EXPECT_EQ(r.counters().at(MetricKey{"htb_green_bytes", 0, -1, 2}).value(),
            100);
  EXPECT_EQ(r.counters().at(MetricKey{"htb_yellow_bytes", 0, -1, 2}).value(),
            250);
}

TEST(Tracer, EventCapCountsDrops) {
  Tracer t;
  t.set_max_events(2);
  t.rotation(tls::sim::Time{1}, 0);
  t.rotation(tls::sim::Time{2}, 1);
  t.rotation(tls::sim::Time{3}, 2);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.dropped(), 1u);
}

TEST(PerRunPath, InsertsLabelBeforeExtension) {
  EXPECT_EQ(per_run_path("out/trace.json", "seed3"), "out/trace.seed3.json");
  EXPECT_EQ(per_run_path("metrics.csv", "fifo"), "metrics.fifo.csv");
}

TEST(PerRunPath, SanitizesLabelSeparators) {
  // Sweep labels like "p3/tls-rr" must stay a single file, not a subdir.
  EXPECT_EQ(per_run_path("out/t.json", "p3/tls-rr"), "out/t.p3-tls-rr.json");
  EXPECT_EQ(per_run_path("t.json", "a b\\c"), "t.a-b-c.json");
}

TEST(PerRunPath, HandlesExtensionlessAndDottedDirs) {
  EXPECT_EQ(per_run_path("out/trace", "x"), "out/trace.x");
  // The dot in a directory name is not an extension.
  EXPECT_EQ(per_run_path("out.d/trace", "x"), "out.d/trace.x");
  EXPECT_EQ(per_run_path("", "x"), "");
  EXPECT_EQ(per_run_path("t.json", ""), "t.json");
}

TEST(PerRunPath, IdenticalLabelsCollideByDesign) {
  // Two RunPlan entries with the same label map to the same artifact path:
  // last writer wins, exactly like running tlsim twice with --trace to the
  // same file. Callers wanting distinct files must use distinct labels.
  EXPECT_EQ(per_run_path("out/t.json", "fifo"),
            per_run_path("out/t.json", "fifo"));
  // Sanitization can also induce collisions: labels differing only in the
  // separator character land on the same file.
  EXPECT_EQ(per_run_path("out/t.json", "p3/fifo"),
            per_run_path("out/t.json", "p3 fifo"));
}

TEST(PerRunPath, EmptyLabelLeavesBaseUntouched) {
  // A single-entry RunSet has no label; the artifact keeps its plain path
  // (no trailing dot, no mangling), extension or not.
  EXPECT_EQ(per_run_path("out/trace.json", ""), "out/trace.json");
  EXPECT_EQ(per_run_path("out/trace", ""), "out/trace");
}

}  // namespace
}  // namespace tls::obs
