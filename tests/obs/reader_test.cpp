// obs::reader tests: fixed-size chunked parsing (files far larger than one
// read granule, rows straddling chunk boundaries), exact legacy error
// messages, the #health trailer round trip, the streaming per-event entry
// point, and TraceCsvTail across partial appends.
#include "obs/reader.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace tls::obs {
namespace {

namespace fs = std::filesystem;

fs::path temp_file(const char* name) {
  fs::path dir = fs::path(testing::TempDir()) / "tls_reader_test";
  fs::create_directories(dir);
  return dir / name;
}

void write_file(const fs::path& p, const std::string& content) {
  std::ofstream out(p, std::ios::binary);
  out << content;
}

/// Enough distinct events to cross several 64 KiB read chunks.
std::string big_trace_csv(std::size_t events) {
  Tracer t;
  for (std::size_t i = 0; i < events; ++i) {
    t.chunk_enqueue(sim::Time{static_cast<std::int64_t>(i)}, net::HostId{3},
                    /*job=*/2, net::BandId{1},
                    /*flow=*/static_cast<std::int64_t>(1000 + i), /*index=*/0,
                    net::Bytes{1500});
  }
  std::string csv = trace_csv(t);
  EXPECT_GT(csv.size(), 3 * kReadChunkBytes);
  return csv;
}

TEST(Reader, ChunkedFileReadMatchesStreamRead) {
  std::string csv = big_trace_csv(6000);
  fs::path p = temp_file("big.csv");
  write_file(p, csv);

  std::vector<TraceEvent> from_file;
  std::string error;
  ASSERT_TRUE(read_trace_csv_file(p.string(), &from_file, &error)) << error;

  std::istringstream in(csv);
  std::vector<TraceEvent> from_stream;
  ASSERT_TRUE(read_trace_csv(in, &from_stream, &error)) << error;

  ASSERT_EQ(from_file.size(), 6000u);
  ASSERT_EQ(from_stream.size(), from_file.size());
  for (std::size_t i = 0; i < from_file.size(); ++i) {
    EXPECT_EQ(from_file[i].at, from_stream[i].at);
    EXPECT_EQ(from_file[i].flow, from_stream[i].flow);
  }
  // Spot-check the row that straddles the first chunk boundary.
  EXPECT_EQ(from_file[100].host, 3);
  EXPECT_EQ(from_file[100].bytes, 1500);
}

TEST(Reader, FinalLineWithoutNewlineIsComplete) {
  Tracer t;
  t.chunk_enqueue(sim::Time{5}, net::HostId{1}, 0, net::BandId{0}, 42, 0,
                  net::Bytes{100});
  std::string csv = trace_csv(t);
  ASSERT_EQ(csv.back(), '\n');
  csv.pop_back();
  std::istringstream in(csv);
  std::vector<TraceEvent> events;
  std::string error;
  ASSERT_TRUE(read_trace_csv(in, &events, &error)) << error;
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].flow, 42);
}

TEST(Reader, LegacyErrorMessagesPreserved) {
  std::string error;
  std::vector<TraceEvent> events;

  std::istringstream bad_header("nope\n");
  EXPECT_FALSE(read_trace_csv(bad_header, &events, &error));
  EXPECT_EQ(error,
            "not a trace CSV (expected header "
            "'at_ns,kind,cat,host,job,band,flow,bytes,a,b,dur_ns', got "
            "'nope')");

  std::istringstream empty("");
  EXPECT_FALSE(read_trace_csv(empty, &events, &error));
  EXPECT_NE(error.find("got ''"), std::string::npos);

  std::istringstream short_row(
      "at_ns,kind,cat,host,job,band,flow,bytes,a,b,dur_ns\n1,2,3\n");
  events.clear();
  EXPECT_FALSE(read_trace_csv(short_row, &events, &error));
  EXPECT_EQ(error, "line 2: expected 11 columns, got 3");

  std::istringstream bad_row(
      "at_ns,kind,cat,host,job,band,flow,bytes,a,b,dur_ns\n"
      "1,not_a_kind,chunk,0,0,0,1,1,0,0,0\n");
  events.clear();
  EXPECT_FALSE(read_trace_csv(bad_row, &events, &error));
  EXPECT_EQ(error, "line 2: malformed row '1,not_a_kind,chunk,0,0,0,1,1,0,0,0'");

  EXPECT_FALSE(
      read_trace_csv_file("/nonexistent-dir-xyz/t.csv", &events, &error));
  EXPECT_EQ(error, "cannot open trace CSV: /nonexistent-dir-xyz/t.csv");
}

TEST(Reader, HealthTrailerRoundTrips) {
  Tracer t;
  t.set_max_events(2);
  t.set_sample_every(Cat::kQdisc, 3);
  for (int i = 0; i < 6; ++i) {
    t.chunk_enqueue(sim::Time{i}, net::HostId{0}, 0, net::BandId{0}, i, 0,
                    net::Bytes{10});
    t.band_service(sim::Time{i}, net::HostId{0}, net::BandId{0},
                   net::Bytes{10});
  }
  ASSERT_FALSE(t.health().complete());
  std::string csv = trace_csv(t);
  EXPECT_NE(csv.find("#health,dropped,total,"), std::string::npos);
  EXPECT_NE(csv.find("#health,sampled,qdisc,"), std::string::npos);

  std::istringstream in(csv);
  std::vector<TraceEvent> events;
  TraceHealth health;
  std::string error;
  ASSERT_TRUE(read_trace_csv(in, &events, &health, &error)) << error;
  EXPECT_EQ(events.size(), t.events().size());
  EXPECT_EQ(health.dropped_total, t.health().dropped_total);
  EXPECT_EQ(health.sampled_out_total, t.health().sampled_out_total);
  for (int i = 0; i < kNumCats; ++i) {
    EXPECT_EQ(health.dropped_by_cat[i], t.health().dropped_by_cat[i]) << i;
    EXPECT_EQ(health.sampled_out_by_cat[i], t.health().sampled_out_by_cat[i])
        << i;
  }
}

TEST(Reader, CompleteTraceCarriesNoTrailerAndUnknownCommentsSkip) {
  Tracer t;
  t.chunk_enqueue(sim::Time{1}, net::HostId{0}, 0, net::BandId{0}, 7, 0,
                  net::Bytes{10});
  std::string csv = trace_csv(t);
  EXPECT_EQ(csv.find("#health"), std::string::npos);

  csv += "# a future metadata line the current reader does not know\n";
  std::istringstream in(csv);
  std::vector<TraceEvent> events;
  TraceHealth health;
  std::string error;
  ASSERT_TRUE(read_trace_csv(in, &events, &health, &error)) << error;
  EXPECT_EQ(events.size(), 1u);
  EXPECT_TRUE(health.complete());
}

TEST(Reader, ForEachDeliversWithoutMaterializing) {
  std::string csv = big_trace_csv(6000);
  fs::path p = temp_file("foreach.csv");
  write_file(p, csv);
  std::size_t n = 0;
  std::int64_t last_flow = -1;
  TraceHealth health;
  std::string error;
  ASSERT_TRUE(for_each_trace_csv_event(
      p.string(),
      [&](const TraceEvent& e) {
        ++n;
        last_flow = e.flow;
      },
      &health, &error))
      << error;
  EXPECT_EQ(n, 6000u);
  EXPECT_EQ(last_flow, 1000 + 5999);
}

TEST(ReaderTail, DeliversAcrossPartialAppends) {
  Tracer t;
  for (int i = 0; i < 10; ++i) {
    t.chunk_enqueue(sim::Time{i}, net::HostId{0}, 0, net::BandId{0}, 500 + i,
                    0, net::Bytes{10});
  }
  std::string csv = trace_csv(t);
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < csv.size(); ++i) {
    if (csv[i] == '\n') {
      lines.push_back(csv.substr(start, i + 1 - start));
      start = i + 1;
    }
  }
  ASSERT_EQ(lines.size(), 11u);  // header + 10 rows

  fs::path p = temp_file("tail.csv");
  fs::remove(p);
  TraceCsvTail tail(p.string());
  std::vector<TraceEvent> got;
  auto sink = [&got](const TraceEvent& e) { got.push_back(e); };
  std::string error;

  // File does not exist yet: poll fails retryably.
  EXPECT_FALSE(tail.poll(sink, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);

  auto append = [&p](const std::string& text) {
    std::ofstream out(p, std::ios::binary | std::ios::app);
    out << text;
  };

  // Header + 3 rows, the third cut mid-line: only complete lines deliver.
  append(lines[0] + lines[1] + lines[2] + lines[3].substr(0, 12));
  ASSERT_TRUE(tail.poll(sink, &error)) << error;
  EXPECT_TRUE(tail.header_seen());
  EXPECT_EQ(got.size(), 2u);

  // Completing the cut line delivers exactly it.
  append(lines[3].substr(12));
  ASSERT_TRUE(tail.poll(sink, &error)) << error;
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[2].flow, 502);

  // Nothing new: a poll is a no-op.
  ASSERT_TRUE(tail.poll(sink, &error)) << error;
  EXPECT_EQ(got.size(), 3u);

  // The rest in one append, plus a health trailer.
  for (std::size_t i = 4; i < lines.size(); ++i) append(lines[i]);
  append("#health,dropped,total,5\n#health,dropped,chunk,5\n");
  ASSERT_TRUE(tail.poll(sink, &error)) << error;
  EXPECT_EQ(got.size(), 10u);
  EXPECT_EQ(tail.events_read(), 10u);
  EXPECT_EQ(tail.health().dropped_total, 5u);
  EXPECT_EQ(tail.health().dropped_by_cat[cat_index(Cat::kChunk)], 5u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].flow, 500 + static_cast<std::int64_t>(i));
  }
}

TEST(ReaderTail, RestartsAfterTruncationOrRotation) {
  // A writer that restarts (tlsim re-run over the same --trace-csv path)
  // truncates the file; a follower must notice the shrink, reset, and
  // deliver the new file's events instead of silently idling forever at
  // the stale offset.
  auto trace_with_flows = [](std::int64_t first, int n) {
    Tracer t;
    for (int i = 0; i < n; ++i) {
      t.chunk_enqueue(sim::Time{i}, net::HostId{0}, 0, net::BandId{0},
                      first + i, 0, net::Bytes{10});
    }
    return trace_csv(t);
  };

  fs::path p = temp_file("rotate.csv");
  write_file(p, trace_with_flows(700, 8));
  TraceCsvTail tail(p.string());
  std::vector<TraceEvent> got;
  auto sink = [&got](const TraceEvent& e) { got.push_back(e); };
  std::string error;
  ASSERT_TRUE(tail.poll(sink, &error)) << error;
  ASSERT_EQ(got.size(), 8u);

  // Shrink mid-follow: the replacement is shorter than the read offset.
  got.clear();
  write_file(p, trace_with_flows(900, 3));
  ASSERT_TRUE(tail.poll(sink, &error)) << error;
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].flow, 900);
  EXPECT_EQ(got[2].flow, 902);
  EXPECT_TRUE(tail.header_seen());
  // events_read is cumulative across restarts (run_follow keys growth
  // detection off its increments).
  EXPECT_EQ(tail.events_read(), 11u);

  // Tailing resumes normally against the replacement file: an append to
  // the new file delivers incrementally, a no-growth poll is a no-op.
  got.clear();
  {
    std::string more = trace_with_flows(950, 4);
    std::ofstream out(p, std::ios::binary | std::ios::app);
    out << more.substr(more.find('\n') + 1);  // rows only, header is live
  }
  ASSERT_TRUE(tail.poll(sink, &error)) << error;
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].flow, 950);
  EXPECT_EQ(tail.events_read(), 15u);
  ASSERT_TRUE(tail.poll(sink, &error)) << error;
  EXPECT_EQ(got.size(), 4u);

  // Rotation to a file whose leading bytes are not the trace header is
  // caught by the content compare even when the file did not shrink; the
  // restart re-parses from byte 0 and reports the new file's real error
  // (rather than idling at a stale offset in a replaced file).
  write_file(p, std::string(4096, 'x') + "\n");
  EXPECT_FALSE(tail.poll(sink, &error));
  EXPECT_NE(error.find("not a trace CSV"), std::string::npos) << error;
}

}  // namespace
}  // namespace tls::obs
