// obs::analysis unit tests on hand-built event streams with fully
// hand-computed expectations: critical-path decomposition, exact
// conservation, blame-window semantics, graceful degradation on partial
// traces, the trace-CSV reader round trip, and the FlowKind-ordinal pin.
#include "obs/analysis.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "net/chunk.hpp"
#include "obs/export.hpp"
#include "obs/reader.hpp"
#include "obs/trace.hpp"

namespace tls::obs {
namespace {

// The analysis pins FlowKind ordinals (model=0, gradient=1) so it can run
// on offline CSVs without linking net/. If this enum is ever reordered,
// analysis.cpp must follow.
TEST(AnalysisContract, FlowKindOrdinalsPinned) {
  EXPECT_EQ(static_cast<int>(net::FlowKind::kModelUpdate), 0);
  EXPECT_EQ(static_cast<int>(net::FlowKind::kGradientUpdate), 1);
}

TEST(AnalysisContract, SegmentKindNames) {
  EXPECT_STREQ(to_string(SegmentKind::kCompute), "compute");
  EXPECT_STREQ(to_string(SegmentKind::kEgressQueue), "egress_queue");
  EXPECT_STREQ(to_string(SegmentKind::kSerialization), "serialization");
  EXPECT_STREQ(to_string(SegmentKind::kFanIn), "fan_in");
  EXPECT_STREQ(to_string(SegmentKind::kOther), "other");
}

/// One complete synchronous iteration of a 1-worker job, emitted in the
/// order the simulator would: compute on host 1, gradient flow 101 to the
/// PS on host 0, aggregation, model flow 100 back, barrier release. Extra
/// foreign dequeues land inside flow 100's egress-queue window, and extra
/// foreign delivers inside its ingress window at host 1, to exercise every
/// blame inclusion/exclusion rule on both sides. Flow 100's deliver
/// carries an 80 ns ingress-queue wait, splitting its fan-in segment into
/// wait [1800,1880] + receive [1880,2000].
///
/// Timeline (ns):              1000      1100 1150  1250 1300 1400 1600 1800 2000
///   barrier [enter.....................................................release]
///   compute  [900 (clamped to enter)..1100]
///   gradient flow 101:             enq--deq--arr--del
///   PS aggregation:                              [1300..1400]
///   model flow 100:                                    enq....deq..arr..del
void emit_one_iteration(Tracer& t) {
  t.worker_compute(tls::sim::Time{900}, /*host=*/tls::net::HostId{1}, /*job=*/0, /*worker=*/0, /*iteration=*/0,
                   /*duration=*/tls::sim::Time{200});
  t.barrier_enter(tls::sim::Time{1000}, /*job=*/0, /*worker=*/0, /*iteration=*/0);
  t.flow_start(tls::sim::Time{1100}, /*src=*/tls::net::HostId{1}, /*dst=*/tls::net::HostId{0}, /*job=*/0, /*kind_ordinal=*/1,
               /*flow=*/101, /*bytes=*/tls::net::Bytes{5000}, /*iteration=*/0);
  t.chunk_enqueue(tls::sim::Time{1100}, /*host=*/tls::net::HostId{1}, /*job=*/0, /*band=*/tls::net::BandId{0}, /*flow=*/101,
                  /*index=*/0, /*bytes=*/tls::net::Bytes{5000});
  t.chunk_dequeue(tls::sim::Time{1150}, tls::net::HostId{1}, 0, tls::net::BandId{0}, 101, 0, tls::net::Bytes{5000}, /*queue_wait=*/tls::sim::Time{50});
  t.ingress_arrive(tls::sim::Time{1250}, /*host=*/tls::net::HostId{0}, 0, tls::net::BandId{0}, 101, 0, tls::net::Bytes{5000});
  t.ingress_deliver(tls::sim::Time{1300}, tls::net::HostId{0}, 0, tls::net::BandId{0}, 101, 0, tls::net::Bytes{5000}, /*wait=*/tls::sim::Time{0}, /*residence=*/tls::sim::Time{50});
  t.flow_end(tls::sim::Time{1300}, tls::net::HostId{1}, tls::net::HostId{0}, 0, 1, 101, tls::net::Bytes{5000}, 0, /*elapsed=*/tls::sim::Time{200});
  t.ps_aggregate(tls::sim::Time{1300}, /*host=*/tls::net::HostId{0}, /*job=*/0, /*shard=*/0, /*iteration=*/0,
                 /*duration=*/tls::sim::Time{100});
  t.flow_start(tls::sim::Time{1400}, /*src=*/tls::net::HostId{0}, /*dst=*/tls::net::HostId{1}, 0, /*kind_ordinal=*/0, /*flow=*/100,
               tls::net::Bytes{6000}, 0);
  t.chunk_enqueue(tls::sim::Time{1400}, /*host=*/tls::net::HostId{0}, 0, tls::net::BandId{0}, 100, 0, tls::net::Bytes{6000});
  // Inside flow 100's egress-queue log window (enqueue..dequeue):
  t.chunk_dequeue(tls::sim::Time{1450}, tls::net::HostId{0}, /*job=*/1, /*band=*/tls::net::BandId{2}, /*flow=*/999, 0, tls::net::Bytes{7777}, tls::sim::Time{0});
  t.chunk_dequeue(tls::sim::Time{1500}, /*host=*/tls::net::HostId{1}, 1, tls::net::BandId{2}, 998, 0, tls::net::Bytes{1111}, tls::sim::Time{0});  // other host
  t.chunk_dequeue(tls::sim::Time{1520}, tls::net::HostId{0}, /*job=*/0, tls::net::BandId{0}, /*flow=*/555, 0, tls::net::Bytes{3333}, tls::sim::Time{0});  // self
  t.chunk_dequeue(tls::sim::Time{1540}, tls::net::HostId{0}, 0, tls::net::BandId{0}, /*flow=*/100, 1, tls::net::Bytes{500}, tls::sim::Time{0});  // own pipeline
  t.chunk_dequeue(tls::sim::Time{1600}, tls::net::HostId{0}, 0, tls::net::BandId{0}, 100, 0, tls::net::Bytes{6000}, /*queue_wait=*/tls::sim::Time{200});
  // After the victim's dequeue: outside the window.
  t.chunk_dequeue(tls::sim::Time{1650}, tls::net::HostId{0}, 1, tls::net::BandId{2}, /*flow=*/997, 0, tls::net::Bytes{2222}, tls::sim::Time{0});
  t.ingress_arrive(tls::sim::Time{1800}, /*host=*/tls::net::HostId{1}, 0, tls::net::BandId{0}, 100, 0, tls::net::Bytes{6000});
  // Inside flow 100's ingress log window (arrive..deliver) at host 1:
  t.ingress_deliver(tls::sim::Time{1850}, tls::net::HostId{1}, /*job=*/1, /*band=*/tls::net::BandId{2}, /*flow=*/888, 0, tls::net::Bytes{4444}, tls::sim::Time{0}, tls::sim::Time{10});
  t.ingress_deliver(tls::sim::Time{1870}, /*host=*/tls::net::HostId{0}, 1, tls::net::BandId{2}, 887, 0, tls::net::Bytes{123}, tls::sim::Time{0}, tls::sim::Time{10});  // other host
  t.ingress_deliver(tls::sim::Time{1890}, tls::net::HostId{1}, /*job=*/0, tls::net::BandId{0}, /*flow=*/666, 0, tls::net::Bytes{2222}, tls::sim::Time{0}, tls::sim::Time{10});  // self
  t.ingress_deliver(tls::sim::Time{1900}, tls::net::HostId{1}, 0, tls::net::BandId{0}, /*flow=*/100, 1, tls::net::Bytes{500}, tls::sim::Time{0}, tls::sim::Time{10});  // own pipeline
  t.ingress_deliver(tls::sim::Time{2000}, tls::net::HostId{1}, 0, tls::net::BandId{0}, 100, 0, tls::net::Bytes{6000}, /*wait=*/tls::sim::Time{80}, /*residence=*/tls::sim::Time{200});
  // After the victim's deliver: outside the window.
  t.ingress_deliver(tls::sim::Time{2000}, tls::net::HostId{1}, 1, tls::net::BandId{2}, /*flow=*/886, 0, tls::net::Bytes{3210}, tls::sim::Time{0}, tls::sim::Time{10});
  t.flow_end(tls::sim::Time{2000}, tls::net::HostId{0}, tls::net::HostId{1}, 0, 0, 100, tls::net::Bytes{6000}, 0, /*elapsed=*/tls::sim::Time{600});
  t.barrier_release(tls::sim::Time{2000}, 0, 0, 0, /*wait=*/tls::sim::Time{1000});
}

std::vector<TraceEvent> one_iteration_trace() {
  Tracer t;
  emit_one_iteration(t);
  return t.events();
}

TEST(Analysis, DecomposesOneIterationExactly) {
  RunReport report = analyze(one_iteration_trace());
  ASSERT_EQ(report.iterations.size(), 1u);
  const IterationReport& r = report.iterations[0];
  EXPECT_EQ(r.job, 0);
  EXPECT_EQ(r.iteration, 0);
  EXPECT_EQ(r.critical_worker, 0);
  EXPECT_EQ(r.enter_at, tls::sim::Time{1000});
  EXPECT_EQ(r.release_at, tls::sim::Time{2000});
  EXPECT_EQ(r.barrier_wait, tls::sim::Time{1000});

  // Hand-computed decomposition: worker compute clamped to the barrier
  // window [1000,1100], gradient chunk 50+100+50, aggregation 100, model
  // chunk 200+200+200.
  EXPECT_EQ(r.compute_ns, tls::sim::Time{200});
  EXPECT_EQ(r.egress_queue_ns, tls::sim::Time{250});
  EXPECT_EQ(r.serialization_ns, tls::sim::Time{300});
  EXPECT_EQ(r.fan_in_ns, tls::sim::Time{250});
  EXPECT_EQ(r.other_ns, tls::sim::Time{0});
  EXPECT_EQ(r.compute_ns + r.egress_queue_ns + r.serialization_ns +
                r.fan_in_ns + r.other_ns,
            r.barrier_wait);
  // The fan-in total splits into ingress-queue wait vs receive
  // serialization at arr_at + del_wait: the model chunk waited 80 ns
  // ([1800,1880]), the gradient chunk 0; the split always sums back.
  EXPECT_EQ(r.fan_in_wait_ns, tls::sim::Time{80});
  EXPECT_EQ(r.fan_in_ser_ns, tls::sim::Time{170});
  EXPECT_EQ(r.fan_in_wait_ns + r.fan_in_ser_ns, r.fan_in_ns);

  // Segments tile [enter, release] in forward time order with no gaps.
  ASSERT_EQ(r.segments.size(), 8u);
  EXPECT_EQ(r.segments.front().begin, r.enter_at);
  EXPECT_EQ(r.segments.back().end, r.release_at);
  for (std::size_t i = 1; i < r.segments.size(); ++i) {
    EXPECT_EQ(r.segments[i - 1].end, r.segments[i].begin) << "gap at " << i;
  }
  EXPECT_EQ(r.segments[0].kind, SegmentKind::kCompute);        // worker step
  EXPECT_EQ(r.segments[1].kind, SegmentKind::kEgressQueue);    // gradient
  EXPECT_EQ(r.segments[2].kind, SegmentKind::kSerialization);
  EXPECT_EQ(r.segments[3].kind, SegmentKind::kFanIn);
  EXPECT_EQ(r.segments[4].kind, SegmentKind::kCompute);        // aggregation
  EXPECT_EQ(r.segments[5].kind, SegmentKind::kEgressQueue);    // model
  EXPECT_EQ(r.segments[6].kind, SegmentKind::kSerialization);
  EXPECT_EQ(r.segments[7].kind, SegmentKind::kFanIn);
  EXPECT_EQ(r.segments[5].host, 0);    // model flow queues at the PS host
  EXPECT_EQ(r.segments[5].flow, 100);
  // Only fan-in segments carry the wait/receive split point.
  EXPECT_EQ(r.segments[3].fan_in_wait_end, tls::sim::Time{1250});
  EXPECT_EQ(r.segments[7].fan_in_wait_end, tls::sim::Time{1880});
  EXPECT_EQ(r.segments[0].fan_in_wait_end, tls::sim::Time{-1});
}

TEST(Analysis, BlameWindowCountsForeignDequeuesOnly) {
  RunReport report = analyze(one_iteration_trace());
  ASSERT_EQ(report.iterations.size(), 1u);
  const IterationReport& r = report.iterations[0];

  // Egress side, flow 100's window: flow 999 (job 1) and flow 555 (job 0)
  // at host 0 count; the other-host, own-pipeline, and outside-window
  // dequeues do not. Ingress side, same flow's window at host 1: flow 888
  // (job 1) and flow 666 (job 0) count under the same exclusion rules.
  // Entries are sorted by (side, host, culprit job, culprit band) with
  // egress first.
  ASSERT_EQ(r.blame.size(), 4u);
  EXPECT_EQ(r.blame[0].side, BlameSide::kEgress);
  EXPECT_EQ(r.blame[0].host, 0);
  EXPECT_EQ(r.blame[0].culprit_job, 0);
  EXPECT_EQ(r.blame[0].culprit_band, 0);
  EXPECT_EQ(r.blame[0].bytes, 3333);
  EXPECT_EQ(r.blame[1].side, BlameSide::kEgress);
  EXPECT_EQ(r.blame[1].host, 0);
  EXPECT_EQ(r.blame[1].culprit_job, 1);
  EXPECT_EQ(r.blame[1].culprit_band, 2);
  EXPECT_EQ(r.blame[1].bytes, 7777);
  EXPECT_EQ(r.blame[2].side, BlameSide::kIngress);
  EXPECT_EQ(r.blame[2].host, 1);
  EXPECT_EQ(r.blame[2].culprit_job, 0);
  EXPECT_EQ(r.blame[2].culprit_band, 0);
  EXPECT_EQ(r.blame[2].bytes, 2222);
  EXPECT_EQ(r.blame[3].side, BlameSide::kIngress);
  EXPECT_EQ(r.blame[3].host, 1);
  EXPECT_EQ(r.blame[3].culprit_job, 1);
  EXPECT_EQ(r.blame[3].culprit_band, 2);
  EXPECT_EQ(r.blame[3].bytes, 4444);

  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.jobs[0].cross_job_blame_bytes, 7777);
  EXPECT_EQ(report.jobs[0].self_blame_bytes, 3333);
  EXPECT_EQ(report.jobs[0].cross_job_ingress_blame_bytes, 4444);
  EXPECT_EQ(report.jobs[0].self_ingress_blame_bytes, 2222);
  EXPECT_EQ(report.jobs[0].total_wait_ns, tls::sim::Time{1000});
  EXPECT_EQ(report.jobs[0].iterations, 1);
}

TEST(Analysis, BareBarrierEventsFallToOther) {
  // No compute/flow events at all: the whole window is unattributable and
  // must land in `other` — never dropped, never crashing.
  Tracer t;
  t.barrier_enter(tls::sim::Time{700}, 0, 0, 0);
  t.barrier_release(tls::sim::Time{1000}, 0, /*worker=*/0, 0, /*wait=*/tls::sim::Time{300});
  RunReport report = analyze(t.events());
  ASSERT_EQ(report.iterations.size(), 1u);
  const IterationReport& r = report.iterations[0];
  EXPECT_EQ(r.other_ns, tls::sim::Time{300});
  EXPECT_EQ(r.other_ns, r.barrier_wait);
  ASSERT_EQ(r.segments.size(), 1u);
  EXPECT_EQ(r.segments[0].kind, SegmentKind::kOther);
  EXPECT_TRUE(r.blame.empty());
}

TEST(Analysis, CriticalWorkerIsLargestWaitFirstInLogOnTies) {
  Tracer t;
  t.barrier_release(tls::sim::Time{1000}, 0, /*worker=*/0, 0, /*wait=*/tls::sim::Time{100});
  t.barrier_release(tls::sim::Time{1000}, 0, /*worker=*/1, 0, /*wait=*/tls::sim::Time{300});
  t.barrier_release(tls::sim::Time{2000}, 0, /*worker=*/2, 1, /*wait=*/tls::sim::Time{250});
  t.barrier_release(tls::sim::Time{2000}, 0, /*worker=*/3, 1, /*wait=*/tls::sim::Time{250});
  RunReport report = analyze(t.events());
  ASSERT_EQ(report.iterations.size(), 2u);
  EXPECT_EQ(report.iterations[0].critical_worker, 1);  // strictly larger
  EXPECT_EQ(report.iterations[0].barrier_wait, tls::sim::Time{300});
  EXPECT_EQ(report.iterations[1].critical_worker, 2);  // tie: log order
}

TEST(Analysis, StartupBroadcastIterationIsSkipped) {
  // iteration -1 tags the startup model broadcast; it is not a barrier.
  Tracer t;
  t.barrier_release(tls::sim::Time{500}, 0, 0, /*iteration=*/-1, tls::sim::Time{100});
  RunReport report = analyze(t.events());
  EXPECT_TRUE(report.iterations.empty());
  EXPECT_TRUE(report.jobs.empty());
}

TEST(Analysis, EmptyTraceYieldsEmptyReport) {
  RunReport report = analyze({});
  EXPECT_TRUE(report.iterations.empty());
  EXPECT_TRUE(report.jobs.empty());
  EXPECT_NE(report_text(report).find("jobs 0, iterations 0"),
            std::string::npos);
}

TEST(AnalysisRenderers, TextCsvJsonAgreeOnTotals) {
  RunReport report = analyze(one_iteration_trace());
  std::string text = report_text(report);
  EXPECT_NE(text.find("wait 1000 ns = compute 200 + egress_queue 250 + "
                      "serialization 300 + fan_in 250 (wait 80 + recv 170) + "
                      "other 0"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("blame host 0: job 1 band 2 drained 7777 bytes ahead"),
            std::string::npos);
  EXPECT_NE(text.find("ingress blame host 1: job 1 band 2 delivered 4444 "
                      "bytes ahead"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("fan_in split: ingress wait 80 ns, receive 170 ns"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ingress blame: cross-job 4444 bytes, self 2222 bytes"),
            std::string::npos)
      << text;

  std::string csv = report_csv(report);
  EXPECT_NE(csv.find("job,iteration,critical_worker,record,host,culprit_job,"
                     "culprit_band,metric,value\n"),
            std::string::npos);
  EXPECT_NE(csv.find("0,0,0,segment,-1,-1,-1,barrier_wait_ns,1000"),
            std::string::npos);
  EXPECT_NE(csv.find("0,0,0,segment,-1,-1,-1,fan_in_wait_ns,80"),
            std::string::npos);
  EXPECT_NE(csv.find("0,0,0,segment,-1,-1,-1,fan_in_ser_ns,170"),
            std::string::npos);
  EXPECT_NE(csv.find("0,0,0,blame,0,1,2,blame_bytes,7777"), std::string::npos);
  EXPECT_NE(csv.find("0,0,0,ingress_blame,1,1,2,ingress_blame_bytes,4444"),
            std::string::npos)
      << csv;

  std::string json = report_json(report);
  EXPECT_NE(json.find("\"schema\":\"tlsreport-v2\""), std::string::npos);
  EXPECT_NE(json.find("\"cross_job_blame_bytes\":7777"), std::string::npos);
  EXPECT_NE(json.find("\"self_blame_bytes\":3333"), std::string::npos);
  EXPECT_NE(json.find("\"cross_job_ingress_blame_bytes\":4444"),
            std::string::npos);
  EXPECT_NE(json.find("\"self_ingress_blame_bytes\":2222"),
            std::string::npos);
  EXPECT_NE(json.find("\"fan_in_wait_ns\":80"), std::string::npos);
  EXPECT_NE(json.find("\"side\":\"egress\""), std::string::npos);
  EXPECT_NE(json.find("\"side\":\"ingress\""), std::string::npos);
  // Integer-only output: a float would break byte-identical determinism.
  EXPECT_EQ(json.find('.'), std::string::npos);
}

TEST(AnalysisReader, TraceCsvRoundTripsEveryField) {
  Tracer t;
  emit_one_iteration(t);
  const std::vector<TraceEvent>& events = t.events();
  std::istringstream in(trace_csv(t));
  std::vector<TraceEvent> parsed;
  std::string error;
  ASSERT_TRUE(read_trace_csv(in, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed[i].at, events[i].at) << i;
    EXPECT_EQ(parsed[i].kind, events[i].kind) << i;
    EXPECT_EQ(parsed[i].cat, events[i].cat) << i;
    EXPECT_EQ(parsed[i].host, events[i].host) << i;
    EXPECT_EQ(parsed[i].job, events[i].job) << i;
    EXPECT_EQ(parsed[i].band, events[i].band) << i;
    EXPECT_EQ(parsed[i].flow, events[i].flow) << i;
    EXPECT_EQ(parsed[i].bytes, events[i].bytes) << i;
    EXPECT_EQ(parsed[i].a, events[i].a) << i;
    EXPECT_EQ(parsed[i].b, events[i].b) << i;
    EXPECT_EQ(parsed[i].dur, events[i].dur) << i;
  }
  // The round trip is lossless for the analysis too.
  EXPECT_EQ(report_text(analyze(parsed)), report_text(analyze(events)));
}

TEST(AnalysisReader, RejectsWrongHeader) {
  std::istringstream in("time,stuff\n1,2\n");
  std::vector<TraceEvent> out;
  std::string error;
  EXPECT_FALSE(read_trace_csv(in, &out, &error));
  EXPECT_NE(error.find("header"), std::string::npos) << error;
}

TEST(AnalysisReader, RejectsMalformedRowWithLineNumber) {
  std::istringstream in(
      "at_ns,kind,cat,host,job,band,flow,bytes,a,b,dur_ns\n"
      "10,chunk_enqueue,chunk,0,0,0,1,100,0,0,0\n"
      "20,not_a_kind,chunk,0,0,0,1,100,0,0,0\n");
  std::vector<TraceEvent> out;
  std::string error;
  EXPECT_FALSE(read_trace_csv(in, &out, &error));
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
  EXPECT_EQ(out.size(), 1u);  // rows before the error are kept
}

TEST(AnalysisReader, RejectsShortRow) {
  std::istringstream in(
      "at_ns,kind,cat,host,job,band,flow,bytes,a,b,dur_ns\n"
      "10,chunk_enqueue,chunk\n");
  std::vector<TraceEvent> out;
  std::string error;
  EXPECT_FALSE(read_trace_csv(in, &out, &error));
  EXPECT_NE(error.find("11 columns"), std::string::npos) << error;
}

TEST(AnalysisReader, MissingFileReportsPath) {
  std::vector<TraceEvent> out;
  std::string error;
  EXPECT_FALSE(
      read_trace_csv_file("/nonexistent-dir-xyz/trace.csv", &out, &error));
  EXPECT_NE(error.find("/nonexistent-dir-xyz/trace.csv"), std::string::npos);
}

RunReport report_with(std::int32_t job, std::int64_t iteration,
                      sim::Time wait, std::int64_t cross_bytes,
                      std::int64_t ingress_bytes = 0) {
  RunReport r;
  IterationReport it;
  it.job = job;
  it.iteration = iteration;
  it.barrier_wait = wait;
  if (cross_bytes > 0) {
    it.blame.push_back(BlameEntry{BlameSide::kEgress, 0, job + 1, 0, cross_bytes});
  }
  if (ingress_bytes > 0) {
    it.blame.push_back(
        BlameEntry{BlameSide::kIngress, 1, job + 1, 0, ingress_bytes});
  }
  r.iterations.push_back(it);
  JobSummary js;
  js.job = job;
  js.iterations = 1;
  js.total_wait_ns = wait;
  js.cross_job_blame_bytes = cross_bytes;
  js.cross_job_ingress_blame_bytes = ingress_bytes;
  r.jobs.push_back(js);
  return r;
}

TEST(AnalysisDiff, AlignsRowsAndFlagsMissingIterations) {
  RunReport a = report_with(0, 0, tls::sim::Time{500}, 100);
  RunReport b = report_with(0, 1, tls::sim::Time{400}, 0);  // different iteration
  DiffReport d = diff_reports(a, b, "fifo", "tls-one");
  EXPECT_EQ(d.label_a, "fifo");
  EXPECT_EQ(d.label_b, "tls-one");
  ASSERT_EQ(d.rows.size(), 2u);
  EXPECT_EQ(d.rows[0].iteration, 0);
  EXPECT_EQ(d.rows[0].wait_a, tls::sim::Time{500});
  EXPECT_EQ(d.rows[0].wait_b, tls::sim::Time{-1});  // missing on the B side
  EXPECT_EQ(d.rows[1].iteration, 1);
  EXPECT_EQ(d.rows[1].wait_a, tls::sim::Time{-1});
  EXPECT_EQ(d.rows[1].wait_b, tls::sim::Time{400});
}

TEST(AnalysisDiff, CertifiesCrossJobBlameElimination) {
  DiffReport d = diff_reports(report_with(0, 0, tls::sim::Time{500}, 4096),
                              report_with(0, 0, tls::sim::Time{300}, 0), "fifo", "tls-one");
  ASSERT_EQ(d.jobs.size(), 1u);
  EXPECT_EQ(d.jobs[0].cross_blame_a, 4096);
  EXPECT_EQ(d.jobs[0].cross_blame_b, 0);
  std::string text = diff_text(d);
  EXPECT_NE(text.find("[queueing-behind-other-jobs eliminated]"),
            std::string::npos)
      << text;
  // The tag only fires when blame actually went to zero.
  DiffReport still = diff_reports(report_with(0, 0, tls::sim::Time{500}, 4096),
                                  report_with(0, 0, tls::sim::Time{300}, 64), "a", "b");
  EXPECT_EQ(diff_text(still).find("eliminated"), std::string::npos);

  std::string json = diff_json(d);
  EXPECT_NE(json.find("\"schema\":\"tlsreport-diff-v2\""), std::string::npos);
  EXPECT_NE(json.find("\"cross_job_blame_bytes_a\":4096"), std::string::npos);
  std::string csv = diff_csv(d);
  EXPECT_NE(csv.find("job,iteration,metric,a,b\n"), std::string::npos);
  EXPECT_NE(csv.find("0,-1,cross_job_blame_bytes,4096,0"), std::string::npos);
}

TEST(AnalysisDiff, CertifiesFanInContentionElimination) {
  // Both sides of the blame matrix go to zero: both certificates fire.
  DiffReport d = diff_reports(
      report_with(0, 0, tls::sim::Time{500}, 4096, /*ingress_bytes=*/2048),
      report_with(0, 0, tls::sim::Time{300}, 0, 0), "fifo", "tls-one");
  ASSERT_EQ(d.jobs.size(), 1u);
  EXPECT_EQ(d.jobs[0].cross_ingress_blame_a, 2048);
  EXPECT_EQ(d.jobs[0].cross_ingress_blame_b, 0);
  std::string text = diff_text(d);
  EXPECT_NE(text.find("[queueing-behind-other-jobs eliminated]"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("[fan-in contention eliminated]"), std::string::npos)
      << text;

  // Only the ingress side goes to zero: only the fan-in tag fires.
  DiffReport ingress_only = diff_reports(
      report_with(0, 0, tls::sim::Time{500}, 4096, 2048),
      report_with(0, 0, tls::sim::Time{300}, 64, 0), "a", "b");
  std::string partial = diff_text(ingress_only);
  EXPECT_EQ(partial.find("[queueing-behind-other-jobs eliminated]"),
            std::string::npos);
  EXPECT_NE(partial.find("[fan-in contention eliminated]"), std::string::npos);
  // Residual ingress blame: no tag.
  DiffReport still = diff_reports(
      report_with(0, 0, tls::sim::Time{500}, 0, 2048),
      report_with(0, 0, tls::sim::Time{300}, 0, 64), "a", "b");
  EXPECT_EQ(diff_text(still).find("fan-in contention"), std::string::npos);

  std::string json = diff_json(d);
  EXPECT_NE(json.find("\"cross_job_ingress_blame_bytes_a\":2048"),
            std::string::npos);
  EXPECT_NE(json.find("\"cross_job_ingress_blame_bytes_b\":0"),
            std::string::npos);
  std::string csv = diff_csv(d);
  EXPECT_NE(csv.find("0,-1,cross_job_ingress_blame_bytes,2048,0"),
            std::string::npos)
      << csv;
}

TEST(AnalysisContract, BlameSideNames) {
  EXPECT_STREQ(to_string(BlameSide::kEgress), "egress");
  EXPECT_STREQ(to_string(BlameSide::kIngress), "ingress");
}

}  // namespace
}  // namespace tls::obs
