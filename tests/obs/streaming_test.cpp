// StreamingAnalyzer tests: byte-identical equivalence with the batch
// engine (hand-built multi-iteration traces, a real contended simulation
// with a golden JSON, mid-stream snapshots), bounded retention (peak
// retained records independent of trace length), and the diagnostic
// budget/out-of-order flags.
//
// Regenerate the golden after an intentional format or scenario change:
//   TLS_REGOLDEN=1 ./test_obs --gtest_filter='StreamingGolden.*'
#include "obs/streaming.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "obs/analysis.hpp"
#include "obs/reader.hpp"
#include "obs/trace.hpp"

namespace tls::obs {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// One synchronous iteration of `job` starting at `base`: compute on the
/// worker host, gradient flow to the PS (host 0), aggregation, model flow
/// back, release — with foreign-job and background dequeues landing inside
/// the model chunk's egress window so blame pruning is exercised too.
void emit_iteration(Tracer& t, std::int32_t job, std::int64_t iter,
                    sim::Time base) {
  net::HostId ps{0};
  net::HostId w{1 + job};
  std::int64_t grad = 100000 + iter * 100 + job * 10 + 1;
  std::int64_t model = 100000 + iter * 100 + job * 10 + 2;
  auto at = [base](std::int64_t off) { return base + sim::Time{off}; };
  t.worker_compute(at(0), w, job, /*worker=*/0, iter, sim::Time{200});
  t.barrier_enter(at(100), job, /*worker=*/0, iter);
  t.flow_start(at(200), w, ps, job, /*kind_ordinal=*/1, grad,
               net::Bytes{5000}, iter);
  t.chunk_enqueue(at(200), w, job, net::BandId{0}, grad, 0, net::Bytes{5000});
  t.chunk_dequeue(at(250), w, job, net::BandId{0}, grad, 0, net::Bytes{5000},
                  sim::Time{50});
  t.ingress_arrive(at(350), ps, job, net::BandId{0}, grad, 0,
                   net::Bytes{5000});
  t.ingress_deliver(at(400), ps, job, net::BandId{0}, grad, 0,
                    net::Bytes{5000}, sim::Time{0}, sim::Time{50});
  t.flow_end(at(400), w, ps, job, 1, grad, net::Bytes{5000}, iter,
             sim::Time{200});
  t.ps_aggregate(at(400), ps, job, /*shard=*/0, iter, sim::Time{100});
  t.flow_start(at(500), ps, w, job, /*kind_ordinal=*/0, model,
               net::Bytes{6000}, iter);
  t.chunk_enqueue(at(500), ps, job, net::BandId{0}, model, 0,
                  net::Bytes{6000});
  // Culprit traffic draining ahead of the model chunk inside its egress
  // window: a foreign-job flow and background traffic, each with the full
  // start/enqueue/dequeue/end lifecycle a real fabric emits — retirement
  // of culprit state is part of what the retention tests measure.
  std::int64_t foreign = 900000 + iter * 10 + job;
  std::int64_t bg = 910000 + iter * 10 + job;
  t.flow_start(at(540), ps, w, 1 - job, /*kind_ordinal=*/1, foreign,
               net::Bytes{7777}, iter);
  t.chunk_enqueue(at(540), ps, 1 - job, net::BandId{2}, foreign, 0,
                  net::Bytes{7777});
  t.chunk_dequeue(at(550), ps, 1 - job, net::BandId{2}, foreign, 0,
                  net::Bytes{7777}, sim::Time{10});
  t.flow_end(at(560), ps, w, 1 - job, 1, foreign, net::Bytes{7777}, iter,
             sim::Time{20});
  t.flow_start(at(590), ps, w, /*job=*/-1, /*kind_ordinal=*/2, bg,
               net::Bytes{1111}, -1);
  t.chunk_enqueue(at(590), ps, -1, net::BandId{2}, bg, 0, net::Bytes{1111});
  t.chunk_dequeue(at(600), ps, /*job=*/-1, net::BandId{2}, bg, 0,
                  net::Bytes{1111}, sim::Time{10});
  t.flow_end(at(610), ps, w, -1, 2, bg, net::Bytes{1111}, -1, sim::Time{20});
  t.chunk_dequeue(at(700), ps, job, net::BandId{0}, model, 0,
                  net::Bytes{6000}, sim::Time{200});
  t.ingress_arrive(at(900), w, job, net::BandId{0}, model, 0,
                   net::Bytes{6000});
  // Fan-in contention at the receiving worker: the foreign-job and
  // background chunks are delivered ahead of the model chunk inside its
  // arrive..deliver window, exercising the ingress blame lane (and its
  // retirement) in both engines.
  t.ingress_arrive(at(920), w, 1 - job, net::BandId{2}, foreign, 0,
                   net::Bytes{7777});
  t.ingress_deliver(at(960), w, 1 - job, net::BandId{2}, foreign, 0,
                    net::Bytes{7777}, sim::Time{10}, sim::Time{40});
  t.ingress_arrive(at(980), w, /*job=*/-1, net::BandId{2}, bg, 0,
                   net::Bytes{1111});
  t.ingress_deliver(at(1000), w, /*job=*/-1, net::BandId{2}, bg, 0,
                    net::Bytes{1111}, sim::Time{5}, sim::Time{20});
  t.ingress_deliver(at(1100), w, job, net::BandId{0}, model, 0,
                    net::Bytes{6000}, sim::Time{100}, sim::Time{200});
  t.flow_end(at(1100), ps, w, job, 0, model, net::Bytes{6000}, iter,
             sim::Time{600});
  t.barrier_release(at(1100), job, /*worker=*/0, iter, sim::Time{1000});
}

/// A jobs x iters synthetic run, one job block after another in strictly
/// increasing time (the simulator's append order).
std::vector<TraceEvent> synthetic_trace(int jobs, int iters) {
  Tracer t;
  sim::Time base{0};
  for (int k = 0; k < iters; ++k) {
    for (int j = 0; j < jobs; ++j) {
      emit_iteration(t, j, k, base);
      base = base + sim::Time{5000};
    }
  }
  return t.events();
}

TEST(Streaming, MatchesBatchOnHandBuiltTrace) {
  std::vector<TraceEvent> events = synthetic_trace(2, 6);
  RunReport batch = analyze(events);
  RunReport streaming = analyze_streaming(events);
  EXPECT_EQ(report_text(batch), report_text(streaming));
  EXPECT_EQ(report_csv(batch), report_csv(streaming));
  EXPECT_EQ(report_json(batch), report_json(streaming));
  // The fixture contends on both sides of the port — the equivalence
  // above must be witnessing nonzero blame on each, not trivially empty.
  ASSERT_EQ(batch.jobs.size(), 2u);
  for (const JobSummary& js : batch.jobs) {
    EXPECT_GT(js.cross_job_blame_bytes, 0) << "job " << js.job;
    EXPECT_GT(js.cross_job_ingress_blame_bytes, 0) << "job " << js.job;
  }
}

TEST(Streaming, MatchesBatchWithStragglerIterations) {
  // Releases whose enters were filtered out of the trace finalize at
  // finish(), exactly like batch: strip every kBarrierEnter.
  std::vector<TraceEvent> events;
  for (const TraceEvent& e : synthetic_trace(2, 4)) {
    if (e.kind != EventKind::kBarrierEnter) events.push_back(e);
  }
  RunReport batch = analyze(events);
  RunReport streaming = analyze_streaming(events);
  ASSERT_FALSE(batch.iterations.empty());
  EXPECT_EQ(report_json(batch), report_json(streaming));
}

TEST(Streaming, SnapshotMidStreamThenFinishStillMatchesBatch) {
  std::vector<TraceEvent> events = synthetic_trace(2, 8);
  StreamingAnalyzer analyzer;
  std::size_t half = events.size() / 2;
  for (std::size_t i = 0; i < half; ++i) analyzer.ingest(events[i]);

  RunReport snap = analyzer.snapshot();
  EXPECT_GT(snap.iterations.size(), 0u);
  EXPECT_LT(snap.iterations.size(), static_cast<std::size_t>(16));
  for (const IterationReport& r : snap.iterations) {
    EXPECT_EQ(r.compute_ns + r.egress_queue_ns + r.serialization_ns +
                  r.fan_in_ns + r.other_ns,
              r.barrier_wait);
  }

  for (std::size_t i = half; i < events.size(); ++i)
    analyzer.ingest(events[i]);
  EXPECT_EQ(report_json(analyze(events)), report_json(analyzer.finish()));
}

TEST(Streaming, PeakRetentionIndependentOfTraceLength) {
  // The bounded-memory claim: 4x the iterations must not move the
  // high-water mark of retained records (the in-flight window is the same
  // two-iterations-per-job shape regardless of run length).
  auto peak = [](int iters, std::size_t* total_events) {
    std::vector<TraceEvent> events = synthetic_trace(2, iters);
    *total_events = events.size();
    StreamingAnalyzer analyzer;
    for (const TraceEvent& e : events) analyzer.ingest(e);
    RunReport report = analyzer.finish();
    EXPECT_EQ(report.iterations.size(), static_cast<std::size_t>(2 * iters));
    return analyzer.peak_retained_records();
  };
  std::size_t events_20 = 0, events_80 = 0;
  std::size_t peak_20 = peak(20, &events_20);
  std::size_t peak_80 = peak(80, &events_80);
  EXPECT_EQ(peak_20, peak_80)
      << "retention grew with trace length - a leak in the retirement rules";
  // And the peak is a small fraction of what batch retains (every event).
  EXPECT_LT(peak_80, events_80 / 4);
  EXPECT_GT(events_80, events_20 * 3);
}

TEST(Streaming, RetentionBudgetIsDiagnosticOnly) {
  std::vector<TraceEvent> events = synthetic_trace(2, 4);
  StreamingOptions opts;
  opts.retention_budget = 1;  // absurdly small: must flag, never degrade
  StreamingAnalyzer tight(opts);
  for (const TraceEvent& e : events) tight.ingest(e);
  EXPECT_TRUE(tight.budget_exceeded());
  RunReport report = tight.finish();
  EXPECT_EQ(report_json(analyze(events)), report_json(report));

  StreamingAnalyzer roomy(StreamingOptions{1u << 20});
  for (const TraceEvent& e : events) roomy.ingest(e);
  EXPECT_FALSE(roomy.budget_exceeded());
}

TEST(Streaming, FlagsOutOfOrderInput) {
  StreamingAnalyzer analyzer;
  Tracer t;
  t.barrier_enter(sim::Time{100}, 0, 0, 0);
  t.barrier_enter(sim::Time{50}, 0, 0, 1);  // time went backwards
  for (const TraceEvent& e : t.events()) analyzer.ingest(e);
  EXPECT_TRUE(analyzer.out_of_order());
}

TEST(Streaming, CarriesHealthIntoReport) {
  std::vector<TraceEvent> events = synthetic_trace(1, 2);
  StreamingAnalyzer analyzer;
  for (const TraceEvent& e : events) analyzer.ingest(e);
  TraceHealth h;
  h.dropped_total = 7;
  h.dropped_by_cat[cat_index(Cat::kQdisc)] = 7;
  analyzer.set_health(h);
  RunReport report = analyzer.finish();
  EXPECT_EQ(report.health.dropped_total, 7u);
  std::string text = report_text(report);
  EXPECT_NE(text.find("WARNING: trace is incomplete"), std::string::npos);
  std::string json = report_json(report);
  EXPECT_NE(json.find("\"trace_health\":{\"dropped_total\":7"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Real-simulation witness: a contended 2-host / 2-job run, golden JSON
// pinned, batch and streaming byte-identical on it.

TEST(StreamingGolden, ContendedRunJsonIdenticalBatchVsStreaming) {
  fs::path dir = fs::path(testing::TempDir()) / "tls_streaming_golden";
  fs::remove_all(dir);
  fs::create_directories(dir);

  exp::ExperimentConfig c;
  c.num_hosts = 2;
  c.workload.num_jobs = 2;
  c.workload.workers_per_job = 1;
  c.workload.global_step_target = 6;  // 6 iterations x 1 worker
  c.placement = cluster::table1(1, 2);
  c.controller.policy = core::PolicyKind::kFifo;
  c.seed = 1;
  c.obs.trace_csv_path = (dir / "trace.csv").string();
  // The in-process JSON is produced by the StreamingAnalyzer inside
  // run_experiment — one of the two sides of the equivalence witness.
  c.obs.report_json_path = (dir / "report.json").string();
  exp::ExperimentResult result = exp::run_experiment(c);
  ASSERT_TRUE(result.all_finished);

  std::vector<TraceEvent> events;
  std::string error;
  ASSERT_TRUE(obs::read_trace_csv_file((dir / "trace.csv").string(), &events,
                                       &error))
      << error;
  std::string batch_json = report_json(analyze(events));
  std::string streaming_json = read_file(dir / "report.json");
  ASSERT_FALSE(streaming_json.empty());
  EXPECT_EQ(batch_json, streaming_json)
      << "batch and streaming attribution diverged";

  fs::path golden = fs::path(TLS_OBS_GOLDEN_DIR) / "report_2h2j.json";
  if (std::getenv("TLS_REGOLDEN") != nullptr) {
    fs::create_directories(golden.parent_path());
    std::ofstream out(golden, std::ios::binary);
    out << streaming_json;
    GTEST_SKIP() << "regenerated " << golden;
  }
  std::string want = read_file(golden);
  ASSERT_FALSE(want.empty())
      << "missing golden " << golden << " — regenerate with TLS_REGOLDEN=1";
  EXPECT_EQ(streaming_json, want)
      << "attribution JSON drifted; if intentional, regenerate the golden "
         "with TLS_REGOLDEN=1";
}

}  // namespace
}  // namespace tls::obs
