// Unit tests for the metrics registry: log2 histogram bucketing, the
// bucket-by-bucket merge used when aggregating per-run registries, and the
// deterministic long-format timeseries CSV.
#include "obs/metrics_registry.hpp"

#include <gtest/gtest.h>

namespace tls::obs {
namespace {

TEST(Histogram, RecordsBasicStats) {
  Histogram h;
  h.record(1);
  h.record(5);
  h.record(100);
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.sum(), 106);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.mean(), 106.0 / 3.0);
}

TEST(Histogram, EmptyHistogramIsZeroes) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile_upper_bound(0.5), 0);
}

TEST(Histogram, Log2Bucketing) {
  Histogram h;
  h.record(0);  // bucket 0 (zeros and ones)
  h.record(1);  // bucket 0
  h.record(2);  // bucket 2: [2, 4)
  h.record(3);  // bucket 2
  h.record(4);  // bucket 3: [4, 8)
  h.record(1023);  // bucket 10: [512, 1024)
  EXPECT_EQ(h.bucket(0), 2);
  EXPECT_EQ(h.bucket(2), 2);
  EXPECT_EQ(h.bucket(3), 1);
  EXPECT_EQ(h.bucket(10), 1);
}

TEST(Histogram, NegativeSamplesClampToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.sum(), 0);
}

TEST(Histogram, MergeMatchesCombinedRecording) {
  Histogram a;
  Histogram b;
  Histogram combined;
  for (std::int64_t v : {1, 10, 100, 1000}) {
    a.record(v);
    combined.record(v);
  }
  for (std::int64_t v : {5, 50, 500, 5000}) {
    b.record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(a.bucket(i), combined.bucket(i)) << "bucket " << i;
  }
  EXPECT_EQ(a.quantile_upper_bound(0.5), combined.quantile_upper_bound(0.5));
  EXPECT_EQ(a.quantile_upper_bound(0.99), combined.quantile_upper_bound(0.99));
}

TEST(Histogram, MergeWithEmptyIsIdentityBothWays) {
  Histogram a;
  Histogram empty;
  a.record(7);
  a.merge(empty);  // no-op
  EXPECT_EQ(a.count(), 1);
  EXPECT_EQ(a.min(), 7);
  Histogram fresh;
  fresh.merge(a);  // empty side must adopt min, not keep its zero
  EXPECT_EQ(fresh.count(), 1);
  EXPECT_EQ(fresh.min(), 7);
  EXPECT_EQ(fresh.max(), 7);
  EXPECT_EQ(fresh.sum(), 7);
}

TEST(Histogram, QuantileIsBucketUpperEdgeCappedAtMax) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(10);  // all in [8, 16)
  // Upper edge of the bucket is 15, but no sample exceeds 10.
  EXPECT_EQ(h.quantile_upper_bound(0.5), 10);
  h.record(1000);  // one outlier in [512, 1024)
  EXPECT_EQ(h.quantile_upper_bound(0.5), 15);
  EXPECT_EQ(h.quantile_upper_bound(1.0), 1000);
}

TEST(Registry, InstrumentsAreKeyedByAllDimensions) {
  Registry r;
  r.counter("c", 0, -1, -1).add(1);
  r.counter("c", 1, -1, -1).add(2);
  r.counter("c", 0, -1, 3).add(4);
  EXPECT_EQ(r.counters().size(), 3u);
  EXPECT_EQ(r.counters().at(MetricKey{"c", 0, -1, -1}).value(), 1);
  EXPECT_EQ(r.counters().at(MetricKey{"c", 1, -1, -1}).value(), 2);
  EXPECT_EQ(r.counters().at(MetricKey{"c", 0, -1, 3}).value(), 4);
}

TEST(Registry, TimeseriesCsvIsExactAndOrdered) {
  Registry r;
  // Touch instruments out of key order; the map sorts the export.
  r.counter("z_count", 1, -1, 0).add(5);
  r.counter("a_count", 2, -1, -1).add(3);
  r.gauge("depth", 0, -1, -1).set(1.5);
  r.histogram("wait_ns", -1, 4, -1).record(10);
  r.histogram("wait_ns", -1, 4, -1).record(20);
  r.record(tls::sim::Time{100}, "depth", 0, -1, -1, 1.5);
  r.record(tls::sim::Time{200}, "depth", 0, -1, -1, 2.0);
  EXPECT_EQ(r.timeseries_csv(tls::sim::Time{1000}),
            "t_ns,metric,kind,host,job,band,value\n"
            "100,depth,sample,0,-1,-1,1.500000\n"
            "200,depth,sample,0,-1,-1,2.000000\n"
            "1000,a_count,counter,2,-1,-1,3\n"
            "1000,z_count,counter,1,-1,0,5\n"
            "1000,depth,gauge,0,-1,-1,1.500000\n"
            "1000,wait_ns.count,hist,-1,4,-1,2\n"
            "1000,wait_ns.sum,hist,-1,4,-1,30\n"
            "1000,wait_ns.min,hist,-1,4,-1,10\n"
            "1000,wait_ns.max,hist,-1,4,-1,20\n"
            // All three quantile ranks (floor(q*2) clamped to 1) land in
            // the 10-sample's bucket [8,16); interpolation spans lo=10
            // (clamped to min) to hi=15 with one sample, so pos/count = 1.
            "1000,wait_ns.p50,hist,-1,4,-1,15\n"
            "1000,wait_ns.p95,hist,-1,4,-1,15\n"
            "1000,wait_ns.p99,hist,-1,4,-1,15\n");
}

TEST(Histogram, QuantileInterpolatesWithinBucket) {
  // 1..8 across four buckets: rank arithmetic and the within-bucket
  // linear interpolation are exact, hand-computed values.
  Histogram h;
  for (std::int64_t v = 1; v <= 8; ++v) h.record(v);
  // rank 4 lands in bucket [4,8) at position 1 of 4: 4 + 3*1/4 = 4.
  EXPECT_EQ(h.quantile(0.5), 4);
  // rank 7 is position 4 of 4 in the same bucket: 4 + 3*4/4 = 7.
  EXPECT_EQ(h.quantile(0.95), 7);
  EXPECT_EQ(h.quantile(0.99), 7);
  // Extremes clamp to the observed min and max, not bucket edges.
  EXPECT_EQ(h.quantile(0.0), 1);
  EXPECT_EQ(h.quantile(1.0), 8);

  // Identical samples collapse lo == hi: every quantile is the value.
  Histogram flat;
  for (int i = 0; i < 100; ++i) flat.record(10);
  EXPECT_EQ(flat.quantile(0.5), 10);
  EXPECT_EQ(flat.quantile(0.99), 10);

  Histogram empty;
  EXPECT_EQ(empty.quantile(0.5), 0);
}

}  // namespace
}  // namespace tls::obs
