// obs::report_html tests: the dashboard is one self-contained document
// (no external references, balanced markup, the report JSON embedded
// verbatim and script-safe), plus the tlsreport CLI's --html/--stream
// flags and --follow driven end-to-end with an injected between-poll hook
// that grows the trace file — no wall-clock sleeps anywhere.
#include "obs/html.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/analysis.hpp"
#include "obs/export.hpp"
#include "obs/report_cli.hpp"
#include "obs/streaming.hpp"
#include "obs/trace.hpp"

namespace tls::obs {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::size_t count_substr(const std::string& haystack,
                         const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

/// A small but non-trivial report: one full synchronous iteration with
/// contention (mirrors the analysis_test fixture shape).
std::string small_report_json() {
  Tracer t;
  t.worker_compute(sim::Time{900}, net::HostId{1}, 0, 0, 0, sim::Time{200});
  t.barrier_enter(sim::Time{1000}, 0, 0, 0);
  t.flow_start(sim::Time{1100}, net::HostId{1}, net::HostId{0}, 0, 1, 101,
               net::Bytes{5000}, 0);
  t.chunk_enqueue(sim::Time{1100}, net::HostId{1}, 0, net::BandId{0}, 101, 0,
                  net::Bytes{5000});
  t.chunk_dequeue(sim::Time{1150}, net::HostId{1}, 0, net::BandId{0}, 101, 0,
                  net::Bytes{5000}, sim::Time{50});
  t.chunk_dequeue(sim::Time{1160}, net::HostId{1}, 1, net::BandId{2}, 999, 0,
                  net::Bytes{7777}, sim::Time{0});
  t.ingress_arrive(sim::Time{1250}, net::HostId{0}, 0, net::BandId{0}, 101, 0,
                   net::Bytes{5000});
  t.ingress_deliver(sim::Time{1300}, net::HostId{0}, 0, net::BandId{0}, 101,
                    0, net::Bytes{5000}, sim::Time{0}, sim::Time{50});
  t.flow_end(sim::Time{1300}, net::HostId{1}, net::HostId{0}, 0, 1, 101,
             net::Bytes{5000}, 0, sim::Time{200});
  t.barrier_release(sim::Time{2000}, 0, 0, 0, sim::Time{1000});
  return report_json(analyze(t.events()));
}

TEST(Html, SingleRunPageIsSelfContained) {
  std::string json = small_report_json();
  HtmlOptions opts;
  opts.title = "tlsreport: unit";
  opts.label_a = "unit";
  std::string html = report_html(json, "", opts);

  EXPECT_EQ(html.rfind("<!doctype html>", 0), 0u);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  // Exactly two scripts: the embedded JSON and the inline renderer.
  EXPECT_EQ(count_substr(html, "<script"), 2u);
  EXPECT_EQ(count_substr(html, "</script>"), 2u);
  EXPECT_NE(html.find("<script type=\"application/json\" id=\"tlsreport-a\">"),
            std::string::npos);
  // The report JSON is embedded verbatim (it contains no '<', so the
  // script-escape is the identity on it).
  EXPECT_EQ(json.find('<'), std::string::npos);
  EXPECT_NE(html.find(json), std::string::npos);
  // Self-contained: no external fetches of any kind.
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
  EXPECT_EQ(html.find("src="), std::string::npos);
  EXPECT_EQ(html.find("href="), std::string::npos);
  EXPECT_EQ(html.find("@import"), std::string::npos);
  // Static page: no auto-refresh.
  EXPECT_EQ(html.find("http-equiv=\"refresh\""), std::string::npos);
}

TEST(Html, HeatmapHasEgressIngressToggle) {
  // The blame heatmap is two-sided: an egress and an ingress pane behind
  // a button bar, egress shown by default — all inline, no new scripts.
  std::string json = small_report_json();
  std::string html = report_html(json, "", HtmlOptions{});
  EXPECT_NE(html.find("var SIDES = [\"egress\", \"ingress\"]"),
            std::string::npos);
  EXPECT_NE(html.find("show(\"egress\")"), std::string::npos)
      << "egress pane must be the default";
  EXPECT_NE(html.find("no egress-queue contention on any critical path"),
            std::string::npos);
  EXPECT_NE(html.find("no ingress fan-in contention on any critical path"),
            std::string::npos);
  EXPECT_EQ(count_substr(html, "<script"), 2u);
  EXPECT_EQ(html.find("src="), std::string::npos);
  EXPECT_EQ(html.find("href="), std::string::npos);
}

TEST(Html, DiffPageEmbedsBothReportsAndLabels) {
  std::string json = small_report_json();
  HtmlOptions opts;
  opts.label_a = "fifo";
  opts.label_b = "tls-one";
  std::string html = report_html(json, json, opts);
  EXPECT_NE(html.find("id=\"tlsreport-a\""), std::string::npos);
  EXPECT_NE(html.find("id=\"tlsreport-b\""), std::string::npos);
  EXPECT_NE(html.find("data-label-a=\"fifo\""), std::string::npos);
  EXPECT_NE(html.find("data-label-b=\"tls-one\""), std::string::npos);
  EXPECT_EQ(count_substr(html, "<script"), 3u);
}

TEST(Html, EscapesLabelsAndRefreshMeta) {
  HtmlOptions opts;
  opts.title = "a<b&\"c";
  opts.label_a = "x<y";
  opts.refresh_seconds = 2;
  std::string html = report_html("{\"schema\":\"tlsreport-v2\",\"jobs\":[]}\n",
                                 "", opts);
  EXPECT_EQ(html.find("a<b"), std::string::npos);
  EXPECT_NE(html.find("a&lt;b&amp;&quot;c"), std::string::npos);
  EXPECT_NE(html.find("x&lt;y"), std::string::npos);
  EXPECT_NE(html.find("<meta http-equiv=\"refresh\" content=\"2\">"),
            std::string::npos);
}

TEST(Html, JsonScriptEscapeForeclosesScriptTermination) {
  // A hostile label inside diff JSON must not be able to close the script
  // block early.
  std::string json =
      "{\"schema\":\"tlsreport-diff-v2\",\"a\":\"</script><script>\","
      "\"b\":\"b\",\"jobs\":[]}\n";
  std::string html = report_html(json, "", HtmlOptions{});
  EXPECT_EQ(html.find("</script><script>"), std::string::npos);
  EXPECT_NE(html.find("\\u003c/script>"), std::string::npos);
}

// ---------------------------------------------------------------------------
// CLI: --html, --stream, and --follow with an injected poll hook.

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun report_cli(std::vector<std::string> args,
                  const ReportCliHooks& hooks = {}) {
  std::vector<const char*> argv;
  argv.push_back("tlsreport");
  for (const std::string& a : args) argv.push_back(a.c_str());
  std::ostringstream out, err;
  int code = run_report_cli(static_cast<int>(argv.size()), argv.data(), out,
                            err, hooks);
  return {code, out.str(), err.str()};
}

/// Synthetic two-iteration trace reused by the CLI tests (no simulation:
/// these tests are about plumbing, not attribution).
std::string cli_trace_csv() {
  Tracer t;
  for (std::int64_t iter = 0; iter < 2; ++iter) {
    sim::Time base{iter * 10000};
    t.worker_compute(base + sim::Time{0}, net::HostId{1}, 0, 0, iter,
                     sim::Time{200});
    t.barrier_enter(base + sim::Time{100}, 0, 0, iter);
    t.barrier_release(base + sim::Time{1100}, 0, 0, iter, sim::Time{1000});
  }
  return trace_csv(t);
}

TEST(ReportCliHtml, WritesDashboardAndStreamMatchesBatch) {
  fs::path dir = fs::path(testing::TempDir()) / "tls_cli_html";
  fs::remove_all(dir);
  fs::create_directories(dir);
  fs::path trace = dir / "trace.csv";
  std::ofstream(trace, std::ios::binary) << cli_trace_csv();

  fs::path html = dir / "out.html";
  fs::path json_batch = dir / "batch.json";
  fs::path json_stream = dir / "stream.json";

  CliRun batch = report_cli({trace.string(), "--quiet", "--html",
                             html.string(), "--json", json_batch.string()});
  ASSERT_EQ(batch.code, 0) << batch.err;
  CliRun stream = report_cli({trace.string(), "--quiet", "--stream", "--json",
                              json_stream.string()});
  ASSERT_EQ(stream.code, 0) << stream.err;
  EXPECT_EQ(read_file(json_batch), read_file(json_stream))
      << "--stream diverged from the batch engine";

  std::string page = read_file(html);
  ASSERT_FALSE(page.empty());
  EXPECT_EQ(page.rfind("<!doctype html>", 0), 0u);
  EXPECT_NE(page.find(read_file(json_batch)), std::string::npos)
      << "dashboard must embed the exact report JSON";
}

TEST(ReportCliFollow, RendersGrowingTraceViaHook) {
  fs::path dir = fs::path(testing::TempDir()) / "tls_cli_follow";
  fs::remove_all(dir);
  fs::create_directories(dir);
  fs::path trace = dir / "trace.csv";
  fs::path html = dir / "live.html";
  fs::path json = dir / "final.json";

  std::string csv = cli_trace_csv();
  // Split the file into three appends, the second ending mid-line.
  std::size_t first_cut = csv.find('\n', csv.size() / 3) + 1;
  std::size_t second_cut = (2 * csv.size()) / 3;  // deliberately mid-line
  std::vector<std::string> stages = {
      csv.substr(0, first_cut), csv.substr(first_cut, second_cut - first_cut),
      csv.substr(second_cut)};

  std::size_t stage = 0;
  ReportCliHooks hooks;
  hooks.sleep_ms = [&](int) {
    std::ofstream out(trace, std::ios::binary | std::ios::app);
    if (stage < stages.size()) out << stages[stage++];
  };

  // No file at the first poll; the hook then feeds one stage per "sleep";
  // --idle-polls stops the loop once appends dry up.
  CliRun r = report_cli({"--follow", trace.string(), "--html", html.string(),
                         "--json", json.string(), "--poll-ms", "1000",
                         "--idle-polls", "2", "--quiet"},
                        hooks);
  ASSERT_EQ(r.code, 0) << r.err;

  std::string page = read_file(html);
  ASSERT_FALSE(page.empty());
  EXPECT_EQ(page.rfind("<!doctype html>", 0), 0u);
  // The final render is static (the run is over).
  EXPECT_EQ(page.find("http-equiv=\"refresh\""), std::string::npos);

  // The finished follow report equals a batch run over the complete file.
  std::ostringstream sink;
  fs::path json_batch = dir / "batch.json";
  CliRun batch = report_cli(
      {trace.string(), "--quiet", "--json", json_batch.string()});
  ASSERT_EQ(batch.code, 0) << batch.err;
  EXPECT_EQ(read_file(json), read_file(json_batch));
  EXPECT_NE(page.find(read_file(json_batch)), std::string::npos);
}

TEST(ReportCliFollow, CarriesHealthTrailerIntoBannerAndJson) {
  // A sampled capture (tlsim --trace-sample) writes a #health trailer;
  // following that file must surface the trailer in the final JSON's
  // trace_health object and as the dashboard's incomplete-trace banner
  // plus the sampling note.
  Tracer t;
  t.set_sample_every(Cat::kQdisc, 2);  // what --trace-sample qdisc=2 sets
  for (std::int64_t iter = 0; iter < 2; ++iter) {
    sim::Time base{iter * 10000};
    t.worker_compute(base + sim::Time{0}, net::HostId{1}, 0, 0, iter,
                     sim::Time{200});
    t.barrier_enter(base + sim::Time{100}, 0, 0, iter);
    t.barrier_release(base + sim::Time{1100}, 0, 0, iter, sim::Time{1000});
  }
  for (int i = 0; i < 4; ++i) {  // every-2nd sampled out: 2 excluded
    t.band_service(sim::Time{500 + i}, net::HostId{0}, net::BandId{0},
                   net::Bytes{10});
  }
  t.set_max_events(t.events().size());  // cap reached: next record drops
  t.band_service(sim::Time{600}, net::HostId{0}, net::BandId{0},
                 net::Bytes{10});
  std::string csv = trace_csv(t);
  ASSERT_NE(csv.find("#health,dropped,total,1"), std::string::npos) << csv;
  ASSERT_NE(csv.find("#health,sampled,qdisc,2"), std::string::npos) << csv;

  fs::path dir = fs::path(testing::TempDir()) / "tls_cli_follow_health";
  fs::remove_all(dir);
  fs::create_directories(dir);
  fs::path trace = dir / "trace.csv";
  fs::path html = dir / "live.html";
  fs::path json = dir / "final.json";
  std::ofstream(trace, std::ios::binary) << csv;

  CliRun r = report_cli({"--follow", trace.string(), "--html", html.string(),
                         "--json", json.string(), "--poll-ms", "1000",
                         "--idle-polls", "1", "--quiet"});
  ASSERT_EQ(r.code, 0) << r.err;

  std::string doc = read_file(json);
  EXPECT_NE(doc.find("\"trace_health\":{\"dropped_total\":1"),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"sampled_out_total\":2"), std::string::npos) << doc;

  std::string page = read_file(html);
  ASSERT_FALSE(page.empty());
  // The banner and note are rendered client-side from the embedded JSON;
  // the page must carry both the renderer strings and the health object.
  EXPECT_NE(page.find("WARNING: trace is incomplete"), std::string::npos);
  EXPECT_NE(page.find("capture sampling excluded"), std::string::npos);
  EXPECT_NE(page.find("\"trace_health\":{\"dropped_total\":1"),
            std::string::npos);
}

TEST(ReportCliFollow, UsageErrors) {
  CliRun no_html = report_cli({"--follow", "t.csv"});
  EXPECT_EQ(no_html.code, 2);
  EXPECT_NE(no_html.err.find("--follow requires --html"), std::string::npos);

  CliRun with_diff = report_cli({"--follow", "--diff", "a.csv", "b.csv"});
  EXPECT_EQ(with_diff.code, 2);
  EXPECT_NE(with_diff.err.find("mutually exclusive"), std::string::npos);

  CliRun bad_int = report_cli({"--follow", "t.csv", "--html", "o.html",
                               "--poll-ms", "soon"});
  EXPECT_EQ(bad_int.code, 2);
  EXPECT_NE(bad_int.err.find("non-negative integer"), std::string::npos);
}

}  // namespace
}  // namespace tls::obs
