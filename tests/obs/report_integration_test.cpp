// End-to-end attribution-report tests on real simulations: the golden
// report for a contended 5-host/2-job scenario, exact conservation of the
// critical-path decomposition, blame-byte cross checks, report artifact
// determinism (repeated runs and serial-vs-parallel RunSets), the
// machine-checked FIFO-vs-TLs-One cross-job-blame elimination, and the
// tlsreport CLI driven in-process.
//
// Regenerate the golden after an intentional format or scenario change:
//   TLS_REGOLDEN=1 ./test_obs --gtest_filter='ReportGolden.*'
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "obs/analysis.hpp"
#include "obs/reader.hpp"
#include "obs/report_cli.hpp"
#include "obs/trace.hpp"
#include "runtime/runner.hpp"

namespace tls {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// The paper's contention shape scaled to test size: 2 jobs × 4 workers on
/// 5 hosts, every PS on host 0 (Table I #1), 10 sync iterations. Under
/// FIFO both jobs accumulate MB-scale cross-job blame at the shared PS
/// host; under TLs-One the prioritized job's cross-job blame is exactly 0.
exp::ExperimentConfig contended_scenario(core::PolicyKind policy) {
  exp::ExperimentConfig c;
  c.num_hosts = 5;
  c.workload.num_jobs = 2;
  c.workload.workers_per_job = 4;
  c.workload.global_step_target = 4 * 10;  // 10 iterations x 4 workers
  c.placement = cluster::table1(1, 2);
  c.controller.policy = policy;
  c.seed = 1;
  return c;
}

/// Runs `config` with report + trace-CSV artifacts under `dir`; returns the
/// analysis rebuilt offline from the trace CSV (exercising the reader).
obs::RunReport run_and_analyze(exp::ExperimentConfig config,
                               const fs::path& dir) {
  fs::create_directories(dir);
  config.obs.trace_csv_path = (dir / "trace.csv").string();
  config.obs.report_path = (dir / "report.txt").string();
  config.obs.report_csv_path = (dir / "report.csv").string();
  config.obs.report_json_path = (dir / "report.json").string();
  exp::ExperimentResult result = exp::run_experiment(config);
  EXPECT_TRUE(result.all_finished);
  std::vector<obs::TraceEvent> events;
  std::string error;
  EXPECT_TRUE(obs::read_trace_csv_file((dir / "trace.csv").string(), &events,
                                       &error))
      << error;
  return obs::analyze(events);
}

TEST(ReportGolden, ContendedFifoReportMatchesGolden) {
  fs::path dir = fs::path(testing::TempDir()) / "tls_report_golden";
  fs::remove_all(dir);
  fs::create_directories(dir);
  exp::ExperimentConfig c = contended_scenario(core::PolicyKind::kFifo);
  c.obs.report_path = (dir / "report.txt").string();
  exp::ExperimentResult result = exp::run_experiment(c);
  ASSERT_TRUE(result.all_finished);
  std::string got = read_file(dir / "report.txt");
  ASSERT_FALSE(got.empty());

  fs::path golden = fs::path(TLS_OBS_GOLDEN_DIR) / "report_5h2j_fifo.txt";
  if (std::getenv("TLS_REGOLDEN") != nullptr) {
    fs::create_directories(golden.parent_path());
    std::ofstream out(golden, std::ios::binary);
    out << got;
    GTEST_SKIP() << "regenerated " << golden;
  }
  std::string want = read_file(golden);
  ASSERT_FALSE(want.empty())
      << "missing golden " << golden << " — regenerate with TLS_REGOLDEN=1";
  EXPECT_EQ(got, want)
      << "attribution report drifted; if intentional, regenerate the golden "
         "with TLS_REGOLDEN=1";
}

TEST(ReportConservation, SegmentsSumExactlyToBarrierWait) {
  fs::path dir = fs::path(testing::TempDir()) / "tls_report_conserve";
  fs::remove_all(dir);
  obs::RunReport report =
      run_and_analyze(contended_scenario(core::PolicyKind::kFifo), dir);
  ASSERT_FALSE(report.iterations.empty());

  std::map<std::int32_t, obs::JobSummary> totals;
  for (const obs::IterationReport& r : report.iterations) {
    // The five buckets partition the barrier window with integer exactness.
    EXPECT_EQ(r.compute_ns + r.egress_queue_ns + r.serialization_ns +
                  r.fan_in_ns + r.other_ns,
              r.barrier_wait)
        << "job " << r.job << " iter " << r.iteration;
    EXPECT_EQ(r.release_at - r.enter_at, r.barrier_wait);

    // Segments tile [enter, release]: contiguous, forward-ordered, and
    // their per-kind sums reproduce the bucket fields.
    ASSERT_FALSE(r.segments.empty());
    EXPECT_EQ(r.segments.front().begin, r.enter_at);
    EXPECT_EQ(r.segments.back().end, r.release_at);
    sim::Time by_kind[5] = {tls::sim::Time{0}, tls::sim::Time{0}, tls::sim::Time{0}, tls::sim::Time{0}, tls::sim::Time{0}};
    for (std::size_t i = 0; i < r.segments.size(); ++i) {
      const obs::PathSegment& s = r.segments[i];
      EXPECT_LT(s.begin, s.end);
      if (i > 0) {
        EXPECT_EQ(r.segments[i - 1].end, s.begin);
      }
      by_kind[static_cast<int>(s.kind)] += s.end - s.begin;
    }
    EXPECT_EQ(by_kind[0], r.compute_ns);
    EXPECT_EQ(by_kind[1], r.egress_queue_ns);
    EXPECT_EQ(by_kind[2], r.serialization_ns);
    EXPECT_EQ(by_kind[3], r.fan_in_ns);
    EXPECT_EQ(by_kind[4], r.other_ns);

    // The fan-in sub-attribution partitions fan_in exactly, and the
    // per-segment split points reproduce the iteration fields.
    EXPECT_EQ(r.fan_in_wait_ns + r.fan_in_ser_ns, r.fan_in_ns)
        << "job " << r.job << " iter " << r.iteration;
    sim::Time wait_from_segments{0};
    for (const obs::PathSegment& s : r.segments) {
      if (s.kind == obs::SegmentKind::kFanIn) {
        ASSERT_GE(s.fan_in_wait_end, s.begin);
        ASSERT_LE(s.fan_in_wait_end, s.end);
        wait_from_segments += s.fan_in_wait_end - s.begin;
      } else {
        EXPECT_EQ(s.fan_in_wait_end, tls::sim::Time{-1});
      }
    }
    EXPECT_EQ(wait_from_segments, r.fan_in_wait_ns);

    obs::JobSummary& t = totals[r.job];
    t.total_wait_ns += r.barrier_wait;
    t.compute_ns += r.compute_ns;
    t.egress_queue_ns += r.egress_queue_ns;
    t.serialization_ns += r.serialization_ns;
    t.fan_in_ns += r.fan_in_ns;
    t.other_ns += r.other_ns;
    t.fan_in_wait_ns += r.fan_in_wait_ns;
    t.fan_in_ser_ns += r.fan_in_ser_ns;
    for (const obs::BlameEntry& b : r.blame) {
      EXPECT_GT(b.bytes, 0);
      const bool egress = b.side == obs::BlameSide::kEgress;
      if (b.culprit_job == r.job) {
        (egress ? t.self_blame_bytes : t.self_ingress_blame_bytes) += b.bytes;
      } else {
        (egress ? t.cross_job_blame_bytes : t.cross_job_ingress_blame_bytes) +=
            b.bytes;
      }
    }
  }
  // The per-job rollups are exactly the sums of their iterations.
  ASSERT_EQ(report.jobs.size(), totals.size());
  for (const obs::JobSummary& js : report.jobs) {
    const obs::JobSummary& t = totals.at(js.job);
    EXPECT_EQ(js.total_wait_ns, t.total_wait_ns) << "job " << js.job;
    EXPECT_EQ(js.compute_ns, t.compute_ns);
    EXPECT_EQ(js.egress_queue_ns, t.egress_queue_ns);
    EXPECT_EQ(js.serialization_ns, t.serialization_ns);
    EXPECT_EQ(js.fan_in_ns, t.fan_in_ns);
    EXPECT_EQ(js.other_ns, t.other_ns);
    EXPECT_EQ(js.cross_job_blame_bytes, t.cross_job_blame_bytes);
    EXPECT_EQ(js.self_blame_bytes, t.self_blame_bytes);
    EXPECT_EQ(js.fan_in_wait_ns, t.fan_in_wait_ns);
    EXPECT_EQ(js.fan_in_ser_ns, t.fan_in_ser_ns);
    EXPECT_EQ(js.cross_job_ingress_blame_bytes,
              t.cross_job_ingress_blame_bytes);
    EXPECT_EQ(js.self_ingress_blame_bytes, t.self_ingress_blame_bytes);
  }
}

TEST(ReportConservation, BlameBytesBracketedByIndependentRecount) {
  // Independent cross-check of the blame matrix: for every egress-queueing
  // segment on a critical path, recount the foreign dequeue bytes at that
  // host by *time* window. Events strictly inside (begin, end) are in the
  // log window too (the log is appended in nondecreasing-time dispatch
  // order), so strict-interior <= reported <= closed-interval.
  fs::path dir = fs::path(testing::TempDir()) / "tls_report_recount";
  fs::remove_all(dir);
  exp::ExperimentConfig c = contended_scenario(core::PolicyKind::kFifo);
  fs::create_directories(dir);
  c.obs.trace_csv_path = (dir / "trace.csv").string();
  exp::run_experiment(c);
  std::vector<obs::TraceEvent> events;
  std::string error;
  ASSERT_TRUE(obs::read_trace_csv_file((dir / "trace.csv").string(), &events,
                                       &error))
      << error;
  obs::RunReport report = obs::analyze(events);

  std::int64_t reported = 0;
  for (const obs::IterationReport& r : report.iterations) {
    for (const obs::BlameEntry& b : r.blame) {
      if (b.side == obs::BlameSide::kEgress) reported += b.bytes;
    }
  }
  ASSERT_GT(reported, 0) << "scenario no longer contends";

  std::int64_t interior = 0, closed = 0;
  for (const obs::IterationReport& r : report.iterations) {
    for (const obs::PathSegment& s : r.segments) {
      if (s.kind != obs::SegmentKind::kEgressQueue) continue;
      // Segments are clamped to the barrier window, but blame scans the
      // chunk's full enqueue..dequeue range; recover the true enqueue
      // instant from the dequeue event's queue-wait payload (field `a`).
      sim::Time begin = s.begin;
      for (const obs::TraceEvent& e : events) {
        if (e.kind == obs::EventKind::kChunkDequeue && e.host == s.host &&
            e.flow == s.flow && e.at == s.end) {
          begin = e.at - sim::Time{e.a};
          break;
        }
      }
      for (const obs::TraceEvent& e : events) {
        if (e.kind != obs::EventKind::kChunkDequeue) continue;
        if (e.host != s.host || e.flow == s.flow) continue;
        if (e.at > begin && e.at < s.end) interior += e.bytes;
        if (e.at >= begin && e.at <= s.end) closed += e.bytes;
      }
    }
  }
  EXPECT_LE(interior, reported);
  EXPECT_LE(reported, closed);
}

TEST(ReportConservation, IngressBlameBytesBracketedByIndependentRecount) {
  // Mirror of the egress bracket for the ingress side: for every fan-in
  // segment on a critical path, recount the foreign deliver bytes at the
  // receiving host by *time* window (true arrival recovered from the
  // deliver's residence payload). Strict-interior <= reported <= closed.
  fs::path dir = fs::path(testing::TempDir()) / "tls_report_irecount";
  fs::remove_all(dir);
  exp::ExperimentConfig c = contended_scenario(core::PolicyKind::kFifo);
  fs::create_directories(dir);
  c.obs.trace_csv_path = (dir / "trace.csv").string();
  exp::run_experiment(c);
  std::vector<obs::TraceEvent> events;
  std::string error;
  ASSERT_TRUE(obs::read_trace_csv_file((dir / "trace.csv").string(), &events,
                                       &error))
      << error;
  obs::RunReport report = obs::analyze(events);

  std::int64_t reported = 0;
  for (const obs::IterationReport& r : report.iterations) {
    for (const obs::BlameEntry& b : r.blame) {
      if (b.side == obs::BlameSide::kIngress) reported += b.bytes;
    }
  }
  ASSERT_GT(reported, 0) << "scenario no longer contends at the ingress port";

  std::int64_t interior = 0, closed = 0;
  for (const obs::IterationReport& r : report.iterations) {
    for (const obs::PathSegment& s : r.segments) {
      if (s.kind != obs::SegmentKind::kFanIn) continue;
      // The fan-in segment ends at the critical chunk's deliver; its true
      // arrival is deliver minus residence (the deliver event's dur).
      sim::Time begin = s.begin;
      for (const obs::TraceEvent& e : events) {
        if (e.kind == obs::EventKind::kIngressDeliver && e.host == s.host &&
            e.flow == s.flow && e.at == s.end) {
          begin = e.at - e.dur;
          break;
        }
      }
      for (const obs::TraceEvent& e : events) {
        if (e.kind != obs::EventKind::kIngressDeliver) continue;
        if (e.host != s.host || e.flow == s.flow) continue;
        if (e.at > begin && e.at < s.end) interior += e.bytes;
        if (e.at >= begin && e.at <= s.end) closed += e.bytes;
      }
    }
  }
  EXPECT_LE(interior, reported);
  EXPECT_LE(reported, closed);
}

TEST(ReportBlame, SingleJobRunHasNoCrossJobBlame) {
  fs::path dir = fs::path(testing::TempDir()) / "tls_report_onejob";
  fs::remove_all(dir);
  exp::ExperimentConfig c = contended_scenario(core::PolicyKind::kFifo);
  c.workload.num_jobs = 1;
  c.placement = cluster::table1(1, 1);
  obs::RunReport report = run_and_analyze(c, dir);
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.jobs[0].cross_job_blame_bytes, 0);
  for (const obs::IterationReport& r : report.iterations) {
    for (const obs::BlameEntry& b : r.blame) {
      EXPECT_EQ(b.culprit_job, r.job);
    }
  }
}

TEST(ReportDiff, TlsOneEliminatesPrioritizedJobsCrossJobBlame) {
  // The machine-checked headline: under FIFO the prioritized job queues
  // behind the other job's traffic; under TLs-One (job 0 in the green
  // band) that cross-job blame drops to exactly zero.
  fs::path fifo_dir = fs::path(testing::TempDir()) / "tls_report_diff_fifo";
  fs::path one_dir = fs::path(testing::TempDir()) / "tls_report_diff_one";
  fs::remove_all(fifo_dir);
  fs::remove_all(one_dir);
  obs::RunReport fifo =
      run_and_analyze(contended_scenario(core::PolicyKind::kFifo), fifo_dir);
  obs::RunReport one =
      run_and_analyze(contended_scenario(core::PolicyKind::kTlsOne), one_dir);

  ASSERT_EQ(fifo.jobs.size(), 2u);
  ASSERT_EQ(one.jobs.size(), 2u);
  EXPECT_GT(fifo.jobs[0].cross_job_blame_bytes, 0)
      << "FIFO baseline no longer contends; grow the scenario";
  EXPECT_EQ(one.jobs[0].cross_job_blame_bytes, 0)
      << "TLs-One failed to isolate the prioritized job";

  obs::DiffReport d = obs::diff_reports(fifo, one, "fifo", "tls-one");
  std::string text = obs::diff_text(d);
  EXPECT_NE(text.find("[queueing-behind-other-jobs eliminated]"),
            std::string::npos)
      << text;

  // The ingress side tells the complementary story: TLs-One schedules the
  // egress port only, so it reshuffles — not removes — fan-in contention.
  // Under FIFO the prioritized job absorbs cross-job deliver bytes at its
  // PS host; the deprioritized job sees none. Under TLs-One job 1's bursts
  // land behind job 0's, so job 1 *gains* ingress blame; the reverse diff
  // (tls-one -> fifo) then certifies that contention eliminated.
  EXPECT_GT(fifo.jobs[0].cross_job_ingress_blame_bytes, 0)
      << "FIFO baseline no longer contends at the ingress port";
  EXPECT_EQ(fifo.jobs[1].cross_job_ingress_blame_bytes, 0);
  EXPECT_GT(one.jobs[1].cross_job_ingress_blame_bytes, 0)
      << "TLs-One no longer displaces fan-in contention onto job 1";

  obs::DiffReport rev = obs::diff_reports(one, fifo, "tls-one", "fifo");
  std::string rev_text = obs::diff_text(rev);
  EXPECT_NE(rev_text.find("[fan-in contention eliminated]"), std::string::npos)
      << rev_text;
}

TEST(ReportDeterminism, RepeatedSeededRunsWriteIdenticalReports) {
  fs::path a = fs::path(testing::TempDir()) / "tls_report_det_a";
  fs::path b = fs::path(testing::TempDir()) / "tls_report_det_b";
  fs::remove_all(a);
  fs::remove_all(b);
  run_and_analyze(contended_scenario(core::PolicyKind::kTlsOne), a);
  run_and_analyze(contended_scenario(core::PolicyKind::kTlsOne), b);
  for (const char* file : {"report.txt", "report.csv", "report.json"}) {
    std::string first = read_file(a / file);
    ASSERT_FALSE(first.empty()) << file;
    EXPECT_EQ(first, read_file(b / file)) << file << " differs across runs";
  }
}

TEST(ReportDeterminism, SerialAndParallelRunSetsWriteIdenticalReports) {
  // The 3-policy comparison with report artifacts, executed with one
  // worker and with eight: per-run label-derived report files must be
  // byte-identical.
  fs::path serial_dir = fs::path(testing::TempDir()) / "tls_report_serial";
  fs::path parallel_dir = fs::path(testing::TempDir()) / "tls_report_par";
  fs::remove_all(serial_dir);
  fs::remove_all(parallel_dir);

  auto run_with = [&](const fs::path& dir, int jobs) {
    fs::create_directories(dir);
    exp::ExperimentConfig base = contended_scenario(core::PolicyKind::kFifo);
    base.obs.report_path = (dir / "report.txt").string();
    base.obs.report_json_path = (dir / "report.json").string();
    runtime::RunPlan plan = runtime::RunPlan::policy_comparison(base);
    runtime::RunOptions options;
    options.jobs = jobs;
    options.cache_dir = "";  // isolate from any $TLS_CACHE_DIR
    return runtime::run_plan(plan, options);
  };
  runtime::RunReport serial = run_with(serial_dir, 1);
  runtime::RunReport parallel = run_with(parallel_dir, 8);
  ASSERT_EQ(serial.labels, parallel.labels);

  for (const std::string& label : serial.labels) {
    for (const char* base : {"report.txt", "report.json"}) {
      std::string name =
          fs::path(obs::per_run_path(base, label)).filename().string();
      std::string first = read_file(serial_dir / name);
      ASSERT_FALSE(first.empty()) << name;
      EXPECT_EQ(first, read_file(parallel_dir / name))
          << name << " differs between jobs=1 and jobs=8";
    }
  }
}

TEST(ReportArtifacts, JsonIsWellFormedAndIntegerOnly) {
  fs::path dir = fs::path(testing::TempDir()) / "tls_report_json";
  fs::remove_all(dir);
  run_and_analyze(contended_scenario(core::PolicyKind::kFifo), dir);
  std::string json = read_file(dir / "report.json");
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"schema\":\"tlsreport-v2\""), std::string::npos);
  // No string payload contains braces/brackets, so balance is structural.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_EQ(json.find('.'), std::string::npos) << "floats break determinism";
}

// ---------------------------------------------------------------------------
// tlsreport CLI, driven in-process (tools/tlsreport.cpp is a 2-line shim
// over run_report_cli).

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun report_cli(std::vector<std::string> args) {
  std::vector<const char*> argv;
  argv.push_back("tlsreport");
  for (const std::string& a : args) argv.push_back(a.c_str());
  std::ostringstream out, err;
  int code = obs::run_report_cli(static_cast<int>(argv.size()), argv.data(),
                                 out, err);
  return {code, out.str(), err.str()};
}

/// Writes the contended scenario's trace CSV once per binary run.
const std::string& shared_trace_csv(core::PolicyKind policy,
                                    const char* name) {
  static std::map<std::string, std::string> cache;
  auto it = cache.find(name);
  if (it != cache.end()) return it->second;
  fs::path dir = fs::path(testing::TempDir()) / "tls_report_cli" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  exp::ExperimentConfig c = contended_scenario(policy);
  c.obs.trace_csv_path = (dir / (std::string(name) + ".csv")).string();
  exp::run_experiment(c);
  return cache.emplace(name, c.obs.trace_csv_path).first->second;
}

TEST(ReportCli, SingleTraceReportMatchesInProcessAnalysis) {
  const std::string& trace = shared_trace_csv(core::PolicyKind::kFifo, "fifo");
  fs::path dir = fs::path(testing::TempDir()) / "tls_report_cli_out";
  fs::create_directories(dir);
  std::string csv_path = (dir / "out.csv").string();
  std::string json_path = (dir / "out.json").string();
  CliRun r = report_cli({trace, "--csv", csv_path, "--json", json_path});
  ASSERT_EQ(r.code, 0) << r.err;

  std::vector<obs::TraceEvent> events;
  std::string error;
  ASSERT_TRUE(obs::read_trace_csv_file(trace, &events, &error)) << error;
  obs::RunReport report = obs::analyze(events);
  EXPECT_EQ(r.out, obs::report_text(report));
  EXPECT_EQ(read_file(csv_path), obs::report_csv(report));
  EXPECT_EQ(read_file(json_path), obs::report_json(report));
}

TEST(ReportCli, DiffCertifiesElimination) {
  const std::string& fifo = shared_trace_csv(core::PolicyKind::kFifo, "fifo");
  const std::string& one =
      shared_trace_csv(core::PolicyKind::kTlsOne, "tls-one");
  CliRun r = report_cli({"--diff", fifo, one});
  ASSERT_EQ(r.code, 0) << r.err;
  // Labels derive from the file basenames.
  EXPECT_NE(r.out.find("A=fifo B=tls-one"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("[queueing-behind-other-jobs eliminated]"),
            std::string::npos)
      << r.out;
}

TEST(ReportCli, QuietSuppressesText) {
  const std::string& trace = shared_trace_csv(core::PolicyKind::kFifo, "fifo");
  CliRun r = report_cli({trace, "--quiet"});
  EXPECT_EQ(r.code, 0);
  EXPECT_TRUE(r.out.empty());
}

TEST(ReportCli, HelpAndErrors) {
  EXPECT_EQ(report_cli({"--help"}).code, 0);
  EXPECT_NE(report_cli({"--help"}).out.find("usage: tlsreport"),
            std::string::npos);

  CliRun unknown = report_cli({"--frobnicate"});
  EXPECT_EQ(unknown.code, 2);
  EXPECT_NE(unknown.err.find("unknown flag"), std::string::npos);

  CliRun missing = report_cli({"/nonexistent-dir-xyz/trace.csv"});
  EXPECT_EQ(missing.code, 2);
  EXPECT_NE(missing.err.find("/nonexistent-dir-xyz/trace.csv"),
            std::string::npos);

  CliRun wrong_count = report_cli({"--diff", "only-one.csv"});
  EXPECT_EQ(wrong_count.code, 2);
  EXPECT_NE(wrong_count.err.find("expected 2"), std::string::npos);

  CliRun no_value = report_cli({"a.csv", "--csv"});
  EXPECT_EQ(no_value.code, 2);
  EXPECT_NE(no_value.err.find("--csv requires a value"), std::string::npos);
}

}  // namespace
}  // namespace tls
