// End-to-end observability tests: the golden-file trace for a small
// 2-host/2-job scenario, and the byte-identity contract — repeated seeded
// runs and serial-vs-parallel RunSets must write identical artifact files.
//
// Regenerate the golden after an intentional format or scenario change:
//   TLS_REGOLDEN=1 ./test_obs --gtest_filter='ObsGolden.*'
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/experiment.hpp"
#include "obs/trace.hpp"
#include "runtime/runner.hpp"

namespace tls {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Tiny but complete scenario: 2 hosts, 2 jobs sharing one PS host and one
/// worker host, a toy model small enough that the whole trace stays
/// reviewable, TLs-RR so rotation/band-assign events appear.
exp::ExperimentConfig small_scenario() {
  exp::ExperimentConfig c;
  c.num_hosts = 2;
  c.cores_per_host = 4;
  c.workload.num_jobs = 2;
  c.workload.workers_per_job = 1;
  c.workload.local_batch_size = 1;
  c.workload.step_overhead = 0;
  c.workload.global_step_target = 2;  // two sync iterations per job
  c.workload.model = dl::ModelSpec{"toy", 64'000, 5.0};
  c.placement = cluster::table1(1, 2);
  c.controller.policy = core::PolicyKind::kTlsRR;
  c.controller.rotation_interval = 50 * sim::kMillisecond;
  c.stagger = 10 * sim::kMillisecond;
  c.seed = 7;
  c.obs.sample_period = 20 * sim::kMillisecond;
  return c;
}

/// Attaches all three artifact paths under `dir`.
exp::ExperimentConfig with_artifacts(exp::ExperimentConfig c,
                                     const fs::path& dir) {
  fs::create_directories(dir);
  c.obs.trace_path = (dir / "trace.json").string();
  c.obs.trace_csv_path = (dir / "trace.csv").string();
  c.obs.metrics_path = (dir / "metrics.csv").string();
  return c;
}

TEST(ObsGolden, TwoHostTwoJobTraceMatchesGolden) {
  fs::path dir = fs::path(testing::TempDir()) / "tls_obs_golden_run";
  fs::remove_all(dir);
  exp::ExperimentConfig c = with_artifacts(small_scenario(), dir);
  exp::ExperimentResult result = exp::run_experiment(c);
  ASSERT_TRUE(result.all_finished);
  std::string got = read_file(dir / "trace.json");
  ASSERT_FALSE(got.empty());

  fs::path golden = fs::path(TLS_OBS_GOLDEN_DIR) / "trace_2h2j.json";
  if (std::getenv("TLS_REGOLDEN") != nullptr) {
    fs::create_directories(golden.parent_path());
    std::ofstream out(golden, std::ios::binary);
    out << got;
    GTEST_SKIP() << "regenerated " << golden;
  }
  std::string want = read_file(golden);
  ASSERT_FALSE(want.empty())
      << "missing golden " << golden << " — regenerate with TLS_REGOLDEN=1";
  EXPECT_EQ(got, want)
      << "trace format or scenario drifted; if intentional, regenerate the "
         "golden with TLS_REGOLDEN=1";
}

TEST(ObsGolden, TraceLooksLikeWellFormedChromeJson) {
  fs::path dir = fs::path(testing::TempDir()) / "tls_obs_wellformed";
  fs::remove_all(dir);
  exp::ExperimentConfig c = with_artifacts(small_scenario(), dir);
  exp::run_experiment(c);
  std::string json = read_file(dir / "trace.json");
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // No string payload contains braces, so brace balance is a faithful
  // structural check here (the CI smoke test runs a real JSON parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  // The scenario exercises every layer: NIC chunks, qdisc service,
  // controller assignment, barriers, and periodic gauges.
  for (const char* name :
       {"chunk_enqueue", "chunk_dequeue", "band_assign", "barrier_release",
        "gauge_sample"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
}

TEST(ObsDeterminism, RepeatedSeededRunsWriteIdenticalArtifacts) {
  fs::path a = fs::path(testing::TempDir()) / "tls_obs_det_a";
  fs::path b = fs::path(testing::TempDir()) / "tls_obs_det_b";
  fs::remove_all(a);
  fs::remove_all(b);
  exp::run_experiment(with_artifacts(small_scenario(), a));
  exp::run_experiment(with_artifacts(small_scenario(), b));
  for (const char* file : {"trace.json", "trace.csv", "metrics.csv"}) {
    std::string first = read_file(a / file);
    ASSERT_FALSE(first.empty()) << file;
    EXPECT_EQ(first, read_file(b / file)) << file << " differs across runs";
  }
}

TEST(ObsDeterminism, SerialAndParallelRunSetsWriteIdenticalArtifacts) {
  // The same 3-policy comparison executed with one worker and with eight
  // must produce byte-identical per-run artifact files: each simulation is
  // single-threaded and owns its label-derived paths.
  fs::path serial_dir = fs::path(testing::TempDir()) / "tls_obs_serial";
  fs::path parallel_dir = fs::path(testing::TempDir()) / "tls_obs_parallel";
  fs::remove_all(serial_dir);
  fs::remove_all(parallel_dir);

  auto run_with = [&](const fs::path& dir, int jobs) {
    runtime::RunPlan plan = runtime::RunPlan::policy_comparison(
        with_artifacts(small_scenario(), dir));
    runtime::RunOptions options;
    options.jobs = jobs;
    options.cache_dir = "";  // isolate from any $TLS_CACHE_DIR
    return runtime::run_plan(plan, options);
  };
  runtime::RunReport serial = run_with(serial_dir, 1);
  runtime::RunReport parallel = run_with(parallel_dir, 8);
  ASSERT_EQ(serial.labels, parallel.labels);

  for (const std::string& label : serial.labels) {
    for (const char* base : {"trace.json", "trace.csv", "metrics.csv"}) {
      std::string name =
          fs::path(obs::per_run_path(base, label)).filename().string();
      std::string first = read_file(serial_dir / name);
      ASSERT_FALSE(first.empty()) << name;
      EXPECT_EQ(first, read_file(parallel_dir / name))
          << name << " differs between jobs=1 and jobs=8";
    }
  }
}

TEST(ObsDeterminism, ArtifactsDoNotPerturbResults) {
  // A traced run must report exactly the metrics an untraced run does —
  // observability reads simulation state, never steers it. sim_events may
  // differ (the gauge sampler adds timer events), so compare exports.
  exp::ExperimentConfig plain = small_scenario();
  fs::path dir = fs::path(testing::TempDir()) / "tls_obs_perturb";
  fs::remove_all(dir);
  exp::ExperimentConfig traced = with_artifacts(plain, dir);
  exp::ExperimentResult a = exp::run_experiment(plain);
  exp::ExperimentResult b = exp::run_experiment(traced);
  EXPECT_EQ(a.avg_jct_s, b.avg_jct_s);
  EXPECT_EQ(a.rotations, b.rotations);
  EXPECT_EQ(a.tc_commands, b.tc_commands);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].jct_s, b.jobs[i].jct_s) << "job " << i;
    EXPECT_EQ(a.jobs[i].iterations, b.jobs[i].iterations) << "job " << i;
  }
}

}  // namespace
}  // namespace tls
