// Exporter unit tests: exact Chrome trace-event JSON and trace CSV for a
// hand-built event sequence. These pin the byte-level format — the
// integration golden test then pins a whole simulated scenario.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/trace.hpp"

namespace tls::obs {
namespace {

TEST(ChromeTrace, EmptyTracerIsStillValidDocument) {
  Tracer t;
  EXPECT_EQ(chrome_trace_json(t),
            "{\"traceEvents\":[\n\n],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(ChromeTrace, RendersTracksInstantsAndSpansExactly) {
  Tracer t;
  t.chunk_enqueue(tls::sim::Time{1500}, tls::net::HostId{0}, 3, tls::net::BandId{1}, 42, 7, tls::net::Bytes{1000});
  t.chunk_dequeue(tls::sim::Time{2500}, tls::net::HostId{0}, 3, tls::net::BandId{1}, 42, 7, tls::net::Bytes{1000}, tls::sim::Time{1000});
  // A 2 ms barrier wait ending at t=5 ms renders as an "X" span starting
  // at the enter time.
  t.barrier_release(tls::sim::Time{5'000'000}, 1, 0, 4, tls::sim::Time{2'000'000});
  t.rotation(tls::sim::Time{7000}, 2);
  EXPECT_EQ(
      chrome_trace_json(t),
      "{\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"net\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"host 0 nic\"}},\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
      "\"args\":{\"name\":\"jobs\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":1,"
      "\"args\":{\"name\":\"job 1\"}},\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":3,"
      "\"args\":{\"name\":\"tensorlights\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":3,\"tid\":0,"
      "\"args\":{\"name\":\"controller\"}},\n"
      "{\"name\":\"chunk_enqueue\",\"cat\":\"chunk\",\"ph\":\"i\","
      "\"ts\":1.500,\"pid\":1,\"tid\":0,\"s\":\"t\","
      "\"args\":{\"band\":1,\"flow\":42,\"bytes\":1000,\"index\":7}},\n"
      "{\"name\":\"chunk_dequeue\",\"cat\":\"chunk\",\"ph\":\"i\","
      "\"ts\":2.500,\"pid\":1,\"tid\":0,\"s\":\"t\","
      "\"args\":{\"band\":1,\"flow\":42,\"bytes\":1000,\"index\":7,"
      "\"queue_wait_ns\":1000}},\n"
      "{\"name\":\"barrier_release\",\"cat\":\"barrier\",\"ph\":\"X\","
      "\"ts\":3000.000,\"pid\":2,\"tid\":1,\"dur\":2000.000,"
      "\"args\":{\"worker\":0,\"iteration\":4}},\n"
      "{\"name\":\"rotation\",\"cat\":\"rotation\",\"ph\":\"i\","
      "\"ts\":7.000,\"pid\":3,\"tid\":0,\"s\":\"t\","
      "\"args\":{\"offset\":2}}\n"
      "],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(ChromeTrace, MetadataCoversOnlyUsedTracks) {
  Tracer t;
  t.band_service(tls::sim::Time{100}, tls::net::HostId{3}, tls::net::BandId{0}, tls::net::Bytes{512});
  std::string json = chrome_trace_json(t);
  // Host 3's NIC track is named; no jobs or controller metadata appears.
  EXPECT_NE(json.find("\"host 3 nic\""), std::string::npos);
  EXPECT_EQ(json.find("\"jobs\""), std::string::npos);
  EXPECT_EQ(json.find("\"tensorlights\""), std::string::npos);
}

TEST(ChromeTrace, GaugeSamplesPickJobTrackWhenJobScoped) {
  Tracer t;
  t.gauge_sample(tls::sim::Time{1000}, "job_iteration_lag", tls::net::HostId{-1}, 5, 2.0);
  t.gauge_sample(tls::sim::Time{1000}, "egress_backlog_bytes", tls::net::HostId{2}, -1, 300.5);
  std::string json = chrome_trace_json(t);
  EXPECT_NE(json.find("\"job 5\""), std::string::npos);
  EXPECT_NE(json.find("\"host 2 nic\""), std::string::npos);
  // The instant carries the truncated value; the registry keeps precision.
  EXPECT_NE(json.find("\"value\":300"), std::string::npos);
}

TEST(TraceCsv, RendersEveryFieldExactly) {
  Tracer t;
  t.chunk_enqueue(tls::sim::Time{1500}, tls::net::HostId{0}, 3, tls::net::BandId{1}, 42, 7, tls::net::Bytes{1000});
  t.chunk_dequeue(tls::sim::Time{2500}, tls::net::HostId{0}, 3, tls::net::BandId{1}, 42, 7, tls::net::Bytes{1000}, tls::sim::Time{1000});
  t.barrier_release(tls::sim::Time{5'000'000}, 1, 0, 4, tls::sim::Time{2'000'000});
  t.rotation(tls::sim::Time{7000}, 2);
  EXPECT_EQ(trace_csv(t),
            "at_ns,kind,cat,host,job,band,flow,bytes,a,b,dur_ns\n"
            "1500,chunk_enqueue,chunk,0,3,1,42,1000,0,7,0\n"
            "2500,chunk_dequeue,chunk,0,3,1,42,1000,1000,7,0\n"
            "5000000,barrier_release,barrier,-1,1,-1,0,0,0,4,2000000\n"
            "7000,rotation,rotation,-1,-1,-1,0,0,2,0,0\n");
}

TEST(TraceCsv, EmptyTracerIsHeaderOnly) {
  Tracer t;
  EXPECT_EQ(trace_csv(t), "at_ns,kind,cat,host,job,band,flow,bytes,a,b,dur_ns\n");
}

}  // namespace
}  // namespace tls::obs
