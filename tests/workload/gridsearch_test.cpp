#include "workload/gridsearch.hpp"

#include <gtest/gtest.h>

namespace tls::workload {
namespace {

TEST(GridSearch, GeneratesIdenticalJobsWithSequentialIds) {
  GridSearchConfig cfg;
  cfg.num_jobs = 5;
  cfg.local_batch_size = 8;
  auto jobs = grid_search_jobs(cfg);
  ASSERT_EQ(jobs.size(), 5u);
  for (int j = 0; j < 5; ++j) {
    EXPECT_EQ(jobs[static_cast<size_t>(j)].job_id, j);
    EXPECT_EQ(jobs[static_cast<size_t>(j)].local_batch_size, 8);
    EXPECT_EQ(jobs[static_cast<size_t>(j)].model.name,
              cfg.model.name);
    EXPECT_EQ(jobs[static_cast<size_t>(j)].num_workers, cfg.workers_per_job);
  }
}

TEST(GridSearch, PaperDefaults) {
  GridSearchConfig cfg;
  EXPECT_EQ(cfg.num_jobs, 21);
  EXPECT_EQ(cfg.workers_per_job, 20);
  EXPECT_EQ(cfg.local_batch_size, 4);
  EXPECT_EQ(cfg.model.name, "resnet32_cifar10");
  EXPECT_EQ(cfg.mode, dl::TrainingMode::kSync);
}

TEST(GridSearch, Validation) {
  GridSearchConfig cfg;
  cfg.num_jobs = 0;
  EXPECT_THROW(grid_search_jobs(cfg), std::invalid_argument);
  cfg = {};
  cfg.local_batch_size = 0;
  EXPECT_THROW(grid_search_jobs(cfg), std::invalid_argument);
}

TEST(Heterogeneous, ConcatenatesGroups) {
  std::vector<MixEntry> mix = {
      {dl::zoo::resnet32_cifar10(), 2, 4, 100},
      {dl::zoo::vgg16(), 3, 8, 50},
  };
  auto jobs = heterogeneous_jobs(mix, /*workers=*/10);
  ASSERT_EQ(jobs.size(), 5u);
  EXPECT_EQ(jobs[0].model.name, "resnet32_cifar10");
  EXPECT_EQ(jobs[2].model.name, "vgg16");
  EXPECT_EQ(jobs[4].job_id, 4);
  EXPECT_EQ(jobs[2].local_batch_size, 8);
  EXPECT_EQ(jobs[2].global_step_target, 50);
  for (const auto& j : jobs) EXPECT_EQ(j.num_workers, 10);
}

TEST(Heterogeneous, Validation) {
  std::vector<MixEntry> mix = {{dl::zoo::alexnet(), 0, 4, 100}};
  EXPECT_THROW(heterogeneous_jobs(mix, 4), std::invalid_argument);
}

TEST(Heterogeneous, ModeAndSigmaPropagate) {
  std::vector<MixEntry> mix = {{dl::zoo::alexnet(), 2, 4, 100}};
  auto jobs = heterogeneous_jobs(mix, 4, dl::TrainingMode::kAsync, 0.3);
  EXPECT_EQ(jobs[0].mode, dl::TrainingMode::kAsync);
  EXPECT_DOUBLE_EQ(jobs[1].compute_sigma, 0.3);
}

}  // namespace
}  // namespace tls::workload
