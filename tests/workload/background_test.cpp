#include "workload/background.hpp"

#include <gtest/gtest.h>

namespace tls::workload {
namespace {

net::FabricConfig fabric_config(int hosts) {
  net::FabricConfig c;
  c.num_hosts = hosts;
  return c;
}

TEST(Background, GeneratesPoissonFlows) {
  sim::Simulator s(1);
  net::Fabric fabric(s, fabric_config(4));
  BackgroundTrafficConfig cfg;
  cfg.flows_per_second = 50;
  cfg.mean_bytes = 256 * net::kKiB;
  BackgroundTraffic bg(s, fabric, cfg);
  bg.start();
  s.run(10 * sim::kSecond);
  bg.stop();
  s.run();
  // ~500 expected arrivals; allow generous slack.
  EXPECT_GT(bg.flows_started(), 350u);
  EXPECT_LT(bg.flows_started(), 700u);
  EXPECT_EQ(bg.flows_completed(), bg.flows_started());
  EXPECT_GT(bg.bytes_injected(), tls::net::Bytes{0});
  EXPECT_GT(bg.mean_fct_s(), 0);
}

TEST(Background, StopHaltsArrivals) {
  sim::Simulator s(1);
  net::Fabric fabric(s, fabric_config(3));
  BackgroundTraffic bg(s, fabric, {});
  bg.start();
  s.run(2 * sim::kSecond);
  bg.stop();
  std::uint64_t at_stop = bg.flows_started();
  s.run(20 * sim::kSecond);
  EXPECT_EQ(bg.flows_started(), at_stop);
  EXPECT_FALSE(bg.running());
}

TEST(Background, StartIsIdempotent) {
  sim::Simulator s(1);
  net::Fabric fabric(s, fabric_config(3));
  BackgroundTraffic bg(s, fabric, {});
  bg.start();
  bg.start();
  s.run(sim::kSecond);
  EXPECT_TRUE(bg.running());
}

TEST(Background, EndpointsAlwaysDistinct) {
  sim::Simulator s(9);
  net::FabricConfig fc = fabric_config(2);  // only one possible pair each way
  net::Fabric fabric(s, fc);
  BackgroundTrafficConfig cfg;
  cfg.flows_per_second = 100;
  cfg.mean_bytes = tls::net::Bytes{1024};
  BackgroundTraffic bg(s, fabric, cfg);
  bg.start();
  s.run(sim::kSecond);
  bg.stop();
  s.run();
  // With src==dst flows the fabric would throw; reaching here with
  // completions proves endpoints were distinct.
  EXPECT_GT(bg.flows_completed(), 0u);
}

TEST(Background, Validation) {
  sim::Simulator s(1);
  net::Fabric fabric(s, fabric_config(3));
  BackgroundTrafficConfig bad;
  bad.flows_per_second = 0;
  EXPECT_THROW(BackgroundTraffic(s, fabric, bad), std::invalid_argument);
  bad = {};
  bad.mean_bytes = tls::net::Bytes{0};
  EXPECT_THROW(BackgroundTraffic(s, fabric, bad), std::invalid_argument);
  net::Fabric single(s, fabric_config(1));
  EXPECT_THROW(BackgroundTraffic(s, single, {}), std::invalid_argument);
}

TEST(Background, DeterministicPerSeed) {
  auto count_at = [](std::uint64_t seed) {
    sim::Simulator s(seed);
    net::Fabric fabric(s, fabric_config(4));
    BackgroundTraffic bg(s, fabric, {});
    bg.start();
    s.run(5 * sim::kSecond);
    return bg.flows_started();
  };
  EXPECT_EQ(count_at(3), count_at(3));
}

}  // namespace
}  // namespace tls::workload
