#include "tc/parser.hpp"

#include <gtest/gtest.h>

namespace tls::tc {
namespace {

template <typename T>
T expect_cmd(const std::string& line) {
  ParseResult r = parse_command(line);
  EXPECT_TRUE(r.ok) << line << " -> " << r.error;
  EXPECT_TRUE(std::holds_alternative<T>(r.command)) << line;
  return std::get<T>(r.command);
}

void expect_error(const std::string& line) {
  ParseResult r = parse_command(line);
  EXPECT_FALSE(r.ok) << line << " unexpectedly parsed";
  EXPECT_FALSE(r.error.empty());
}

TEST(Parser, QdiscAddPfifo) {
  auto cmd = expect_cmd<QdiscAddCmd>(
      "tc qdisc add dev host0 root handle 1: pfifo");
  EXPECT_EQ(cmd.dev, "host0");
  EXPECT_EQ(cmd.spec.kind, QdiscKind::kPfifo);
  EXPECT_EQ(cmd.spec.handle, (Handle{1, 0}));
  EXPECT_FALSE(cmd.replace);
}

TEST(Parser, QdiscAddPfifoWithLimit) {
  auto cmd = expect_cmd<QdiscAddCmd>(
      "tc qdisc add dev host0 root handle 1: pfifo limit 1000");
  EXPECT_EQ(cmd.spec.kind, QdiscKind::kPfifo);
}

TEST(Parser, QdiscAddPrioBands) {
  auto cmd = expect_cmd<QdiscAddCmd>(
      "tc qdisc add dev host3 root handle 1: prio bands 7");
  EXPECT_EQ(cmd.spec.kind, QdiscKind::kPrio);
  EXPECT_EQ(cmd.spec.prio_bands, 7);
}

TEST(Parser, QdiscPrioDefaultBands) {
  auto cmd = expect_cmd<QdiscAddCmd>(
      "tc qdisc add dev host3 root handle 1: prio");
  EXPECT_EQ(cmd.spec.prio_bands, 3);  // Linux default
}

TEST(Parser, QdiscAddHtbWithDefault) {
  auto cmd = expect_cmd<QdiscAddCmd>(
      "tc qdisc add dev host0 root handle 1: htb default 3f");
  EXPECT_EQ(cmd.spec.kind, QdiscKind::kHtb);
  EXPECT_EQ(cmd.spec.htb_default, 0x3Fu);  // hex, as tc parses it
}

TEST(Parser, QdiscReplace) {
  auto cmd = expect_cmd<QdiscAddCmd>(
      "tc qdisc replace dev host0 root handle 1: htb");
  EXPECT_TRUE(cmd.replace);
}

TEST(Parser, QdiscDel) {
  auto cmd = expect_cmd<QdiscDelCmd>("tc qdisc del dev host2 root");
  EXPECT_EQ(cmd.dev, "host2");
}

TEST(Parser, LeadingTcOptional) {
  EXPECT_TRUE(parse_command("qdisc add dev host0 root handle 1: pfifo").ok);
}

TEST(Parser, QdiscErrors) {
  expect_error("tc qdisc add dev host0 root handle 1: tbf");
  expect_error("tc qdisc add root handle 1: pfifo");             // no dev
  expect_error("tc qdisc add dev host0 handle 1: pfifo");        // no root
  expect_error("tc qdisc add dev host0 root handle 1:5 pfifo");  // minor set
  expect_error("tc qdisc add dev host0 root handle 1: prio bands 99");
  expect_error("tc qdisc add dev host0 root handle 1: pfifo extra");
  expect_error("tc qdisc frobnicate dev host0 root");
  expect_error("");
  expect_error("tc frobnicate");
}

TEST(Parser, ClassAddFull) {
  auto cmd = expect_cmd<ClassAddCmd>(
      "tc class add dev host0 parent 1: classid 1:a htb rate 1mbit "
      "ceil 10gbit burst 128k cburst 64k prio 3 quantum 256k");
  EXPECT_FALSE(cmd.change);
  EXPECT_EQ(cmd.spec.classid, (Handle{1, 10}));
  EXPECT_EQ(cmd.spec.parent, (Handle{1, 0}));
  EXPECT_DOUBLE_EQ(net::to_double(cmd.spec.rate), 1e6 / 8);
  ASSERT_TRUE(cmd.spec.ceil);
  EXPECT_DOUBLE_EQ(net::to_double(*cmd.spec.ceil), 10e9 / 8);
  EXPECT_EQ(cmd.spec.burst, tls::net::Bytes{128 * 1024});
  EXPECT_EQ(cmd.spec.cburst, tls::net::Bytes{64 * 1024});
  EXPECT_EQ(cmd.spec.prio, 3);
  EXPECT_EQ(cmd.spec.quantum, tls::net::Bytes{256 * 1024});
}

TEST(Parser, ClassChangeAndDefaults) {
  auto cmd = expect_cmd<ClassAddCmd>(
      "tc class change dev host0 parent 1: classid 1:1 htb rate 5mbit");
  EXPECT_TRUE(cmd.change);
  EXPECT_FALSE(cmd.spec.ceil);  // ceil defaults to rate at apply time
}

TEST(Parser, ClassDel) {
  auto cmd = expect_cmd<ClassDelCmd>("tc class del dev host0 classid 1:2");
  EXPECT_EQ(cmd.classid, (Handle{1, 2}));
}

TEST(Parser, ClassErrors) {
  expect_error("tc class add dev host0 parent 1: classid 1:1 htb");  // no rate
  expect_error("tc class add dev host0 parent 1: classid 1: htb rate 1mbit");
  expect_error("tc class add dev host0 classid 1:1 htb rate 1mbit");
  expect_error("tc class add dev host0 parent 1: classid 1:1 cbq rate 1mbit");
  expect_error("tc class add dev host0 parent 1: classid 1:1 htb rate fast");
  expect_error("tc class add dev host0 parent 1: classid 1:1 htb rate 1mbit prio 9");
  expect_error("tc class add dev host0 parent 1: classid 1:1 htb rate 1mbit bogus 3");
  expect_error("tc class del dev host0 classid 1:");
}

TEST(Parser, FilterAddSport) {
  auto cmd = expect_cmd<FilterAddCmd>(
      "tc filter add dev host0 protocol ip parent 1: pref 1007 u32 "
      "match ip sport 5064 0xffff flowid 1:3");
  EXPECT_EQ(cmd.parent, (Handle{1, 0}));
  EXPECT_EQ(cmd.spec.pref, 1007);
  ASSERT_TRUE(cmd.spec.sport);
  EXPECT_EQ(*cmd.spec.sport, 5064);
  EXPECT_FALSE(cmd.spec.dport);
  EXPECT_EQ(cmd.spec.flowid, (Handle{1, 3}));
}

TEST(Parser, FilterAddBothPorts) {
  auto cmd = expect_cmd<FilterAddCmd>(
      "tc filter add dev host0 parent 1: u32 match ip sport 10 0xffff "
      "match ip dport 20 0xffff flowid 1:1");
  EXPECT_EQ(*cmd.spec.sport, 10);
  EXPECT_EQ(*cmd.spec.dport, 20);
  EXPECT_EQ(cmd.spec.pref, 100);  // default
}

TEST(Parser, FilterCatchAll) {
  auto cmd = expect_cmd<FilterAddCmd>(
      "tc filter add dev host0 parent 1: pref 65000 u32 flowid 1:7");
  EXPECT_FALSE(cmd.spec.sport);
  EXPECT_FALSE(cmd.spec.dport);
  EXPECT_EQ(cmd.spec.flowid.minor, 7);
}

TEST(Parser, FilterDel) {
  auto cmd = expect_cmd<FilterDelCmd>("tc filter del dev host0 pref 1003");
  EXPECT_EQ(cmd.pref, 1003);
}

TEST(Parser, FilterErrors) {
  expect_error("tc filter add dev host0 parent 1: u32");  // no flowid
  expect_error(
      "tc filter add dev host0 parent 1: u32 match ip sport 10 0xff00 "
      "flowid 1:1");  // bad mask
  expect_error(
      "tc filter add dev host0 parent 1: u32 match ip tos 4 0xffff flowid 1:1");
  expect_error(
      "tc filter add dev host0 parent 1: u32 match ip sport 99999 0xffff "
      "flowid 1:1");  // port overflow
  expect_error("tc filter add dev host0 parent 1: fw flowid 1:1");
  expect_error("tc filter add dev host0 protocol ipv6 parent 1: u32 flowid 1:1");
  expect_error("tc filter del dev host0 pref x");
}

TEST(Parser, TokenizeSplitsOnWhitespace) {
  auto t = tokenize("  a  b\tc \n d ");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[3], "d");
  EXPECT_TRUE(tokenize("").empty());
}

}  // namespace
}  // namespace tls::tc
