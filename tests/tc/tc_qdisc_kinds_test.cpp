// Parser + applier coverage for the pfifo_fast and tbf qdisc kinds.
#include <gtest/gtest.h>

#include "net/tbf_qdisc.hpp"
#include "tc/tc.hpp"

namespace tls::tc {
namespace {

class TcQdiscKindsTest : public ::testing::Test {
 protected:
  TcQdiscKindsTest() : fabric_(sim_, make_config()), control_(fabric_) {}
  static net::FabricConfig make_config() {
    net::FabricConfig c;
    c.num_hosts = 2;
    return c;
  }
  sim::Simulator sim_{1};
  net::Fabric fabric_;
  TrafficControl control_;
};

TEST_F(TcQdiscKindsTest, PfifoFastInstalls) {
  Status s = control_.exec("tc qdisc add dev host0 root handle 1: pfifo_fast");
  ASSERT_TRUE(s.ok) << s.error;
  EXPECT_EQ(control_.root_kind(tls::net::HostId{0}), QdiscKind::kPfifoFast);
  EXPECT_EQ(fabric_.egress(tls::net::HostId{0}).qdisc().kind(), "pfifo_fast");
}

TEST_F(TcQdiscKindsTest, TbfInstallsWithRate) {
  Status s = control_.exec(
      "tc qdisc add dev host0 root handle 1: tbf rate 500mbit burst 256k");
  ASSERT_TRUE(s.ok) << s.error;
  auto& tbf = static_cast<net::TbfQdisc&>(fabric_.egress(tls::net::HostId{0}).qdisc());
  EXPECT_DOUBLE_EQ(net::to_double(tbf.config().rate), 500e6 / 8);
  EXPECT_EQ(tbf.config().burst, tls::net::Bytes{256 * 1024});
}

TEST_F(TcQdiscKindsTest, TbfRequiresRate) {
  EXPECT_FALSE(control_.exec("tc qdisc add dev host0 root handle 1: tbf").ok);
  EXPECT_FALSE(
      control_.exec("tc qdisc add dev host0 root handle 1: tbf burst 64k").ok);
  EXPECT_FALSE(
      control_.exec("tc qdisc add dev host0 root handle 1: tbf rate slow").ok);
}

TEST_F(TcQdiscKindsTest, TbfAcceptsLimitForCompat) {
  EXPECT_TRUE(control_
                  .exec("tc qdisc add dev host0 root handle 1: tbf rate "
                        "100mbit burst 64k limit 1m")
                  .ok);
}

TEST_F(TcQdiscKindsTest, FiltersOnClasslessQdiscsAreNoOps) {
  ASSERT_TRUE(control_.exec("tc qdisc add dev host0 root handle 1: pfifo_fast").ok);
  ASSERT_TRUE(control_
                  .exec("tc filter add dev host0 parent 1: pref 10 u32 match "
                        "ip sport 5000 0xffff flowid 1:3")
                  .ok);
  net::FlowSpec f;
  f.src_port = 5000;
  EXPECT_EQ(fabric_.egress(tls::net::HostId{0}).classifier().classify(f), tls::net::BandId{0});
}

TEST_F(TcQdiscKindsTest, ShowQdiscNamesDiscipline) {
  ASSERT_TRUE(control_.exec("tc qdisc add dev host0 root handle 1: tbf rate 1gbit").ok);
  std::string shown = control_.show_qdisc(tls::net::HostId{0});
  EXPECT_NE(shown.find("tbf"), std::string::npos);
  EXPECT_NE(shown.find("host0"), std::string::npos);
}

TEST_F(TcQdiscKindsTest, TbfShapesEndToEnd) {
  // 8 MB through a 100 mbit tbf takes ~0.65 s instead of ~7 ms.
  ASSERT_TRUE(control_
                  .exec("tc qdisc add dev host0 root handle 1: tbf rate "
                        "100mbit burst 256k")
                  .ok);
  net::FlowSpec f;
  f.src = tls::net::HostId{0};
  f.dst = tls::net::HostId{1};
  f.bytes = 8 * net::kMiB;
  sim::Time done = tls::sim::Time{0};
  fabric_.start_flow(f, [&](const net::FlowRecord& r) { done = r.end; });
  sim_.run();
  EXPECT_GT(sim::to_seconds(done), 0.4);
  EXPECT_LT(sim::to_seconds(done), 1.5);
}

}  // namespace
}  // namespace tls::tc
