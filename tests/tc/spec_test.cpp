#include "tc/spec.hpp"

#include <gtest/gtest.h>

namespace tls::tc {
namespace {

TEST(Handle, ParsesMajorOnly) {
  auto h = Handle::parse("1:");
  ASSERT_TRUE(h);
  EXPECT_EQ(h->major, 1);
  EXPECT_EQ(h->minor, 0);
}

TEST(Handle, ParsesHexComponents) {
  auto h = Handle::parse("1:a");
  ASSERT_TRUE(h);
  EXPECT_EQ(h->minor, 10);
  h = Handle::parse("ffff:1");
  ASSERT_TRUE(h);
  EXPECT_EQ(h->major, 0xFFFF);
  h = Handle::parse("1:3f");
  ASSERT_TRUE(h);
  EXPECT_EQ(h->minor, 0x3F);
}

TEST(Handle, ParsesMinorOnly) {
  auto h = Handle::parse(":5");
  ASSERT_TRUE(h);
  EXPECT_EQ(h->major, 0);
  EXPECT_EQ(h->minor, 5);
}

TEST(Handle, RejectsMalformed) {
  EXPECT_FALSE(Handle::parse(""));
  EXPECT_FALSE(Handle::parse(":"));
  EXPECT_FALSE(Handle::parse("1"));
  EXPECT_FALSE(Handle::parse("1:zz"));
  EXPECT_FALSE(Handle::parse("12345:1"));  // > 4 hex digits
  EXPECT_FALSE(Handle::parse("1:1:1"));
}

TEST(Handle, FormatsLowercaseHex) {
  EXPECT_EQ((Handle{1, 0}).str(), "1:");
  EXPECT_EQ((Handle{1, 10}).str(), "1:a");
  EXPECT_EQ((Handle{0xFFFF, 0x3F}).str(), "ffff:3f");
}

TEST(Handle, RoundTrips) {
  for (const char* text : {"1:", "2:10", "a:b", "ffff:ffff"}) {
    auto h = Handle::parse(text);
    ASSERT_TRUE(h) << text;
    EXPECT_EQ(Handle::parse(h->str()), h);
  }
}

TEST(ParseRate, BitSuffixesAreBitsPerSecond) {
  EXPECT_DOUBLE_EQ(net::to_double(*parse_rate("8bit")), 1.0);
  EXPECT_DOUBLE_EQ(net::to_double(*parse_rate("8kbit")), 1e3);
  EXPECT_DOUBLE_EQ(net::to_double(*parse_rate("8mbit")), 1e6);
  EXPECT_DOUBLE_EQ(net::to_double(*parse_rate("8gbit")), 1e9);
  EXPECT_DOUBLE_EQ(net::to_double(*parse_rate("10gbit")), 10e9 / 8);
}

TEST(ParseRate, BpsSuffixesAreBytesPerSecond) {
  // tc(8): "bps" means bytes per second.
  EXPECT_DOUBLE_EQ(net::to_double(*parse_rate("100bps")), 100.0);
  EXPECT_DOUBLE_EQ(net::to_double(*parse_rate("1kbps")), 1e3);
  EXPECT_DOUBLE_EQ(net::to_double(*parse_rate("1mbps")), 1e6);
}

TEST(ParseRate, BareNumberIsBits) {
  EXPECT_DOUBLE_EQ(net::to_double(*parse_rate("800")), 100.0);
}

TEST(ParseRate, FractionsAndCase) {
  EXPECT_DOUBLE_EQ(net::to_double(*parse_rate("1.5mbit")), 1.5e6 / 8);
  EXPECT_DOUBLE_EQ(net::to_double(*parse_rate("1MBit")), 1e6 / 8);
}

TEST(ParseRate, RejectsMalformed) {
  EXPECT_FALSE(parse_rate(""));
  EXPECT_FALSE(parse_rate("fast"));
  EXPECT_FALSE(parse_rate("10parsec"));
  EXPECT_FALSE(parse_rate("0mbit"));
  EXPECT_FALSE(parse_rate("mbit"));
}

TEST(ParseSize, BinaryUnits) {
  EXPECT_EQ(*parse_size("1540b"), tls::net::Bytes{1540});
  EXPECT_EQ(*parse_size("64k"), tls::net::Bytes{64 * 1024});
  EXPECT_EQ(*parse_size("1m"), tls::net::Bytes{1024 * 1024});
  EXPECT_EQ(*parse_size("2g"), tls::net::Bytes{2LL * 1024 * 1024 * 1024});
  EXPECT_EQ(*parse_size("100"), tls::net::Bytes{100});
}

TEST(ParseSize, RejectsMalformed) {
  EXPECT_FALSE(parse_size(""));
  EXPECT_FALSE(parse_size("big"));
  EXPECT_FALSE(parse_size("0k"));
  EXPECT_FALSE(parse_size("10q"));
}

TEST(FormatRate, PicksUnits) {
  EXPECT_EQ(format_rate(net::Rate{10e9 / 8}), "10gbit");
  EXPECT_EQ(format_rate(net::Rate{1e6 / 8}), "1mbit");
  EXPECT_EQ(format_rate(net::Rate{1e3 / 8}), "1kbit");
  EXPECT_EQ(format_rate(net::Rate{100.0 / 8}), "100bit");
}

TEST(FormatRate, RoundTripsThroughParse) {
  for (net::Rate r : {net::Rate{125.0}, net::Rate{125000.0}, net::Rate{1.25e8}, net::Rate{1.25e9}}) {
    EXPECT_DOUBLE_EQ(net::to_double(*parse_rate(format_rate(r))), net::to_double(r));
  }
}

TEST(QdiscKindNames, Stable) {
  EXPECT_STREQ(to_string(QdiscKind::kPfifo), "pfifo");
  EXPECT_STREQ(to_string(QdiscKind::kPrio), "prio");
  EXPECT_STREQ(to_string(QdiscKind::kHtb), "htb");
}

}  // namespace
}  // namespace tls::tc
