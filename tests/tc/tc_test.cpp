#include "tc/tc.hpp"

#include <gtest/gtest.h>

#include "net/htb_qdisc.hpp"
#include "net/prio_qdisc.hpp"

namespace tls::tc {
namespace {

class TcTest : public ::testing::Test {
 protected:
  TcTest() : fabric_(sim_, make_config()), control_(fabric_) {}

  static net::FabricConfig make_config() {
    net::FabricConfig c;
    c.num_hosts = 3;
    return c;
  }

  sim::Simulator sim_{1};
  net::Fabric fabric_;
  TrafficControl control_;
};

TEST_F(TcTest, DeviceNameResolution) {
  EXPECT_EQ(control_.resolve_device("host0"), tls::net::HostId{0});
  EXPECT_EQ(control_.resolve_device("host2"), tls::net::HostId{2});
  EXPECT_EQ(control_.resolve_device("h1"), tls::net::HostId{1});
  EXPECT_EQ(control_.resolve_device("1"), tls::net::HostId{1});
  EXPECT_EQ(control_.resolve_device("host3"), tls::net::HostId{-1});  // out of range
  EXPECT_EQ(control_.resolve_device("eth0"), tls::net::HostId{-1});
  EXPECT_EQ(control_.resolve_device(""), tls::net::HostId{-1});
  EXPECT_EQ(device_name(tls::net::HostId{7}), "host7");
}

TEST_F(TcTest, DefaultRootIsPfifo) {
  EXPECT_EQ(control_.root_kind(tls::net::HostId{0}), QdiscKind::kPfifo);
  EXPECT_EQ(fabric_.egress(tls::net::HostId{0}).qdisc().kind(), "pfifo");
}

TEST_F(TcTest, InstallPrioRoot) {
  Status s = control_.exec("tc qdisc add dev host0 root handle 1: prio bands 6");
  ASSERT_TRUE(s.ok) << s.error;
  EXPECT_EQ(control_.root_kind(tls::net::HostId{0}), QdiscKind::kPrio);
  auto& q = static_cast<net::PrioQdisc&>(fabric_.egress(tls::net::HostId{0}).qdisc());
  EXPECT_EQ(q.bands(), 6);
}

TEST_F(TcTest, AddOverExistingRootFailsWithoutReplace) {
  ASSERT_TRUE(control_.exec("tc qdisc add dev host0 root handle 1: prio").ok);
  Status s = control_.exec("tc qdisc add dev host0 root handle 1: htb");
  EXPECT_FALSE(s.ok);
  EXPECT_NE(s.error.find("replace"), std::string::npos);
  EXPECT_TRUE(control_.exec("tc qdisc replace dev host0 root handle 1: htb").ok);
  EXPECT_EQ(control_.root_kind(tls::net::HostId{0}), QdiscKind::kHtb);
}

TEST_F(TcTest, QdiscDelRestoresDefault) {
  ASSERT_TRUE(control_.exec("tc qdisc add dev host0 root handle 1: htb").ok);
  ASSERT_TRUE(control_.exec("tc qdisc del dev host0 root").ok);
  EXPECT_EQ(control_.root_kind(tls::net::HostId{0}), QdiscKind::kPfifo);
  EXPECT_FALSE(control_.exec("tc qdisc del dev host0 root").ok);
}

TEST_F(TcTest, HtbClassLifecycle) {
  ASSERT_TRUE(control_.exec("tc qdisc add dev host1 root handle 1: htb default 3f").ok);
  Status s = control_.exec(
      "tc class add dev host1 parent 1: classid 1:1 htb rate 1mbit "
      "ceil 10gbit prio 0");
  ASSERT_TRUE(s.ok) << s.error;
  auto& htb = static_cast<net::HtbQdisc&>(fabric_.egress(tls::net::HostId{1}).qdisc());
  EXPECT_TRUE(htb.has_class(1));
  // change
  ASSERT_TRUE(control_
                  .exec("tc class change dev host1 parent 1: classid 1:1 htb "
                        "rate 2mbit ceil 10gbit prio 5")
                  .ok);
  EXPECT_EQ(htb.class_config(1)->prio, 5);
  // delete
  ASSERT_TRUE(control_.exec("tc class del dev host1 classid 1:1").ok);
  EXPECT_FALSE(htb.has_class(1));
}

TEST_F(TcTest, ClassRequiresHtbRoot) {
  ASSERT_TRUE(control_.exec("tc qdisc add dev host0 root handle 1: prio").ok);
  Status s = control_.exec(
      "tc class add dev host0 parent 1: classid 1:1 htb rate 1mbit");
  EXPECT_FALSE(s.ok);
}

TEST_F(TcTest, ClassParentMustMatchRootHandle) {
  ASSERT_TRUE(control_.exec("tc qdisc add dev host0 root handle 1: htb").ok);
  EXPECT_FALSE(control_
                   .exec("tc class add dev host0 parent 2: classid 2:1 htb "
                         "rate 1mbit")
                   .ok);
  EXPECT_FALSE(control_
                   .exec("tc class add dev host0 parent 1: classid 2:1 htb "
                         "rate 1mbit")
                   .ok);
}

TEST_F(TcTest, CeilDefaultsToRate) {
  ASSERT_TRUE(control_.exec("tc qdisc add dev host0 root handle 1: htb").ok);
  ASSERT_TRUE(control_
                  .exec("tc class add dev host0 parent 1: classid 1:1 htb "
                        "rate 4mbit")
                  .ok);
  auto& htb = static_cast<net::HtbQdisc&>(fabric_.egress(tls::net::HostId{0}).qdisc());
  EXPECT_DOUBLE_EQ(net::to_double(htb.class_config(1)->ceil),
                   net::to_double(htb.class_config(1)->rate));
}

TEST_F(TcTest, FilterMapsPrioFlowidToZeroBasedBand) {
  ASSERT_TRUE(control_.exec("tc qdisc add dev host0 root handle 1: prio bands 6").ok);
  ASSERT_TRUE(control_
                  .exec("tc filter add dev host0 parent 1: pref 10 u32 match "
                        "ip sport 5000 0xffff flowid 1:3")
                  .ok);
  net::FlowSpec f;
  f.src_port = 5000;
  EXPECT_EQ(fabric_.egress(tls::net::HostId{0}).classifier().classify(f), tls::net::BandId{2});  // 1:3 -> band 2
}

TEST_F(TcTest, FilterMapsHtbFlowidToMinor) {
  ASSERT_TRUE(control_.exec("tc qdisc add dev host0 root handle 1: htb").ok);
  ASSERT_TRUE(control_
                  .exec("tc filter add dev host0 parent 1: pref 10 u32 match "
                        "ip sport 5000 0xffff flowid 1:3")
                  .ok);
  net::FlowSpec f;
  f.src_port = 5000;
  EXPECT_EQ(fabric_.egress(tls::net::HostId{0}).classifier().classify(f), tls::net::BandId{3});
}

TEST_F(TcTest, FilterParentMustMatch) {
  ASSERT_TRUE(control_.exec("tc qdisc add dev host0 root handle 1: htb").ok);
  EXPECT_FALSE(control_
                   .exec("tc filter add dev host0 parent 2: pref 10 u32 "
                         "flowid 2:1")
                   .ok);
}

TEST_F(TcTest, FilterDelRemovesRule) {
  ASSERT_TRUE(control_.exec("tc qdisc add dev host0 root handle 1: htb").ok);
  ASSERT_TRUE(control_
                  .exec("tc filter add dev host0 parent 1: pref 10 u32 match "
                        "ip sport 5000 0xffff flowid 1:3")
                  .ok);
  ASSERT_TRUE(control_.exec("tc filter del dev host0 pref 10").ok);
  EXPECT_FALSE(control_.exec("tc filter del dev host0 pref 10").ok);
  net::FlowSpec f;
  f.src_port = 5000;
  EXPECT_EQ(fabric_.egress(tls::net::HostId{0}).classifier().classify(f), tls::net::BandId{0});
}

TEST_F(TcTest, QdiscReplaceClearsFilters) {
  ASSERT_TRUE(control_.exec("tc qdisc add dev host0 root handle 1: htb").ok);
  ASSERT_TRUE(control_
                  .exec("tc filter add dev host0 parent 1: pref 10 u32 match "
                        "ip sport 5000 0xffff flowid 1:3")
                  .ok);
  ASSERT_TRUE(control_.exec("tc qdisc replace dev host0 root handle 1: prio").ok);
  EXPECT_EQ(fabric_.egress(tls::net::HostId{0}).classifier().size(), 0u);
}

TEST_F(TcTest, HistoryRecordsOnlySuccesses) {
  control_.exec("tc qdisc add dev host0 root handle 1: htb");
  control_.exec("bogus command");
  control_.exec("tc qdisc add dev host9 root handle 1: htb");
  EXPECT_EQ(control_.history().size(), 1u);
}

TEST_F(TcTest, ReconfigCountsPerHost) {
  control_.exec("tc qdisc add dev host0 root handle 1: htb");
  control_.exec(
      "tc class add dev host0 parent 1: classid 1:1 htb rate 1mbit");
  EXPECT_EQ(control_.reconfig_count(tls::net::HostId{0}), 2u);
  EXPECT_EQ(control_.reconfig_count(tls::net::HostId{1}), 0u);  // untouched hosts stay at zero
}

TEST_F(TcTest, ParseErrorSurfaced) {
  Status s = control_.exec("tc qdisc add dev host0 root handle 1: wfq");
  EXPECT_FALSE(s.ok);
  EXPECT_NE(s.error.find("parse error"), std::string::npos);
}

TEST_F(TcTest, LinkRateExposed) {
  EXPECT_DOUBLE_EQ(net::to_double(control_.link_rate(tls::net::HostId{0})),
                   net::to_double(net::gbps(10)));
}

}  // namespace
}  // namespace tls::tc
