#include "exp/export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace tls::exp {
namespace {

ExperimentResult sample_result() {
  ExperimentResult r;
  r.policy_name = "TLs-RR";
  r.avg_jct_s = 42.5;
  r.min_jct_s = 40.0;
  r.max_jct_s = 45.0;
  r.all_finished = true;
  r.tc_commands = 7;
  JobResult j0;
  j0.job_id = 0;
  j0.jct_s = 40.0;
  j0.iterations = 10;
  j0.finished = true;
  j0.barrier_mean_waits_s = {0.1, 0.2};
  j0.barrier_variances_s2 = {0.01, 0.02};
  JobResult j1;
  j1.job_id = 1;
  j1.jct_s = 45.0;
  j1.iterations = 10;
  j1.finished = true;
  r.jobs = {j0, j1};
  return r;
}

TEST(Export, JobsCsvShape) {
  std::string csv = jobs_csv(sample_result());
  EXPECT_EQ(csv.find("job_id,jct_s,iterations,finished\n"), 0u);
  EXPECT_NE(csv.find("0,40,10,1"), std::string::npos);
  EXPECT_NE(csv.find("1,45,10,1"), std::string::npos);
}

TEST(Export, BarriersCsvOneRowPerBarrier) {
  std::string csv = barriers_csv(sample_result());
  // Header + 2 barriers from job 0, none from job 1.
  int lines = 0;
  for (char c : csv) lines += (c == '\n');
  EXPECT_EQ(lines, 3);
  EXPECT_NE(csv.find("0,1,0.2,0.02"), std::string::npos);
}

TEST(Export, JsonContainsHeadlineMetrics) {
  std::string json = to_json(sample_result());
  EXPECT_NE(json.find("\"policy\": \"TLs-RR\""), std::string::npos);
  EXPECT_NE(json.find("\"avg_jct_s\": 42.5"), std::string::npos);
  EXPECT_NE(json.find("\"all_finished\": true"), std::string::npos);
  EXPECT_NE(json.find("\"tc_commands\": 7"), std::string::npos);
  // Balanced braces as a cheap well-formedness check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Export, JsonEscapesStrings) {
  ExperimentResult r = sample_result();
  r.policy_name = "we\"ird\\name";
  std::string json = to_json(r);
  EXPECT_NE(json.find("we\\\"ird\\\\name"), std::string::npos);
}

TEST(Export, WriteFileRoundTrips) {
  std::string path = ::testing::TempDir() + "/tls_export_test.csv";
  std::string error;
  ASSERT_TRUE(write_file(path, "a,b\n1,2\n", &error)) << error;
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "a,b\n1,2\n");
  std::remove(path.c_str());
}

TEST(Export, WriteFileFailureReported) {
  std::string error;
  EXPECT_FALSE(write_file("/nonexistent-dir-xyz/file.csv", "x", &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace tls::exp
