#include "cluster/scheduler.hpp"

#include <gtest/gtest.h>

namespace tls::cluster {
namespace {

dl::JobSpec job(int workers, int num_ps = 1) {
  dl::JobSpec spec;
  spec.num_workers = workers;
  spec.num_ps = num_ps;
  return spec;
}

TEST(Scheduler, AgnosticColocatesPsOnSymmetricCluster) {
  // The paper's Section II observation: a role-agnostic least-loaded
  // scheduler piles PS tasks onto the same host.
  OnlineScheduler sched(5, SchedulerPolicy::kPsAgnostic);
  for (int j = 0; j < 4; ++j) {
    dl::JobPlacement p = sched.place(job(4));
    EXPECT_EQ(p.worker_hosts.size(), 4u);
  }
  EXPECT_GE(sched.max_ps_colocation(), 2);
}

TEST(Scheduler, AwareSpreadsPs) {
  OnlineScheduler sched(5, SchedulerPolicy::kPsAware);
  for (int j = 0; j < 5; ++j) sched.place(job(4));
  EXPECT_EQ(sched.max_ps_colocation(), 1);
}

TEST(Scheduler, AwareColocatesOnlyWhenForced) {
  OnlineScheduler sched(4, SchedulerPolicy::kPsAware);
  for (int j = 0; j < 6; ++j) sched.place(job(3));
  // 6 PSes over 4 hosts: best achievable colocation is 2.
  EXPECT_EQ(sched.max_ps_colocation(), 2);
}

TEST(Scheduler, WorkersExcludePsHostAndAreDistinct) {
  OnlineScheduler sched(6, SchedulerPolicy::kPsAware);
  dl::JobPlacement p = sched.place(job(5));
  EXPECT_EQ(p.worker_hosts.size(), 5u);
  std::set<net::HostId> hosts(p.worker_hosts.begin(), p.worker_hosts.end());
  EXPECT_EQ(hosts.size(), 5u);
  EXPECT_EQ(hosts.count(p.ps_host), 0u);
}

TEST(Scheduler, LoadAccountingAndRemove) {
  OnlineScheduler sched(4, SchedulerPolicy::kPsAware);
  dl::JobSpec spec = job(3);
  dl::JobPlacement p = sched.place(spec);
  int total = 0;
  for (net::HostId h = tls::net::HostId{0}; h < tls::net::HostId{4}; ++h) total += sched.task_count(h);
  EXPECT_EQ(total, 4);  // 1 PS + 3 workers
  sched.remove(spec, p);
  for (net::HostId h = tls::net::HostId{0}; h < tls::net::HostId{4}; ++h) {
    EXPECT_EQ(sched.task_count(h), 0);
    EXPECT_EQ(sched.ps_count(h), 0);
  }
}

TEST(Scheduler, MultiPsShardsSpreadUnderAware) {
  OnlineScheduler sched(6, SchedulerPolicy::kPsAware);
  dl::JobSpec spec = job(3, /*num_ps=*/4);
  dl::JobPlacement p = sched.place(spec);
  EXPECT_EQ(p.ps_count(), 4);
  std::set<net::HostId> shard_hosts(p.ps_hosts.begin(), p.ps_hosts.end());
  EXPECT_EQ(shard_hosts.size(), 4u);  // all on distinct hosts
}

TEST(Scheduler, Validation) {
  EXPECT_THROW(OnlineScheduler(1, SchedulerPolicy::kPsAware),
               std::invalid_argument);
  OnlineScheduler sched(3, SchedulerPolicy::kPsAware);
  EXPECT_THROW(sched.place(job(3)), std::invalid_argument);
}

TEST(Scheduler, PolicyNames) {
  EXPECT_STREQ(to_string(SchedulerPolicy::kPsAgnostic), "ps-agnostic");
  EXPECT_STREQ(to_string(SchedulerPolicy::kPsAware), "ps-aware");
}

TEST(Scheduler, DeparturesReopenCapacity) {
  OnlineScheduler sched(5, SchedulerPolicy::kPsAware);
  dl::JobSpec spec = job(4);
  std::vector<dl::JobPlacement> placements;
  for (int j = 0; j < 5; ++j) placements.push_back(sched.place(spec));
  EXPECT_EQ(sched.max_ps_colocation(), 1);
  sched.remove(spec, placements[0]);
  dl::JobPlacement p = sched.place(spec);
  // The freed PS slot is reused.
  EXPECT_EQ(p.ps_host, placements[0].ps_host);
}

}  // namespace
}  // namespace tls::cluster
