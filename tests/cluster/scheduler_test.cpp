#include "cluster/scheduler.hpp"

#include <gtest/gtest.h>

namespace tls::cluster {
namespace {

dl::JobSpec job(int workers, int num_ps = 1) {
  dl::JobSpec spec;
  spec.num_workers = workers;
  spec.num_ps = num_ps;
  return spec;
}

TEST(Scheduler, AgnosticColocatesPsOnSymmetricCluster) {
  // The paper's Section II observation: a role-agnostic least-loaded
  // scheduler piles PS tasks onto the same host.
  OnlineScheduler sched(5, SchedulerPolicy::kPsAgnostic);
  for (int j = 0; j < 4; ++j) {
    dl::JobPlacement p = sched.place(job(4));
    EXPECT_EQ(p.worker_hosts.size(), 4u);
  }
  EXPECT_GE(sched.max_ps_colocation(), 2);
}

TEST(Scheduler, AwareSpreadsPs) {
  OnlineScheduler sched(5, SchedulerPolicy::kPsAware);
  for (int j = 0; j < 5; ++j) sched.place(job(4));
  EXPECT_EQ(sched.max_ps_colocation(), 1);
}

TEST(Scheduler, AwareColocatesOnlyWhenForced) {
  OnlineScheduler sched(4, SchedulerPolicy::kPsAware);
  for (int j = 0; j < 6; ++j) sched.place(job(3));
  // 6 PSes over 4 hosts: best achievable colocation is 2.
  EXPECT_EQ(sched.max_ps_colocation(), 2);
}

TEST(Scheduler, WorkersExcludePsHostAndAreDistinct) {
  OnlineScheduler sched(6, SchedulerPolicy::kPsAware);
  dl::JobPlacement p = sched.place(job(5));
  EXPECT_EQ(p.worker_hosts.size(), 5u);
  std::set<net::HostId> hosts(p.worker_hosts.begin(), p.worker_hosts.end());
  EXPECT_EQ(hosts.size(), 5u);
  EXPECT_EQ(hosts.count(p.ps_host), 0u);
}

TEST(Scheduler, LoadAccountingAndRemove) {
  OnlineScheduler sched(4, SchedulerPolicy::kPsAware);
  dl::JobSpec spec = job(3);
  dl::JobPlacement p = sched.place(spec);
  int total = 0;
  for (net::HostId h = tls::net::HostId{0}; h < tls::net::HostId{4}; ++h) total += sched.task_count(h);
  EXPECT_EQ(total, 4);  // 1 PS + 3 workers
  sched.remove(spec, p);
  for (net::HostId h = tls::net::HostId{0}; h < tls::net::HostId{4}; ++h) {
    EXPECT_EQ(sched.task_count(h), 0);
    EXPECT_EQ(sched.ps_count(h), 0);
  }
}

TEST(Scheduler, MultiPsShardsSpreadUnderAware) {
  OnlineScheduler sched(6, SchedulerPolicy::kPsAware);
  dl::JobSpec spec = job(3, /*num_ps=*/4);
  dl::JobPlacement p = sched.place(spec);
  EXPECT_EQ(p.ps_count(), 4);
  std::set<net::HostId> shard_hosts(p.ps_hosts.begin(), p.ps_hosts.end());
  EXPECT_EQ(shard_hosts.size(), 4u);  // all on distinct hosts
}

TEST(Scheduler, Validation) {
  EXPECT_THROW(OnlineScheduler(1, SchedulerPolicy::kPsAware),
               std::invalid_argument);
  OnlineScheduler sched(3, SchedulerPolicy::kPsAware);
  EXPECT_THROW(sched.place(job(3)), std::invalid_argument);
}

TEST(Scheduler, PolicyNames) {
  EXPECT_STREQ(to_string(SchedulerPolicy::kPsAgnostic), "ps-agnostic");
  EXPECT_STREQ(to_string(SchedulerPolicy::kPsAware), "ps-aware");
}

TEST(Scheduler, DeparturesReopenCapacity) {
  OnlineScheduler sched(5, SchedulerPolicy::kPsAware);
  dl::JobSpec spec = job(4);
  std::vector<dl::JobPlacement> placements;
  for (int j = 0; j < 5; ++j) placements.push_back(sched.place(spec));
  EXPECT_EQ(sched.max_ps_colocation(), 1);
  sched.remove(spec, placements[0]);
  dl::JobPlacement p = sched.place(spec);
  // The freed PS slot is reused.
  EXPECT_EQ(p.ps_host, placements[0].ps_host);
}

// ---------------------------------------------------------------------------
// Admission-aware placement (try_place): the band budget turns placement
// into a three-way decision — place, queue, or reject.

TEST(Scheduler, TryPlaceAdmitsUpToTheBandLimit) {
  OnlineScheduler sched(4, SchedulerPolicy::kPsAware,
                        AdmissionPolicy::kQueue, /*ps_band_limit=*/1);
  for (int j = 0; j < 4; ++j) {
    Admission a = sched.try_place(job(2));
    EXPECT_EQ(a.outcome, AdmissionOutcome::kPlaced) << "job " << j;
    EXPECT_EQ(a.ps_colocation, 1);
  }
  EXPECT_EQ(sched.max_ps_colocation(), 1);
}

TEST(Scheduler, TryPlaceQueuesOnBandExhaustionWithoutMutating) {
  OnlineScheduler sched(4, SchedulerPolicy::kPsAware,
                        AdmissionPolicy::kQueue, /*ps_band_limit=*/1);
  std::vector<std::pair<dl::JobSpec, dl::JobPlacement>> admitted;
  for (int j = 0; j < 4; ++j) {
    dl::JobSpec spec = job(2);
    admitted.emplace_back(spec, sched.try_place(spec).placement);
  }
  int before = 0;
  for (net::HostId h{0}; h < net::HostId{4}; ++h) before += sched.task_count(h);

  Admission held = sched.try_place(job(2));
  EXPECT_EQ(held.outcome, AdmissionOutcome::kQueued);
  EXPECT_EQ(held.ps_colocation, 1);  // the budget that triggered the refusal
  int after = 0;
  for (net::HostId h{0}; h < net::HostId{4}; ++h) after += sched.task_count(h);
  EXPECT_EQ(after, before);  // queue/reject never charge accounting

  // A departure frees a band slot; the retry then lands.
  sched.remove(admitted[0].first, admitted[0].second);
  EXPECT_EQ(sched.try_place(job(2)).outcome, AdmissionOutcome::kPlaced);
}

TEST(Scheduler, TryPlaceRejectsOnBandExhaustion) {
  OnlineScheduler sched(4, SchedulerPolicy::kPsAware,
                        AdmissionPolicy::kReject, /*ps_band_limit=*/1);
  for (int j = 0; j < 4; ++j) sched.try_place(job(2));
  Admission refused = sched.try_place(job(2));
  EXPECT_EQ(refused.outcome, AdmissionOutcome::kRejected);
  for (net::HostId h{0}; h < net::HostId{4}; ++h) {
    EXPECT_EQ(sched.ps_count(h), 1);
  }
}

TEST(Scheduler, ShareBandPlacesPastTheLimit) {
  OnlineScheduler sched(4, SchedulerPolicy::kPsAware,
                        AdmissionPolicy::kShareBand, /*ps_band_limit=*/1);
  for (int j = 0; j < 4; ++j) sched.try_place(job(2));
  Admission a = sched.try_place(job(2));
  EXPECT_EQ(a.outcome, AdmissionOutcome::kPlaced);
  EXPECT_EQ(a.ps_colocation, 2);  // budget exceeded, bands now shared
  EXPECT_EQ(sched.max_ps_colocation(), 2);
}

TEST(Scheduler, ZeroLimitDisablesAdmissionControl) {
  OnlineScheduler sched(3, SchedulerPolicy::kPsAware,
                        AdmissionPolicy::kReject, /*ps_band_limit=*/0);
  for (int j = 0; j < 12; ++j) {
    EXPECT_EQ(sched.try_place(job(2)).outcome, AdmissionOutcome::kPlaced);
  }
  EXPECT_EQ(sched.max_ps_colocation(), 4);
}

TEST(Scheduler, TryPlaceStillThrowsOnStructuralImpossibility) {
  // Too many workers is a configuration error, not a load condition — it
  // would never succeed no matter how many jobs depart.
  OnlineScheduler sched(3, SchedulerPolicy::kPsAware,
                        AdmissionPolicy::kQueue, /*ps_band_limit=*/1);
  EXPECT_THROW(sched.try_place(job(3)), std::invalid_argument);
}

TEST(Scheduler, AdmissionAccessorsAndNames) {
  OnlineScheduler sched(3, SchedulerPolicy::kPsAware,
                        AdmissionPolicy::kQueue, /*ps_band_limit=*/6);
  EXPECT_EQ(sched.admission_policy(), AdmissionPolicy::kQueue);
  EXPECT_EQ(sched.ps_band_limit(), 6);
  EXPECT_STREQ(to_string(AdmissionPolicy::kShareBand), "share-band");
  EXPECT_STREQ(to_string(AdmissionPolicy::kQueue), "queue");
  EXPECT_STREQ(to_string(AdmissionPolicy::kReject), "reject");
  EXPECT_STREQ(to_string(AdmissionOutcome::kPlaced), "placed");
  EXPECT_STREQ(to_string(AdmissionOutcome::kQueued), "queued");
  EXPECT_STREQ(to_string(AdmissionOutcome::kRejected), "rejected");
}

}  // namespace
}  // namespace tls::cluster
