#include "cluster/placement.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace tls::cluster {
namespace {

TEST(Placement, EvenGroupsBasic) {
  PsPlacement p = even_groups(21, 4);
  EXPECT_EQ(p.group_sizes, (std::vector<int>{5, 5, 5, 6}));
  EXPECT_EQ(p.name, "5, 5, 5, 6");
  EXPECT_EQ(p.total_jobs(), 21);
}

TEST(Placement, EvenGroupsExactDivision) {
  EXPECT_EQ(even_groups(21, 3).group_sizes, (std::vector<int>{7, 7, 7}));
  EXPECT_EQ(even_groups(21, 7).group_sizes,
            (std::vector<int>{3, 3, 3, 3, 3, 3, 3}));
}

TEST(Placement, EvenGroupsValidation) {
  EXPECT_THROW(even_groups(0, 1), std::invalid_argument);
  EXPECT_THROW(even_groups(5, 0), std::invalid_argument);
  EXPECT_THROW(even_groups(5, 6), std::invalid_argument);
}

TEST(Placement, TableOneMatchesPaper) {
  // Table I of the paper for M = 21.
  EXPECT_EQ(table1(1).group_sizes, (std::vector<int>{21}));
  EXPECT_EQ(table1(2).group_sizes, (std::vector<int>{5, 16}));
  EXPECT_EQ(table1(3).group_sizes, (std::vector<int>{10, 11}));
  EXPECT_EQ(table1(4).group_sizes, (std::vector<int>{7, 7, 7}));
  EXPECT_EQ(table1(5).group_sizes, (std::vector<int>{5, 5, 5, 6}));
  EXPECT_EQ(table1(6).group_sizes, (std::vector<int>{4, 4, 4, 4, 5}));
  EXPECT_EQ(table1(7).group_sizes, (std::vector<int>{3, 3, 3, 3, 3, 3, 3}));
  EXPECT_EQ(table1(8).group_sizes, std::vector<int>(21, 1));
}

TEST(Placement, TableOneIndexRecorded) {
  for (int i = 1; i <= 8; ++i) EXPECT_EQ(table1(i).index, i);
  EXPECT_THROW(table1(0), std::invalid_argument);
  EXPECT_THROW(table1(9), std::invalid_argument);
}

TEST(Placement, TableOneAllTotalsConsistent) {
  for (const PsPlacement& p : table1_all(21)) EXPECT_EQ(p.total_jobs(), 21);
}

TEST(Placement, TableOneScalesToOtherJobCounts) {
  for (int m : {8, 10, 30}) {
    for (const PsPlacement& p : table1_all(m)) {
      EXPECT_EQ(p.total_jobs(), m) << "index " << p.index << " m " << m;
      for (int g : p.group_sizes) EXPECT_GE(g, 1);
    }
  }
}

TEST(Placement, HigherIndexMoreUniform) {
  // The paper: "placement with a higher index tends to be more uniform."
  auto max_group = [](const PsPlacement& p) {
    return *std::max_element(p.group_sizes.begin(), p.group_sizes.end());
  };
  auto all = table1_all(21);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(max_group(all[i]), max_group(all[i - 1]))
        << "index " << all[i].index;
  }
}

TEST(AssignTasks, PsHostsFollowGroups) {
  auto jobs = assign_tasks(table1(4, 21), 21, 20);  // 7,7,7
  ASSERT_EQ(jobs.size(), 21u);
  for (int j = 0; j < 7; ++j) EXPECT_EQ(jobs[static_cast<size_t>(j)].ps_host, tls::net::HostId{0});
  for (int j = 7; j < 14; ++j) EXPECT_EQ(jobs[static_cast<size_t>(j)].ps_host, tls::net::HostId{1});
  for (int j = 14; j < 21; ++j) EXPECT_EQ(jobs[static_cast<size_t>(j)].ps_host, tls::net::HostId{2});
}

TEST(AssignTasks, WorkersOnePerHostExcludingPs) {
  auto jobs = assign_tasks(table1(1, 21), 21, 20);
  for (const auto& jp : jobs) {
    EXPECT_EQ(jp.worker_hosts.size(), 20u);
    std::set<net::HostId> hosts(jp.worker_hosts.begin(), jp.worker_hosts.end());
    EXPECT_EQ(hosts.size(), 20u);                 // all distinct
    EXPECT_EQ(hosts.count(jp.ps_host), 0u);       // none on the PS host
  }
}

TEST(AssignTasks, AllHostsGetEqualWorkerLoad) {
  auto jobs = assign_tasks(table1(8, 21), 21, 20);
  std::vector<int> load(21, 0);
  for (const auto& jp : jobs) {
    for (net::HostId h : jp.worker_hosts) ++load[static_cast<size_t>(h.idx())];
  }
  for (int l : load) EXPECT_EQ(l, 20);  // every host hosts 20 workers
}

TEST(AssignTasks, Validation) {
  EXPECT_THROW(assign_tasks(table1(8, 21), 20, 19), std::invalid_argument);
  EXPECT_THROW(assign_tasks(table1(1, 21), 21, 21), std::invalid_argument);
  EXPECT_THROW(assign_tasks(table1(1, 21), 21, 0), std::invalid_argument);
}

TEST(AssignTasksSharded, ShardsWalkFromGroupHost) {
  auto jobs = assign_tasks_sharded(table1(1, 4), 8, 5, /*num_ps=*/3);
  ASSERT_EQ(jobs.size(), 4u);
  for (const auto& jp : jobs) {
    ASSERT_EQ(jp.ps_count(), 3);
    EXPECT_EQ(jp.ps_shard_host(0), jp.ps_host);
    EXPECT_EQ(jp.ps_shard_host(1), tls::net::HostId{(jp.ps_host.idx() + 1) % 8});
    EXPECT_EQ(jp.ps_shard_host(2), tls::net::HostId{(jp.ps_host.idx() + 2) % 8});
  }
}

TEST(AssignTasksSharded, SinglePsMatchesPlainAssign) {
  auto plain = assign_tasks(table1(4, 9), 9, 6);
  auto sharded = assign_tasks_sharded(table1(4, 9), 9, 6, 1);
  ASSERT_EQ(plain.size(), sharded.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].ps_host, sharded[i].ps_host);
    EXPECT_EQ(plain[i].worker_hosts, sharded[i].worker_hosts);
    EXPECT_EQ(sharded[i].ps_count(), 1);
  }
}

TEST(AssignTasksSharded, Validation) {
  EXPECT_THROW(assign_tasks_sharded(table1(1, 4), 8, 5, 0),
               std::invalid_argument);
  EXPECT_THROW(assign_tasks_sharded(table1(1, 4), 8, 5, 9),
               std::invalid_argument);
}

TEST(AssignTasks, FewerWorkersThanHosts) {
  auto jobs = assign_tasks(table1(1, 4), 8, 3);
  ASSERT_EQ(jobs.size(), 4u);
  for (const auto& jp : jobs) {
    EXPECT_EQ(jp.worker_hosts.size(), 3u);
    for (net::HostId h : jp.worker_hosts) EXPECT_NE(h, jp.ps_host);
  }
}

}  // namespace
}  // namespace tls::cluster
