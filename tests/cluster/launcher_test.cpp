#include "cluster/launcher.hpp"

#include <gtest/gtest.h>

#include "cluster/placement.hpp"
#include "workload/gridsearch.hpp"

namespace tls::cluster {
namespace {

struct Recorder : JobEventListener {
  std::vector<std::pair<std::int32_t, sim::Time>> arrivals;
  std::vector<std::pair<std::int32_t, sim::Time>> departures;
  sim::Simulator* sim = nullptr;

  void on_job_arrival(const dl::JobSpec& spec, const dl::JobPlacement&) override {
    arrivals.emplace_back(spec.job_id, sim->now());
  }
  void on_job_departure(const dl::JobSpec& spec, const dl::JobPlacement&) override {
    departures.emplace_back(spec.job_id, sim->now());
  }
};

class LauncherTest : public ::testing::Test {
 protected:
  LauncherTest() : fabric_(sim_, make_fabric()), launcher_(sim_, fabric_) {
    recorder_.sim = &sim_;
  }

  static net::FabricConfig make_fabric() {
    net::FabricConfig c;
    c.num_hosts = 4;
    return c;
  }

  std::vector<dl::JobSpec> jobs(int n, std::int64_t target = 6) {
    workload::GridSearchConfig w;
    w.num_jobs = n;
    w.workers_per_job = 3;
    w.global_step_target = target;
    return workload::grid_search_jobs(w);
  }

  sim::Simulator sim_{1};
  net::Fabric fabric_;
  Launcher launcher_;
  Recorder recorder_;
};

TEST_F(LauncherTest, StaggeredLaunchTimes) {
  launcher_.add_listener(&recorder_);
  launcher_.launch_all(jobs(3), assign_tasks(table1(1, 3), 4, 3), {});
  sim_.run();
  ASSERT_EQ(recorder_.arrivals.size(), 3u);
  EXPECT_EQ(recorder_.arrivals[0].second, tls::sim::Time{0});
  EXPECT_EQ(recorder_.arrivals[1].second, 100 * sim::kMillisecond);
  EXPECT_EQ(recorder_.arrivals[2].second, 200 * sim::kMillisecond);
}

TEST_F(LauncherTest, ArrivalPrecedesFirstFlow) {
  struct Checker : JobEventListener {
    net::Fabric* fabric = nullptr;
    void on_job_arrival(const dl::JobSpec&, const dl::JobPlacement&) override {
      // No traffic from this job may exist yet.
      EXPECT_EQ(fabric->active_flows(), 0u);
    }
    void on_job_departure(const dl::JobSpec&, const dl::JobPlacement&) override {}
  } checker;
  checker.fabric = &fabric_;
  launcher_.add_listener(&checker);
  launcher_.launch_all(jobs(1), assign_tasks(table1(1, 1), 4, 3), {});
  sim_.run(10 * sim::kMillisecond);
}

TEST_F(LauncherTest, DeparturesFireOnFinish) {
  launcher_.add_listener(&recorder_);
  launcher_.launch_all(jobs(2), assign_tasks(table1(1, 2), 4, 3), {});
  sim_.run();
  EXPECT_EQ(recorder_.departures.size(), 2u);
  EXPECT_TRUE(launcher_.all_finished());
  EXPECT_EQ(launcher_.finished_count(), 2);
}

TEST_F(LauncherTest, PortsAssignedWithStride) {
  LaunchConfig cfg;
  cfg.base_port = 6000;
  cfg.port_stride = 32;
  launcher_.launch_all(jobs(3), assign_tasks(table1(1, 3), 4, 3), cfg);
  EXPECT_EQ(launcher_.jobs()[0]->spec().ps_port, 6000);
  EXPECT_EQ(launcher_.jobs()[1]->spec().ps_port, 6032);
  EXPECT_EQ(launcher_.jobs()[2]->spec().ps_port, 6064);
}

TEST_F(LauncherTest, PortStrideTooSmallRejected) {
  LaunchConfig cfg;
  cfg.port_stride = 4;  // needs 2 + 3 workers = 5
  EXPECT_THROW(
      launcher_.launch_all(jobs(2), assign_tasks(table1(1, 2), 4, 3), cfg),
      std::invalid_argument);
}

TEST_F(LauncherTest, MismatchedSpecsAndPlacementsRejected) {
  EXPECT_THROW(
      launcher_.launch_all(jobs(3), assign_tasks(table1(1, 2), 4, 3), {}),
      std::invalid_argument);
}

TEST_F(LauncherTest, SecondLaunchAllRejected) {
  launcher_.launch_all(jobs(1), assign_tasks(table1(1, 1), 4, 3), {});
  EXPECT_THROW(
      launcher_.launch_all(jobs(1), assign_tasks(table1(1, 1), 4, 3), {}),
      std::logic_error);
}

TEST_F(LauncherTest, AllFinishedFalseWhileRunning) {
  launcher_.launch_all(jobs(1, /*target=*/30), assign_tasks(table1(1, 1), 4, 3), {});
  EXPECT_FALSE(launcher_.all_finished());
  sim_.run(sim_.now() + 10 * sim::kMillisecond);
  EXPECT_FALSE(launcher_.all_finished());
  sim_.run();
  EXPECT_TRUE(launcher_.all_finished());
}

TEST_F(LauncherTest, BusySinkForwarded) {
  int intervals = 0;
  launcher_.set_busy_sink(
      [&](net::HostId, sim::Time, sim::Time) { ++intervals; });
  launcher_.launch_all(jobs(1), assign_tasks(table1(1, 1), 4, 3), {});
  sim_.run();
  EXPECT_GT(intervals, 0);
}

// ---------------------------------------------------------------------------
// Dynamic-cluster admission (admit/evict): jobs enter and leave one at a
// time, ports are recycled, and the two launch paths exclude each other.

TEST_F(LauncherTest, AdmitStartsImmediatelyAndFiresCallbacks) {
  launcher_.add_listener(&recorder_);
  dl::JobSpec spec = jobs(1)[0];
  dl::JobPlacement placement = assign_tasks(table1(1, 1), 4, 3)[0];
  int departed = 0;
  launcher_.admit(spec, placement, {},
                  [&](const dl::JobRuntime&) { ++departed; });
  ASSERT_EQ(recorder_.arrivals.size(), 1u);  // arrival fires before packets
  sim_.run();
  EXPECT_EQ(launcher_.finished_count(), 1);
  EXPECT_EQ(departed, 1);
  ASSERT_EQ(recorder_.departures.size(), 1u);
}

TEST_F(LauncherTest, AdmitRecyclesLowestFreePortSlot) {
  auto placements = assign_tasks(table1(1, 2), 4, 3);
  std::vector<dl::JobSpec> specs = jobs(2);
  dl::JobRuntime& a = launcher_.admit(specs[0], placements[0], {});
  dl::JobRuntime& b = launcher_.admit(specs[1], placements[1], {});
  std::uint16_t port_a = a.spec().ps_port;
  std::uint16_t port_b = b.spec().ps_port;
  EXPECT_NE(port_a, port_b);
  sim_.run();
  ASSERT_TRUE(a.finished() && b.finished());
  // Both slots are free; the next admit takes the lowest one back.
  dl::JobSpec next = jobs(1)[0];
  next.job_id = 7;
  dl::JobRuntime& c = launcher_.admit(next, placements[0], {});
  EXPECT_EQ(c.spec().ps_port, std::min(port_a, port_b));
}

TEST_F(LauncherTest, EvictEndsAJobEarly) {
  dl::JobSpec spec = jobs(1, /*target=*/1'000'000)[0];
  dl::JobRuntime& job =
      launcher_.admit(spec, assign_tasks(table1(1, 1), 4, 3)[0], {});
  sim_.run(sim_.now() + 1 * sim::kSecond);
  ASSERT_FALSE(job.finished());
  launcher_.evict(job);
  sim_.run();
  EXPECT_TRUE(job.finished());
  EXPECT_TRUE(job.evicted());
  EXPECT_EQ(launcher_.finished_count(), 1);
  EXPECT_EQ(fabric_.active_flows(), 0u);
}

TEST_F(LauncherTest, AdmitAndLaunchAllAreMutuallyExclusive) {
  launcher_.admit(jobs(1)[0], assign_tasks(table1(1, 1), 4, 3)[0], {});
  EXPECT_THROW(
      launcher_.launch_all(jobs(1), assign_tasks(table1(1, 1), 4, 3), {}),
      std::logic_error);

  Launcher other(sim_, fabric_);
  other.launch_all(jobs(1), assign_tasks(table1(1, 1), 4, 3), {});
  EXPECT_THROW(other.admit(jobs(1)[0], assign_tasks(table1(1, 1), 4, 3)[0], {}),
               std::logic_error);
}

}  // namespace
}  // namespace tls::cluster
