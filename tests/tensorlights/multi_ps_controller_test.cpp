// Controller behaviour for multi-PS jobs: every host carrying a shard is
// configured, each shard's port is steered, and departures clean all of it
// up.
#include <gtest/gtest.h>

#include "tensorlights/controller.hpp"

namespace tls::core {
namespace {

class MultiPsControllerTest : public ::testing::Test {
 protected:
  MultiPsControllerTest() : fabric_(sim_, make_fabric()), control_(fabric_) {}

  static net::FabricConfig make_fabric() {
    net::FabricConfig c;
    c.num_hosts = 6;
    return c;
  }

  dl::JobSpec sharded(std::int32_t id, std::uint16_t port, int num_ps) {
    dl::JobSpec spec;
    spec.job_id = id;
    spec.ps_port = port;
    spec.num_ps = num_ps;
    spec.model = dl::zoo::resnet32_cifar10();
    spec.num_workers = 3;
    return spec;
  }

  dl::JobPlacement shard_hosts(std::initializer_list<net::HostId> hosts) {
    dl::JobPlacement p;
    p.ps_hosts.assign(hosts);
    p.ps_host = p.ps_hosts.front();
    p.worker_hosts = {net::HostId{3}, net::HostId{4}, net::HostId{5}};
    return p;
  }

  net::BandId classify(net::HostId host, std::uint16_t sport) {
    net::FlowSpec f;
    f.src_port = sport;
    return fabric_.egress(host).classifier().classify(f);
  }

  sim::Simulator sim_{1};
  net::Fabric fabric_;
  tc::TrafficControl control_;
};

TEST_F(MultiPsControllerTest, AllShardHostsConfigured) {
  Controller ctl(sim_, control_, {});
  ctl.on_job_arrival(sharded(0, 5000, 3), shard_hosts({net::HostId{0}, net::HostId{1}, net::HostId{2}}));
  EXPECT_TRUE(ctl.host_configured(tls::net::HostId{0}));
  EXPECT_TRUE(ctl.host_configured(tls::net::HostId{1}));
  EXPECT_TRUE(ctl.host_configured(tls::net::HostId{2}));
  EXPECT_FALSE(ctl.host_configured(tls::net::HostId{3}));
  // Each shard's port is steered on its own host into the top class.
  EXPECT_EQ(classify(tls::net::HostId{0}, 5000), tls::net::BandId{1});
  EXPECT_EQ(classify(tls::net::HostId{1}, 5001), tls::net::BandId{1});
  EXPECT_EQ(classify(tls::net::HostId{2}, 5002), tls::net::BandId{1});
  // A shard's port does not leak onto other hosts.
  EXPECT_EQ(classify(tls::net::HostId{0}, 5001), tls::net::BandId{0});
}

TEST_F(MultiPsControllerTest, ShardsOfTwoJobsContendPerHost) {
  Controller ctl(sim_, control_, {});
  ctl.on_job_arrival(sharded(0, 5000, 2), shard_hosts({net::HostId{0}, net::HostId{1}}));
  ctl.on_job_arrival(sharded(1, 5100, 2), shard_hosts({net::HostId{1}, net::HostId{2}}));
  // Host 1 carries shards of both jobs: job 0 arrived first, so its shard
  // (port 5001) is in the higher class there.
  EXPECT_EQ(classify(tls::net::HostId{1}, 5001), tls::net::BandId{1});
  EXPECT_EQ(classify(tls::net::HostId{1}, 5100), tls::net::BandId{2});
  // Hosts 0 and 2 see a single job each: top class.
  EXPECT_EQ(classify(tls::net::HostId{0}, 5000), tls::net::BandId{1});
  EXPECT_EQ(classify(tls::net::HostId{2}, 5101), tls::net::BandId{1});
}

TEST_F(MultiPsControllerTest, DepartureRemovesEveryShardFilter) {
  Controller ctl(sim_, control_, {});
  dl::JobSpec job0 = sharded(0, 5000, 2);
  dl::JobPlacement place0 = shard_hosts({net::HostId{0}, net::HostId{1}});
  ctl.on_job_arrival(job0, place0);
  ctl.on_job_arrival(sharded(1, 5100, 1), shard_hosts({net::HostId{1}}));
  ctl.on_job_departure(job0, place0);
  EXPECT_EQ(classify(tls::net::HostId{0}, 5000), tls::net::BandId{0});  // no filter left on host 0
  EXPECT_EQ(classify(tls::net::HostId{1}, 5001), tls::net::BandId{0});
  // Job 1 promoted to the top class on host 1.
  EXPECT_EQ(classify(tls::net::HostId{1}, 5100), tls::net::BandId{1});
  EXPECT_EQ(ctl.band_of(0), -1);
  EXPECT_EQ(ctl.band_of(1), 0);
}

TEST_F(MultiPsControllerTest, RotationRotatesShardedHosts) {
  ControllerConfig cfg;
  cfg.policy = PolicyKind::kTlsRR;
  cfg.rotation_interval = sim::kSecond;
  Controller ctl(sim_, control_, cfg);
  ctl.on_job_arrival(sharded(0, 5000, 2), shard_hosts({net::HostId{0}, net::HostId{1}}));
  ctl.on_job_arrival(sharded(1, 5100, 2), shard_hosts({net::HostId{1}, net::HostId{0}}));
  EXPECT_EQ(classify(tls::net::HostId{0}, 5000), tls::net::BandId{1});
  EXPECT_EQ(classify(tls::net::HostId{0}, 5101), tls::net::BandId{2});
  sim_.run(sim::kSecond);
  EXPECT_EQ(classify(tls::net::HostId{0}, 5000), tls::net::BandId{2});  // swapped on host 0
  EXPECT_EQ(classify(tls::net::HostId{0}, 5101), tls::net::BandId{1});
  EXPECT_EQ(classify(tls::net::HostId{1}, 5001), tls::net::BandId{2});  // and on host 1
  EXPECT_EQ(classify(tls::net::HostId{1}, 5100), tls::net::BandId{1});
}

}  // namespace
}  // namespace tls::core
