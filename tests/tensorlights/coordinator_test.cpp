#include "tensorlights/coordinator.hpp"

#include <gtest/gtest.h>

namespace tls::core {
namespace {

TEST(Coordinator, GrantIsNeverSynchronous) {
  sim::Simulator s(1);
  CoordinatorConfig cfg;
  cfg.coordination_rtt = tls::sim::Time{0};
  CentralCoordinator coord(s, cfg);
  bool granted = false;
  coord.request(tls::net::HostId{0}, tls::net::Bytes{100}, [&] { granted = true; });
  EXPECT_FALSE(granted);
  s.run();
  EXPECT_TRUE(granted);
}

TEST(Coordinator, GrantCostsOneRoundTrip) {
  sim::Simulator s(1);
  CoordinatorConfig cfg;
  cfg.coordination_rtt = 5 * sim::kMillisecond;
  CentralCoordinator coord(s, cfg);
  sim::Time granted_at = tls::sim::Time{-1};
  coord.request(tls::net::HostId{0}, tls::net::Bytes{100}, [&] { granted_at = s.now(); });
  s.run();
  EXPECT_EQ(granted_at, 10 * sim::kMillisecond);  // request + response
}

TEST(Coordinator, SerializesBurstsPerHost) {
  sim::Simulator s(1);
  CoordinatorConfig cfg;
  cfg.slots_per_host = 1;
  cfg.coordination_rtt = tls::sim::Time{0};
  CentralCoordinator coord(s, cfg);
  std::vector<int> order;
  coord.request(tls::net::HostId{0}, tls::net::Bytes{100}, [&] { order.push_back(1); });
  coord.request(tls::net::HostId{0}, tls::net::Bytes{100}, [&] { order.push_back(2); });
  s.run();
  // Only the first burst is granted until release.
  EXPECT_EQ(order, std::vector<int>{1});
  EXPECT_EQ(coord.active(tls::net::HostId{0}), 1);
  EXPECT_EQ(coord.queued(tls::net::HostId{0}), 1u);
  coord.release(tls::net::HostId{0});
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(coord.queued(tls::net::HostId{0}), 0u);
}

TEST(Coordinator, HostsAreIndependent) {
  sim::Simulator s(1);
  CoordinatorConfig cfg;
  cfg.coordination_rtt = tls::sim::Time{0};
  CentralCoordinator coord(s, cfg);
  int grants = 0;
  coord.request(tls::net::HostId{0}, tls::net::Bytes{1}, [&] { ++grants; });
  coord.request(tls::net::HostId{1}, tls::net::Bytes{1}, [&] { ++grants; });
  s.run();
  EXPECT_EQ(grants, 2);
}

TEST(Coordinator, MultipleSlots) {
  sim::Simulator s(1);
  CoordinatorConfig cfg;
  cfg.slots_per_host = 2;
  cfg.coordination_rtt = tls::sim::Time{0};
  CentralCoordinator coord(s, cfg);
  int grants = 0;
  for (int i = 0; i < 3; ++i) coord.request(tls::net::HostId{0}, tls::net::Bytes{1}, [&] { ++grants; });
  s.run();
  EXPECT_EQ(grants, 2);
  coord.release(tls::net::HostId{0});
  s.run();
  EXPECT_EQ(grants, 3);
}

TEST(Coordinator, WaitAccounting) {
  sim::Simulator s(1);
  CoordinatorConfig cfg;
  cfg.coordination_rtt = tls::sim::Time{0};
  CentralCoordinator coord(s, cfg);
  coord.request(tls::net::HostId{0}, tls::net::Bytes{1}, [] {});
  coord.request(tls::net::HostId{0}, tls::net::Bytes{1}, [] {});
  s.run();
  s.schedule_after(sim::kSecond, [&] { coord.release(tls::net::HostId{0}); });
  s.run();
  EXPECT_EQ(coord.grants(), 2u);
  EXPECT_NEAR(coord.total_wait_s(), 1.0, 0.01);  // second burst waited 1 s
}

TEST(Coordinator, Validation) {
  sim::Simulator s(1);
  CoordinatorConfig bad;
  bad.slots_per_host = 0;
  EXPECT_THROW(CentralCoordinator(s, bad), std::invalid_argument);
  bad = {};
  bad.coordination_rtt = -tls::sim::Time{1};
  EXPECT_THROW(CentralCoordinator(s, bad), std::invalid_argument);
}

}  // namespace
}  // namespace tls::core
