#include "tensorlights/controller.hpp"

#include <gtest/gtest.h>

#include "net/htb_qdisc.hpp"

namespace tls::core {
namespace {

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() : fabric_(sim_, make_fabric()), control_(fabric_) {}

  static net::FabricConfig make_fabric() {
    net::FabricConfig c;
    c.num_hosts = 4;
    return c;
  }

  dl::JobSpec job(std::int32_t id, std::uint16_t port,
                  dl::ModelSpec model = dl::zoo::resnet32_cifar10()) {
    dl::JobSpec spec;
    spec.job_id = id;
    spec.ps_port = port;
    spec.model = std::move(model);
    spec.num_workers = 3;
    return spec;
  }

  dl::JobPlacement on_host(net::HostId h) {
    dl::JobPlacement p;
    p.ps_host = h;
    p.worker_hosts = {tls::net::HostId{(h.idx() + 1) % 4}, tls::net::HostId{(h.idx() + 2) % 4},
                      tls::net::HostId{(h.idx() + 3) % 4}};
    return p;
  }

  net::BandId classify(net::HostId host, std::uint16_t sport) {
    net::FlowSpec f;
    f.src_port = sport;
    return fabric_.egress(host).classifier().classify(f);
  }

  sim::Simulator sim_{1};
  net::Fabric fabric_;
  tc::TrafficControl control_;
};

TEST_F(ControllerTest, FifoPolicyTouchesNothing) {
  ControllerConfig cfg;
  cfg.policy = PolicyKind::kFifo;
  Controller ctl(sim_, control_, cfg);
  ctl.on_job_arrival(job(0, 5000), on_host(tls::net::HostId{0}));
  ctl.on_job_arrival(job(1, 5100), on_host(tls::net::HostId{0}));
  EXPECT_EQ(control_.history().size(), 0u);
  EXPECT_FALSE(ctl.host_configured(tls::net::HostId{0}));
  EXPECT_EQ(ctl.band_of(0), -1);
}

TEST_F(ControllerTest, FirstArrivalInstallsHtbRoot) {
  Controller ctl(sim_, control_, {});
  ctl.on_job_arrival(job(0, 5000), on_host(tls::net::HostId{0}));
  EXPECT_TRUE(ctl.host_configured(tls::net::HostId{0}));
  EXPECT_EQ(control_.root_kind(tls::net::HostId{0}), tc::QdiscKind::kHtb);
  auto& htb = static_cast<net::HtbQdisc&>(fabric_.egress(tls::net::HostId{0}).qdisc());
  // 6 bands + default class.
  EXPECT_EQ(htb.class_count(), 7u);
  EXPECT_TRUE(htb.has_class(0x3F));
}

TEST_F(ControllerTest, OnlyPsHostsConfigured) {
  Controller ctl(sim_, control_, {});
  ctl.on_job_arrival(job(0, 5000), on_host(tls::net::HostId{0}));
  EXPECT_FALSE(ctl.host_configured(tls::net::HostId{1}));
  EXPECT_EQ(control_.reconfig_count(tls::net::HostId{1}), 0u);
  EXPECT_EQ(control_.reconfig_count(tls::net::HostId{2}), 0u);
}

TEST_F(ControllerTest, ArrivalOrderRanks) {
  Controller ctl(sim_, control_, {});
  ctl.on_job_arrival(job(0, 5000), on_host(tls::net::HostId{0}));
  ctl.on_job_arrival(job(1, 5100), on_host(tls::net::HostId{0}));
  ctl.on_job_arrival(job(2, 5200), on_host(tls::net::HostId{0}));
  EXPECT_EQ(ctl.rank_of(0), 0);
  EXPECT_EQ(ctl.rank_of(1), 1);
  EXPECT_EQ(ctl.rank_of(2), 2);
  EXPECT_EQ(ctl.band_of(0), 0);
  EXPECT_EQ(ctl.band_of(1), 1);
  EXPECT_EQ(ctl.band_of(2), 2);
  // Filters steer the PS ports into the right htb class minors (band+1).
  EXPECT_EQ(classify(tls::net::HostId{0}, 5000), tls::net::BandId{1});
  EXPECT_EQ(classify(tls::net::HostId{0}, 5100), tls::net::BandId{2});
  EXPECT_EQ(classify(tls::net::HostId{0}, 5200), tls::net::BandId{3});
}

TEST_F(ControllerTest, DepartureReranksRemaining) {
  Controller ctl(sim_, control_, {});
  ctl.on_job_arrival(job(0, 5000), on_host(tls::net::HostId{0}));
  ctl.on_job_arrival(job(1, 5100), on_host(tls::net::HostId{0}));
  ctl.on_job_arrival(job(2, 5200), on_host(tls::net::HostId{0}));
  ctl.on_job_departure(job(0, 5000), on_host(tls::net::HostId{0}));
  EXPECT_EQ(ctl.band_of(0), -1);
  EXPECT_EQ(ctl.band_of(1), 0);  // promoted
  EXPECT_EQ(ctl.band_of(2), 1);
  // The departed port no longer matches any filter: the classifier falls
  // back to band 0, which has no htb class, so htb routes it to the
  // default class (1:3f) internally.
  EXPECT_EQ(classify(tls::net::HostId{0}, 5000), tls::net::BandId{0});
  EXPECT_EQ(classify(tls::net::HostId{0}, 5100), tls::net::BandId{1});
}

TEST_F(ControllerTest, SmallestModelFirstStrategy) {
  ControllerConfig cfg;
  cfg.strategy = AssignStrategy::kSmallestModelFirst;
  Controller ctl(sim_, control_, cfg);
  ctl.on_job_arrival(job(0, 5000, dl::zoo::vgg16()), on_host(tls::net::HostId{0}));
  ctl.on_job_arrival(job(1, 5100, dl::zoo::resnet32_cifar10()), on_host(tls::net::HostId{0}));
  ctl.on_job_arrival(job(2, 5200, dl::zoo::resnet50_imagenet()), on_host(tls::net::HostId{0}));
  EXPECT_EQ(ctl.rank_of(1), 0);  // smallest update first
  EXPECT_EQ(ctl.rank_of(2), 1);
  EXPECT_EQ(ctl.rank_of(0), 2);  // vgg16 biggest, lowest priority
}

TEST_F(ControllerTest, RandomStrategyIsAPermutation) {
  ControllerConfig cfg;
  cfg.strategy = AssignStrategy::kRandom;
  Controller ctl(sim_, control_, cfg);
  for (int j = 0; j < 5; ++j) {
    ctl.on_job_arrival(job(j, static_cast<std::uint16_t>(5000 + 100 * j)),
                       on_host(tls::net::HostId{0}));
  }
  std::set<int> ranks;
  for (int j = 0; j < 5; ++j) ranks.insert(ctl.rank_of(j));
  EXPECT_EQ(ranks.size(), 5u);
  EXPECT_EQ(*ranks.begin(), 0);
  EXPECT_EQ(*ranks.rbegin(), 4);
}

TEST_F(ControllerTest, BandSharingBeyondMaxBands) {
  ControllerConfig cfg;
  cfg.max_bands = 2;
  Controller ctl(sim_, control_, cfg);
  for (int j = 0; j < 5; ++j) {
    ctl.on_job_arrival(job(j, static_cast<std::uint16_t>(5000 + 100 * j)),
                       on_host(tls::net::HostId{0}));
  }
  std::map<int, int> band_counts;
  for (int j = 0; j < 5; ++j) ++band_counts[ctl.band_of(j)];
  EXPECT_EQ(band_counts.size(), 2u);  // only 2 bands in use
}

TEST_F(ControllerTest, TlsRRRotatesEveryInterval) {
  ControllerConfig cfg;
  cfg.policy = PolicyKind::kTlsRR;
  cfg.rotation_interval = sim::kSecond;
  Controller ctl(sim_, control_, cfg);
  ctl.on_job_arrival(job(0, 5000), on_host(tls::net::HostId{0}));
  ctl.on_job_arrival(job(1, 5100), on_host(tls::net::HostId{0}));
  EXPECT_EQ(ctl.band_of(0), 0);
  sim_.run(sim::kSecond);
  EXPECT_EQ(ctl.rotations(), 1u);
  EXPECT_EQ(ctl.band_of(0), 1);  // rotated
  EXPECT_EQ(ctl.band_of(1), 0);
  EXPECT_EQ(classify(tls::net::HostId{0}, 5000), tls::net::BandId{2});
  EXPECT_EQ(classify(tls::net::HostId{0}, 5100), tls::net::BandId{1});
  sim_.run(2 * sim::kSecond);
  EXPECT_EQ(ctl.rotations(), 2u);
  EXPECT_EQ(ctl.band_of(0), 0);  // back
}

TEST_F(ControllerTest, TlsOneNeverRotates) {
  Controller ctl(sim_, control_, {});
  ctl.on_job_arrival(job(0, 5000), on_host(tls::net::HostId{0}));
  ctl.on_job_arrival(job(1, 5100), on_host(tls::net::HostId{0}));
  sim_.run(100 * sim::kSecond);
  EXPECT_EQ(ctl.rotations(), 0u);
  EXPECT_EQ(ctl.band_of(0), 0);
}

TEST_F(ControllerTest, RotationSkipsUncontendedHosts) {
  ControllerConfig cfg;
  cfg.policy = PolicyKind::kTlsRR;
  cfg.rotation_interval = sim::kSecond;
  Controller ctl(sim_, control_, cfg);
  ctl.on_job_arrival(job(0, 5000), on_host(tls::net::HostId{0}));  // single PS on host0
  std::uint64_t before = control_.reconfig_count(tls::net::HostId{0});
  sim_.run(5 * sim::kSecond);
  // No contention on host0 -> rotation leaves it alone.
  EXPECT_EQ(control_.reconfig_count(tls::net::HostId{0}), before);
}

TEST_F(ControllerTest, PrioDataPlane) {
  ControllerConfig cfg;
  cfg.data_plane = DataPlane::kPrio;
  Controller ctl(sim_, control_, cfg);
  ctl.on_job_arrival(job(0, 5000), on_host(tls::net::HostId{2}));
  EXPECT_EQ(control_.root_kind(tls::net::HostId{2}), tc::QdiscKind::kPrio);
  EXPECT_EQ(classify(tls::net::HostId{2}, 5000), tls::net::BandId{0});      // top band
  EXPECT_EQ(classify(tls::net::HostId{2}, 9999), tls::net::BandId{6});      // catch-all -> default band
}

TEST_F(ControllerTest, MultiHostIndependence) {
  Controller ctl(sim_, control_, {});
  ctl.on_job_arrival(job(0, 5000), on_host(tls::net::HostId{0}));
  ctl.on_job_arrival(job(1, 5100), on_host(tls::net::HostId{1}));
  // Each host has a single PS: both are top priority locally.
  EXPECT_EQ(ctl.band_of(0), 0);
  EXPECT_EQ(ctl.band_of(1), 0);
  EXPECT_TRUE(ctl.host_configured(tls::net::HostId{0}));
  EXPECT_TRUE(ctl.host_configured(tls::net::HostId{1}));
}

TEST_F(ControllerTest, ConfigValidation) {
  ControllerConfig cfg;
  cfg.max_bands = 0;
  EXPECT_THROW(Controller(sim_, control_, cfg), std::invalid_argument);
  cfg = {};
  cfg.max_bands = 9;  // htb prio limit is 8
  EXPECT_THROW(Controller(sim_, control_, cfg), std::invalid_argument);
  cfg = {};
  cfg.data_plane = DataPlane::kPrio;
  cfg.max_bands = 15;
  EXPECT_NO_THROW(Controller(sim_, control_, cfg));
  cfg.max_bands = 16;
  EXPECT_THROW(Controller(sim_, control_, cfg), std::invalid_argument);
  cfg = {};
  cfg.policy = PolicyKind::kTlsRR;
  cfg.rotation_interval = tls::sim::Time{0};
  EXPECT_THROW(Controller(sim_, control_, cfg), std::invalid_argument);
}

TEST_F(ControllerTest, UnknownDepartureIgnored) {
  Controller ctl(sim_, control_, {});
  EXPECT_NO_THROW(ctl.on_job_departure(job(9, 9000), on_host(tls::net::HostId{0})));
}

}  // namespace
}  // namespace tls::core
