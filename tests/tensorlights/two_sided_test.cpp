// Two-sided (gradient-prioritizing) controller mode.
#include <gtest/gtest.h>

#include "tensorlights/controller.hpp"

namespace tls::core {
namespace {

class TwoSidedTest : public ::testing::Test {
 protected:
  TwoSidedTest() : fabric_(sim_, make_fabric()), control_(fabric_) {}
  static net::FabricConfig make_fabric() {
    net::FabricConfig c;
    c.num_hosts = 5;
    return c;
  }
  dl::JobSpec job(std::int32_t id, std::uint16_t port) {
    dl::JobSpec spec;
    spec.job_id = id;
    spec.ps_port = port;
    spec.model = dl::zoo::resnet32_cifar10();
    spec.num_workers = 3;
    return spec;
  }
  dl::JobPlacement place() {
    dl::JobPlacement p;
    p.ps_host = tls::net::HostId{0};
    p.worker_hosts = {tls::net::HostId{1}, tls::net::HostId{2}, tls::net::HostId{3}};
    return p;
  }
  net::BandId classify_gradient(net::HostId host, std::uint16_t dport) {
    net::FlowSpec f;
    f.dst_port = dport;
    return fabric_.egress(host).classifier().classify(f);
  }
  ControllerConfig two_sided() {
    ControllerConfig cfg;
    cfg.prioritize_gradients = true;
    return cfg;
  }

  sim::Simulator sim_{1};
  net::Fabric fabric_;
  tc::TrafficControl control_;
};

TEST_F(TwoSidedTest, WorkerHostsGetGradientFilters) {
  Controller ctl(sim_, control_, two_sided());
  ctl.on_job_arrival(job(0, 5000), place());
  for (net::HostId h : {net::HostId{1}, net::HostId{2}, net::HostId{3}}) {
    EXPECT_TRUE(ctl.host_configured(h)) << h;
    EXPECT_EQ(classify_gradient(h, 5000), tls::net::BandId{1}) << h;  // top class
  }
  EXPECT_FALSE(ctl.host_configured(tls::net::HostId{4}));  // uninvolved host untouched
}

TEST_F(TwoSidedTest, GradientBandFollowsJobRank) {
  Controller ctl(sim_, control_, two_sided());
  ctl.on_job_arrival(job(0, 5000), place());
  ctl.on_job_arrival(job(1, 5100), place());
  EXPECT_EQ(classify_gradient(tls::net::HostId{1}, 5000), tls::net::BandId{1});  // job 0: rank 0
  EXPECT_EQ(classify_gradient(tls::net::HostId{1}, 5100), tls::net::BandId{2});  // job 1: rank 1
}

TEST_F(TwoSidedTest, DepartureCleansWorkerFilters) {
  Controller ctl(sim_, control_, two_sided());
  dl::JobSpec j0 = job(0, 5000);
  ctl.on_job_arrival(j0, place());
  ctl.on_job_arrival(job(1, 5100), place());
  ctl.on_job_departure(j0, place());
  EXPECT_EQ(classify_gradient(tls::net::HostId{1}, 5000), tls::net::BandId{0});  // filter removed
  EXPECT_EQ(classify_gradient(tls::net::HostId{1}, 5100), tls::net::BandId{1});  // survivor promoted
}

TEST_F(TwoSidedTest, RotationUpdatesGradientFilters) {
  ControllerConfig cfg = two_sided();
  cfg.policy = PolicyKind::kTlsRR;
  cfg.rotation_interval = sim::kSecond;
  Controller ctl(sim_, control_, cfg);
  ctl.on_job_arrival(job(0, 5000), place());
  ctl.on_job_arrival(job(1, 5100), place());
  sim_.run(sim::kSecond);
  EXPECT_EQ(classify_gradient(tls::net::HostId{1}, 5000), tls::net::BandId{2});  // rotated down
  EXPECT_EQ(classify_gradient(tls::net::HostId{1}, 5100), tls::net::BandId{1});
}

TEST_F(TwoSidedTest, OneSidedModeLeavesWorkersUntouched) {
  Controller ctl(sim_, control_, {});
  ctl.on_job_arrival(job(0, 5000), place());
  for (net::HostId h : {net::HostId{1}, net::HostId{2}, net::HostId{3}}) {
    EXPECT_FALSE(ctl.host_configured(h)) << h;
  }
}

}  // namespace
}  // namespace tls::core
