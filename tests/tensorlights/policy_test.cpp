#include "tensorlights/policy.hpp"

#include <gtest/gtest.h>

#include <map>

namespace tls::core {
namespace {

TEST(PolicyNames, Stable) {
  EXPECT_STREQ(to_string(PolicyKind::kFifo), "FIFO");
  EXPECT_STREQ(to_string(PolicyKind::kTlsOne), "TLs-One");
  EXPECT_STREQ(to_string(PolicyKind::kTlsRR), "TLs-RR");
  EXPECT_STREQ(to_string(AssignStrategy::kArrivalOrder), "arrival-order");
  EXPECT_STREQ(to_string(AssignStrategy::kRandom), "random");
  EXPECT_STREQ(to_string(AssignStrategy::kSmallestModelFirst),
               "smallest-model-first");
  EXPECT_STREQ(to_string(DataPlane::kHtb), "htb");
  EXPECT_STREQ(to_string(DataPlane::kPrio), "prio");
}

TEST(BandForRank, IdentityWhenEnoughBands) {
  for (int r = 0; r < 6; ++r) EXPECT_EQ(band_for_rank(r, 6, 6), r);
  EXPECT_EQ(band_for_rank(2, 3, 6), 2);
}

TEST(BandForRank, MonotoneNonDecreasing) {
  for (int n : {7, 21, 100}) {
    for (int bands : {1, 2, 6}) {
      int prev = 0;
      for (int r = 0; r < n; ++r) {
        int b = band_for_rank(r, n, bands);
        EXPECT_GE(b, prev);
        EXPECT_GE(b, 0);
        EXPECT_LT(b, bands);
        prev = b;
      }
    }
  }
}

TEST(BandForRank, SpreadsEvenlyWhenSharing) {
  // 21 jobs into 6 bands: band occupancy 3 or 4.
  std::map<int, int> occupancy;
  for (int r = 0; r < 21; ++r) ++occupancy[band_for_rank(r, 21, 6)];
  EXPECT_EQ(occupancy.size(), 6u);
  for (const auto& [band, count] : occupancy) {
    EXPECT_GE(count, 3) << band;
    EXPECT_LE(count, 4) << band;
  }
}

TEST(BandForRank, TopRankAlwaysBandZero) {
  for (int n : {1, 2, 6, 21}) {
    EXPECT_EQ(band_for_rank(0, n, 6), 0);
  }
}

TEST(BandForRank, SingleBandCollapsesAll) {
  for (int r = 0; r < 21; ++r) EXPECT_EQ(band_for_rank(r, 21, 1), 0);
}

}  // namespace
}  // namespace tls::core
