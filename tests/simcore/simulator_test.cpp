#include "simcore/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tls::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), tls::sim::Time{0});
  EXPECT_TRUE(s.idle());
}

TEST(Simulator, AdvancesToEventTimes) {
  Simulator s;
  std::vector<Time> seen;
  s.schedule_at(tls::sim::Time{100}, [&] { seen.push_back(s.now()); });
  s.schedule_after(tls::sim::Time{50}, [&] { seen.push_back(s.now()); });
  s.run();
  EXPECT_EQ(seen, (std::vector<Time>{Time{50}, Time{100}}));
  EXPECT_EQ(s.now(), tls::sim::Time{100});
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator s;
  int fired = 0;
  s.schedule_at(tls::sim::Time{10}, [&] { ++fired; });
  s.schedule_at(tls::sim::Time{100}, [&] { ++fired; });
  std::uint64_t n = s.run(tls::sim::Time{50});
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), tls::sim::Time{50});  // clock advanced to the bound
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventExactlyAtBoundFires) {
  Simulator s;
  bool fired = false;
  s.schedule_at(tls::sim::Time{50}, [&] { fired = true; });
  s.run(tls::sim::Time{50});
  EXPECT_TRUE(fired);
}

TEST(Simulator, EventsScheduledDuringRunAreProcessed) {
  Simulator s;
  std::vector<Time> seen;
  s.schedule_at(tls::sim::Time{10}, [&] {
    seen.push_back(s.now());
    s.schedule_after(tls::sim::Time{5}, [&] { seen.push_back(s.now()); });
  });
  s.run();
  EXPECT_EQ(seen, (std::vector<Time>{Time{10}, Time{15}}));
}

TEST(Simulator, StepProcessesOneEvent) {
  Simulator s;
  int fired = 0;
  s.schedule_at(tls::sim::Time{1}, [&] { ++fired; });
  s.schedule_at(tls::sim::Time{2}, [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelledEventDoesNotFire) {
  Simulator s;
  bool fired = false;
  EventId id = s.schedule_at(tls::sim::Time{10}, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, DispatchedCounts) {
  Simulator s;
  for (int i = 0; i < 5; ++i) s.schedule_at(tls::sim::Time{i}, [] {});
  s.run();
  EXPECT_EQ(s.dispatched(), 5u);
}

TEST(Simulator, EventLimitThrows) {
  Simulator s;
  s.set_event_limit(10);
  // Self-rescheduling event would run forever without the limit.
  std::function<void()> loop = [&] { s.schedule_after(tls::sim::Time{1}, loop); };
  s.schedule_after(tls::sim::Time{1}, loop);
  EXPECT_THROW(s.run(), std::runtime_error);
}

TEST(PeriodicTimer, TicksAtPeriod) {
  Simulator s;
  std::vector<Time> ticks;
  PeriodicTimer t(s, Time{10}, [&] { ticks.push_back(s.now()); });
  t.start();
  s.run(tls::sim::Time{35});
  EXPECT_EQ(ticks, (std::vector<Time>{Time{10}, Time{20}, Time{30}}));
}

TEST(PeriodicTimer, PhaseControlsFirstTick) {
  Simulator s;
  std::vector<Time> ticks;
  PeriodicTimer t(s, Time{10}, [&] { ticks.push_back(s.now()); });
  t.start(/*phase=*/tls::sim::Time{3});
  s.run(tls::sim::Time{25});
  EXPECT_EQ(ticks, (std::vector<Time>{Time{3}, Time{13}, Time{23}}));
}

TEST(PeriodicTimer, StopCancelsFutureTicks) {
  Simulator s;
  int ticks = 0;
  PeriodicTimer t(s, Time{10}, [&] { ++ticks; });
  t.start();
  s.run(tls::sim::Time{15});
  t.stop();
  s.run(tls::sim::Time{100});
  EXPECT_EQ(ticks, 1);
  EXPECT_FALSE(t.running());
}

TEST(PeriodicTimer, StopFromWithinCallback) {
  Simulator s;
  int ticks = 0;
  PeriodicTimer t(s, Time{10}, [&] {
    if (++ticks == 2) t.stop();
  });
  t.start();
  s.run(tls::sim::Time{200});
  EXPECT_EQ(ticks, 2);
}

TEST(PeriodicTimer, RestartAfterStop) {
  Simulator s;
  int ticks = 0;
  PeriodicTimer t(s, Time{10}, [&] { ++ticks; });
  t.start();
  s.run(tls::sim::Time{10});
  t.stop();
  t.start();
  s.run(tls::sim::Time{20});
  EXPECT_EQ(ticks, 2);
}

TEST(PeriodicTimer, SetPeriodTakesEffectOnRearm) {
  Simulator s;
  std::vector<Time> ticks;
  PeriodicTimer t(s, Time{10}, [&] { ticks.push_back(s.now()); });
  t.start();
  s.run(tls::sim::Time{10});
  // The tick at t=10 already re-armed with the old period, so the change
  // applies from the tick after next.
  t.set_period(tls::sim::Time{5});
  s.run(tls::sim::Time{30});
  EXPECT_EQ(ticks, (std::vector<Time>{Time{10}, Time{20}, Time{25}, Time{30}}));
}

}  // namespace
}  // namespace tls::sim
