#include "simcore/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace tls::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(99);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformU64CoversRangeWithoutBias) {
  Rng r(5);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.uniform_u64(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, UniformI64Inclusive) {
  Rng r(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_i64(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(11);
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    double x = r.normal();
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng r(11);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LognormalMedianIsMedian) {
  Rng r(13);
  const int n = 50001;
  std::vector<double> xs(n);
  for (double& x : xs) x = r.lognormal_median(4.0, 0.5);
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], 4.0, 0.1);
}

TEST(Rng, LognormalSigmaZeroIsExact) {
  Rng r(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.lognormal_median(2.5, 0.0), 2.5);
}

TEST(Rng, LognormalAlwaysPositive) {
  Rng r(17);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(r.lognormal_median(1.0, 1.0), 0.0);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(19);
  const int n = 200000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += r.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, BernoulliProbability) {
  Rng r(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  EXPECT_FALSE(Rng(1).bernoulli(0.0));
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng parent(100);
  Rng a = parent.fork(1);
  Rng b = parent.fork(1);
  Rng c = parent.fork(2);
  EXPECT_EQ(a.next(), b.next());
  // Different stream ids decorrelate.
  Rng a2 = parent.fork(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a2.next() == c.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkByLabelStable) {
  Rng parent(100);
  EXPECT_EQ(parent.fork("fabric").next(), parent.fork("fabric").next());
  EXPECT_NE(parent.fork("fabric").next(), parent.fork("job1").next());
}

TEST(Rng, ForkDoesNotPerturbParent) {
  Rng a(100), b(100);
  (void)a.fork("x");
  EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(3);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  r.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Rng, Fnv1aStable) {
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
  EXPECT_NE(fnv1a(""), fnv1a("a"));
}

TEST(Rng, Splitmix64MatchesReferenceVector) {
  // Reference sequence from Vigna's splitmix64.c with state = 0. Pinning
  // these bytes pins every stream derived from a seed: a silent change to
  // the seeding path would invalidate all committed goldens.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64(state), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(splitmix64(state), 0x06C45D188009454FULL);
}

TEST(Rng, Splitmix64AdvancesItsState) {
  std::uint64_t state = 42;
  (void)splitmix64(state);
  EXPECT_NE(state, 42u);
}

}  // namespace
}  // namespace tls::sim
