#include "simcore/event_queue.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

namespace tls::sim {
namespace {

/// Deterministic 64-bit LCG for property tests (no std RNG, fixed streams).
struct Lcg {
  std::uint64_t s;
  std::uint64_t next() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return s >> 33;
  }
};

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(tls::sim::Time{30}, [&] { fired.push_back(3); });
  q.schedule(tls::sim::Time{10}, [&] { fired.push_back(1); });
  q.schedule(tls::sim::Time{20}, [&] { fired.push_back(2); });
  while (!q.empty()) {
    auto [t, cb] = q.pop();
    cb();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInSchedulingOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(tls::sim::Time{42}, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, PeekTimeReturnsEarliest) {
  EventQueue q;
  q.schedule(tls::sim::Time{100}, [] {});
  q.schedule(tls::sim::Time{50}, [] {});
  EXPECT_EQ(q.peek_time(), tls::sim::Time{50});
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  EventId id = q.schedule(tls::sim::Time{10}, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  EventId id = q.schedule(tls::sim::Time{10}, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  EventQueue q;
  EventId id = q.schedule(tls::sim::Time{10}, [] {});
  q.pop().second();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
  EXPECT_FALSE(q.cancel(EventId{999}));
}

TEST(EventQueue, CancelledEventSkippedByPop) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(tls::sim::Time{10}, [&] { fired.push_back(1); });
  EventId mid = q.schedule(tls::sim::Time{20}, [&] { fired.push_back(2); });
  q.schedule(tls::sim::Time{30}, [&] { fired.push_back(3); });
  q.cancel(mid);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  EventId a = q.schedule(tls::sim::Time{1}, [] {});
  q.schedule(tls::sim::Time{2}, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  bool fired = false;
  q.schedule(tls::sim::Time{1}, [&] { fired = true; });
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, ManyInterleavedScheduleCancelPop) {
  EventQueue q;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.schedule(tls::sim::Time{i % 17}, [&] { ++fired; }));
  }
  // Cancel every third event.
  int cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    if (q.cancel(ids[i])) ++cancelled;
  }
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired + cancelled, 100);
  EXPECT_EQ(cancelled, 34);
}

TEST(EventQueue, CancelAfterClearReturnsFalse) {
  EventQueue q;
  EventId stale = q.schedule(tls::sim::Time{10}, [] {});
  q.clear();
  EXPECT_FALSE(q.cancel(stale));
  // A handle issued before clear() must never touch an event scheduled
  // after it, even though the post-clear event is the queue's only entry.
  bool fired = false;
  q.schedule(tls::sim::Time{5}, [&] { fired = true; });
  EXPECT_FALSE(q.cancel(stale));
  EXPECT_EQ(q.size(), 1u);
  q.pop().second();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, DoubleCancelAcrossClearStaysFalse) {
  EventQueue q;
  EventId id = q.schedule(tls::sim::Time{10}, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  q.clear();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, StatsCountActivity) {
  EventQueue q;
  EventId a = q.schedule(tls::sim::Time{1}, [] {});
  q.schedule(tls::sim::Time{2}, [] {});
  q.schedule(tls::sim::Time{3}, [] {});
  q.cancel(a);
  q.pop();
  q.pop();
  EXPECT_EQ(q.stats().scheduled, 3u);
  EXPECT_EQ(q.stats().cancelled, 1u);
  EXPECT_EQ(q.stats().popped, 2u);
}

TEST(EventQueue, EqualTimesFireInSchedulingOrderAcrossBucketBoundaries) {
  // Property: simultaneous events fire in scheduling order no matter where
  // their time lands in the calendar geometry. The times here are aligned
  // to multiples of 4096 (the default bucket width) out to ~2^26, so they
  // sit exactly on bucket edges, far beyond the initial window (forcing
  // overflow-tier migration and window re-anchoring), and collide freely.
  EventQueue q;
  Lcg rng{12345};
  std::vector<std::pair<Time, int>> fired;
  int k = 0;
  for (int rep = 0; rep < 500; ++rep) {
    Time t = static_cast<Time>(rng.next() % 16384) * 4096;
    // Two coincident events per draw; repeated draws of the same t pile
    // more on, all of which must preserve global scheduling order.
    for (int dup = 0; dup < 2; ++dup) {
      int token = k++;
      q.schedule(t, [&fired, t, token] { fired.emplace_back(t, token); });
    }
  }
  while (!q.empty()) q.pop().second();
  ASSERT_EQ(fired.size(), static_cast<std::size_t>(k));
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1].first, fired[i].first);
    if (fired[i - 1].first == fired[i].first) {
      EXPECT_LT(fired[i - 1].second, fired[i].second)
          << "equal-time events fired out of scheduling order at t="
          << fired[i].first;
    }
  }
}

TEST(EventQueue, MatchesReferenceModelUnderRandomMix) {
  // Differential test against a trivially-correct reference: an ordered
  // set of (time, token) pairs. Every schedule/cancel/pop result — cancel
  // return values, pop order, peek_time, size — must agree exactly.
  EventQueue q;
  Lcg rng{99};
  struct Ref {
    Time at;
    bool live;
    EventId id;
  };
  std::vector<Ref> all;
  std::set<std::pair<Time, std::size_t>> pending;
  std::size_t fired_token = 0;
  bool fired_flag = false;
  Time horizon = tls::sim::Time{0};
  for (int op = 0; op < 20000; ++op) {
    std::uint64_t r = rng.next() % 100;
    if (r < 50 || pending.empty()) {
      Time t = horizon + static_cast<Time>(rng.next() % (1u << 20));
      std::size_t token = all.size();
      EventId id = q.schedule(t, [&fired_flag, &fired_token, token] {
        fired_flag = true;
        fired_token = token;
      });
      all.push_back({t, true, id});
      pending.insert({t, token});
    } else if (r < 75) {
      std::size_t token = rng.next() % all.size();
      bool expect = all[token].live;
      EXPECT_EQ(q.cancel(all[token].id), expect);
      if (expect) {
        all[token].live = false;
        pending.erase({all[token].at, token});
      }
    } else {
      auto it = pending.begin();
      ASSERT_EQ(q.peek_time(), it->first);
      fired_flag = false;
      auto [t, cb] = q.pop();
      cb();
      ASSERT_TRUE(fired_flag);
      ASSERT_EQ(t, it->first);
      ASSERT_EQ(fired_token, it->second);
      all[it->second].live = false;
      horizon = t;
      pending.erase(it);
    }
    ASSERT_EQ(q.size(), pending.size());
  }
}

TEST(EventQueue, DenseBurstsAcrossSparseGapsMatchReference) {
  // Regression for the rebucket width cap: a burst of >64 near-coincident
  // events inside one bucket forces the calendar to narrow its geometry
  // mid-window; inserts arriving after the narrowing must still interleave
  // correctly with entries bucketed under the old width. Alternates dense
  // bursts, far-future singletons, and pops, checking every pop against an
  // ordered-set reference.
  EventQueue q;
  Lcg rng{4242};
  std::set<std::pair<Time, std::size_t>> pending;
  std::size_t token = 0;
  std::size_t fired_token = 0;
  Time horizon = tls::sim::Time{0};
  auto sched = [&](Time t) {
    std::size_t tok = token++;
    q.schedule(t, [&fired_token, tok] { fired_token = tok; });
    pending.insert({t, tok});
  };
  for (int round = 0; round < 200; ++round) {
    std::uint64_t roll = rng.next() % 3;
    if (roll == 0) {
      // Dense burst: 100 events within a 512-tick span — far denser than
      // any sane bucket width once the queue has seen sparse gaps.
      Time base = horizon + static_cast<Time>(rng.next() % 1024);
      for (int i = 0; i < 100; ++i) {
        sched(base + static_cast<Time>(rng.next() % 512));
      }
    } else if (roll == 1) {
      // Sparse far-future singleton, widening the observed spacing.
      sched(horizon + static_cast<Time>(1 << 22) +
            static_cast<Time>(rng.next() % (1u << 24)));
    } else {
      for (int i = 0; i < 40 && !pending.empty(); ++i) {
        auto it = pending.begin();
        auto [t, cb] = q.pop();
        cb();
        ASSERT_EQ(t, it->first);
        ASSERT_EQ(fired_token, it->second);
        horizon = t;
        pending.erase(it);
      }
    }
    ASSERT_EQ(q.size(), pending.size());
  }
  while (!pending.empty()) {
    auto it = pending.begin();
    auto [t, cb] = q.pop();
    cb();
    ASSERT_EQ(t, it->first);
    ASSERT_EQ(fired_token, it->second);
    pending.erase(it);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, MillionScheduleCancelSubQuadratic) {
  // The seed binary-heap queue cancelled with an O(n) heap scan; a million
  // schedule+cancel pairs against a large pending set would take hours.
  // The liveness-table queue must finish well inside the CI budget, with
  // every handle answering exactly once.
  auto wall_start = std::chrono::steady_clock::now();
  EventQueue q;
  constexpr std::size_t kN = 1'000'000;
  Lcg rng{7};
  std::vector<EventId> ids;
  ids.reserve(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    ids.push_back(q.schedule(static_cast<Time>(rng.next() % (1u << 30)),
                             [] {}));
  }
  // First cancel of every even handle must succeed, the second must not.
  std::size_t bad = 0;
  for (std::size_t i = 0; i < kN; i += 2) {
    if (!q.cancel(ids[i])) ++bad;
  }
  for (std::size_t i = 0; i < kN; i += 2) {
    if (q.cancel(ids[i])) ++bad;
  }
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(q.size(), kN / 2);
  // Survivors pop in nondecreasing time order and their handles die.
  Time last = kTimeMin;
  std::size_t popped = 0;
  while (!q.empty()) {
    auto [t, cb] = q.pop();
    if (t < last) ++bad;
    last = t;
    ++popped;
  }
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(popped, kN / 2);
  for (std::size_t i = 1; i < kN; i += 200'001) {
    EXPECT_FALSE(q.cancel(ids[i]));
  }
  EXPECT_EQ(q.stats().scheduled, kN);
  EXPECT_EQ(q.stats().cancelled, kN / 2);
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
  // Generous even for sanitizer builds on one core; the quadratic seed
  // behavior would overshoot this by orders of magnitude.
  EXPECT_LT(secs, 120.0);
}

}  // namespace
}  // namespace tls::sim
