#include "simcore/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tls::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(30, [&] { fired.push_back(3); });
  q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(20, [&] { fired.push_back(2); });
  while (!q.empty()) {
    auto [t, cb] = q.pop();
    cb();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInSchedulingOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(42, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, PeekTimeReturnsEarliest) {
  EventQueue q;
  q.schedule(100, [] {});
  q.schedule(50, [] {});
  EXPECT_EQ(q.peek_time(), 50);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  EventId id = q.schedule(10, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  EventId id = q.schedule(10, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  EventQueue q;
  EventId id = q.schedule(10, [] {});
  q.pop().second();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
  EXPECT_FALSE(q.cancel(EventId{999}));
}

TEST(EventQueue, CancelledEventSkippedByPop) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(10, [&] { fired.push_back(1); });
  EventId mid = q.schedule(20, [&] { fired.push_back(2); });
  q.schedule(30, [&] { fired.push_back(3); });
  q.cancel(mid);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  EventId a = q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  bool fired = false;
  q.schedule(1, [&] { fired = true; });
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, ManyInterleavedScheduleCancelPop) {
  EventQueue q;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.schedule(i % 17, [&] { ++fired; }));
  }
  // Cancel every third event.
  int cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    if (q.cancel(ids[i])) ++cancelled;
  }
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired + cancelled, 100);
  EXPECT_EQ(cancelled, 34);
}

}  // namespace
}  // namespace tls::sim
