#include "simcore/log.hpp"

#include <gtest/gtest.h>

#include "simcore/simulator.hpp"

namespace tls::sim {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = Log::level();
    Log::set_sink([this](LogLevel level, const std::string& msg) {
      captured_.emplace_back(level, msg);
    });
  }
  void TearDown() override {
    Log::set_sink(nullptr);
    Log::set_level(saved_level_);
    Log::attach_clock(nullptr);
  }

  std::vector<std::pair<LogLevel, std::string>> captured_;
  LogLevel saved_level_ = LogLevel::kWarn;
};

TEST_F(LogTest, LevelFiltering) {
  Log::set_level(LogLevel::kWarn);
  TLS_DEBUG << "hidden";
  TLS_WARN << "visible";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "visible");
  EXPECT_EQ(captured_[0].first, LogLevel::kWarn);
}

TEST_F(LogTest, StreamFormatting) {
  Log::set_level(LogLevel::kInfo);
  TLS_INFO << "job " << 7 << " at " << 2.5 << "s";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "job 7 at 2.5s");
}

TEST_F(LogTest, DisabledLevelSkipsEvaluation) {
  Log::set_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  TLS_DEBUG << expensive();
  EXPECT_EQ(evaluations, 0);
  TLS_ERROR << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, OffSilencesEverything) {
  Log::set_level(LogLevel::kOff);
  TLS_ERROR << "nope";
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LogTest, EnabledPredicate) {
  Log::set_level(LogLevel::kInfo);
  EXPECT_TRUE(Log::enabled(LogLevel::kInfo));
  EXPECT_TRUE(Log::enabled(LogLevel::kError));
  EXPECT_FALSE(Log::enabled(LogLevel::kDebug));
}

TEST_F(LogTest, LevelNames) {
  EXPECT_STREQ(Log::level_name(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(Log::level_name(LogLevel::kError), "ERROR");
}

TEST_F(LogTest, DefaultSinkUsesSimClock) {
  // Exercise the default sink path (stderr) with a clock attached; this
  // just must not crash and must respect the level.
  Log::set_sink(nullptr);
  Simulator s;
  Log::attach_clock(&s);
  Log::set_level(LogLevel::kOff);
  TLS_WARN << "silent";
  Log::attach_clock(nullptr);
}

}  // namespace
}  // namespace tls::sim
