#include "simcore/time.hpp"

#include <gtest/gtest.h>

#include "simcore/log.hpp"

namespace tls::sim {
namespace {

TEST(Time, FromSecondsRoundTrips) {
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_EQ(from_seconds(0.001), kMillisecond);
  EXPECT_DOUBLE_EQ(to_seconds(from_seconds(3.25)), 3.25);
}

TEST(Time, FromMillisMicros) {
  EXPECT_EQ(from_millis(1.0), kMillisecond);
  EXPECT_EQ(from_micros(1.0), kMicrosecond);
  EXPECT_EQ(from_millis(1.5), tls::sim::Time{1'500'000});
}

TEST(Time, RoundsToNearestNanosecond) {
  EXPECT_EQ(from_seconds(1e-9 * 0.6), tls::sim::Time{1});
  EXPECT_EQ(from_seconds(1e-9 * 0.4), tls::sim::Time{0});
}

TEST(Time, NegativeDurationsPreserved) {
  EXPECT_EQ(from_seconds(-1.0), -kSecond);
  EXPECT_DOUBLE_EQ(to_seconds(-kMillisecond), -0.001);
}

TEST(Time, FormatPicksUnit) {
  EXPECT_EQ(format_time(2 * kSecond), "2s");
  EXPECT_EQ(format_time(37 * kMillisecond + kMillisecond / 2), "37.5ms");
  EXPECT_EQ(format_time(tls::sim::Time{800}), "800ns");
  EXPECT_EQ(format_time(5 * kMicrosecond), "5us");
}

TEST(Time, ToMillis) { EXPECT_DOUBLE_EQ(to_millis(tls::sim::Time{1'500'000}), 1.5); }

}  // namespace
}  // namespace tls::sim
