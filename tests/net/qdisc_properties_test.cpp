// Parameterized property tests over the qdisc schedulers: conservation,
// weighted-share accuracy, rate accuracy, and priority dominance across
// the parameter space (TEST_P sweeps).
#include <gtest/gtest.h>

#include <map>

#include "net/htb_qdisc.hpp"
#include "net/prio_qdisc.hpp"
#include "net/tbf_qdisc.hpp"
#include "net/wdrr.hpp"
#include "simcore/rng.hpp"

namespace tls::net {
namespace {

Chunk make_chunk(FlowId flow, BandId band, Bytes size, double weight = 1.0) {
  Chunk c;
  c.flow = flow;
  c.band = band;
  c.size = size;
  c.weight = weight;
  return c;
}

// ---------------------------------------------------------------------------
// WDRR: long-run service share tracks the weight ratio.

class WdrrWeightRatio : public ::testing::TestWithParam<double> {};

TEST_P(WdrrWeightRatio, ServiceShareTracksWeights) {
  double ratio = GetParam();  // weight of flow 1 relative to flow 2
  WdrrBand band(tls::net::Bytes{100});
  const int chunks_per_flow = 600;
  for (int i = 0; i < chunks_per_flow; ++i) {
    band.enqueue(make_chunk(1, tls::net::BandId{0}, tls::net::Bytes{100}, ratio));
    band.enqueue(make_chunk(2, tls::net::BandId{0}, tls::net::Bytes{100}, 1.0));
  }
  // Serve while both flows stay backlogged; stop early so neither drains.
  std::map<FlowId, int> served;
  int to_serve = chunks_per_flow;  // less than the combined backlog
  for (int i = 0; i < to_serve; ++i) {
    auto c = band.dequeue();
    ASSERT_TRUE(c);
    ++served[c->flow];
  }
  double measured =
      static_cast<double>(served[1]) / std::max(1, served[2]);
  EXPECT_NEAR(measured, ratio, ratio * 0.15);
}

INSTANTIATE_TEST_SUITE_P(Ratios, WdrrWeightRatio,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 4.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "r" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

// ---------------------------------------------------------------------------
// Conservation: whatever goes in comes out, exactly once, for every
// discipline.

class QdiscConservation : public ::testing::TestWithParam<int> {};

TEST_P(QdiscConservation, EveryChunkServedExactlyOnce) {
  int which = GetParam();
  std::unique_ptr<Qdisc> q;
  switch (which) {
    case 0: q = std::make_unique<PrioQdisc>(4); break;
    case 1: {
      auto htb = std::make_unique<HtbQdisc>(gbps(10), 0x3F);
      HtbClassConfig dflt;
      dflt.minor = 0x3F;
      dflt.rate = gbps(2);
      dflt.ceil = gbps(10);
      dflt.prio = 7;
      htb->add_class(dflt);
      for (std::uint32_t m = 1; m <= 4; ++m) {
        HtbClassConfig cfg;
        cfg.minor = m;
        cfg.rate = mbps(1);
        cfg.ceil = gbps(10);
        cfg.prio = static_cast<int>(m - 1);
        htb->add_class(cfg);
      }
      q = std::move(htb);
      break;
    }
    default: q = std::make_unique<TbfQdisc>(TbfConfig{gbps(1), 1 * kMiB}); break;
  }

  std::map<std::pair<FlowId, std::uint32_t>, int> seen;
  Bytes total_in = tls::net::Bytes{0};
  int n = 0;
  for (FlowId f = 1; f <= 12; ++f) {
    for (std::uint32_t i = 0; i < 10; ++i) {
      Chunk c = make_chunk(f, static_cast<BandId>(f % 6), 64 * kKiB);
      c.index = i;
      q->enqueue(c);
      total_in += c.size;
      ++n;
    }
  }
  Bytes total_out = tls::net::Bytes{0};
  sim::Time now = tls::sim::Time{0};
  int served = 0;
  while (q->backlog_chunks() > 0 && served <= n) {
    DequeueResult r = q->dequeue(now);
    if (r.kind == DequeueResult::Kind::kChunk) {
      ++served;
      total_out += r.chunk.size;
      ++seen[{r.chunk.flow, r.chunk.index}];
      now += transmit_time(r.chunk.size, gbps(10));
    } else if (r.kind == DequeueResult::Kind::kWaitUntil) {
      now = r.retry_at;
    } else {
      break;
    }
  }
  EXPECT_EQ(served, n);
  EXPECT_EQ(total_out, total_in);
  for (const auto& [key, count] : seen) {
    (void)key;
    EXPECT_EQ(count, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Disciplines, QdiscConservation,
                         ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           switch (info.param) {
                             case 0: return std::string("prio");
                             case 1: return std::string("htb");
                             default: return std::string("tbf");
                           }
                         });

// ---------------------------------------------------------------------------
// tbf: achieved rate tracks the configured rate across the sweep.

class TbfRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(TbfRateSweep, AchievedRateWithinTolerance) {
  Rate rate = mbps(GetParam());
  TbfConfig cfg;
  cfg.rate = rate;
  cfg.burst = 128 * kKiB;
  TbfQdisc q(cfg);
  const int chunks = 40;
  for (int i = 0; i < chunks; ++i) q.enqueue(make_chunk(1, tls::net::BandId{0}, 128 * kKiB));
  sim::Time now = tls::sim::Time{0};
  Bytes sent = tls::net::Bytes{0};
  while (q.backlog_chunks() > 0) {
    DequeueResult r = q.dequeue(now);
    if (r.kind == DequeueResult::Kind::kChunk) {
      sent += r.chunk.size;
      now += transmit_time(r.chunk.size, gbps(10));
    } else {
      now = r.retry_at;
    }
  }
  double achieved = to_double(sent) / sim::to_seconds(now);
  EXPECT_LT(achieved, to_double(rate) * 1.2);
  EXPECT_GT(achieved, to_double(rate) * 0.7);
}

INSTANTIATE_TEST_SUITE_P(Rates, TbfRateSweep,
                         ::testing::Values(8.0, 80.0, 800.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "mbit" + std::to_string(static_cast<int>(
                                               info.param));
                         });

// ---------------------------------------------------------------------------
// Priority dominance: in prio and work-conserving htb, a backlogged higher
// band is always served before a lower one.

TEST(PriorityDominance, PrioNeverServesLowerWhileHigherBacklogged) {
  PrioQdisc q(6);
  sim::Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    q.enqueue(make_chunk(static_cast<FlowId>(rng.uniform_u64(20)),
                         static_cast<BandId>(rng.uniform_u64(6)), tls::net::Bytes{1000}));
  }
  // Track remaining backlog per band; every dequeue must come from the
  // highest nonempty band.
  while (q.backlog_chunks() > 0) {
    int highest = -1;
    for (int b = 0; b < 6; ++b) {
      if (q.band(b).backlog_chunks() > 0) {
        highest = b;
        break;
      }
    }
    DequeueResult r = q.dequeue(tls::sim::Time{0});
    ASSERT_EQ(r.kind, DequeueResult::Kind::kChunk);
    EXPECT_EQ(r.chunk.band, tls::net::BandId{highest});
  }
}

}  // namespace
}  // namespace tls::net
