#include "net/htb_qdisc.hpp"

#include <gtest/gtest.h>

#include "simcore/time.hpp"

namespace tls::net {
namespace {

Chunk make_chunk(FlowId flow, BandId band, Bytes size = 100 * kKiB) {
  Chunk c;
  c.flow = flow;
  c.band = band;
  c.size = size;
  return c;
}

HtbClassConfig leaf(std::uint32_t minor, Rate rate, Rate ceil, int prio) {
  HtbClassConfig c;
  c.minor = minor;
  c.rate = rate;
  c.ceil = ceil;
  c.prio = prio;
  return c;
}

TEST(Htb, AddClassValidation) {
  HtbQdisc q(gbps(10));
  EXPECT_TRUE(q.add_class(leaf(1, mbps(1), gbps(10), 0)));
  EXPECT_FALSE(q.add_class(leaf(1, mbps(1), gbps(10), 0)));  // duplicate
  EXPECT_FALSE(q.add_class(leaf(0, mbps(1), gbps(10), 0)));  // minor 0
  EXPECT_FALSE(q.add_class(leaf(2, Rate{0.0}, gbps(10), 0)));        // rate 0
  EXPECT_FALSE(q.add_class(leaf(2, mbps(10), mbps(1), 0)));  // ceil < rate
  EXPECT_EQ(q.class_count(), 1u);
}

TEST(Htb, ChangeClassKeepsBacklog) {
  HtbQdisc q(gbps(10));
  ASSERT_TRUE(q.add_class(leaf(1, mbps(1), gbps(10), 3)));
  q.enqueue(make_chunk(1, tls::net::BandId{1}));
  HtbClassConfig updated = leaf(1, mbps(2), gbps(10), 0);
  EXPECT_TRUE(q.change_class(updated));
  EXPECT_EQ(q.class_backlog(1), 100 * kKiB);
  EXPECT_EQ(q.class_config(1)->prio, 0);
  EXPECT_FALSE(q.change_class(leaf(9, mbps(1), gbps(10), 0)));  // absent
}

TEST(Htb, DeleteClassRequiresEmpty) {
  HtbQdisc q(gbps(10));
  ASSERT_TRUE(q.add_class(leaf(1, mbps(1), gbps(10), 0)));
  q.enqueue(make_chunk(1, tls::net::BandId{1}));
  EXPECT_FALSE(q.delete_class(1));
  q.dequeue(tls::sim::Time{0});
  EXPECT_TRUE(q.delete_class(1));
  EXPECT_FALSE(q.delete_class(1));
}

TEST(Htb, UnclassifiedGoesToDefaultClass) {
  HtbQdisc q(gbps(10), /*default_minor=*/9);
  ASSERT_TRUE(q.add_class(leaf(9, gbps(10), gbps(10), 7)));
  q.enqueue(make_chunk(1, /*band=*/tls::net::BandId{42}));  // no class 42 -> default 9
  EXPECT_EQ(q.class_backlog(9), 100 * kKiB);
}

TEST(Htb, UnclassifiedWithoutDefaultUsesDirectQueue) {
  HtbQdisc q(gbps(10));
  q.enqueue(make_chunk(1, tls::net::BandId{42}));
  EXPECT_EQ(q.backlog_chunks(), 1u);
  // Direct queue is unshaped: dequeue succeeds immediately.
  EXPECT_EQ(q.dequeue(tls::sim::Time{0}).kind, DequeueResult::Kind::kChunk);
}

TEST(Htb, PriorityOrderAmongBorrowingClasses) {
  HtbQdisc q(gbps(10));
  ASSERT_TRUE(q.add_class(leaf(1, mbps(1), gbps(10), 1)));
  ASSERT_TRUE(q.add_class(leaf(2, mbps(1), gbps(10), 0)));
  // Both classes start with full burst buckets (green); after the first
  // chunk each goes negative and must borrow: prio 0 wins.
  for (int i = 0; i < 8; ++i) {
    q.enqueue(make_chunk(1, tls::net::BandId{1}));
    q.enqueue(make_chunk(2, tls::net::BandId{2}));
  }
  int served2_first10 = 0;
  sim::Time now = tls::sim::Time{0};
  for (int served = 0; served < 10;) {
    DequeueResult r = q.dequeue(now);
    if (r.kind == DequeueResult::Kind::kChunk) {
      if (r.chunk.flow == 2) ++served2_first10;
      ++served;
      now += transmit_time(r.chunk.size, gbps(10));
    } else {
      ASSERT_EQ(r.kind, DequeueResult::Kind::kWaitUntil);
      now = r.retry_at;
    }
  }
  // The prio-0 class should capture the large majority of early service.
  EXPECT_GE(served2_first10, 7);
}

TEST(Htb, RateLimitEnforcedWithoutBorrowing) {
  // ceil == rate: the class may never exceed its assured rate.
  HtbQdisc q(gbps(10));
  Rate r = mbps(8);  // 1 MB/s
  HtbClassConfig cfg = leaf(1, r, r, 0);
  cfg.burst = 100 * kKiB;
  cfg.cburst = 100 * kKiB;
  ASSERT_TRUE(q.add_class(cfg));
  const int chunks = 30;
  for (int i = 0; i < chunks; ++i) q.enqueue(make_chunk(1, tls::net::BandId{1}, 100 * kKiB));
  sim::Time now = tls::sim::Time{0};
  Bytes sent = tls::net::Bytes{0};
  while (q.backlog_chunks() > 0) {
    DequeueResult res = q.dequeue(now);
    if (res.kind == DequeueResult::Kind::kChunk) {
      sent += res.chunk.size;
      now += transmit_time(res.chunk.size, gbps(10));
    } else {
      ASSERT_EQ(res.kind, DequeueResult::Kind::kWaitUntil);
      ASSERT_GT(res.retry_at, now);
      now = res.retry_at;
    }
  }
  double seconds = sim::to_seconds(now);
  double achieved = to_double(sent) / seconds;
  // Within 25% of the configured rate (token burst lets the start run hot).
  EXPECT_LT(achieved, to_double(r) * 1.25);
  EXPECT_GT(achieved, to_double(r) * 0.6);
}

TEST(Htb, WorkConservingViaBorrowing) {
  // rate tiny, ceil = link: class must still push at link speed.
  HtbQdisc q(gbps(10));
  ASSERT_TRUE(q.add_class(leaf(1, mbps(1), gbps(10), 0)));
  for (int i = 0; i < 50; ++i) q.enqueue(make_chunk(1, tls::net::BandId{1}, 128 * kKiB));
  sim::Time now = tls::sim::Time{0};
  int direct_serves = 0;
  while (q.backlog_chunks() > 0) {
    DequeueResult r = q.dequeue(now);
    if (r.kind == DequeueResult::Kind::kChunk) {
      ++direct_serves;
      now += transmit_time(r.chunk.size, gbps(10));
    } else {
      now = r.retry_at;
    }
  }
  double seconds = sim::to_seconds(now);
  double achieved = 50.0 * to_double(128 * kKiB) / seconds;
  EXPECT_GT(achieved, to_double(gbps(10)) * 0.8);  // ~line rate despite 1mbit assured
  EXPECT_EQ(direct_serves, 50);
}

TEST(Htb, RedClassesReportRetryTime) {
  HtbQdisc q(gbps(10));
  Rate r = mbps(8);
  HtbClassConfig cfg = leaf(1, r, r, 0);
  ASSERT_TRUE(q.add_class(cfg));
  // Exhaust the bucket.
  for (int i = 0; i < 10; ++i) q.enqueue(make_chunk(1, tls::net::BandId{1}, 128 * kKiB));
  sim::Time now = tls::sim::Time{0};
  while (true) {
    DequeueResult res = q.dequeue(now);
    if (res.kind == DequeueResult::Kind::kWaitUntil) {
      EXPECT_GT(res.retry_at, now);
      break;
    }
    ASSERT_EQ(res.kind, DequeueResult::Kind::kChunk);
  }
}

TEST(Htb, DrainCollectsEverything) {
  HtbQdisc q(gbps(10), 9);
  ASSERT_TRUE(q.add_class(leaf(1, mbps(1), gbps(10), 0)));
  ASSERT_TRUE(q.add_class(leaf(9, mbps(1), gbps(10), 7)));
  q.enqueue(make_chunk(1, tls::net::BandId{1}));
  q.enqueue(make_chunk(2, tls::net::BandId{42}));  // default class
  q.enqueue(make_chunk(3, tls::net::BandId{99}));  // default class
  std::vector<Chunk> out;
  q.drain(out);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(q.backlog_chunks(), 0u);
  EXPECT_EQ(q.backlog_bytes(), tls::net::Bytes{0});
}

TEST(Htb, EmptyDequeueIsIdle) {
  HtbQdisc q(gbps(10));
  q.add_class(leaf(1, mbps(1), gbps(10), 0));
  EXPECT_EQ(q.dequeue(tls::sim::Time{0}).kind, DequeueResult::Kind::kIdle);
}

TEST(Htb, ClassConfigRoundTrips) {
  HtbQdisc q(gbps(10));
  HtbClassConfig cfg = leaf(5, mbps(3), gbps(2), 4);
  cfg.quantum = 64 * kKiB;
  ASSERT_TRUE(q.add_class(cfg));
  auto got = q.class_config(5);
  ASSERT_TRUE(got);
  EXPECT_DOUBLE_EQ(to_double(got->rate), to_double(mbps(3)));
  EXPECT_DOUBLE_EQ(to_double(got->ceil), to_double(gbps(2)));
  EXPECT_EQ(got->prio, 4);
  EXPECT_EQ(got->quantum, 64 * kKiB);
  EXPECT_FALSE(q.class_config(6));
}

}  // namespace
}  // namespace tls::net
