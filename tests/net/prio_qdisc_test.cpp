#include "net/prio_qdisc.hpp"

#include <gtest/gtest.h>

namespace tls::net {
namespace {

Chunk make_chunk(FlowId flow, BandId band, Bytes size = Bytes{100}) {
  Chunk c;
  c.flow = flow;
  c.band = band;
  c.size = size;
  return c;
}

TEST(Prio, HigherBandDrainsFirst) {
  PrioQdisc q(3);
  q.enqueue(make_chunk(1, tls::net::BandId{2}));
  q.enqueue(make_chunk(2, tls::net::BandId{0}));
  q.enqueue(make_chunk(3, tls::net::BandId{1}));
  EXPECT_EQ(q.dequeue(tls::sim::Time{0}).chunk.flow, 2u);
  EXPECT_EQ(q.dequeue(tls::sim::Time{0}).chunk.flow, 3u);
  EXPECT_EQ(q.dequeue(tls::sim::Time{0}).chunk.flow, 1u);
}

TEST(Prio, StrictPriorityStarvesLowerWhileHigherBacklogged) {
  PrioQdisc q(2);
  for (int i = 0; i < 10; ++i) q.enqueue(make_chunk(1, tls::net::BandId{0}));
  q.enqueue(make_chunk(2, tls::net::BandId{1}));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.dequeue(tls::sim::Time{0}).chunk.flow, 1u);
  EXPECT_EQ(q.dequeue(tls::sim::Time{0}).chunk.flow, 2u);
}

TEST(Prio, OutOfRangeBandClampsToLast) {
  PrioQdisc q(3);
  q.enqueue(make_chunk(1, tls::net::BandId{99}));   // clamps to band 2
  q.enqueue(make_chunk(2, tls::net::BandId{-5}));   // clamps to band 0
  EXPECT_EQ(q.dequeue(tls::sim::Time{0}).chunk.flow, 2u);
  EXPECT_EQ(q.dequeue(tls::sim::Time{0}).chunk.flow, 1u);
}

TEST(Prio, WithinBandFairAmongFlows) {
  PrioQdisc q(2, Bytes{100});
  for (int i = 0; i < 20; ++i) {
    q.enqueue(make_chunk(1, tls::net::BandId{0}, tls::net::Bytes{100}));
    q.enqueue(make_chunk(2, tls::net::BandId{0}, tls::net::Bytes{100}));
  }
  int f1 = 0, f2 = 0;
  for (int i = 0; i < 20; ++i) {
    FlowId f = q.dequeue(tls::sim::Time{0}).chunk.flow;
    (f == 1 ? f1 : f2)++;
  }
  EXPECT_EQ(f1, 10);
  EXPECT_EQ(f2, 10);
}

TEST(Prio, BandCountValidated) {
  EXPECT_EQ(PrioQdisc(1).bands(), 1);
  EXPECT_EQ(PrioQdisc(16).bands(), 16);
#ifndef NDEBUG
  EXPECT_DEATH(PrioQdisc(0), "");
  EXPECT_DEATH(PrioQdisc(17), "");
#endif
}

TEST(Prio, BacklogSumsAcrossBands) {
  PrioQdisc q(4);
  q.enqueue(make_chunk(1, tls::net::BandId{0}, tls::net::Bytes{10}));
  q.enqueue(make_chunk(2, tls::net::BandId{3}, tls::net::Bytes{20}));
  EXPECT_EQ(q.backlog_bytes(), tls::net::Bytes{30});
  EXPECT_EQ(q.backlog_chunks(), 2u);
}

TEST(Prio, DrainEmitsHighPriorityFirst) {
  PrioQdisc q(3);
  q.enqueue(make_chunk(1, tls::net::BandId{2}));
  q.enqueue(make_chunk(2, tls::net::BandId{0}));
  std::vector<Chunk> out;
  q.drain(out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].flow, 2u);
  EXPECT_EQ(out[1].flow, 1u);
  EXPECT_TRUE(q.empty());
}

TEST(Prio, SingleBandDegeneratesToFairShare) {
  PrioQdisc q(1);
  q.enqueue(make_chunk(1, tls::net::BandId{0}));
  q.enqueue(make_chunk(2, tls::net::BandId{5}));  // clamped into the only band
  EXPECT_EQ(q.backlog_chunks(), 2u);
  EXPECT_EQ(q.dequeue(tls::sim::Time{0}).kind, DequeueResult::Kind::kChunk);
}

TEST(Prio, BandInspection) {
  PrioQdisc q(3);
  q.enqueue(make_chunk(1, tls::net::BandId{1}));
  EXPECT_EQ(q.band(1).backlog_chunks(), 1u);
  EXPECT_EQ(q.band(0).backlog_chunks(), 0u);
}

}  // namespace
}  // namespace tls::net
