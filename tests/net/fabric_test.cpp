#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tls::net {
namespace {

FabricConfig ideal(int hosts) {
  FabricConfig c;
  c.num_hosts = hosts;
  c.tcp_weight_sigma = 0;     // deterministic
  c.protocol_overhead = 1.0;  // no framing inflation
  c.switch_latency = tls::sim::Time{0};
  return c;
}

TEST(Fabric, SingleFlowTakesSerializationTime) {
  sim::Simulator s(1);
  Fabric fab(s, ideal(2));
  sim::Time done = tls::sim::Time{-1};
  FlowSpec f;
  f.src = tls::net::HostId{0};
  f.dst = tls::net::HostId{1};
  f.bytes = tls::net::Bytes{1250000};  // 1 ms at 10 Gbps... actually 1.25 MB = 1 ms
  fab.start_flow(f, [&](const FlowRecord& r) { done = r.end; });
  s.run();
  ASSERT_GE(done, tls::sim::Time{0});
  // Egress + ingress are pipelined; total ≈ serialization + one chunk.
  double expect_s = seconds_for(1250000.0, gbps(10));
  EXPECT_NEAR(sim::to_seconds(done), expect_s, expect_s * 0.2);
}

TEST(Fabric, ZeroByteFlowCompletesAsync) {
  sim::Simulator s(1);
  Fabric fab(s, ideal(2));
  bool done = false;
  FlowSpec f;
  f.src = tls::net::HostId{0};
  f.dst = tls::net::HostId{1};
  f.bytes = tls::net::Bytes{0};
  fab.start_flow(f, [&](const FlowRecord&) { done = true; });
  EXPECT_FALSE(done);  // never synchronous
  s.run();
  EXPECT_TRUE(done);
}

TEST(Fabric, RejectsBadEndpoints) {
  sim::Simulator s(1);
  Fabric fab(s, ideal(2));
  FlowSpec f;
  f.src = tls::net::HostId{0};
  f.dst = tls::net::HostId{5};
  f.bytes = tls::net::Bytes{1};
  EXPECT_THROW(fab.start_flow(f, [](const FlowRecord&) {}), std::invalid_argument);
  f.dst = tls::net::HostId{-1};
  EXPECT_THROW(fab.start_flow(f, [](const FlowRecord&) {}), std::invalid_argument);
  f.dst = tls::net::HostId{1};
  f.bytes = tls::net::Bytes{-5};
  EXPECT_THROW(fab.start_flow(f, [](const FlowRecord&) {}), std::invalid_argument);
}

TEST(Fabric, RejectsBadConfig) {
  sim::Simulator s(1);
  FabricConfig c = ideal(0);
  EXPECT_THROW(Fabric(s, c), std::invalid_argument);
  c = ideal(2);
  c.chunk_size = tls::net::Bytes{0};
  EXPECT_THROW(Fabric(s, c), std::invalid_argument);
  c = ideal(2);
  c.flow_window = 0;
  EXPECT_THROW(Fabric(s, c), std::invalid_argument);
}

TEST(Fabric, FairSharingBetweenEqualFlows) {
  sim::Simulator s(1);
  Fabric fab(s, ideal(3));
  std::vector<sim::Time> ends(2, tls::sim::Time{0});
  for (int i = 0; i < 2; ++i) {
    FlowSpec f;
    f.src = tls::net::HostId{0};
    f.dst = tls::net::HostId{1 + i};
    f.bytes = tls::net::Bytes{12'500'000};  // 10 ms each alone
    fab.start_flow(f, [&ends, i](const FlowRecord& r) { ends[static_cast<size_t>(i)] = r.end; });
  }
  s.run();
  // Sharing one egress: both finish around 20 ms, together.
  EXPECT_NEAR(sim::to_seconds(ends[0]), 0.020, 0.004);
  EXPECT_NEAR(sim::to_seconds(ends[1]), 0.020, 0.004);
}

TEST(Fabric, IngressFanInContention) {
  sim::Simulator s(1);
  Fabric fab(s, ideal(3));
  std::vector<sim::Time> ends(2, tls::sim::Time{0});
  // Two sources send to one destination: ingress is the bottleneck.
  for (int i = 0; i < 2; ++i) {
    FlowSpec f;
    f.src = tls::net::HostId{i};
    f.dst = tls::net::HostId{2};
    f.bytes = tls::net::Bytes{12'500'000};
    fab.start_flow(f, [&ends, i](const FlowRecord& r) { ends[static_cast<size_t>(i)] = r.end; });
  }
  s.run();
  EXPECT_GT(sim::to_seconds(std::max(ends[0], ends[1])), 0.018);
}

TEST(Fabric, CompletedFlowCountAndActiveFlows) {
  sim::Simulator s(1);
  Fabric fab(s, ideal(2));
  FlowSpec f;
  f.src = tls::net::HostId{0};
  f.dst = tls::net::HostId{1};
  f.bytes = tls::net::Bytes{1000};
  fab.start_flow(f, [](const FlowRecord&) {});
  EXPECT_EQ(fab.active_flows(), 1u);
  s.run();
  EXPECT_EQ(fab.active_flows(), 0u);
  EXPECT_EQ(fab.completed_flows(), 1u);
}

TEST(Fabric, ProtocolOverheadInflatesWireBytes) {
  sim::Simulator s(1);
  FabricConfig c = ideal(2);
  c.protocol_overhead = 2.0;
  Fabric fab(s, c);
  FlowSpec f;
  f.src = tls::net::HostId{0};
  f.dst = tls::net::HostId{1};
  f.bytes = tls::net::Bytes{1'250'000};
  sim::Time done = tls::sim::Time{0};
  fab.start_flow(f, [&](const FlowRecord& r) { done = r.end; });
  s.run();
  // Twice the wire bytes => about twice the ideal duration.
  EXPECT_NEAR(sim::to_seconds(done), 0.002, 0.0005);
  EXPECT_GE(fab.egress(tls::net::HostId{0}).counters().bytes, tls::net::Bytes{2'500'000});
}

TEST(Fabric, SwitchLatencyDelaysDelivery) {
  sim::Simulator s(1);
  FabricConfig c = ideal(2);
  c.switch_latency = sim::from_millis(5);
  Fabric fab(s, c);
  FlowSpec f;
  f.src = tls::net::HostId{0};
  f.dst = tls::net::HostId{1};
  f.bytes = tls::net::Bytes{100};
  sim::Time done = tls::sim::Time{0};
  fab.start_flow(f, [&](const FlowRecord& r) { done = r.end; });
  s.run();
  EXPECT_GE(done, sim::from_millis(5));
}

TEST(Fabric, WindowScalesWithWeightDeterministically) {
  // With sigma 0 every flow's window is the base; completions of equal
  // flows through a shared port stay tightly grouped.
  sim::Simulator s(1);
  Fabric fab(s, ideal(5));
  std::vector<sim::Time> ends;
  for (int i = 0; i < 4; ++i) {
    FlowSpec f;
    f.src = tls::net::HostId{0};
    f.dst = tls::net::HostId{1 + i};
    f.bytes = tls::net::Bytes{1'250'000};
    fab.start_flow(f, [&](const FlowRecord& r) { ends.push_back(r.end); });
  }
  s.run();
  ASSERT_EQ(ends.size(), 4u);
  sim::Time spread = *std::max_element(ends.begin(), ends.end()) -
                     *std::min_element(ends.begin(), ends.end());
  EXPECT_LT(sim::to_seconds(spread), 0.001);
}

TEST(Fabric, WeightNoiseSpreadsCompletions) {
  sim::Simulator s(1);
  FabricConfig c = ideal(21);
  c.tcp_weight_sigma = 0.3;
  Fabric fab(s, c);
  std::vector<sim::Time> ends;
  for (int i = 0; i < 20; ++i) {
    FlowSpec f;
    f.src = tls::net::HostId{0};
    f.dst = tls::net::HostId{1 + i};
    f.bytes = tls::net::Bytes{1'868'776};
    fab.start_flow(f, [&](const FlowRecord& r) { ends.push_back(r.end); });
  }
  s.run();
  ASSERT_EQ(ends.size(), 20u);
  sim::Time spread = *std::max_element(ends.begin(), ends.end()) -
                     *std::min_element(ends.begin(), ends.end());
  // Under contention the noisy windows must create a visible spread.
  EXPECT_GT(sim::to_seconds(spread), 0.002);
}

TEST(Fabric, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Simulator s(77);
    FabricConfig c;
    c.num_hosts = 4;
    Fabric fab(s, c);
    sim::Time last = tls::sim::Time{0};
    for (int i = 0; i < 6; ++i) {
      FlowSpec f;
      f.src = tls::net::HostId{i % 2};
      f.dst = tls::net::HostId{2 + (i % 2)};
      f.bytes = tls::net::Bytes{500'000} + i * tls::net::Bytes{1000};
      fab.start_flow(f, [&](const FlowRecord& r) { last = std::max(last, r.end); });
    }
    s.run();
    return last;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Fabric, ByteConservationEgressEqualsIngress) {
  sim::Simulator s(5);
  FabricConfig c;
  c.num_hosts = 4;
  Fabric fab(s, c);
  for (int i = 0; i < 10; ++i) {
    FlowSpec f;
    f.src = tls::net::HostId{i % 4};
    f.dst = tls::net::HostId{(i + 1) % 4};
    f.bytes = tls::net::Bytes{100'000 * (i + 1)};
    fab.start_flow(f, [](const FlowRecord&) {});
  }
  s.run();
  Bytes tx = tls::net::Bytes{0}, rx = tls::net::Bytes{0};
  for (HostId h = tls::net::HostId{0}; h < tls::net::HostId{4}; ++h) {
    tx += fab.egress(h).counters().bytes;
    rx += fab.ingress(h).counters().bytes;
  }
  EXPECT_EQ(tx, rx);
  EXPECT_GT(tx, tls::net::Bytes{0});
}

}  // namespace
}  // namespace tls::net
