#include "net/pfifo_qdisc.hpp"

#include <gtest/gtest.h>

namespace tls::net {
namespace {

Chunk make_chunk(FlowId flow, Bytes size, std::uint32_t index = 0) {
  Chunk c;
  c.flow = flow;
  c.size = size;
  c.index = index;
  return c;
}

TEST(Pfifo, EmptyIsIdle) {
  PfifoQdisc q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.dequeue(tls::sim::Time{0}).kind, DequeueResult::Kind::kIdle);
}

TEST(Pfifo, StrictArrivalOrderAcrossFlows) {
  PfifoQdisc q;
  q.enqueue(make_chunk(1, tls::net::Bytes{10}));
  q.enqueue(make_chunk(2, tls::net::Bytes{10}));
  q.enqueue(make_chunk(1, tls::net::Bytes{10}, 1));
  EXPECT_EQ(q.dequeue(tls::sim::Time{0}).chunk.flow, 1u);
  EXPECT_EQ(q.dequeue(tls::sim::Time{0}).chunk.flow, 2u);
  EXPECT_EQ(q.dequeue(tls::sim::Time{0}).chunk.flow, 1u);
}

TEST(Pfifo, BacklogAccounting) {
  PfifoQdisc q;
  q.enqueue(make_chunk(1, tls::net::Bytes{100}));
  q.enqueue(make_chunk(2, tls::net::Bytes{200}));
  EXPECT_EQ(q.backlog_bytes(), tls::net::Bytes{300});
  EXPECT_EQ(q.backlog_chunks(), 2u);
  q.dequeue(tls::sim::Time{0});
  EXPECT_EQ(q.backlog_bytes(), tls::net::Bytes{200});
}

TEST(Pfifo, IgnoresBandField) {
  PfifoQdisc q;
  Chunk high = make_chunk(1, tls::net::Bytes{10});
  high.band = tls::net::BandId{0};
  Chunk low = make_chunk(2, tls::net::Bytes{10});
  low.band = tls::net::BandId{5};
  q.enqueue(low);
  q.enqueue(high);
  EXPECT_EQ(q.dequeue(tls::sim::Time{0}).chunk.flow, 2u);  // arrival order, not priority
}

TEST(Pfifo, DrainPreservesOrderAndEmpties) {
  PfifoQdisc q;
  for (std::uint32_t i = 0; i < 5; ++i) q.enqueue(make_chunk(1, tls::net::Bytes{10}, i));
  std::vector<Chunk> out;
  q.drain(out);
  ASSERT_EQ(out.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(out[i].index, i);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.backlog_bytes(), tls::net::Bytes{0});
}

TEST(Pfifo, KindName) { EXPECT_EQ(PfifoQdisc().kind(), "pfifo"); }

}  // namespace
}  // namespace tls::net
