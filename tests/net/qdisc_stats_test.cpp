// Service-counter (`tc -s`) tests across the three disciplines.
#include <gtest/gtest.h>

#include "net/htb_qdisc.hpp"
#include "net/pfifo_qdisc.hpp"
#include "net/prio_qdisc.hpp"

namespace tls::net {
namespace {

Chunk make_chunk(FlowId flow, BandId band, Bytes size) {
  Chunk c;
  c.flow = flow;
  c.band = band;
  c.size = size;
  return c;
}

TEST(QdiscStats, PfifoCountsSentBytes) {
  PfifoQdisc q;
  q.enqueue(make_chunk(1, tls::net::BandId{0}, tls::net::Bytes{100}));
  q.enqueue(make_chunk(2, tls::net::BandId{0}, tls::net::Bytes{250}));
  q.dequeue(tls::sim::Time{0});
  EXPECT_EQ(q.stats().bytes_sent, tls::net::Bytes{100});
  EXPECT_EQ(q.stats().chunks_sent, 1u);
  q.dequeue(tls::sim::Time{0});
  EXPECT_EQ(q.stats().bytes_sent, tls::net::Bytes{350});
  EXPECT_NE(q.stats_text().find("sent 350 bytes"), std::string::npos);
}

TEST(QdiscStats, PrioTracksPerBand) {
  PrioQdisc q(3);
  q.enqueue(make_chunk(1, tls::net::BandId{0}, tls::net::Bytes{100}));
  q.enqueue(make_chunk(2, tls::net::BandId{2}, tls::net::Bytes{200}));
  q.dequeue(tls::sim::Time{0});
  q.dequeue(tls::sim::Time{0});
  EXPECT_EQ(q.stats().bytes_sent, tls::net::Bytes{300});
  EXPECT_EQ(q.band_stats(0).bytes_sent, tls::net::Bytes{100});
  EXPECT_EQ(q.band_stats(1).bytes_sent, tls::net::Bytes{0});
  EXPECT_EQ(q.band_stats(2).bytes_sent, tls::net::Bytes{200});
  EXPECT_NE(q.stats_text().find("band 2"), std::string::npos);
}

TEST(QdiscStats, HtbDistinguishesGreenFromYellow) {
  HtbQdisc q(gbps(10));
  HtbClassConfig cfg;
  cfg.minor = 1;
  cfg.rate = mbps(8);  // 1 MB/s assured
  cfg.ceil = gbps(10);
  cfg.burst = 200 * kKiB;  // enough for exactly the first chunks
  cfg.cburst = 200 * kKiB;
  ASSERT_TRUE(q.add_class(cfg));
  for (int i = 0; i < 6; ++i) q.enqueue(make_chunk(1, tls::net::BandId{1}, 128 * kKiB));
  sim::Time now = tls::sim::Time{0};
  while (q.backlog_chunks() > 0) {
    DequeueResult r = q.dequeue(now);
    if (r.kind == DequeueResult::Kind::kChunk) {
      now += transmit_time(r.chunk.size, gbps(10));
    } else {
      now = r.retry_at;
    }
  }
  QdiscStats s = q.class_stats(1);
  EXPECT_EQ(s.chunks_sent, 6u);
  EXPECT_GE(s.green_sends, 1u);   // first sends ride the full bucket
  EXPECT_GE(s.yellow_sends, 1u);  // later sends borrow at the ceiling
  EXPECT_EQ(s.green_sends + s.yellow_sends, 6u);
  EXPECT_EQ(q.stats().green_sends, s.green_sends);
  EXPECT_NE(q.stats_text().find("green"), std::string::npos);
}

TEST(QdiscStats, HtbOverlimitsCounted) {
  HtbQdisc q(gbps(10));
  HtbClassConfig cfg;
  cfg.minor = 1;
  cfg.rate = mbps(8);
  cfg.ceil = mbps(8);  // hard cap: stalls are guaranteed
  ASSERT_TRUE(q.add_class(cfg));
  for (int i = 0; i < 4; ++i) q.enqueue(make_chunk(1, tls::net::BandId{1}, 128 * kKiB));
  sim::Time now = tls::sim::Time{0};
  while (q.backlog_chunks() > 0) {
    DequeueResult r = q.dequeue(now);
    now = r.kind == DequeueResult::Kind::kChunk
              ? now + transmit_time(r.chunk.size, gbps(10))
              : r.retry_at;
  }
  EXPECT_GT(q.stats().overlimits, 0u);
}

TEST(QdiscStats, UnknownClassStatsEmpty) {
  HtbQdisc q(gbps(10));
  QdiscStats s = q.class_stats(42);
  EXPECT_EQ(s.bytes_sent, tls::net::Bytes{0});
  EXPECT_EQ(s.chunks_sent, 0u);
}

}  // namespace
}  // namespace tls::net
