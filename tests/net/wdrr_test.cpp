#include "net/wdrr.hpp"

#include <gtest/gtest.h>

#include <map>

namespace tls::net {
namespace {

Chunk make_chunk(FlowId flow, Bytes size, double weight = 1.0,
                 std::uint32_t index = 0) {
  Chunk c;
  c.flow = flow;
  c.size = size;
  c.index = index;
  c.weight = weight;
  return c;
}

TEST(Wdrr, EmptyBandReturnsNothing) {
  WdrrBand band;
  EXPECT_TRUE(band.empty());
  EXPECT_FALSE(band.dequeue().has_value());
}

TEST(Wdrr, SingleFlowFifoOrder) {
  WdrrBand band;
  for (std::uint32_t i = 0; i < 5; ++i) band.enqueue(make_chunk(1, tls::net::Bytes{100}, 1.0, i));
  for (std::uint32_t i = 0; i < 5; ++i) {
    auto c = band.dequeue();
    ASSERT_TRUE(c);
    EXPECT_EQ(c->index, i);
  }
  EXPECT_TRUE(band.empty());
}

TEST(Wdrr, BacklogCountsBytesAndChunks) {
  WdrrBand band;
  band.enqueue(make_chunk(1, tls::net::Bytes{100}));
  band.enqueue(make_chunk(2, tls::net::Bytes{250}));
  EXPECT_EQ(band.backlog_bytes(), tls::net::Bytes{350});
  EXPECT_EQ(band.backlog_chunks(), 2u);
  band.dequeue();
  EXPECT_EQ(band.backlog_chunks(), 1u);
}

TEST(Wdrr, EqualWeightsShareEqually) {
  WdrrBand band(tls::net::Bytes{100});
  for (int i = 0; i < 50; ++i) {
    band.enqueue(make_chunk(1, tls::net::Bytes{100}));
    band.enqueue(make_chunk(2, tls::net::Bytes{100}));
  }
  std::map<FlowId, int> first20;
  for (int i = 0; i < 20; ++i) ++first20[band.dequeue()->flow];
  EXPECT_EQ(first20[1], 10);
  EXPECT_EQ(first20[2], 10);
}

TEST(Wdrr, WeightsBiasService) {
  WdrrBand band(tls::net::Bytes{100});
  for (int i = 0; i < 90; ++i) {
    band.enqueue(make_chunk(1, tls::net::Bytes{100}, 2.0));
    band.enqueue(make_chunk(2, tls::net::Bytes{100}, 1.0));
  }
  std::map<FlowId, int> first30;
  for (int i = 0; i < 30; ++i) ++first30[band.dequeue()->flow];
  // 2:1 weights -> ~2:1 service.
  EXPECT_NEAR(first30[1], 20, 2);
  EXPECT_NEAR(first30[2], 10, 2);
}

TEST(Wdrr, TinyWeightClampedNotStarved) {
  WdrrBand band(tls::net::Bytes{100});
  for (int i = 0; i < 50; ++i) {
    band.enqueue(make_chunk(1, tls::net::Bytes{100}, 1e-9));  // clamped to kMinWeight
    band.enqueue(make_chunk(2, tls::net::Bytes{100}, 1.0));
  }
  int served_flow1 = 0;
  for (int i = 0; i < 60; ++i) {
    if (band.dequeue()->flow == 1) ++served_flow1;
  }
  EXPECT_GT(served_flow1, 0);
}

TEST(Wdrr, ActiveFlowsTracksBackloggedFlows) {
  WdrrBand band;
  EXPECT_EQ(band.active_flows(), 0u);
  band.enqueue(make_chunk(1, tls::net::Bytes{100}));
  band.enqueue(make_chunk(2, tls::net::Bytes{100}));
  band.enqueue(make_chunk(1, tls::net::Bytes{100}));
  EXPECT_EQ(band.active_flows(), 2u);
  band.dequeue();
  band.dequeue();
  band.dequeue();
  EXPECT_EQ(band.active_flows(), 0u);
}

TEST(Wdrr, FlowReactivationAfterDrainWorks) {
  WdrrBand band;
  band.enqueue(make_chunk(7, tls::net::Bytes{100}));
  EXPECT_TRUE(band.dequeue());
  EXPECT_TRUE(band.empty());
  band.enqueue(make_chunk(7, tls::net::Bytes{100}, 0.5, 1));
  auto c = band.dequeue();
  ASSERT_TRUE(c);
  EXPECT_EQ(c->flow, 7u);
  EXPECT_EQ(c->index, 1u);
}

TEST(Wdrr, VariableChunkSizesServedCompletely) {
  WdrrBand band(128 * kKiB);
  Bytes total = tls::net::Bytes{0};
  for (int i = 0; i < 10; ++i) {
    Bytes size = tls::net::Bytes{1000 * (i + 1)};
    band.enqueue(make_chunk(static_cast<FlowId>(i % 3), size));
    total += size;
  }
  Bytes served = tls::net::Bytes{0};
  while (auto c = band.dequeue()) served += c->size;
  EXPECT_EQ(served, total);
}

TEST(Wdrr, ManyFlowsAllServed) {
  WdrrBand band;
  for (FlowId f = 1; f <= 100; ++f) band.enqueue(make_chunk(f, tls::net::Bytes{64}));
  std::map<FlowId, int> counts;
  while (auto c = band.dequeue()) ++counts[c->flow];
  EXPECT_EQ(counts.size(), 100u);
}

}  // namespace
}  // namespace tls::net
