// Fast-forward staging lane tests: batched dequeue through a fifo-stable
// qdisc must be byte-identical to poll-per-chunk service — same per-chunk
// completion times, same conservation, same ordering across a mid-flight
// qdisc swap — and must stay off entirely when a tracer needs per-chunk
// dequeue events.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/pfifo_qdisc.hpp"
#include "net/port.hpp"
#include "net/prio_qdisc.hpp"
#include "obs/trace.hpp"

namespace tls::net {
namespace {

Chunk make_chunk(FlowId flow, Bytes size, std::uint32_t index = 0) {
  Chunk c;
  c.flow = flow;
  c.size = size;
  c.index = index;
  return c;
}

TEST(FastForward, StagedDrainPreservesPerChunkCompletionTimes) {
  // 100 equal chunks at 1000 B/s: chunk i must complete exactly at
  // (i+1)*0.1s, as if each had been polled individually.
  sim::Simulator simulator(1);
  std::vector<std::pair<std::uint32_t, sim::Time>> done;
  EgressPort port(simulator, Rate{1000.0}, [&](const Chunk& c) {
    done.emplace_back(c.index, simulator.now());
  });
  for (std::uint32_t i = 0; i < 100; ++i) {
    port.submit(make_chunk(1, tls::net::Bytes{100}, i), FlowSpec{});
  }
  simulator.run();
  ASSERT_EQ(done.size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(done[i].first, i);
    EXPECT_EQ(done[i].second, sim::from_seconds(0.1) * (i + 1));
  }
  // The backlog was deep and untraced, so the staging lane must have
  // carried most of the drain.
  EXPECT_GT(port.ff_promotions(), 0u);
  EXPECT_EQ(port.counters().chunks, 100u);
  EXPECT_EQ(port.counters().bytes, tls::net::Bytes{100 * 100});
  EXPECT_EQ(port.staged_bytes(), tls::net::Bytes{0});
}

TEST(FastForward, QdiscSwapRequeuesStagedChunksAheadOfBacklog) {
  // Let the port stage part of a pfifo backlog, then replace the qdisc
  // mid-flight: staged chunks re-enter ahead of the drained backlog, so
  // arrival order stays strictly FIFO.
  sim::Simulator simulator(1);
  std::vector<std::uint32_t> order;
  EgressPort port(simulator, Rate{1000.0},
                  [&](const Chunk& c) { order.push_back(c.index); });
  for (std::uint32_t i = 0; i < 8; ++i) {
    port.submit(make_chunk(1, tls::net::Bytes{100}, i), FlowSpec{});
  }
  // Serve two chunks so a staging batch has been pulled, then swap.
  simulator.run(sim::from_seconds(0.25));
  EXPECT_GT(port.ff_promotions(), 0u);
  port.set_qdisc(std::make_unique<PrioQdisc>(3));
  EXPECT_EQ(port.staged_bytes(), tls::net::Bytes{0});
  simulator.run();
  ASSERT_EQ(order.size(), 8u);
  for (std::uint32_t i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(FastForward, DisabledWhenTracerAttached) {
  // A tracer needs chunk_dequeue events at their true poll instants, so
  // the port must never stage while one is installed.
  sim::Simulator simulator(1);
  obs::Tracer tracer;
  simulator.set_tracer(&tracer);
  int done = 0;
  EgressPort port(simulator, Rate{1000.0}, [&](const Chunk&) { ++done; });
  for (std::uint32_t i = 0; i < 20; ++i) {
    port.submit(make_chunk(1, tls::net::Bytes{100}, i), FlowSpec{});
  }
  simulator.run();
  EXPECT_EQ(done, 20);
  EXPECT_EQ(port.ff_promotions(), 0u);
  EXPECT_EQ(port.ff_polls(), 21u);  // 20 chunks + 1 idle poll
}

TEST(FastForward, DisabledForNonFifoStableQdiscs) {
  sim::Simulator simulator(1);
  int done = 0;
  EgressPort port(simulator, Rate{1000.0}, [&](const Chunk&) { ++done; });
  port.set_qdisc(std::make_unique<PrioQdisc>(3));
  for (std::uint32_t i = 0; i < 20; ++i) {
    port.submit(make_chunk(1, tls::net::Bytes{100}, i), FlowSpec{});
  }
  simulator.run();
  EXPECT_EQ(done, 20);
  EXPECT_EQ(port.ff_promotions(), 0u);
}

TEST(FastForward, PollsAndPromotionsAccountForEveryChunk) {
  sim::Simulator simulator(1);
  int done = 0;
  EgressPort port(simulator, Rate{1000.0}, [&](const Chunk&) { ++done; });
  for (std::uint32_t i = 0; i < 50; ++i) {
    port.submit(make_chunk(1, tls::net::Bytes{100}, i), FlowSpec{});
  }
  simulator.run();
  EXPECT_EQ(done, 50);
  // Every transmitted chunk came from either a promotion or a poll that
  // returned a chunk; polls additionally include the final idle probe.
  EXPECT_GE(port.ff_promotions() + port.ff_polls(), 50u);
  double hit = static_cast<double>(port.ff_promotions()) /
               static_cast<double>(port.ff_promotions() + port.ff_polls());
  EXPECT_GT(hit, 0.5) << "deep FIFO backlog should fast-forward mostly "
                         "through the staging lane";
}

}  // namespace
}  // namespace tls::net
