// pfifo_fast (Linux default priomap qdisc) and tbf (token bucket filter).
#include <gtest/gtest.h>

#include "net/pfifo_fast_qdisc.hpp"
#include "net/tbf_qdisc.hpp"

namespace tls::net {
namespace {

Chunk kinded_chunk(FlowId flow, FlowKind kind, Bytes size = Bytes{1000}) {
  Chunk c;
  c.flow = flow;
  c.kind = kind;
  c.size = size;
  return c;
}

TEST(PfifoFast, PriomapMatchesLinuxConvention) {
  EXPECT_EQ(PfifoFastQdisc::priomap(FlowKind::kControl), 0);
  EXPECT_EQ(PfifoFastQdisc::priomap(FlowKind::kModelUpdate), 1);
  EXPECT_EQ(PfifoFastQdisc::priomap(FlowKind::kGradientUpdate), 1);
  EXPECT_EQ(PfifoFastQdisc::priomap(FlowKind::kBulk), 2);
}

TEST(PfifoFast, ControlPreemptsBestEffortPreemptsBulk) {
  PfifoFastQdisc q;
  q.enqueue(kinded_chunk(1, FlowKind::kBulk));
  q.enqueue(kinded_chunk(2, FlowKind::kModelUpdate));
  q.enqueue(kinded_chunk(3, FlowKind::kControl));
  EXPECT_EQ(q.dequeue(tls::sim::Time{0}).chunk.flow, 3u);
  EXPECT_EQ(q.dequeue(tls::sim::Time{0}).chunk.flow, 2u);
  EXPECT_EQ(q.dequeue(tls::sim::Time{0}).chunk.flow, 1u);
}

TEST(PfifoFast, FifoWithinBand) {
  PfifoFastQdisc q;
  q.enqueue(kinded_chunk(1, FlowKind::kModelUpdate));
  q.enqueue(kinded_chunk(2, FlowKind::kGradientUpdate));
  EXPECT_EQ(q.dequeue(tls::sim::Time{0}).chunk.flow, 1u);
  EXPECT_EQ(q.dequeue(tls::sim::Time{0}).chunk.flow, 2u);
}

TEST(PfifoFast, BacklogAndDrain) {
  PfifoFastQdisc q;
  q.enqueue(kinded_chunk(1, FlowKind::kControl, tls::net::Bytes{100}));
  q.enqueue(kinded_chunk(2, FlowKind::kBulk, tls::net::Bytes{200}));
  EXPECT_EQ(q.backlog_bytes(), tls::net::Bytes{300});
  EXPECT_EQ(q.backlog_chunks(), 2u);
  EXPECT_EQ(q.band_backlog(0), tls::net::Bytes{100});
  EXPECT_EQ(q.band_backlog(2), tls::net::Bytes{200});
  std::vector<Chunk> out;
  q.drain(out);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].flow, 1u);  // priority order
  EXPECT_TRUE(q.empty());
}

TEST(PfifoFast, StatsAndText) {
  PfifoFastQdisc q;
  q.enqueue(kinded_chunk(1, FlowKind::kModelUpdate, tls::net::Bytes{500}));
  q.dequeue(tls::sim::Time{0});
  EXPECT_EQ(q.stats().bytes_sent, tls::net::Bytes{500});
  EXPECT_NE(q.stats_text().find("pfifo_fast"), std::string::npos);
  EXPECT_EQ(q.kind(), "pfifo_fast");
}

TEST(Tbf, ShapesToConfiguredRate) {
  TbfConfig cfg;
  cfg.rate = mbps(8);  // 1 MB/s
  cfg.burst = 100 * kKiB;
  TbfQdisc q(cfg);
  for (int i = 0; i < 20; ++i) q.enqueue(kinded_chunk(1, FlowKind::kBulk, 100 * kKiB));
  sim::Time now = tls::sim::Time{0};
  Bytes sent = tls::net::Bytes{0};
  while (q.backlog_chunks() > 0) {
    DequeueResult r = q.dequeue(now);
    if (r.kind == DequeueResult::Kind::kChunk) {
      sent += r.chunk.size;
      now += transmit_time(r.chunk.size, gbps(10));
    } else {
      ASSERT_EQ(r.kind, DequeueResult::Kind::kWaitUntil);
      ASSERT_GT(r.retry_at, now);
      now = r.retry_at;
    }
  }
  Rate achieved{to_double(sent) / sim::to_seconds(now)};
  EXPECT_LT(achieved, cfg.rate * 1.25);
  EXPECT_GT(achieved, cfg.rate * 0.6);
  EXPECT_GT(q.stats().overlimits, 0u);
}

TEST(Tbf, BurstAllowsInitialLineRate) {
  TbfConfig cfg;
  cfg.rate = mbps(1);
  cfg.burst = 1 * kMiB;
  TbfQdisc q(cfg);
  for (int i = 0; i < 8; ++i) q.enqueue(kinded_chunk(1, FlowKind::kBulk, 128 * kKiB));
  // The full burst fits in the bucket: all 8 chunks leave without waiting.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(q.dequeue(tls::sim::Time{0}).kind, DequeueResult::Kind::kChunk);
  }
}

TEST(Tbf, EmptyIsIdleAndValidates) {
  TbfQdisc q({mbps(1), 64 * kKiB});
  EXPECT_EQ(q.dequeue(tls::sim::Time{0}).kind, DequeueResult::Kind::kIdle);
  EXPECT_THROW(TbfQdisc({Rate{0.0}, 64 * kKiB}), std::invalid_argument);
  EXPECT_THROW(TbfQdisc({mbps(1), Bytes{0}}), std::invalid_argument);
}

TEST(Tbf, DrainKeepsOrder) {
  TbfQdisc q({mbps(1), 64 * kKiB});
  q.enqueue(kinded_chunk(1, FlowKind::kBulk));
  q.enqueue(kinded_chunk(2, FlowKind::kBulk));
  std::vector<Chunk> out;
  q.drain(out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].flow, 1u);
  EXPECT_EQ(q.backlog_bytes(), tls::net::Bytes{0});
}

}  // namespace
}  // namespace tls::net
