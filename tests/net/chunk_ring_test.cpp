// ChunkRing unit tests: FIFO fidelity across growth and wraparound, full
// field round-tripping through the SoA lanes, and stamp-lane survival.
#include "net/chunk_ring.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace tls::net {
namespace {

Chunk make_chunk(std::uint32_t index) {
  Chunk c;
  c.flow = 1000 + index;
  c.size = tls::net::Bytes{100} + static_cast<Bytes>(index);
  c.index = index;
  c.band = tls::net::BandId{static_cast<std::int32_t>(index % 5)};
  c.weight = 0.5 + 0.01 * index;
  c.dst = tls::net::HostId{static_cast<std::int32_t>(index % 7)};
  c.job = static_cast<std::int32_t>(index % 3);
  c.last = index % 2 == 0;
  c.kind = index % 2 == 0 ? FlowKind::kGradientUpdate : FlowKind::kControl;
  c.enqueued_at = 10 * static_cast<sim::Time>(index);
  return c;
}

void expect_same(const Chunk& a, const Chunk& b) {
  EXPECT_EQ(a.flow, b.flow);
  EXPECT_EQ(a.size, b.size);
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.band, b.band);
  EXPECT_EQ(a.weight, b.weight);
  EXPECT_EQ(a.dst, b.dst);
  EXPECT_EQ(a.job, b.job);
  EXPECT_EQ(a.last, b.last);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.enqueued_at, b.enqueued_at);
}

TEST(ChunkRing, RoundTripsEveryField) {
  ChunkRing ring;
  for (std::uint32_t i = 0; i < 3; ++i) ring.push_back(make_chunk(i));
  for (std::uint32_t i = 0; i < 3; ++i) {
    expect_same(ring.take_front(), make_chunk(i));
  }
  EXPECT_TRUE(ring.empty());
}

TEST(ChunkRing, FifoAcrossGrowthAndWraparound) {
  ChunkRing ring;
  // Interleave pushes and pops so head_ walks around the ring while the
  // ring grows through several capacities.
  std::uint32_t next_push = 0;
  std::uint32_t next_pop = 0;
  for (int round = 0; round < 40; ++round) {
    for (int k = 0; k < 7; ++k) ring.push_back(make_chunk(next_push++));
    for (int k = 0; k < 5; ++k) {
      ASSERT_FALSE(ring.empty());
      expect_same(ring.take_front(), make_chunk(next_pop++));
    }
  }
  EXPECT_EQ(ring.size(), static_cast<std::size_t>(next_push - next_pop));
  while (!ring.empty()) expect_same(ring.take_front(), make_chunk(next_pop++));
  EXPECT_EQ(next_pop, next_push);
}

TEST(ChunkRing, FrontPeeksReadSingleLanes) {
  ChunkRing ring;
  ring.push_back(make_chunk(4), /*stamp=*/tls::sim::Time{777});
  EXPECT_EQ(ring.front_size(), make_chunk(4).size);
  EXPECT_EQ(ring.front_stamp(), tls::sim::Time{777});
  EXPECT_EQ(ring.size(), 1u);  // peeks do not consume
}

TEST(ChunkRing, StampLaneSurvivesGrowth) {
  ChunkRing ring;
  // Fill beyond the initial capacity and beyond one doubling, with a pop
  // first so the copied range is offset from slot zero.
  ring.push_back(make_chunk(0), tls::sim::Time{0});
  ring.pop_front();
  for (std::uint32_t i = 1; i <= 100; ++i) {
    ring.push_back(make_chunk(i), static_cast<sim::Time>(1000 + i));
  }
  for (std::uint32_t i = 1; i <= 100; ++i) {
    EXPECT_EQ(ring.front_stamp(), static_cast<sim::Time>(1000 + i));
    expect_same(ring.take_front(), make_chunk(i));
  }
}

TEST(ChunkRing, AppendToPreservesServiceOrder) {
  ChunkRing ring;
  for (std::uint32_t i = 0; i < 10; ++i) ring.push_back(make_chunk(i));
  ring.pop_front();
  ring.pop_front();
  std::vector<Chunk> out;
  out.push_back(make_chunk(99));  // existing content must be kept
  ring.append_to(out);
  ASSERT_EQ(out.size(), 9u);
  expect_same(out[0], make_chunk(99));
  for (std::uint32_t i = 2; i < 10; ++i) {
    expect_same(out[i - 1], make_chunk(i));
  }
  EXPECT_EQ(ring.size(), 8u);  // append_to does not consume
}

TEST(ChunkRing, ClearThenReuse) {
  ChunkRing ring;
  for (std::uint32_t i = 0; i < 20; ++i) ring.push_back(make_chunk(i));
  ring.clear();
  EXPECT_TRUE(ring.empty());
  ring.push_back(make_chunk(7), tls::sim::Time{42});
  EXPECT_EQ(ring.front_stamp(), tls::sim::Time{42});
  expect_same(ring.take_front(), make_chunk(7));
}

TEST(ChunkRing, MoveTransfersArena) {
  ChunkRing a;
  for (std::uint32_t i = 0; i < 5; ++i) a.push_back(make_chunk(i));
  ChunkRing b = std::move(a);
  EXPECT_EQ(b.size(), 5u);
  ChunkRing c;
  c.push_back(make_chunk(9));
  c = std::move(b);
  EXPECT_EQ(c.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) expect_same(c.take_front(), make_chunk(i));
}

}  // namespace
}  // namespace tls::net
