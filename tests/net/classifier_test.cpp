#include "net/classifier.hpp"

#include <gtest/gtest.h>

#include <optional>

namespace tls::net {
namespace {

FilterRule rule(int pref, BandId band,
                std::optional<std::uint16_t> sport = std::nullopt,
                std::optional<std::uint16_t> dport = std::nullopt) {
  FilterRule r;
  r.pref = pref;
  r.target_band = band;
  r.src_port = sport;
  r.dst_port = dport;
  return r;
}

FlowSpec spec(std::uint16_t sport, std::uint16_t dport, std::int32_t job = -1,
              FlowKind kind = FlowKind::kBulk) {
  FlowSpec s;
  s.src_port = sport;
  s.dst_port = dport;
  s.job_id = job;
  s.kind = kind;
  return s;
}

TEST(Classifier, DefaultBandWhenNoRules) {
  Classifier c;
  EXPECT_EQ(c.classify(spec(1, 2)), tls::net::BandId{0});
  c.set_default_band(tls::net::BandId{7});
  EXPECT_EQ(c.classify(spec(1, 2)), tls::net::BandId{7});
}

TEST(Classifier, MatchesSrcPort) {
  Classifier c;
  c.upsert(rule(10, tls::net::BandId{3}, 5000));
  EXPECT_EQ(c.classify(spec(5000, 1)), tls::net::BandId{3});
  EXPECT_EQ(c.classify(spec(5001, 1)), tls::net::BandId{0});
}

TEST(Classifier, MatchesDstPort) {
  Classifier c;
  c.upsert(rule(10, tls::net::BandId{2}, std::nullopt, 8080));
  EXPECT_EQ(c.classify(spec(1, 8080)), tls::net::BandId{2});
  EXPECT_EQ(c.classify(spec(8080, 1)), tls::net::BandId{0});
}

TEST(Classifier, AndSemanticsAcrossFields) {
  Classifier c;
  FilterRule r;
  r.pref = 10;
  r.src_port = 5000;
  r.dst_port = 6000;
  r.target_band = tls::net::BandId{4};
  c.upsert(r);
  EXPECT_EQ(c.classify(spec(5000, 6000)), tls::net::BandId{4});
  EXPECT_EQ(c.classify(spec(5000, 6001)), tls::net::BandId{0});
  EXPECT_EQ(c.classify(spec(5001, 6000)), tls::net::BandId{0});
}

TEST(Classifier, FirstMatchWinsByPref) {
  Classifier c;
  c.upsert(rule(20, tls::net::BandId{2}, 5000));
  c.upsert(rule(10, tls::net::BandId{1}, 5000));
  EXPECT_EQ(c.classify(spec(5000, 1)), tls::net::BandId{1});
}

TEST(Classifier, UpsertReplacesSamePref) {
  Classifier c;
  c.upsert(rule(10, tls::net::BandId{1}, 5000));
  c.upsert(rule(10, tls::net::BandId{5}, 5000));
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.classify(spec(5000, 1)), tls::net::BandId{5});
}

TEST(Classifier, RemoveByPref) {
  Classifier c;
  c.upsert(rule(10, tls::net::BandId{1}, 5000));
  EXPECT_TRUE(c.remove(10));
  EXPECT_FALSE(c.remove(10));
  EXPECT_EQ(c.classify(spec(5000, 1)), tls::net::BandId{0});
}

TEST(Classifier, CatchAllRuleMatchesEverything) {
  Classifier c;
  c.upsert(rule(65000, tls::net::BandId{6}));
  EXPECT_EQ(c.classify(spec(1, 2)), tls::net::BandId{6});
  c.upsert(rule(10, tls::net::BandId{1}, 5000));
  EXPECT_EQ(c.classify(spec(5000, 9)), tls::net::BandId{1});
  EXPECT_EQ(c.classify(spec(4999, 9)), tls::net::BandId{6});
}

TEST(Classifier, MatchesJobIdAndKind) {
  Classifier c;
  FilterRule r;
  r.pref = 10;
  r.job_id = 7;
  r.kind = FlowKind::kModelUpdate;
  r.target_band = tls::net::BandId{2};
  c.upsert(r);
  EXPECT_EQ(c.classify(spec(1, 2, 7, FlowKind::kModelUpdate)), tls::net::BandId{2});
  EXPECT_EQ(c.classify(spec(1, 2, 7, FlowKind::kGradientUpdate)), tls::net::BandId{0});
  EXPECT_EQ(c.classify(spec(1, 2, 8, FlowKind::kModelUpdate)), tls::net::BandId{0});
}

TEST(Classifier, ClearRemovesRulesKeepsDefault) {
  Classifier c;
  c.set_default_band(tls::net::BandId{3});
  c.upsert(rule(10, tls::net::BandId{1}, 1));
  c.clear();
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.classify(spec(1, 1)), tls::net::BandId{3});
}

TEST(Classifier, RulesKeptSortedByPref) {
  Classifier c;
  c.upsert(rule(30, tls::net::BandId{3}));
  c.upsert(rule(10, tls::net::BandId{1}));
  c.upsert(rule(20, tls::net::BandId{2}));
  ASSERT_EQ(c.rules().size(), 3u);
  EXPECT_EQ(c.rules()[0].pref, 10);
  EXPECT_EQ(c.rules()[1].pref, 20);
  EXPECT_EQ(c.rules()[2].pref, 30);
}

TEST(FlowKindNames, AllDistinct) {
  EXPECT_STREQ(to_string(FlowKind::kModelUpdate), "model_update");
  EXPECT_STREQ(to_string(FlowKind::kGradientUpdate), "gradient_update");
  EXPECT_STREQ(to_string(FlowKind::kControl), "control");
  EXPECT_STREQ(to_string(FlowKind::kBulk), "bulk");
}

}  // namespace
}  // namespace tls::net
