#include "net/port.hpp"

#include <gtest/gtest.h>

#include "net/pfifo_qdisc.hpp"
#include "net/prio_qdisc.hpp"

namespace tls::net {
namespace {

Chunk make_chunk(FlowId flow, Bytes size, HostId dst = HostId{0}) {
  Chunk c;
  c.flow = flow;
  c.size = size;
  c.dst = dst;
  return c;
}

class PortTest : public ::testing::Test {
 protected:
  sim::Simulator simulator{1};
  std::vector<Chunk> transmitted;
};

TEST_F(PortTest, TransmitsAtLineRate) {
  EgressPort port(simulator, /*rate=*/Rate{1000.0},
                  [&](const Chunk& c) { transmitted.push_back(c); });
  port.submit(make_chunk(1, tls::net::Bytes{500}), FlowSpec{});
  simulator.run();
  ASSERT_EQ(transmitted.size(), 1u);
  // 500 bytes at 1000 B/s = 0.5 s.
  EXPECT_EQ(simulator.now(), sim::from_seconds(0.5));
  EXPECT_EQ(port.counters().bytes, tls::net::Bytes{500});
  EXPECT_EQ(port.counters().chunks, 1u);
}

TEST_F(PortTest, SerializesBackToBack) {
  EgressPort port(simulator, Rate{1000.0},
                  [&](const Chunk& c) { transmitted.push_back(c); });
  port.submit(make_chunk(1, tls::net::Bytes{100}), FlowSpec{});
  port.submit(make_chunk(2, tls::net::Bytes{100}), FlowSpec{});
  simulator.run();
  EXPECT_EQ(transmitted.size(), 2u);
  EXPECT_EQ(simulator.now(), sim::from_seconds(0.2));
}

TEST_F(PortTest, ClassifierStampsBand) {
  EgressPort port(simulator, Rate{1000.0},
                  [&](const Chunk& c) { transmitted.push_back(c); });
  port.set_qdisc(std::make_unique<PrioQdisc>(4));
  FilterRule rule;
  rule.pref = 1;
  rule.src_port = 7000;
  rule.target_band = tls::net::BandId{2};
  port.classifier().upsert(rule);
  FlowSpec spec;
  spec.src_port = 7000;
  port.submit(make_chunk(1, tls::net::Bytes{10}), spec);
  simulator.run();
  ASSERT_EQ(transmitted.size(), 1u);
  EXPECT_EQ(transmitted[0].band, tls::net::BandId{2});
}

TEST_F(PortTest, QdiscReplacementMigratesBacklog) {
  EgressPort port(simulator, Rate{1000.0},
                  [&](const Chunk& c) { transmitted.push_back(c); });
  // Queue three chunks; the first goes into service immediately, two stay
  // in the qdisc.
  for (int i = 0; i < 3; ++i) port.submit(make_chunk(1, tls::net::Bytes{100}), FlowSpec{});
  port.set_qdisc(std::make_unique<PrioQdisc>(3));
  simulator.run();
  EXPECT_EQ(transmitted.size(), 3u);
  EXPECT_EQ(port.counters().bytes, tls::net::Bytes{300});
}

TEST_F(PortTest, PeakBacklogTracked) {
  EgressPort port(simulator, Rate{1000.0}, [&](const Chunk&) {});
  for (int i = 0; i < 4; ++i) port.submit(make_chunk(1, tls::net::Bytes{100}), FlowSpec{});
  // First chunk went into service; three remain queued.
  EXPECT_GE(port.counters().peak_backlog_bytes, tls::net::Bytes{300});
  simulator.run();
}

TEST_F(PortTest, BusyFlagDuringService) {
  EgressPort port(simulator, Rate{1000.0}, [&](const Chunk&) {});
  EXPECT_FALSE(port.busy());
  port.submit(make_chunk(1, tls::net::Bytes{100}), FlowSpec{});
  EXPECT_TRUE(port.busy());
  simulator.run();
  EXPECT_FALSE(port.busy());
}

TEST_F(PortTest, IngressFifoDrain) {
  std::vector<std::pair<FlowId, sim::Time>> delivered;
  IngressPort port(simulator, Rate{1000.0}, [&](const Chunk& c) {
    delivered.emplace_back(c.flow, simulator.now());
  });
  port.arrive(make_chunk(1, tls::net::Bytes{100}));
  port.arrive(make_chunk(2, tls::net::Bytes{100}));
  simulator.run();
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0].first, 1u);
  EXPECT_EQ(delivered[0].second, sim::from_seconds(0.1));
  EXPECT_EQ(delivered[1].second, sim::from_seconds(0.2));
  EXPECT_EQ(port.counters().bytes, tls::net::Bytes{200});
}

TEST_F(PortTest, IngressBacklogBytes) {
  IngressPort port(simulator, Rate{1000.0}, [&](const Chunk&) {});
  port.arrive(make_chunk(1, tls::net::Bytes{100}));
  port.arrive(make_chunk(2, tls::net::Bytes{150}));
  // First chunk is in service, second queued.
  EXPECT_EQ(port.backlog_bytes(), tls::net::Bytes{150});
  simulator.run();
  EXPECT_EQ(port.backlog_bytes(), tls::net::Bytes{0});
}

TEST_F(PortTest, MinimumOneNanosecondTransmit) {
  EXPECT_EQ(transmit_time(tls::net::Bytes{0}, Rate{1e9}), tls::sim::Time{1});
  EXPECT_EQ(transmit_time(tls::net::Bytes{1}, gbps(10)), tls::sim::Time{1});
  EXPECT_EQ(transmit_time(tls::net::Bytes{1250}, gbps(10)), tls::sim::Time{1000});  // 1 us
}

}  // namespace
}  // namespace tls::net
