#include "metrics/stats.hpp"

#include <gtest/gtest.h>

namespace tls::metrics {
namespace {

TEST(Summarize, EmptyIsZeroed) {
  Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0);
  EXPECT_EQ(s.variance, 0);
}

TEST(Summarize, BasicMoments) {
  Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.variance, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Summarize, SingleSample) {
  Summary s = summarize({7.5});
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
  EXPECT_DOUBLE_EQ(s.median, 7.5);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 7.5);
}

TEST(Summarize, UnsortedInput) {
  Summary s = summarize({5, 1, 3, 2, 4});
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
}

TEST(Summarize, EvenCountMedianInterpolates) {
  Summary s = summarize({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(PercentileSorted, Endpoints) {
  std::vector<double> v{10, 20, 30};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0), 10);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 1), 30);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, -0.5), 10);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 2.0), 30);
  EXPECT_DOUBLE_EQ(percentile_sorted({}, 0.5), 0);
}

TEST(PercentileSorted, LinearInterpolation) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.5), 5.0);
}

TEST(Cdf, ValueAtQuantiles) {
  Cdf cdf({4, 1, 3, 2});
  EXPECT_DOUBLE_EQ(cdf.value_at(0), 1);
  EXPECT_DOUBLE_EQ(cdf.value_at(1), 4);
  EXPECT_DOUBLE_EQ(cdf.value_at(0.5), 2.5);
}

TEST(Cdf, FractionBelow) {
  Cdf cdf({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(cdf.fraction_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(2), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(10), 1.0);
  EXPECT_DOUBLE_EQ(Cdf{}.fraction_below(1), 0.0);
}

TEST(Cdf, IncrementalAddKeepsOrderCorrect) {
  Cdf cdf;
  cdf.add(3);
  EXPECT_DOUBLE_EQ(cdf.value_at(0.5), 3);
  cdf.add(1);
  cdf.add(2);
  EXPECT_DOUBLE_EQ(cdf.value_at(0.0), 1);
  cdf.add_all({0, 4});
  EXPECT_DOUBLE_EQ(cdf.value_at(0.0), 0);
  EXPECT_DOUBLE_EQ(cdf.value_at(1.0), 4);
  EXPECT_EQ(cdf.size(), 5u);
}

TEST(Cdf, MeanMatchesSummarize) {
  std::vector<double> v{1.5, 2.5, 3.5};
  EXPECT_DOUBLE_EQ(Cdf(v).mean(), summarize(v).mean);
  EXPECT_DOUBLE_EQ(Cdf{}.mean(), 0.0);
}

TEST(Cdf, CurveIsMonotone) {
  Cdf cdf({5, 3, 8, 1, 9, 2, 7});
  auto curve = cdf.curve(11);
  ASSERT_EQ(curve.size(), 11u);
  EXPECT_DOUBLE_EQ(curve.front().first, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().first, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
}

}  // namespace
}  // namespace tls::metrics
