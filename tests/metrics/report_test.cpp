#include "metrics/report.hpp"

#include <gtest/gtest.h>

namespace tls::metrics {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::string out = t.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Each line ends cleanly with \n.
  EXPECT_EQ(out.back(), '\n');
}

TEST(Table, RowWidthValidated) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
  EXPECT_EQ(t.rows(), 0u);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.csv(), "x,y\n1,2\n3,4\n");
}

TEST(Table, CsvQuotesSpecialCells) {
  // RFC 4180: commas, quotes, and newlines force quoting; embedded quotes
  // double. Plain cells stay unquoted.
  Table t({"label", "note"});
  t.add_row({"p3/tls-rr", "mean, of 5 runs"});
  t.add_row({"say \"hi\"", "line1\nline2"});
  EXPECT_EQ(t.csv(),
            "label,note\n"
            "p3/tls-rr,\"mean, of 5 runs\"\n"
            "\"say \"\"hi\"\"\",\"line1\nline2\"\n");
}

TEST(Table, CsvQuotesHeaderCells) {
  Table t({"a,b", "c"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.csv(), "\"a,b\",c\n1,2\n");
}

TEST(Table, StreamOperator) {
  Table t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.str());
}

TEST(Fmt, Digits) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Fmt, RatioAndPercent) {
  EXPECT_EQ(fmt_ratio(1.204), "1.20x");
  EXPECT_EQ(fmt_percent(0.27), "27.0%");
  EXPECT_EQ(fmt_percent(-0.155, 0), "-16%");
}

}  // namespace
}  // namespace tls::metrics
