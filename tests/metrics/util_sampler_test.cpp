#include "metrics/util_sampler.hpp"

#include <gtest/gtest.h>

namespace tls::metrics {
namespace {

TEST(BusyAccumulator, OverlapComputation) {
  BusyAccumulator busy(2);
  busy.add(0, sim::from_seconds(1), sim::from_seconds(3));
  // Window fully containing the interval.
  EXPECT_DOUBLE_EQ(
      busy.busy_seconds_in(0, 0, sim::from_seconds(10)), 2.0);
  // Window clipping the interval on both sides.
  EXPECT_DOUBLE_EQ(
      busy.busy_seconds_in(0, sim::from_seconds(2), sim::from_seconds(2.5)),
      0.5);
  // Disjoint window.
  EXPECT_DOUBLE_EQ(
      busy.busy_seconds_in(0, sim::from_seconds(5), sim::from_seconds(6)), 0.0);
  // Other host untouched.
  EXPECT_DOUBLE_EQ(busy.busy_seconds_in(1, 0, sim::from_seconds(10)), 0.0);
}

TEST(BusyAccumulator, MultipleIntervalsSum) {
  BusyAccumulator busy(1);
  busy.add(0, 0, sim::from_seconds(1));
  busy.add(0, sim::from_seconds(2), sim::from_seconds(3));
  // Overlapping intervals double-count: two tasks on two cores.
  busy.add(0, 0, sim::from_seconds(1));
  EXPECT_DOUBLE_EQ(busy.busy_seconds_in(0, 0, sim::from_seconds(10)), 3.0);
  EXPECT_EQ(busy.interval_count(0), 3u);
}

TEST(BusyAccumulator, CpuUtilizationNormalizesByCores) {
  BusyAccumulator busy(1);
  busy.add(0, 0, sim::from_seconds(6));
  // 6 busy core-seconds in a 10 s window on 12 cores = 5%.
  EXPECT_NEAR(busy.cpu_utilization(0, 0, sim::from_seconds(10), 12), 0.05,
              1e-9);
  // One core: 60%.
  EXPECT_NEAR(busy.cpu_utilization(0, 0, sim::from_seconds(10), 1), 0.6, 1e-9);
  // Empty window returns 0.
  EXPECT_EQ(busy.cpu_utilization(0, 5, 5, 4), 0.0);
}

TEST(NicSampler, MeasuresTransferUtilization) {
  sim::Simulator s(1);
  net::FabricConfig fc;
  fc.num_hosts = 2;
  fc.protocol_overhead = 1.0;
  fc.tcp_weight_sigma = 0;
  net::Fabric fab(s, fc);
  NicSampler sampler(s, fab, 100 * sim::kMillisecond);
  // Saturate host0 egress for ~1 s.
  net::FlowSpec f;
  f.src = 0;
  f.dst = 1;
  f.bytes = static_cast<net::Bytes>(net::gbps(10));  // 1 s at line rate
  fab.start_flow(f, [](const net::FlowRecord&) {});
  s.run(2 * sim::kSecond);
  double out = sampler.utilization(0, /*outbound=*/true,
                                   100 * sim::kMillisecond,
                                   900 * sim::kMillisecond);
  EXPECT_GT(out, 0.9);
  double in = sampler.utilization(1, /*outbound=*/false,
                                  100 * sim::kMillisecond,
                                  900 * sim::kMillisecond);
  EXPECT_GT(in, 0.85);
  // Idle direction reads ~0.
  EXPECT_LT(sampler.utilization(1, /*outbound=*/true, 100 * sim::kMillisecond,
                                900 * sim::kMillisecond),
            0.01);
}

TEST(NicSampler, SeriesGrowsWithTime) {
  sim::Simulator s(1);
  net::FabricConfig fc;
  fc.num_hosts = 1;
  net::Fabric fab(s, fc);
  NicSampler sampler(s, fab, sim::kSecond);
  s.run(5 * sim::kSecond + 1);
  // Baseline + 5 ticks.
  EXPECT_GE(sampler.series(0).size(), 6u);
}

TEST(NicSampler, UtilizationZeroWithoutCoverage) {
  sim::Simulator s(1);
  net::FabricConfig fc;
  fc.num_hosts = 1;
  net::Fabric fab(s, fc);
  NicSampler sampler(s, fab, sim::kSecond);
  // No time elapsed: window edges resolve to the same sample.
  EXPECT_EQ(sampler.utilization(0, true, 0, sim::kSecond), 0.0);
}

}  // namespace
}  // namespace tls::metrics
