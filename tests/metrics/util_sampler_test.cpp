#include "metrics/util_sampler.hpp"

#include <gtest/gtest.h>

namespace tls::metrics {
namespace {

TEST(BusyAccumulator, OverlapComputation) {
  BusyAccumulator busy(2);
  busy.add(tls::net::HostId{0}, sim::from_seconds(1), sim::from_seconds(3));
  // Window fully containing the interval.
  EXPECT_DOUBLE_EQ(
      busy.busy_seconds_in(tls::net::HostId{0}, tls::sim::Time{0}, sim::from_seconds(10)), 2.0);
  // Window clipping the interval on both sides.
  EXPECT_DOUBLE_EQ(
      busy.busy_seconds_in(tls::net::HostId{0}, sim::from_seconds(2), sim::from_seconds(2.5)),
      0.5);
  // Disjoint window.
  EXPECT_DOUBLE_EQ(
      busy.busy_seconds_in(tls::net::HostId{0}, sim::from_seconds(5), sim::from_seconds(6)), 0.0);
  // Other host untouched.
  EXPECT_DOUBLE_EQ(busy.busy_seconds_in(tls::net::HostId{1}, tls::sim::Time{0}, sim::from_seconds(10)), 0.0);
}

TEST(BusyAccumulator, MultipleIntervalsSum) {
  BusyAccumulator busy(1);
  busy.add(tls::net::HostId{0}, tls::sim::Time{0}, sim::from_seconds(1));
  busy.add(tls::net::HostId{0}, sim::from_seconds(2), sim::from_seconds(3));
  // Overlapping intervals double-count: two tasks on two cores.
  busy.add(tls::net::HostId{0}, tls::sim::Time{0}, sim::from_seconds(1));
  EXPECT_DOUBLE_EQ(busy.busy_seconds_in(tls::net::HostId{0}, tls::sim::Time{0}, sim::from_seconds(10)), 3.0);
  EXPECT_EQ(busy.interval_count(tls::net::HostId{0}), 3u);
}

TEST(BusyAccumulator, CpuUtilizationNormalizesByCores) {
  BusyAccumulator busy(1);
  busy.add(tls::net::HostId{0}, tls::sim::Time{0}, sim::from_seconds(6));
  // 6 busy core-seconds in a 10 s window on 12 cores = 5%.
  EXPECT_NEAR(busy.cpu_utilization(tls::net::HostId{0}, tls::sim::Time{0}, sim::from_seconds(10), 12), 0.05,
              1e-9);
  // One core: 60%.
  EXPECT_NEAR(busy.cpu_utilization(tls::net::HostId{0}, tls::sim::Time{0}, sim::from_seconds(10), 1), 0.6, 1e-9);
  // Empty window returns 0.
  EXPECT_EQ(busy.cpu_utilization(tls::net::HostId{0}, tls::sim::Time{5}, tls::sim::Time{5}, 4), 0.0);
}

TEST(NicSampler, MeasuresTransferUtilization) {
  sim::Simulator s(1);
  net::FabricConfig fc;
  fc.num_hosts = 2;
  fc.protocol_overhead = 1.0;
  fc.tcp_weight_sigma = 0;
  net::Fabric fab(s, fc);
  NicSampler sampler(s, fab, 100 * sim::kMillisecond);
  // Saturate host0 egress for ~1 s.
  net::FlowSpec f;
  f.src = tls::net::HostId{0};
  f.dst = tls::net::HostId{1};
  f.bytes = net::Bytes{static_cast<std::int64_t>(net::bytes_in(net::gbps(10), 1.0))};  // 1 s at line rate
  fab.start_flow(f, [](const net::FlowRecord&) {});
  s.run(2 * sim::kSecond);
  double out = sampler.utilization(tls::net::HostId{0}, /*outbound=*/true,
                                   100 * sim::kMillisecond,
                                   900 * sim::kMillisecond);
  EXPECT_GT(out, 0.9);
  double in = sampler.utilization(tls::net::HostId{1}, /*outbound=*/false,
                                  100 * sim::kMillisecond,
                                  900 * sim::kMillisecond);
  EXPECT_GT(in, 0.85);
  // Idle direction reads ~0.
  EXPECT_LT(sampler.utilization(tls::net::HostId{1}, /*outbound=*/true, 100 * sim::kMillisecond,
                                900 * sim::kMillisecond),
            0.01);
}

TEST(NicSampler, SeriesGrowsWithTime) {
  sim::Simulator s(1);
  net::FabricConfig fc;
  fc.num_hosts = 1;
  net::Fabric fab(s, fc);
  NicSampler sampler(s, fab, sim::kSecond);
  s.run(5 * sim::kSecond + tls::sim::Time{1});
  // Baseline + 5 ticks.
  EXPECT_GE(sampler.series(tls::net::HostId{0}).size(), 6u);
}

TEST(NicSampler, UtilizationZeroWithoutCoverage) {
  sim::Simulator s(1);
  net::FabricConfig fc;
  fc.num_hosts = 1;
  net::Fabric fab(s, fc);
  NicSampler sampler(s, fab, sim::kSecond);
  // No time elapsed: window edges resolve to the same sample.
  EXPECT_EQ(sampler.utilization(tls::net::HostId{0}, true, tls::sim::Time{0}, sim::kSecond), 0.0);
}

}  // namespace
}  // namespace tls::metrics
