#include <gtest/gtest.h>

#include "metrics/stats.hpp"

namespace tls::metrics {
namespace {

TEST(JainFairness, PerfectEqualityIsOne) {
  EXPECT_DOUBLE_EQ(jain_fairness({5, 5, 5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({1}), 1.0);
}

TEST(JainFairness, TotalStarvationApproaches1OverN) {
  // One user gets everything: index = 1/n.
  EXPECT_NEAR(jain_fairness({10, 0, 0, 0}), 0.25, 1e-12);
}

TEST(JainFairness, MonotoneInDisparity) {
  double fair = jain_fairness({4, 4, 4, 4});
  double skewed = jain_fairness({7, 4, 3, 2});
  double very_skewed = jain_fairness({13, 1, 1, 1});
  EXPECT_GT(fair, skewed);
  EXPECT_GT(skewed, very_skewed);
}

TEST(JainFairness, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 0.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0, 0}), 0.0);
}

TEST(JainFairness, ScaleInvariant) {
  std::vector<double> a{1, 2, 3};
  std::vector<double> b{10, 20, 30};
  EXPECT_DOUBLE_EQ(jain_fairness(a), jain_fairness(b));
}

}  // namespace
}  // namespace tls::metrics
