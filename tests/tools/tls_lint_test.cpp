// Unit tests for the determinism lint: every banned pattern is seeded into
// a synthetic source and must be caught; clean idioms must not be flagged;
// the allowlist must silence exactly what it names.
#include "tls_lint_core.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

namespace tls::lint {
namespace {

bool has_rule(const std::vector<Finding>& fs, const std::string& rule) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

int line_of(const std::vector<Finding>& fs, const std::string& rule) {
  for (const Finding& f : fs) {
    if (f.rule == rule) return f.line;
  }
  return -1;
}

TEST(TlsLint, CatchesWallClockReads) {
  std::string src =
      "#include <chrono>\n"
      "double now_s() {\n"
      "  auto t = std::chrono::steady_clock::now();\n"
      "  return std::chrono::duration<double>(t.time_since_epoch()).count();\n"
      "}\n";
  auto findings = lint_source("net/bad.cpp", src);
  ASSERT_TRUE(has_rule(findings, "wall-clock"));
  EXPECT_EQ(line_of(findings, "wall-clock"), 3);
}

TEST(TlsLint, CatchesBareTimeAndClockCalls) {
  auto f1 = lint_source("net/bad.cpp", "long t = time(nullptr);\n");
  EXPECT_TRUE(has_rule(f1, "wall-clock"));
  auto f2 = lint_source("net/bad.cpp", "long t = std::time(nullptr);\n");
  EXPECT_TRUE(has_rule(f2, "wall-clock"));
  auto f3 = lint_source("net/bad.cpp", "long c = clock();\n");
  EXPECT_TRUE(has_rule(f3, "wall-clock"));
}

TEST(TlsLint, DoesNotFlagSimTimeHelpers) {
  std::string src =
      "sim::Time t = transmit_time(bytes, rate);\n"
      "sim::Time u = q.peek_time();\n"
      "std::string s = format_time(t);\n"
      "sim::Time v = sim_.now();\n";
  auto findings = lint_source("net/good.cpp", src);
  EXPECT_FALSE(has_rule(findings, "wall-clock")) << format_findings(findings);
}

TEST(TlsLint, CatchesRawRngOutsideRngModule) {
  auto f1 = lint_source("net/bad.cpp", "int r = rand() % 6;\n");
  EXPECT_TRUE(has_rule(f1, "banned-rng"));
  auto f2 = lint_source("dl/bad.cpp", "std::random_device rd;\n");
  EXPECT_TRUE(has_rule(f2, "banned-rng"));
  auto f3 = lint_source("workload/bad.cpp", "std::mt19937 gen(42);\n");
  EXPECT_TRUE(has_rule(f3, "banned-rng"));
}

TEST(TlsLint, RngModuleIsExemptFromRngRule) {
  // The hand-rolled generator implementation is the one sanctioned place
  // for raw machinery.
  auto findings =
      lint_source("simcore/rng.cpp", "std::mt19937 reference_gen(1);\n");
  EXPECT_FALSE(has_rule(findings, "banned-rng"));
}

TEST(TlsLint, DoesNotFlagOperandLikeIdentifiers) {
  auto findings = lint_source(
      "net/good.cpp", "int operand(int x);\nint y = my_rand(3);\n");
  EXPECT_FALSE(has_rule(findings, "banned-rng")) << format_findings(findings);
}

TEST(TlsLint, FindsUnorderedDeclarations) {
  std::string src =
      "std::unordered_map<FlowId, FlowQueue> flows_;\n"
      "std::unordered_set<int> seen_;\n"
      "std::unordered_map<int, std::vector<std::pair<int, int>>> nested_;\n"
      "using Alias = std::unordered_map<int, int>;\n";
  auto names = unordered_decl_names(src);
  EXPECT_EQ(names, (std::vector<std::string>{"flows_", "nested_", "seen_"}));
}

TEST(TlsLint, CatchesUnorderedIterationInHotPaths) {
  std::string src =
      "std::unordered_map<int, int> flows_;\n"
      "void f() {\n"
      "  for (auto& [id, q] : flows_) { (void)id; (void)q; }\n"
      "}\n";
  auto findings = lint_source("net/bad.cpp", src);
  ASSERT_TRUE(has_rule(findings, "unordered-iteration"));
  EXPECT_EQ(line_of(findings, "unordered-iteration"), 3);
}

TEST(TlsLint, CatchesBeginIterationViaCompanionHeaderDecl) {
  // The member is declared in the header; the .cpp only iterates it.
  std::string src = "void f() { auto it = flows_.begin(); use(it); }\n";
  auto findings = lint_source("simcore/bad.cpp", src, {"flows_"});
  EXPECT_TRUE(has_rule(findings, "unordered-iteration"));
}

TEST(TlsLint, ObsDirIsHotPathForUnorderedIteration) {
  // Exporter iteration order feeds byte-identical trace/metrics files, so
  // src/obs gets the same scrutiny as the simulator hot paths.
  std::string src =
      "std::unordered_map<int, long> counters_;\n"
      "void dump() {\n"
      "  for (auto& [k, v] : counters_) { emit(k, v); }\n"
      "}\n";
  auto findings = lint_source("obs/bad.cpp", src);
  ASSERT_TRUE(has_rule(findings, "unordered-iteration"))
      << format_findings(findings);
  EXPECT_EQ(line_of(findings, "unordered-iteration"), 3);
  // Nested path form, and .begin() via a companion-header declaration.
  auto nested = lint_source("src/obs/bad.cpp", src);
  EXPECT_TRUE(has_rule(nested, "unordered-iteration"));
  auto begin = lint_source(
      "obs/bad.cpp", "void f() { auto it = counters_.begin(); use(it); }\n",
      {"counters_"});
  EXPECT_TRUE(has_rule(begin, "unordered-iteration"));
}

TEST(TlsLint, AllowsUnorderedIterationOutsideHotPaths) {
  std::string src =
      "std::unordered_map<int, int> index_;\n"
      "void f() {\n"
      "  for (auto& [k, v] : index_) { (void)k; (void)v; }\n"
      "}\n";
  auto findings = lint_source("metrics/report.cpp", src);
  EXPECT_FALSE(has_rule(findings, "unordered-iteration"));
}

TEST(TlsLint, AllowsKeyedLookupOnUnorderedContainers) {
  std::string src =
      "std::unordered_map<int, int> flows_;\n"
      "void f(int k) { auto it = flows_.find(k); flows_.erase(it); }\n";
  auto findings = lint_source("net/good.cpp", src);
  EXPECT_FALSE(has_rule(findings, "unordered-iteration"))
      << format_findings(findings);
}

TEST(TlsLint, CatchesFloatTimeComparison) {
  auto f1 = lint_source("net/bad.cpp",
                        "if (to_seconds(a) == to_seconds(b)) sync();\n");
  EXPECT_TRUE(has_rule(f1, "float-time-compare"));
  auto f2 = lint_source(
      "net/bad.cpp", "float t = static_cast<float>(sim_.now());\n");
  EXPECT_TRUE(has_rule(f2, "float-time-compare"));
}

TEST(TlsLint, AllowsOrderedFloatTimeMath) {
  auto findings = lint_source(
      "net/good.cpp",
      "double dt = to_seconds(now - last);\nif (dt <= 0) return;\n");
  EXPECT_FALSE(has_rule(findings, "float-time-compare"));
}

TEST(TlsLint, CatchesThreadingOutsideRuntime) {
  auto f1 = lint_source("net/bad.cpp", "std::thread t([] {});\n");
  EXPECT_TRUE(has_rule(f1, "threading-outside-runtime"));
  auto f2 = lint_source("simcore/bad.cpp", "std::mutex mu_;\n");
  EXPECT_TRUE(has_rule(f2, "threading-outside-runtime"));
  auto f3 = lint_source("tensorlights/bad.cpp",
                        "std::atomic<int> pending_{0};\n");
  EXPECT_TRUE(has_rule(f3, "threading-outside-runtime"));
  auto f4 = lint_source("net/bad.cpp", "#include <thread>\nint x;\n");
  ASSERT_TRUE(has_rule(f4, "threading-outside-runtime"));
  EXPECT_EQ(line_of(f4, "threading-outside-runtime"), 1);
}

TEST(TlsLint, RuntimeDirIsExemptFromThreadingRule) {
  std::string src =
      "#include <mutex>\n"
      "#include <thread>\n"
      "std::mutex mu_;\n"
      "std::vector<std::thread> workers_;\n";
  auto findings = lint_source("runtime/thread_pool.hpp", src);
  EXPECT_FALSE(has_rule(findings, "threading-outside-runtime"))
      << format_findings(findings);
}

TEST(TlsLint, DoesNotFlagThreadLikeIdentifiers) {
  // Unqualified words and non-std qualifications are not threading
  // primitives; neither are longer identifiers containing a banned stem.
  std::string src =
      "int thread = 3;\n"
      "tls::sim::FutureEvent future;\n"
      "int hardware_threads = my::thread::count();\n"
      "bool async = spec.async_mode;\n"
      "int std_mutex_count = 0;\n";
  auto findings = lint_source("net/good.cpp", src);
  EXPECT_FALSE(has_rule(findings, "threading-outside-runtime"))
      << format_findings(findings);
}

TEST(TlsLint, AllowlistSilencesThreadingRule) {
  Finding f{"metrics/sampler.cpp", 7, "threading-outside-runtime", "msg"};
  auto entries =
      parse_allowlist("metrics/sampler.cpp:threading-outside-runtime\n");
  EXPECT_TRUE(is_allowed(f, entries));
  Finding other{"metrics/sampler.cpp", 7, "wall-clock", "msg"};
  EXPECT_FALSE(is_allowed(other, entries));
}

TEST(TlsLint, CatchesMissingPragmaOnce) {
  auto findings = lint_source("net/bad.hpp", "struct X {};\n");
  ASSERT_TRUE(has_rule(findings, "missing-pragma-once"));
  EXPECT_EQ(line_of(findings, "missing-pragma-once"), 0);
  auto ok = lint_source("net/good.hpp", "#pragma once\nstruct X {};\n");
  EXPECT_FALSE(has_rule(ok, "missing-pragma-once"));
}

TEST(TlsLint, IgnoresBannedPatternsInCommentsAndStrings) {
  std::string src =
      "// never call rand() or read steady_clock here\n"
      "/* std::random_device is banned */\n"
      "const char* msg = \"time(nullptr) is not simulation time\";\n";
  auto findings = lint_source("net/good.cpp", src);
  EXPECT_TRUE(findings.empty()) << format_findings(findings);
}

TEST(TlsLint, AllowlistSilencesByPathAndRule) {
  Finding f{"net/legacy.cpp", 10, "wall-clock", "msg"};
  auto entries = parse_allowlist(
      "# comment\n"
      "net/legacy.cpp:wall-clock  # timing a real benchmark\n");
  EXPECT_TRUE(is_allowed(f, entries));
  Finding other{"net/legacy.cpp", 10, "banned-rng", "msg"};
  EXPECT_FALSE(is_allowed(other, entries));
  // Whole-file entry silences every rule.
  auto file_wide = parse_allowlist("net/legacy.cpp\n");
  EXPECT_TRUE(is_allowed(other, file_wide));
  // Suffix must align on a path-segment boundary.
  Finding subnet{"subnet/port.cpp", 1, "wall-clock", "msg"};
  auto seg = parse_allowlist("net/port.cpp\n");
  EXPECT_FALSE(is_allowed(subnet, seg));
}

// End-to-end: seed a violating file into a temp tree, run lint_tree, and
// watch the violation get caught — then allowlist it and watch it pass.
TEST(TlsLint, TreeScanCatchesSeededViolation) {
  namespace fs = std::filesystem;
  fs::path root = fs::path(testing::TempDir()) / "tls_lint_seeded";
  fs::remove_all(root);
  fs::create_directories(root / "net");
  {
    std::ofstream good(root / "net" / "good.hpp");
    good << "#pragma once\ninline int f() { return 1; }\n";
    std::ofstream hdr(root / "net" / "bad.hpp");
    hdr << "#pragma once\n#include <unordered_map>\n"
        << "struct S { std::unordered_map<int, int> flows_; void g(); };\n";
    std::ofstream bad(root / "net" / "bad.cpp");
    bad << "#include \"bad.hpp\"\n"
        << "void S::g() {\n"
        << "  int x = rand();\n"
        << "  for (auto& [k, v] : flows_) { x += k + v; }\n"
        << "}\n";
  }

  auto findings = lint_tree(root, {});
  EXPECT_TRUE(has_rule(findings, "banned-rng")) << format_findings(findings);
  EXPECT_TRUE(has_rule(findings, "unordered-iteration"))
      << format_findings(findings);
  // The companion-header declaration was picked up for the .cpp scan.
  EXPECT_EQ(line_of(findings, "unordered-iteration"), 4);
  // good.hpp contributed nothing.
  for (const Finding& f : findings) EXPECT_EQ(f.file, "net/bad.cpp");

  auto allow = parse_allowlist("net/bad.cpp:banned-rng\n");
  auto remaining = lint_tree(root, allow);
  EXPECT_FALSE(has_rule(remaining, "banned-rng"));
  EXPECT_TRUE(has_rule(remaining, "unordered-iteration"));

  fs::remove_all(root);
}

// The deterministic output contract of the lint itself: findings are sorted.
TEST(TlsLint, FindingsAreSorted) {
  namespace fs = std::filesystem;
  fs::path root = fs::path(testing::TempDir()) / "tls_lint_sorted";
  fs::remove_all(root);
  fs::create_directories(root / "net");
  {
    std::ofstream a(root / "net" / "a.cpp");
    a << "int x = rand();\nlong t = time(nullptr);\n";
    std::ofstream b(root / "net" / "b.cpp");
    b << "int y = srand(1), z = 0;\n";
  }
  auto findings = lint_tree(root, {});
  ASSERT_GE(findings.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      findings.begin(), findings.end(), [](const Finding& x, const Finding& y) {
        return std::tie(x.file, x.line, x.rule) <
               std::tie(y.file, y.line, y.rule);
      }));
  fs::remove_all(root);
}

}  // namespace
}  // namespace tls::lint
