// Unit tests for the determinism lint: every banned pattern is seeded into
// a synthetic source and must be caught; clean idioms must not be flagged;
// the allowlist must silence exactly what it names.
#include "tls_lint_core.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

namespace tls::lint {
namespace {

bool has_rule(const std::vector<Finding>& fs, const std::string& rule) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

int line_of(const std::vector<Finding>& fs, const std::string& rule) {
  for (const Finding& f : fs) {
    if (f.rule == rule) return f.line;
  }
  return -1;
}

TEST(TlsLint, CatchesWallClockReads) {
  std::string src =
      "#include <chrono>\n"
      "double now_s() {\n"
      "  auto t = std::chrono::steady_clock::now();\n"
      "  return std::chrono::duration<double>(t.time_since_epoch()).count();\n"
      "}\n";
  auto findings = lint_source("net/bad.cpp", src);
  ASSERT_TRUE(has_rule(findings, "wall-clock"));
  EXPECT_EQ(line_of(findings, "wall-clock"), 3);
}

TEST(TlsLint, CatchesBareTimeAndClockCalls) {
  auto f1 = lint_source("net/bad.cpp", "long t = time(nullptr);\n");
  EXPECT_TRUE(has_rule(f1, "wall-clock"));
  auto f2 = lint_source("net/bad.cpp", "long t = std::time(nullptr);\n");
  EXPECT_TRUE(has_rule(f2, "wall-clock"));
  auto f3 = lint_source("net/bad.cpp", "long c = clock();\n");
  EXPECT_TRUE(has_rule(f3, "wall-clock"));
}

TEST(TlsLint, DoesNotFlagSimTimeHelpers) {
  std::string src =
      "sim::Time t = transmit_time(bytes, rate);\n"
      "sim::Time u = q.peek_time();\n"
      "std::string s = format_time(t);\n"
      "sim::Time v = sim_.now();\n";
  auto findings = lint_source("net/good.cpp", src);
  EXPECT_FALSE(has_rule(findings, "wall-clock")) << format_findings(findings);
}

TEST(TlsLint, CatchesRawRngOutsideRngModule) {
  auto f1 = lint_source("net/bad.cpp", "int r = rand() % 6;\n");
  EXPECT_TRUE(has_rule(f1, "banned-rng"));
  auto f2 = lint_source("dl/bad.cpp", "std::random_device rd;\n");
  EXPECT_TRUE(has_rule(f2, "banned-rng"));
  auto f3 = lint_source("workload/bad.cpp", "std::mt19937 gen(42);\n");
  EXPECT_TRUE(has_rule(f3, "banned-rng"));
}

TEST(TlsLint, RngModuleIsExemptFromRngRule) {
  // The hand-rolled generator implementation is the one sanctioned place
  // for raw machinery.
  auto findings =
      lint_source("simcore/rng.cpp", "std::mt19937 reference_gen(1);\n");
  EXPECT_FALSE(has_rule(findings, "banned-rng"));
}

TEST(TlsLint, CatchesDefaultSeededRngConstruction) {
  // `Rng()` / `Rng{}` fall back to the fixed default seed, so every such
  // generator produces identical correlated draws.
  auto f1 = lint_source("net/bad.cpp", "sim::Rng r = sim::Rng();\n");
  EXPECT_TRUE(has_rule(f1, "banned-rng")) << format_findings(f1);
  auto f2 = lint_source("scenario/bad.cpp", "auto r = sim::Rng{};\n");
  EXPECT_TRUE(has_rule(f2, "banned-rng")) << format_findings(f2);
  auto f3 = lint_source("dl/bad.cpp", "use(Rng());\n");
  EXPECT_TRUE(has_rule(f3, "banned-rng")) << format_findings(f3);
}

TEST(TlsLint, DoesNotFlagSeededRngOrPlainDeclarations) {
  std::string src =
      "sim::Rng seeded(7);\n"
      "sim::Rng forked = root.fork(\"stream\");\n"
      "sim::Rng rng_;\n";  // member decl, re-seeded in the ctor initializer
  auto findings = lint_source("net/good.cpp", src);
  EXPECT_FALSE(has_rule(findings, "banned-rng")) << format_findings(findings);
}

TEST(TlsLint, RngModuleMayDefaultConstruct) {
  // The generator's own header declares the defaulted constructor.
  auto findings = lint_source("simcore/rng.hpp",
                              "explicit Rng(std::uint64_t seed = 1); Rng();\n");
  EXPECT_FALSE(has_rule(findings, "banned-rng")) << format_findings(findings);
}

TEST(TlsLint, DoesNotFlagOperandLikeIdentifiers) {
  auto findings = lint_source(
      "net/good.cpp", "int operand(int x);\nint y = my_rand(3);\n");
  EXPECT_FALSE(has_rule(findings, "banned-rng")) << format_findings(findings);
}

TEST(TlsLint, FindsUnorderedDeclarations) {
  std::string src =
      "std::unordered_map<FlowId, FlowQueue> flows_;\n"
      "std::unordered_set<int> seen_;\n"
      "std::unordered_map<int, std::vector<std::pair<int, int>>> nested_;\n"
      "using Alias = std::unordered_map<int, int>;\n";
  auto names = unordered_decl_names(src);
  EXPECT_EQ(names, (std::vector<std::string>{"flows_", "nested_", "seen_"}));
}

TEST(TlsLint, CatchesUnorderedIterationInHotPaths) {
  std::string src =
      "std::unordered_map<int, int> flows_;\n"
      "void f() {\n"
      "  for (auto& [id, q] : flows_) { (void)id; (void)q; }\n"
      "}\n";
  auto findings = lint_source("net/bad.cpp", src);
  ASSERT_TRUE(has_rule(findings, "unordered-iteration"));
  EXPECT_EQ(line_of(findings, "unordered-iteration"), 3);
}

TEST(TlsLint, CatchesBeginIterationViaCompanionHeaderDecl) {
  // The member is declared in the header; the .cpp only iterates it.
  std::string src = "void f() { auto it = flows_.begin(); use(it); }\n";
  auto findings = lint_source("simcore/bad.cpp", src, {"flows_"});
  EXPECT_TRUE(has_rule(findings, "unordered-iteration"));
}

TEST(TlsLint, ObsDirIsHotPathForUnorderedIteration) {
  // Exporter iteration order feeds byte-identical trace/metrics files, so
  // src/obs gets the same scrutiny as the simulator hot paths.
  std::string src =
      "std::unordered_map<int, long> counters_;\n"
      "void dump() {\n"
      "  for (auto& [k, v] : counters_) { emit(k, v); }\n"
      "}\n";
  auto findings = lint_source("obs/bad.cpp", src);
  ASSERT_TRUE(has_rule(findings, "unordered-iteration"))
      << format_findings(findings);
  EXPECT_EQ(line_of(findings, "unordered-iteration"), 3);
  // Nested path form, and .begin() via a companion-header declaration.
  auto nested = lint_source("src/obs/bad.cpp", src);
  EXPECT_TRUE(has_rule(nested, "unordered-iteration"));
  auto begin = lint_source(
      "obs/bad.cpp", "void f() { auto it = counters_.begin(); use(it); }\n",
      {"counters_"});
  EXPECT_TRUE(has_rule(begin, "unordered-iteration"));
}

TEST(TlsLint, AllowsUnorderedIterationOutsideHotPaths) {
  std::string src =
      "std::unordered_map<int, int> index_;\n"
      "void f() {\n"
      "  for (auto& [k, v] : index_) { (void)k; (void)v; }\n"
      "}\n";
  auto findings = lint_source("metrics/report.cpp", src);
  EXPECT_FALSE(has_rule(findings, "unordered-iteration"));
}

TEST(TlsLint, AllowsKeyedLookupOnUnorderedContainers) {
  std::string src =
      "std::unordered_map<int, int> flows_;\n"
      "void f(int k) { auto it = flows_.find(k); flows_.erase(it); }\n";
  auto findings = lint_source("net/good.cpp", src);
  EXPECT_FALSE(has_rule(findings, "unordered-iteration"))
      << format_findings(findings);
}

TEST(TlsLint, CatchesFloatTimeComparison) {
  auto f1 = lint_source("net/bad.cpp",
                        "if (to_seconds(a) == to_seconds(b)) sync();\n");
  EXPECT_TRUE(has_rule(f1, "float-time-compare"));
  auto f2 = lint_source(
      "net/bad.cpp", "float t = static_cast<float>(sim_.now());\n");
  EXPECT_TRUE(has_rule(f2, "float-time-compare"));
}

TEST(TlsLint, AllowsOrderedFloatTimeMath) {
  auto findings = lint_source(
      "net/good.cpp",
      "double dt = to_seconds(now - last);\nif (dt <= 0) return;\n");
  EXPECT_FALSE(has_rule(findings, "float-time-compare"));
}

TEST(TlsLint, CatchesThreadingOutsideRuntime) {
  auto f1 = lint_source("net/bad.cpp", "std::thread t([] {});\n");
  EXPECT_TRUE(has_rule(f1, "threading-outside-runtime"));
  auto f2 = lint_source("simcore/bad.cpp", "std::mutex mu_;\n");
  EXPECT_TRUE(has_rule(f2, "threading-outside-runtime"));
  auto f3 = lint_source("tensorlights/bad.cpp",
                        "std::atomic<int> pending_{0};\n");
  EXPECT_TRUE(has_rule(f3, "threading-outside-runtime"));
  auto f4 = lint_source("net/bad.cpp", "#include <thread>\nint x;\n");
  ASSERT_TRUE(has_rule(f4, "threading-outside-runtime"));
  EXPECT_EQ(line_of(f4, "threading-outside-runtime"), 1);
}

TEST(TlsLint, RuntimeDirIsExemptFromThreadingRule) {
  std::string src =
      "#include <mutex>\n"
      "#include <thread>\n"
      "std::mutex mu_;\n"
      "std::vector<std::thread> workers_;\n";
  auto findings = lint_source("runtime/thread_pool.hpp", src);
  EXPECT_FALSE(has_rule(findings, "threading-outside-runtime"))
      << format_findings(findings);
}

TEST(TlsLint, DoesNotFlagThreadLikeIdentifiers) {
  // Unqualified words and non-std qualifications are not threading
  // primitives; neither are longer identifiers containing a banned stem.
  std::string src =
      "int thread = 3;\n"
      "tls::sim::FutureEvent future;\n"
      "int hardware_threads = my::thread::count();\n"
      "bool async = spec.async_mode;\n"
      "int std_mutex_count = 0;\n";
  auto findings = lint_source("net/good.cpp", src);
  EXPECT_FALSE(has_rule(findings, "threading-outside-runtime"))
      << format_findings(findings);
}

TEST(TlsLint, AllowlistSilencesThreadingRule) {
  Finding f{"metrics/sampler.cpp", 7, "threading-outside-runtime", "msg"};
  auto entries =
      parse_allowlist("metrics/sampler.cpp:threading-outside-runtime\n");
  EXPECT_TRUE(is_allowed(f, entries));
  Finding other{"metrics/sampler.cpp", 7, "wall-clock", "msg"};
  EXPECT_FALSE(is_allowed(other, entries));
}

TEST(TlsLint, CatchesMissingPragmaOnce) {
  auto findings = lint_source("net/bad.hpp", "struct X {};\n");
  ASSERT_TRUE(has_rule(findings, "missing-pragma-once"));
  EXPECT_EQ(line_of(findings, "missing-pragma-once"), 0);
  auto ok = lint_source("net/good.hpp", "#pragma once\nstruct X {};\n");
  EXPECT_FALSE(has_rule(ok, "missing-pragma-once"));
}

TEST(TlsLint, IgnoresBannedPatternsInCommentsAndStrings) {
  std::string src =
      "// never call rand() or read steady_clock here\n"
      "/* std::random_device is banned */\n"
      "const char* msg = \"time(nullptr) is not simulation time\";\n";
  auto findings = lint_source("net/good.cpp", src);
  EXPECT_TRUE(findings.empty()) << format_findings(findings);
}

TEST(TlsLint, AllowlistSilencesByPathAndRule) {
  Finding f{"net/legacy.cpp", 10, "wall-clock", "msg"};
  auto entries = parse_allowlist(
      "# comment\n"
      "net/legacy.cpp:wall-clock  # timing a real benchmark\n");
  EXPECT_TRUE(is_allowed(f, entries));
  Finding other{"net/legacy.cpp", 10, "banned-rng", "msg"};
  EXPECT_FALSE(is_allowed(other, entries));
  // Whole-file entry silences every rule.
  auto file_wide = parse_allowlist("net/legacy.cpp\n");
  EXPECT_TRUE(is_allowed(other, file_wide));
  // Suffix must align on a path-segment boundary.
  Finding subnet{"subnet/port.cpp", 1, "wall-clock", "msg"};
  auto seg = parse_allowlist("net/port.cpp\n");
  EXPECT_FALSE(is_allowed(subnet, seg));
}

// End-to-end: seed a violating file into a temp tree, run lint_tree, and
// watch the violation get caught — then allowlist it and watch it pass.
TEST(TlsLint, TreeScanCatchesSeededViolation) {
  namespace fs = std::filesystem;
  fs::path root = fs::path(testing::TempDir()) / "tls_lint_seeded";
  fs::remove_all(root);
  fs::create_directories(root / "net");
  {
    std::ofstream good(root / "net" / "good.hpp");
    good << "#pragma once\ninline int f() { return 1; }\n";
    std::ofstream hdr(root / "net" / "bad.hpp");
    hdr << "#pragma once\n#include <unordered_map>\n"
        << "struct S { std::unordered_map<int, int> flows_; void g(); };\n";
    std::ofstream bad(root / "net" / "bad.cpp");
    bad << "#include \"bad.hpp\"\n"
        << "void S::g() {\n"
        << "  int x = rand();\n"
        << "  for (auto& [k, v] : flows_) { x += k + v; }\n"
        << "}\n";
  }

  auto findings = lint_tree(root, {});
  EXPECT_TRUE(has_rule(findings, "banned-rng")) << format_findings(findings);
  EXPECT_TRUE(has_rule(findings, "unordered-iteration"))
      << format_findings(findings);
  // The companion-header declaration was picked up for the .cpp scan.
  EXPECT_EQ(line_of(findings, "unordered-iteration"), 4);
  // good.hpp contributed nothing.
  for (const Finding& f : findings) EXPECT_EQ(f.file, "net/bad.cpp");

  auto allow = parse_allowlist("net/bad.cpp:banned-rng\n");
  auto remaining = lint_tree(root, allow);
  EXPECT_FALSE(has_rule(remaining, "banned-rng"));
  EXPECT_TRUE(has_rule(remaining, "unordered-iteration"));

  fs::remove_all(root);
}

// The deterministic output contract of the lint itself: findings are sorted.
TEST(TlsLint, FindingsAreSorted) {
  namespace fs = std::filesystem;
  fs::path root = fs::path(testing::TempDir()) / "tls_lint_sorted";
  fs::remove_all(root);
  fs::create_directories(root / "net");
  {
    std::ofstream a(root / "net" / "a.cpp");
    a << "int x = rand();\nlong t = time(nullptr);\n";
    std::ofstream b(root / "net" / "b.cpp");
    b << "int y = srand(1), z = 0;\n";
  }
  auto findings = lint_tree(root, {});
  ASSERT_GE(findings.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      findings.begin(), findings.end(), [](const Finding& x, const Finding& y) {
        return std::tie(x.file, x.line, x.rule) <
               std::tie(y.file, y.line, y.rule);
      }));
  fs::remove_all(root);
}

TEST(TlsLint, IgnoresBannedPatternsInRawStrings) {
  // Raw string literals have no escapes; the scanner must track the
  // )delim" terminator, not the first '"'.
  std::string src =
      "const char* doc = R\"(call rand() or time(nullptr) here)\";\n"
      "const char* sql = R\"sql(select std::mt19937 from x)sql\";\n"
      "int ok = 1;\n";
  auto findings = lint_source("net/good.cpp", src);
  EXPECT_TRUE(findings.empty()) << format_findings(findings);
}

TEST(TlsLint, IgnoresBannedPatternsInMultiLineBlockComments) {
  std::string src =
      "/* This block spans lines and mentions\n"
      "   rand() and std::random_device and\n"
      "   steady_clock without using them. */\n"
      "int ok = 1;\n";
  auto findings = lint_source("net/good.cpp", src);
  EXPECT_TRUE(findings.empty()) << format_findings(findings);
}

TEST(TlsLint, LineCommentWithBannedTokenIsClean) {
  auto findings = lint_source(
      "net/good.cpp", "int x = 3;  // not rand(), not time(nullptr)\n");
  EXPECT_TRUE(findings.empty()) << format_findings(findings);
}

TEST(TlsLint, CatchesRawValueEscapeOutsideUnitsLayer) {
  auto f1 = lint_source("net/bad.cpp", "double d = rate.raw() * 2.0;\n");
  ASSERT_TRUE(has_rule(f1, "unit-escape")) << format_findings(f1);
  EXPECT_EQ(line_of(f1, "unit-escape"), 1);
  auto f2 = lint_source("dl/bad.cpp", "auto n = total().raw();\n");
  EXPECT_TRUE(has_rule(f2, "unit-escape"));
}

TEST(TlsLint, UnitsLayerMayUseRaw) {
  for (const char* path :
       {"net/units.hpp", "simcore/time.hpp", "simcore/strong.hpp",
        "src/net/units.hpp"}) {
    auto findings = lint_source(path, "double d = rate.raw();\n");
    EXPECT_FALSE(has_rule(findings, "unit-escape")) << path;
  }
}

TEST(TlsLint, RawEscapeInCommentOrStringIsClean) {
  auto findings = lint_source(
      "net/good.cpp",
      "// .raw() is the escape hatch\nconst char* s = \"x.raw()\";\n");
  EXPECT_FALSE(has_rule(findings, "unit-escape")) << format_findings(findings);
}

TEST(TlsLint, FindingsToJsonEscapesAndSorts) {
  std::vector<Finding> fs{
      {"net/a.cpp", 3, "wall-clock", "message with \"quotes\"\nand newline"}};
  std::string json = findings_to_json(fs);
  EXPECT_NE(json.find("\"file\": \"net/a.cpp\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\n"), std::string::npos) << json;
  EXPECT_EQ(findings_to_json({}), "[]\n");
}

TEST(TlsLint, StaleAllowEntriesAreReported) {
  std::vector<Finding> findings{{"net/a.cpp", 3, "wall-clock", "m"}};
  auto entries = parse_allowlist(
      "net/a.cpp:wall-clock\n"     // still earns its keep
      "net/gone.cpp:banned-rng\n"  // silences nothing -> stale
      "dl/also_gone.cpp\n");
  auto stale = stale_allow_entries(entries, findings);
  ASSERT_EQ(stale.size(), 2u);
  EXPECT_EQ(stale[0].path_suffix, "net/gone.cpp");
  EXPECT_EQ(stale[0].rule, "banned-rng");
  EXPECT_EQ(stale[1].path_suffix, "dl/also_gone.cpp");
}

// ---------------------------------------------------------------------------
// Layer-DAG checking.
// ---------------------------------------------------------------------------

TEST(TlsLintLayers, ParsesIncludesSkippingCommentsAndSystemHeaders) {
  std::string src =
      "#include <vector>\n"
      "#include \"net/units.hpp\"\n"
      "// #include \"net/commented.hpp\"\n"
      "/* #include \"net/blocked.hpp\" */\n"
      "  #  include   \"simcore/time.hpp\"\n";
  auto incs = parse_includes(src);
  ASSERT_EQ(incs.size(), 2u);
  EXPECT_EQ(incs[0].path, "net/units.hpp");
  EXPECT_EQ(incs[0].line, 2);
  EXPECT_EQ(incs[1].path, "simcore/time.hpp");
  EXPECT_EQ(incs[1].line, 5);
}

TEST(TlsLintLayers, ParsesManifestModulesAndGrants) {
  auto m = parse_layer_manifest(
      "# lowest layer first\n"
      "module simcore:\n"
      "module net: simcore   # the fabric\n"
      "allow obs/trace.hpp -> net/units.hpp\n");
  EXPECT_TRUE(m.errors.empty());
  ASSERT_EQ(m.deps.size(), 2u);
  EXPECT_TRUE(m.deps.at("simcore").empty());
  EXPECT_EQ(m.deps.at("net"), std::vector<std::string>{"simcore"});
  ASSERT_EQ(m.file_grants.size(), 1u);
  EXPECT_EQ(m.file_grants[0].first, "obs/trace.hpp");
  EXPECT_EQ(m.file_grants[0].second, "net/units.hpp");
}

TEST(TlsLintLayers, ManifestErrorsAreCollected) {
  auto m = parse_layer_manifest(
      "module net: ghost\n"
      "module net: simcore\n"
      "frobnicate all\n"
      "allow broken\n");
  // undeclared dep, duplicate module, unknown directive, bad allow.
  EXPECT_EQ(m.errors.size(), 4u);
}

namespace {
/// The repo's shape in miniature: simcore below net below runtime.
LayerManifest tiny_manifest() {
  return parse_layer_manifest(
      "module simcore:\n"
      "module net: simcore\n"
      "module runtime: net simcore\n");
}
}  // namespace

TEST(TlsLintLayers, CleanGraphPasses) {
  std::map<std::string, std::vector<Include>> files;
  files["simcore/time.hpp"] = {};
  files["net/port.hpp"] = {{"simcore/time.hpp", 3}};
  files["runtime/runner.cpp"] = {{"net/port.hpp", 2},
                                 {"simcore/time.hpp", 3},
                                 {"runtime/runner.hpp", 1}};
  auto findings = check_layer_graph(files, tiny_manifest());
  EXPECT_TRUE(findings.empty()) << format_findings(findings);
}

TEST(TlsLintLayers, BackEdgeIsFlaggedWithChain) {
  // The negative case the ctest contract promises: an artificially
  // introduced simcore -> runtime include must fail, and the finding must
  // print the include chain that closes the cycle.
  std::map<std::string, std::vector<Include>> files;
  files["simcore/event_queue.hpp"] = {{"runtime/runner.hpp", 7}};
  files["runtime/runner.hpp"] = {{"net/port.hpp", 2}};
  files["net/port.hpp"] = {{"simcore/event_queue.hpp", 3}};
  auto findings = check_layer_graph(files, tiny_manifest());
  ASSERT_EQ(findings.size(), 1u) << format_findings(findings);
  EXPECT_EQ(findings[0].rule, "layer-dag");
  EXPECT_EQ(findings[0].file, "simcore/event_queue.hpp");
  EXPECT_EQ(findings[0].line, 7);
  EXPECT_NE(findings[0].message.find("may not depend on 'runtime'"),
            std::string::npos)
      << findings[0].message;
  // The chain walks the actual include edges back into simcore.
  EXPECT_NE(findings[0].message.find(
                "simcore/event_queue.hpp -> runtime/runner.hpp -> "
                "net/port.hpp -> simcore/event_queue.hpp"),
            std::string::npos)
      << findings[0].message;
}

TEST(TlsLintLayers, FileGrantAllowsOneEdgeOnly) {
  auto manifest = parse_layer_manifest(
      "module simcore:\n"
      "module obs: simcore\n"
      "module net: simcore obs\n"
      "allow obs/trace.hpp -> net/units.hpp\n");
  std::map<std::string, std::vector<Include>> files;
  files["net/units.hpp"] = {};
  files["net/other.hpp"] = {};
  files["obs/trace.hpp"] = {{"net/units.hpp", 5}};
  EXPECT_TRUE(check_layer_graph(files, manifest).empty());
  // Same edge from a different file: flagged.
  files["obs/metrics.hpp"] = {{"net/units.hpp", 4}};
  auto f1 = check_layer_graph(files, manifest);
  ASSERT_EQ(f1.size(), 1u) << format_findings(f1);
  EXPECT_EQ(f1[0].file, "obs/metrics.hpp");
  files.erase("obs/metrics.hpp");
  // Different target from the granted file: flagged.
  files["obs/trace.hpp"].push_back({"net/other.hpp", 6});
  auto f2 = check_layer_graph(files, manifest);
  ASSERT_EQ(f2.size(), 1u) << format_findings(f2);
  EXPECT_EQ(f2[0].line, 6);
}

TEST(TlsLintLayers, UndeclaredModuleIsFlagged) {
  std::map<std::string, std::vector<Include>> files;
  files["mystery/box.hpp"] = {};
  auto findings = check_layer_graph(files, tiny_manifest());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("'mystery'"), std::string::npos);
}

TEST(TlsLintLayers, ManifestCycleIsFlagged) {
  auto manifest = parse_layer_manifest(
      "module a: b\n"
      "module b: c\n"
      "module c: a\n");
  EXPECT_TRUE(manifest.errors.empty());
  auto findings = check_layer_graph({}, manifest);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layer-dag");
  EXPECT_NE(findings[0].message.find("cycle"), std::string::npos);
  // The chain names all three modules.
  for (const char* mod : {"a", "b", "c"}) {
    EXPECT_NE(findings[0].message.find(mod), std::string::npos)
        << findings[0].message;
  }
}

TEST(TlsLintLayers, ExternalQuotedIncludesAreIgnored) {
  std::map<std::string, std::vector<Include>> files;
  files["net/port.hpp"] = {{"gtest/gtest.h", 2}, {"port_config.hpp", 3}};
  auto findings = check_layer_graph(files, tiny_manifest());
  EXPECT_TRUE(findings.empty()) << format_findings(findings);
}

TEST(TlsLintLayers, TreeScanChecksRealFiles) {
  namespace fs = std::filesystem;
  fs::path root = fs::path(testing::TempDir()) / "tls_lint_layers";
  fs::remove_all(root);
  fs::create_directories(root / "simcore");
  fs::create_directories(root / "runtime");
  {
    std::ofstream a(root / "runtime" / "runner.hpp");
    a << "#pragma once\n#include \"simcore/time.hpp\"\n";
    std::ofstream b(root / "simcore" / "time.hpp");
    b << "#pragma once\n";
  }
  EXPECT_TRUE(check_layer_tree(root, tiny_manifest()).empty());
  {
    std::ofstream bad(root / "simcore" / "bad.hpp");
    bad << "#pragma once\n#include \"runtime/runner.hpp\"\n";
  }
  auto findings = check_layer_tree(root, tiny_manifest());
  ASSERT_EQ(findings.size(), 1u) << format_findings(findings);
  EXPECT_EQ(findings[0].file, "simcore/bad.hpp");
  EXPECT_EQ(findings[0].line, 2);
  fs::remove_all(root);
}

}  // namespace
}  // namespace tls::lint
