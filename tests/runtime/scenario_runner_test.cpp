#include "runtime/scenario_runner.hpp"

#include <gtest/gtest.h>

#include "scenario/export.hpp"

namespace tls::runtime {
namespace {

scenario::Config small_config() {
  scenario::Config c;
  c.num_hosts = 4;
  c.cores_per_host = 4;
  c.trace.num_jobs = 5;
  c.trace.mean_interarrival_s = 2;
  c.trace.min_workers = 2;
  c.trace.max_workers = 3;
  c.trace.min_iterations = 3;
  c.trace.max_iterations = 4;
  c.trace.local_batch_size = 1;
  c.trace.seed = 17;
  c.seed = 2;
  c.sample_period = sim::Time{0};
  return c;
}

TEST(ScenarioPlan, PolicyComparisonCoversDefaultPoliciesFifoFirst) {
  ScenarioPlan plan = ScenarioPlan::policy_comparison(small_config());
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.entries[0].label, "FIFO");
  EXPECT_EQ(plan.entries[1].label, "TLs-One");
  EXPECT_EQ(plan.entries[2].label, "TLs-RR");
  for (const ScenarioPlan::Entry& e : plan.entries) {
    // The workload is shared: only the policy differs.
    EXPECT_EQ(e.config.trace.seed, 17u);
    EXPECT_EQ(e.config.seed, 2u);
  }
}

TEST(ScenarioPlan, ReplicatedBumpsOnlyTheSimulatorSeed) {
  ScenarioPlan plan = ScenarioPlan::replicated(small_config(), 3);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.entries[0].config.seed, 2u);
  EXPECT_EQ(plan.entries[1].config.seed, 3u);
  EXPECT_EQ(plan.entries[2].config.seed, 4u);
  EXPECT_EQ(plan.entries[0].label, "seed2");
  for (const ScenarioPlan::Entry& e : plan.entries) {
    EXPECT_EQ(e.config.trace.seed, 17u);
  }
}

TEST(ScenarioRunner, ParallelPlanMatchesSerialByteForByte) {
  ScenarioPlan plan = ScenarioPlan::policy_comparison(small_config());
  ScenarioReport serial = run_scenario_plan(plan, 1);
  ScenarioReport parallel = run_scenario_plan(plan, 8);
  EXPECT_EQ(serial.jobs_used, 1);
  EXPECT_EQ(parallel.jobs_used, 3);  // clamped to the entry count
  ASSERT_EQ(serial.results.size(), 3u);
  ASSERT_EQ(parallel.results.size(), 3u);
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    EXPECT_EQ(scenario::scenario_json(serial.results[i]),
              scenario::scenario_json(parallel.results[i]))
        << serial.labels[i];
  }
}

TEST(ScenarioRunner, ResultsAreKeyedByEntryIndex) {
  ScenarioPlan plan = ScenarioPlan::policy_comparison(small_config());
  ScenarioReport report = run_scenario_plan(plan, 3);
  ASSERT_EQ(report.results.size(), 3u);
  EXPECT_EQ(report.results[0].policy_name, "FIFO");
  EXPECT_EQ(report.results[1].policy_name, "TLs-One");
  EXPECT_EQ(report.results[2].policy_name, "TLs-RR");
  EXPECT_EQ(report.labels,
            (std::vector<std::string>{"FIFO", "TLs-One", "TLs-RR"}));
}

TEST(ScenarioRunner, WorkerExceptionIsRethrown) {
  ScenarioPlan plan;
  scenario::Config good = small_config();
  scenario::Config bad = small_config();
  bad.num_hosts = 1;  // run_scenario throws std::invalid_argument
  plan.add("good", good);
  plan.add("bad", bad);
  EXPECT_THROW(run_scenario_plan(plan, 2), std::invalid_argument);
}

TEST(ScenarioRunner, EmptyPlanYieldsEmptyReport) {
  ScenarioReport report = run_scenario_plan(ScenarioPlan{}, 4);
  EXPECT_TRUE(report.results.empty());
  EXPECT_TRUE(report.labels.empty());
}

}  // namespace
}  // namespace tls::runtime
