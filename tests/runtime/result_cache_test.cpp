// Tests for the content-addressed result cache: exact round-trip of a real
// ExperimentResult through encode/decode (hex-float doubles), key
// sensitivity to every kind of config change, salt isolation between code
// versions, and graceful behavior on missing/corrupt files.
#include "runtime/result_cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "exp/experiment.hpp"
#include "exp/export.hpp"

namespace tls::runtime {
namespace {

namespace fs = std::filesystem;

exp::ExperimentConfig tiny_config() {
  exp::ExperimentConfig c;
  c.num_hosts = 4;
  c.workload.num_jobs = 4;
  c.workload.workers_per_job = 3;
  c.workload.local_batch_size = 1;
  c.workload.global_step_target = 3L * 4;
  c.placement = cluster::table1(1, 4);
  c.controller.policy = core::PolicyKind::kTlsOne;
  c.seed = 11;
  return c;
}

std::string full_export(const exp::ExperimentResult& r) {
  return exp::jobs_csv(r) + "\n" + exp::barriers_csv(r) + "\n" +
         exp::to_json(r);
}

/// Fresh per-test cache directory.
fs::path temp_cache_dir(const char* name) {
  fs::path dir = fs::path(testing::TempDir()) / "tls_cache_test" / name;
  fs::remove_all(dir);
  return dir;
}

TEST(Fnv1a64, MatchesReferenceVectors) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(fnv1a64("tls"), fnv1a64("tlt"));
}

TEST(CanonicalConfig, CoversEveryDistinguishingField) {
  exp::ExperimentConfig base = tiny_config();
  std::string canon = canonical_config(base);
  EXPECT_FALSE(canon.empty());
  // Identical configs canonicalize identically.
  EXPECT_EQ(canon, canonical_config(tiny_config()));

  // A representative knob from each layer must change the serialization —
  // a field the canonicalizer missed would silently share a cache slot.
  auto differs = [&](auto mutate) {
    exp::ExperimentConfig m = tiny_config();
    mutate(m);
    return canonical_config(m) != canon;
  };
  EXPECT_TRUE(differs([](auto& c) { c.seed = 12; }));
  EXPECT_TRUE(differs([](auto& c) { c.num_hosts = 5; }));
  EXPECT_TRUE(differs(
      [](auto& c) { c.controller.policy = core::PolicyKind::kTlsRR; }));
  EXPECT_TRUE(differs([](auto& c) { c.controller.max_bands += 1; }));
  EXPECT_TRUE(differs([](auto& c) { c.workload.local_batch_size = 2; }));
  EXPECT_TRUE(differs([](auto& c) { c.workload.compute_sigma += 0.001; }));
  EXPECT_TRUE(differs([](auto& c) { c.fabric.link_rate = c.fabric.link_rate * 2.0; }));
  EXPECT_TRUE(differs([](auto& c) { c.placement = cluster::table1(2, 4); }));
  EXPECT_TRUE(differs([](auto& c) { c.background = true; }));
  EXPECT_TRUE(differs([](auto& c) { c.coordinated_transport = true; }));
}

TEST(ResultCache, EncodeDecodeRoundTripsExactly) {
  exp::ExperimentResult r = exp::run_experiment(tiny_config());
  exp::ExperimentResult decoded;
  ASSERT_TRUE(decode_result(encode_result(r), &decoded));
  // Byte-identical through every export surface — the determinism contract
  // must survive a cache round-trip, doubles included.
  EXPECT_EQ(full_export(r), full_export(decoded));
  EXPECT_EQ(r.sim_events, decoded.sim_events);
  EXPECT_EQ(r.tc_commands, decoded.tc_commands);
  EXPECT_EQ(r.policy_name, decoded.policy_name);
}

TEST(ResultCache, DecodeRejectsTruncatedInput) {
  exp::ExperimentResult r = exp::run_experiment(tiny_config());
  std::string text = encode_result(r);
  exp::ExperimentResult out;
  EXPECT_FALSE(decode_result(text.substr(0, text.size() / 2), &out));
  EXPECT_FALSE(decode_result("", &out));
  EXPECT_FALSE(decode_result("not a result", &out));
}

TEST(ResultCache, MissOnEmptyCacheThenHitAfterStore) {
  ResultCache cache(temp_cache_dir("store"), "salt-v1");
  exp::ExperimentConfig config = tiny_config();
  EXPECT_FALSE(cache.load(config).has_value());

  exp::ExperimentResult r = exp::run_experiment(config);
  ASSERT_TRUE(cache.store(config, r));
  auto hit = cache.load(config);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(full_export(r), full_export(*hit));

  // A different config (seed bump) still misses.
  exp::ExperimentConfig other = config;
  other.seed += 1;
  EXPECT_FALSE(cache.load(other).has_value());
}

TEST(ResultCache, DifferentSaltNeverCrossContaminates) {
  fs::path dir = temp_cache_dir("salt");
  exp::ExperimentConfig config = tiny_config();
  exp::ExperimentResult r = exp::run_experiment(config);
  ResultCache old_code(dir, "rev-aaa");
  ASSERT_TRUE(old_code.store(config, r));
  // Same directory, new code version: the old entry must not be served.
  ResultCache new_code(dir, "rev-bbb");
  EXPECT_FALSE(new_code.load(config).has_value());
  EXPECT_NE(old_code.key(config), new_code.key(config));
}

TEST(ResultCache, CorruptFileDegradesToMiss) {
  fs::path dir = temp_cache_dir("corrupt");
  ResultCache cache(dir, "salt-v1");
  exp::ExperimentConfig config = tiny_config();
  ASSERT_TRUE(cache.store(config, exp::run_experiment(config)));
  // Truncate the stored file in place.
  fs::path file = dir / (cache.key(config) + ".result");
  ASSERT_TRUE(fs::exists(file));
  std::ofstream(file, std::ios::trunc) << "garbage";
  EXPECT_FALSE(cache.load(config).has_value());
}

TEST(ResultCache, StoreFailureReturnsFalseNotThrow) {
  // A directory path that cannot be created (parent is a regular file).
  fs::path dir = temp_cache_dir("blocked");
  fs::create_directories(dir.parent_path());
  std::ofstream(dir.string()) << "occupied";
  ResultCache cache(dir / "sub", "salt-v1");
  exp::ExperimentConfig config = tiny_config();
  EXPECT_FALSE(cache.store(config, exp::run_experiment(config)));
  EXPECT_FALSE(cache.load(config).has_value());
}

}  // namespace
}  // namespace tls::runtime
