// The parallel-determinism witness (DESIGN.md §7): the same seeded sweep
// run with jobs=1 and jobs=8 must produce byte-identical CSV/JSON exports
// — results are keyed by run index, never by completion order. Also the
// cache behavior contract: a second run of an unchanged plan is all hits
// and still byte-identical.
#include "runtime/runner.hpp"

#include "runtime/replicate.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "exp/export.hpp"

namespace tls::runtime {
namespace {

namespace fs = std::filesystem;

/// Small contended sweep mirroring tests/integration/determinism_test.cpp:
/// colocated PSes and a slow link so runs are long enough to genuinely
/// overlap and finish out of submission order under the pool.
exp::ExperimentConfig small_contended(core::PolicyKind policy) {
  exp::ExperimentConfig c;
  c.num_hosts = 6;
  c.workload.num_jobs = 6;
  c.workload.workers_per_job = 5;
  c.workload.local_batch_size = 1;
  c.workload.step_overhead = tls::sim::Time{0};
  c.workload.global_step_target = 5L * 8;
  c.fabric.link_rate = net::gbps(2.5);
  c.placement = cluster::table1(1, 6);
  c.controller.policy = policy;
  c.controller.rotation_interval = 2 * sim::kSecond;
  c.seed = 17;
  return c;
}

/// A seeded multi-entry plan: 3 policies x 2 seeds.
RunPlan seeded_sweep() {
  RunPlan plan;
  for (core::PolicyKind policy :
       {core::PolicyKind::kFifo, core::PolicyKind::kTlsOne,
        core::PolicyKind::kTlsRR}) {
    for (std::uint64_t seed : {17u, 18u}) {
      exp::ExperimentConfig c = small_contended(policy);
      c.seed = seed;
      plan.add(std::string(core::to_string(policy)) + "/seed" +
                   std::to_string(seed),
               c);
    }
  }
  return plan;
}

/// Every export surface of every run, concatenated in plan order.
std::string full_export(const RunReport& report) {
  std::string out;
  for (const exp::ExperimentResult& r : report.results) {
    out += exp::jobs_csv(r) + "\n" + exp::barriers_csv(r) + "\n" +
           exp::to_json(r) + "\n";
  }
  return out;
}

RunOptions with_jobs(int jobs) {
  RunOptions o;
  o.jobs = jobs;
  o.cache_dir.clear();  // caching off unless a test opts in
  return o;
}

TEST(Runner, ParallelExportIsByteIdenticalToSerial) {
  RunPlan plan = seeded_sweep();
  RunReport serial = run_plan(plan, with_jobs(1));
  RunReport parallel = run_plan(plan, with_jobs(8));
  EXPECT_EQ(serial.jobs_used, 1);
  EXPECT_EQ(parallel.jobs_used, 6);  // clamped to the 6 plan entries
  ASSERT_EQ(serial.results.size(), plan.size());
  ASSERT_EQ(parallel.results.size(), plan.size());
  EXPECT_EQ(full_export(serial), full_export(parallel));
  EXPECT_EQ(serial.labels, parallel.labels);
}

TEST(Runner, SecondRunIsAllCacheHitsAndIdentical) {
  fs::path dir = fs::path(testing::TempDir()) / "tls_runner_cache";
  fs::remove_all(dir);
  RunPlan plan = seeded_sweep();

  RunOptions options = with_jobs(2);
  options.cache_dir = dir.string();
  RunReport first = run_plan(plan, options);
  EXPECT_EQ(first.cache_hits, 0u);
  EXPECT_EQ(first.cache_stores, plan.size());

  RunReport second = run_plan(plan, options);
  EXPECT_EQ(second.cache_hits, plan.size());
  EXPECT_EQ(second.cache_stores, 0u);
  EXPECT_EQ(full_export(first), full_export(second));

  // A config change (new seed) misses and reruns.
  RunPlan changed = plan;
  changed.entries[0].config.seed = 99;
  RunReport third = run_plan(changed, options);
  EXPECT_EQ(third.cache_hits, plan.size() - 1);
  EXPECT_EQ(third.cache_stores, 1u);
  fs::remove_all(dir);
}

TEST(Runner, ReplicatedPlanMatchesRunReplicatedContract) {
  exp::ExperimentConfig base = small_contended(core::PolicyKind::kTlsRR);
  RunPlan plan = RunPlan::replicated(base, 3);
  ASSERT_EQ(plan.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(plan.entries[static_cast<std::size_t>(i)].config.seed,
              base.seed + static_cast<std::uint64_t>(i));
  }
  // runtime::run_replicated rides on this plan; results must agree with
  // direct runs at each seed.
  std::vector<exp::ExperimentResult> replicas = runtime::run_replicated(base, 2);
  exp::ExperimentConfig direct = base;
  direct.seed = base.seed + 1;
  EXPECT_EQ(exp::to_json(exp::run_experiment(direct)),
            exp::to_json(replicas[1]));
}

TEST(Runner, PolicyComparisonPlanIsFifoFirst) {
  exp::ExperimentConfig base = small_contended(core::PolicyKind::kFifo);
  RunPlan plan = RunPlan::policy_comparison(base);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.entries[0].config.controller.policy, core::PolicyKind::kFifo);
  EXPECT_EQ(plan.entries[1].config.controller.policy,
            core::PolicyKind::kTlsOne);
  EXPECT_EQ(plan.entries[2].config.controller.policy, core::PolicyKind::kTlsRR);

  std::vector<exp::ExperimentResult> results = runtime::compare(base);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].policy_name, "FIFO");
}

TEST(Runner, PlacementSweepIsRowMajor) {
  exp::ExperimentConfig base = small_contended(core::PolicyKind::kFifo);
  RunPlan plan = RunPlan::placement_sweep(
      base, {1, 2}, {core::PolicyKind::kFifo, core::PolicyKind::kTlsOne});
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan.entries[0].config.placement.index, 1);
  EXPECT_EQ(plan.entries[1].config.placement.index, 1);
  EXPECT_EQ(plan.entries[1].config.controller.policy,
            core::PolicyKind::kTlsOne);
  EXPECT_EQ(plan.entries[2].config.placement.index, 2);
}

TEST(Runner, ProgressLinesGoToTheGivenStream) {
  RunPlan plan;
  plan.add("only", small_contended(core::PolicyKind::kFifo));
  std::ostringstream progress;
  RunOptions options = with_jobs(1);
  options.progress = true;
  options.progress_stream = &progress;
  RunReport report = run_plan(plan, options);
  EXPECT_EQ(report.results.size(), 1u);
  EXPECT_NE(progress.str().find("only"), std::string::npos);
  EXPECT_NE(progress.str().find("1/1"), std::string::npos);
}

TEST(Runner, EmptyPlanIsANoOp) {
  RunReport report = run_plan(RunPlan{}, with_jobs(4));
  EXPECT_TRUE(report.results.empty());
  EXPECT_EQ(report.cache_hits, 0u);
}

}  // namespace
}  // namespace tls::runtime
