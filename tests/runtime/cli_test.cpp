#include "runtime/cli.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace tls::runtime {
namespace {

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun cli(std::initializer_list<std::string> args) {
  std::ostringstream out, err;
  int code = run_cli(std::vector<std::string>(args), out, err);
  return {code, out.str(), err.str()};
}

// Small-but-contended base flags so CLI tests run in milliseconds.
#define SMALL "--hosts", "6", "--jobs", "6", "--workers", "5", \
              "--batch", "1", "--iters", "6", "--link-gbps", "2.5"

TEST(CliParse, FlagsAndPositionals) {
  CliArgs args;
  std::string error;
  ASSERT_TRUE(parse_args({"run", "--hosts", "8", "--csv", "--seed=9"}, &args,
                         &error));
  ASSERT_EQ(args.positional.size(), 1u);
  EXPECT_EQ(args.positional[0], "run");
  EXPECT_EQ(args.get("hosts"), "8");
  EXPECT_EQ(args.get("seed"), "9");
  EXPECT_TRUE(args.has("csv"));
  EXPECT_EQ(args.get("csv"), "true");
  EXPECT_EQ(args.get("missing", "fallback"), "fallback");
}

TEST(CliParse, LastFlagWins) {
  CliArgs args;
  std::string error;
  ASSERT_TRUE(parse_args({"--seed", "1", "--seed", "2"}, &args, &error));
  EXPECT_EQ(args.get("seed"), "2");
}

TEST(CliParse, EmptyFlagRejected) {
  CliArgs args;
  std::string error;
  EXPECT_FALSE(parse_args({"--"}, &args, &error));
  EXPECT_FALSE(error.empty());
}

TEST(Cli, HelpByDefaultAndExplicit) {
  CliRun r = cli({});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("usage: tlsim"), std::string::npos);
  EXPECT_EQ(cli({"help"}).code, 0);
}

TEST(Cli, UnknownCommandFails) {
  CliRun r = cli({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, RunProducesTable) {
  CliRun r = cli({"run", SMALL, "--policy", "tls-one"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("TLs-One"), std::string::npos);
  EXPECT_NE(r.out.find("avg JCT"), std::string::npos);
}

TEST(Cli, RunCsvOutput) {
  CliRun r = cli({"run", SMALL, "--policy", "fifo", "--csv"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("policy,avg JCT (s)"), std::string::npos);
  EXPECT_NE(r.out.find("FIFO,"), std::string::npos);
}

TEST(Cli, RunReplicated) {
  CliRun r = cli({"run", SMALL, "--policy", "fifo", "--replicas", "2"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("across 2 seeds"), std::string::npos);
}

TEST(Cli, CompareShowsAllPolicies) {
  CliRun r = cli({"compare", SMALL});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("FIFO"), std::string::npos);
  EXPECT_NE(r.out.find("TLs-One"), std::string::npos);
  EXPECT_NE(r.out.find("TLs-RR"), std::string::npos);
}

TEST(Cli, BadPolicyRejected) {
  CliRun r = cli({"run", SMALL, "--policy", "wfq"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--policy"), std::string::npos);
}

TEST(Cli, BadNumberRejected) {
  EXPECT_EQ(cli({"run", "--hosts", "zero"}).code, 2);
  EXPECT_EQ(cli({"run", "--placement", "9"}).code, 2);
  EXPECT_EQ(cli({"run", "--bands", "16"}).code, 2);
}

TEST(Cli, WorkerHostConstraintEnforced) {
  CliRun r = cli({"run", "--hosts", "4", "--jobs", "2", "--workers", "4"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--workers"), std::string::npos);
}

TEST(Cli, ManyBandsSelectPrioPlane) {
  // 15 bands exceed htb's 8 prio levels; the CLI must switch data planes
  // rather than fail.
  CliRun r = cli({"run", SMALL, "--policy", "tls-one", "--bands", "15"});
  EXPECT_EQ(r.code, 0) << r.err;
}

TEST(Cli, BackgroundFlagAccepted) {
  CliRun r = cli({"run", SMALL, "--policy", "tls-rr", "--background"});
  EXPECT_EQ(r.code, 0) << r.err;
}

TEST(Cli, ExportPrefixWritesArtifacts) {
  std::string prefix = ::testing::TempDir() + "/tlsim_cli_export";
  CliRun r = cli({"run", SMALL, "--policy", "fifo", "--export-prefix", prefix});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("exported"), std::string::npos);
  for (const char* suffix : {".jobs.csv", ".barriers.csv", ".json"}) {
    std::ifstream in(prefix + suffix);
    EXPECT_TRUE(in.good()) << suffix;
    std::string first_line;
    std::getline(in, first_line);
    EXPECT_FALSE(first_line.empty()) << suffix;
    std::remove((prefix + suffix).c_str());
  }
}

TEST(Cli, ExportToBadPathFails) {
  CliRun r = cli({"run", SMALL, "--policy", "fifo", "--export-prefix",
                  "/nonexistent-dir-xyz/out"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("export failed"), std::string::npos);
}

TEST(Cli, TraceFilterUnknownCategoryRejected) {
  CliRun r = cli({"run", SMALL, "--trace-filter", "chunk,bogus"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("bogus"), std::string::npos) << r.err;
  // The error lists every valid category so the user can self-serve.
  for (const char* name : {"chunk", "qdisc", "htb", "rotation", "barrier",
                           "straggler", "sample", "flow", "ingress",
                           "compute"}) {
    EXPECT_NE(r.err.find(name), std::string::npos) << name << ": " << r.err;
  }
}

TEST(Cli, ReportFlagsWriteAttributionArtifacts) {
  std::string prefix = ::testing::TempDir() + "/tlsim_cli_report";
  CliRun r = cli({"run", SMALL, "--policy", "fifo",
                  "--report", prefix + ".txt",
                  "--report-csv", prefix + ".csv",
                  "--report-json", prefix + ".json"});
  EXPECT_EQ(r.code, 0) << r.err;
  std::ifstream text(prefix + ".txt");
  std::string first_line;
  std::getline(text, first_line);
  EXPECT_NE(first_line.find("tlsreport:"), std::string::npos);
  std::ifstream csv(prefix + ".csv");
  std::getline(csv, first_line);
  EXPECT_NE(first_line.find("job,iteration"), std::string::npos);
  std::ifstream json(prefix + ".json");
  std::getline(json, first_line);
  EXPECT_NE(first_line.find("\"schema\":\"tlsreport-v2\""), std::string::npos);
  for (const char* suffix : {".txt", ".csv", ".json"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST(Cli, ReportWorksWithNarrowTraceFilter) {
  // --report forces the analysis categories even when --trace-filter would
  // exclude them; the report must not silently degrade to all-`other`.
  std::string path = ::testing::TempDir() + "/tlsim_cli_report_narrow.txt";
  CliRun r = cli({"run", SMALL, "--policy", "fifo", "--trace-filter", "none",
                  "--report", path});
  EXPECT_EQ(r.code, 0) << r.err;
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  // Degraded analysis would attribute zero compute to every job's rollup.
  EXPECT_NE(buf.str().find("total wait"), std::string::npos);
  EXPECT_EQ(buf.str().find("compute 0 ("), std::string::npos) << buf.str();
  std::remove(path.c_str());
}

// Small dynamic-cluster scenario: finishes in well under a second.
#define SMALL_SCENARIO                                                  \
  "scenario", "--hosts", "4", "--cores", "4", "--scenario-jobs", "5",   \
      "--scenario-mean-s", "2", "--scenario-workers-min", "2",          \
      "--scenario-workers-max", "3", "--scenario-iters-min", "3",       \
      "--scenario-iters-max", "4", "--scenario-batch", "1",             \
      "--scenario-sample-s", "0"

TEST(Cli, ScenarioProducesTable) {
  CliRun r = cli({SMALL_SCENARIO, "--policy", "tls-one"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("policy"), std::string::npos);
  EXPECT_NE(r.out.find("mean JCT (s)"), std::string::npos);
  EXPECT_NE(r.out.find("TLs-One"), std::string::npos);
}

TEST(Cli, ScenarioCompareRunsAllPolicies) {
  CliRun r = cli({SMALL_SCENARIO, "--scenario-compare", "--csv"});
  EXPECT_EQ(r.code, 0) << r.err;
  for (const char* policy : {"FIFO", "TLs-One", "TLs-RR"}) {
    EXPECT_NE(r.out.find(policy), std::string::npos) << policy << "\n" << r.out;
  }
}

TEST(Cli, ScenarioUnknownFlagRejectedWithValidList) {
  CliRun r = cli({SMALL_SCENARIO, "--scenario-bogus", "1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown flag --scenario-bogus"), std::string::npos)
      << r.err;
  // The error lists every valid scenario flag so the user can self-serve.
  EXPECT_NE(r.err.find("--scenario-jobs"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("--scenario-csv"), std::string::npos) << r.err;
}

TEST(Cli, ScenarioBadArrivalsRejected) {
  CliRun r = cli({SMALL_SCENARIO, "--scenario-arrivals", "weibull"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("bad --scenario-arrivals 'weibull' (poisson|pareto)"),
            std::string::npos)
      << r.err;
}

TEST(Cli, ScenarioBadAdmissionRejected) {
  CliRun r = cli({SMALL_SCENARIO, "--scenario-admission", "drop"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("bad --scenario-admission 'drop'"), std::string::npos)
      << r.err;
  EXPECT_NE(r.err.find("share|queue|reject"), std::string::npos) << r.err;
}

TEST(Cli, ScenarioBadModelRejectedWithZooList) {
  CliRun r = cli({SMALL_SCENARIO, "--scenario-models", "resnet999"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("bad --scenario-models"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("unknown model 'resnet999'"), std::string::npos)
      << r.err;
  EXPECT_NE(r.err.find("resnet32_cifar10"), std::string::npos) << r.err;
}

TEST(Cli, ScenarioBadRangeRejected) {
  CliRun r = cli({SMALL_SCENARIO, "--scenario-evict-frac", "1.5"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--scenario-evict-frac must be <= 1"),
            std::string::npos)
      << r.err;
}

TEST(Cli, ScenarioBadNumberRejected) {
  CliRun r = cli({SMALL_SCENARIO, "--scenario-band-limit", "many"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("bad value for --scenario-band-limit"),
            std::string::npos)
      << r.err;
}

TEST(Cli, ScenarioWritesResultAndTraceArtifacts) {
  std::string prefix = ::testing::TempDir() + "/tlsim_cli_scenario";
  CliRun r = cli({SMALL_SCENARIO, "--policy", "tls-one",
                  "--scenario-out", prefix + ".json",
                  "--scenario-csv", prefix + ".csv",
                  "--scenario-trace-out", prefix + "_trace.csv"});
  EXPECT_EQ(r.code, 0) << r.err;
  std::ifstream json(prefix + ".json");
  std::string line;
  std::getline(json, line);
  EXPECT_EQ(line, "{");
  std::getline(json, line);
  EXPECT_NE(line.find("\"schema\": \"scenario-v1\""), std::string::npos);
  std::ifstream csv(prefix + ".csv");
  std::getline(csv, line);
  EXPECT_NE(line.find("job_id,model"), std::string::npos);
  std::ifstream trace(prefix + "_trace.csv");
  std::getline(trace, line);
  EXPECT_NE(line.find("job_id,arrival_s"), std::string::npos);
  for (const char* suffix : {".json", ".csv", "_trace.csv"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST(Cli, ScenarioTraceReplayRoundTrips) {
  // Export the generated trace, replay it, and check the replayed run
  // reports the same jobs.
  std::string path = ::testing::TempDir() + "/tlsim_cli_scenario_replay.csv";
  CliRun gen = cli({SMALL_SCENARIO, "--policy", "fifo", "--csv",
                    "--scenario-trace-out", path});
  ASSERT_EQ(gen.code, 0) << gen.err;
  CliRun replay = cli({SMALL_SCENARIO, "--policy", "fifo", "--csv",
                       "--scenario-trace", path});
  EXPECT_EQ(replay.code, 0) << replay.err;
  EXPECT_EQ(gen.out, replay.out);
  std::remove(path.c_str());
}

TEST(Cli, ScenarioMissingTraceFileRejected) {
  CliRun r = cli({SMALL_SCENARIO, "--scenario-trace", "/nonexistent/t.csv"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("cannot open --scenario-trace file"), std::string::npos)
      << r.err;
}

TEST(Cli, SweepBatchRuns) {
  CliRun r = cli({"sweep-batch", "--hosts", "5", "--jobs", "4", "--workers",
                  "4", "--iters", "3", "--link-gbps", "2.5", "--csv"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("batch,FIFO avg JCT (s)"), std::string::npos);
  // Five batch rows.
  EXPECT_NE(r.out.find("\n16,"), std::string::npos);
}

}  // namespace
}  // namespace tls::runtime
