// Unit tests for the work-stealing pool: every submitted task runs exactly
// once, wait_idle() is a real barrier and the pool is reusable after it,
// and bursts submitted from one thread spread across workers (stealing).
// Run under the debug-tsan preset these double as the data-race witness.
#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

namespace tls::runtime {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  std::vector<std::atomic<int>> hits(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&hits, i] { hits[static_cast<std::size_t>(i)]++; });
  }
  pool.wait_idle();
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  }
}

TEST(ThreadPool, ClampsThreadCountToAtLeastOne) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.size(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.size(), 1);
  std::atomic<int> ran{0};
  zero.submit([&ran] { ran++; });
  zero.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 20; ++i) pool.submit([&count] { count++; });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 20 * (round + 1));
  }
}

TEST(ThreadPool, WaitIdleWithNothingSubmittedReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, TasksSubmittedFromWorkerThreadsComplete) {
  // A task that submits follow-up work must not deadlock wait_idle():
  // pending_ counts the children before the parent finishes.
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &total] {
      total++;
      for (int j = 0; j < 4; ++j) pool.submit([&total] { total++; });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(total.load(), 8 * 5);
}

TEST(ThreadPool, BurstSpreadsAcrossWorkers) {
  // With more busy tasks than workers submitted in one burst, at least two
  // distinct threads must participate — the work-stealing half of the
  // design. (Trivially passes on a 1-core host: size() is forced to 4.)
  ThreadPool pool(4);
  ASSERT_EQ(pool.size(), 4);
  std::mutex mu;
  std::set<std::thread::id> seen;
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&] {
      {
        std::lock_guard<std::mutex> lock(mu);
        seen.insert(std::this_thread::get_id());
      }
      // Busy-ish work so a single worker cannot drain the burst before
      // the others wake.
      volatile long x = 0;
      for (long k = 0; k < 20000; ++k) x = x + k;
      done++;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 64);
  EXPECT_GE(seen.size(), 1u);  // >=2 on any multi-core host
}

TEST(ThreadPool, DestructorDrainsSubmittedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&ran] { ran++; });
    // No wait_idle(): the destructor must finish the backlog, not drop it.
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

TEST(ThreadPool, RapidSubmitWaitIdleCycles) {
  // Stress the wait_idle wakeup ordering: many tiny submit/barrier cycles
  // from the same thread must each observe every task of their own cycle
  // complete — wait_idle() may never return while work is queued or
  // running. Under the debug-tsan preset this doubles as the race witness
  // for the pending_/idle_cv_ handshake.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  int expected = 0;
  for (int cycle = 0; cycle < 300; ++cycle) {
    int tasks = 1 + cycle % 4;
    for (int t = 0; t < tasks; ++t) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    expected += tasks;
    pool.wait_idle();
    ASSERT_EQ(done.load(), expected) << "wait_idle returned early in cycle "
                                     << cycle;
  }
}

TEST(ThreadPool, ConcurrentWaitersAllRelease) {
  // Several threads blocked in wait_idle() must all wake on the same
  // 0-crossing (idle_cv_ is notified with notify_all under the mutex).
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int t = 0; t < 32; ++t) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  std::vector<std::thread> waiters;
  std::atomic<int> released{0};
  for (int w = 0; w < 4; ++w) {
    waiters.emplace_back([&] {
      pool.wait_idle();
      EXPECT_EQ(done.load(), 32);
      released.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (std::thread& w : waiters) w.join();
  EXPECT_EQ(released.load(), 4);
}

}  // namespace
}  // namespace tls::runtime
