// Parameterized property tests: invariants that must hold across the whole
// configuration space (placements x policies x fidelity knobs x seeds).
#include <gtest/gtest.h>

#include "exp/experiment.hpp"

namespace tls::exp {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig c;
  c.num_hosts = 6;
  c.workload.num_jobs = 6;
  c.workload.workers_per_job = 5;
  c.workload.local_batch_size = 1;
  c.workload.step_overhead = tls::sim::Time{0};
  c.workload.global_step_target = 5L * 8;
  c.fabric.link_rate = net::gbps(2.5);  // heavy-contention regime at small scale
  c.placement = cluster::table1(1, 6);
  c.controller.rotation_interval = 2 * sim::kSecond;
  return c;
}

// ---------------------------------------------------------------------------
// Placement x policy sweep.

struct SweepParam {
  int placement_index;
  core::PolicyKind policy;
};

class PlacementPolicySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PlacementPolicySweep, InvariantsHold) {
  const SweepParam& p = GetParam();
  ExperimentConfig c = small_config();
  c.placement = cluster::table1(p.placement_index, 6);
  c.controller.policy = p.policy;
  ExperimentResult r = run_experiment(c);

  EXPECT_TRUE(r.all_finished);
  ASSERT_EQ(r.jobs.size(), 6u);
  for (const JobResult& j : r.jobs) {
    EXPECT_TRUE(j.finished);
    EXPECT_GT(j.jct_s, 0);
    EXPECT_EQ(j.iterations, 8);
    // Barrier statistics are physical quantities.
    for (double m : j.barrier_mean_waits_s) EXPECT_GE(m, 0);
    for (double v : j.barrier_variances_s2) EXPECT_GE(v, 0);
  }
  if (p.policy == core::PolicyKind::kFifo) {
    EXPECT_EQ(r.tc_commands, 0u);
    EXPECT_EQ(r.rotations, 0u);
  } else {
    EXPECT_GT(r.tc_commands, 0u);
  }
  if (p.policy != core::PolicyKind::kTlsRR) {
    EXPECT_EQ(r.rotations, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPlacementsAllPolicies, PlacementPolicySweep,
    ::testing::Values(
        SweepParam{1, core::PolicyKind::kFifo},
        SweepParam{1, core::PolicyKind::kTlsOne},
        SweepParam{1, core::PolicyKind::kTlsRR},
        SweepParam{2, core::PolicyKind::kTlsOne},
        SweepParam{3, core::PolicyKind::kTlsRR},
        SweepParam{4, core::PolicyKind::kFifo},
        SweepParam{5, core::PolicyKind::kTlsOne},
        SweepParam{6, core::PolicyKind::kTlsRR},
        SweepParam{7, core::PolicyKind::kTlsOne},
        SweepParam{8, core::PolicyKind::kFifo},
        SweepParam{8, core::PolicyKind::kTlsRR}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "placement" + std::to_string(info.param.placement_index) + "_" +
             std::string(to_string(info.param.policy) == std::string("TLs-RR")
                             ? "TlsRR"
                             : (info.param.policy == core::PolicyKind::kFifo
                                    ? "Fifo"
                                    : "TlsOne"));
    });

// ---------------------------------------------------------------------------
// Seed sweep: the TLs-One benefit under heavy contention is not a fluke of
// one random stream.

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, TlsOneNeverWorseUnderHeavyContention) {
  ExperimentConfig c = small_config();
  c.seed = GetParam();
  ExperimentResult fifo = run_experiment(with_policy(c, core::PolicyKind::kFifo));
  ExperimentResult tls = run_experiment(with_policy(c, core::PolicyKind::kTlsOne));
  EXPECT_LT(avg_normalized_jct(tls, fifo), 1.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

// ---------------------------------------------------------------------------
// Fidelity-knob sweep: results must stay physical across chunk sizes and
// window sizes (no lost flows, conserved bytes, sane timings).

class ChunkSweep : public ::testing::TestWithParam<net::Bytes> {};

TEST_P(ChunkSweep, CompletesAndConserves) {
  ExperimentConfig c = small_config();
  c.fabric.chunk_size = GetParam();
  ExperimentResult r = run_experiment(with_policy(c, core::PolicyKind::kTlsRR));
  EXPECT_TRUE(r.all_finished);
  for (const JobResult& j : r.jobs) EXPECT_TRUE(j.finished);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, ChunkSweep,
                         ::testing::Values(32 * net::kKiB, 64 * net::kKiB,
                                           128 * net::kKiB, 512 * net::kKiB));

TEST(Properties, ChunkSizeDoesNotFlipTheConclusion) {
  // The TLs-One vs FIFO ordering is a property of the system, not the
  // discretization.
  for (net::Bytes chunk : {64 * net::kKiB, 256 * net::kKiB}) {
    ExperimentConfig c = small_config();
    c.fabric.chunk_size = chunk;
    ExperimentResult fifo = run_experiment(with_policy(c, core::PolicyKind::kFifo));
    ExperimentResult tls = run_experiment(with_policy(c, core::PolicyKind::kTlsOne));
    EXPECT_LT(avg_normalized_jct(tls, fifo), 1.0) << "chunk " << chunk;
  }
}

class WindowSweep : public ::testing::TestWithParam<int> {};

TEST_P(WindowSweep, Completes) {
  ExperimentConfig c = small_config();
  c.fabric.flow_window = GetParam();
  ExperimentResult r = run_experiment(with_policy(c, core::PolicyKind::kTlsOne));
  EXPECT_TRUE(r.all_finished);
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep, ::testing::Values(1, 2, 8, 16));

// ---------------------------------------------------------------------------
// Batch-size monotonicity (the Figure 5b mechanism): smaller batches mean
// heavier contention, so FIFO's barrier waits grow relative to compute.

class BatchSweep : public ::testing::TestWithParam<int> {};

TEST_P(BatchSweep, RunsAtAllContentionLevels) {
  ExperimentConfig c = small_config();
  c.workload.local_batch_size = GetParam();
  ExperimentResult r = run_experiment(with_policy(c, core::PolicyKind::kFifo));
  EXPECT_TRUE(r.all_finished);
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchSweep, ::testing::Values(1, 2, 4, 8));

TEST(Properties, SmallerBatchYieldsBiggerTlsBenefit) {
  auto norm_at = [](int batch) {
    ExperimentConfig c = small_config();
    c.workload.local_batch_size = batch;
    ExperimentResult fifo = run_experiment(with_policy(c, core::PolicyKind::kFifo));
    ExperimentResult tls = run_experiment(with_policy(c, core::PolicyKind::kTlsOne));
    return avg_normalized_jct(tls, fifo);
  };
  // Figure 5b: the improvement shrinks as the batch grows.
  EXPECT_LT(norm_at(1), norm_at(8) + 0.02);
}

// ---------------------------------------------------------------------------
// Assignment-strategy sweep.

class StrategySweep : public ::testing::TestWithParam<core::AssignStrategy> {};

TEST_P(StrategySweep, AllStrategiesWork) {
  ExperimentConfig c = small_config();
  c.controller.policy = core::PolicyKind::kTlsOne;
  c.controller.strategy = GetParam();
  ExperimentResult r = run_experiment(c);
  EXPECT_TRUE(r.all_finished);
  EXPECT_GT(r.tc_commands, 0u);
}

INSTANTIATE_TEST_SUITE_P(Strategies, StrategySweep,
                         ::testing::Values(core::AssignStrategy::kArrivalOrder,
                                           core::AssignStrategy::kRandom,
                                           core::AssignStrategy::kSmallestModelFirst));

// ---------------------------------------------------------------------------
// Data-plane equivalence: htb-with-ceil=link and prio bands produce the
// same qualitative behaviour.

TEST(Properties, PrioAndHtbDataPlanesBothBeatFifo) {
  ExperimentConfig c = small_config();
  ExperimentResult fifo = run_experiment(with_policy(c, core::PolicyKind::kFifo));
  for (auto plane : {core::DataPlane::kHtb, core::DataPlane::kPrio}) {
    ExperimentConfig pc = with_policy(c, core::PolicyKind::kTlsOne);
    pc.controller.data_plane = plane;
    ExperimentResult r = run_experiment(pc);
    EXPECT_TRUE(r.all_finished);
    EXPECT_LT(avg_normalized_jct(r, fifo), 1.0)
        << core::to_string(plane);
  }
}

// ---------------------------------------------------------------------------
// Rotation-interval sweep.

class RotationSweep : public ::testing::TestWithParam<int> {};

TEST_P(RotationSweep, RotationCountMatchesHorizon) {
  ExperimentConfig c = small_config();
  c.controller.policy = core::PolicyKind::kTlsRR;
  c.controller.rotation_interval = GetParam() * sim::kSecond;
  ExperimentResult r = run_experiment(c);
  EXPECT_TRUE(r.all_finished);
  // Rotations happen once per interval until the workload ends.
  std::uint64_t expected =
      static_cast<std::uint64_t>(r.sim_horizon_s / GetParam());
  EXPECT_NEAR(static_cast<double>(r.rotations), static_cast<double>(expected),
              2.0);
}

INSTANTIATE_TEST_SUITE_P(Intervals, RotationSweep, ::testing::Values(1, 2, 5));

}  // namespace
}  // namespace tls::exp
