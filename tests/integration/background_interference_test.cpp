// Interference properties: TensorLights' benefit must survive background
// cross-traffic, and the htb default class must keep that cross-traffic
// from starving behind prioritized model updates.
#include <gtest/gtest.h>

#include "exp/experiment.hpp"
#include "runtime/replicate.hpp"

namespace tls::exp {
namespace {

ExperimentConfig noisy_config(core::PolicyKind policy) {
  ExperimentConfig c;
  c.num_hosts = 8;
  c.workload.num_jobs = 8;
  c.workload.workers_per_job = 7;
  c.workload.local_batch_size = 1;
  c.workload.step_overhead = tls::sim::Time{0};
  c.workload.global_step_target = 7L * 12;
  c.fabric.link_rate = net::gbps(2.5);
  c.placement = cluster::table1(1, 8);
  c.controller.policy = policy;
  c.controller.rotation_interval = 2 * sim::kSecond;
  c.background = true;
  c.background_config.flows_per_second = 4;
  c.background_config.mean_bytes = 4 * net::kMiB;
  c.seed = 5;
  return c;
}

TEST(BackgroundInterference, JobsFinishWithCrossTraffic) {
  ExperimentResult r = run_experiment(noisy_config(core::PolicyKind::kTlsRR));
  EXPECT_TRUE(r.all_finished);
  EXPECT_GT(r.background_flows, 0u);
  EXPECT_GT(r.background_mean_fct_s, 0);
}

TEST(BackgroundInterference, TlsStillBeatsFifoUnderNoise) {
  ExperimentResult fifo = run_experiment(noisy_config(core::PolicyKind::kFifo));
  ExperimentResult tls = run_experiment(noisy_config(core::PolicyKind::kTlsOne));
  EXPECT_LT(avg_normalized_jct(tls, fifo), 1.0);
}

TEST(BackgroundInterference, DefaultClassPreventsStarvation) {
  // Background flows ride the htb default class (assured-rate share), so
  // their mean completion time under TensorLights must stay within a small
  // factor of the FIFO baseline's, not collapse to starvation.
  ExperimentResult fifo = run_experiment(noisy_config(core::PolicyKind::kFifo));
  ExperimentResult tls = run_experiment(noisy_config(core::PolicyKind::kTlsOne));
  ASSERT_GT(fifo.background_mean_fct_s, 0);
  ASSERT_GT(tls.background_mean_fct_s, 0);
  EXPECT_LT(tls.background_mean_fct_s, fifo.background_mean_fct_s * 5.0);
}

TEST(Replication, SeedsVaryResultsButNotConclusion) {
  ExperimentConfig base = noisy_config(core::PolicyKind::kFifo);
  base.background = false;
  auto fifo = runtime::run_replicated(base, 3);
  auto tls = runtime::run_replicated(with_policy(base, core::PolicyKind::kTlsOne), 3);
  metrics::Summary norm = normalized_across(tls, fifo);
  EXPECT_EQ(norm.count, 3u);
  EXPECT_LT(norm.max, 1.0);  // every seed agrees TLs wins here
  metrics::Summary jct = jct_across(fifo);
  EXPECT_GT(jct.stddev, 0);  // seeds actually differ
}

TEST(Replication, Validation) {
  ExperimentConfig base = noisy_config(core::PolicyKind::kFifo);
  EXPECT_THROW(runtime::run_replicated(base, 0), std::invalid_argument);
  std::vector<ExperimentResult> two(2), three(3);
  EXPECT_THROW(normalized_across(two, three), std::invalid_argument);
}

}  // namespace
}  // namespace tls::exp
