// Reproducibility contract of the whole pipeline: the same seeded
// experiment, run through a freshly constructed simulator each time, must
// export byte-identical metrics. Every figure and table in the paper
// reproduction rests on this; the determinism lint (tools/tls_lint) and the
// TLS_CHECK invariant layer exist to keep it true, and this test is the
// end-to-end witness.
#include <gtest/gtest.h>

#include "exp/experiment.hpp"
#include "runtime/replicate.hpp"
#include "exp/export.hpp"

namespace tls::exp {
namespace {

/// Small contended configuration (PSes colocated, slow link) so scheduling
/// decisions, tc reconfigurations, and RNG draws all genuinely interleave.
ExperimentConfig small_contended(core::PolicyKind policy) {
  ExperimentConfig c;
  c.num_hosts = 6;
  c.workload.num_jobs = 6;
  c.workload.workers_per_job = 5;
  c.workload.local_batch_size = 1;
  c.workload.step_overhead = tls::sim::Time{0};
  c.workload.global_step_target = 5L * 8;
  c.fabric.link_rate = net::gbps(2.5);
  c.placement = cluster::table1(1, 6);
  c.controller.policy = policy;
  c.controller.rotation_interval = 2 * sim::kSecond;
  c.seed = 17;
  return c;
}

/// Every export surface in one string, so a mismatch anywhere in the
/// pipeline — job metrics, barrier series, headline JSON — is caught.
std::string full_export(const ExperimentResult& r) {
  return jobs_csv(r) + "\n" + barriers_csv(r) + "\n" + to_json(r);
}

TEST(Determinism, SameSeedExportsAreByteIdentical) {
  ExperimentConfig config = small_contended(core::PolicyKind::kTlsOne);
  // Each run_experiment() call constructs a brand-new Simulator, fabric,
  // and coordinator, so agreement here means no state leaks across runs and
  // nothing nondeterministic feeds the metrics.
  ExperimentResult first = run_experiment(config);
  ExperimentResult second = run_experiment(config);
  EXPECT_EQ(full_export(first), full_export(second));
  EXPECT_EQ(first.sim_events, second.sim_events);
  EXPECT_EQ(first.tc_commands, second.tc_commands);
}

TEST(Determinism, EveryPolicyIsReproducible) {
  for (core::PolicyKind policy :
       {core::PolicyKind::kFifo, core::PolicyKind::kTlsOne,
        core::PolicyKind::kTlsRR}) {
    ExperimentConfig config = small_contended(policy);
    ExperimentResult first = run_experiment(config);
    ExperimentResult second = run_experiment(config);
    EXPECT_EQ(full_export(first), full_export(second))
        << "policy " << first.policy_name << " is not reproducible";
  }
}

TEST(Determinism, ReplicatedRunsMatchDirectRuns) {
  // runtime::run_replicated() seeds replicas as seed, seed+1, ... — each replica
  // must agree byte-for-byte with a direct run at that seed, so replicated
  // figures can be regenerated piecemeal.
  ExperimentConfig config = small_contended(core::PolicyKind::kTlsRR);
  std::vector<ExperimentResult> replicas = runtime::run_replicated(config, 2);
  ASSERT_EQ(replicas.size(), 2u);
  ExperimentConfig direct = config;
  for (int i = 0; i < 2; ++i) {
    direct.seed = config.seed + static_cast<std::uint64_t>(i);
    EXPECT_EQ(full_export(run_experiment(direct)),
              full_export(replicas[static_cast<std::size_t>(i)]))
        << "replica " << i << " diverged from a direct run at its seed";
  }
}

TEST(Determinism, BackgroundTrafficIsSeedStable) {
  // Poisson cross-traffic draws from forked Rng streams; two runs must
  // sample identical flow arrivals.
  ExperimentConfig config = small_contended(core::PolicyKind::kTlsOne);
  config.background = true;
  ExperimentResult first = run_experiment(config);
  ExperimentResult second = run_experiment(config);
  EXPECT_EQ(first.background_flows, second.background_flows);
  EXPECT_DOUBLE_EQ(first.background_mean_fct_s, second.background_mean_fct_s);
  EXPECT_EQ(full_export(first), full_export(second));
}

TEST(Determinism, DifferentSeedsDiverge) {
  // Sanity check on the witness itself: if exports were insensitive to the
  // seed, the byte-identical assertions above would be vacuous.
  ExperimentConfig config = small_contended(core::PolicyKind::kTlsOne);
  ExperimentResult a = run_experiment(config);
  config.seed = 18;
  ExperimentResult b = run_experiment(config);
  EXPECT_NE(full_export(a), full_export(b));
}

}  // namespace
}  // namespace tls::exp
