// Coordinated-transport integration: the centralized oracle vs TensorLights.
#include <gtest/gtest.h>

#include "exp/experiment.hpp"

namespace tls::exp {
namespace {

ExperimentConfig contended_base() {
  ExperimentConfig c;
  c.num_hosts = 8;
  c.workload.num_jobs = 8;
  c.workload.workers_per_job = 7;
  c.workload.local_batch_size = 1;
  c.workload.step_overhead = tls::sim::Time{0};
  c.workload.global_step_target = 7L * 12;
  c.fabric.link_rate = net::gbps(2.5);
  c.placement = cluster::table1(1, 8);
  c.controller.policy = core::PolicyKind::kFifo;
  c.seed = 3;
  return c;
}

TEST(CoordinatedTransport, RunsToCompletion) {
  ExperimentConfig c = contended_base();
  c.coordinated_transport = true;
  c.coordinator_config.coordination_rtt = tls::sim::Time{0};
  ExperimentResult r = run_experiment(c);
  EXPECT_TRUE(r.all_finished);
  EXPECT_GT(r.coordinator_grants, 0u);
  // Every model-update burst of every iteration asked for a slot.
  EXPECT_GE(r.coordinator_grants, 8u * 12u);
}

TEST(CoordinatedTransport, ZeroRttOracleBeatsFifo) {
  ExperimentResult fifo = run_experiment(contended_base());
  ExperimentConfig c = contended_base();
  c.coordinated_transport = true;
  c.coordinator_config.coordination_rtt = tls::sim::Time{0};
  ExperimentResult coord = run_experiment(c);
  EXPECT_LT(avg_normalized_jct(coord, fifo), 1.0);
  EXPECT_GT(coord.coordinator_wait_s, 0);
}

TEST(CoordinatedTransport, CoordinationOverheadErodesTheBenefit) {
  // The paper's Future Work caveat: "this approach incurs non-trivial
  // coordination overhead." Larger RTTs must not make things better.
  ExperimentConfig c = contended_base();
  c.coordinated_transport = true;
  c.coordinator_config.coordination_rtt = tls::sim::Time{0};
  double zero_rtt = run_experiment(c).avg_jct_s;
  c.coordinator_config.coordination_rtt = 20 * sim::kMillisecond;
  double slow_rtt = run_experiment(c).avg_jct_s;
  EXPECT_GT(slow_rtt, zero_rtt);
}

TEST(CoordinatedTransport, ComposesWithTensorLights) {
  // Both mechanisms on at once must still complete correctly (priorities
  // order what the coordinator admits).
  ExperimentConfig c = contended_base();
  c.controller.policy = core::PolicyKind::kTlsRR;
  c.controller.rotation_interval = 2 * sim::kSecond;
  c.coordinated_transport = true;
  ExperimentResult r = run_experiment(c);
  EXPECT_TRUE(r.all_finished);
  EXPECT_GT(r.tc_commands, 0u);
  EXPECT_GT(r.coordinator_grants, 0u);
}

}  // namespace
}  // namespace tls::exp
