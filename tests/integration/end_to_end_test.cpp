#include <gtest/gtest.h>

#include "exp/experiment.hpp"

namespace tls::exp {
namespace {

/// Small but genuinely contended configuration: 8 jobs' PSes on one host,
/// batch 1 (heavy contention knob from the paper's Figure 5b).
ExperimentConfig contended(core::PolicyKind policy, int iterations = 12) {
  ExperimentConfig c;
  c.num_hosts = 8;
  c.workload.num_jobs = 8;
  c.workload.workers_per_job = 7;
  c.workload.local_batch_size = 1;
  c.workload.step_overhead = tls::sim::Time{0};
  c.workload.global_step_target = 7L * iterations;
  // A slower link pushes the offered load past the iteration period, the
  // paper's heavy-contention regime, without needing 21 hosts.
  c.fabric.link_rate = net::gbps(2.5);
  c.placement = cluster::table1(1, 8);
  c.controller.policy = policy;
  c.controller.rotation_interval = 2 * sim::kSecond;
  c.seed = 3;
  return c;
}

TEST(EndToEnd, FifoRunsAllJobsToCompletion) {
  ExperimentResult r = run_experiment(contended(core::PolicyKind::kFifo));
  EXPECT_TRUE(r.all_finished);
  EXPECT_EQ(r.jobs.size(), 8u);
  for (const JobResult& j : r.jobs) {
    EXPECT_TRUE(j.finished);
    EXPECT_GT(j.jct_s, 0);
    EXPECT_EQ(j.iterations, 12);
    EXPECT_EQ(j.barrier_mean_waits_s.size(), 11u);  // last barrier unlogged
  }
  EXPECT_GT(r.avg_jct_s, 0);
  EXPECT_LE(r.min_jct_s, r.avg_jct_s);
  EXPECT_GE(r.max_jct_s, r.avg_jct_s);
  EXPECT_EQ(r.tc_commands, 0u);  // FIFO never touches tc
  EXPECT_EQ(r.policy_name, "FIFO");
}

TEST(EndToEnd, TlsOneImprovesContendedJct) {
  ExperimentResult fifo = run_experiment(contended(core::PolicyKind::kFifo));
  ExperimentResult tls = run_experiment(contended(core::PolicyKind::kTlsOne));
  EXPECT_TRUE(tls.all_finished);
  EXPECT_LT(tls.avg_jct_s, fifo.avg_jct_s);
  EXPECT_LT(avg_normalized_jct(tls, fifo), 0.97);
  EXPECT_GT(tls.tc_commands, 0u);
}

TEST(EndToEnd, TlsReducesBarrierWaitVariance) {
  ExperimentResult fifo = run_experiment(contended(core::PolicyKind::kFifo));
  ExperimentResult tls = run_experiment(contended(core::PolicyKind::kTlsOne));
  EXPECT_LT(tls.barrier_variance_summary.median,
            fifo.barrier_variance_summary.median);
}

TEST(EndToEnd, TlsRRRotatesAndStaysCompetitive) {
  ExperimentResult fifo = run_experiment(contended(core::PolicyKind::kFifo));
  ExperimentResult rr = run_experiment(contended(core::PolicyKind::kTlsRR));
  EXPECT_TRUE(rr.all_finished);
  EXPECT_GT(rr.rotations, 0u);
  EXPECT_LT(avg_normalized_jct(rr, fifo), 1.0);
}

TEST(EndToEnd, TlsRRFairerThanTlsOne) {
  // Rotation equalizes progress: the JCT spread across jobs under TLs-RR
  // must not exceed the spread under TLs-One's static priorities.
  ExperimentResult one = run_experiment(contended(core::PolicyKind::kTlsOne, 20));
  ExperimentResult rr = run_experiment(contended(core::PolicyKind::kTlsRR, 20));
  double spread_one = one.max_jct_s - one.min_jct_s;
  double spread_rr = rr.max_jct_s - rr.min_jct_s;
  EXPECT_LE(spread_rr, spread_one * 1.05);
}

TEST(EndToEnd, SpreadPlacementIsPolicyNeutral) {
  ExperimentConfig base = contended(core::PolicyKind::kFifo);
  base.placement = cluster::table1(8, 8);  // one PS per host
  ExperimentResult fifo = run_experiment(base);
  base.controller.policy = core::PolicyKind::kTlsOne;
  ExperimentResult tls = run_experiment(base);
  // Work conservation: no contention, no change (paper Result #1).
  EXPECT_NEAR(avg_normalized_jct(tls, fifo), 1.0, 0.02);
}

TEST(EndToEnd, ColocationHurtsFifo) {
  ExperimentConfig spread = contended(core::PolicyKind::kFifo);
  spread.placement = cluster::table1(8, 8);
  ExperimentResult colocated = run_experiment(contended(core::PolicyKind::kFifo));
  ExperimentResult even = run_experiment(spread);
  // Placement #1 must be clearly worse than #8 under FIFO (Figure 2).
  EXPECT_GT(colocated.avg_jct_s, even.avg_jct_s * 1.1);
  // And the straggler signal must be stronger (Figure 3).
  EXPECT_GT(colocated.barrier_variance_summary.mean,
            even.barrier_variance_summary.mean);
  EXPECT_GT(colocated.barrier_mean_summary.mean,
            even.barrier_mean_summary.mean);
}

TEST(EndToEnd, DeterministicForSameSeed) {
  ExperimentResult a = run_experiment(contended(core::PolicyKind::kTlsRR));
  ExperimentResult b = run_experiment(contended(core::PolicyKind::kTlsRR));
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].jct_s, b.jobs[i].jct_s);
  }
  EXPECT_EQ(a.sim_events, b.sim_events);
}

TEST(EndToEnd, SeedChangesResults) {
  ExperimentConfig c = contended(core::PolicyKind::kFifo);
  ExperimentResult a = run_experiment(c);
  c.seed = 99;
  ExperimentResult b = run_experiment(c);
  EXPECT_NE(a.jobs[0].jct_s, b.jobs[0].jct_s);
}

TEST(EndToEnd, UtilizationWindowPopulated) {
  ExperimentResult r = run_experiment(contended(core::PolicyKind::kFifo, 20));
  EXPECT_GT(r.active_window_end, r.active_window_begin);
  EXPECT_GT(r.cpu_util_ps_hosts, 0);
  EXPECT_GT(r.cpu_util_worker_hosts, 0);
  EXPECT_GT(r.nic_in_util, 0);
  EXPECT_GT(r.nic_out_util, 0);
  EXPECT_LE(r.nic_out_util, 1.0 + 1e-9);
}

TEST(EndToEnd, NormalizedJctsMatchedByJobId) {
  ExperimentResult fifo = run_experiment(contended(core::PolicyKind::kFifo));
  ExperimentResult tls = run_experiment(contended(core::PolicyKind::kTlsOne));
  auto norms = normalized_jcts(tls, fifo);
  EXPECT_EQ(norms.size(), 8u);
  for (double n : norms) {
    EXPECT_GT(n, 0.2);
    EXPECT_LT(n, 2.0);
  }
}

TEST(EndToEnd, MismatchedPlacementRejected) {
  ExperimentConfig c = contended(core::PolicyKind::kFifo);
  c.placement = cluster::table1(1, 9);  // 9 jobs vs 8 in workload
  EXPECT_THROW(run_experiment(c), std::invalid_argument);
}

TEST(EndToEnd, WithPolicyHelper) {
  ExperimentConfig c = contended(core::PolicyKind::kFifo);
  EXPECT_EQ(with_policy(c, core::PolicyKind::kTlsRR).controller.policy,
            core::PolicyKind::kTlsRR);
}

TEST(EndToEnd, AsyncTrainingRuns) {
  ExperimentConfig c = contended(core::PolicyKind::kTlsOne);
  c.workload.mode = dl::TrainingMode::kAsync;
  ExperimentResult r = run_experiment(c);
  EXPECT_TRUE(r.all_finished);
}

TEST(EndToEnd, MultiPsExperimentRuns) {
  ExperimentConfig c = contended(core::PolicyKind::kTlsRR);
  c.workload.ps_per_job = 2;
  ExperimentResult r = run_experiment(c);
  EXPECT_TRUE(r.all_finished);
  EXPECT_GT(r.tc_commands, 0u);
  for (const JobResult& j : r.jobs) EXPECT_TRUE(j.finished);
}

TEST(EndToEnd, ShardingRelievesColocation) {
  // Sharding each job's PS across two hosts halves the per-host burst at
  // placement #1, so even FIFO improves.
  ExperimentResult single = run_experiment(contended(core::PolicyKind::kFifo, 16));
  ExperimentConfig c = contended(core::PolicyKind::kFifo, 16);
  c.workload.ps_per_job = 2;
  ExperimentResult sharded = run_experiment(c);
  EXPECT_LT(sharded.avg_jct_s, single.avg_jct_s);
}

}  // namespace
}  // namespace tls::exp
