// Scale and cross-feature sweeps: the simulator must stay correct (and
// fast enough to test) beyond the paper's 21-host geometry, and the
// extensions must compose.
#include <gtest/gtest.h>

#include "exp/experiment.hpp"

namespace tls::exp {
namespace {

TEST(Scale, FortyHostCluster) {
  ExperimentConfig c;
  c.num_hosts = 40;
  c.workload.num_jobs = 40;
  c.workload.workers_per_job = 30;
  c.workload.local_batch_size = 1;
  c.workload.global_step_target = 30L * 5;
  c.placement = cluster::table1(1, 40);
  c.controller.policy = core::PolicyKind::kTlsRR;
  c.controller.rotation_interval = 5 * sim::kSecond;
  ExperimentResult r = run_experiment(c);
  EXPECT_TRUE(r.all_finished);
  EXPECT_EQ(r.jobs.size(), 40u);
}

TEST(Scale, SingleJobDegenerateCase) {
  ExperimentConfig c;
  c.num_hosts = 4;
  c.workload.num_jobs = 1;
  c.workload.workers_per_job = 3;
  c.workload.global_step_target = 3L * 4;
  c.placement = cluster::table1(1, 1);
  c.controller.policy = core::PolicyKind::kTlsOne;
  ExperimentResult r = run_experiment(c);
  EXPECT_TRUE(r.all_finished);
  // One job, no contention: TensorLights configures its PS host but the
  // schedule is identical to FIFO.
  ExperimentResult fifo = run_experiment(with_policy(c, core::PolicyKind::kFifo));
  EXPECT_NEAR(avg_normalized_jct(r, fifo), 1.0, 0.01);
}

struct ComboParam {
  int ps_per_job;
  bool two_sided;
  bool background;
};

class FeatureCombo : public ::testing::TestWithParam<ComboParam> {};

TEST_P(FeatureCombo, ExtensionsCompose) {
  const ComboParam& p = GetParam();
  ExperimentConfig c;
  c.num_hosts = 8;
  c.workload.num_jobs = 6;
  c.workload.workers_per_job = 5;
  c.workload.ps_per_job = p.ps_per_job;
  c.workload.local_batch_size = 1;
  c.workload.global_step_target = 5L * 6;
  c.placement = cluster::table1(1, 6);
  c.controller.policy = core::PolicyKind::kTlsRR;
  c.controller.rotation_interval = 2 * sim::kSecond;
  c.controller.prioritize_gradients = p.two_sided;
  c.background = p.background;
  ExperimentResult r = run_experiment(c);
  EXPECT_TRUE(r.all_finished);
  for (const JobResult& j : r.jobs) EXPECT_TRUE(j.finished);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, FeatureCombo,
    ::testing::Values(ComboParam{1, false, false}, ComboParam{2, false, false},
                      ComboParam{1, true, false}, ComboParam{2, true, false},
                      ComboParam{1, true, true}, ComboParam{3, false, true}),
    [](const ::testing::TestParamInfo<ComboParam>& info) {
      return "ps" + std::to_string(info.param.ps_per_job) +
             (info.param.two_sided ? "_twosided" : "_onesided") +
             (info.param.background ? "_noisy" : "_quiet");
    });

TEST(Scale, EventCountIsLinearInIterations) {
  auto events_for = [](long iters) {
    ExperimentConfig c;
    c.num_hosts = 6;
    c.workload.num_jobs = 4;
    c.workload.workers_per_job = 5;
    c.workload.global_step_target = 5 * iters;
    c.placement = cluster::table1(1, 4);
    c.controller.policy = core::PolicyKind::kFifo;
    return run_experiment(c).sim_events;
  };
  double ratio = static_cast<double>(events_for(20)) /
                 static_cast<double>(events_for(5));
  // 4x the iterations should cost roughly 4x the events (no quadratic
  // blowup from the allocator or queues).
  EXPECT_LT(ratio, 5.5);
  EXPECT_GT(ratio, 2.8);
}

}  // namespace
}  // namespace tls::exp
