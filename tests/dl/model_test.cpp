#include "dl/model.hpp"

#include <gtest/gtest.h>

#include <set>

#include "dl/job.hpp"

namespace tls::dl {
namespace {

TEST(ModelZoo, ResNet32MatchesPaperScale) {
  ModelSpec m = zoo::resnet32_cifar10();
  // ~0.46 M parameters -> ~1.87 MB fp32 update, the paper's payload.
  EXPECT_NEAR(static_cast<double>(m.parameters), 0.467e6, 0.01e6);
  EXPECT_NEAR(net::to_double(m.update_bytes()), 1.87e6, 0.05e6);
}

TEST(ModelZoo, UpdateBytesIsFourBytesPerParameter) {
  for (const ModelSpec& m : zoo::all()) {
    EXPECT_EQ(m.update_bytes(), tls::net::Bytes{m.parameters * 4}) << m.name;
  }
}

TEST(ModelZoo, AllModelsHavePositiveCosts) {
  for (const ModelSpec& m : zoo::all()) {
    EXPECT_GT(m.parameters, 0) << m.name;
    EXPECT_GT(m.ms_per_sample, 0) << m.name;
    EXPECT_FALSE(m.name.empty());
  }
}

TEST(ModelZoo, NamesUnique) {
  std::set<std::string> names;
  for (const ModelSpec& m : zoo::all()) names.insert(m.name);
  EXPECT_EQ(names.size(), zoo::all().size());
}

TEST(ModelZoo, LookupByName) {
  auto m = zoo::by_name("resnet32_cifar10");
  ASSERT_TRUE(m);
  EXPECT_EQ(m->parameters, zoo::resnet32_cifar10().parameters);
  EXPECT_FALSE(zoo::by_name("nonexistent_model"));
}

TEST(ModelZoo, RelativeSizesSane) {
  // VGG16 is the biggest classic model; ResNet-32/CIFAR is tiny.
  EXPECT_GT(zoo::vgg16().parameters, zoo::resnet50_imagenet().parameters);
  EXPECT_GT(zoo::resnet50_imagenet().parameters,
            zoo::resnet32_cifar10().parameters);
}

TEST(JobSpec, BaseStepTimeScalesWithBatch) {
  JobSpec spec;
  spec.model = zoo::resnet32_cifar10();
  spec.step_overhead = tls::sim::Time{0};
  spec.local_batch_size = 1;
  sim::Time t1 = spec.base_step_time();
  spec.local_batch_size = 8;
  EXPECT_EQ(spec.base_step_time(), 8 * t1);
}

TEST(JobSpec, StepOverheadAdds) {
  JobSpec spec;
  spec.model = zoo::resnet32_cifar10();
  spec.local_batch_size = 1;
  spec.step_overhead = sim::from_millis(100);
  JobSpec no_overhead = spec;
  no_overhead.step_overhead = tls::sim::Time{0};
  EXPECT_EQ(spec.base_step_time() - no_overhead.base_step_time(),
            sim::from_millis(100));
}

TEST(JobSpec, SyncIterationsCeils) {
  JobSpec spec;
  spec.num_workers = 20;
  spec.global_step_target = 30000;
  EXPECT_EQ(spec.sync_iterations(), 1500);  // the paper's numbers
  spec.global_step_target = 30001;
  EXPECT_EQ(spec.sync_iterations(), 1501);
}

}  // namespace
}  // namespace tls::dl
