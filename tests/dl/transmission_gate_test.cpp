// JobRuntime x TransmissionGate interaction: bursts wait for grants and
// always release, even across job completion.
#include <gtest/gtest.h>

#include <map>

#include "dl/job_runtime.hpp"

namespace tls::dl {
namespace {

/// Gate that records requests and grants immediately (asynchronously).
class RecordingGate : public TransmissionGate {
 public:
  explicit RecordingGate(sim::Simulator& simulator) : sim_(simulator) {}

  void request(net::HostId host, net::Bytes bytes,
               std::function<void()> grant) override {
    ++requests_;
    ++per_host_balance_[host];
    last_bytes_ = bytes;
    sim_.schedule_after(delay_, std::move(grant));
  }
  void release(net::HostId host) override {
    ++releases_;
    // Releases must pair with requests on the same host.
    EXPECT_GT(per_host_balance_[host], 0) << "release without request";
    --per_host_balance_[host];
  }

  void set_delay(sim::Time d) { delay_ = d; }
  int requests() const { return requests_; }
  int releases() const { return releases_; }
  net::Bytes last_bytes() const { return last_bytes_; }
  bool balanced() const {
    for (const auto& [host, n] : per_host_balance_) {
      (void)host;
      if (n != 0) return false;
    }
    return true;
  }

 private:
  sim::Simulator& sim_;
  sim::Time delay_ = tls::sim::Time{0};
  int requests_ = 0;
  int releases_ = 0;
  std::map<net::HostId, int> per_host_balance_;
  net::Bytes last_bytes_ = tls::net::Bytes{0};
};

net::FabricConfig ideal(int hosts) {
  net::FabricConfig c;
  c.num_hosts = hosts;
  c.tcp_weight_sigma = 0;
  c.protocol_overhead = 1.0;
  return c;
}

JobSpec small_job(int workers, std::int64_t target) {
  JobSpec spec;
  spec.model = zoo::resnet32_cifar10();
  spec.num_workers = workers;
  spec.local_batch_size = 1;
  spec.global_step_target = target;
  spec.compute_sigma = 0;
  spec.step_overhead = tls::sim::Time{0};
  spec.ps_port = 5000;
  return spec;
}

JobPlacement star(int workers) {
  JobPlacement p;
  p.ps_host = tls::net::HostId{0};
  for (int w = 0; w < workers; ++w) p.worker_hosts.push_back(net::HostId{1 + w});
  return p;
}

TEST(TransmissionGate, OneRequestAndReleasePerIteration) {
  sim::Simulator s(1);
  net::Fabric fab(s, ideal(4));
  RecordingGate gate(s);
  JobRuntime job(s, fab, small_job(3, 3 * 5), star(3));
  job.set_transmission_gate(&gate);
  job.start();
  s.run();
  EXPECT_TRUE(job.finished());
  // 5 iterations = 5 broadcasts.
  EXPECT_EQ(gate.requests(), 5);
  EXPECT_EQ(gate.releases(), 5);
  // The burst size is the whole fan-out.
  EXPECT_EQ(gate.last_bytes(),
            zoo::resnet32_cifar10().update_bytes() * 3);
}

TEST(TransmissionGate, GrantDelayStallsTheJob) {
  auto jct_with_delay = [](sim::Time delay) {
    sim::Simulator s(1);
    net::Fabric fab(s, ideal(4));
    RecordingGate gate(s);
    gate.set_delay(delay);
    JobRuntime job(s, fab, small_job(3, 3 * 4), star(3));
    job.set_transmission_gate(&gate);
    job.start();
    s.run();
    EXPECT_TRUE(job.finished());
    return job.jct();
  };
  sim::Time fast = jct_with_delay(tls::sim::Time{0});
  sim::Time slow = jct_with_delay(50 * sim::kMillisecond);
  // 4 iterations x 50 ms of gating each.
  EXPECT_NEAR(sim::to_seconds(slow - fast), 0.200, 0.02);
}

TEST(TransmissionGate, NoGateMeansNoCalls) {
  sim::Simulator s(1);
  net::Fabric fab(s, ideal(4));
  JobRuntime job(s, fab, small_job(3, 3 * 2), star(3));
  job.start();
  s.run();
  EXPECT_TRUE(job.finished());  // nothing to assert on the gate: none exists
}

TEST(TransmissionGate, MultiPsRequestsPerShard) {
  sim::Simulator s(1);
  net::Fabric fab(s, ideal(6));
  RecordingGate gate(s);
  JobSpec spec = small_job(3, 3 * 4);
  spec.num_ps = 2;
  JobPlacement p;
  p.ps_host = tls::net::HostId{0};
  p.ps_hosts = {tls::net::HostId{0}, tls::net::HostId{1}};
  p.worker_hosts = {tls::net::HostId{2}, tls::net::HostId{3}, tls::net::HostId{4}};
  JobRuntime job(s, fab, spec, p);
  job.set_transmission_gate(&gate);
  job.start();
  s.run();
  EXPECT_TRUE(job.finished());
  // 4 iterations x 2 shards.
  EXPECT_EQ(gate.requests(), 8);
  EXPECT_EQ(gate.releases(), 8);
  EXPECT_TRUE(gate.balanced());
}

}  // namespace
}  // namespace tls::dl
