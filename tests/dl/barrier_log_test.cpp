#include "dl/barrier_log.hpp"

#include <gtest/gtest.h>

namespace tls::dl {
namespace {

TEST(BarrierLog, RecordsMeanAndVariance) {
  BarrierLog log;
  log.record(0, {1.0, 2.0, 3.0});
  ASSERT_EQ(log.size(), 1u);
  const BarrierStats& s = log.stats()[0];
  EXPECT_EQ(s.iteration, 0);
  EXPECT_EQ(s.workers, 3);
  EXPECT_DOUBLE_EQ(s.mean_wait_s, 2.0);
  EXPECT_DOUBLE_EQ(s.var_wait_s2, 2.0 / 3.0);  // population variance
}

TEST(BarrierLog, UniformWaitsHaveZeroVariance) {
  BarrierLog log;
  log.record(5, {0.7, 0.7, 0.7, 0.7});
  EXPECT_DOUBLE_EQ(log.stats()[0].var_wait_s2, 0.0);
}

TEST(BarrierLog, SingleWorkerBarrier) {
  BarrierLog log;
  log.record(1, {0.42});
  EXPECT_DOUBLE_EQ(log.stats()[0].mean_wait_s, 0.42);
  EXPECT_DOUBLE_EQ(log.stats()[0].var_wait_s2, 0.0);
}

TEST(BarrierLog, ExtractionVectorsAligned) {
  BarrierLog log;
  log.record(0, {1.0, 3.0});
  log.record(1, {2.0, 2.0});
  auto means = log.mean_waits();
  auto vars = log.variances();
  ASSERT_EQ(means.size(), 2u);
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_DOUBLE_EQ(means[0], 2.0);
  EXPECT_DOUBLE_EQ(vars[0], 1.0);
  EXPECT_DOUBLE_EQ(means[1], 2.0);
  EXPECT_DOUBLE_EQ(vars[1], 0.0);
}

TEST(BarrierLog, StragglerRaisesVarianceNotMean) {
  // One straggler (everyone else waits long, straggler waits little):
  // exactly the paper's signature.
  BarrierLog log;
  log.record(0, {1.0, 1.0, 1.0, 1.0});        // balanced
  log.record(1, {1.3, 1.3, 1.3, 0.1});        // straggler in the last slot
  EXPECT_NEAR(log.stats()[0].mean_wait_s, log.stats()[1].mean_wait_s, 0.01);
  EXPECT_GT(log.stats()[1].var_wait_s2, log.stats()[0].var_wait_s2 + 0.1);
}

}  // namespace
}  // namespace tls::dl
