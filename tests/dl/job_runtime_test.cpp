#include "dl/job_runtime.hpp"

#include <gtest/gtest.h>

namespace tls::dl {
namespace {

net::FabricConfig small_fabric(int hosts) {
  net::FabricConfig c;
  c.num_hosts = hosts;
  c.tcp_weight_sigma = 0;
  c.protocol_overhead = 1.0;
  return c;
}

JobSpec small_job(int workers, std::int64_t target,
                  TrainingMode mode = TrainingMode::kSync) {
  JobSpec spec;
  spec.job_id = 0;
  spec.model = zoo::resnet32_cifar10();
  spec.num_workers = workers;
  spec.local_batch_size = 1;
  spec.global_step_target = target;
  spec.mode = mode;
  spec.compute_sigma = 0;  // deterministic
  spec.step_overhead = tls::sim::Time{0};
  spec.ps_port = 5000;
  return spec;
}

JobPlacement star_placement(int workers) {
  JobPlacement p;
  p.ps_host = tls::net::HostId{0};
  for (int w = 0; w < workers; ++w) p.worker_hosts.push_back(net::HostId{1 + w});
  return p;
}

TEST(JobRuntime, RunsToGlobalStepTarget) {
  sim::Simulator s(1);
  net::Fabric fab(s, small_fabric(3));
  JobRuntime job(s, fab, small_job(2, 10), star_placement(2));
  job.start();
  s.run();
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(job.global_step(), 10);
  EXPECT_EQ(job.iteration(), 5);
  EXPECT_GT(job.jct(), tls::sim::Time{0});
}

TEST(JobRuntime, TargetNotMultipleOfWorkersOvershoots) {
  sim::Simulator s(1);
  net::Fabric fab(s, small_fabric(4));
  JobRuntime job(s, fab, small_job(3, 10), star_placement(3));
  job.start();
  s.run();
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(job.global_step(), 12);  // 4 iterations x 3 workers
  EXPECT_EQ(job.iteration(), 4);
}

TEST(JobRuntime, BarrierLogRecordsAllButLastBarrier) {
  sim::Simulator s(1);
  net::Fabric fab(s, small_fabric(3));
  JobRuntime job(s, fab, small_job(2, 12), star_placement(2));
  job.start();
  s.run();
  // 6 iterations; the final barrier has no subsequent model update, so 5
  // barriers are logged.
  EXPECT_EQ(job.barrier_log().size(), 5u);
  for (const auto& b : job.barrier_log().stats()) EXPECT_EQ(b.workers, 2);
}

TEST(JobRuntime, DeterministicComputeGivesLowVariance) {
  sim::Simulator s(1);
  net::Fabric fab(s, small_fabric(3));
  JobRuntime job(s, fab, small_job(2, 10), star_placement(2));
  job.start();
  s.run();
  for (const auto& b : job.barrier_log().stats()) {
    EXPECT_LT(b.var_wait_s2, 1e-4);  // symmetric workers, no noise
  }
}

TEST(JobRuntime, IterationTimeMatchesComputePlusTransfers) {
  sim::Simulator s(1);
  net::Fabric fab(s, small_fabric(2));
  JobSpec spec = small_job(1, 4);
  spec.ps_aggregate_per_worker = tls::sim::Time{0};
  JobRuntime job(s, fab, spec, star_placement(1));
  job.start();
  s.run();
  // 4 iterations of (compute 150 ms + 2 transfers of ~1.5 ms each).
  double compute_s = sim::to_seconds(spec.base_step_time());
  double transfer_s = net::seconds_for(2.0 * 1'868'776, net::gbps(10));
  double expect = 4 * (compute_s + transfer_s);
  EXPECT_NEAR(sim::to_seconds(job.jct()), expect, expect * 0.1);
}

TEST(JobRuntime, AsyncModeReachesTarget) {
  sim::Simulator s(1);
  net::Fabric fab(s, small_fabric(3));
  JobRuntime job(s, fab, small_job(2, 10, TrainingMode::kAsync),
                 star_placement(2));
  job.start();
  s.run();
  EXPECT_TRUE(job.finished());
  EXPECT_GE(job.global_step(), 10);
}

TEST(JobRuntime, AsyncWorkersProgressIndependently) {
  sim::Simulator s(1);
  net::Fabric fab(s, small_fabric(3));
  JobSpec spec = small_job(2, 40, TrainingMode::kAsync);
  spec.compute_sigma = 0.5;  // strong noise: sync would force lockstep
  JobRuntime job(s, fab, spec, star_placement(2));
  job.start();
  s.run();
  EXPECT_TRUE(job.finished());
  // Async barrier log records per-worker waits as singletons.
  for (const auto& b : job.barrier_log().stats()) EXPECT_EQ(b.workers, 1);
}

TEST(JobRuntime, BusySinkSeesWorkerAndPsIntervals) {
  sim::Simulator s(1);
  net::Fabric fab(s, small_fabric(3));
  std::vector<net::HostId> hosts;
  JobRuntime job(
      s, fab, small_job(2, 4), star_placement(2), {},
      [&](net::HostId h, sim::Time b, sim::Time e) {
        EXPECT_LE(b, e);
        hosts.push_back(h);
      });
  job.start();
  s.run();
  bool saw_worker = false, saw_ps = false;
  for (net::HostId h : hosts) {
    if (h == tls::net::HostId{0}) saw_ps = true;
    if (h == tls::net::HostId{1 || h == tls::net::HostId{2}}) saw_worker = true;
  }
  EXPECT_TRUE(saw_worker);
  EXPECT_TRUE(saw_ps);
  EXPECT_GT(job.ps_busy(), tls::sim::Time{0});
  EXPECT_GT(job.worker_busy()[0], tls::sim::Time{0});
}

TEST(JobRuntime, OnFinishFiresOnce) {
  sim::Simulator s(1);
  net::Fabric fab(s, small_fabric(3));
  int finishes = 0;
  JobRuntime job(s, fab, small_job(2, 4), star_placement(2),
                 [&] { ++finishes; });
  job.start();
  s.run();
  EXPECT_EQ(finishes, 1);
}

TEST(JobRuntime, ValidatesConstruction) {
  sim::Simulator s(1);
  net::Fabric fab(s, small_fabric(3));
  JobSpec bad = small_job(2, 4);
  bad.num_workers = 0;
  EXPECT_THROW(JobRuntime(s, fab, bad, star_placement(0)), std::invalid_argument);
  bad = small_job(2, 4);
  EXPECT_THROW(JobRuntime(s, fab, bad, star_placement(3)),  // count mismatch
               std::invalid_argument);
  bad = small_job(2, 0);
  EXPECT_THROW(JobRuntime(s, fab, bad, star_placement(2)), std::invalid_argument);
}

TEST(JobRuntime, ComputeNoiseChangesWithSeedButNotWithJobId) {
  auto run_with = [](std::uint64_t seed) {
    sim::Simulator s(seed);
    net::Fabric fab(s, small_fabric(3));
    JobSpec spec = small_job(2, 10);
    spec.compute_sigma = 0.2;
    JobRuntime job(s, fab, spec, star_placement(2));
    job.start();
    s.run();
    return job.jct();
  };
  EXPECT_EQ(run_with(1), run_with(1));
  EXPECT_NE(run_with(1), run_with(2));
}

TEST(JobRuntime, SpreadWorkersOverFewerHostsStillWorks) {
  // Two workers on the same host (oversubscribed cluster).
  sim::Simulator s(1);
  net::Fabric fab(s, small_fabric(2));
  JobPlacement p;
  p.ps_host = tls::net::HostId{0};
  p.worker_hosts = {tls::net::HostId{1}, tls::net::HostId{1}};
  JobRuntime job(s, fab, small_job(2, 4), p);
  job.start();
  s.run();
  EXPECT_TRUE(job.finished());
}

TEST(JobRuntime, RequestStopEvictsMidFlight) {
  sim::Simulator s(1);
  net::Fabric fab(s, small_fabric(3));
  int finishes = 0;
  JobRuntime job(s, fab, small_job(2, 1'000'000), star_placement(2),
                 [&] { ++finishes; });
  job.start();
  s.run(s.now() + 1 * sim::kSecond);
  ASSERT_FALSE(job.finished());
  job.request_stop();
  EXPECT_TRUE(job.finished());
  EXPECT_TRUE(job.evicted());
  EXPECT_EQ(finishes, 1);
  EXPECT_LT(job.iteration(), 1'000'000);
  EXPECT_GT(job.jct(), sim::Time{0});
}

TEST(JobRuntime, RequestStopIsNoOpOnFinishedJob) {
  sim::Simulator s(1);
  net::Fabric fab(s, small_fabric(3));
  int finishes = 0;
  JobRuntime job(s, fab, small_job(2, 4), star_placement(2),
                 [&] { ++finishes; });
  job.start();
  s.run();
  ASSERT_TRUE(job.finished());
  job.request_stop();  // must not re-fire on_finish or flip evicted
  EXPECT_FALSE(job.evicted());
  EXPECT_EQ(finishes, 1);
}

TEST(JobRuntime, RequestStopBeforeStartGivesZeroLengthLifetime) {
  // A queued job can be cancelled before its staggered start.
  sim::Simulator s(1);
  net::Fabric fab(s, small_fabric(3));
  JobRuntime job(s, fab, small_job(2, 4), star_placement(2));
  job.request_stop();
  EXPECT_TRUE(job.finished());
  EXPECT_TRUE(job.evicted());
  EXPECT_EQ(job.jct(), sim::Time{0});
  EXPECT_EQ(job.iteration(), 0);
}

TEST(JobRuntime, CompletedJobIsNotEvicted) {
  sim::Simulator s(1);
  net::Fabric fab(s, small_fabric(3));
  JobRuntime job(s, fab, small_job(2, 4), star_placement(2));
  job.start();
  s.run();
  EXPECT_TRUE(job.finished());
  EXPECT_FALSE(job.evicted());
}

}  // namespace
}  // namespace tls::dl
