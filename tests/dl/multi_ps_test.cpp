// Sharded parameter-server tests: the paper's "general case where one DL
// job has multiple PSes, each PS communicates with remote workers in a
// similar way" (Section II).
#include <gtest/gtest.h>

#include "dl/job_runtime.hpp"

namespace tls::dl {
namespace {

net::FabricConfig ideal_fabric(int hosts) {
  net::FabricConfig c;
  c.num_hosts = hosts;
  c.tcp_weight_sigma = 0;
  c.protocol_overhead = 1.0;
  return c;
}

JobSpec sharded_job(int workers, int num_ps, std::int64_t target) {
  JobSpec spec;
  spec.job_id = 0;
  spec.model = zoo::resnet32_cifar10();
  spec.num_workers = workers;
  spec.num_ps = num_ps;
  spec.local_batch_size = 1;
  spec.global_step_target = target;
  spec.compute_sigma = 0;
  spec.step_overhead = tls::sim::Time{0};
  spec.ps_port = 5000;
  return spec;
}

JobPlacement sharded_placement(int workers, int num_ps) {
  JobPlacement p;
  p.ps_host = tls::net::HostId{0};
  for (int s = 0; s < num_ps; ++s) p.ps_hosts.push_back(net::HostId{s});
  for (int w = 0; w < workers; ++w) {
    p.worker_hosts.push_back(static_cast<net::HostId>(num_ps + w));
  }
  return p;
}

TEST(MultiPs, ShardPortsAndBytes) {
  JobSpec spec = sharded_job(4, 3, 12);
  EXPECT_EQ(spec.ps_shard_port(0), 5000);
  EXPECT_EQ(spec.ps_shard_port(2), 5002);
  // Shards cover the model with ceil rounding.
  EXPECT_GE(spec.shard_bytes() * 3, spec.model.update_bytes());
  EXPECT_LT(spec.shard_bytes() * 3, spec.model.update_bytes() + tls::net::Bytes{3});
}

TEST(MultiPs, PlacementAccessors) {
  JobPlacement p = sharded_placement(2, 3);
  EXPECT_EQ(p.ps_count(), 3);
  EXPECT_EQ(p.ps_shard_host(2), tls::net::HostId{2});
  JobPlacement single;
  single.ps_host = tls::net::HostId{7};
  EXPECT_EQ(single.ps_count(), 1);
  EXPECT_EQ(single.ps_shard_host(0), tls::net::HostId{7});
}

TEST(MultiPs, RunsToTargetWithTwoShards) {
  sim::Simulator s(1);
  net::Fabric fab(s, ideal_fabric(6));
  JobRuntime job(s, fab, sharded_job(3, 2, 12), sharded_placement(3, 2));
  job.start();
  s.run();
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(job.iteration(), 4);
  EXPECT_EQ(job.global_step(), 12);
}

TEST(MultiPs, BarrierLogStillPerJob) {
  sim::Simulator s(1);
  net::Fabric fab(s, ideal_fabric(6));
  JobRuntime job(s, fab, sharded_job(3, 2, 15), sharded_placement(3, 2));
  job.start();
  s.run();
  // 5 iterations -> 4 logged barriers, all with 3 workers.
  EXPECT_EQ(job.barrier_log().size(), 4u);
  for (const auto& b : job.barrier_log().stats()) EXPECT_EQ(b.workers, 3);
}

TEST(MultiPs, ShardingSpeedsUpColocatedBroadcast) {
  // One job, heavy updates: with every shard on a different host the
  // fan-out is parallelized across egress ports, so iterations are faster
  // than the single-PS equivalent.
  auto jct_with = [](int num_ps) {
    sim::Simulator s(1);
    net::Fabric fab(s, ideal_fabric(10));
    JobSpec spec = sharded_job(5, num_ps, 5 * 4);
    spec.model = zoo::alexnet();  // 244 MB updates: network-bound
    JobPlacement p;
    p.ps_host = tls::net::HostId{0};
    for (int k = 0; k < num_ps; ++k) p.ps_hosts.push_back(net::HostId{k});
    for (int w = 0; w < 5; ++w) p.worker_hosts.push_back(net::HostId{5 + w});
    JobRuntime job(s, fab, spec, p);
    job.start();
    s.run();
    EXPECT_TRUE(job.finished());
    return job.jct();
  };
  sim::Time one = jct_with(1);
  sim::Time four = jct_with(4);
  EXPECT_LT(four, one);
  EXPECT_LT(four, one * 3 / 4);
}

TEST(MultiPs, ValidatesShardCountAgainstPlacement) {
  sim::Simulator s(1);
  net::Fabric fab(s, ideal_fabric(6));
  EXPECT_THROW(
      JobRuntime(s, fab, sharded_job(3, 2, 12), sharded_placement(3, 3)),
      std::invalid_argument);
  JobSpec bad = sharded_job(3, 0, 12);
  EXPECT_THROW(JobRuntime(s, fab, bad, sharded_placement(3, 1)),
               std::invalid_argument);
}

TEST(MultiPs, AsyncRequiresSinglePs) {
  sim::Simulator s(1);
  net::Fabric fab(s, ideal_fabric(6));
  JobSpec spec = sharded_job(3, 2, 12);
  spec.mode = TrainingMode::kAsync;
  EXPECT_THROW(JobRuntime(s, fab, spec, sharded_placement(3, 2)),
               std::invalid_argument);
}

TEST(MultiPs, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Simulator s(5);
    net::Fabric fab(s, ideal_fabric(8));
    JobSpec spec = sharded_job(4, 3, 4 * 6);
    spec.compute_sigma = 0.2;
    JobRuntime job(s, fab, spec, sharded_placement(4, 3));
    job.start();
    s.run();
    return job.jct();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace tls::dl
