// Extension bench (paper Future Work #2): centralized transmission
// coordination vs end-host priorities. A zero-RTT coordinator is the
// oracle schedule (bursts perfectly serialized per host); realistic
// coordination round trips erode it, while TensorLights needs no
// coordination at all — the trade-off Section VII describes.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tls;
  bench::init(argc, argv);
  bench::Timing timing("ext_coordinator");
  bench::print_header(
      "Extension - centralized burst coordination vs TensorLights "
      "(placement #1)",
      "coordination can match priority scheduling but 'incurs non-trivial "
      "coordination overhead'");

  exp::ExperimentConfig base = bench::paper_config();
  const std::vector<double> rtts_ms = {0.0, 1.0, 5.0, 20.0};
  // Runs 0/1 are FIFO and TLs-RR; then one coordinated run per RTT.
  std::vector<exp::ExperimentConfig> configs;
  configs.push_back(exp::with_policy(base, core::PolicyKind::kFifo));
  configs.push_back(exp::with_policy(base, core::PolicyKind::kTlsRR));
  for (double rtt_ms : rtts_ms) {
    exp::ExperimentConfig c = exp::with_policy(base, core::PolicyKind::kFifo);
    c.coordinated_transport = true;
    c.coordinator_config.coordination_rtt = sim::from_millis(rtt_ms);
    configs.push_back(std::move(c));
  }
  std::vector<exp::ExperimentResult> results =
      bench::run_all(configs, &timing);
  const exp::ExperimentResult& fifo = results[0];
  const exp::ExperimentResult& tls = results[1];

  metrics::Table table({"scheme", "coordination RTT", "avg JCT (s)",
                        "norm vs FIFO", "grants", "burst queue wait (s)"});
  table.add_row({"FIFO", "-", metrics::fmt(fifo.avg_jct_s), "1.000", "-", "-"});
  table.add_row({"TLs-RR (local only)", "-", metrics::fmt(tls.avg_jct_s),
                 metrics::fmt(exp::avg_normalized_jct(tls, fifo), 3), "-",
                 "-"});
  for (std::size_t i = 0; i < rtts_ms.size(); ++i) {
    const exp::ExperimentResult& r = results[i + 2];
    table.add_row({"coordinator", metrics::fmt(rtts_ms[i], 0) + " ms",
                   metrics::fmt(r.avg_jct_s),
                   metrics::fmt(exp::avg_normalized_jct(r, fifo), 3),
                   std::to_string(r.coordinator_grants),
                   metrics::fmt(r.coordinator_wait_s, 1)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Reading: at RTT 0 the coordinator is the oracle; as the RTT grows\n"
      "each of the ~%ld bursts per job pays for two coordinator trips and\n"
      "the oracle loses to the coordination-free TensorLights.\n",
      bench::bench_iters());
  return 0;
}
