// Dynamic-cluster scenario benchmark: long-horizon JCT/utilization under
// churn, the regime the paper's static 21-host testbed never reaches.
//
// Three measurements:
//   1. Policy comparison — FIFO vs TLs-One vs TLs-RR over the identical
//      >= 1 h, >= 100-job Poisson trace (shared trace seed, per-policy
//      noise streams).
//   2. Band exhaustion — a small cluster under a heavy burst pushes PS
//      colocation past tc's 6-band budget: `share` admits and folds jobs
//      into shared bands (priorities stop being distinct), `queue` holds
//      them and queueing delay becomes the cost.
//   3. Rotation thrash — TLs-RR at a 1 s interval vs the paper's 20 s:
//      rotations and tc churn explode while JCT does not improve.
//
// Knobs:
//   TLS_BENCH_SCENARIO_JOBS   trace length for the policy comparison
//                             (default 120)
//   TLS_BENCH_SCENARIO_HOSTS  cluster size for the policy comparison
//                             (default 12)
//   TLS_BENCH_JOBS/--jobs     worker threads (results byte-identical at
//                             any thread count)
//   TLS_BENCH_JSON_DIR        where BENCH_scenario.json lands
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "metrics/report.hpp"
#include "runtime/scenario_runner.hpp"

namespace {

using tls::bench::env_long;
using tls::runtime::ScenarioPlan;
using tls::runtime::ScenarioReport;
using tls::scenario::Config;
using tls::scenario::Result;
namespace metrics = tls::metrics;
namespace sim = tls::sim;

long scenario_jobs() { return env_long("TLS_BENCH_SCENARIO_JOBS", 120); }
long scenario_hosts() { return env_long("TLS_BENCH_SCENARIO_HOSTS", 12); }

/// The >= 1 h policy-comparison workload: Poisson arrivals at a 36 s mean
/// spread `scenario_jobs()` jobs over ~72 min of simulated time. The
/// cluster mirrors the paper's contention setting: a role-agnostic
/// production scheduler (PS colocation emerges naturally, Section II),
/// batch 1 and a 2.5 Gb/s link so model updates — not compute — are the
/// bottleneck the bands arbitrate.
Config comparison_config() {
  Config c;
  c.num_hosts = static_cast<int>(scenario_hosts());
  c.cores_per_host = 6;
  c.scheduler = tls::cluster::SchedulerPolicy::kPsAgnostic;
  c.fabric.link_rate = tls::net::gbps(2.5);
  c.trace.num_jobs = static_cast<int>(scenario_jobs());
  c.trace.mean_interarrival_s = 36;
  c.trace.min_workers = 4;
  c.trace.max_workers = 8;
  c.trace.min_iterations = 40;
  c.trace.max_iterations = 160;
  c.trace.local_batch_size = 1;
  c.trace.evict_fraction = 0.1;  // light churn, as real clusters see
  c.trace.evict_min_s = 30;
  c.trace.evict_max_s = 120;
  c.trace.seed = tls::bench::bench_seed();
  c.seed = tls::bench::bench_seed() + 1;
  c.sample_period = sim::Time{0};  // occupancy gauges are not measured here
  return c;
}

/// Break-regime workload: a 4-host cluster hit by a 1 s-mean burst, so
/// tens of jobs overlap and per-host PS counts blow past the 6-band
/// budget.
Config burst_config(tls::cluster::AdmissionPolicy admission) {
  Config c;
  c.num_hosts = 4;
  c.cores_per_host = 6;
  c.admission = admission;
  c.controller.policy = tls::core::PolicyKind::kTlsOne;
  c.fabric.link_rate = tls::net::gbps(2.5);
  c.trace.num_jobs = 60;
  c.trace.mean_interarrival_s = 0.5;
  c.trace.min_workers = 2;
  c.trace.max_workers = 3;
  c.trace.min_iterations = 40;
  c.trace.max_iterations = 80;
  c.trace.local_batch_size = 1;
  c.trace.seed = tls::bench::bench_seed();
  c.seed = tls::bench::bench_seed() + 1;
  c.sample_period = sim::Time{0};
  return c;
}

Config rotation_config(sim::Time interval) {
  Config c = burst_config(tls::cluster::AdmissionPolicy::kShareBand);
  c.controller.policy = tls::core::PolicyKind::kTlsRR;
  c.controller.rotation_interval = interval;
  return c;
}

void add_row(metrics::Table& table, const std::string& label, const Result& r) {
  table.add_row({label, std::to_string(r.completed),
                 std::to_string(r.evicted + r.rejected + r.unfinished),
                 metrics::fmt(r.jct.mean), metrics::fmt(r.jct.median),
                 metrics::fmt(r.jct.p99), metrics::fmt(r.queue_wait.mean),
                 std::to_string(r.peak_ps_colocation),
                 metrics::fmt(r.cluster_cpu_util, 3),
                 std::to_string(r.rotations), std::to_string(r.tc_commands),
                 metrics::fmt(r.horizon_s, 1)});
}

}  // namespace

int main(int argc, char** argv) {
  tls::bench::init(argc, argv);
  auto wall_start = std::chrono::steady_clock::now();
  tls::bench::print_header(
      "Dynamic cluster: trace-driven churn scenarios (tls::scenario)",
      "TensorLights holds its JCT advantage as jobs arrive and depart; "
      "past 6 colocated PS jobs tc's band budget is the binding constraint");

  const int jobs = static_cast<int>(tls::bench::bench_jobs());
  long runs = 0;

  // --- 1. Policy comparison over the shared long-horizon trace. ---------
  ScenarioPlan plan = ScenarioPlan::policy_comparison(comparison_config());
  ScenarioReport cmp = tls::runtime::run_scenario_plan(plan, jobs);
  runs += static_cast<long>(cmp.results.size());

  metrics::Table table({"policy", "done", "other", "mean JCT (s)",
                        "p50 JCT", "p99 JCT", "mean wait (s)", "peak coloc",
                        "cpu util", "rotations", "tc cmds", "horizon (s)"});
  for (std::size_t i = 0; i < cmp.results.size(); ++i) {
    add_row(table, cmp.labels[i], cmp.results[i]);
  }
  std::printf("%ld-job Poisson trace, %ld hosts, identical workload per "
              "policy:\n\n%s\n",
              scenario_jobs(), scenario_hosts(), table.str().c_str());

  // --- 2. Band exhaustion: share vs queue under a burst. ----------------
  ScenarioPlan burst;
  burst.add("share-band", burst_config(tls::cluster::AdmissionPolicy::kShareBand));
  burst.add("queue", burst_config(tls::cluster::AdmissionPolicy::kQueue));
  ScenarioReport exhaust = tls::runtime::run_scenario_plan(burst, jobs);
  runs += static_cast<long>(exhaust.results.size());
  const Result& share = exhaust.results[0];
  const Result& queue = exhaust.results[1];

  metrics::Table btable({"admission", "done", "other", "mean JCT (s)",
                         "p50 JCT", "p99 JCT", "mean wait (s)", "peak coloc",
                         "cpu util", "rotations", "tc cmds", "horizon (s)"});
  add_row(btable, exhaust.labels[0], share);
  add_row(btable, exhaust.labels[1], queue);
  std::printf("Band exhaustion (4 hosts, 60 jobs at 0.5 s mean interarrival, "
              "6-band budget):\n\n%s\n",
              btable.str().c_str());
  std::printf("  share-band peak colocation %d (budget 6): %s\n\n",
              share.peak_ps_colocation,
              share.peak_ps_colocation > 6
                  ? "budget exceeded — bands shared, priorities collapse"
                  : "within budget at this scale");

  // --- 3. Rotation thrash: 1 s vs the paper's 20 s interval. ------------
  ScenarioPlan rot;
  rot.add("RR-1s", rotation_config(1 * sim::kSecond));
  rot.add("RR-20s", rotation_config(20 * sim::kSecond));
  ScenarioReport thrash = tls::runtime::run_scenario_plan(rot, jobs);
  runs += static_cast<long>(thrash.results.size());
  const Result& fast = thrash.results[0];
  const Result& slow = thrash.results[1];

  metrics::Table rtable({"interval", "done", "other", "mean JCT (s)",
                         "p50 JCT", "p99 JCT", "mean wait (s)", "peak coloc",
                         "cpu util", "rotations", "tc cmds", "horizon (s)"});
  add_row(rtable, thrash.labels[0], fast);
  add_row(rtable, thrash.labels[1], slow);
  std::printf("Rotation thrash (TLs-RR on the burst trace):\n\n%s\n",
              rtable.str().c_str());
  std::printf("  1 s rotation issues %.1fx the tc commands of 20 s for a "
              "%.1f%% JCT change\n\n",
              slow.tc_commands > 0
                  ? static_cast<double>(fast.tc_commands) /
                        static_cast<double>(slow.tc_commands)
                  : 0.0,
              slow.jct.mean > 0
                  ? 100.0 * (fast.jct.mean - slow.jct.mean) / slow.jct.mean
                  : 0.0);

  // --- Machine-readable summary (richer than bench::Timing's schema). ---
  double wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();
  const char* dir = std::getenv("TLS_BENCH_JSON_DIR");
  std::string path = std::string(dir != nullptr && *dir != '\0' ? dir : ".") +
                     "/BENCH_scenario.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"scenario\",\n"
                 "  \"wall_s\": %.6f,\n"
                 "  \"runs\": %ld,\n"
                 "  \"jobs\": %lld,\n"
                 "  \"seed\": %llu,\n"
                 "  \"trace_jobs\": %ld,\n"
                 "  \"hosts\": %ld,\n"
                 "  \"horizon_s\": %.6f,\n"
                 "  \"policies\": [\n",
                 wall_s, runs,
                 static_cast<long long>(tls::bench::resolved_jobs()),
                 static_cast<unsigned long long>(tls::bench::bench_seed()),
                 scenario_jobs(), scenario_hosts(),
                 cmp.results.empty() ? 0.0 : cmp.results[0].horizon_s);
    for (std::size_t i = 0; i < cmp.results.size(); ++i) {
      const Result& r = cmp.results[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"completed\": %zu, "
                   "\"mean_jct_s\": %.6f, \"p99_jct_s\": %.6f, "
                   "\"mean_wait_s\": %.6f, \"peak_ps_colocation\": %d, "
                   "\"rotations\": %llu, \"tc_commands\": %llu}%s\n",
                   cmp.labels[i].c_str(), r.completed, r.jct.mean, r.jct.p99,
                   r.queue_wait.mean, r.peak_ps_colocation,
                   static_cast<unsigned long long>(r.rotations),
                   static_cast<unsigned long long>(r.tc_commands),
                   i + 1 < cmp.results.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"band_exhaustion\": {\n"
                 "    \"band_budget\": 6,\n"
                 "    \"share_peak_ps_colocation\": %d,\n"
                 "    \"share_mean_jct_s\": %.6f,\n"
                 "    \"queue_mean_wait_s\": %.6f,\n"
                 "    \"queue_p99_wait_s\": %.6f,\n"
                 "    \"budget_exceeded\": %s\n"
                 "  },\n"
                 "  \"rotation_thrash\": {\n"
                 "    \"fast_interval_s\": 1,\n"
                 "    \"slow_interval_s\": 20,\n"
                 "    \"fast_rotations\": %llu,\n"
                 "    \"slow_rotations\": %llu,\n"
                 "    \"fast_tc_commands\": %llu,\n"
                 "    \"slow_tc_commands\": %llu,\n"
                 "    \"fast_mean_jct_s\": %.6f,\n"
                 "    \"slow_mean_jct_s\": %.6f\n"
                 "  }\n"
                 "}\n",
                 share.peak_ps_colocation, share.jct.mean, queue.queue_wait.mean,
                 queue.queue_wait.p99,
                 share.peak_ps_colocation > 6 ? "true" : "false",
                 static_cast<unsigned long long>(fast.rotations),
                 static_cast<unsigned long long>(slow.rotations),
                 static_cast<unsigned long long>(fast.tc_commands),
                 static_cast<unsigned long long>(slow.tc_commands),
                 fast.jct.mean, slow.jct.mean);
    std::fclose(f);
  }
  return 0;
}
