// Extension: synchronous vs asynchronous training under PS contention.
// The paper focuses on synchronous training (better accuracy) and notes
// async lets each worker proceed at its own pace; this bench measures how
// much of the placement-#1 penalty is a *barrier* phenomenon by removing
// the barrier.
#include "common.hpp"

int main() {
  using namespace tls;
  bench::print_header(
      "Extension - synchronous vs asynchronous training (placement #1)",
      "the straggler penalty is a synchronization-barrier phenomenon");

  metrics::Table table({"mode", "policy", "avg JCT (s)", "norm vs FIFO-sync"});
  exp::ExperimentConfig base = bench::paper_config();
  base.workload.local_batch_size = 1;

  exp::ExperimentResult fifo_sync =
      exp::run_experiment(exp::with_policy(base, core::PolicyKind::kFifo));
  for (auto mode : {dl::TrainingMode::kSync, dl::TrainingMode::kAsync}) {
    for (auto policy : {core::PolicyKind::kFifo, core::PolicyKind::kTlsRR}) {
      exp::ExperimentConfig c = exp::with_policy(base, policy);
      c.workload.mode = mode;
      exp::ExperimentResult r = exp::run_experiment(c);
      table.add_row({mode == dl::TrainingMode::kSync ? "sync" : "async",
                     r.policy_name, metrics::fmt(r.avg_jct_s),
                     metrics::fmt(r.avg_jct_s / fifo_sync.avg_jct_s, 3)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Reading: async escapes part of the FIFO penalty because no barrier\n"
      "amplifies a late worker into a whole-job stall, at the accuracy\n"
      "cost the paper cites; TensorLights closes the gap while keeping\n"
      "synchronous semantics.\n");
  return 0;
}
