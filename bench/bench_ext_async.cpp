// Extension: synchronous vs asynchronous training under PS contention.
// The paper focuses on synchronous training (better accuracy) and notes
// async lets each worker proceed at its own pace; this bench measures how
// much of the placement-#1 penalty is a *barrier* phenomenon by removing
// the barrier.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tls;
  bench::init(argc, argv);
  bench::Timing timing("ext_async");
  bench::print_header(
      "Extension - synchronous vs asynchronous training (placement #1)",
      "the straggler penalty is a synchronization-barrier phenomenon");

  exp::ExperimentConfig base = bench::paper_config();
  base.workload.local_batch_size = 1;

  // Row-major: mode-major, policy-minor; run 0 (sync, FIFO) doubles as
  // the normalization baseline.
  const dl::TrainingMode modes[2] = {dl::TrainingMode::kSync,
                                     dl::TrainingMode::kAsync};
  const core::PolicyKind policies[2] = {core::PolicyKind::kFifo,
                                        core::PolicyKind::kTlsRR};
  std::vector<exp::ExperimentConfig> configs;
  for (auto mode : modes) {
    for (auto policy : policies) {
      exp::ExperimentConfig c = exp::with_policy(base, policy);
      c.workload.mode = mode;
      configs.push_back(std::move(c));
    }
  }
  std::vector<exp::ExperimentResult> results =
      bench::run_all(configs, &timing);
  const exp::ExperimentResult& fifo_sync = results[0];

  metrics::Table table({"mode", "policy", "avg JCT (s)", "norm vs FIFO-sync"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const exp::ExperimentResult& r = results[i];
    table.add_row({i < 2 ? "sync" : "async", r.policy_name,
                   metrics::fmt(r.avg_jct_s),
                   metrics::fmt(r.avg_jct_s / fifo_sync.avg_jct_s, 3)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Reading: async escapes part of the FIFO penalty because no barrier\n"
      "amplifies a late worker into a whole-job stall, at the accuracy\n"
      "cost the paper cites; TensorLights closes the gap while keeping\n"
      "synchronous semantics.\n");
  return 0;
}
