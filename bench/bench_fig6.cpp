// Figure 6: distribution of barrier wait time under FIFO, TLs-One, and
// TLs-RR at placement #1. Paper: the *variance* of the barrier wait (the
// straggler signal) drops by 26% (mean) / 40% (median) under TLs-One and
// by 15% / 30% under TLs-RR, while the average waits stay in the same
// range (high-priority jobs wait less, low-priority jobs wait more).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tls;
  bench::init(argc, argv);
  bench::Timing timing("fig6");
  bench::print_header(
      "Figure 6 - barrier wait distributions by policy (placement #1)",
      "TLs-One cuts wait variance by 26% (mean) / 40% (median); "
      "TLs-RR by 15% / 30%");

  exp::ExperimentConfig c = bench::paper_config();
  core::PolicyKind policies[3] = {core::PolicyKind::kFifo,
                                  core::PolicyKind::kTlsOne,
                                  core::PolicyKind::kTlsRR};
  std::vector<exp::ExperimentConfig> configs;
  for (core::PolicyKind p : policies) {
    configs.push_back(exp::with_policy(c, p));
  }
  std::vector<exp::ExperimentResult> results =
      bench::run_all(configs, &timing);

  auto pooled = [](const exp::ExperimentResult& r, bool variance) {
    std::vector<double> out;
    for (const auto& j : r.jobs) {
      const auto& src = variance ? j.barrier_variances_s2 : j.barrier_mean_waits_s;
      out.insert(out.end(), src.begin(), src.end());
    }
    return out;
  };

  metrics::Table mean_table({"policy", "p10", "p25", "p50", "p75", "p90",
                             "mean", "unit"});
  for (int i = 0; i < 3; ++i) {
    bench::print_cdf_rows(mean_table, results[i].policy_name,
                          pooled(results[i], false), 1e3, "ms");
  }
  std::printf("(a) average barrier wait per barrier:\n%s\n",
              mean_table.str().c_str());

  metrics::Table var_table({"policy", "p10", "p25", "p50", "p75", "p90",
                            "mean", "unit"});
  for (int i = 0; i < 3; ++i) {
    bench::print_cdf_rows(var_table, results[i].policy_name,
                          pooled(results[i], true), 1e6, "ms^2");
  }
  std::printf("(b) variance of barrier wait per barrier:\n%s\n",
              var_table.str().c_str());

  metrics::Cdf fifo_var(pooled(results[0], true));
  for (int i = 1; i < 3; ++i) {
    metrics::Cdf v(pooled(results[i], true));
    double mean_red = 1.0 - v.mean() / fifo_var.mean();
    double med_red = 1.0 - v.value_at(0.5) / fifo_var.value_at(0.5);
    std::printf("%s variance reduction vs FIFO: mean %s, median %s   "
                "[paper: %s]\n",
                results[i].policy_name.c_str(),
                metrics::fmt_percent(mean_red).c_str(),
                metrics::fmt_percent(med_red).c_str(),
                i == 1 ? "26% / 40%" : "15% / 30%");
  }
  return 0;
}
