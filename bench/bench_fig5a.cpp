// Figure 5a: normalized JCT (relative to FIFO, same job) under TLs-One and
// TLs-RR for every Table I placement, local batch size 4.
// Paper: TLs-One up to -27%, TLs-RR up to -16% at placement #1; all
// policies comparable (~1.0) for placements #4 and above.
#include <algorithm>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tls;
  bench::init(argc, argv);
  bench::Timing timing("fig5a");
  bench::print_header(
      "Figure 5a - normalized JCT vs placement (batch 4)",
      "TLs-One up to -27%, TLs-RR up to -16%; ~1.0 for placements #4+");

  // Row-major: placement-major, policy-minor (FIFO, TLs-One, TLs-RR).
  std::vector<exp::ExperimentConfig> configs;
  for (int index = 1; index <= 8; ++index) {
    exp::ExperimentConfig c = bench::paper_config();
    c.placement = cluster::table1(index, 21);
    configs.push_back(exp::with_policy(c, core::PolicyKind::kFifo));
    configs.push_back(exp::with_policy(c, core::PolicyKind::kTlsOne));
    configs.push_back(exp::with_policy(c, core::PolicyKind::kTlsRR));
  }
  std::vector<exp::ExperimentResult> results =
      bench::run_all(configs, &timing);

  metrics::Table table({"placement", "TLs-One avg norm", "TLs-One min..max",
                        "TLs-RR avg norm", "TLs-RR min..max"});
  double best_one = 1.0, best_rr = 1.0;
  for (int index = 1; index <= 8; ++index) {
    std::size_t base = static_cast<std::size_t>(index - 1) * 3;
    const exp::ExperimentResult& fifo = results[base];
    const exp::ExperimentResult& one = results[base + 1];
    const exp::ExperimentResult& rr = results[base + 2];
    auto norms_one = exp::normalized_jcts(one, fifo);
    auto norms_rr = exp::normalized_jcts(rr, fifo);
    auto span = [](const std::vector<double>& v) {
      return metrics::fmt(*std::min_element(v.begin(), v.end()), 2) + ".." +
             metrics::fmt(*std::max_element(v.begin(), v.end()), 2);
    };
    double avg_one = exp::avg_normalized_jct(one, fifo);
    double avg_rr = exp::avg_normalized_jct(rr, fifo);
    best_one = std::min(best_one, avg_one);
    best_rr = std::min(best_rr, avg_rr);
    table.add_row({"#" + std::to_string(index), metrics::fmt(avg_one, 3),
                   span(norms_one), metrics::fmt(avg_rr, 3), span(norms_rr)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("best TLs-One improvement: %s   [paper: up to 27%%]\n",
              metrics::fmt_percent(1.0 - best_one).c_str());
  std::printf("best TLs-RR  improvement: %s   [paper: up to 16%%]\n",
              metrics::fmt_percent(1.0 - best_rr).c_str());
  return 0;
}
