// Streaming-vs-batch attribution engine benchmark: generate one contended
// multi-job trace, then time (a) obs::analyze over the materialized event
// vector and (b) StreamingAnalyzer::ingest one event at a time, reporting
// events/sec for each plus the streaming engine's peak retained records
// against the total event count — the bounded-memory headline (peak stays
// a small in-flight window while batch must hold every event).
//
// A capture-sampling row (qdisc=16, htb=16) shows the filter layer's effect
// on trace volume while the blame matrix stays integer-exact (analysis
// categories are never sampled).
#include <chrono>  // host wall timing only — bench/ is outside the src/ lint
#include <filesystem>

#include "common.hpp"
#include "obs/analysis.hpp"
#include "obs/reader.hpp"
#include "obs/streaming.hpp"
#include "obs/trace.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

long events_per_sec(std::size_t events, double secs) {
  return secs > 0.0 ? static_cast<long>(static_cast<double>(events) / secs)
                    : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tls;
  bench::init(argc, argv);
  bench::Timing timing("obs_streaming");
  bench::print_header(
      "Streaming attribution engine - throughput and retention vs batch",
      "per-iteration blame finalizes as barriers release; retained state is "
      "a bounded in-flight window, not the whole trace");

  // A contended consolidated placement so the blame matrix is non-trivial;
  // scaled like bench_attribution so the tracing run stays in seconds.
  exp::ExperimentConfig c;
  c.num_hosts = 6;
  c.workload.num_jobs = 3;
  c.workload.workers_per_job = 4;
  c.workload.global_step_target = 4L * bench::bench_iters();
  c.placement = cluster::table1(1, 3);
  c.seed = bench::bench_seed();

  auto capture = [&](const char* sample_spec) {
    exp::ExperimentConfig run = c;
    run.obs.trace_sample = sample_spec;
    const std::string path =
        (std::filesystem::temp_directory_path() / "tls_bench_obs_streaming")
            .string();
    std::filesystem::create_directories(path);
    run.obs.trace_csv_path =
        path + std::string("/trace") + (*sample_spec != '\0' ? "_sampled" : "") +
        ".csv";
    exp::run_experiment(run);
    std::vector<obs::TraceEvent> events;
    std::string error;
    if (!obs::read_trace_csv_file(run.obs.trace_csv_path, &events, &error)) {
      std::fprintf(stderr, "bench_obs_streaming: %s\n", error.c_str());
    }
    return events;
  };

  std::vector<obs::TraceEvent> events = capture("");
  timing.add_runs(1);

  // Batch: the whole vector at once, repeated for a stable number.
  const int reps = 3;
  auto t0 = std::chrono::steady_clock::now();
  std::string batch_json;
  for (int r = 0; r < reps; ++r) {
    batch_json = obs::report_json(obs::analyze(events));
  }
  double batch_s = seconds_since(t0) / reps;

  // Streaming: one ingest per event, finalizing behind barrier releases.
  t0 = std::chrono::steady_clock::now();
  std::string streaming_json;
  std::size_t peak = 0;
  for (int r = 0; r < reps; ++r) {
    obs::StreamingAnalyzer analyzer;
    for (const obs::TraceEvent& e : events) analyzer.ingest(e);
    obs::RunReport report = analyzer.finish();
    peak = analyzer.peak_retained_records();
    streaming_json = obs::report_json(report);
  }
  double streaming_s = seconds_since(t0) / reps;

  std::vector<obs::TraceEvent> sampled = capture("qdisc=16,htb=16");
  timing.add_runs(1);

  metrics::Table table({"engine", "events", "wall ms", "events/sec",
                        "peak retained", "retained %"});
  table.add_row({"batch (analyze)", std::to_string(events.size()),
                 metrics::fmt(batch_s * 1e3, 1),
                 std::to_string(events_per_sec(events.size(), batch_s)),
                 std::to_string(events.size()), "100"});
  table.add_row(
      {"streaming", std::to_string(events.size()),
       metrics::fmt(streaming_s * 1e3, 1),
       std::to_string(events_per_sec(events.size(), streaming_s)),
       std::to_string(peak),
       events.empty()
           ? "0"
           : std::to_string(peak * 100 / events.size())});
  table.add_row({"streaming (qdisc=16,htb=16)", std::to_string(sampled.size()),
                 "-", "-", "-",
                 events.empty()
                     ? "0"
                     : std::to_string(sampled.size() * 100 / events.size())});
  std::printf("%s\n", table.str().c_str());

  std::printf("identical output: %s\n",
              batch_json == streaming_json ? "yes (byte-for-byte)"
                                           : "NO - BUG");
  std::printf(
      "\"peak retained\" is the streaming engine's high-water record count;\n"
      "the last row shows capture-sampling shrinking the trace itself while\n"
      "analysis categories stay exact.\n");
  return batch_json == streaming_json ? 0 : 1;
}
