// Simulator-core microbenchmark: the calendar-queue EventQueue against the
// seed binary-heap implementation it replaced, plus a 1000-host synthetic
// fabric drain exercising the SoA chunk rings and the fast-forward lane.
//
// The legacy queue is embedded below verbatim (modulo namespace) so the
// comparison always measures the actual seed behavior — in particular its
// O(n) cancel scan, which is the quadratic path this revision removes.
//
// Knobs:
//   TLS_BENCH_SIMCORE_OPS   reference op count per queue mix (default 20000;
//                           the CI sanitizer smoke uses a much smaller value)
//   TLS_BENCH_ITERS/--iters scales the fabric drain (bytes per flow)
//   TLS_BENCH_JSON_DIR      where BENCH_simcore.json lands
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <utility>
#include <vector>

#include "common.hpp"
#include "net/fabric.hpp"
#include "simcore/event_queue.hpp"
#include "simcore/simulator.hpp"

namespace legacy {

using tls::sim::Time;
using tls::sim::kTimeMin;

struct EventId {
  std::uint64_t seq = 0;
};

/// The seed binary-heap queue, kept as the benchmark baseline. Cancellation
/// is an O(n) heap scan plus a sorted-insert tombstone set.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventId schedule(Time at, Callback cb) {
    std::uint64_t seq = next_seq_++;
    heap_.push_back(Entry{at, seq, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
    ++live_;
    return EventId{seq};
  }

  bool cancel(EventId id) {
    if (id.seq == 0 || id.seq >= next_seq_) return false;
    if (is_cancelled(id.seq)) return false;
    // The event may already have fired; verify it is still in the heap.
    bool pending = std::any_of(heap_.begin(), heap_.end(),
                               [&](const Entry& e) { return e.seq == id.seq; });
    if (!pending) return false;
    auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), id.seq);
    cancelled_.insert(it, id.seq);
    --live_;
    return true;
  }

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  Time peek_time() {
    skim();
    return heap_.front().at;
  }

  std::pair<Time, Callback> pop() {
    skim();
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    --live_;
    last_pop_time_ = e.at;
    return {e.at, std::move(e.cb)};
  }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    Callback cb;
    bool operator>(const Entry& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  bool is_cancelled(std::uint64_t seq) const {
    return std::binary_search(cancelled_.begin(), cancelled_.end(), seq);
  }

  void skim() {
    while (!heap_.empty() && is_cancelled(heap_.front().seq)) {
      std::uint64_t seq = heap_.front().seq;
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
      heap_.pop_back();
      auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), seq);
      cancelled_.erase(it);
    }
  }

  std::vector<Entry> heap_;
  std::vector<std::uint64_t> cancelled_;  // sorted-insert small set
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  Time last_pop_time_ = kTimeMin;
};

}  // namespace legacy

namespace {

using tls::sim::Time;

/// Deterministic 64-bit LCG: both queues see the identical op stream.
struct Lcg {
  std::uint64_t s;
  std::uint64_t next() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return s >> 33;
  }
};

struct MixResult {
  std::uint64_t events = 0;  // schedules + cancels + pops performed
  double wall_s = 0.0;
  double events_per_sec() const {
    return wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0;
  }
};

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Transmit-completion pattern: monotone near-future schedules interleaved
/// with pops — the shape a busy NIC drives.
template <class Q>
MixResult run_fifo_mix(std::size_t n) {
  Q q;
  Lcg rng{11};
  MixResult r;
  double t0 = now_s();
  Time horizon = tls::sim::Time{0};
  for (std::size_t i = 0; i < n; ++i) {
    q.schedule(horizon + static_cast<Time>(rng.next() % 4096), [] {});
    if (i % 2 == 1) {
      horizon = q.peek_time();
      q.pop();
    }
  }
  while (!q.empty()) q.pop();
  r.events = 2 * n;
  r.wall_s = now_s() - t0;
  return r;
}

/// Retry-timer pattern: a large standing set where half the handles are
/// cancelled before firing. This is the seed queue's quadratic path.
template <class Q>
MixResult run_cancel_heavy(std::size_t n) {
  Q q;
  Lcg rng{22};
  std::vector<decltype(q.schedule(Time{0}, [] {}))> ids;
  ids.reserve(n);
  MixResult r;
  double t0 = now_s();
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(q.schedule(static_cast<Time>(rng.next() % (1u << 26)), [] {}));
  }
  for (std::size_t i = 0; i < n; i += 2) q.cancel(ids[i]);
  while (!q.empty()) q.pop();
  r.events = 2 * n;  // n schedules + n/2 cancels + n/2 pops
  r.wall_s = now_s() - t0;
  return r;
}

/// Random mix over spread-out horizons: exercises the overflow tier and
/// window re-anchoring on the calendar side.
template <class Q>
MixResult run_mixed_horizon(std::size_t n) {
  Q q;
  Lcg rng{33};
  std::vector<decltype(q.schedule(Time{0}, [] {}))> ids;
  MixResult r;
  double t0 = now_s();
  Time horizon = tls::sim::Time{0};
  for (std::size_t op = 0; op < n; ++op) {
    std::uint64_t roll = rng.next() % 100;
    if (roll < 50 || q.empty()) {
      ids.push_back(q.schedule(
          horizon + static_cast<Time>(rng.next() % (1u << 20)), [] {}));
    } else if (roll < 70 && !ids.empty()) {
      q.cancel(ids[rng.next() % ids.size()]);
    } else {
      horizon = q.pop().first;
    }
  }
  while (!q.empty()) q.pop();
  r.events = n;
  r.wall_s = now_s() - t0;
  return r;
}

struct DrainResult {
  int hosts = 0;
  std::uint64_t flows = 0;
  std::uint64_t sim_events = 0;
  double wall_s = 0.0;
  double events_per_sec = 0.0;
  double ff_hit_rate = 0.0;
  std::uint64_t window_jumps = 0;
  std::uint64_t overflow_pulls = 0;
};

/// 1000 hosts on the star fabric, one bulk flow per host to a distant peer,
/// run to completion. Deep per-port backlogs (large flow window) keep the
/// fast-forward staging lane hot.
DrainResult run_drain(int hosts, tls::net::Bytes bytes_per_flow) {
  tls::sim::Simulator simulator(1);
  tls::net::FabricConfig config;
  config.num_hosts = hosts;
  config.chunk_size = 64 * tls::net::kKiB;
  config.flow_window = 32;
  tls::net::Fabric fabric(simulator, config);
  std::uint64_t completed = 0;
  for (int h = 0; h < hosts; ++h) {
    tls::net::FlowSpec spec;
    spec.src = tls::net::HostId{h};
    spec.dst = tls::net::HostId{(h + hosts / 2 + 1) % hosts};
    spec.bytes = bytes_per_flow;
    fabric.start_flow(spec, [&completed](const tls::net::FlowRecord&) {
      ++completed;
    });
  }
  double t0 = now_s();
  simulator.run();
  DrainResult r;
  r.wall_s = now_s() - t0;
  r.hosts = hosts;
  r.flows = completed;
  r.sim_events = simulator.dispatched();
  r.events_per_sec =
      r.wall_s > 0 ? static_cast<double>(r.sim_events) / r.wall_s : 0.0;
  std::uint64_t promotions = 0;
  std::uint64_t polls = 0;
  for (int h = 0; h < hosts; ++h) {
    promotions += fabric.egress(tls::net::HostId{h}).ff_promotions();
    polls += fabric.egress(tls::net::HostId{h}).ff_polls();
  }
  if (promotions + polls > 0) {
    r.ff_hit_rate = static_cast<double>(promotions) /
                    static_cast<double>(promotions + polls);
  }
  r.window_jumps = simulator.queue_stats().window_jumps;
  r.overflow_pulls = simulator.queue_stats().overflow_pulls;
  return r;
}

void write_json(std::size_t ops, const MixResult& fifo_new,
                const MixResult& fifo_old, const MixResult& cancel_new,
                const MixResult& cancel_old, const MixResult& mixed_new,
                const MixResult& mixed_old, const DrainResult& drain,
                double total_wall_s) {
  const char* dir = std::getenv("TLS_BENCH_JSON_DIR");
  std::string path = std::string(dir != nullptr && *dir != '\0' ? dir : ".") +
                     "/BENCH_simcore.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;  // timing is best-effort, never fails a bench
  auto ratio = [](const MixResult& a, const MixResult& b) {
    return b.events_per_sec() > 0 ? a.events_per_sec() / b.events_per_sec()
                                  : 0.0;
  };
  std::fprintf(
      f,
      "{\n"
      "  \"bench\": \"simcore\",\n"
      "  \"wall_s\": %.6f,\n"
      "  \"iters\": %lld,\n"
      "  \"ref_ops\": %llu,\n"
      "  \"fifo_mix\": {\"calendar_eps\": %.0f, \"heap_eps\": %.0f, "
      "\"speedup\": %.2f},\n"
      "  \"cancel_heavy\": {\"calendar_eps\": %.0f, \"heap_eps\": %.0f, "
      "\"speedup\": %.2f},\n"
      "  \"mixed_horizon\": {\"calendar_eps\": %.0f, \"heap_eps\": %.0f, "
      "\"speedup\": %.2f},\n"
      "  \"drain\": {\"hosts\": %d, \"flows\": %llu, \"sim_events\": %llu,\n"
      "            \"events_per_sec\": %.0f, \"ff_hit_rate\": %.4f,\n"
      "            \"window_jumps\": %llu, \"overflow_pulls\": %llu}\n"
      "}\n",
      total_wall_s, static_cast<long long>(tls::bench::bench_iters()),
      static_cast<unsigned long long>(ops), fifo_new.events_per_sec(),
      fifo_old.events_per_sec(), ratio(fifo_new, fifo_old),
      cancel_new.events_per_sec(), cancel_old.events_per_sec(),
      ratio(cancel_new, cancel_old), mixed_new.events_per_sec(),
      mixed_old.events_per_sec(), ratio(mixed_new, mixed_old), drain.hosts,
      static_cast<unsigned long long>(drain.flows),
      static_cast<unsigned long long>(drain.sim_events), drain.events_per_sec,
      drain.ff_hit_rate, static_cast<unsigned long long>(drain.window_jumps),
      static_cast<unsigned long long>(drain.overflow_pulls));
  std::fclose(f);
}

void print_mix(const char* name, const MixResult& calendar,
               const MixResult& heap) {
  double speedup = heap.events_per_sec() > 0
                       ? calendar.events_per_sec() / heap.events_per_sec()
                       : 0.0;
  std::printf("%-14s  calendar %12.0f ev/s   heap %12.0f ev/s   %7.1fx\n",
              name, calendar.events_per_sec(), heap.events_per_sec(), speedup);
}

}  // namespace

int main(int argc, char** argv) {
  tls::bench::init(argc, argv);
  tls::bench::print_header(
      "bench_simcore: event-queue and fabric-drain throughput",
      "simulator core must sustain datacenter-scale event rates");

  std::size_t ops = static_cast<std::size_t>(
      tls::bench::env_long("TLS_BENCH_SIMCORE_OPS", 20000));
  double t0 = now_s();

  std::printf("Queue mixes (%llu reference ops each):\n",
              static_cast<unsigned long long>(ops));
  MixResult fifo_new = run_fifo_mix<tls::sim::EventQueue>(ops);
  MixResult fifo_old = run_fifo_mix<legacy::EventQueue>(ops);
  print_mix("fifo", fifo_new, fifo_old);
  MixResult cancel_new = run_cancel_heavy<tls::sim::EventQueue>(ops);
  MixResult cancel_old = run_cancel_heavy<legacy::EventQueue>(ops);
  print_mix("cancel-heavy", cancel_new, cancel_old);
  MixResult mixed_new = run_mixed_horizon<tls::sim::EventQueue>(ops);
  MixResult mixed_old = run_mixed_horizon<legacy::EventQueue>(ops);
  print_mix("mixed-horizon", mixed_new, mixed_old);

  // Fabric drain: 1000 hosts, one flow each, scaled by --iters.
  int hosts = static_cast<int>(tls::bench::env_long("TLS_BENCH_SIMCORE_HOSTS",
                                                    1000));
  tls::net::Bytes bytes_per_flow =
      64 * tls::net::kKiB *
      static_cast<std::int64_t>(tls::bench::bench_iters());
  DrainResult drain = run_drain(hosts, bytes_per_flow);
  std::printf(
      "\n%d-host drain: %llu flows, %llu sim events in %.2fs "
      "(%.0f ev/s), ff hit rate %.1f%%\n",
      drain.hosts, static_cast<unsigned long long>(drain.flows),
      static_cast<unsigned long long>(drain.sim_events), drain.wall_s,
      drain.events_per_sec, 100.0 * drain.ff_hit_rate);

  write_json(ops, fifo_new, fifo_old, cancel_new, cancel_old, mixed_new,
             mixed_old, drain, now_s() - t0);

  bool ok = drain.flows == static_cast<std::uint64_t>(drain.hosts);
  std::printf("\n%s\n", ok ? "DRAIN-COMPLETE" : "DRAIN-INCOMPLETE");
  return ok ? 0 : 1;
}
