// Ablation: how many priority bands are enough? The paper notes tc offers
// a limited number of bands (they use up to 6, so 21 jobs share bands).
// We sweep the band count; 1 band degenerates to FIFO-like sharing, and
// returns diminish once bands approach the number of colocated jobs.
#include "common.hpp"

int main() {
  using namespace tls;
  bench::print_header(
      "Ablation - priority band count (placement #1, TLs-One)",
      "the paper uses <= 6 bands and lets 21 jobs share them");

  exp::ExperimentConfig base = bench::paper_config();
  exp::ExperimentResult fifo =
      exp::run_experiment(exp::with_policy(base, core::PolicyKind::kFifo));

  metrics::Table table({"bands", "data plane", "avg norm JCT",
                        "improvement", "barrier var vs FIFO"});
  auto run_one = [&](int bands, core::DataPlane plane) {
    exp::ExperimentConfig c = exp::with_policy(base, core::PolicyKind::kTlsOne);
    c.controller.max_bands = bands;
    c.controller.data_plane = plane;
    exp::ExperimentResult r = exp::run_experiment(c);
    double norm = exp::avg_normalized_jct(r, fifo);
    double var_ratio = fifo.barrier_variance_summary.mean > 0
                           ? r.barrier_variance_summary.mean /
                                 fifo.barrier_variance_summary.mean
                           : 0;
    table.add_row({std::to_string(bands), core::to_string(plane),
                   metrics::fmt(norm, 3), metrics::fmt_percent(1.0 - norm),
                   metrics::fmt_ratio(var_ratio)});
  };
  for (int bands : {1, 2, 3, 6, 8}) run_one(bands, core::DataPlane::kHtb);
  // htb class prio stops at 8 levels; the prio qdisc reaches 15 usable
  // bands (one reserved for default traffic) — still short of 21 jobs, a
  // real constraint of the deployment the paper works within.
  run_one(15, core::DataPlane::kPrio);
  std::printf("%s\n", table.str().c_str());
  return 0;
}
