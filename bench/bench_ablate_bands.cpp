// Ablation: how many priority bands are enough? The paper notes tc offers
// a limited number of bands (they use up to 6, so 21 jobs share bands).
// We sweep the band count; 1 band degenerates to FIFO-like sharing, and
// returns diminish once bands approach the number of colocated jobs.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tls;
  bench::init(argc, argv);
  bench::Timing timing("ablate_bands");
  bench::print_header(
      "Ablation - priority band count (placement #1, TLs-One)",
      "the paper uses <= 6 bands and lets 21 jobs share them");

  exp::ExperimentConfig base = bench::paper_config();
  // Run 0 is the FIFO baseline; the rest are TLs-One band/data-plane
  // variants. htb class prio stops at 8 levels; the prio qdisc reaches 15
  // usable bands (one reserved for default traffic) — still short of 21
  // jobs, a real constraint of the deployment the paper works within.
  struct Variant {
    int bands;
    core::DataPlane plane;
  };
  std::vector<Variant> variants;
  for (int bands : {1, 2, 3, 6, 8}) {
    variants.push_back({bands, core::DataPlane::kHtb});
  }
  variants.push_back({15, core::DataPlane::kPrio});

  std::vector<exp::ExperimentConfig> configs;
  configs.push_back(exp::with_policy(base, core::PolicyKind::kFifo));
  for (const Variant& v : variants) {
    exp::ExperimentConfig c = exp::with_policy(base, core::PolicyKind::kTlsOne);
    c.controller.max_bands = v.bands;
    c.controller.data_plane = v.plane;
    configs.push_back(std::move(c));
  }
  std::vector<exp::ExperimentResult> results =
      bench::run_all(configs, &timing);
  const exp::ExperimentResult& fifo = results[0];

  metrics::Table table({"bands", "data plane", "avg norm JCT",
                        "improvement", "barrier var vs FIFO"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const exp::ExperimentResult& r = results[i + 1];
    double norm = exp::avg_normalized_jct(r, fifo);
    double var_ratio = fifo.barrier_variance_summary.mean > 0
                           ? r.barrier_variance_summary.mean /
                                 fifo.barrier_variance_summary.mean
                           : 0;
    table.add_row({std::to_string(variants[i].bands),
                   core::to_string(variants[i].plane), metrics::fmt(norm, 3),
                   metrics::fmt_percent(1.0 - norm),
                   metrics::fmt_ratio(var_ratio)});
  }
  std::printf("%s\n", table.str().c_str());
  return 0;
}
