// Extension bench (paper Future Work #1): what if the cluster scheduler
// were PS-aware? We place 21 jobs with a role-agnostic least-loaded
// scheduler (PS colocation emerges, Section II) and with a PS-aware one
// (bursts spread), then run FIFO and TLs-RR on both placements. The paper
// argues end-host scheduling is complementary to placement; this bench
// quantifies that: PS-aware placement removes most contention up front,
// TensorLights removes the rest without touching the scheduler.
#include "common.hpp"

#include "cluster/launcher.hpp"
#include "cluster/scheduler.hpp"
#include "simcore/simulator.hpp"
#include "tc/tc.hpp"
#include "tensorlights/controller.hpp"

namespace {

using namespace tls;

double run_jct(cluster::SchedulerPolicy sched_policy,
               core::PolicyKind net_policy, int* max_colocation) {
  sim::Simulator simulator(bench::bench_seed());
  net::FabricConfig fc;
  fc.num_hosts = 21;
  net::Fabric fabric(simulator, fc);
  tc::TrafficControl control(fabric);
  core::ControllerConfig cc;
  cc.policy = net_policy;
  cc.rotation_interval = 10 * sim::kSecond;
  core::Controller controller(simulator, control, cc);
  cluster::Launcher launcher(simulator, fabric);
  launcher.add_listener(&controller);

  workload::GridSearchConfig w;
  w.global_step_target = 20L * bench::bench_iters();
  auto specs = workload::grid_search_jobs(w);

  cluster::OnlineScheduler scheduler(21, sched_policy);
  std::vector<dl::JobPlacement> placements;
  for (const auto& spec : specs) placements.push_back(scheduler.place(spec));
  if (max_colocation != nullptr) {
    *max_colocation = scheduler.max_ps_colocation();
  }

  launcher.launch_all(std::move(specs), std::move(placements), {});
  while (!launcher.all_finished() && !simulator.idle() &&
         simulator.now() < 48L * 3600 * sim::kSecond) {
    simulator.run(simulator.now() + sim::kSecond);
  }
  double total = 0;
  for (const auto& job : launcher.jobs()) total += sim::to_seconds(job->jct());
  return total / static_cast<double>(launcher.jobs().size());
}

}  // namespace

int main(int argc, char** argv) {
  // Drives the online scheduler directly (no ExperimentConfig), so it
  // picks up init()/Timing only.
  bench::init(argc, argv);
  bench::Timing timing("ablate_scheduler");
  bench::print_header(
      "Extension - PS-aware cluster scheduling vs TensorLights",
      "Future Work Section VII: spread PS tasks at placement time; "
      "complementary to end-host scheduling");

  metrics::Table table({"scheduler", "max PS colocation", "network policy",
                        "avg JCT (s)"});
  for (auto sched : {cluster::SchedulerPolicy::kPsAgnostic,
                     cluster::SchedulerPolicy::kPsAware}) {
    for (auto net : {core::PolicyKind::kFifo, core::PolicyKind::kTlsRR}) {
      int coloc = 0;
      double jct = run_jct(sched, net, &coloc);
      table.add_row({cluster::to_string(sched), std::to_string(coloc),
                     core::to_string(net), metrics::fmt(jct)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Reading: the agnostic scheduler recreates the colocated regime and\n"
      "TensorLights recovers most of the loss; the PS-aware scheduler\n"
      "avoids the contention up front, and TensorLights remains a no-op\n"
      "safety net on top (work-conserving).\n");
  return 0;
}
