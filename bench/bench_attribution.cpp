// Attribution sweep over the Figure-5a placement axis: for every Table I
// placement, run FIFO and TLs-One over the same seed and report where the
// barrier wait goes (egress-queueing and fan-in shares of the critical
// path) and who is to blame on both sides of the fabric — cross-job bytes
// drained ahead of critical chunks at the sender's egress port, and
// cross-job bytes delivered ahead at the receiver's ingress port.
//
// This is the mechanism behind Fig. 5a's shape: consolidated placements
// (#1..#3) put PS shards of competing jobs on shared hosts, so FIFO shows
// cross-job blame and TLs-One removes it for the prioritized job; dispersed
// placements (#4+) never contend, all policies look alike, and the blame
// columns are zero everywhere — attribution certifies *why* the JCT bars
// converge, not just that they do.
//
// BENCH_attribution.json carries the full two-sided axis (per placement,
// per policy, per blame side) on top of the usual wall-clock header, so
// tools/bench_diff can track the blame trajectory across revisions.
//
// Scaled-down cluster (6 hosts / 3 jobs / 4 workers) so the full sweep
// with tracing stays in seconds; the contention mechanism is the same as
// at paper scale. Placements #5/#6 need more than 3 PS groups and are
// skipped at this job count.
#include <chrono>  // host wall timing only — bench/ is outside the src/ lint
#include <filesystem>
#include <vector>

#include "common.hpp"
#include "obs/analysis.hpp"
#include "obs/reader.hpp"

namespace {

struct Attribution {
  std::int64_t cross_bytes_job0 = 0;  ///< cross-job egress blame, job 0
  std::int64_t cross_bytes_total = 0;
  std::int64_t cross_ingress_bytes_job0 = 0;  ///< cross-job ingress blame, job 0
  std::int64_t cross_ingress_bytes_total = 0;
  long queue_pct = 0;   ///< egress-queue share of total barrier wait
  long fan_in_pct = 0;  ///< fan-in share of total barrier wait
};

Attribution attribute(const tls::exp::ExperimentConfig& base,
                      tls::core::PolicyKind policy, const std::string& dir,
                      const std::string& label) {
  using namespace tls;
  exp::ExperimentConfig c = exp::with_policy(base, policy);
  c.obs.trace_csv_path = dir + "/" + label + ".csv";
  exp::run_experiment(c);

  std::vector<obs::TraceEvent> events;
  std::string error;
  Attribution out;
  if (!obs::read_trace_csv_file(c.obs.trace_csv_path, &events, &error)) {
    std::fprintf(stderr, "bench_attribution: %s\n", error.c_str());
    return out;
  }
  obs::RunReport report = obs::analyze(events);
  sim::Time wait = tls::sim::Time{0}, queue = tls::sim::Time{0},
            fan_in = tls::sim::Time{0};
  for (const obs::JobSummary& js : report.jobs) {
    wait += js.total_wait_ns;
    queue += js.egress_queue_ns;
    fan_in += js.fan_in_ns;
    out.cross_bytes_total += js.cross_job_blame_bytes;
    out.cross_ingress_bytes_total += js.cross_job_ingress_blame_bytes;
    if (js.job == 0) {
      out.cross_bytes_job0 = js.cross_job_blame_bytes;
      out.cross_ingress_bytes_job0 = js.cross_job_ingress_blame_bytes;
    }
  }
  if (wait > tls::sim::Time{0}) {
    out.queue_pct = static_cast<long>(queue * 100 / wait);
    out.fan_in_pct = static_cast<long>(fan_in * 100 / wait);
  }
  return out;
}

struct PlacementRow {
  int placement = 0;
  Attribution fifo;
  Attribution tls_one;
  bool isolated = false;
};

void write_policy_json(std::FILE* f, const char* name, const Attribution& a) {
  std::fprintf(f,
               "      \"%s\": {\"queue_pct\": %ld, \"fan_in_pct\": %ld, "
               "\"cross_egress_bytes\": %lld, \"cross_ingress_bytes\": %lld, "
               "\"job0_cross_egress_bytes\": %lld, "
               "\"job0_cross_ingress_bytes\": %lld}",
               name, a.queue_pct, a.fan_in_pct,
               static_cast<long long>(a.cross_bytes_total),
               static_cast<long long>(a.cross_ingress_bytes_total),
               static_cast<long long>(a.cross_bytes_job0),
               static_cast<long long>(a.cross_ingress_bytes_job0));
}

/// BENCH_attribution.json: the Timing header fields plus the per-placement
/// two-sided blame axis. Written by hand (not bench::Timing) because the
/// payload is structured per placement x policy x side.
void write_json(const std::vector<PlacementRow>& rows, long runs,
                double wall_s) {
  const char* dir = std::getenv("TLS_BENCH_JSON_DIR");
  std::string path = std::string(dir != nullptr && *dir != '\0' ? dir : ".") +
                     "/BENCH_attribution.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;  // timing is best-effort, never fails a bench
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"attribution\",\n"
               "  \"wall_s\": %.6f,\n"
               "  \"runs\": %lld,\n"
               "  \"cache_hits\": 0,\n"
               "  \"jobs\": %lld,\n"
               "  \"iters\": %lld,\n"
               "  \"seed\": %llu,\n"
               "  \"placements\": [\n",
               wall_s, static_cast<long long>(runs),
               static_cast<long long>(tls::bench::resolved_jobs()),
               static_cast<long long>(tls::bench::bench_iters()),
               static_cast<unsigned long long>(tls::bench::bench_seed()));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const PlacementRow& r = rows[i];
    std::fprintf(f, "    {\n      \"placement\": %d,\n", r.placement);
    write_policy_json(f, "fifo", r.fifo);
    std::fprintf(f, ",\n");
    write_policy_json(f, "tls_one", r.tls_one);
    std::fprintf(f, ",\n      \"isolated\": %s\n    }%s\n",
                 r.isolated ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tls;
  bench::init(argc, argv);
  double t0 = now_s();
  bench::print_header(
      "Attribution sweep - two-sided blame matrix vs Table I placement "
      "(fig 5a axis)",
      "priority bands remove queueing-behind-other-jobs blame where "
      "placements share PS hosts; dispersed placements never blame");

  const std::string out_dir =
      (std::filesystem::temp_directory_path() / "tls_bench_attribution")
          .string();
  std::filesystem::create_directories(out_dir);

  exp::ExperimentConfig base;
  base.num_hosts = 6;
  base.workload.num_jobs = 3;
  base.workload.workers_per_job = 4;
  base.workload.global_step_target = 4L * bench::bench_iters();
  base.seed = bench::bench_seed();

  metrics::Table table({"placement", "queue% fifo", "fan-in% fifo",
                        "cross-job KiB fifo", "ingress KiB fifo",
                        "cross-job KiB tls-one", "ingress KiB tls-one",
                        "job0 cross KiB tls-one", "isolated?"});
  std::vector<PlacementRow> rows;
  long runs = 0;
  for (int index : {1, 2, 3, 4, 7, 8}) {
    exp::ExperimentConfig c = base;
    c.placement = cluster::table1(index, 3);
    std::string tag = "p" + std::to_string(index);
    Attribution fifo =
        attribute(c, core::PolicyKind::kFifo, out_dir, tag + "-fifo");
    Attribution one =
        attribute(c, core::PolicyKind::kTlsOne, out_dir, tag + "-tls-one");
    runs += 2;
    bool isolated = fifo.cross_bytes_total > 0 && one.cross_bytes_job0 == 0;
    rows.push_back(PlacementRow{index, fifo, one, isolated});
    table.add_row({"#" + std::to_string(index), std::to_string(fifo.queue_pct),
                   std::to_string(fifo.fan_in_pct),
                   std::to_string(fifo.cross_bytes_total / 1024),
                   std::to_string(fifo.cross_ingress_bytes_total / 1024),
                   std::to_string(one.cross_bytes_total / 1024),
                   std::to_string(one.cross_ingress_bytes_total / 1024),
                   std::to_string(one.cross_bytes_job0 / 1024),
                   fifo.cross_bytes_total == 0 ? "no contention"
                                               : (isolated ? "yes" : "NO")});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "\"isolated?\" = FIFO shows cross-job egress blame and TLs-One drives\n"
      "the prioritized job's cross-job blame to exactly 0 (tlsreport --diff\n"
      "prints the per-iteration certificate for any pair above; the ingress\n"
      "columns show the same contention measured past the receiver's port).\n");
  write_json(rows, runs, now_s() - t0);
  return 0;
}
