// Attribution sweep over the Figure-5a placement axis: for every Table I
// placement, run FIFO and TLs-One over the same seed and report where the
// barrier wait goes (egress-queueing share of the critical path) and who
// is to blame (cross-job bytes drained ahead of critical chunks).
//
// This is the mechanism behind Fig. 5a's shape: consolidated placements
// (#1..#3) put PS shards of competing jobs on shared hosts, so FIFO shows
// cross-job blame and TLs-One removes it for the prioritized job; dispersed
// placements (#4+) never contend, all policies look alike, and the blame
// column is zero everywhere — attribution certifies *why* the JCT bars
// converge, not just that they do.
//
// Scaled-down cluster (6 hosts / 3 jobs / 4 workers) so the full sweep
// with tracing stays in seconds; the contention mechanism is the same as
// at paper scale. Placements #5/#6 need more than 3 PS groups and are
// skipped at this job count.
#include <filesystem>

#include "common.hpp"
#include "obs/analysis.hpp"
#include "obs/reader.hpp"

namespace {

struct Attribution {
  std::int64_t cross_bytes_job0 = 0;  ///< cross-job blame, prioritized job
  std::int64_t cross_bytes_total = 0;
  long queue_pct = 0;  ///< egress-queue share of total barrier wait
};

Attribution attribute(const tls::exp::ExperimentConfig& base,
                      tls::core::PolicyKind policy, const std::string& dir,
                      const std::string& label) {
  using namespace tls;
  exp::ExperimentConfig c = exp::with_policy(base, policy);
  c.obs.trace_csv_path = dir + "/" + label + ".csv";
  exp::run_experiment(c);

  std::vector<obs::TraceEvent> events;
  std::string error;
  Attribution out;
  if (!obs::read_trace_csv_file(c.obs.trace_csv_path, &events, &error)) {
    std::fprintf(stderr, "bench_attribution: %s\n", error.c_str());
    return out;
  }
  obs::RunReport report = obs::analyze(events);
  sim::Time wait = tls::sim::Time{0}, queue = tls::sim::Time{0};
  for (const obs::JobSummary& js : report.jobs) {
    wait += js.total_wait_ns;
    queue += js.egress_queue_ns;
    out.cross_bytes_total += js.cross_job_blame_bytes;
    if (js.job == 0) out.cross_bytes_job0 = js.cross_job_blame_bytes;
  }
  out.queue_pct = wait > tls::sim::Time{0 ? static_cast<long>(queue * 100 / wait) : 0};
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tls;
  bench::init(argc, argv);
  bench::Timing timing("attribution");
  bench::print_header(
      "Attribution sweep - blame matrix vs Table I placement (fig 5a axis)",
      "priority bands remove queueing-behind-other-jobs blame where "
      "placements share PS hosts; dispersed placements never blame");

  const std::string out_dir =
      (std::filesystem::temp_directory_path() / "tls_bench_attribution")
          .string();
  std::filesystem::create_directories(out_dir);

  exp::ExperimentConfig base;
  base.num_hosts = 6;
  base.workload.num_jobs = 3;
  base.workload.workers_per_job = 4;
  base.workload.global_step_target = 4L * bench::bench_iters();
  base.seed = bench::bench_seed();

  metrics::Table table({"placement", "queue% fifo", "queue% tls-one",
                        "cross-job KiB fifo", "cross-job KiB tls-one",
                        "job0 cross KiB tls-one", "isolated?"});
  for (int index : {1, 2, 3, 4, 7, 8}) {
    exp::ExperimentConfig c = base;
    c.placement = cluster::table1(index, 3);
    std::string tag = "p" + std::to_string(index);
    Attribution fifo =
        attribute(c, core::PolicyKind::kFifo, out_dir, tag + "-fifo");
    Attribution one =
        attribute(c, core::PolicyKind::kTlsOne, out_dir, tag + "-tls-one");
    timing.add_runs(2);
    bool isolated = fifo.cross_bytes_total > 0 && one.cross_bytes_job0 == 0;
    table.add_row({"#" + std::to_string(index), std::to_string(fifo.queue_pct),
                   std::to_string(one.queue_pct),
                   std::to_string(fifo.cross_bytes_total / 1024),
                   std::to_string(one.cross_bytes_total / 1024),
                   std::to_string(one.cross_bytes_job0 / 1024),
                   fifo.cross_bytes_total == 0 ? "no contention"
                                               : (isolated ? "yes" : "NO")});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "\"isolated?\" = FIFO shows cross-job blame and TLs-One drives the\n"
      "prioritized job's cross-job blame to exactly 0 (tlsreport --diff\n"
      "prints the per-iteration certificate for any pair above).\n");
  return 0;
}
