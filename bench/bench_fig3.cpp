// Figure 3: distribution of per-barrier mean (a) and variance (b) of the
// barrier wait time among workers of the same job, under placement #1
// (heavy contention) vs #8 (mild contention), FIFO scheduling.
// Paper: #1's average wait is 3.71x of #8's; its variance is 4.37x.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tls;
  bench::init(argc, argv);
  bench::Timing timing("fig3");
  bench::print_header(
      "Figure 3 - barrier wait time distribution, placement #1 vs #8 (FIFO)",
      "placement #1 mean wait 3.71x of #8; variance 4.37x of #8");

  std::vector<exp::ExperimentConfig> configs;
  for (int index : {1, 8}) {
    exp::ExperimentConfig c = bench::paper_config();
    c.placement = cluster::table1(index, 21);
    c.controller.policy = core::PolicyKind::kFifo;
    configs.push_back(std::move(c));
  }
  std::vector<exp::ExperimentResult> results =
      bench::run_all(configs, &timing);

  auto pooled = [](const exp::ExperimentResult& r, bool variance) {
    std::vector<double> out;
    for (const auto& j : r.jobs) {
      const auto& src = variance ? j.barrier_variances_s2 : j.barrier_mean_waits_s;
      out.insert(out.end(), src.begin(), src.end());
    }
    return out;
  };

  metrics::Table mean_table({"placement", "p10", "p25", "p50", "p75", "p90",
                             "mean", "unit"});
  bench::print_cdf_rows(mean_table, "#1", pooled(results[0], false), 1e3, "ms");
  bench::print_cdf_rows(mean_table, "#8", pooled(results[1], false), 1e3, "ms");
  std::printf("(a) average barrier wait per barrier:\n%s\n",
              mean_table.str().c_str());

  metrics::Table var_table({"placement", "p10", "p25", "p50", "p75", "p90",
                            "mean", "unit"});
  bench::print_cdf_rows(var_table, "#1", pooled(results[0], true), 1e6, "ms^2");
  bench::print_cdf_rows(var_table, "#8", pooled(results[1], true), 1e6, "ms^2");
  std::printf("(b) variance of barrier wait per barrier:\n%s\n",
              var_table.str().c_str());

  double mean_ratio = metrics::Cdf(pooled(results[0], false)).mean() /
                      metrics::Cdf(pooled(results[1], false)).mean();
  double var_ratio = metrics::Cdf(pooled(results[0], true)).mean() /
                     metrics::Cdf(pooled(results[1], true)).mean();
  std::printf("mean-wait ratio #1/#8:  %s   [paper: 3.71x]\n",
              metrics::fmt_ratio(mean_ratio).c_str());
  std::printf("variance ratio #1/#8:   %s   [paper: 4.37x]\n",
              metrics::fmt_ratio(var_ratio).c_str());
  return 0;
}
