// Figure 4: the paper's schematic of two colocated PSes sending their
// model-update bursts under (b) FIFO, (c) TLs-One, and (d) TLs-RR —
// reproduced as a measured micro-scenario on the fabric. Each job
// broadcasts one model update to 4 workers through the shared egress; we
// print when each worker's update completes, which is exactly the
// green/yellow/yield story of the title.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "net/fabric.hpp"
#include "simcore/simulator.hpp"
#include "tc/tc.hpp"

namespace {

using namespace tls;

struct BurstResult {
  // completion time (ms) per (job, worker)
  std::vector<std::vector<double>> done{2};
  double job_last[2] = {0, 0};
};

/// Runs one two-job burst with the given tc setup applied beforehand.
BurstResult run_burst(const std::vector<std::string>& tc_commands,
                      sim::Time second_job_offset = sim::Time{0}) {
  sim::Simulator simulator(7);
  net::FabricConfig fc;
  fc.num_hosts = 5;
  fc.tcp_weight_sigma = 0.2;
  net::Fabric fabric(simulator, fc);
  tc::TrafficControl control(fabric);
  for (const std::string& cmd : tc_commands) {
    tc::Status s = control.exec(cmd);
    if (!s.ok) {
      std::fprintf(stderr, "tc failed: %s\n", s.error.c_str());
      std::exit(1);
    }
  }
  BurstResult result;
  auto start_job = [&](int job, std::uint16_t port) {
    for (int w = 0; w < 4; ++w) {
      net::FlowSpec f;
      f.src = tls::net::HostId{0};
      f.dst = tls::net::HostId{1 + w};
      f.bytes = dl::zoo::resnet32_cifar10().update_bytes();
      f.src_port = port;
      f.job_id = job;
      f.kind = net::FlowKind::kModelUpdate;
      fabric.start_flow(f, [&result, job](const net::FlowRecord& rec) {
        double ms = sim::to_millis(rec.end);
        result.done[static_cast<size_t>(job)].push_back(ms);
        result.job_last[job] = std::max(result.job_last[job], ms);
      });
    }
  };
  start_job(0, 5000);
  simulator.schedule_after(second_job_offset, [&] { start_job(1, 5100); });
  simulator.run();
  return result;
}

void print_result(const char* name, const BurstResult& r) {
  std::printf("%-18s", name);
  for (int job = 0; job < 2; ++job) {
    std::printf("  job%d workers done at:", job);
    std::vector<double> d = r.done[static_cast<size_t>(job)];
    std::sort(d.begin(), d.end());
    for (double ms : d) std::printf(" %6.2fms", ms);
  }
  std::printf("\n%-18s  job0 iteration gated at %.2fms, job1 at %.2fms\n\n",
              "", r.job_last[0], r.job_last[1]);
}

}  // namespace

int main(int argc, char** argv) {
  // This bench drives the fabric directly (no ExperimentConfig), so it
  // only picks up init()/Timing — there is nothing for run_all to fan out.
  bench::init(argc, argv);
  bench::Timing timing("fig4");
  bench::print_header(
      "Figure 4 - two colocated PSes: FIFO vs TLs-One vs TLs-RR burst",
      "FIFO delays BOTH jobs to the end of the combined burst; priority "
      "lets job0 finish at half time while job1 still ends at the same time");

  // (b) FIFO: default pfifo, no tc configuration.
  print_result("(b) FIFO", run_burst({}));

  // (c) TLs-One: htb with two classes, job0 at prio 0, job1 at prio 1.
  std::vector<std::string> tls_one = {
      "tc qdisc add dev host0 root handle 1: htb default 3f",
      "tc class add dev host0 parent 1: classid 1:3f htb rate 2gbit ceil 10gbit prio 7",
      "tc class add dev host0 parent 1: classid 1:1 htb rate 1mbit ceil 10gbit prio 0",
      "tc class add dev host0 parent 1: classid 1:2 htb rate 1mbit ceil 10gbit prio 1",
      "tc filter add dev host0 parent 1: pref 1000 u32 match ip sport 5000 0xffff flowid 1:1",
      "tc filter add dev host0 parent 1: pref 1001 u32 match ip sport 5100 0xffff flowid 1:2",
  };
  print_result("(c) TLs-One", run_burst(tls_one));

  // (d) TLs-RR after one rotation: the assignment is swapped.
  std::vector<std::string> tls_rr = tls_one;
  tls_rr[4] =
      "tc filter add dev host0 parent 1: pref 1000 u32 match ip sport 5000 0xffff flowid 1:2";
  tls_rr[5] =
      "tc filter add dev host0 parent 1: pref 1001 u32 match ip sport 5100 0xffff flowid 1:1";
  print_result("(d) TLs-RR (T..2T)", run_burst(tls_rr));

  std::printf(
      "Reading: under FIFO both jobs' last workers finish together at the\n"
      "end of the combined burst (everyone yields, nobody passes). Under\n"
      "priority the green job's workers all finish early and the yellow\n"
      "job's last worker still finishes no later than under FIFO - the\n"
      "work-conserving 'pass/yield' rotation of the paper's traffic light.\n");
  return 0;
}
