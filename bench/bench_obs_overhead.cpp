// Observability overhead on the Figure-2 sweep: the same eight-placement
// FIFO run timed three ways —
//   off       no obs options; the tracer is never constructed, emission
//             sites cost one null-pointer check
//   disabled  tracer attached with an empty category mask and no registry
//             (the --trace-filter none path): sites additionally call
//             active() and skip
//   enabled   full event log + metrics registry + artifact export
//
// The acceptance bar is the "disabled" column: attaching an inert tracer
// must stay within ~2% of a build that never sees one. Results land in
// BENCH_obs_overhead.json alongside the usual bench timing files.
#include <chrono>  // host wall timing only — bench/ is outside the src/ lint
#include <filesystem>

#include "common.hpp"
#include "obs/trace.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// Runs the fig2 sweep once with whatever obs options `decorate` installs
/// and returns the wall seconds. Caching is forced off so every mode pays
/// for real simulation work.
template <typename Decorate>
double timed_sweep(Decorate decorate) {
  using namespace tls;
  std::vector<exp::ExperimentConfig> configs;
  for (int index = 1; index <= 8; ++index) {
    exp::ExperimentConfig c = bench::paper_config();
    c.placement = cluster::table1(index, 21);
    c.controller.policy = core::PolicyKind::kFifo;
    decorate(c, index);
    configs.push_back(std::move(c));
  }
  runtime::RunPlan plan;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    plan.add("p" + std::to_string(i + 1), configs[i]);
  }
  runtime::RunOptions options;
  options.jobs = static_cast<int>(tls::bench::bench_jobs());
  options.cache_dir = "";  // cached runs would make the comparison vacuous
  options.progress = tls::bench::env_long("TLS_BENCH_PROGRESS", 0) != 0;
  Clock::time_point t0 = Clock::now();
  runtime::run_plan(plan, options);
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tls;
  bench::init(argc, argv);
  bench::print_header(
      "Observability overhead - fig2 sweep: off vs disabled vs enabled",
      "trace/metrics hooks must be free when not requested (<2% disabled)");

  const std::string out_dir = "obs_overhead_artifacts";
  std::filesystem::create_directories(out_dir);

  double off_s = timed_sweep([](exp::ExperimentConfig&, int) {});
  double disabled_s = timed_sweep([&](exp::ExperimentConfig& c, int) {
    // Artifact requested but every category masked off and no metrics:
    // the tracer is attached yet inert, the --trace-filter none path.
    c.obs.trace_path = out_dir + "/disabled.json";
    c.obs.trace_categories = 0;
    c.obs.sample_period = tls::sim::Time{0};
  });
  double enabled_s = timed_sweep([&](exp::ExperimentConfig& c, int) {
    c.obs.trace_path = out_dir + "/trace.json";
    c.obs.metrics_path = out_dir + "/metrics.csv";
    // Cap the in-memory event log so eight concurrent paper-scale runs
    // stay bounded; drops are counted, emission work still happens.
    c.obs.max_events = 250'000;
  });

  double disabled_frac = off_s > 0 ? (disabled_s - off_s) / off_s : 0;
  double enabled_frac = off_s > 0 ? (enabled_s - off_s) / off_s : 0;

  metrics::Table table({"mode", "wall (s)", "overhead vs off"});
  table.add_row({"off", metrics::fmt(off_s, 2), "-"});
  table.add_row({"disabled", metrics::fmt(disabled_s, 2),
                 metrics::fmt_percent(disabled_frac, 1)});
  table.add_row({"enabled", metrics::fmt(enabled_s, 2),
                 metrics::fmt_percent(enabled_frac, 1)});
  std::printf("%s\n", table.str().c_str());
  std::printf("Disabled-mode bar: <2%%  ->  %s\n",
              disabled_frac < 0.02 ? "within bar" : "EXCEEDED");

  const char* dir = std::getenv("TLS_BENCH_JSON_DIR");
  std::string path =
      std::string(dir != nullptr && *dir != '\0' ? dir : ".") +
      "/BENCH_obs_overhead.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"obs_overhead\",\n"
                 "  \"wall_s_off\": %.6f,\n"
                 "  \"wall_s_disabled\": %.6f,\n"
                 "  \"wall_s_enabled\": %.6f,\n"
                 "  \"overhead_disabled_frac\": %.6f,\n"
                 "  \"overhead_enabled_frac\": %.6f,\n"
                 "  \"runs_per_mode\": 8,\n"
                 "  \"jobs\": %lld,\n"
                 "  \"iters\": %lld,\n"
                 "  \"seed\": %llu\n"
                 "}\n",
                 off_s, disabled_s, enabled_s, disabled_frac, enabled_frac,
                 static_cast<long long>(bench::resolved_jobs()),
                 static_cast<long long>(bench::bench_iters()),
                 static_cast<unsigned long long>(bench::bench_seed()));
    std::fclose(f);
  }
  return 0;
}
