// Figure 2: Job completion time of 21 concurrent DL jobs under the eight
// PS placements of Table I, FIFO scheduling. The paper's headline: the
// average-JCT gap between the best and worst placement reaches ~75%.
#include <algorithm>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tls;
  bench::init(argc, argv);
  bench::Timing timing("fig2");
  bench::print_header(
      "Figure 2 - JCT of concurrent DL jobs under placements #1-#8 (FIFO)",
      "performance gap between best and worst placement up to 75%");

  metrics::Table placements({"index", "PS placement"});
  for (const auto& p : cluster::table1_all(21)) {
    placements.add_row({"#" + std::to_string(p.index), p.name});
  }
  std::printf("Table I - placements under test:\n%s\n", placements.str().c_str());

  std::vector<exp::ExperimentConfig> configs;
  for (int index = 1; index <= 8; ++index) {
    exp::ExperimentConfig c = bench::paper_config();
    c.placement = cluster::table1(index, 21);
    c.controller.policy = core::PolicyKind::kFifo;
    configs.push_back(std::move(c));
  }
  std::vector<exp::ExperimentResult> results =
      bench::run_all(configs, &timing);

  metrics::Table table({"placement", "avg JCT (s)", "min", "max", "stddev"});
  std::vector<double> averages;
  for (int index = 1; index <= 8; ++index) {
    const exp::ExperimentResult& r =
        results[static_cast<std::size_t>(index - 1)];
    std::vector<double> jcts;
    for (const auto& j : r.jobs) jcts.push_back(j.jct_s);
    metrics::Summary s = metrics::summarize(jcts);
    table.add_row({"#" + std::to_string(index), metrics::fmt(s.mean),
                   metrics::fmt(s.min), metrics::fmt(s.max),
                   metrics::fmt(s.stddev)});
    averages.push_back(s.mean);
  }
  std::printf("%s\n", table.str().c_str());
  double best = *std::min_element(averages.begin(), averages.end());
  double worst = *std::max_element(averages.begin(), averages.end());
  double gap = (worst - best) / best;
  std::printf("Performance gap (worst-best)/best: %s   [paper: up to 75%%]\n",
              metrics::fmt_percent(gap).c_str());
  return 0;
}
