// Ablation: priority-assignment strategy under a heterogeneous job mix.
// The paper (Section IV-B): for grid search any assignment works (random
// suffices); with mixed model sizes, giving smaller updates higher
// priority avoids head-of-line blocking behind large bursts.
#include "common.hpp"

#include "cluster/launcher.hpp"
#include "metrics/util_sampler.hpp"
#include "simcore/simulator.hpp"
#include "tc/tc.hpp"
#include "tensorlights/controller.hpp"

namespace {

using namespace tls;

struct MixResult {
  double avg_jct = 0;
  double small_avg = 0;  // avg JCT of the small-model jobs
  double big_avg = 0;
};

MixResult run_mix(core::PolicyKind policy, core::AssignStrategy strategy,
                  std::uint64_t seed) {
  sim::Simulator simulator(seed);
  net::FabricConfig fc;
  fc.num_hosts = 9;
  net::Fabric fabric(simulator, fc);
  tc::TrafficControl control(fabric);
  core::ControllerConfig cc;
  cc.policy = policy;
  cc.strategy = strategy;
  core::Controller controller(simulator, control, cc);
  cluster::Launcher launcher(simulator, fabric);
  launcher.add_listener(&controller);

  // 4 small (ResNet-32) + 2 large (Inception-v3) jobs, all PSes colocated.
  // Interleaved so arrival order differs from size order and the
  // strategies are genuinely distinguishable.
  std::vector<workload::MixEntry> mix = {
      {dl::zoo::inception_v3(), 1, 1, 8L * 4},
      {dl::zoo::resnet32_cifar10(), 2, 1, 8L * 12},
      {dl::zoo::inception_v3(), 1, 1, 8L * 4},
      {dl::zoo::resnet32_cifar10(), 2, 1, 8L * 12},
  };
  auto specs = workload::heterogeneous_jobs(mix, /*workers=*/8);
  auto placements = cluster::assign_tasks(cluster::table1(1, 6), 9, 8);
  launcher.launch_all(std::move(specs), std::move(placements), {});
  while (!launcher.all_finished() && !simulator.idle() &&
         simulator.now() < 3600 * sim::kSecond) {
    simulator.run(simulator.now() + sim::kSecond);
  }

  MixResult r;
  int small_n = 0, big_n = 0;
  for (const auto& job : launcher.jobs()) {
    double jct = sim::to_seconds(job->jct());
    r.avg_jct += jct;
    if (job->spec().model.name == "resnet32_cifar10") {
      r.small_avg += jct;
      ++small_n;
    } else {
      r.big_avg += jct;
      ++big_n;
    }
  }
  r.avg_jct /= static_cast<double>(launcher.jobs().size());
  r.small_avg /= small_n;
  r.big_avg /= big_n;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  // Drives a hand-built heterogeneous mix directly (no ExperimentConfig),
  // so it picks up init()/Timing only.
  bench::init(argc, argv);
  bench::Timing timing("ablate_assigner");
  bench::print_header(
      "Ablation - priority assignment strategy, heterogeneous mix",
      "smaller-update-first avoids head-of-line blocking behind large "
      "model updates");

  std::uint64_t seed = bench::bench_seed();
  MixResult fifo = run_mix(core::PolicyKind::kFifo,
                           core::AssignStrategy::kArrivalOrder, seed);

  metrics::Table table({"strategy", "avg JCT (s)", "small-model avg",
                        "large-model avg", "norm vs FIFO"});
  table.add_row({"FIFO baseline", metrics::fmt(fifo.avg_jct),
                 metrics::fmt(fifo.small_avg), metrics::fmt(fifo.big_avg),
                 "1.000"});
  for (auto strategy : {core::AssignStrategy::kArrivalOrder,
                        core::AssignStrategy::kRandom,
                        core::AssignStrategy::kSmallestModelFirst}) {
    MixResult r = run_mix(core::PolicyKind::kTlsOne, strategy, seed);
    table.add_row({core::to_string(strategy), metrics::fmt(r.avg_jct),
                   metrics::fmt(r.small_avg), metrics::fmt(r.big_avg),
                   metrics::fmt(r.avg_jct / fifo.avg_jct, 3)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Reading: smallest-model-first should give the small jobs the\n"
      "largest boost without materially hurting the large jobs.\n");
  return 0;
}
