// Figure 5b: normalized JCT vs local batch size under placement #1 — the
// batch size is the contention knob: smaller batches mean more frequent
// updates and heavier contention.
// Paper: TLs-One improvement grows to -31% and TLs-RR to -17% at the
// smallest batch; improvements shrink as the batch grows.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tls;
  bench::init(argc, argv);
  bench::Timing timing("fig5b");
  bench::print_header(
      "Figure 5b - normalized JCT vs local batch size (placement #1)",
      "improvement grows with contention: up to -31% (TLs-One), -17% (TLs-RR)");

  const std::vector<int> batches = {1, 2, 4, 8, 16};
  // Row-major: batch-major, policy-minor (FIFO, TLs-One, TLs-RR).
  std::vector<exp::ExperimentConfig> configs;
  for (int batch : batches) {
    exp::ExperimentConfig c = bench::paper_config();
    c.workload.local_batch_size = batch;
    configs.push_back(exp::with_policy(c, core::PolicyKind::kFifo));
    configs.push_back(exp::with_policy(c, core::PolicyKind::kTlsOne));
    configs.push_back(exp::with_policy(c, core::PolicyKind::kTlsRR));
  }
  std::vector<exp::ExperimentResult> results =
      bench::run_all(configs, &timing);

  metrics::Table table({"batch", "FIFO avg JCT (s)", "TLs-One norm",
                        "TLs-RR norm", "TLs-One improvement"});
  for (std::size_t i = 0; i < batches.size(); ++i) {
    const exp::ExperimentResult& fifo = results[3 * i];
    const exp::ExperimentResult& one = results[3 * i + 1];
    const exp::ExperimentResult& rr = results[3 * i + 2];
    double n_one = exp::avg_normalized_jct(one, fifo);
    double n_rr = exp::avg_normalized_jct(rr, fifo);
    table.add_row({std::to_string(batches[i]), metrics::fmt(fifo.avg_jct_s),
                   metrics::fmt(n_one, 3), metrics::fmt(n_rr, 3),
                   metrics::fmt_percent(1.0 - n_one)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Expected shape: improvement is largest at batch 1 and vanishes by\n"
      "batch 16, where compute dominates and the NIC is no longer contended.\n");
  return 0;
}
