// Figure 5b: normalized JCT vs local batch size under placement #1 — the
// batch size is the contention knob: smaller batches mean more frequent
// updates and heavier contention.
// Paper: TLs-One improvement grows to -31% and TLs-RR to -17% at the
// smallest batch; improvements shrink as the batch grows.
#include "common.hpp"

int main() {
  using namespace tls;
  bench::print_header(
      "Figure 5b - normalized JCT vs local batch size (placement #1)",
      "improvement grows with contention: up to -31% (TLs-One), -17% (TLs-RR)");

  metrics::Table table({"batch", "FIFO avg JCT (s)", "TLs-One norm",
                        "TLs-RR norm", "TLs-One improvement"});
  for (int batch : {1, 2, 4, 8, 16}) {
    exp::ExperimentConfig c = bench::paper_config();
    c.workload.local_batch_size = batch;
    exp::ExperimentResult fifo =
        exp::run_experiment(exp::with_policy(c, core::PolicyKind::kFifo));
    exp::ExperimentResult one =
        exp::run_experiment(exp::with_policy(c, core::PolicyKind::kTlsOne));
    exp::ExperimentResult rr =
        exp::run_experiment(exp::with_policy(c, core::PolicyKind::kTlsRR));
    double n_one = exp::avg_normalized_jct(one, fifo);
    double n_rr = exp::avg_normalized_jct(rr, fifo);
    table.add_row({std::to_string(batch), metrics::fmt(fifo.avg_jct_s),
                   metrics::fmt(n_one, 3), metrics::fmt(n_rr, 3),
                   metrics::fmt_percent(1.0 - n_one)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Expected shape: improvement is largest at batch 1 and vanishes by\n"
      "batch 16, where compute dominates and the NIC is no longer contended.\n");
  return 0;
}
