// Micro-benchmarks (google-benchmark) for the simulator's hot paths: the
// event queue, the qdisc schedulers, classification, tc parsing, and
// whole-fabric throughput. These bound how large an experiment the
// simulator can sustain per wall-clock second.
#include <benchmark/benchmark.h>

#include "net/fabric.hpp"
#include "net/htb_qdisc.hpp"
#include "net/pfifo_qdisc.hpp"
#include "net/prio_qdisc.hpp"
#include "simcore/event_queue.hpp"
#include "simcore/rng.hpp"
#include "tc/parser.hpp"

namespace {

using namespace tls;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  sim::EventQueue q;
  sim::Time t = tls::sim::Time{0};
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) q.schedule(t + tls::sim::Time{(i * 37) % 1000}, [] {});
    while (!q.empty()) q.pop();
    t += tls::sim::Time{1000};
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_RngLognormal(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.lognormal_median(1.0, 0.3));
  }
}
BENCHMARK(BM_RngLognormal);

net::Chunk chunk_for(net::FlowId f, net::BandId band) {
  net::Chunk c;
  c.flow = f;
  c.size = 128 * net::kKiB;
  c.band = band;
  return c;
}

void BM_PfifoEnqueueDequeue(benchmark::State& state) {
  net::PfifoQdisc q;
  for (auto _ : state) {
    for (net::FlowId f = 0; f < 32; ++f) q.enqueue(chunk_for(f, tls::net::BandId{0}));
    while (!q.empty()) benchmark::DoNotOptimize(q.dequeue(tls::sim::Time{0}));
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_PfifoEnqueueDequeue);

void BM_PrioEnqueueDequeue(benchmark::State& state) {
  net::PrioQdisc q(6);
  for (auto _ : state) {
    for (net::FlowId f = 0; f < 32; ++f) {
      q.enqueue(chunk_for(f, static_cast<net::BandId>(f % 6)));
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.dequeue(tls::sim::Time{0}));
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_PrioEnqueueDequeue);

void BM_HtbEnqueueDequeue(benchmark::State& state) {
  net::HtbQdisc q(net::gbps(10), 0x3F);
  for (std::uint32_t minor = 1; minor <= 6; ++minor) {
    net::HtbClassConfig cfg;
    cfg.minor = minor;
    cfg.rate = net::mbps(1);
    cfg.ceil = net::gbps(10);
    cfg.prio = static_cast<int>(minor - 1);
    q.add_class(cfg);
  }
  sim::Time now = tls::sim::Time{0};
  for (auto _ : state) {
    for (net::FlowId f = 0; f < 32; ++f) {
      q.enqueue(chunk_for(f, static_cast<net::BandId>(1 + f % 6)));
    }
    while (!q.empty()) {
      net::DequeueResult r = q.dequeue(now);
      if (r.kind == net::DequeueResult::Kind::kWaitUntil) {
        now = r.retry_at;
      } else {
        now += 105 * sim::kMicrosecond;
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_HtbEnqueueDequeue);

void BM_ClassifierLookup(benchmark::State& state) {
  net::Classifier c;
  for (int i = 0; i < 21; ++i) {
    net::FilterRule rule;
    rule.pref = 1000 + i;
    rule.src_port = static_cast<std::uint16_t>(5000 + 64 * i);
    rule.target_band = tls::net::BandId{i % 6};
    c.upsert(rule);
  }
  net::FlowSpec spec;
  spec.src_port = 5000 + 64 * 20;  // worst case: last rule
  for (auto _ : state) benchmark::DoNotOptimize(c.classify(spec));
}
BENCHMARK(BM_ClassifierLookup);

void BM_TcParseFilter(benchmark::State& state) {
  const std::string cmd =
      "tc filter add dev host0 parent 1: pref 1007 u32 match ip sport 5064 "
      "0xffff flowid 1:3";
  for (auto _ : state) benchmark::DoNotOptimize(tc::parse_command(cmd));
}
BENCHMARK(BM_TcParseFilter);

void BM_FabricBroadcastRound(benchmark::State& state) {
  // One full PS fan-out burst: 20 flows of 1.87 MB through one egress.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator simulator(1);
    net::FabricConfig fc;
    fc.num_hosts = 21;
    net::Fabric fabric(simulator, fc);
    state.ResumeTiming();
    int remaining = 20;
    for (int w = 0; w < 20; ++w) {
      net::FlowSpec f;
      f.src = tls::net::HostId{0};
      f.dst = tls::net::HostId{1 + w};
      f.bytes = tls::net::Bytes{1'868'776};
      fabric.start_flow(f, [&remaining](const net::FlowRecord&) { --remaining; });
    }
    simulator.run();
    if (remaining != 0) state.SkipWithError("flows did not complete");
  }
}
BENCHMARK(BM_FabricBroadcastRound);

}  // namespace

BENCHMARK_MAIN();
