// Ablation: is worker-side gradient prioritization worth it?
//
// Insight #2 of the paper argues no: PS-worker communication is symmetric,
// so "enforcing the priority for model updates at the PS also indirectly
// controls the progress of workers and thus the pace of their gradient
// updates". This bench runs the two-sided variant (gradient filters on
// every worker host) against the paper's one-sided deployment and counts
// the extra tc churn it costs.
#include "common.hpp"

int main() {
  using namespace tls;
  bench::print_header(
      "Ablation - one-sided (paper) vs two-sided priority configuration",
      "Insight #2: PS-side priorities implicitly pace gradients; the "
      "worker side is not worth configuring");

  exp::ExperimentConfig base = bench::paper_config();
  base.workload.local_batch_size = 1;  // heaviest contention
  exp::ExperimentResult fifo =
      exp::run_experiment(exp::with_policy(base, core::PolicyKind::kFifo));

  metrics::Table table({"variant", "avg norm JCT", "barrier var vs FIFO",
                        "tc commands", "hosts touched"});
  for (bool two_sided : {false, true}) {
    exp::ExperimentConfig c = exp::with_policy(base, core::PolicyKind::kTlsOne);
    c.controller.prioritize_gradients = two_sided;
    exp::ExperimentResult r = exp::run_experiment(c);
    double var_ratio = fifo.barrier_variance_summary.mean > 0
                           ? r.barrier_variance_summary.mean /
                                 fifo.barrier_variance_summary.mean
                           : 0;
    table.add_row({two_sided ? "two-sided (PS + workers)" : "one-sided (paper)",
                   metrics::fmt(exp::avg_normalized_jct(r, fifo), 3),
                   metrics::fmt_ratio(var_ratio),
                   std::to_string(r.tc_commands),
                   two_sided ? "all 21" : "PS hosts only"});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Reading: if the two rows match, the paper's one-sided deployment is\n"
      "vindicated - the extra worker-host configuration buys nothing.\n");
  return 0;
}
