// Ablation: is worker-side gradient prioritization worth it?
//
// Insight #2 of the paper argues no: PS-worker communication is symmetric,
// so "enforcing the priority for model updates at the PS also indirectly
// controls the progress of workers and thus the pace of their gradient
// updates". This bench runs the two-sided variant (gradient filters on
// every worker host) against the paper's one-sided deployment and counts
// the extra tc churn it costs.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tls;
  bench::init(argc, argv);
  bench::Timing timing("ablate_two_sided");
  bench::print_header(
      "Ablation - one-sided (paper) vs two-sided priority configuration",
      "Insight #2: PS-side priorities implicitly pace gradients; the "
      "worker side is not worth configuring");

  exp::ExperimentConfig base = bench::paper_config();
  base.workload.local_batch_size = 1;  // heaviest contention

  // Run 0 is the FIFO baseline; 1/2 are one-sided and two-sided TLs-One.
  std::vector<exp::ExperimentConfig> configs;
  configs.push_back(exp::with_policy(base, core::PolicyKind::kFifo));
  for (bool two_sided : {false, true}) {
    exp::ExperimentConfig c = exp::with_policy(base, core::PolicyKind::kTlsOne);
    c.controller.prioritize_gradients = two_sided;
    configs.push_back(std::move(c));
  }
  std::vector<exp::ExperimentResult> results =
      bench::run_all(configs, &timing);
  const exp::ExperimentResult& fifo = results[0];

  metrics::Table table({"variant", "avg norm JCT", "barrier var vs FIFO",
                        "tc commands", "hosts touched"});
  for (int i = 0; i < 2; ++i) {
    bool two_sided = i == 1;
    const exp::ExperimentResult& r = results[static_cast<std::size_t>(i) + 1];
    double var_ratio = fifo.barrier_variance_summary.mean > 0
                           ? r.barrier_variance_summary.mean /
                                 fifo.barrier_variance_summary.mean
                           : 0;
    table.add_row({two_sided ? "two-sided (PS + workers)" : "one-sided (paper)",
                   metrics::fmt(exp::avg_normalized_jct(r, fifo), 3),
                   metrics::fmt_ratio(var_ratio),
                   std::to_string(r.tc_commands),
                   two_sided ? "all 21" : "PS hosts only"});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Reading: if the two rows match, the paper's one-sided deployment is\n"
      "vindicated - the extra worker-host configuration buys nothing.\n");
  return 0;
}
