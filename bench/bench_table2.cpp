// Table II: normalized CPU and NIC utilization over the active window
// under placement #1 — the vmstat/ifstat measurement of the paper.
// Paper: TLs-One / TLs-RR vs FIFO:
//   CPU on the PS host      1.04x / 1.03x
//   CPU on worker hosts     1.13x / 1.12x
//   NIC inbound (all hosts) 1.20x / 1.21x
//   NIC outbound            1.20x / 1.21x
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tls;
  bench::init(argc, argv);
  bench::Timing timing("table2");
  bench::print_header(
      "Table II - normalized utilization over the active window "
      "(placement #1)",
      "TLs-One: CPU PS 1.04x, worker 1.13x, NIC in/out 1.20x "
      "(TLs-RR similar)");

  exp::ExperimentConfig c = bench::paper_config();
  std::vector<exp::ExperimentResult> results = bench::run_all(
      {exp::with_policy(c, core::PolicyKind::kFifo),
       exp::with_policy(c, core::PolicyKind::kTlsOne),
       exp::with_policy(c, core::PolicyKind::kTlsRR)},
      &timing);
  const exp::ExperimentResult& fifo = results[0];
  const exp::ExperimentResult& one = results[1];
  const exp::ExperimentResult& rr = results[2];

  auto ratio = [](double v, double base) { return base > 0 ? v / base : 0.0; };

  metrics::Table table({"resource", "host type", "TLs-One", "TLs-RR",
                        "paper TLs-One", "paper TLs-RR"});
  table.add_row({"CPU", "PS",
                 metrics::fmt_ratio(ratio(one.cpu_util_ps_hosts, fifo.cpu_util_ps_hosts)),
                 metrics::fmt_ratio(ratio(rr.cpu_util_ps_hosts, fifo.cpu_util_ps_hosts)),
                 "1.04x", "1.03x"});
  table.add_row({"CPU", "Worker",
                 metrics::fmt_ratio(ratio(one.cpu_util_worker_hosts, fifo.cpu_util_worker_hosts)),
                 metrics::fmt_ratio(ratio(rr.cpu_util_worker_hosts, fifo.cpu_util_worker_hosts)),
                 "1.13x", "1.12x"});
  table.add_row({"Network Inbound", "All",
                 metrics::fmt_ratio(ratio(one.nic_in_util, fifo.nic_in_util)),
                 metrics::fmt_ratio(ratio(rr.nic_in_util, fifo.nic_in_util)),
                 "1.20x", "1.21x"});
  table.add_row({"Network Outbound", "All",
                 metrics::fmt_ratio(ratio(one.nic_out_util, fifo.nic_out_util)),
                 metrics::fmt_ratio(ratio(rr.nic_out_util, fifo.nic_out_util)),
                 "1.20x", "1.21x"});
  std::printf("%s\n", table.str().c_str());

  std::printf("absolute (FIFO baseline): CPU PS %s, CPU worker %s, "
              "NIC in %s, NIC out %s\n",
              metrics::fmt_percent(fifo.cpu_util_ps_hosts).c_str(),
              metrics::fmt_percent(fifo.cpu_util_worker_hosts).c_str(),
              metrics::fmt_percent(fifo.nic_in_util).c_str(),
              metrics::fmt_percent(fifo.nic_out_util).c_str());
  std::printf("active window: %.1fs .. %.1fs\n",
              sim::to_seconds(fifo.active_window_begin),
              sim::to_seconds(fifo.active_window_end));
  return 0;
}
