// Shared helpers for the figure/table reproduction harnesses.
//
// Scale knobs (environment variables, or the matching command-line flag):
//   TLS_BENCH_ITERS  / --iters N   iterations per job (default 60; paper: 1500)
//   TLS_BENCH_SEED   / --seed N    base RNG seed      (default 1)
//   TLS_BENCH_JOBS   / --jobs N    worker threads for independent runs
//                                  (default 0 = hardware concurrency; results
//                                  are byte-identical at any thread count)
//   TLS_CACHE_DIR                  result-cache directory (unset = off);
//                                  re-running an unchanged bench is near-instant
//   TLS_BENCH_PROGRESS             1 = per-run progress/ETA lines on stderr
//   TLS_BENCH_JSON_DIR             where BENCH_<name>.json timing files land
//                                  (default: current directory)
//
// Absolute times scale with TLS_BENCH_ITERS; the ratios the paper reports
// stabilize after a few tens of iterations.
#pragma once

#include <chrono>  // host wall timing only — bench/ is outside the src/ lint
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "metrics/report.hpp"
#include "runtime/runner.hpp"

namespace tls::bench {

inline long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atol(v);
}

inline long bench_iters() { return env_long("TLS_BENCH_ITERS", 60); }
inline std::uint64_t bench_seed() {
  return static_cast<std::uint64_t>(env_long("TLS_BENCH_SEED", 1));
}
/// Requested worker-thread count; 0 = auto (TLS_JOBS / hardware).
inline long bench_jobs() { return env_long("TLS_BENCH_JOBS", 0); }
/// The thread count a bench will actually use.
inline long resolved_jobs() {
  long jobs = bench_jobs();
  return jobs > 0 ? jobs : tls::runtime::default_jobs();
}

/// Maps `--iters/--seed/--jobs N` flags onto the TLS_BENCH_* environment
/// variables, so both spellings behave identically everywhere downstream.
/// Call first thing in every bench main().
inline void init(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    std::string flag = argv[i];
    const char* value = argv[i + 1];
    if (flag == "--iters") {
      ::setenv("TLS_BENCH_ITERS", value, 1);
    } else if (flag == "--seed") {
      ::setenv("TLS_BENCH_SEED", value, 1);
    } else if (flag == "--jobs") {
      ::setenv("TLS_BENCH_JOBS", value, 1);
    }
  }
}

/// The paper's testbed configuration: 21 hosts, 21 concurrent ResNet-32
/// grid-search jobs, 1 PS + 20 workers each, synchronous, batch 4.
inline exp::ExperimentConfig paper_config() {
  exp::ExperimentConfig c;
  c.num_hosts = 21;
  c.workload.num_jobs = 21;
  c.workload.workers_per_job = 20;
  c.workload.local_batch_size = 4;
  c.workload.global_step_target = 20L * bench_iters();
  c.placement = cluster::table1(1, 21);
  c.seed = bench_seed();
  // Rotation interval scaled to the shortened runs (paper: 20 s over
  // thousands of seconds; here ~1/4 of the run, same ratio ballpark).
  c.controller.rotation_interval = 10 * sim::kSecond;
  return c;
}

/// Machine-readable per-bench timing: construct at the top of main(),
/// count simulated runs via add_runs(); the destructor writes
//  $TLS_BENCH_JSON_DIR/BENCH_<name>.json so the perf trajectory of every
/// bench is tracked across revisions.
class Timing {
 public:
  explicit Timing(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

  Timing(const Timing&) = delete;
  Timing& operator=(const Timing&) = delete;

  void add_runs(long runs) { runs_ += runs; }
  void add_cache_hits(long hits) { cache_hits_ += hits; }

  ~Timing() {
    double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const char* dir = std::getenv("TLS_BENCH_JSON_DIR");
    std::string path = std::string(dir != nullptr && *dir != '\0' ? dir : ".") +
                       "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return;  // timing is best-effort, never fails a bench
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"%s\",\n"
                 "  \"wall_s\": %.6f,\n"
                 "  \"runs\": %lld,\n"
                 "  \"cache_hits\": %lld,\n"
                 "  \"jobs\": %lld,\n"
                 "  \"iters\": %lld,\n"
                 "  \"seed\": %llu\n"
                 "}\n",
                 name_.c_str(), wall_s, static_cast<long long>(runs_),
                 static_cast<long long>(cache_hits_),
                 static_cast<long long>(resolved_jobs()),
                 static_cast<long long>(bench_iters()),
                 static_cast<unsigned long long>(bench_seed()));
    std::fclose(f);
  }

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  long runs_ = 0;
  long cache_hits_ = 0;
};

/// Fans `configs` across the tls::runtime pool (TLS_BENCH_JOBS threads,
/// TLS_CACHE_DIR cache) and returns results in submission order — the
/// parallel output is byte-identical to a serial loop.
inline std::vector<exp::ExperimentResult> run_all(
    const std::vector<exp::ExperimentConfig>& configs,
    Timing* timing = nullptr) {
  runtime::RunPlan plan;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    plan.add("run" + std::to_string(i), configs[i]);
  }
  runtime::RunOptions options;  // cache_dir defaults from $TLS_CACHE_DIR
  options.jobs = static_cast<int>(bench_jobs());
  options.progress = env_long("TLS_BENCH_PROGRESS", 0) != 0;
  runtime::RunReport report = runtime::run_plan(plan, options);
  if (timing != nullptr) {
    timing->add_runs(static_cast<long>(configs.size()));
    timing->add_cache_hits(static_cast<long>(report.cache_hits));
  }
  return std::move(report.results);
}

inline void print_header(const char* experiment, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper: %s\n", paper_claim);
  // Format audit: long long / unsigned long long with matching casts —
  // long-vs-int64 specifier mismatches here once broke 32-bit builds.
  std::printf("Iterations/job: %lld (paper: 1500), seed: %llu, jobs: %lld\n",
              static_cast<long long>(bench_iters()),
              static_cast<unsigned long long>(bench_seed()),
              static_cast<long long>(resolved_jobs()));
  std::printf("==============================================================\n\n");
}

/// One Figure-3/6 style CDF row set: quantiles of a sample vector.
inline void print_cdf_rows(metrics::Table& table, const std::string& label,
                           const std::vector<double>& samples, double scale,
                           const char* unit) {
  metrics::Cdf cdf(samples);
  table.add_row({label,
                 metrics::fmt(cdf.value_at(0.10) * scale, 1),
                 metrics::fmt(cdf.value_at(0.25) * scale, 1),
                 metrics::fmt(cdf.value_at(0.50) * scale, 1),
                 metrics::fmt(cdf.value_at(0.75) * scale, 1),
                 metrics::fmt(cdf.value_at(0.90) * scale, 1),
                 metrics::fmt(cdf.mean() * scale, 1), unit});
}

}  // namespace tls::bench
