// Shared helpers for the figure/table reproduction harnesses.
//
// Scale knobs (environment variables):
//   TLS_BENCH_ITERS  iterations per job   (default 60; paper: 1500)
//   TLS_BENCH_SEED   base RNG seed        (default 1)
//
// Absolute times scale with TLS_BENCH_ITERS; the ratios the paper reports
// stabilize after a few tens of iterations.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "exp/experiment.hpp"
#include "metrics/report.hpp"

namespace tls::bench {

inline long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atol(v);
}

inline long bench_iters() { return env_long("TLS_BENCH_ITERS", 60); }
inline std::uint64_t bench_seed() {
  return static_cast<std::uint64_t>(env_long("TLS_BENCH_SEED", 1));
}

/// The paper's testbed configuration: 21 hosts, 21 concurrent ResNet-32
/// grid-search jobs, 1 PS + 20 workers each, synchronous, batch 4.
inline exp::ExperimentConfig paper_config() {
  exp::ExperimentConfig c;
  c.num_hosts = 21;
  c.workload.num_jobs = 21;
  c.workload.workers_per_job = 20;
  c.workload.local_batch_size = 4;
  c.workload.global_step_target = 20L * bench_iters();
  c.placement = cluster::table1(1, 21);
  c.seed = bench_seed();
  // Rotation interval scaled to the shortened runs (paper: 20 s over
  // thousands of seconds; here ~1/4 of the run, same ratio ballpark).
  c.controller.rotation_interval = 10 * sim::kSecond;
  return c;
}

inline void print_header(const char* experiment, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper: %s\n", paper_claim);
  std::printf("Iterations/job: %ld (paper: 1500), seed: %llu\n",
              bench_iters(),
              static_cast<unsigned long long>(bench_seed()));
  std::printf("==============================================================\n\n");
}

/// One Figure-3/6 style CDF row set: quantiles of a sample vector.
inline void print_cdf_rows(metrics::Table& table, const std::string& label,
                           const std::vector<double>& samples, double scale,
                           const char* unit) {
  metrics::Cdf cdf(samples);
  table.add_row({label,
                 metrics::fmt(cdf.value_at(0.10) * scale, 1),
                 metrics::fmt(cdf.value_at(0.25) * scale, 1),
                 metrics::fmt(cdf.value_at(0.50) * scale, 1),
                 metrics::fmt(cdf.value_at(0.75) * scale, 1),
                 metrics::fmt(cdf.value_at(0.90) * scale, 1),
                 metrics::fmt(cdf.mean() * scale, 1), unit});
}

}  // namespace tls::bench
