// Ablation: the TLs-RR rotation interval T. The paper argues seconds-to-
// minutes suffices because jobs run for hours; with our scaled runs we
// sweep T relative to the run length and report both efficiency (avg
// normalized JCT) and fairness (spread of per-job JCTs).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace tls;
  bench::init(argc, argv);
  bench::Timing timing("ablate_interval");
  bench::print_header(
      "Ablation - TLs-RR rotation interval T (placement #1)",
      "T in seconds-to-minutes achieves fairness without losing the "
      "straggler benefit");

  exp::ExperimentConfig base = bench::paper_config();
  const std::vector<double> intervals = {1.0, 2.0, 5.0, 10.0, 30.0};
  // Runs 0/1 are the FIFO baseline and TLs-One; then one TLs-RR per T.
  std::vector<exp::ExperimentConfig> configs;
  configs.push_back(exp::with_policy(base, core::PolicyKind::kFifo));
  configs.push_back(exp::with_policy(base, core::PolicyKind::kTlsOne));
  for (double t : intervals) {
    exp::ExperimentConfig c = exp::with_policy(base, core::PolicyKind::kTlsRR);
    c.controller.rotation_interval = sim::from_seconds(t);
    configs.push_back(std::move(c));
  }
  std::vector<exp::ExperimentResult> results =
      bench::run_all(configs, &timing);
  const exp::ExperimentResult& fifo = results[0];
  const exp::ExperimentResult& one = results[1];

  auto jain_of = [](const exp::ExperimentResult& r) {
    std::vector<double> jcts;
    for (const auto& j : r.jobs) jcts.push_back(j.jct_s);
    return metrics::jain_fairness(jcts);
  };

  metrics::Table table({"policy", "T (s)", "avg norm JCT", "JCT spread (s)",
                        "Jain fairness", "rotations"});
  double one_spread = one.max_jct_s - one.min_jct_s;
  table.add_row({"TLs-One", "-", metrics::fmt(exp::avg_normalized_jct(one, fifo), 3),
                 metrics::fmt(one_spread), metrics::fmt(jain_of(one), 4), "0"});
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const exp::ExperimentResult& r = results[i + 2];
    table.add_row({"TLs-RR", metrics::fmt(intervals[i], 0),
                   metrics::fmt(exp::avg_normalized_jct(r, fifo), 3),
                   metrics::fmt(r.max_jct_s - r.min_jct_s),
                   metrics::fmt(jain_of(r), 4),
                   std::to_string(r.rotations)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Reading: small T keeps per-job progress even (small spread) at a\n"
      "small efficiency cost; very large T degenerates toward TLs-One.\n");
  return 0;
}
