// Quickstart: run a small grid-search workload with colocated parameter
// servers under FIFO, TLs-One, and TLs-RR, and compare completion times.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "exp/experiment.hpp"
#include "metrics/report.hpp"

int main() {
  using namespace tls;

  exp::ExperimentConfig config;
  config.num_hosts = 8;
  config.workload.num_jobs = 8;
  config.workload.workers_per_job = 7;
  config.workload.global_step_target = 7 * 40;  // 40 iterations per job
  config.workload.local_batch_size = 1;  // small batch = heavy contention
  config.fabric.link_rate = net::gbps(2.5);  // slower links: heavy contention
  config.placement = cluster::table1(1, 8);  // every PS on one host
  config.controller.rotation_interval = 5 * sim::kSecond;
  config.seed = 42;

  std::cout << "TensorLights quickstart: " << config.workload.num_jobs
            << " concurrent ResNet-32 jobs on 2.5 Gbps links, all PSes "
               "colocated on host0\n\n";

  metrics::Table table({"policy", "avg JCT (s)", "min", "max",
                        "norm. vs FIFO", "barrier var (ms^2)", "tc cmds"});
  exp::ExperimentResult fifo;
  for (auto policy : {core::PolicyKind::kFifo, core::PolicyKind::kTlsOne,
                      core::PolicyKind::kTlsRR}) {
    exp::ExperimentResult r =
        exp::run_experiment(exp::with_policy(config, policy));
    if (policy == core::PolicyKind::kFifo) fifo = r;
    double norm = exp::avg_normalized_jct(r, fifo);
    table.add_row({r.policy_name, metrics::fmt(r.avg_jct_s),
                   metrics::fmt(r.min_jct_s), metrics::fmt(r.max_jct_s),
                   metrics::fmt(norm, 3),
                   metrics::fmt(r.barrier_variance_summary.mean * 1e6, 1),
                   std::to_string(r.tc_commands)});
  }
  std::cout << table << "\nLower normalized JCT and lower barrier-wait "
               "variance mean fewer stragglers.\n";
  return 0;
}
