// tc playground: drive the traffic-control substrate directly with the tc
// command DSL, exactly as the TensorLights controller does, and watch how
// the qdisc changes who gets the wire.
//
// Three acts on one 10 Gbps egress carrying two competing bursts:
//   1. default pfifo            - arrival order wins
//   2. htb with two classes     - priority wins (green passes, yellow yields)
//   3. htb with a hard ceiling  - the shaped class cannot exceed its rate
//
// Run: ./build/examples/tc_playground
#include <iostream>
#include <vector>

#include "metrics/report.hpp"
#include "net/fabric.hpp"
#include "simcore/simulator.hpp"
#include "tc/tc.hpp"

using namespace tls;

namespace {

/// Sends two 8 MB bursts from host0 (ports 7000 and 7100) to two
/// receivers and reports each burst's completion time.
void run_act(const std::string& title,
             const std::vector<std::string>& commands) {
  sim::Simulator simulator(3);
  net::FabricConfig fc;
  fc.num_hosts = 3;
  fc.tcp_weight_sigma = 0;
  fc.protocol_overhead = 1.0;
  net::Fabric fabric(simulator, fc);
  tc::TrafficControl control(fabric);

  std::cout << title << "\n";
  for (const std::string& cmd : commands) {
    tc::Status s = control.exec(cmd);
    std::cout << "  $ tc " << cmd.substr(3) << "\n";
    if (!s.ok) {
      std::cout << "    error: " << s.error << "\n";
      return;
    }
  }

  double done[2] = {0, 0};
  for (int i = 0; i < 2; ++i) {
    net::FlowSpec f;
    f.src = tls::net::HostId{0};
    f.dst = tls::net::HostId{1 + i};
    f.bytes = 8 * net::kMiB;
    f.src_port = static_cast<std::uint16_t>(7000 + 100 * i);
    fabric.start_flow(f, [&done, i](const net::FlowRecord& r) {
      done[i] = sim::to_millis(r.end);
    });
  }
  simulator.run();
  std::cout << "  burst A (sport 7000) done at " << metrics::fmt(done[0], 2)
            << " ms, burst B (sport 7100) done at "
            << metrics::fmt(done[1], 2) << " ms\n\n";
}

}  // namespace

int main() {
  std::cout << "tc playground: two 8 MB bursts sharing one 10 Gbps egress\n\n";

  run_act("Act 1 - default pfifo (no configuration):", {});

  run_act("Act 2 - htb strict priority, burst A in the high class:",
          {
              "tc qdisc add dev host0 root handle 1: htb default 3f",
              "tc class add dev host0 parent 1: classid 1:3f htb rate 2gbit "
              "ceil 10gbit prio 7",
              "tc class add dev host0 parent 1: classid 1:1 htb rate 1mbit "
              "ceil 10gbit prio 0",
              "tc class add dev host0 parent 1: classid 1:2 htb rate 1mbit "
              "ceil 10gbit prio 1",
              "tc filter add dev host0 parent 1: pref 10 u32 match ip sport "
              "7000 0xffff flowid 1:1",
              "tc filter add dev host0 parent 1: pref 11 u32 match ip sport "
              "7100 0xffff flowid 1:2",
          });

  run_act("Act 3 - htb shaping, burst B capped at 1 gbit (ceil == rate):",
          {
              "tc qdisc add dev host0 root handle 1: htb default 3f",
              "tc class add dev host0 parent 1: classid 1:3f htb rate 9gbit "
              "ceil 10gbit prio 0",
              "tc class add dev host0 parent 1: classid 1:2 htb rate 1gbit "
              "ceil 1gbit prio 1",
              "tc filter add dev host0 parent 1: pref 11 u32 match ip sport "
              "7100 0xffff flowid 1:2",
          });

  std::cout << "Act 1: fair sharing, both finish together at ~13 ms.\n"
               "Act 2: A finishes in ~7 ms (one burst's serialization), B\n"
               "        still ~13 ms - priority is work-conserving.\n"
               "Act 3: B is rate-limited to 1 gbit and takes ~8x longer,\n"
               "        while A rides the unshaped default class.\n";
  return 0;
}
