// Heterogeneous job mix with the smallest-model-first assignment —
// Section IV-B's advice: "a higher priority can be assigned to a job with
// a smaller model update, so as to avoid head-of-line blocking from a job
// with larger model update."
//
// Scenario: an inference-refresh fleet (small ResNet-32 jobs) shares PS
// hosts with large vision-model training (Inception-v3, AlexNet). Under
// FIFO the small jobs' 1.9 MB updates queue behind 95-244 MB bursts.
//
// Run: ./build/examples/heterogeneous_mix
#include <iostream>

#include "cluster/launcher.hpp"
#include "cluster/placement.hpp"
#include "metrics/report.hpp"
#include "simcore/simulator.hpp"
#include "tc/tc.hpp"
#include "tensorlights/controller.hpp"
#include "workload/gridsearch.hpp"

using namespace tls;

namespace {

struct Outcome {
  std::string policy;
  double avg = 0;
  double small_avg = 0;
  double big_avg = 0;
};

Outcome run(core::PolicyKind policy, core::AssignStrategy strategy) {
  sim::Simulator simulator(11);
  net::FabricConfig fc;
  fc.num_hosts = 11;
  net::Fabric fabric(simulator, fc);
  tc::TrafficControl control(fabric);
  core::ControllerConfig cc;
  cc.policy = policy;
  cc.strategy = strategy;
  core::Controller controller(simulator, control, cc);
  cluster::Launcher launcher(simulator, fabric);
  launcher.add_listener(&controller);

  std::vector<workload::MixEntry> mix = {
      {dl::zoo::inception_v3(), 2, 2, 10L * 4},
      {dl::zoo::resnet32_cifar10(), 4, 1, 10L * 15},
      {dl::zoo::alexnet(), 2, 2, 10L * 3},
  };
  auto specs = workload::heterogeneous_jobs(mix, /*workers=*/10);
  auto placements =
      cluster::assign_tasks(cluster::table1(1, static_cast<int>(specs.size())),
                            11, 10);
  launcher.launch_all(std::move(specs), std::move(placements), {});
  while (!launcher.all_finished() && !simulator.idle() &&
         simulator.now() < 3600 * sim::kSecond) {
    simulator.run(simulator.now() + sim::kSecond);
  }

  Outcome o;
  o.policy = std::string(to_string(policy)) +
             (policy == core::PolicyKind::kFifo
                  ? ""
                  : std::string(" / ") + to_string(strategy));
  int small_n = 0, big_n = 0;
  for (const auto& job : launcher.jobs()) {
    double jct = sim::to_seconds(job->jct());
    o.avg += jct;
    if (job->spec().model.name == "resnet32_cifar10") {
      o.small_avg += jct;
      ++small_n;
    } else {
      o.big_avg += jct;
      ++big_n;
    }
  }
  o.avg /= static_cast<double>(launcher.jobs().size());
  o.small_avg /= small_n;
  o.big_avg /= big_n;
  return o;
}

}  // namespace

int main() {
  std::cout << "Heterogeneous mix: 4x ResNet-32 (1.9 MB updates) sharing one\n"
               "PS host with 2x Inception-v3 (95 MB) and 2x AlexNet (244 MB)\n\n";
  metrics::Table table({"policy", "avg JCT (s)", "small jobs", "large jobs"});
  std::vector<Outcome> outcomes = {
      run(core::PolicyKind::kFifo, core::AssignStrategy::kArrivalOrder),
      run(core::PolicyKind::kTlsOne, core::AssignStrategy::kSmallestModelFirst),
      run(core::PolicyKind::kTlsRR, core::AssignStrategy::kSmallestModelFirst),
  };
  for (const Outcome& o : outcomes) {
    table.add_row({o.policy, metrics::fmt(o.avg), metrics::fmt(o.small_avg),
                   metrics::fmt(o.big_avg)});
  }
  std::cout << table
            << "\nSmall jobs stop queueing behind hundred-megabyte bursts; "
               "large jobs\nlose little because priority is work-conserving.\n";
  return 0;
}
