// Grid-search campaign at the paper's scale: 21 hosts, 21 concurrent
// ResNet-32/CIFAR-10 jobs (1 PS + 20 workers each, synchronous, batch 4),
// run under every scheduling policy across a choice of PS placements.
// This is the workload of Sections III and V of the paper, end to end:
// the cluster launcher staggers jobs 0.1 s apart, the TensorLights
// controller configures htb/filters on PS hosts at arrival, and the
// report shows per-policy completion times, straggler metrics, and the
// number of tc commands each policy needed.
//
// Run: ./build/examples/grid_search_campaign [iterations-per-job]
#include <cstdlib>
#include <iostream>

#include "exp/experiment.hpp"
#include "metrics/report.hpp"

int main(int argc, char** argv) {
  using namespace tls;
  long iters = argc > 1 ? std::atol(argv[1]) : 40;

  exp::ExperimentConfig config;
  config.num_hosts = 21;
  config.workload.num_jobs = 21;
  config.workload.workers_per_job = 20;
  config.workload.local_batch_size = 4;
  config.workload.global_step_target = 20L * iters;
  config.controller.rotation_interval = 10 * sim::kSecond;

  std::cout << "Grid-search campaign: 21 x ResNet-32/CIFAR-10, sync, batch 4, "
            << iters << " iterations/job\n\n";

  for (int placement_index : {1, 4, 8}) {
    config.placement = cluster::table1(placement_index, 21);
    std::cout << "PS placement #" << placement_index << " ("
              << config.placement.name << "):\n";
    metrics::Table table({"policy", "avg JCT (s)", "min..max",
                          "barrier wait (ms)", "wait var (ms^2)", "tc cmds",
                          "rotations"});
    exp::ExperimentResult fifo;
    for (auto policy : {core::PolicyKind::kFifo, core::PolicyKind::kTlsOne,
                        core::PolicyKind::kTlsRR}) {
      exp::ExperimentResult r =
          exp::run_experiment(exp::with_policy(config, policy));
      if (policy == core::PolicyKind::kFifo) fifo = r;
      table.add_row(
          {r.policy_name, metrics::fmt(r.avg_jct_s),
           metrics::fmt(r.min_jct_s, 1) + ".." + metrics::fmt(r.max_jct_s, 1),
           metrics::fmt(r.barrier_mean_summary.mean * 1e3, 1),
           metrics::fmt(r.barrier_variance_summary.mean * 1e6, 0),
           std::to_string(r.tc_commands), std::to_string(r.rotations)});
    }
    std::cout << table << "\n";
  }
  std::cout << "TensorLights only helps where PSes contend (placement #1) and\n"
               "is a no-op on uniform placements - it is work-conserving.\n";
  return 0;
}
