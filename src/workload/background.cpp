#include "workload/background.hpp"

#include <cassert>
#include <stdexcept>

namespace tls::workload {

BackgroundTraffic::BackgroundTraffic(sim::Simulator& simulator,
                                     net::Fabric& fabric,
                                     BackgroundTrafficConfig config)
    : sim_(simulator),
      fabric_(fabric),
      config_(config),
      rng_(simulator.rng().fork("background")) {
  if (config_.flows_per_second <= 0) {
    throw std::invalid_argument("flows_per_second must be positive");
  }
  if (config_.mean_bytes < net::Bytes{1}) {
    throw std::invalid_argument("mean_bytes must be at least 1");
  }
  if (fabric_.num_hosts() < 2) {
    throw std::invalid_argument("background traffic needs >= 2 hosts");
  }
}

void BackgroundTraffic::start() {
  if (running_) return;
  running_ = true;
  arm_next();
}

void BackgroundTraffic::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = sim::EventId{};
}

void BackgroundTraffic::arm_next() {
  double gap_s = rng_.exponential(1.0 / config_.flows_per_second);
  pending_ = sim_.schedule_after(sim::from_seconds(gap_s), [this] {
    if (!running_) return;
    launch_one();
    arm_next();
  });
}

void BackgroundTraffic::launch_one() {
  int n = fabric_.num_hosts();
  net::HostId src{static_cast<std::int32_t>(
      rng_.uniform_u64(static_cast<std::uint64_t>(n)))};
  net::HostId dst{static_cast<std::int32_t>(
      rng_.uniform_u64(static_cast<std::uint64_t>(n - 1)))};
  if (dst >= src) ++dst;  // distinct endpoints, uniform over pairs

  net::FlowSpec flow;
  flow.src = src;
  flow.dst = dst;
  flow.bytes = std::max(
      net::Bytes{1}, net::Bytes{static_cast<std::int64_t>(rng_.exponential(
                         net::to_double(config_.mean_bytes)))});
  flow.dst_port = config_.port;
  flow.kind = net::FlowKind::kBulk;
  ++started_;
  bytes_ += flow.bytes;
  fabric_.start_flow(flow, [this](const net::FlowRecord& rec) {
    ++completed_;
    fct_sum_s_ += sim::to_seconds(rec.end - rec.start);
  });
}

double BackgroundTraffic::mean_fct_s() const {
  return completed_ == 0 ? 0.0 : fct_sum_s_ / static_cast<double>(completed_);
}

}  // namespace tls::workload
