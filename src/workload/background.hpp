// Background cross-traffic: Poisson flow arrivals with exponential sizes
// between random host pairs. Production clusters never give DL jobs a
// quiet network (the paper had to avoid the public cloud for exactly this
// reason); this generator lets experiments ask whether TensorLights'
// benefit survives interference and whether the htb default class keeps
// background traffic from starving.
#pragma once

#include <cstdint>

#include "net/fabric.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulator.hpp"

namespace tls::workload {

struct BackgroundTrafficConfig {
  /// Cluster-wide Poisson arrival rate.
  double flows_per_second = 5.0;
  /// Mean of the exponential flow-size distribution.
  net::Bytes mean_bytes = 8 * net::kMiB;
  /// Destination port carried by background flows (so tc filters can
  /// match or ignore them).
  std::uint16_t port = 9000;
};

class BackgroundTraffic {
 public:
  BackgroundTraffic(sim::Simulator& simulator, net::Fabric& fabric,
                    BackgroundTrafficConfig config);

  BackgroundTraffic(const BackgroundTraffic&) = delete;
  BackgroundTraffic& operator=(const BackgroundTraffic&) = delete;

  /// Begins generating flows; the first arrival is one inter-arrival time
  /// from now.
  void start();

  /// Stops generating new flows (in-flight flows complete normally).
  void stop();

  bool running() const { return running_; }
  std::uint64_t flows_started() const { return started_; }
  std::uint64_t flows_completed() const { return completed_; }
  net::Bytes bytes_injected() const { return bytes_; }
  /// Mean completion time of finished background flows, seconds.
  double mean_fct_s() const;

 private:
  void arm_next();
  void launch_one();

  sim::Simulator& sim_;
  net::Fabric& fabric_;
  BackgroundTrafficConfig config_;
  sim::Rng rng_;
  bool running_ = false;
  sim::EventId pending_{};
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  net::Bytes bytes_{};
  double fct_sum_s_ = 0;
};

}  // namespace tls::workload
