// Workload generators.
//
// The paper's evaluation workload is a grid search: N identical concurrent
// jobs training the same model on the same dataset with different
// hyper-parameters (identical compute/communication shape). The
// heterogeneous mix generator adds jobs of different model sizes for the
// smallest-model-first assignment experiments.
#pragma once

#include <vector>

#include "dl/job.hpp"

namespace tls::workload {

struct GridSearchConfig {
  int num_jobs = 21;
  dl::ModelSpec model = dl::zoo::resnet32_cifar10();
  int workers_per_job = 20;
  /// PS shards per job (1 = the paper's main setup).
  int ps_per_job = 1;
  int local_batch_size = 4;
  /// Paper target is 30000; benches scale this down — JCT ratios stabilize
  /// after a few tens of iterations.
  std::int64_t global_step_target = 3000;
  dl::TrainingMode mode = dl::TrainingMode::kSync;
  double compute_sigma = 0.12;
  /// Per-local-step fixed overhead (see dl::JobSpec::step_overhead); -1
  /// keeps the JobSpec default.
  sim::Time step_overhead{-1};
};

/// N identical jobs with job ids 0..N-1 (ports assigned at launch).
std::vector<dl::JobSpec> grid_search_jobs(const GridSearchConfig& config);

struct MixEntry {
  dl::ModelSpec model;
  int count = 1;
  int local_batch_size = 4;
  std::int64_t global_step_target = 1000;
};

/// Concatenates groups of jobs with different models; worker count and
/// training mode are shared. Job ids are assigned in order.
std::vector<dl::JobSpec> heterogeneous_jobs(
    const std::vector<MixEntry>& entries, int workers_per_job,
    dl::TrainingMode mode = dl::TrainingMode::kSync,
    double compute_sigma = 0.12);

}  // namespace tls::workload
