#include "workload/gridsearch.hpp"

#include <stdexcept>

namespace tls::workload {

std::vector<dl::JobSpec> grid_search_jobs(const GridSearchConfig& config) {
  if (config.num_jobs < 1) throw std::invalid_argument("num_jobs < 1");
  if (config.local_batch_size < 1) {
    throw std::invalid_argument("local_batch_size < 1");
  }
  std::vector<dl::JobSpec> specs;
  specs.reserve(static_cast<std::size_t>(config.num_jobs));
  for (int j = 0; j < config.num_jobs; ++j) {
    dl::JobSpec spec;
    spec.job_id = j;
    spec.model = config.model;
    spec.num_workers = config.workers_per_job;
    spec.num_ps = config.ps_per_job;
    spec.local_batch_size = config.local_batch_size;
    spec.global_step_target = config.global_step_target;
    spec.mode = config.mode;
    spec.compute_sigma = config.compute_sigma;
    if (config.step_overhead >= sim::Time{0}) spec.step_overhead = config.step_overhead;
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<dl::JobSpec> heterogeneous_jobs(
    const std::vector<MixEntry>& entries, int workers_per_job,
    dl::TrainingMode mode, double compute_sigma) {
  std::vector<dl::JobSpec> specs;
  std::int32_t id = 0;
  for (const MixEntry& e : entries) {
    if (e.count < 1) throw std::invalid_argument("mix entry count < 1");
    for (int j = 0; j < e.count; ++j) {
      dl::JobSpec spec;
      spec.job_id = id++;
      spec.model = e.model;
      spec.num_workers = workers_per_job;
      spec.local_batch_size = e.local_batch_size;
      spec.global_step_target = e.global_step_target;
      spec.mode = mode;
      spec.compute_sigma = compute_sigma;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

}  // namespace tls::workload
