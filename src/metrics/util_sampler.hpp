// Host utilization measurement: the vmstat / ifstat analogs.
//
// CPU: tasks report busy intervals [begin, end) per host; utilization over
// a window is overlapped-busy-core-seconds / (cores * window). NIC: the
// sampler snapshots the fabric's cumulative byte counters on a timer;
// utilization over a window is the byte delta over rate * window. Table II
// reports both, normalized FIFO-relative, over the paper's "active window"
// when all jobs are running.
#pragma once

#include <cstdint>
#include <vector>

#include "net/fabric.hpp"
#include "obs/metrics_registry.hpp"
#include "simcore/simulator.hpp"

namespace tls::metrics {

/// Collects CPU-busy intervals per host (plug it in as the dl::BusySink).
class BusyAccumulator {
 public:
  explicit BusyAccumulator(int num_hosts);

  void add(net::HostId host, sim::Time begin, sim::Time end);

  /// Busy core-seconds of `host` overlapping [w_begin, w_end).
  double busy_seconds_in(net::HostId host, sim::Time w_begin,
                         sim::Time w_end) const;

  /// Utilization in [0, inf): busy core-seconds / (cores * window). Values
  /// above 1 mean oversubscription (more runnable tasks than cores).
  double cpu_utilization(net::HostId host, sim::Time w_begin, sim::Time w_end,
                         int cores) const;

  std::size_t interval_count(net::HostId host) const;

 private:
  struct Interval {
    sim::Time begin;
    sim::Time end;
  };
  std::vector<std::vector<Interval>> per_host_;
};

/// One snapshot of a host NIC's cumulative counters.
struct NicSample {
  sim::Time at{};
  net::Bytes tx{};
  net::Bytes rx{};
};

/// Periodically snapshots every host's NIC counters (the ifstat analog).
class NicSampler {
 public:
  /// Starts sampling immediately and then every `period`. When `registry`
  /// is non-null every snapshot is mirrored into the obs timeseries as
  /// nic_tx_bytes / nic_rx_bytes points, so the ifstat analog and the
  /// metrics export share one sampling clock.
  NicSampler(sim::Simulator& simulator, net::Fabric& fabric, sim::Time period,
             obs::Registry* registry = nullptr);

  /// Average utilization in [0,1] of host's direction over [w_begin,
  /// w_end], computed from the snapshots closest to the window edges.
  /// Returns 0 when fewer than two samples cover the window.
  double utilization(net::HostId host, bool outbound, sim::Time w_begin,
                     sim::Time w_end) const;

  const std::vector<NicSample>& series(net::HostId host) const;

 private:
  void sample();
  const NicSample* nearest(net::HostId host, sim::Time t) const;

  sim::Simulator& sim_;
  net::Fabric& fabric_;
  obs::Registry* registry_;
  std::vector<std::vector<NicSample>> per_host_;
  sim::PeriodicTimer timer_;
};

}  // namespace tls::metrics
