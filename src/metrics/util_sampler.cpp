#include "metrics/util_sampler.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace tls::metrics {

BusyAccumulator::BusyAccumulator(int num_hosts)
    : per_host_(static_cast<std::size_t>(num_hosts)) {}

void BusyAccumulator::add(net::HostId host, sim::Time begin, sim::Time end) {
  assert(end >= begin);
  per_host_.at(static_cast<std::size_t>(host.idx())).push_back({begin, end});
}

double BusyAccumulator::busy_seconds_in(net::HostId host, sim::Time w_begin,
                                        sim::Time w_end) const {
  double total = 0;
  for (const Interval& iv : per_host_.at(static_cast<std::size_t>(host.idx()))) {
    sim::Time lo = std::max(iv.begin, w_begin);
    sim::Time hi = std::min(iv.end, w_end);
    if (hi > lo) total += sim::to_seconds(hi - lo);
  }
  return total;
}

double BusyAccumulator::cpu_utilization(net::HostId host, sim::Time w_begin,
                                        sim::Time w_end, int cores) const {
  assert(cores > 0);
  double window = sim::to_seconds(w_end - w_begin);
  if (window <= 0) return 0;
  return busy_seconds_in(host, w_begin, w_end) /
         (window * static_cast<double>(cores));
}

std::size_t BusyAccumulator::interval_count(net::HostId host) const {
  return per_host_.at(static_cast<std::size_t>(host.idx())).size();
}

NicSampler::NicSampler(sim::Simulator& simulator, net::Fabric& fabric,
                       sim::Time period, obs::Registry* registry)
    : sim_(simulator),
      fabric_(fabric),
      registry_(registry),
      per_host_(static_cast<std::size_t>(fabric.num_hosts())),
      timer_(simulator, period, [this] { sample(); }) {
  sample();  // baseline snapshot at the current time
  timer_.start();
}

void NicSampler::sample() {
  for (net::HostId h{0}; h < net::HostId{fabric_.num_hosts()}; ++h) {
    NicSample s;
    s.at = sim_.now();
    s.tx = fabric_.egress(h).counters().bytes;
    s.rx = fabric_.ingress(h).counters().bytes;
    if (registry_ != nullptr) {
      registry_->record(s.at, "nic_tx_bytes", h.idx(), -1, -1,
                        net::to_double(s.tx));
      registry_->record(s.at, "nic_rx_bytes", h.idx(), -1, -1,
                        net::to_double(s.rx));
    }
    per_host_[static_cast<std::size_t>(h.idx())].push_back(s);
  }
}

const NicSample* NicSampler::nearest(net::HostId host, sim::Time t) const {
  const auto& v = per_host_.at(static_cast<std::size_t>(host.idx()));
  if (v.empty()) return nullptr;
  const NicSample* best = &v.front();
  for (const NicSample& s : v) {
    if (std::llabs(sim::to_nanos(s.at - t)) <
        std::llabs(sim::to_nanos(best->at - t))) {
      best = &s;
    }
  }
  return best;
}

double NicSampler::utilization(net::HostId host, bool outbound,
                               sim::Time w_begin, sim::Time w_end) const {
  const NicSample* a = nearest(host, w_begin);
  const NicSample* b = nearest(host, w_end);
  if (a == nullptr || b == nullptr || b->at <= a->at) return 0;
  net::Bytes delta = outbound ? (b->tx - a->tx) : (b->rx - a->rx);
  double seconds = sim::to_seconds(b->at - a->at);
  net::Rate rate = outbound ? fabric_.egress(host).rate()
                            : fabric_.ingress(host).rate();
  return net::to_double(delta) / net::bytes_in(rate, seconds);
}

const std::vector<NicSample>& NicSampler::series(net::HostId host) const {
  return per_host_.at(static_cast<std::size_t>(host.idx()));
}

}  // namespace tls::metrics
