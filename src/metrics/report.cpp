#include "metrics/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tls::metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("row width does not match header");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::csv() const {
  std::ostringstream os;
  // RFC 4180: cells containing a comma, quote, or newline are quoted, with
  // embedded quotes doubled; everything else passes through untouched.
  auto emit_cell = [&](const std::string& cell) {
    if (cell.find_first_of(",\"\r\n") == std::string::npos) {
      os << cell;
      return;
    }
    os << '"';
    for (char ch : cell) {
      if (ch == '"') os << '"';
      os << ch;
    }
    os << '"';
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      emit_cell(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.str();
}

std::string fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string fmt_ratio(double value, int digits) {
  return fmt(value, digits) + "x";
}

std::string fmt_percent(double fraction, int digits) {
  return fmt(fraction * 100.0, digits) + "%";
}

}  // namespace tls::metrics
