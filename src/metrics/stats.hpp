// Summary statistics and empirical CDFs for experiment reporting.
#pragma once

#include <cstddef>
#include <vector>

namespace tls::metrics {

/// Descriptive statistics of a sample set. Variance is the population
/// variance (the paper's "standard variance").
struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double median = 0;
  double variance = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  double p25 = 0;
  double p75 = 0;
  double p90 = 0;
  double p99 = 0;
};

/// Computes a Summary; an empty input yields a zeroed Summary.
Summary summarize(const std::vector<double>& samples);

/// Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1]; 1 means
/// perfectly equal allocation. Used to quantify TLs-RR's fairness claim.
/// Empty input or all-zero input yields 0.
double jain_fairness(const std::vector<double>& samples);

/// Linear-interpolated percentile of a *sorted* sample vector, q in [0,1].
double percentile_sorted(const std::vector<double>& sorted, double q);

/// Empirical cumulative distribution over a sample set.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples);

  void add(double sample);
  void add_all(const std::vector<double>& samples);

  std::size_t size() const { return sorted_ ? samples_.size() : samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Value at quantile q in [0, 1] (0.5 = median).
  double value_at(double q) const;

  /// Fraction of samples <= x.
  double fraction_below(double x) const;

  double mean() const;

  /// Evenly spaced (quantile, value) points for plotting, `points >= 2`.
  std::vector<std::pair<double, double>> curve(int points = 11) const;

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace tls::metrics
