// Plain-text table rendering for bench/experiment output, mirroring the
// rows the paper's tables and figures report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tls::metrics {

/// Fixed-column text table with a header row and aligned cells.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers
  /// (throws std::invalid_argument otherwise).
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const { return rows_.size(); }

  /// Renders with a header underline and two-space column gaps.
  std::string str() const;

  /// Renders as comma-separated values (no alignment padding).
  std::string csv() const;

  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` fraction digits.
std::string fmt(double value, int digits = 2);

/// Formats a ratio as "1.23x".
std::string fmt_ratio(double value, int digits = 2);

/// Formats a fraction as a percentage, e.g. 0.27 -> "27.0%".
std::string fmt_percent(double fraction, int digits = 1);

}  // namespace tls::metrics
