#include "metrics/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tls::metrics {

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  if (q <= 0) return sorted.front();
  if (q >= 1) return sorted.back();
  double pos = q * static_cast<double>(sorted.size() - 1);
  std::size_t lo = static_cast<std::size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1 - frac) + sorted[lo + 1] * frac;
}

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) return s;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  double sum = 0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  double var = 0;
  for (double v : sorted) var += (v - s.mean) * (v - s.mean);
  s.variance = var / static_cast<double>(s.count);
  s.stddev = std::sqrt(s.variance);
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = percentile_sorted(sorted, 0.5);
  s.p25 = percentile_sorted(sorted, 0.25);
  s.p75 = percentile_sorted(sorted, 0.75);
  s.p90 = percentile_sorted(sorted, 0.90);
  s.p99 = percentile_sorted(sorted, 0.99);
  return s;
}

double jain_fairness(const std::vector<double>& samples) {
  if (samples.empty()) return 0;
  double sum = 0, sq = 0;
  for (double v : samples) {
    sum += v;
    sq += v * v;
  }
  if (sq == 0) return 0;
  return sum * sum / (static_cast<double>(samples.size()) * sq);
}

Cdf::Cdf(std::vector<double> samples) : samples_(std::move(samples)) {}

void Cdf::add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void Cdf::add_all(const std::vector<double>& samples) {
  samples_.insert(samples_.end(), samples.begin(), samples.end());
  sorted_ = false;
}

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::value_at(double q) const {
  ensure_sorted();
  return percentile_sorted(samples_, q);
}

double Cdf::fraction_below(double x) const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::mean() const {
  if (samples_.empty()) return 0;
  double sum = 0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Cdf::curve(int points) const {
  assert(points >= 2);
  std::vector<std::pair<double, double>> out;
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    double q = static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(q, value_at(q));
  }
  return out;
}

}  // namespace tls::metrics
