#include "exp/export.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace tls::exp {

namespace {
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}
}  // namespace

std::string jobs_csv(const ExperimentResult& result) {
  std::ostringstream os;
  os << "job_id,jct_s,iterations,finished\n";
  for (const JobResult& j : result.jobs) {
    os << j.job_id << ',' << num(j.jct_s) << ',' << j.iterations << ','
       << (j.finished ? 1 : 0) << '\n';
  }
  return os.str();
}

std::string barriers_csv(const ExperimentResult& result) {
  std::ostringstream os;
  os << "job_id,barrier,mean_wait_s,var_wait_s2\n";
  for (const JobResult& j : result.jobs) {
    for (std::size_t b = 0; b < j.barrier_mean_waits_s.size(); ++b) {
      os << j.job_id << ',' << b << ',' << num(j.barrier_mean_waits_s[b])
         << ',' << num(j.barrier_variances_s2[b]) << '\n';
    }
  }
  return os.str();
}

std::string to_json(const ExperimentResult& result) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"policy\": \"" << json_escape(result.policy_name) << "\",\n";
  os << "  \"jobs\": " << result.jobs.size() << ",\n";
  os << "  \"all_finished\": " << (result.all_finished ? "true" : "false")
     << ",\n";
  os << "  \"avg_jct_s\": " << num(result.avg_jct_s) << ",\n";
  os << "  \"min_jct_s\": " << num(result.min_jct_s) << ",\n";
  os << "  \"max_jct_s\": " << num(result.max_jct_s) << ",\n";
  os << "  \"barrier_wait_mean_s\": " << num(result.barrier_mean_summary.mean)
     << ",\n";
  os << "  \"barrier_wait_variance_mean_s2\": "
     << num(result.barrier_variance_summary.mean) << ",\n";
  os << "  \"barrier_wait_variance_median_s2\": "
     << num(result.barrier_variance_summary.median) << ",\n";
  os << "  \"cpu_util_ps_hosts\": " << num(result.cpu_util_ps_hosts) << ",\n";
  os << "  \"cpu_util_worker_hosts\": " << num(result.cpu_util_worker_hosts)
     << ",\n";
  os << "  \"nic_in_util\": " << num(result.nic_in_util) << ",\n";
  os << "  \"nic_out_util\": " << num(result.nic_out_util) << ",\n";
  os << "  \"tc_commands\": " << result.tc_commands << ",\n";
  os << "  \"rotations\": " << result.rotations << ",\n";
  os << "  \"sim_events\": " << result.sim_events << ",\n";
  os << "  \"sim_horizon_s\": " << num(result.sim_horizon_s) << "\n";
  os << "}\n";
  return os.str();
}

bool write_file(const std::string& path, const std::string& content,
                std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  out << content;
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

}  // namespace tls::exp
