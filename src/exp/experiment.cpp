#include "exp/experiment.hpp"

#include <algorithm>
#include <memory>
#include <set>
#include <stdexcept>

#include "cluster/launcher.hpp"
#include "exp/export.hpp"
#include "metrics/util_sampler.hpp"
#include "obs/analysis.hpp"
#include "obs/export.hpp"
#include "obs/html.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/streaming.hpp"
#include "simcore/simulator.hpp"
#include "tc/tc.hpp"
#include "tensorlights/controller.hpp"

namespace tls::exp {

ExperimentResult run_experiment(const ExperimentConfig& config) {
  if (config.placement.total_jobs() != config.workload.num_jobs) {
    throw std::invalid_argument("placement job count != workload job count");
  }

  sim::Simulator simulator(config.seed);

  // Observability attaches before any component is built so every port and
  // qdisc picks the tracer up at wiring time.
  std::unique_ptr<obs::Registry> registry;
  std::unique_ptr<obs::Tracer> tracer;
  if (config.obs.any()) {
    std::uint32_t cats = config.obs.trace_categories;
    // The attribution report needs the causal-event categories regardless
    // of how narrow the user's --trace-filter is.
    if (config.obs.report_any()) cats |= obs::kAnalysisCats;
    tracer = std::make_unique<obs::Tracer>(cats);
    tracer->set_max_events(config.obs.max_events);
    if (!config.obs.trace_sample.empty()) {
      std::uint32_t every[obs::kNumCats];
      for (int i = 0; i < obs::kNumCats; ++i) every[i] = 1;
      std::string sample_err;
      if (!obs::parse_sampling(config.obs.trace_sample, every, &sample_err)) {
        throw std::invalid_argument("bad trace sampling spec: " + sample_err);
      }
      for (int i = 0; i < obs::kNumCats; ++i) {
        tracer->set_sample_every(static_cast<obs::Cat>(1u << i), every[i]);
      }
    }
    if (!config.obs.metrics_path.empty()) {
      registry = std::make_unique<obs::Registry>();
      tracer->set_registry(registry.get());
    }
    simulator.set_tracer(tracer.get());
  }

  net::FabricConfig fabric_config = config.fabric;
  fabric_config.num_hosts = config.num_hosts;
  net::Fabric fabric(simulator, fabric_config);
  tc::TrafficControl control(fabric);
  core::Controller controller(simulator, control, config.controller);
  metrics::BusyAccumulator busy(config.num_hosts);
  metrics::NicSampler nic(simulator, fabric, config.nic_sample_period,
                          registry.get());

  std::unique_ptr<workload::BackgroundTraffic> background;
  if (config.background) {
    background = std::make_unique<workload::BackgroundTraffic>(
        simulator, fabric, config.background_config);
    background->start();
  }

  std::unique_ptr<core::CentralCoordinator> coordinator;
  if (config.coordinated_transport) {
    coordinator = std::make_unique<core::CentralCoordinator>(
        simulator, config.coordinator_config);
  }

  cluster::Launcher launcher(simulator, fabric);
  launcher.add_listener(&controller);
  if (coordinator) launcher.set_transmission_gate(coordinator.get());
  launcher.set_busy_sink([&busy](net::HostId h, sim::Time b, sim::Time e) {
    busy.add(h, b, e);
  });

  std::vector<dl::JobSpec> specs = workload::grid_search_jobs(config.workload);
  std::vector<dl::JobPlacement> placements =
      config.workload.ps_per_job > 1
          ? cluster::assign_tasks_sharded(config.placement, config.num_hosts,
                                          config.workload.workers_per_job,
                                          config.workload.ps_per_job)
          : cluster::assign_tasks(config.placement, config.num_hosts,
                                  config.workload.workers_per_job);
  cluster::LaunchConfig launch;
  launch.stagger = config.stagger;
  launcher.launch_all(std::move(specs), std::move(placements), launch);

  // Periodic gauge sampling on the simulation clock: per-host egress queue
  // depth and per-job iteration lag behind the front-runner.
  std::unique_ptr<sim::PeriodicTimer> obs_sampler;
  if (tracer && config.obs.sample_period > sim::Time{0}) {
    obs_sampler = std::make_unique<sim::PeriodicTimer>(
        simulator, config.obs.sample_period, [&] {
          for (net::HostId h{0}; h < net::HostId{config.num_hosts}; ++h) {
            tracer->gauge_sample(
                simulator.now(), "egress_backlog_bytes", h, -1,
                net::to_double(fabric.egress(h).qdisc().backlog_bytes()));
          }
          std::int64_t lead = 0;
          for (const auto& job : launcher.jobs()) {
            lead = std::max(lead, job->iteration());
          }
          for (const auto& job : launcher.jobs()) {
            tracer->gauge_sample(
                simulator.now(), "job_iteration_lag", net::kNoHost,
                job->spec().job_id,
                static_cast<double>(lead - job->iteration()));
          }
        });
    obs_sampler->start();
  }

  // The NIC sampler and the TLs-RR rotation timer re-arm forever, so the
  // event queue never drains; run in slices until the workload completes.
  const sim::Time slice = 1 * sim::kSecond;
  while (!launcher.all_finished() && simulator.now() < config.time_limit &&
         !simulator.idle()) {
    simulator.run(simulator.now() + slice);
  }

  ExperimentResult result;
  result.policy_name = to_string(config.controller.policy);
  result.sim_events = simulator.dispatched();
  result.sim_horizon_s = sim::to_seconds(simulator.now());
  result.rotations = controller.rotations();
  result.tc_commands = control.history().size();
  result.all_finished = launcher.all_finished();
  if (background) {
    background->stop();
    result.background_flows = background->flows_completed();
    result.background_mean_fct_s = background->mean_fct_s();
  }
  if (coordinator) {
    result.coordinator_grants = coordinator->grants();
    result.coordinator_wait_s = coordinator->total_wait_s();
  }

  sim::Time last_launch =
      config.stagger * static_cast<std::int64_t>(launcher.jobs().size() - 1);
  sim::Time first_finish = sim::kTimeMax;

  std::vector<double> jcts;
  std::vector<double> pooled_means;
  std::vector<double> pooled_vars;
  for (const auto& job : launcher.jobs()) {
    JobResult jr;
    jr.job_id = job->spec().job_id;
    jr.finished = job->finished();
    jr.iterations = job->iteration();
    if (job->finished()) {
      jr.jct_s = sim::to_seconds(job->jct());
      jcts.push_back(jr.jct_s);
      first_finish = std::min(first_finish, job->finish_time());
    }
    jr.barrier_mean_waits_s = job->barrier_log().mean_waits();
    jr.barrier_variances_s2 = job->barrier_log().variances();
    pooled_means.insert(pooled_means.end(), jr.barrier_mean_waits_s.begin(),
                        jr.barrier_mean_waits_s.end());
    pooled_vars.insert(pooled_vars.end(), jr.barrier_variances_s2.begin(),
                       jr.barrier_variances_s2.end());
    result.jobs.push_back(std::move(jr));
  }
  if (!jcts.empty()) {
    metrics::Summary s = metrics::summarize(jcts);
    result.avg_jct_s = s.mean;
    result.min_jct_s = s.min;
    result.max_jct_s = s.max;
  }
  result.barrier_mean_summary = metrics::summarize(pooled_means);
  result.barrier_variance_summary = metrics::summarize(pooled_vars);

  // Active window: steady state between the last launch and the earliest
  // completion.
  if (first_finish != sim::kTimeMax && first_finish > last_launch) {
    sim::Time span = first_finish - last_launch;
    result.active_window_begin =
        last_launch +
        sim::Time{static_cast<std::int64_t>(
            config.active_window_begin_frac *
            static_cast<double>(sim::to_nanos(span)))};
    result.active_window_end =
        last_launch +
        sim::Time{static_cast<std::int64_t>(
            config.active_window_end_frac *
            static_cast<double>(sim::to_nanos(span)))};

    std::set<net::HostId> ps_hosts;
    for (const auto& job : launcher.jobs()) {
      for (int p = 0; p < job->placement().ps_count(); ++p) {
        ps_hosts.insert(job->placement().ps_shard_host(p));
      }
    }
    double cpu_ps = 0, cpu_wk = 0, nic_in = 0, nic_out = 0;
    int n_ps = 0, n_wk = 0;
    for (net::HostId h{0}; h < net::HostId{config.num_hosts}; ++h) {
      double cpu = busy.cpu_utilization(h, result.active_window_begin,
                                        result.active_window_end,
                                        config.cores_per_host);
      if (ps_hosts.count(h)) {
        cpu_ps += cpu;
        ++n_ps;
      } else {
        cpu_wk += cpu;
        ++n_wk;
      }
      nic_in += nic.utilization(h, /*outbound=*/false,
                                result.active_window_begin,
                                result.active_window_end);
      nic_out += nic.utilization(h, /*outbound=*/true,
                                 result.active_window_begin,
                                 result.active_window_end);
    }
    result.cpu_util_ps_hosts = n_ps ? cpu_ps / n_ps : 0;
    result.cpu_util_worker_hosts = n_wk ? cpu_wk / n_wk : 0;
    result.nic_in_util = nic_in / config.num_hosts;
    result.nic_out_util = nic_out / config.num_hosts;
  }

  // Simulator-core health counters: event-queue activity and the egress
  // fast-forward hit rate land in the metrics export so a perf regression
  // in the scheduling substrate is visible from any traced run.
  if (registry) {
    const sim::EventQueue::Stats& qs = simulator.queue_stats();
    auto add = [&](const char* name, std::uint64_t v) {
      registry->counter(name, -1, -1, -1).add(static_cast<std::int64_t>(v));
    };
    add("eventq_scheduled", qs.scheduled);
    add("eventq_cancelled", qs.cancelled);
    add("eventq_popped", qs.popped);
    add("eventq_tombstones_skipped", qs.tombstones_skipped);
    add("eventq_overflow_pulls", qs.overflow_pulls);
    add("eventq_window_jumps", qs.window_jumps);
    std::uint64_t promotions = 0;
    std::uint64_t polls = 0;
    for (net::HostId h{0}; h < net::HostId{config.num_hosts}; ++h) {
      promotions += fabric.egress(h).ff_promotions();
      polls += fabric.egress(h).ff_polls();
    }
    add("egress_ff_promotions", promotions);
    add("egress_ff_polls", polls);
    if (promotions + polls > 0) {
      registry->gauge("egress_ff_hit_rate", -1, -1, -1)
          .set(static_cast<double>(promotions) /
               static_cast<double>(promotions + polls));
    }
  }

  // Artifact writing happens last so a short run that threw earlier leaves
  // no partial files behind.
  if (tracer) {
    if (obs_sampler) obs_sampler->stop();
    std::string err;
    if (!config.obs.trace_path.empty() &&
        !write_file(config.obs.trace_path, obs::chrome_trace_json(*tracer),
                    &err)) {
      throw std::runtime_error("trace export failed: " + err);
    }
    if (!config.obs.trace_csv_path.empty() &&
        !write_file(config.obs.trace_csv_path, obs::trace_csv(*tracer),
                    &err)) {
      throw std::runtime_error("trace CSV export failed: " + err);
    }
    if (registry && !config.obs.metrics_path.empty() &&
        !write_file(config.obs.metrics_path,
                    registry->timeseries_csv(simulator.now()), &err)) {
      throw std::runtime_error("metrics export failed: " + err);
    }
    if (config.obs.report_any()) {
      // The in-process report runs on the streaming engine (bounded
      // retention); the offline tlsreport default stays batch, and the
      // golden-report tests pin the two byte-identical.
      obs::StreamingAnalyzer analyzer;
      for (const obs::TraceEvent& e : tracer->events()) analyzer.ingest(e);
      analyzer.set_health(tracer->health());
      obs::RunReport report = analyzer.finish();
      if (!config.obs.report_path.empty() &&
          !write_file(config.obs.report_path, obs::report_text(report),
                      &err)) {
        throw std::runtime_error("report export failed: " + err);
      }
      if (!config.obs.report_csv_path.empty() &&
          !write_file(config.obs.report_csv_path, obs::report_csv(report),
                      &err)) {
        throw std::runtime_error("report CSV export failed: " + err);
      }
      if (!config.obs.report_json_path.empty() &&
          !write_file(config.obs.report_json_path, obs::report_json(report),
                      &err)) {
        throw std::runtime_error("report JSON export failed: " + err);
      }
      if (!config.obs.report_html_path.empty()) {
        obs::HtmlOptions html_opts;
        html_opts.title = "tlsreport: " + result.policy_name;
        html_opts.label_a = result.policy_name;
        if (!write_file(config.obs.report_html_path,
                        obs::report_html(obs::report_json(report), "",
                                         html_opts),
                        &err)) {
          throw std::runtime_error("report HTML export failed: " + err);
        }
      }
    }
  }
  return result;
}

std::vector<double> normalized_jcts(const ExperimentResult& policy,
                                    const ExperimentResult& baseline) {
  std::vector<double> out;
  for (const JobResult& p : policy.jobs) {
    if (!p.finished) continue;
    auto it = std::find_if(
        baseline.jobs.begin(), baseline.jobs.end(),
        [&](const JobResult& b) { return b.job_id == p.job_id && b.finished; });
    if (it == baseline.jobs.end() || it->jct_s <= 0) continue;
    out.push_back(p.jct_s / it->jct_s);
  }
  return out;
}

double avg_normalized_jct(const ExperimentResult& policy,
                          const ExperimentResult& baseline) {
  std::vector<double> norms = normalized_jcts(policy, baseline);
  if (norms.empty()) return 0;
  double sum = 0;
  for (double v : norms) sum += v;
  return sum / static_cast<double>(norms.size());
}

ExperimentConfig with_policy(ExperimentConfig base, core::PolicyKind policy) {
  base.controller.policy = policy;
  return base;
}

metrics::Summary jct_across(const std::vector<ExperimentResult>& runs) {
  std::vector<double> v;
  v.reserve(runs.size());
  for (const ExperimentResult& r : runs) v.push_back(r.avg_jct_s);
  return metrics::summarize(v);
}

metrics::Summary normalized_across(
    const std::vector<ExperimentResult>& policy,
    const std::vector<ExperimentResult>& baseline) {
  if (policy.size() != baseline.size()) {
    throw std::invalid_argument("replica count mismatch");
  }
  std::vector<double> v;
  v.reserve(policy.size());
  for (std::size_t i = 0; i < policy.size(); ++i) {
    v.push_back(avg_normalized_jct(policy[i], baseline[i]));
  }
  return metrics::summarize(v);
}

}  // namespace tls::exp
