// Result export: CSV and JSON renderings of an ExperimentResult so runs
// can be archived and plotted outside the binary (the figures in the paper
// are exactly these series).
#pragma once

#include <string>

#include "exp/experiment.hpp"

namespace tls::exp {

/// One row per job: job_id, jct_s, iterations, finished.
std::string jobs_csv(const ExperimentResult& result);

/// One row per (job, barrier): job_id, barrier, mean_wait_s, var_wait_s2.
/// These are the samples behind Figures 3 and 6.
std::string barriers_csv(const ExperimentResult& result);

/// Compact JSON document with the headline metrics (policy, JCT stats,
/// barrier-wait summaries, utilization, tc activity).
std::string to_json(const ExperimentResult& result);

/// Writes `content` to `path`; false + message on I/O failure.
bool write_file(const std::string& path, const std::string& content,
                std::string* error);

}  // namespace tls::exp
