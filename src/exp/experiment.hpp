// End-to-end experiment runner: cluster + fabric + tc + TensorLights +
// workload in one call, returning everything the paper's figures report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/placement.hpp"
#include "metrics/stats.hpp"
#include "net/fabric.hpp"
#include "obs/trace.hpp"
#include "tensorlights/coordinator.hpp"
#include "tensorlights/policy.hpp"
#include "workload/background.hpp"
#include "workload/gridsearch.hpp"

namespace tls::exp {

/// Observability artifact selection for one experiment. All paths empty
/// (the default) means no Tracer is attached and the simulation pays only
/// a null-pointer check per emission site. Artifacts never influence the
/// ExperimentResult, so the result cache deliberately ignores this struct.
struct ObsOptions {
  /// Chrome trace-event JSON output (Perfetto/chrome://tracing).
  std::string trace_path;
  /// Compact CSV rendering of the same events.
  std::string trace_csv_path;
  /// Category bitmask for the event log (obs::parse_categories).
  std::uint32_t trace_categories = obs::kAllCats;
  /// Tidy long-format metrics timeseries CSV.
  std::string metrics_path;
  /// Straggler-attribution report (obs::analysis) in its three renderings.
  /// Requesting any of them forces the kAnalysisCats categories into the
  /// tracer mask, so the report never silently degrades because of a
  /// narrow --trace-filter.
  std::string report_path;       ///< human-readable text
  std::string report_csv_path;   ///< tidy long CSV
  std::string report_json_path;  ///< tlsreport-v2 JSON
  std::string report_html_path;  ///< self-contained HTML dashboard
  /// Period of the queue-depth / iteration-lag gauge sampler.
  sim::Time sample_period = 100 * sim::kMillisecond;
  /// Event-log cap guarding memory on big sweeps (0 = unlimited).
  std::size_t max_events = 0;
  /// Capture-sampling spec, a comma list of cat=N keep-1-in-N rates (see
  /// obs::parse_sampling, e.g. "qdisc=16,htb=8"). Critical-chain
  /// categories are clamped to 1 so attribution stays exact.
  std::string trace_sample;

  bool report_any() const {
    return !report_path.empty() || !report_csv_path.empty() ||
           !report_json_path.empty() || !report_html_path.empty();
  }
  bool any() const {
    return !trace_path.empty() || !trace_csv_path.empty() ||
           !metrics_path.empty() || report_any();
  }
};

struct ExperimentConfig {
  /// Cluster geometry (fabric.num_hosts is overridden by num_hosts).
  int num_hosts = 21;
  net::FabricConfig fabric{};
  int cores_per_host = 12;

  workload::GridSearchConfig workload{};

  /// Optional Poisson cross-traffic running for the whole experiment.
  bool background = false;
  workload::BackgroundTrafficConfig background_config{};

  /// Optional centralized transmission coordination (Future Work #2),
  /// usually combined with controller.policy = kFifo to isolate it.
  bool coordinated_transport = false;
  core::CoordinatorConfig coordinator_config{};

  /// PS placement; defaults to Table I #1 (all PSes on one host).
  cluster::PsPlacement placement = cluster::table1(1, 21);

  core::ControllerConfig controller{};  // policy defaults to TLs-One

  sim::Time stagger = 100 * sim::kMillisecond;
  std::uint64_t seed = 1;

  /// ifstat-analog sampling period.
  sim::Time nic_sample_period = 1 * sim::kSecond;

  /// The utilization "active window" spans these fractions of the span
  /// from the last job launch to the earliest job completion — the steady
  /// state when every job is running (paper: seconds 100-1250).
  double active_window_begin_frac = 0.15;
  double active_window_end_frac = 0.85;

  /// Hard simulated-time cap (guards against configuration mistakes).
  sim::Time time_limit = 48L * 3600 * sim::kSecond;

  /// Trace/metrics artifacts (inert by default; excluded from result
  /// caching — see runtime/result_cache.cpp canonical_config).
  ObsOptions obs{};
};

struct JobResult {
  std::int32_t job_id = 0;
  double jct_s = 0;
  std::int64_t iterations = 0;
  bool finished = false;
  /// Per-barrier mean and variance of worker waits (Figures 3 and 6).
  std::vector<double> barrier_mean_waits_s;
  std::vector<double> barrier_variances_s2;
};

struct ExperimentResult {
  std::string policy_name;
  std::vector<JobResult> jobs;
  double avg_jct_s = 0;
  double min_jct_s = 0;
  double max_jct_s = 0;

  /// Pooled over all jobs' barriers.
  metrics::Summary barrier_mean_summary;
  metrics::Summary barrier_variance_summary;

  /// Average utilization over the active window, by host role. "PS hosts"
  /// run at least one PS; "worker hosts" run none.
  double cpu_util_ps_hosts = 0;
  double cpu_util_worker_hosts = 0;
  double nic_in_util = 0;   // averaged over all hosts
  double nic_out_util = 0;

  sim::Time active_window_begin{};
  sim::Time active_window_end{};

  /// Count of tc commands successfully applied (0 under FIFO).
  std::uint64_t tc_commands = 0;
  /// TLs-RR rotations performed.
  std::uint64_t rotations = 0;

  std::uint64_t sim_events = 0;
  double sim_horizon_s = 0;
  bool all_finished = false;

  /// Background cross-traffic outcome (zeros when disabled).
  std::uint64_t background_flows = 0;
  double background_mean_fct_s = 0;

  /// Coordinated-transport outcome (zeros when disabled).
  std::uint64_t coordinator_grants = 0;
  double coordinator_wait_s = 0;
};

/// Runs one experiment to completion (or the time limit).
ExperimentResult run_experiment(const ExperimentConfig& config);

/// Per-job normalized JCT: jct(policy) / jct(baseline), matched by job id
/// (Figure 5's normalization). Jobs missing from either side are skipped.
std::vector<double> normalized_jcts(const ExperimentResult& policy,
                                    const ExperimentResult& baseline);

/// Mean of normalized_jcts (bar heights in Figure 5).
double avg_normalized_jct(const ExperimentResult& policy,
                          const ExperimentResult& baseline);

/// Convenience: a copy of `base` with the given policy installed.
ExperimentConfig with_policy(ExperimentConfig base, core::PolicyKind policy);

// Replicated and comparative drivers (run_replicated, compare) live in
// runtime/replicate.hpp: they fan out across the tls::runtime thread pool,
// and exp must stay below runtime in the include-layer DAG.

/// Summary of avg-JCT across replicated runs (mean/stddev/min/max).
metrics::Summary jct_across(const std::vector<ExperimentResult>& runs);

/// Summary of per-run avg-normalized-JCT for matched (same-seed) policy
/// and baseline replicas. Requires equal sizes.
metrics::Summary normalized_across(const std::vector<ExperimentResult>& policy,
                                   const std::vector<ExperimentResult>& baseline);

}  // namespace tls::exp
