// Replicated and comparative runs, fanned across the tls::runtime pool.
// Lives outside experiment.cpp so tls_exp_core (which tls_runtime links)
// stays free of any runtime dependency.
#include <stdexcept>

#include "exp/experiment.hpp"
#include "runtime/runner.hpp"

namespace tls::exp {

std::vector<ExperimentResult> run_replicated(const ExperimentConfig& config,
                                             int replicas) {
  if (replicas < 1) throw std::invalid_argument("replicas < 1");
  runtime::RunReport report =
      runtime::run_plan(runtime::RunPlan::replicated(config, replicas));
  return std::move(report.results);
}

std::vector<ExperimentResult> compare(const ExperimentConfig& config) {
  runtime::RunReport report =
      runtime::run_plan(runtime::RunPlan::policy_comparison(config));
  return std::move(report.results);
}

}  // namespace tls::exp
