// Typed representations of tc objects (qdiscs, classes, filters) plus the
// tc textual conventions: hexadecimal handles ("1:a" is minor 10) and rate
// suffixes where `kbit/mbit/gbit` are bits/sec but `bps/kbps/...` are
// BYTES/sec, exactly as in tc(8).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/units.hpp"

namespace tls::tc {

/// A tc handle "major:minor" with hexadecimal components.
struct Handle {
  std::uint16_t major = 0;
  std::uint16_t minor = 0;

  friend bool operator==(const Handle&, const Handle&) = default;

  /// Parses "1:", "1:10", ":a", "ffff:1". Returns nullopt on malformed
  /// input (empty, missing colon, non-hex digits, overflow).
  static std::optional<Handle> parse(const std::string& text);

  /// Renders as "major:minor" (or "major:" when minor == 0), lowercase hex.
  std::string str() const;
};

enum class QdiscKind { kPfifo, kPfifoFast, kPrio, kHtb, kTbf };

const char* to_string(QdiscKind kind);

/// Root qdisc parameters.
struct QdiscSpec {
  QdiscKind kind = QdiscKind::kPfifo;
  Handle handle{1, 0};
  /// prio: number of bands (default 3 as in Linux).
  int prio_bands = 3;
  /// htb: classid minor receiving unclassified traffic (0 = direct queue).
  std::uint32_t htb_default = 0;
  /// tbf: shaping parameters (rate required by the parser).
  net::Rate tbf_rate{};
  net::Bytes tbf_burst = 64 * net::kKiB;
};

/// htb class parameters ("tc class add ... htb rate ... ceil ...").
struct ClassSpec {
  Handle classid{};
  Handle parent{};
  net::Rate rate{};                    // required
  std::optional<net::Rate> ceil;       // defaults to rate
  net::Bytes burst = 64 * net::kKiB;
  net::Bytes cburst = 64 * net::kKiB;
  int prio = 0;
  net::Bytes quantum = 128 * net::kKiB;
};

/// u32-style filter matching TCP ports, mapping to a class/band.
struct FilterSpec {
  int pref = 100;
  std::optional<std::uint16_t> sport;
  std::optional<std::uint16_t> dport;
  Handle flowid{};
};

/// Parses a tc rate string: "10gbit", "1.5mbit", "512kbit", "800bit",
/// "100bps", "1mbps" (bps variants are bytes/sec), or a bare number
/// (bits/sec, as tc assumes). Returns bytes/sec; nullopt on malformed input
/// or non-positive value.
std::optional<net::Rate> parse_rate(const std::string& text);

/// Parses a tc size string: "64k", "1m", "1540b", bare number = bytes;
/// k/m/g are binary (1024-based) per tc. Returns nullopt when malformed or
/// non-positive.
std::optional<net::Bytes> parse_size(const std::string& text);

/// Formats a rate in tc style, picking gbit/mbit/kbit/bit.
std::string format_rate(net::Rate bytes_per_sec);

}  // namespace tls::tc
