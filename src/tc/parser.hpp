// Parser for the tc command DSL.
//
// Supported grammar (a faithful subset of tc(8), hex handles and all):
//
//   tc qdisc add|replace dev DEV root handle H: pfifo
//   tc qdisc add|replace dev DEV root handle H: prio [bands N]
//   tc qdisc add|replace dev DEV root handle H: htb [default M]
//   tc qdisc del dev DEV root
//   tc class add|change dev DEV parent H: classid H:M htb rate RATE
//        [ceil RATE] [burst SIZE] [cburst SIZE] [prio N] [quantum SIZE]
//   tc class del dev DEV classid H:M
//   tc filter add dev DEV [protocol ip] parent H: [pref N] u32
//        {match ip sport PORT 0xffff | match ip dport PORT 0xffff}...
//        flowid H:M
//   tc filter del dev DEV pref N
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "tc/spec.hpp"

namespace tls::tc {

struct QdiscAddCmd {
  std::string dev;
  QdiscSpec spec;
  bool replace = false;
};
struct QdiscDelCmd {
  std::string dev;
};
struct ClassAddCmd {
  std::string dev;
  ClassSpec spec;
  bool change = false;  // "tc class change"
};
struct ClassDelCmd {
  std::string dev;
  Handle classid;
};
struct FilterAddCmd {
  std::string dev;
  Handle parent;
  FilterSpec spec;
};
struct FilterDelCmd {
  std::string dev;
  int pref = 0;
};

using Command = std::variant<QdiscAddCmd, QdiscDelCmd, ClassAddCmd,
                             ClassDelCmd, FilterAddCmd, FilterDelCmd>;

struct ParseResult {
  bool ok = false;
  Command command{};
  std::string error;

  static ParseResult failure(std::string message) {
    ParseResult r;
    r.error = std::move(message);
    return r;
  }
  static ParseResult success(Command c) {
    ParseResult r;
    r.ok = true;
    r.command = std::move(c);
    return r;
  }
};

/// Parses one tc command line. Leading "tc" is optional. Never throws.
ParseResult parse_command(const std::string& line);

/// Whitespace tokenizer shared with tests.
std::vector<std::string> tokenize(const std::string& line);

}  // namespace tls::tc
