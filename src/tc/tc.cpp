#include "tc/tc.hpp"

#include <cctype>
#include <cstdlib>

#include "net/htb_qdisc.hpp"
#include "net/pfifo_fast_qdisc.hpp"
#include "net/pfifo_qdisc.hpp"
#include "net/prio_qdisc.hpp"
#include "net/tbf_qdisc.hpp"

namespace tls::tc {

std::string device_name(net::HostId host) {
  return "host" + std::to_string(host.idx());
}

TrafficControl::TrafficControl(net::Fabric& fabric)
    : fabric_(fabric),
      devices_(static_cast<std::size_t>(fabric.num_hosts())),
      reconfigs_(static_cast<std::size_t>(fabric.num_hosts()), 0) {}

net::HostId TrafficControl::resolve_device(const std::string& dev) const {
  std::string digits = dev;
  if (dev.rfind("host", 0) == 0) {
    digits = dev.substr(4);
  } else if (dev.size() > 1 && dev[0] == 'h') {
    digits = dev.substr(1);
  }
  if (digits.empty()) return net::kNoHost;
  for (char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return net::kNoHost;
  }
  long v = std::strtol(digits.c_str(), nullptr, 10);
  if (v < 0 || v >= fabric_.num_hosts()) return net::kNoHost;
  return net::HostId{static_cast<std::int32_t>(v)};
}

QdiscKind TrafficControl::root_kind(net::HostId host) const {
  return devices_.at(static_cast<std::size_t>(host.idx())).kind;
}

net::Rate TrafficControl::link_rate(net::HostId host) const {
  return fabric_.egress(host).rate();
}

std::string TrafficControl::show_qdisc(net::HostId host) const {
  return "dev " + device_name(host) + " " +
         fabric_.egress(host).qdisc().stats_text();
}

std::uint64_t TrafficControl::reconfig_count(net::HostId host) const {
  return reconfigs_.at(static_cast<std::size_t>(host.idx()));
}

Status TrafficControl::exec(const std::string& command_line) {
  ParseResult parsed = parse_command(command_line);
  if (!parsed.ok) return Status::fail("parse error: " + parsed.error);
  Status s = apply(parsed.command);
  if (s.ok) history_.push_back(command_line);
  return s;
}

Status TrafficControl::apply(const Command& command) {
  return std::visit(
      [this](const auto& cmd) -> Status {
        using T = std::decay_t<decltype(cmd)>;
        if constexpr (std::is_same_v<T, QdiscAddCmd>) return apply_qdisc_add(cmd);
        else if constexpr (std::is_same_v<T, QdiscDelCmd>) return apply_qdisc_del(cmd);
        else if constexpr (std::is_same_v<T, ClassAddCmd>) return apply_class(cmd);
        else if constexpr (std::is_same_v<T, ClassDelCmd>) return apply_class_del(cmd);
        else if constexpr (std::is_same_v<T, FilterAddCmd>) return apply_filter_add(cmd);
        else return apply_filter_del(cmd);
      },
      command);
}

Status TrafficControl::apply_qdisc_add(const QdiscAddCmd& cmd) {
  net::HostId host = resolve_device(cmd.dev);
  if (!host.valid()) return Status::fail("unknown device '" + cmd.dev + "'");
  DeviceState& dev = devices_[static_cast<std::size_t>(host.idx())];
  if (dev.handle.major != 0 && !cmd.replace) {
    return Status::fail("root qdisc already exists (use replace)");
  }
  net::EgressPort& port = fabric_.egress(host);
  std::unique_ptr<net::Qdisc> qdisc;
  switch (cmd.spec.kind) {
    case QdiscKind::kPfifo:
      qdisc = std::make_unique<net::PfifoQdisc>();
      break;
    case QdiscKind::kPfifoFast:
      qdisc = std::make_unique<net::PfifoFastQdisc>();
      break;
    case QdiscKind::kPrio:
      qdisc = std::make_unique<net::PrioQdisc>(cmd.spec.prio_bands);
      break;
    case QdiscKind::kHtb:
      qdisc = std::make_unique<net::HtbQdisc>(port.rate(), cmd.spec.htb_default);
      break;
    case QdiscKind::kTbf: {
      net::TbfConfig tbf;
      tbf.rate = cmd.spec.tbf_rate;
      tbf.burst = cmd.spec.tbf_burst;
      if (tbf.rate <= net::Rate{0.0}) return Status::fail("tbf requires a positive rate");
      qdisc = std::make_unique<net::TbfQdisc>(tbf);
      break;
    }
  }
  port.set_qdisc(std::move(qdisc));
  port.classifier().clear();
  dev.kind = cmd.spec.kind;
  dev.handle = cmd.spec.handle;
  ++reconfigs_[static_cast<std::size_t>(host.idx())];
  return Status::good();
}

Status TrafficControl::apply_qdisc_del(const QdiscDelCmd& cmd) {
  net::HostId host = resolve_device(cmd.dev);
  if (!host.valid()) return Status::fail("unknown device '" + cmd.dev + "'");
  DeviceState& dev = devices_[static_cast<std::size_t>(host.idx())];
  if (dev.handle.major == 0) return Status::fail("no root qdisc configured");
  net::EgressPort& port = fabric_.egress(host);
  port.set_qdisc(std::make_unique<net::PfifoQdisc>());
  port.classifier().clear();
  dev = DeviceState{};
  ++reconfigs_[static_cast<std::size_t>(host.idx())];
  return Status::good();
}

Status TrafficControl::apply_class(const ClassAddCmd& cmd) {
  net::HostId host = resolve_device(cmd.dev);
  if (!host.valid()) return Status::fail("unknown device '" + cmd.dev + "'");
  DeviceState& dev = devices_[static_cast<std::size_t>(host.idx())];
  if (dev.kind != QdiscKind::kHtb) {
    return Status::fail("classes require an htb root qdisc");
  }
  if (cmd.spec.parent != dev.handle) {
    return Status::fail("parent handle does not match root qdisc");
  }
  if (cmd.spec.classid.major != dev.handle.major) {
    return Status::fail("classid major does not match root qdisc");
  }
  if (cmd.spec.rate <= net::Rate{0.0}) return Status::fail("class rate must be positive");
  auto& htb = static_cast<net::HtbQdisc&>(fabric_.egress(host).qdisc());
  net::HtbClassConfig config;
  config.minor = cmd.spec.classid.minor;
  config.rate = cmd.spec.rate;
  config.ceil = cmd.spec.ceil.value_or(cmd.spec.rate);
  config.burst = cmd.spec.burst;
  config.cburst = cmd.spec.cburst;
  config.prio = cmd.spec.prio;
  config.quantum = cmd.spec.quantum;
  bool ok = cmd.change ? htb.change_class(config) : htb.add_class(config);
  if (!ok) {
    return Status::fail(cmd.change ? "class does not exist or config invalid"
                                   : "class already exists or config invalid");
  }
  // A class change can unblock or re-order service; re-poll the link.
  fabric_.egress(host).kick();
  ++reconfigs_[static_cast<std::size_t>(host.idx())];
  return Status::good();
}

Status TrafficControl::apply_class_del(const ClassDelCmd& cmd) {
  net::HostId host = resolve_device(cmd.dev);
  if (!host.valid()) return Status::fail("unknown device '" + cmd.dev + "'");
  DeviceState& dev = devices_[static_cast<std::size_t>(host.idx())];
  if (dev.kind != QdiscKind::kHtb) {
    return Status::fail("classes require an htb root qdisc");
  }
  auto& htb = static_cast<net::HtbQdisc&>(fabric_.egress(host).qdisc());
  if (!htb.delete_class(cmd.classid.minor)) {
    return Status::fail("class missing or backlogged");
  }
  ++reconfigs_[static_cast<std::size_t>(host.idx())];
  return Status::good();
}

Status TrafficControl::apply_filter_add(const FilterAddCmd& cmd) {
  net::HostId host = resolve_device(cmd.dev);
  if (!host.valid()) return Status::fail("unknown device '" + cmd.dev + "'");
  DeviceState& dev = devices_[static_cast<std::size_t>(host.idx())];
  if (cmd.parent != dev.handle) {
    return Status::fail("filter parent does not match root qdisc");
  }
  net::FilterRule rule;
  rule.pref = cmd.spec.pref;
  rule.src_port = cmd.spec.sport;
  rule.dst_port = cmd.spec.dport;
  // prio band numbering is 1-based in flowids, 0-based internally; htb
  // classes are addressed directly by minor.
  switch (dev.kind) {
    case QdiscKind::kPrio:
      if (cmd.spec.flowid.minor == 0) return Status::fail("bad prio flowid");
      rule.target_band = net::BandId{cmd.spec.flowid.minor - 1};
      break;
    case QdiscKind::kHtb:
      rule.target_band = net::BandId{cmd.spec.flowid.minor};
      break;
    case QdiscKind::kPfifo:
    case QdiscKind::kPfifoFast:
    case QdiscKind::kTbf:
      // Legal but meaningless on classless qdiscs, as in Linux.
      rule.target_band = net::BandId{0};
      break;
  }
  fabric_.egress(host).classifier().upsert(rule);
  ++reconfigs_[static_cast<std::size_t>(host.idx())];
  return Status::good();
}

Status TrafficControl::apply_filter_del(const FilterDelCmd& cmd) {
  net::HostId host = resolve_device(cmd.dev);
  if (!host.valid()) return Status::fail("unknown device '" + cmd.dev + "'");
  if (!fabric_.egress(host).classifier().remove(cmd.pref)) {
    return Status::fail("no filter at pref " + std::to_string(cmd.pref));
  }
  ++reconfigs_[static_cast<std::size_t>(host.idx())];
  return Status::good();
}

}  // namespace tls::tc
