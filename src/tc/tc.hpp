// TrafficControl: the applier that binds parsed tc commands to the
// simulated NICs of a Fabric — the stand-in for the kernel side of tc.
//
// Semantics follow Linux where it matters to the paper:
//  * one root qdisc per device; adding over an existing root fails unless
//    "replace" is used;
//  * replacing a root qdisc requires an empty queue (Linux would drop the
//    backlog; our transfers are lossless, so we refuse instead — the
//    TensorLights controller never replaces a busy root, it only changes
//    classes/filters);
//  * filters attach to the root, so qdisc add/replace/del clears them;
//  * prio flowid 1:N maps to band N-1 (tc convention), htb flowid 1:N maps
//    to class minor N;
//  * class operations are valid only on an htb root.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "tc/parser.hpp"

namespace tls::tc {

struct Status {
  bool ok = true;
  std::string error;

  static Status good() { return {}; }
  static Status fail(std::string message) { return {false, std::move(message)}; }
  explicit operator bool() const { return ok; }
};

/// Canonical device name for a host ("host7").
std::string device_name(net::HostId host);

class TrafficControl {
 public:
  explicit TrafficControl(net::Fabric& fabric);

  /// Parses and applies one tc command line. Successful commands are
  /// recorded in history().
  Status exec(const std::string& command_line);

  /// Applies an already-parsed command.
  Status apply(const Command& command);

  /// Resolves "host3", "h3", or "3" to a HostId; -1 when unknown.
  net::HostId resolve_device(const std::string& dev) const;

  /// Root qdisc kind currently installed on a host's egress.
  QdiscKind root_kind(net::HostId host) const;

  /// Egress line rate of a host (bytes/sec); controllers use it to size
  /// htb ceilings.
  net::Rate link_rate(net::HostId host) const;

  /// `tc -s qdisc show dev hostN` analog: statistics of the root qdisc
  /// and its classes/bands.
  std::string show_qdisc(net::HostId host) const;

  /// All successfully executed command lines, in order.
  const std::vector<std::string>& history() const { return history_; }

  /// Number of successful reconfiguration commands applied, per host. The
  /// paper cares about keeping tc churn local to hosts with contending
  /// PSes; tests assert unaffected hosts stay at zero.
  std::uint64_t reconfig_count(net::HostId host) const;

 private:
  Status apply_qdisc_add(const QdiscAddCmd& cmd);
  Status apply_qdisc_del(const QdiscDelCmd& cmd);
  Status apply_class(const ClassAddCmd& cmd);
  Status apply_class_del(const ClassDelCmd& cmd);
  Status apply_filter_add(const FilterAddCmd& cmd);
  Status apply_filter_del(const FilterDelCmd& cmd);

  struct DeviceState {
    QdiscKind kind = QdiscKind::kPfifo;
    Handle handle{0, 0};  // 0: means "default qdisc, never configured"
  };

  net::Fabric& fabric_;
  std::vector<DeviceState> devices_;
  std::vector<std::uint64_t> reconfigs_;
  std::vector<std::string> history_;
};

}  // namespace tls::tc
