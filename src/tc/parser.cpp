#include "tc/parser.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace tls::tc {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return tokens;
}

namespace {

/// Cursor over the token stream with error accumulation.
class Cursor {
 public:
  explicit Cursor(std::vector<std::string> tokens) : tokens_(std::move(tokens)) {}

  bool done() const { return pos_ >= tokens_.size(); }
  const std::string& peek() const {
    static const std::string kEmpty;
    return done() ? kEmpty : tokens_[pos_];
  }
  std::string next() {
    if (done()) return {};
    return tokens_[pos_++];
  }
  /// Consumes `word` if it is next; returns whether it was.
  bool accept(const std::string& word) {
    if (!done() && tokens_[pos_] == word) {
      ++pos_;
      return true;
    }
    return false;
  }

 private:
  std::vector<std::string> tokens_;
  std::size_t pos_ = 0;
};

std::optional<int> parse_int(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  long v = std::strtol(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return static_cast<int>(v);
}

std::optional<std::uint16_t> parse_port(const std::string& s) {
  auto v = parse_int(s);
  if (!v || *v < 0 || *v > 65535) return std::nullopt;
  return static_cast<std::uint16_t>(*v);
}

ParseResult parse_qdisc(Cursor& c) {
  std::string op = c.next();
  if (op == "del" || op == "delete") {
    if (!c.accept("dev")) return ParseResult::failure("expected 'dev'");
    QdiscDelCmd cmd;
    cmd.dev = c.next();
    if (cmd.dev.empty()) return ParseResult::failure("expected device name");
    if (!c.accept("root")) return ParseResult::failure("expected 'root'");
    return ParseResult::success(cmd);
  }
  if (op != "add" && op != "replace") {
    return ParseResult::failure("unknown qdisc operation '" + op + "'");
  }
  QdiscAddCmd cmd;
  cmd.replace = (op == "replace");
  if (!c.accept("dev")) return ParseResult::failure("expected 'dev'");
  cmd.dev = c.next();
  if (cmd.dev.empty()) return ParseResult::failure("expected device name");
  if (!c.accept("root")) return ParseResult::failure("expected 'root'");
  if (c.accept("handle")) {
    auto h = Handle::parse(c.next());
    if (!h || h->minor != 0) return ParseResult::failure("bad qdisc handle");
    cmd.spec.handle = *h;
  }
  std::string kind = c.next();
  if (kind == "pfifo") {
    cmd.spec.kind = QdiscKind::kPfifo;
    // pfifo accepts "limit N" in tc; our queues are lossless, so accept and
    // ignore the value for command compatibility.
    if (c.accept("limit")) {
      if (!parse_int(c.next())) return ParseResult::failure("bad pfifo limit");
    }
  } else if (kind == "prio") {
    cmd.spec.kind = QdiscKind::kPrio;
    if (c.accept("bands")) {
      auto n = parse_int(c.next());
      if (!n || *n < 1 || *n > 16) return ParseResult::failure("bad band count");
      cmd.spec.prio_bands = *n;
    }
  } else if (kind == "pfifo_fast") {
    cmd.spec.kind = QdiscKind::kPfifoFast;
  } else if (kind == "htb") {
    cmd.spec.kind = QdiscKind::kHtb;
    if (c.accept("default")) {
      // tc parses the htb default minor as hex.
      auto h = Handle::parse(":" + c.next());
      if (!h) return ParseResult::failure("bad htb default");
      cmd.spec.htb_default = h->minor;
    }
  } else if (kind == "tbf") {
    cmd.spec.kind = QdiscKind::kTbf;
    bool saw_rate = false;
    while (!c.done()) {
      std::string key = c.next();
      std::string val = c.next();
      if (val.empty()) return ParseResult::failure("missing value for '" + key + "'");
      if (key == "rate") {
        auto r = parse_rate(val);
        if (!r) return ParseResult::failure("bad tbf rate '" + val + "'");
        cmd.spec.tbf_rate = *r;
        saw_rate = true;
      } else if (key == "burst") {
        auto s = parse_size(val);
        if (!s) return ParseResult::failure("bad tbf burst '" + val + "'");
        cmd.spec.tbf_burst = *s;
      } else if (key == "limit" || key == "latency") {
        // Accepted for command compatibility; our queues are lossless.
        if (!parse_size(val) && !parse_int(val)) {
          return ParseResult::failure("bad tbf " + key);
        }
      } else {
        return ParseResult::failure("unknown tbf parameter '" + key + "'");
      }
    }
    if (!saw_rate) return ParseResult::failure("tbf requires 'rate'");
  } else {
    return ParseResult::failure("unknown qdisc kind '" + kind + "'");
  }
  if (!c.done()) return ParseResult::failure("trailing tokens after qdisc spec");
  return ParseResult::success(cmd);
}

ParseResult parse_class(Cursor& c) {
  std::string op = c.next();
  if (op == "del" || op == "delete") {
    if (!c.accept("dev")) return ParseResult::failure("expected 'dev'");
    ClassDelCmd cmd;
    cmd.dev = c.next();
    if (cmd.dev.empty()) return ParseResult::failure("expected device name");
    if (!c.accept("classid")) return ParseResult::failure("expected 'classid'");
    auto h = Handle::parse(c.next());
    if (!h || h->minor == 0) return ParseResult::failure("bad classid");
    cmd.classid = *h;
    return ParseResult::success(cmd);
  }
  if (op != "add" && op != "change") {
    return ParseResult::failure("unknown class operation '" + op + "'");
  }
  ClassAddCmd cmd;
  cmd.change = (op == "change");
  if (!c.accept("dev")) return ParseResult::failure("expected 'dev'");
  cmd.dev = c.next();
  if (cmd.dev.empty()) return ParseResult::failure("expected device name");
  if (!c.accept("parent")) return ParseResult::failure("expected 'parent'");
  auto parent = Handle::parse(c.next());
  if (!parent) return ParseResult::failure("bad parent handle");
  cmd.spec.parent = *parent;
  if (!c.accept("classid")) return ParseResult::failure("expected 'classid'");
  auto classid = Handle::parse(c.next());
  if (!classid || classid->minor == 0) return ParseResult::failure("bad classid");
  cmd.spec.classid = *classid;
  if (!c.accept("htb")) return ParseResult::failure("only htb classes supported");
  bool saw_rate = false;
  while (!c.done()) {
    std::string key = c.next();
    std::string val = c.next();
    if (val.empty()) return ParseResult::failure("missing value for '" + key + "'");
    if (key == "rate") {
      auto r = parse_rate(val);
      if (!r) return ParseResult::failure("bad rate '" + val + "'");
      cmd.spec.rate = *r;
      saw_rate = true;
    } else if (key == "ceil") {
      auto r = parse_rate(val);
      if (!r) return ParseResult::failure("bad ceil '" + val + "'");
      cmd.spec.ceil = *r;
    } else if (key == "burst") {
      auto s = parse_size(val);
      if (!s) return ParseResult::failure("bad burst '" + val + "'");
      cmd.spec.burst = *s;
    } else if (key == "cburst") {
      auto s = parse_size(val);
      if (!s) return ParseResult::failure("bad cburst '" + val + "'");
      cmd.spec.cburst = *s;
    } else if (key == "prio") {
      auto p = parse_int(val);
      if (!p || *p < 0 || *p > 7) return ParseResult::failure("bad prio '" + val + "'");
      cmd.spec.prio = *p;
    } else if (key == "quantum") {
      auto s = parse_size(val);
      if (!s) return ParseResult::failure("bad quantum '" + val + "'");
      cmd.spec.quantum = *s;
    } else {
      return ParseResult::failure("unknown class parameter '" + key + "'");
    }
  }
  if (!saw_rate) return ParseResult::failure("htb class requires 'rate'");
  return ParseResult::success(cmd);
}

ParseResult parse_filter(Cursor& c) {
  std::string op = c.next();
  if (op == "del" || op == "delete") {
    if (!c.accept("dev")) return ParseResult::failure("expected 'dev'");
    FilterDelCmd cmd;
    cmd.dev = c.next();
    if (cmd.dev.empty()) return ParseResult::failure("expected device name");
    if (!c.accept("pref")) return ParseResult::failure("expected 'pref'");
    auto p = parse_int(c.next());
    if (!p) return ParseResult::failure("bad pref");
    cmd.pref = *p;
    return ParseResult::success(cmd);
  }
  if (op != "add") return ParseResult::failure("unknown filter operation '" + op + "'");
  FilterAddCmd cmd;
  if (!c.accept("dev")) return ParseResult::failure("expected 'dev'");
  cmd.dev = c.next();
  if (cmd.dev.empty()) return ParseResult::failure("expected device name");
  if (c.accept("protocol")) {
    if (c.next() != "ip") return ParseResult::failure("only 'protocol ip' supported");
  }
  if (!c.accept("parent")) return ParseResult::failure("expected 'parent'");
  auto parent = Handle::parse(c.next());
  if (!parent) return ParseResult::failure("bad parent handle");
  cmd.parent = *parent;
  if (c.accept("pref")) {
    auto p = parse_int(c.next());
    if (!p) return ParseResult::failure("bad pref");
    cmd.spec.pref = *p;
  }
  if (!c.accept("u32")) return ParseResult::failure("only u32 filters supported");
  bool saw_flowid = false;
  while (!c.done()) {
    if (c.accept("match")) {
      if (!c.accept("ip")) return ParseResult::failure("expected 'ip' after match");
      std::string field = c.next();
      auto port = parse_port(c.next());
      if (!port) return ParseResult::failure("bad port in match");
      std::string mask = c.next();
      if (mask != "0xffff") return ParseResult::failure("port match requires mask 0xffff");
      if (field == "sport") {
        cmd.spec.sport = *port;
      } else if (field == "dport") {
        cmd.spec.dport = *port;
      } else {
        return ParseResult::failure("unsupported match field '" + field + "'");
      }
    } else if (c.accept("flowid")) {
      auto h = Handle::parse(c.next());
      if (!h || h->minor == 0) return ParseResult::failure("bad flowid");
      cmd.spec.flowid = *h;
      saw_flowid = true;
    } else {
      return ParseResult::failure("unexpected token '" + c.peek() + "' in filter");
    }
  }
  if (!saw_flowid) return ParseResult::failure("filter requires 'flowid'");
  return ParseResult::success(cmd);
}

}  // namespace

ParseResult parse_command(const std::string& line) {
  Cursor c(tokenize(line));
  if (c.done()) return ParseResult::failure("empty command");
  c.accept("tc");  // optional leading binary name
  std::string object = c.next();
  if (object == "qdisc") return parse_qdisc(c);
  if (object == "class") return parse_class(c);
  if (object == "filter") return parse_filter(c);
  return ParseResult::failure("unknown tc object '" + object + "'");
}

}  // namespace tls::tc
