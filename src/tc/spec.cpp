#include "tc/spec.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tls::tc {

const char* to_string(QdiscKind kind) {
  switch (kind) {
    case QdiscKind::kPfifo: return "pfifo";
    case QdiscKind::kPfifoFast: return "pfifo_fast";
    case QdiscKind::kPrio: return "prio";
    case QdiscKind::kHtb: return "htb";
    case QdiscKind::kTbf: return "tbf";
  }
  return "?";
}

namespace {
std::optional<std::uint16_t> parse_hex16(const std::string& s) {
  if (s.empty() || s.size() > 4) return std::nullopt;
  std::uint32_t v = 0;
  for (char c : s) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else return std::nullopt;
    v = v * 16 + static_cast<std::uint32_t>(d);
  }
  if (v > 0xFFFF) return std::nullopt;
  return static_cast<std::uint16_t>(v);
}

/// Splits "<number><suffix>"; returns (value, suffix) or nullopt.
std::optional<std::pair<double, std::string>> split_number(const std::string& s) {
  if (s.empty()) return std::nullopt;
  std::size_t i = 0;
  while (i < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.')) {
    ++i;
  }
  if (i == 0) return std::nullopt;
  const std::string digits = s.substr(0, i);  // keeps end's target alive
  char* end = nullptr;
  double v = std::strtod(digits.c_str(), &end);
  if (end == nullptr || *end != '\0' || !std::isfinite(v)) return std::nullopt;
  std::string suffix = s.substr(i);
  for (char& c : suffix) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return std::make_pair(v, suffix);
}
}  // namespace

std::optional<Handle> Handle::parse(const std::string& text) {
  auto colon = text.find(':');
  if (colon == std::string::npos) return std::nullopt;
  std::string major_s = text.substr(0, colon);
  std::string minor_s = text.substr(colon + 1);
  Handle h;
  if (!major_s.empty()) {
    auto m = parse_hex16(major_s);
    if (!m) return std::nullopt;
    h.major = *m;
  }
  if (!minor_s.empty()) {
    auto m = parse_hex16(minor_s);
    if (!m) return std::nullopt;
    h.minor = *m;
  }
  if (major_s.empty() && minor_s.empty()) return std::nullopt;
  return h;
}

std::string Handle::str() const {
  char buf[16];
  if (minor == 0) {
    std::snprintf(buf, sizeof(buf), "%x:", major);
  } else {
    std::snprintf(buf, sizeof(buf), "%x:%x", major, minor);
  }
  return buf;
}

std::optional<net::Rate> parse_rate(const std::string& text) {
  auto parts = split_number(text);
  if (!parts) return std::nullopt;
  auto [v, suffix] = *parts;
  double bits_per_sec;
  if (suffix.empty() || suffix == "bit") bits_per_sec = v;
  else if (suffix == "kbit") bits_per_sec = v * 1e3;
  else if (suffix == "mbit") bits_per_sec = v * 1e6;
  else if (suffix == "gbit") bits_per_sec = v * 1e9;
  else if (suffix == "tbit") bits_per_sec = v * 1e12;
  // tc's *bps family is bytes per second.
  else if (suffix == "bps") bits_per_sec = v * 8;
  else if (suffix == "kbps") bits_per_sec = v * 8e3;
  else if (suffix == "mbps") bits_per_sec = v * 8e6;
  else if (suffix == "gbps") bits_per_sec = v * 8e9;
  else return std::nullopt;
  if (bits_per_sec <= 0) return std::nullopt;
  return net::Rate{bits_per_sec / 8.0};
}

std::optional<net::Bytes> parse_size(const std::string& text) {
  auto parts = split_number(text);
  if (!parts) return std::nullopt;
  auto [v, suffix] = *parts;
  double bytes;
  if (suffix.empty() || suffix == "b") bytes = v;
  else if (suffix == "k" || suffix == "kb") bytes = v * 1024.0;
  else if (suffix == "m" || suffix == "mb") bytes = v * 1024.0 * 1024.0;
  else if (suffix == "g" || suffix == "gb") bytes = v * 1024.0 * 1024.0 * 1024.0;
  else return std::nullopt;
  if (bytes <= 0) return std::nullopt;
  return net::Bytes{static_cast<std::int64_t>(bytes)};
}

std::string format_rate(net::Rate bytes_per_sec) {
  double bits = net::bits_per_sec(bytes_per_sec);
  char buf[32];
  if (bits >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%ggbit", bits / 1e9);
  } else if (bits >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%gmbit", bits / 1e6);
  } else if (bits >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%gkbit", bits / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%gbit", bits);
  }
  return buf;
}

}  // namespace tls::tc
