#include "dl/barrier_log.hpp"

#include <cassert>

namespace tls::dl {

void BarrierLog::record(std::int64_t iteration,
                        const std::vector<double>& waits_s) {
  assert(!waits_s.empty());
  double sum = 0;
  for (double w : waits_s) sum += w;
  double mean = sum / static_cast<double>(waits_s.size());
  double var = 0;
  for (double w : waits_s) var += (w - mean) * (w - mean);
  var /= static_cast<double>(waits_s.size());
  stats_.push_back(BarrierStats{iteration, mean, var,
                                static_cast<int>(waits_s.size())});
}

std::vector<double> BarrierLog::mean_waits() const {
  std::vector<double> out;
  out.reserve(stats_.size());
  for (const auto& s : stats_) out.push_back(s.mean_wait_s);
  return out;
}

std::vector<double> BarrierLog::variances() const {
  std::vector<double> out;
  out.reserve(stats_.size());
  for (const auto& s : stats_) out.push_back(s.var_wait_s2);
  return out;
}

}  // namespace tls::dl
