// Hook for transmission-layer coordination (the paper's Future Work #2).
//
// A PS that wants to emit its per-iteration model-update burst first asks
// the gate; the gate grants (possibly later, and possibly after a
// coordination round trip), and the PS releases the gate once the whole
// burst is delivered. A null gate means uncoordinated sending — the
// TensorLights deployment model, where only local NIC priorities exist.
#pragma once

#include <functional>

#include "net/units.hpp"

namespace tls::dl {

class TransmissionGate {
 public:
  virtual ~TransmissionGate() = default;

  /// Asks to send a burst of `bytes` out of `host`. `grant` is invoked
  /// exactly once, when the burst may start (never synchronously inside
  /// request()).
  virtual void request(net::HostId host, net::Bytes bytes,
                       std::function<void()> grant) = 0;

  /// Signals that a previously granted burst has fully completed.
  virtual void release(net::HostId host) = 0;
};

}  // namespace tls::dl
