// Per-job record of barrier wait times — the paper's straggler metric.
//
// For every synchronization barrier (one per iteration) we keep each
// worker's wait: the time from the worker *entering* the barrier (local
// compute done, gradient handed to the network) to *exiting* it (the next
// model update fully received). Figures 3 and 6 are CDFs over the
// per-barrier mean and per-barrier variance of these waits.
#pragma once

#include <cstdint>
#include <vector>

#include "simcore/time.hpp"

namespace tls::dl {

struct BarrierStats {
  std::int64_t iteration = 0;
  double mean_wait_s = 0;
  /// Population variance of the waits across workers, in s^2 — the
  /// "standard variance" axis of Figures 3b/6b.
  double var_wait_s2 = 0;
  int workers = 0;
};

class BarrierLog {
 public:
  /// Records one completed barrier with the per-worker waits (seconds).
  void record(std::int64_t iteration, const std::vector<double>& waits_s);

  std::size_t size() const { return stats_.size(); }
  const std::vector<BarrierStats>& stats() const { return stats_; }

  /// All per-barrier mean waits (s), for CDF plotting.
  std::vector<double> mean_waits() const;
  /// All per-barrier variances (s^2), for CDF plotting.
  std::vector<double> variances() const;

 private:
  std::vector<BarrierStats> stats_;
};

}  // namespace tls::dl
