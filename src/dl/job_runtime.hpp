// Runtime state machine of one distributed DL job on the simulated cluster.
//
// Synchronous mode (the paper's focus) follows Figure 1 of the paper:
//   each PS shard broadcasts its slice of the model to every worker; a
//   worker computes one local batch once it holds *all* shards, pushes one
//   gradient shard to every PS, and blocks in the barrier; a PS that holds
//   all gradient shards aggregates and broadcasts the next model slice.
// With num_ps == 1 this is exactly the paper's main setup; with more, the
// "general case where one DL job has multiple PSes" (Section II).
// A worker's barrier wait runs from local-compute completion (gradient
// transfers start) to full receipt of the next model update (all shards),
// matching the paper's in-graph barrier instrumentation.
#pragma once

#include <functional>
#include <vector>

#include "dl/barrier_log.hpp"
#include "dl/job.hpp"
#include "dl/transmission_gate.hpp"
#include "net/fabric.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulator.hpp"

namespace tls::dl {

/// Callback invoked with every CPU-busy interval [begin, end) on a host;
/// the utilization sampler bins these (the vmstat analog).
using BusySink = std::function<void(net::HostId, sim::Time, sim::Time)>;

class JobRuntime {
 public:
  /// `on_finish` fires once, when the job reaches its global-step target.
  /// `busy_sink` may be empty. Asynchronous training requires num_ps == 1.
  JobRuntime(sim::Simulator& simulator, net::Fabric& fabric, JobSpec spec,
             JobPlacement placement, std::function<void()> on_finish = {},
             BusySink busy_sink = {});

  JobRuntime(const JobRuntime&) = delete;
  JobRuntime& operator=(const JobRuntime&) = delete;

  /// Installs a transmission-coordination gate (may be null). Model-update
  /// bursts then wait for a grant before entering the network and release
  /// the gate on full delivery. Only affects synchronous broadcasts; must
  /// be set before start().
  void set_transmission_gate(TransmissionGate* gate) { gate_ = gate; }

  /// Launches the job: the initial model broadcast leaves every PS now.
  void start();

  /// Evicts the job mid-flight (dynamic-cluster departures): the job
  /// finishes *now* — on_finish fires, departure listeners run — while
  /// chunks already inside the network drain normally (their completion
  /// callbacks no-op on the finished job), so qdisc byte conservation
  /// holds across the eviction. Idempotent; a no-op after normal
  /// completion.
  void request_stop();

  bool started() const { return started_; }
  bool finished() const { return finished_; }
  /// True when the job ended via request_stop() rather than reaching its
  /// global-step target.
  bool evicted() const { return evicted_; }
  sim::Time start_time() const { return start_time_; }
  sim::Time finish_time() const { return finish_time_; }
  /// Job completion time; only valid when finished().
  sim::Time jct() const { return finish_time_ - start_time_; }

  std::int64_t global_step() const { return global_step_; }
  std::int64_t iteration() const { return iteration_; }
  const JobSpec& spec() const { return spec_; }
  const JobPlacement& placement() const { return placement_; }
  const BarrierLog& barrier_log() const { return barrier_log_; }

  /// Total compute-busy time accumulated per worker index.
  const std::vector<sim::Time>& worker_busy() const { return worker_busy_; }
  /// Total aggregation-busy time over all PS shards.
  sim::Time ps_busy() const { return ps_busy_; }

 private:
  void broadcast_shard(int ps);
  void do_broadcast(int ps);
  void send_shard_to(int ps, int worker);
  void on_model_shard_received(int worker);
  void start_compute(int worker);
  void on_compute_done(int worker);
  void on_gradient_received(int ps);
  void complete_shard_barrier(int ps);
  void finish_job();
  void mark_busy(net::HostId host, sim::Time begin, sim::Time end);
  std::uint16_t worker_port(int worker) const;

  sim::Simulator& sim_;
  net::Fabric& fabric_;
  JobSpec spec_;
  JobPlacement placement_;
  std::function<void()> on_finish_;
  BusySink busy_sink_;
  sim::Rng rng_;

  bool started_ = false;
  bool finished_ = false;
  bool evicted_ = false;
  sim::Time start_time_{};
  sim::Time finish_time_{};
  std::int64_t global_step_ = 0;
  std::int64_t iteration_ = 0;  // completed sync iterations (slowest shard)
  std::int64_t iterations_needed_ = 0;

  // Per-worker state.
  std::vector<std::int64_t> local_steps_;
  std::vector<int> shards_received_;       // model shards held this round
  std::vector<sim::Time> barrier_enter_;   // compute-done instant; -1 = not in barrier
  std::vector<double> pending_waits_;      // waits for the barrier in flight
  int waits_exited_ = 0;                   // workers that exited that barrier
  std::vector<sim::Time> worker_busy_;

  // Per-PS-shard state.
  std::vector<int> ps_gradients_pending_;
  std::vector<std::int64_t> ps_iterations_;
  std::vector<int> burst_outstanding_;  // undelivered model flows per shard
  sim::Time ps_busy_{};
  TransmissionGate* gate_ = nullptr;

  BarrierLog barrier_log_;
};

}  // namespace tls::dl
