#include "dl/job_runtime.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "obs/trace.hpp"

namespace tls::dl {

JobRuntime::JobRuntime(sim::Simulator& simulator, net::Fabric& fabric,
                       JobSpec spec, JobPlacement placement,
                       std::function<void()> on_finish, BusySink busy_sink)
    : sim_(simulator),
      fabric_(fabric),
      spec_(std::move(spec)),
      placement_(std::move(placement)),
      on_finish_(std::move(on_finish)),
      busy_sink_(std::move(busy_sink)),
      rng_(simulator.rng().fork("job" + std::to_string(spec_.job_id))) {
  if (spec_.num_workers < 1) throw std::invalid_argument("num_workers < 1");
  if (spec_.num_ps < 1) throw std::invalid_argument("num_ps < 1");
  if (static_cast<int>(placement_.worker_hosts.size()) != spec_.num_workers) {
    throw std::invalid_argument("placement/worker count mismatch");
  }
  if (placement_.ps_count() != spec_.num_ps) {
    throw std::invalid_argument("placement/PS shard count mismatch");
  }
  if (spec_.global_step_target < 1) {
    throw std::invalid_argument("global_step_target < 1");
  }
  if (spec_.mode == TrainingMode::kAsync && spec_.num_ps != 1) {
    throw std::invalid_argument("async training supports a single PS");
  }
  iterations_needed_ = spec_.sync_iterations();
  local_steps_.assign(static_cast<std::size_t>(spec_.num_workers), 0);
  shards_received_.assign(static_cast<std::size_t>(spec_.num_workers), 0);
  barrier_enter_.assign(static_cast<std::size_t>(spec_.num_workers),
                        sim::Time{-1});
  pending_waits_.assign(static_cast<std::size_t>(spec_.num_workers), 0.0);
  worker_busy_.assign(static_cast<std::size_t>(spec_.num_workers),
                      sim::Time{});
  ps_gradients_pending_.assign(static_cast<std::size_t>(spec_.num_ps), 0);
  ps_iterations_.assign(static_cast<std::size_t>(spec_.num_ps), 0);
  burst_outstanding_.assign(static_cast<std::size_t>(spec_.num_ps), 0);
}

std::uint16_t JobRuntime::worker_port(int worker) const {
  return static_cast<std::uint16_t>(spec_.ps_port + spec_.num_ps + worker);
}

void JobRuntime::start() {
  assert(!started_);
  started_ = true;
  start_time_ = sim_.now();
  for (int p = 0; p < spec_.num_ps; ++p) {
    ps_gradients_pending_[static_cast<std::size_t>(p)] = spec_.num_workers;
    broadcast_shard(p);
  }
}

void JobRuntime::broadcast_shard(int ps) {
  if (gate_ != nullptr && spec_.mode == TrainingMode::kSync) {
    net::HostId host = placement_.ps_shard_host(ps);
    net::Bytes burst = spec_.shard_bytes() * spec_.num_workers;
    gate_->request(host, burst, [this, ps, host] {
      if (finished_) {
        // The job ended while waiting for the grant; hand the slot back so
        // the coordinator never leaks capacity.
        gate_->release(host);
        return;
      }
      do_broadcast(ps);
    });
    return;
  }
  do_broadcast(ps);
}

void JobRuntime::do_broadcast(int ps) {
  burst_outstanding_[static_cast<std::size_t>(ps)] = spec_.num_workers;
  for (int w = 0; w < spec_.num_workers; ++w) send_shard_to(ps, w);
}

void JobRuntime::send_shard_to(int ps, int worker) {
  net::FlowSpec flow;
  flow.src = placement_.ps_shard_host(ps);
  flow.dst = placement_.worker_hosts[static_cast<std::size_t>(worker)];
  flow.bytes = spec_.shard_bytes();
  flow.src_port = spec_.ps_shard_port(ps);
  flow.dst_port = worker_port(worker);
  flow.job_id = spec_.job_id;
  flow.kind = net::FlowKind::kModelUpdate;
  // The broadcast that releases barrier k leaves after shard `ps` finished
  // aggregating iteration k, i.e. after ps_iterations_ advanced to k+1; the
  // startup broadcast (ps_iterations_ == 0) tags -1.
  flow.iteration = ps_iterations_[static_cast<std::size_t>(ps)] - 1;
  fabric_.start_flow(flow, [this, ps, worker](const net::FlowRecord&) {
    // Burst-completion accounting runs even after the job finishes, so a
    // coordinated slot is always returned.
    auto pi = static_cast<std::size_t>(ps);
    if (gate_ != nullptr && spec_.mode == TrainingMode::kSync &&
        burst_outstanding_[pi] > 0 && --burst_outstanding_[pi] == 0) {
      gate_->release(placement_.ps_shard_host(ps));
    }
    on_model_shard_received(worker);
  });
}

void JobRuntime::on_model_shard_received(int worker) {
  if (finished_) return;
  auto wi = static_cast<std::size_t>(worker);
  if (++shards_received_[wi] < spec_.num_ps) return;
  shards_received_[wi] = 0;

  // Exiting the previous barrier (if the worker was blocked in one).
  if (barrier_enter_[wi] >= sim::Time{0}) {
    sim::Time wait = sim_.now() - barrier_enter_[wi];
    double wait_s = sim::to_seconds(wait);
    barrier_enter_[wi] = sim::Time{-1};
    if (TLS_OBS_ACTIVE(sim_.tracer())) {
      sim_.tracer()->barrier_release(sim_.now(), spec_.job_id, worker,
                                     local_steps_[wi] - 1, wait);
    }
    if (spec_.mode == TrainingMode::kSync) {
      pending_waits_[wi] = wait_s;
      ++waits_exited_;
      if (waits_exited_ == spec_.num_workers) {
        barrier_log_.record(iteration_ - 1, pending_waits_);
        if (TLS_OBS_ACTIVE(sim_.tracer())) {
          auto [lo, hi] = std::minmax_element(pending_waits_.begin(),
                                              pending_waits_.end());
          sim_.tracer()->straggler_lag(sim_.now(), spec_.job_id,
                                       iteration_ - 1,
                                       sim::from_seconds(*hi - *lo));
        }
        waits_exited_ = 0;
      }
    } else {
      // Async: no shared barrier, but the per-worker blocking time is the
      // same quantity; log it as a single-worker sample.
      barrier_log_.record(local_steps_[wi], {wait_s});
    }
  }
  start_compute(worker);
}

void JobRuntime::start_compute(int worker) {
  auto wi = static_cast<std::size_t>(worker);
  double noise = rng_.lognormal_median(1.0, spec_.compute_sigma);
  sim::Time compute =
      sim::from_seconds(sim::to_seconds(spec_.base_step_time()) * noise);
  if (compute < sim::Time{1}) compute = sim::Time{1};
  if (TLS_OBS_ACTIVE(sim_.tracer())) {
    sim_.tracer()->worker_compute(sim_.now(), placement_.worker_hosts[wi],
                                  spec_.job_id, worker, local_steps_[wi],
                                  compute);
  }
  mark_busy(placement_.worker_hosts[wi], sim_.now(), sim_.now() + compute);
  worker_busy_[wi] += compute;
  sim_.schedule_after(compute, [this, worker] { on_compute_done(worker); });
}

void JobRuntime::on_compute_done(int worker) {
  if (finished_) return;
  auto wi = static_cast<std::size_t>(worker);
  ++local_steps_[wi];
  barrier_enter_[wi] = sim_.now();
  if (TLS_OBS_ACTIVE(sim_.tracer())) {
    sim_.tracer()->barrier_enter(sim_.now(), spec_.job_id, worker,
                                 local_steps_[wi] - 1);
  }

  for (int p = 0; p < spec_.num_ps; ++p) {
    net::FlowSpec flow;
    flow.src = placement_.worker_hosts[wi];
    flow.dst = placement_.ps_shard_host(p);
    flow.bytes = spec_.shard_bytes();
    flow.src_port = worker_port(worker);
    flow.dst_port = spec_.ps_shard_port(p);
    flow.job_id = spec_.job_id;
    flow.kind = net::FlowKind::kGradientUpdate;
    flow.iteration = local_steps_[wi] - 1;
    fabric_.start_flow(flow, [this, p, worker](const net::FlowRecord&) {
      if (spec_.mode == TrainingMode::kSync) {
        on_gradient_received(p);
      } else {
        // Async single-PS path: reply to this worker alone.
        if (finished_) return;
        sim::Time agg = spec_.ps_aggregate_per_worker;
        if (TLS_OBS_ACTIVE(sim_.tracer())) {
          // Async has no shared barrier; tag the span with the worker's
          // local step instead of a sync iteration.
          sim_.tracer()->ps_aggregate(
              sim_.now(), placement_.ps_shard_host(0), spec_.job_id, 0,
              local_steps_[static_cast<std::size_t>(worker)] - 1, agg);
        }
        mark_busy(placement_.ps_shard_host(0), sim_.now(), sim_.now() + agg);
        ps_busy_ += agg;
        ++global_step_;
        if (global_step_ >= spec_.global_step_target) {
          finish_job();
          return;
        }
        sim_.schedule_after(agg, [this, worker] {
          if (finished_) return;
          send_shard_to(0, worker);
        });
      }
    });
  }
}

void JobRuntime::on_gradient_received(int ps) {
  if (finished_) return;
  auto pi = static_cast<std::size_t>(ps);
  assert(ps_gradients_pending_[pi] > 0);
  if (--ps_gradients_pending_[pi] > 0) return;
  // Aggregation work is sharded across PSes.
  sim::Time agg = spec_.ps_aggregate_per_worker * spec_.num_workers /
                  spec_.num_ps;
  if (TLS_OBS_ACTIVE(sim_.tracer())) {
    sim_.tracer()->ps_aggregate(sim_.now(), placement_.ps_shard_host(ps),
                                spec_.job_id, ps, ps_iterations_[pi], agg);
  }
  mark_busy(placement_.ps_shard_host(ps), sim_.now(), sim_.now() + agg);
  ps_busy_ += agg;
  sim_.schedule_after(agg, [this, ps] { complete_shard_barrier(ps); });
}

void JobRuntime::complete_shard_barrier(int ps) {
  if (finished_) return;
  auto pi = static_cast<std::size_t>(ps);
  ++ps_iterations_[pi];
  // The job's iteration advances with the slowest shard.
  std::int64_t slowest =
      *std::min_element(ps_iterations_.begin(), ps_iterations_.end());
  while (iteration_ < slowest) {
    ++iteration_;
    global_step_ += spec_.num_workers;
  }
  if (iteration_ >= iterations_needed_) {
    finish_job();
    return;
  }
  if (ps_iterations_[pi] < iterations_needed_) {
    ps_gradients_pending_[pi] = spec_.num_workers;
    broadcast_shard(ps);
  }
}

void JobRuntime::request_stop() {
  if (finished_) return;
  evicted_ = true;
  // An unstarted job can still be evicted (queued departure before its
  // staggered start); give it a zero-length lifetime at the current time.
  if (!started_) {
    started_ = true;
    start_time_ = sim_.now();
  }
  finish_job();
}

void JobRuntime::finish_job() {
  assert(!finished_);
  finished_ = true;
  finish_time_ = sim_.now();
  if (on_finish_) on_finish_();
}

void JobRuntime::mark_busy(net::HostId host, sim::Time begin, sim::Time end) {
  if (busy_sink_) busy_sink_(host, begin, end);
}

}  // namespace tls::dl
