// Static description of one distributed DL job and its task placement.
#pragma once

#include <cstdint>
#include <vector>

#include "dl/model.hpp"
#include "net/units.hpp"
#include "simcore/time.hpp"

namespace tls::dl {

/// Synchronous training barriers on every iteration (the paper's focus);
/// asynchronous lets each worker run free.
enum class TrainingMode { kSync, kAsync };

struct JobSpec {
  std::int32_t job_id = 0;
  ModelSpec model;
  int num_workers = 1;
  /// Parameter servers per job. With more than one PS the model is sharded
  /// evenly: each PS exchanges update_bytes()/num_ps with every worker each
  /// iteration and runs its own shard barrier ("each PS communicates with
  /// remote workers in a similar way", Section II of the paper).
  int num_ps = 1;
  /// Samples per worker per local step.
  int local_batch_size = 4;
  /// Train until the job's global step (total local steps over all
  /// workers) reaches this target.
  std::int64_t global_step_target = 100;
  TrainingMode mode = TrainingMode::kSync;
  /// Lognormal sigma on each local step's compute time (hardware noise).
  double compute_sigma = 0.12;
  /// PS work to fold one worker's gradient into the model.
  sim::Time ps_aggregate_per_worker = 2 * sim::kMillisecond;
  /// Fixed per-local-step overhead on the worker (input pipeline, session
  /// launch, op scheduling) that does not scale with the batch size.
  sim::Time step_overhead = 150 * sim::kMillisecond;
  /// The first PS's stable TCP port — what tc filters match on. PS shard p
  /// listens on ps_port + p; worker w uses ps_port + num_ps + w.
  std::uint16_t ps_port = 0;

  /// Port of PS shard `p`.
  std::uint16_t ps_shard_port(int p) const {
    return static_cast<std::uint16_t>(ps_port + p);
  }
  /// Bytes of one shard's model (or gradient) update to one worker.
  net::Bytes shard_bytes() const {
    return (model.update_bytes() + net::Bytes{num_ps - 1}) / num_ps;
  }

  /// Expected (noise-free) compute time of one local step.
  sim::Time base_step_time() const {
    return step_overhead +
           sim::from_millis(model.ms_per_sample *
                            static_cast<double>(local_batch_size));
  }
  /// Iterations until the target is reached (sync mode).
  std::int64_t sync_iterations() const {
    return (global_step_target + num_workers - 1) / num_workers;
  }
};

/// Where the job's tasks landed. The paper's setup: one PS host, workers
/// spread one-per-host over the remaining hosts. Multi-PS jobs list one
/// host per shard in ps_hosts; single-PS jobs may leave ps_hosts empty and
/// use ps_host alone.
struct JobPlacement {
  net::HostId ps_host{0};
  std::vector<net::HostId> ps_hosts;  // per shard; empty => {ps_host}
  std::vector<net::HostId> worker_hosts;

  /// Host of PS shard `p`, honouring the single-PS fallback.
  net::HostId ps_shard_host(int p) const {
    if (ps_hosts.empty()) return ps_host;
    return ps_hosts.at(static_cast<std::size_t>(p));
  }
  /// Number of PS shards this placement provides for.
  int ps_count() const {
    return ps_hosts.empty() ? 1 : static_cast<int>(ps_hosts.size());
  }
};

}  // namespace tls::dl
