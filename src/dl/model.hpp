// DL model descriptions: only the properties that matter to an end-host
// traffic scheduler — the size of one model/gradient update (the fan-out
// payload per worker per iteration) and the compute cost per sample.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/units.hpp"

namespace tls::dl {

struct ModelSpec {
  std::string name;
  /// Number of trainable parameters.
  std::int64_t parameters = 0;
  /// Bytes of one model update == one gradient update (fp32 parameters).
  net::Bytes update_bytes() const { return net::Bytes{parameters * 4}; }
  /// Per-sample forward+backward time on a testbed-class CPU worker, in
  /// milliseconds. Calibrated so the paper's ResNet-32 batch-4 iteration
  /// lands in its measured ~1-2 s regime.
  double ms_per_sample = 1.0;
};

/// Built-in model zoo. ResNet-32 is the paper's workload; the others give
/// heterogeneous-mix experiments realistic sizes.
namespace zoo {
ModelSpec resnet32_cifar10();   ///< 0.46 M params, the paper's model
ModelSpec resnet50_imagenet();  ///< 25.6 M params
ModelSpec vgg16();              ///< 138 M params
ModelSpec inception_v3();       ///< 23.8 M params
ModelSpec alexnet();            ///< 61 M params
ModelSpec lstm_ptb();           ///< 66 M params, language model

/// All zoo models, for enumeration in tests and examples.
std::vector<ModelSpec> all();

/// Looks a model up by name; nullopt when unknown.
std::optional<ModelSpec> by_name(const std::string& name);
}  // namespace zoo

}  // namespace tls::dl
