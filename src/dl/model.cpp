#include "dl/model.hpp"

namespace tls::dl::zoo {

// Parameter counts from the respective papers; ms_per_sample calibrated to
// CPU-class workers (the paper's testbed trains ResNet-32 on 6-core hosts).
ModelSpec resnet32_cifar10() { return {"resnet32_cifar10", 467'194, 150.0}; }
ModelSpec resnet50_imagenet() { return {"resnet50_imagenet", 25'557'032, 1100.0}; }
ModelSpec vgg16() { return {"vgg16", 138'357'544, 2300.0}; }
ModelSpec inception_v3() { return {"inception_v3", 23'834'568, 1350.0}; }
ModelSpec alexnet() { return {"alexnet", 60'965'224, 420.0}; }
ModelSpec lstm_ptb() { return {"lstm_ptb", 66'000'000, 600.0}; }

std::vector<ModelSpec> all() {
  return {resnet32_cifar10(), resnet50_imagenet(), vgg16(),
          inception_v3(),     alexnet(),           lstm_ptb()};
}

std::optional<ModelSpec> by_name(const std::string& name) {
  for (const ModelSpec& m : all()) {
    if (m.name == name) return m;
  }
  return std::nullopt;
}

}  // namespace tls::dl::zoo
