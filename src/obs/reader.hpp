// Offline trace ingestion: parses the trace CSV written by
// obs::trace_csv() back into TraceEvents, so tlsreport can analyze runs
// after the fact (the CSV is the lossless on-disk form of the event log).
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace tls::obs {

/// Parses a trace CSV stream (header + one row per event). Returns false
/// and sets *error (file:line-style message) on malformed input; events
/// parsed before the error are left in *out.
bool read_trace_csv(std::istream& in, std::vector<TraceEvent>* out,
                    std::string* error);

/// Convenience wrapper opening `path`; false with *error when the file
/// cannot be opened or parsed.
bool read_trace_csv_file(const std::string& path,
                         std::vector<TraceEvent>* out, std::string* error);

}  // namespace tls::obs
