// Offline trace ingestion: parses the trace CSV written by
// obs::trace_csv() back into TraceEvents, so tlsreport can analyze runs
// after the fact (the CSV is the lossless on-disk form of the event log).
//
// All entry points share one incremental line parser that consumes the
// input in fixed-size chunks (kReadChunkBytes) — the file is never
// slurped whole, so memory stays bounded even for multi-gigabyte traces,
// and the same parser tails a growing file (TraceCsvTail) for
// `tlsreport --follow`. Lines starting with '#' are metadata trailers
// (`#health,...` carries the tracer's drop/sampling counters — see
// obs::TraceHealth); unknown comment lines are skipped.
#pragma once

#include <functional>
#include <istream>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace tls::obs {

/// Fixed read-granule for all CSV ingestion (64 KiB).
inline constexpr std::size_t kReadChunkBytes = 64 * 1024;

/// Parses a trace CSV stream (header + one row per event). Returns false
/// and sets *error (file:line-style message) on malformed input; events
/// parsed before the error are left in *out.
bool read_trace_csv(std::istream& in, std::vector<TraceEvent>* out,
                    std::string* error);

/// As above, also restoring the capture-health trailer (zeros when the
/// trace carries none) into *health.
bool read_trace_csv(std::istream& in, std::vector<TraceEvent>* out,
                    TraceHealth* health, std::string* error);

/// Convenience wrapper opening `path`; false with *error when the file
/// cannot be opened or parsed. Reads in fixed-size chunks.
bool read_trace_csv_file(const std::string& path,
                         std::vector<TraceEvent>* out, std::string* error);
bool read_trace_csv_file(const std::string& path,
                         std::vector<TraceEvent>* out, TraceHealth* health,
                         std::string* error);

/// Fully-streaming ingestion: invokes `sink` per event without ever
/// materializing the event vector — the bounded-memory path feeding a
/// StreamingAnalyzer straight from disk. Returns false with *error on
/// open/parse failure (events before the error were already delivered).
bool for_each_trace_csv_event(
    const std::string& path,
    const std::function<void(const TraceEvent&)>& sink, TraceHealth* health,
    std::string* error);

/// Tails a trace CSV that another process is still appending to. Each
/// poll() reads whatever complete new lines exist past the last offset
/// and delivers them to the sink; a partially-written final line is
/// buffered until a later append completes it. The file is reopened per
/// poll (cheap, and robust to the writer recreating it with more data).
/// Truncation and rotation are detected — a file that shrank below the
/// consumed offset, or whose leading bytes no longer match the already
/// parsed header, resets the tail to offset 0 with fresh parser state and
/// the new file is followed from its start.
class TraceCsvTail {
 public:
  explicit TraceCsvTail(std::string path);

  /// Delivers newly appended complete events. Returns false and sets
  /// *error when the file cannot be opened (yet) or a complete line is
  /// malformed; polling again is safe in the cannot-open case.
  bool poll(const std::function<void(const TraceEvent&)>& sink,
            std::string* error);

  /// True once the header line has been consumed and validated.
  bool header_seen() const { return header_seen_; }
  /// Events delivered so far.
  std::uint64_t events_read() const { return events_read_; }
  /// Health trailer accumulated so far (written by the tracer at the end
  /// of a capped/sampled trace).
  const TraceHealth& health() const { return health_; }

 private:
  std::string path_;
  std::uint64_t offset_ = 0;     ///< bytes fully consumed
  std::string pending_;          ///< trailing partial line
  int lineno_ = 0;
  bool header_seen_ = false;
  std::uint64_t events_read_ = 0;
  TraceHealth health_;
};

}  // namespace tls::obs
