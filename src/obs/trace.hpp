// tls::obs — structured simulation tracing.
//
// A Tracer is the per-simulation observability sink: typed trace events
// (chunk enqueue/dequeue, qdisc band service, htb green/yellow borrowing,
// TLs-RR rotations, barrier enter/release, straggler-lag samples) plus an
// optional metrics Registry the same emission sites feed. Components reach
// it through Simulator::tracer() — a single pointer load — so a run with no
// tracer attached pays one null check per emission site, and building with
// -DTLS_OBS=OFF compiles the sites out entirely (TLS_OBS_DISABLED).
//
// Determinism contract (DESIGN.md "Observability"): every event is stamped
// with *simulation* time passed in by the emitter, events are appended in
// emission order by the single-threaded event loop, and the exporters
// format integers only — so trace files are byte-identical across repeated
// seeded runs and across serial vs parallel (tls::runtime) execution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

// Layer note: obs sits below net in the module DAG, but the emission-site
// vocabulary (HostId, BandId, Bytes) lives in net/units.hpp. tools/layers.txt
// grants obs this one header file-scoped; the layer checker still verifies
// the file-level include graph stays acyclic.
#include "net/units.hpp"
#include "simcore/time.hpp"

namespace tls::obs {

class Registry;

/// Event categories, usable as a bitmask filter (--trace-filter).
enum class Cat : std::uint32_t {
  kChunk = 1u << 0,      ///< chunk enqueue/dequeue at a host egress NIC
  kQdisc = 1u << 1,      ///< discipline-level band service decisions
  kHtb = 1u << 2,        ///< htb green/yellow sends and overlimit stalls
  kRotation = 1u << 3,   ///< TLs-RR rotations and per-job band assignment
  kBarrier = 1u << 4,    ///< synchronous-barrier enter/release spans
  kStraggler = 1u << 5,  ///< per-iteration straggler-lag samples
  kSample = 1u << 6,     ///< periodic gauge samples (queue depth, lag)
  kFlow = 1u << 7,       ///< application flow start/end (causal linkage)
  kIngress = 1u << 8,    ///< chunk arrive/deliver at a host ingress NIC
  kCompute = 1u << 9,    ///< worker compute steps and PS aggregation spans
};

/// Every category enabled.
inline constexpr std::uint32_t kAllCats = 0x3ff;

/// The categories obs::analysis needs to reconstruct critical paths and
/// blame matrices (chunk, barrier, flow, ingress, compute).
inline constexpr std::uint32_t kAnalysisCats =
    static_cast<std::uint32_t>(Cat::kChunk) |
    static_cast<std::uint32_t>(Cat::kBarrier) |
    static_cast<std::uint32_t>(Cat::kFlow) |
    static_cast<std::uint32_t>(Cat::kIngress) |
    static_cast<std::uint32_t>(Cat::kCompute);

/// Number of defined categories (== popcount(kAllCats)).
inline constexpr int kNumCats = 10;

/// Index of a category's bit in [0, kNumCats); kNumCats - 1 for unknown
/// bits so malformed inputs stay in range.
int cat_index(Cat cat);

/// Stable lower-case name of a category ("chunk", "htb", ...).
const char* to_string(Cat cat);

/// Parses a category filter: comma-separated names, "all", or "none".
/// Returns false and sets *error on an unknown name.
bool parse_categories(const std::string& text, std::uint32_t* mask,
                      std::string* error);

/// Capture-completeness record for one trace: how many events the tracer
/// refused to store, split by why (the max_events cap vs deliberate
/// sampling) and by category. It travels with the trace — trace_csv()
/// appends it as `#health` trailer comments and the reader restores it —
/// so offline attribution can warn that it ran on an incomplete log
/// instead of silently passing a truncated trace as a complete one.
struct TraceHealth {
  std::uint64_t dropped_total = 0;      ///< events past the max_events cap
  std::uint64_t sampled_out_total = 0;  ///< events excluded by sampling
  std::uint64_t dropped_by_cat[kNumCats] = {};
  std::uint64_t sampled_out_by_cat[kNumCats] = {};

  /// True when every emitted event was stored.
  bool complete() const {
    return dropped_total == 0 && sampled_out_total == 0;
  }
};

/// Parses a sampling spec: comma-separated `cat=N` pairs ("qdisc=16,htb=8"),
/// keeping one event in every N of that category. Returns false and sets
/// *error on an unknown category or a non-positive N. `out` must have
/// kNumCats slots; unmentioned categories are left untouched.
bool parse_sampling(const std::string& text, std::uint32_t* out,
                    std::string* error);

/// What happened. Order is part of the trace-CSV schema; append only.
enum class EventKind : std::uint8_t {
  kChunkEnqueue = 0,   ///< chunk admitted to an egress qdisc
  kChunkDequeue = 1,   ///< chunk picked for the wire (a = queue wait ns)
  kBandService = 2,    ///< discipline served `band` (prio/pfifo/pfifo_fast)
  kHtbGreen = 3,       ///< htb sent at assured rate
  kHtbYellow = 4,      ///< htb sent by borrowing from the root (yellow)
  kOverlimit = 5,      ///< rate limiter stalled the port (a = retry time ns)
  kRotation = 6,       ///< TLs-RR rotation tick (a = rotation offset)
  kBandAssign = 7,     ///< controller steered `job` into `band` on `host`
  kBarrierEnter = 8,   ///< worker (a) entered the barrier (b = iteration)
  kBarrierRelease = 9, ///< worker (a) exited; dur = wait (b = iteration)
  kStragglerLag = 10,  ///< iteration (a) wait spread max-min (b = lag ns)
  kGaugeSample = 11,   ///< periodic sample (a = value), named via band/b
  // Causal-attribution events (obs::analysis). For flow events `band`
  // carries the FlowKind ordinal — flows have no band; chunks do.
  kFlowStart = 12,      ///< flow admitted (host = src, a = dst, b = iteration)
  kFlowEnd = 13,        ///< last byte delivered (dur = flow completion time)
  kIngressArrive = 14,  ///< chunk reached the destination ingress queue
  kIngressDeliver = 15, ///< chunk delivered (a = fan-in wait, dur = residence)
  kWorkerCompute = 16,  ///< local step span (a = worker, b = iteration)
  kPsAggregate = 17,    ///< PS aggregation span (a = shard, b = iteration)
};

/// One fixed-size trace record. Field meaning depends on `kind`; `a` and
/// `b` are kind-specific payloads documented on EventKind. The record is
/// deliberately flat integers (not strong types): it is the serialization
/// boundary — rows round-trip through trace CSVs where host/band/bytes are
/// plain columns, and `a`/`b` are payload slots whose unit depends on the
/// kind. Tracer's emission methods take the strong types and flatten here.
struct TraceEvent {
  sim::Time at{};
  EventKind kind = EventKind::kChunkEnqueue;
  Cat cat = Cat::kChunk;
  std::int32_t host = -1;
  std::int32_t job = -1;
  std::int32_t band = -1;
  std::int64_t flow = 0;
  std::int64_t bytes = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
  sim::Time dur{};
};

/// Per-simulation observability sink: an append-only event log behind a
/// category mask, plus an optional metrics Registry fed by the same typed
/// emission methods. Single-threaded by contract, like everything else
/// inside one simulation.
class Tracer {
 public:
  explicit Tracer(std::uint32_t categories = kAllCats) : mask_(categories) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// True when `cat` events are being recorded.
  bool enabled(Cat cat) const {
    return (mask_ & static_cast<std::uint32_t>(cat)) != 0;
  }
  /// True when any emission site has work to do (events or metrics).
  bool active() const { return mask_ != 0 || registry_ != nullptr; }

  std::uint32_t categories() const { return mask_; }
  void set_categories(std::uint32_t mask) { mask_ = mask; }

  /// Attaches a metrics registry; emission sites then update counters and
  /// histograms even for categories filtered out of the event log.
  void set_registry(Registry* registry) { registry_ = registry; }
  Registry* registry() const { return registry_; }

  /// Caps the event log (0 = unlimited). Events past the cap are counted
  /// in dropped() instead of stored, so a runaway trace degrades instead
  /// of exhausting memory.
  void set_max_events(std::size_t cap) { max_events_ = cap; }
  std::uint64_t dropped() const { return health_.dropped_total; }

  /// Per-category sampling: keep one event in every `n` of category `cat`
  /// (n <= 1 disables). The kAnalysisCats categories are always kept —
  /// the critical-chain events must stay integer-exact for attribution —
  /// so requests for them are clamped to 1 unless `force` is set.
  void set_sample_every(Cat cat, std::uint32_t n, bool force = false);
  std::uint32_t sample_every(Cat cat) const {
    return sample_every_[cat_index(cat)];
  }

  /// Capture-health snapshot: cap drops and sampling exclusions, per cat.
  const TraceHealth& health() const { return health_; }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

  // --- typed emission sites (hot path: check enabled() before calling) ---

  /// Chunk admission/service at a host egress qdisc. `job` is the owning
  /// job (-1 for background traffic) and `index` the chunk's position in
  /// its flow — together they give the analysis layer an exact chunk
  /// identity ((flow, index)) and a "who delayed whom" job axis.
  void chunk_enqueue(sim::Time at, net::HostId host, std::int32_t job,
                     net::BandId band, std::int64_t flow, std::int64_t index,
                     net::Bytes bytes);
  void chunk_dequeue(sim::Time at, net::HostId host, std::int32_t job,
                     net::BandId band, std::int64_t flow, std::int64_t index,
                     net::Bytes bytes, sim::Time queue_wait);
  void band_service(sim::Time at, net::HostId host, net::BandId band,
                    net::Bytes bytes);
  void htb_send(sim::Time at, net::HostId host, net::BandId band,
                net::Bytes bytes, bool borrowed);
  void overlimit(sim::Time at, net::HostId host, sim::Time retry_at);
  void rotation(sim::Time at, std::int64_t offset);
  void band_assign(sim::Time at, net::HostId host, std::int32_t job,
                   net::BandId band);
  void barrier_enter(sim::Time at, std::int32_t job, std::int32_t worker,
                     std::int64_t iteration);
  void barrier_release(sim::Time at, std::int32_t job, std::int32_t worker,
                       std::int64_t iteration, sim::Time wait);
  /// Flow lifecycle, the causal spine linking chunks to jobs/iterations.
  /// `kind_ordinal` is the net::FlowKind value; `iteration` tags which
  /// synchronous barrier the transfer serves (-1 = startup/non-barrier).
  void flow_start(sim::Time at, net::HostId src, net::HostId dst,
                  std::int32_t job, std::int32_t kind_ordinal,
                  std::int64_t flow, net::Bytes bytes, std::int64_t iteration);
  void flow_end(sim::Time at, net::HostId src, net::HostId dst,
                std::int32_t job, std::int32_t kind_ordinal,
                std::int64_t flow, net::Bytes bytes, std::int64_t iteration,
                sim::Time elapsed);
  /// Receive-side fan-in: chunk joins the destination ingress FIFO, and
  /// its delivery (`wait` = time queued behind other arrivals, `residence`
  /// = wait + receive serialization).
  void ingress_arrive(sim::Time at, net::HostId host, std::int32_t job,
                      net::BandId band, std::int64_t flow, std::int64_t index,
                      net::Bytes bytes);
  void ingress_deliver(sim::Time at, net::HostId host, std::int32_t job,
                       net::BandId band, std::int64_t flow,
                       std::int64_t index, net::Bytes bytes, sim::Time wait,
                       sim::Time residence);
  /// Compute spans, emitted at span start with the full duration (the
  /// simulator schedules compute atomically, so the end is already known).
  void worker_compute(sim::Time at, net::HostId host, std::int32_t job,
                      std::int32_t worker, std::int64_t iteration,
                      sim::Time duration);
  void ps_aggregate(sim::Time at, net::HostId host, std::int32_t job,
                    std::int32_t shard, std::int64_t iteration,
                    sim::Time duration);
  void straggler_lag(sim::Time at, std::int32_t job, std::int64_t iteration,
                     sim::Time lag);
  /// Periodic gauge sample; also recorded as a registry timeseries point
  /// under `name` when a registry is attached.
  void gauge_sample(sim::Time at, const std::string& name, net::HostId host,
                    std::int32_t job, double value);

 private:
  void push(const TraceEvent& e);

  std::uint32_t mask_;
  Registry* registry_ = nullptr;
  std::size_t max_events_ = 0;
  std::uint32_t sample_every_[kNumCats] = {1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
  std::uint64_t sample_seen_[kNumCats] = {};
  TraceHealth health_;
  std::vector<TraceEvent> events_;
};

/// Derives a per-run artifact path by inserting `.label` before the final
/// extension ("out/t.json", "seed3" -> "out/t.seed3.json"; '/' in labels
/// becomes '-' so sweep labels like "p3/tls-rr" stay single files).
std::string per_run_path(const std::string& base, const std::string& label);

}  // namespace tls::obs

// Emission-site guard: evaluates to false (and lets the compiler drop the
// branch) when observability is compiled out with -DTLS_OBS=OFF.
#if defined(TLS_OBS_DISABLED)
#define TLS_OBS_ACTIVE(tracer) false
#else
#define TLS_OBS_ACTIVE(tracer) ((tracer) != nullptr && (tracer)->active())
#endif
