#include "obs/reader.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/export.hpp"

namespace tls::obs {

namespace {

constexpr const char* kHeader = "at_ns,kind,cat,host,job,band,flow,bytes,a,b,dur_ns";

bool kind_from_string(const std::string& name, EventKind* out) {
  for (int k = 0; k <= static_cast<int>(EventKind::kPsAggregate); ++k) {
    EventKind kind = static_cast<EventKind>(k);
    if (name == to_string(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

bool cat_from_string(const std::string& name, Cat* out) {
  for (std::uint32_t bit = 1; bit <= kAllCats; bit <<= 1) {
    Cat cat = static_cast<Cat>(bit);
    if (name == to_string(cat)) {
      *out = cat;
      return true;
    }
  }
  return false;
}

bool parse_i64(const std::string& tok, std::int64_t* out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  *out = std::strtoll(tok.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

}  // namespace

bool read_trace_csv(std::istream& in, std::vector<TraceEvent>* out,
                    std::string* error) {
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    if (error != nullptr) {
      *error = "not a trace CSV (expected header '" + std::string(kHeader) +
               "', got '" + line + "')";
    }
    return false;
  }
  int lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::vector<std::string> cols;
    std::size_t start = 0;
    for (;;) {
      std::size_t comma = line.find(',', start);
      if (comma == std::string::npos) {
        cols.push_back(line.substr(start));
        break;
      }
      cols.push_back(line.substr(start, comma - start));
      start = comma + 1;
    }
    if (cols.size() != 11) {
      if (error != nullptr) {
        *error = "line " + std::to_string(lineno) + ": expected 11 columns, got " +
                 std::to_string(cols.size());
      }
      return false;
    }
    TraceEvent e;
    std::int64_t v = 0;
    bool ok = parse_i64(cols[0], &v);
    e.at = sim::from_nanos(v);
    ok = ok && kind_from_string(cols[1], &e.kind);
    ok = ok && cat_from_string(cols[2], &e.cat);
    ok = ok && parse_i64(cols[3], &v);
    e.host = static_cast<std::int32_t>(v);
    ok = ok && parse_i64(cols[4], &v);
    e.job = static_cast<std::int32_t>(v);
    ok = ok && parse_i64(cols[5], &v);
    e.band = static_cast<std::int32_t>(v);
    ok = ok && parse_i64(cols[6], &e.flow);
    ok = ok && parse_i64(cols[7], &e.bytes);
    ok = ok && parse_i64(cols[8], &e.a);
    ok = ok && parse_i64(cols[9], &e.b);
    ok = ok && parse_i64(cols[10], &v);
    e.dur = sim::from_nanos(v);
    if (!ok) {
      if (error != nullptr) {
        *error = "line " + std::to_string(lineno) + ": malformed row '" + line + "'";
      }
      return false;
    }
    out->push_back(e);
  }
  return true;
}

bool read_trace_csv_file(const std::string& path,
                         std::vector<TraceEvent>* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open trace CSV: " + path;
    return false;
  }
  std::string inner;
  if (!read_trace_csv(in, out, &inner)) {
    if (error != nullptr) *error = path + ": " + inner;
    return false;
  }
  return true;
}

}  // namespace tls::obs
