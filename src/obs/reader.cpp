#include "obs/reader.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>

#include "obs/export.hpp"

namespace tls::obs {

namespace {

constexpr const char* kHeader = "at_ns,kind,cat,host,job,band,flow,bytes,a,b,dur_ns";

using EventSink = std::function<void(const TraceEvent&)>;

bool kind_from_string(const std::string& name, EventKind* out) {
  for (int k = 0; k <= static_cast<int>(EventKind::kPsAggregate); ++k) {
    EventKind kind = static_cast<EventKind>(k);
    if (name == to_string(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

bool cat_from_string(const std::string& name, Cat* out) {
  for (std::uint32_t bit = 1; bit <= kAllCats; bit <<= 1) {
    Cat cat = static_cast<Cat>(bit);
    if (name == to_string(cat)) {
      *out = cat;
      return true;
    }
  }
  return false;
}

bool parse_i64(const std::string& tok, std::int64_t* out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  *out = std::strtoll(tok.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

void split_columns(const std::string& line, std::vector<std::string>* cols) {
  cols->clear();
  std::size_t start = 0;
  for (;;) {
    std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      cols->push_back(line.substr(start));
      break;
    }
    cols->push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

/// `#health,<dropped|sampled>,<total|cat>,<count>` trailer comments carry
/// the tracer's capture-health counters; any other '#' line is ignored.
void handle_comment(const std::string& line, TraceHealth* health) {
  if (health == nullptr) return;
  std::vector<std::string> cols;
  split_columns(line, &cols);
  if (cols.size() != 4 || cols[0] != "#health") return;
  std::int64_t count = 0;
  if (!parse_i64(cols[3], &count) || count < 0) return;
  bool dropped = cols[1] == "dropped";
  if (!dropped && cols[1] != "sampled") return;
  if (cols[2] == "total") {
    (dropped ? health->dropped_total : health->sampled_out_total) =
        static_cast<std::uint64_t>(count);
    return;
  }
  Cat cat{};
  if (!cat_from_string(cols[2], &cat)) return;
  (dropped ? health->dropped_by_cat
           : health->sampled_out_by_cat)[cat_index(cat)] =
      static_cast<std::uint64_t>(count);
}

/// Parses one complete line (header, comment, or event row). Keeps the
/// batch reader's exact error messages.
bool handle_line(const std::string& line, int lineno, bool* header_seen,
                 const EventSink& sink, TraceHealth* health,
                 std::string* error) {
  if (!*header_seen) {
    if (line != kHeader) {
      if (error != nullptr) {
        *error = "not a trace CSV (expected header '" + std::string(kHeader) +
                 "', got '" + line + "')";
      }
      return false;
    }
    *header_seen = true;
    return true;
  }
  if (line.empty()) return true;
  if (line[0] == '#') {
    handle_comment(line, health);
    return true;
  }
  std::vector<std::string> cols;
  split_columns(line, &cols);
  if (cols.size() != 11) {
    if (error != nullptr) {
      *error = "line " + std::to_string(lineno) + ": expected 11 columns, got " +
               std::to_string(cols.size());
    }
    return false;
  }
  TraceEvent e;
  std::int64_t v = 0;
  bool ok = parse_i64(cols[0], &v);
  e.at = sim::from_nanos(v);
  ok = ok && kind_from_string(cols[1], &e.kind);
  ok = ok && cat_from_string(cols[2], &e.cat);
  ok = ok && parse_i64(cols[3], &v);
  e.host = static_cast<std::int32_t>(v);
  ok = ok && parse_i64(cols[4], &v);
  e.job = static_cast<std::int32_t>(v);
  ok = ok && parse_i64(cols[5], &v);
  e.band = static_cast<std::int32_t>(v);
  ok = ok && parse_i64(cols[6], &e.flow);
  ok = ok && parse_i64(cols[7], &e.bytes);
  ok = ok && parse_i64(cols[8], &e.a);
  ok = ok && parse_i64(cols[9], &e.b);
  ok = ok && parse_i64(cols[10], &v);
  e.dur = sim::from_nanos(v);
  if (!ok) {
    if (error != nullptr) {
      *error = "line " + std::to_string(lineno) + ": malformed row '" + line + "'";
    }
    return false;
  }
  sink(e);
  return true;
}

/// Splits a chunk into lines, carrying the trailing partial line over in
/// `pending` for the next chunk (or a later poll of a growing file).
bool feed_chunk(const char* data, std::size_t n, std::string* pending,
                int* lineno, bool* header_seen, const EventSink& sink,
                TraceHealth* health, std::string* error) {
  std::size_t start = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (data[i] != '\n') continue;
    pending->append(data + start, i - start);
    ++*lineno;
    bool ok = handle_line(*pending, *lineno, header_seen, sink, health,
                          error);
    pending->clear();
    if (!ok) return false;
    start = i + 1;
  }
  pending->append(data + start, n - start);
  return true;
}

/// Streams `in` to completion in fixed-size chunks. A final line without a
/// trailing newline counts as complete (matches the getline-based reader
/// this replaced).
bool consume_stream(std::istream& in, const EventSink& sink,
                    TraceHealth* health, std::string* error) {
  std::string pending;
  int lineno = 0;
  bool header_seen = false;
  std::vector<char> buf(kReadChunkBytes);
  for (;;) {
    in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    std::streamsize got = in.gcount();
    if (got <= 0) break;
    if (!feed_chunk(buf.data(), static_cast<std::size_t>(got), &pending,
                    &lineno, &header_seen, sink, health, error)) {
      return false;
    }
  }
  if (!header_seen || !pending.empty()) {
    ++lineno;
    return handle_line(pending, lineno, &header_seen, sink, health, error);
  }
  return true;
}

}  // namespace

bool read_trace_csv(std::istream& in, std::vector<TraceEvent>* out,
                    TraceHealth* health, std::string* error) {
  return consume_stream(
      in, [out](const TraceEvent& e) { out->push_back(e); }, health, error);
}

bool read_trace_csv(std::istream& in, std::vector<TraceEvent>* out,
                    std::string* error) {
  return read_trace_csv(in, out, nullptr, error);
}

bool read_trace_csv_file(const std::string& path,
                         std::vector<TraceEvent>* out, TraceHealth* health,
                         std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open trace CSV: " + path;
    return false;
  }
  std::string inner;
  if (!read_trace_csv(in, out, health, &inner)) {
    if (error != nullptr) *error = path + ": " + inner;
    return false;
  }
  return true;
}

bool read_trace_csv_file(const std::string& path,
                         std::vector<TraceEvent>* out, std::string* error) {
  return read_trace_csv_file(path, out, nullptr, error);
}

bool for_each_trace_csv_event(
    const std::string& path,
    const std::function<void(const TraceEvent&)>& sink, TraceHealth* health,
    std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open trace CSV: " + path;
    return false;
  }
  std::string inner;
  if (!consume_stream(in, sink, health, &inner)) {
    if (error != nullptr) *error = path + ": " + inner;
    return false;
  }
  return true;
}

TraceCsvTail::TraceCsvTail(std::string path) : path_(std::move(path)) {}

bool TraceCsvTail::poll(const std::function<void(const TraceEvent&)>& sink,
                        std::string* error) {
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open trace CSV: " + path_;
    return false;
  }
  // Truncation/rotation detection: a file smaller than what we already
  // consumed, or leading bytes that no longer match the header we parsed,
  // means the writer replaced the file. Restart from offset 0 with fresh
  // parser state instead of tailing a stale offset forever.
  in.seekg(0, std::ios::end);
  std::uint64_t size = static_cast<std::uint64_t>(in.tellg());
  bool restart = size < offset_;
  if (!restart && header_seen_ && size > 0) {
    const std::string header(kHeader);
    std::string lead(
        std::min(header.size(), static_cast<std::size_t>(size)), '\0');
    in.seekg(0);
    in.read(lead.data(), static_cast<std::streamsize>(lead.size()));
    if (header.compare(0, lead.size(), lead) != 0) restart = true;
  }
  if (restart) {
    offset_ = 0;
    pending_.clear();
    lineno_ = 0;
    header_seen_ = false;
    health_ = TraceHealth{};  // the trailer belonged to the replaced file
  }
  in.clear();
  in.seekg(static_cast<std::streamoff>(offset_));
  if (!in) return true;  // racing writer mid-replace; try later
  std::vector<char> buf(kReadChunkBytes);
  EventSink counting = [this, &sink](const TraceEvent& e) {
    ++events_read_;
    sink(e);
  };
  for (;;) {
    in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    std::streamsize got = in.gcount();
    if (got <= 0) break;
    offset_ += static_cast<std::uint64_t>(got);
    std::string inner;
    if (!feed_chunk(buf.data(), static_cast<std::size_t>(got), &pending_,
                    &lineno_, &header_seen_, counting, &health_, &inner)) {
      if (error != nullptr) *error = path_ + ": " + inner;
      return false;
    }
  }
  return true;
}

}  // namespace tls::obs
