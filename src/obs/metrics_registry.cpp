#include "obs/metrics_registry.hpp"

#include <cstdio>
#include <sstream>

namespace tls::obs {

namespace {

/// log2 bucket index: 0 for samples <= 1, else 1 + floor(log2(sample)),
/// clamped to the last bucket. Negative samples clamp to bucket 0.
int bucket_index(std::int64_t sample) {
  if (sample <= 1) return 0;
  int idx = 0;
  std::uint64_t v = static_cast<std::uint64_t>(sample);
  while (v > 1) {
    v >>= 1u;
    ++idx;
  }
  ++idx;  // [2^(i-1), 2^i) lands in bucket i
  if (idx >= Histogram::kBuckets) idx = Histogram::kBuckets - 1;
  return idx;
}

/// Upper edge of bucket i (inclusive bound for quantile reporting).
std::int64_t bucket_upper(int i) {
  if (i <= 0) return 1;
  if (i >= 63) return INT64_MAX;
  return (std::int64_t{1} << i) - 1;
}

/// Fixed-precision decimal rendering so CSV bytes are reproducible.
std::string fmt_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

void Histogram::record(std::int64_t sample) {
  if (sample < 0) sample = 0;
  ++buckets_[bucket_index(sample)];
  if (count_ == 0 || sample < min_) min_ = sample;
  if (sample > max_) max_ = sample;
  ++count_;
  sum_ += sample;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

std::int64_t Histogram::quantile_upper_bound(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based; ceil without float rounding traps.
  std::int64_t rank = static_cast<std::int64_t>(q * static_cast<double>(count_));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      std::int64_t upper = bucket_upper(i);
      return upper > max_ ? max_ : upper;
    }
  }
  return max_;
}

std::int64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::int64_t rank = static_cast<std::int64_t>(q * static_cast<double>(count_));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (seen + buckets_[i] < rank) {
      seen += buckets_[i];
      continue;
    }
    // Interpolate by rank within the containing bucket [lo, hi], with the
    // edges clamped to the observed extremes so a single-sample bucket
    // reports the real range, not the power-of-two envelope.
    std::int64_t lo = i == 0 ? 0 : (std::int64_t{1} << (i - 1));
    std::int64_t hi = bucket_upper(i);
    if (lo < min_) lo = min_;
    if (hi > max_) hi = max_;
    if (hi < lo) hi = lo;
    std::int64_t pos = rank - seen;  // 1..buckets_[i]
    return lo + static_cast<std::int64_t>(static_cast<__int128>(hi - lo) *
                                          pos / buckets_[i]);
  }
  return max_;
}

Counter& Registry::counter(const std::string& name, std::int32_t host,
                           std::int32_t job, std::int32_t band) {
  return counters_[MetricKey{name, host, job, band}];
}

Gauge& Registry::gauge(const std::string& name, std::int32_t host,
                       std::int32_t job, std::int32_t band) {
  return gauges_[MetricKey{name, host, job, band}];
}

Histogram& Registry::histogram(const std::string& name, std::int32_t host,
                               std::int32_t job, std::int32_t band) {
  return histograms_[MetricKey{name, host, job, band}];
}

void Registry::record(sim::Time at, const std::string& name,
                      std::int32_t host, std::int32_t job, std::int32_t band,
                      double value) {
  samples_.push_back(SamplePoint{at, MetricKey{name, host, job, band}, value});
}

std::string Registry::timeseries_csv(sim::Time end) const {
  std::ostringstream os;
  os << "t_ns,metric,kind,host,job,band,value\n";
  auto row = [&os](sim::Time t, const MetricKey& k, const char* kind,
                   const std::string& suffix, const std::string& value) {
    os << t << ',' << k.name << suffix << ',' << kind << ',' << k.host << ','
       << k.job << ',' << k.band << ',' << value << '\n';
  };
  // Timeseries points first, in emission order (already sim-time sorted
  // because sampling happens on the event loop).
  for (const SamplePoint& p : samples_) {
    row(p.at, p.key, "sample", "", fmt_value(p.value));
  }
  for (const auto& [key, c] : counters_) {
    row(end, key, "counter", "", std::to_string(c.value()));
  }
  for (const auto& [key, g] : gauges_) {
    row(end, key, "gauge", "", fmt_value(g.value()));
  }
  for (const auto& [key, h] : histograms_) {
    row(end, key, "hist", ".count", std::to_string(h.count()));
    row(end, key, "hist", ".sum", std::to_string(h.sum()));
    row(end, key, "hist", ".min", std::to_string(h.min()));
    row(end, key, "hist", ".max", std::to_string(h.max()));
    row(end, key, "hist", ".p50", std::to_string(h.quantile(0.5)));
    row(end, key, "hist", ".p95", std::to_string(h.quantile(0.95)));
    row(end, key, "hist", ".p99", std::to_string(h.quantile(0.99)));
  }
  return os.str();
}

}  // namespace tls::obs
