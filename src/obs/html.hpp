// tls::obs — self-contained HTML dashboard for tlsreport output.
//
// report_html() wraps one (or, for an A/B diff, two) "tlsreport-v2" JSON
// documents in a single static HTML page: inline CSS, inline JS, the JSON
// embedded verbatim in <script type="application/json"> blocks — no
// external references of any kind, so the file can be scp'd or attached
// anywhere and opened offline. The page renders
//
//   * per-iteration stacked segment bars (compute / egress_queue /
//     serialization / fan_in / other) per job,
//   * a host x culprit-job x band blame heatmap aggregated over the run,
//   * when a second report is present, an aligned A/B diff view (wait and
//     cross-job blame per iteration, with per-job totals),
//
// plus the capture-health warning banner when the embedded report says the
// tracer dropped events. `tlsreport --follow` rewrites the file as the
// trace grows; options.refresh_seconds adds a <meta> refresh so an open
// browser tab tracks the run live.
#pragma once

#include <string>

namespace tls::obs {

struct HtmlOptions {
  /// Page <title> and heading. Empty uses "tlsreport".
  std::string title;
  /// Run labels shown in the header (and naming the A/B sides of a diff).
  std::string label_a;
  std::string label_b;
  /// When > 0, the page auto-reloads every this-many seconds (live follow
  /// mode); 0 renders a static page.
  int refresh_seconds = 0;
};

/// Renders the dashboard. `json_a` must be a report_json() document;
/// `json_b` is either empty (single-run page) or a second report to diff
/// against. The result is one self-contained HTML document.
std::string report_html(const std::string& json_a, const std::string& json_b,
                        const HtmlOptions& options = {});

}  // namespace tls::obs
