#include "obs/streaming.hpp"

#include <algorithm>
#include <limits>

namespace tls::obs {

namespace {

using detail::ChunkTrace;
using detail::FlowTrace;
using detail::QueueVisit;
using detail::Release;
using detail::Span;

constexpr std::int32_t kI32Min = std::numeric_limits<std::int32_t>::min();

}  // namespace

StreamingAnalyzer::StreamingAnalyzer(StreamingOptions options)
    : options_(options), last_at_(sim::kTimeMin) {}

void StreamingAnalyzer::note_retention(std::ptrdiff_t delta) {
  retained_ = static_cast<std::size_t>(
      static_cast<std::ptrdiff_t>(retained_) + delta);
  if (retained_ > peak_retained_) peak_retained_ = retained_;
  if (options_.retention_budget != 0 &&
      retained_ > options_.retention_budget) {
    budget_exceeded_ = true;
  }
}

void StreamingAnalyzer::ingest(const TraceEvent& e) {
  std::size_t idx = next_idx_++;
  if (e.at < last_at_) {
    out_of_order_ = true;
  } else {
    last_at_ = e.at;
  }
  // Time moved strictly past a completed barrier's last release: every
  // index entry its walk can reference is final now (nondecreasing time).
  if (next_deadline_ < e.at) finalize_ripe(e.at);

  switch (e.kind) {
    case EventKind::kFlowStart: {
      auto [it, inserted] = ix_.flows.try_emplace(e.flow);
      FlowTrace& f = it->second;
      if (inserted) {
        flows_by_job_[e.job].push_back(e.flow);
        note_retention(1);
      }
      f.src = e.host;
      f.dst = static_cast<std::int32_t>(e.a);
      f.job = e.job;
      f.kind = e.band;
      f.iteration = e.b;
      f.start_at = e.at;
      break;
    }
    case EventKind::kFlowEnd: {
      auto [it, inserted] = ix_.flows.try_emplace(e.flow);
      FlowTrace& f = it->second;
      if (inserted) {
        flows_by_job_[e.job].push_back(e.flow);
        note_retention(1);
      }
      if (f.start_at < sim::Time{0}) {  // end without start
        f.src = e.host;
        f.dst = static_cast<std::int32_t>(e.a);
        f.job = e.job;
        f.kind = e.band;
        f.iteration = e.b;
        f.start_at = e.at - e.dur;
      }
      f.end_at = e.at;
      auto [fit, finserted] = ix_.flow_by_end.insert_or_assign(
          std::make_tuple(e.job, e.band, static_cast<std::int32_t>(e.a),
                          e.at),
          e.flow);
      (void)fit;
      if (finserted) note_retention(1);
      break;
    }
    case EventKind::kChunkEnqueue: {
      auto [it, inserted] = ix_.flows.try_emplace(e.flow);
      FlowTrace& f = it->second;
      if (inserted) {
        flows_by_job_[e.job].push_back(e.flow);
        note_retention(1);
      }
      auto [cit, cinserted] = f.chunks.try_emplace(e.b);
      if (cinserted) note_retention(1);
      ChunkTrace& c = cit->second;
      c.enq_at = e.at;
      c.enq_idx = idx;
      c.egress_host = e.host;
      c.band = e.band;
      c.bytes = e.bytes;
      if (idx < f.min_enq_idx) f.min_enq_idx = idx;
      break;
    }
    case EventKind::kChunkDequeue: {
      auto [it, inserted] = ix_.flows.try_emplace(e.flow);
      FlowTrace& f = it->second;
      if (inserted) {
        flows_by_job_[e.job].push_back(e.flow);
        note_retention(1);
      }
      auto [cit, cinserted] = f.chunks.try_emplace(e.b);
      if (cinserted) note_retention(1);
      ChunkTrace& c = cit->second;
      c.deq_at = e.at;
      c.deq_idx = idx;
      c.egress_host = e.host;
      c.band = e.band;
      c.bytes = e.bytes;
      deq_by_host_[e.host].push_back(
          PortRec{idx, e.flow, e.job, e.band, e.bytes});
      note_retention(1);
      break;
    }
    case EventKind::kIngressArrive: {
      auto [it, inserted] = ix_.flows.try_emplace(e.flow);
      FlowTrace& f = it->second;
      if (inserted) {
        flows_by_job_[e.job].push_back(e.flow);
        note_retention(1);
      }
      auto [cit, cinserted] = f.chunks.try_emplace(e.b);
      if (cinserted) note_retention(1);
      cit->second.arr_at = e.at;
      cit->second.arr_idx = idx;
      if (idx < f.min_arr_idx) f.min_arr_idx = idx;
      break;
    }
    case EventKind::kIngressDeliver: {
      auto [it, inserted] = ix_.flows.try_emplace(e.flow);
      FlowTrace& f = it->second;
      if (inserted) {
        flows_by_job_[e.job].push_back(e.flow);
        note_retention(1);
      }
      auto [cit, cinserted] = f.chunks.try_emplace(e.b);
      if (cinserted) note_retention(1);
      ChunkTrace& c = cit->second;
      c.del_at = e.at;
      c.del_idx = idx;
      c.del_wait = sim::from_nanos(e.a);
      c.ingress_host = e.host;
      f.index_by_deliver[e.at] = e.b;
      del_by_host_[e.host].push_back(
          PortRec{idx, e.flow, e.job, e.band, e.bytes});
      note_retention(1);
      break;
    }
    case EventKind::kWorkerCompute: {
      ix_.worker_host[{e.job, static_cast<std::int32_t>(e.a)}] = e.host;
      auto [it, inserted] = ix_.compute_by_end.insert_or_assign(
          std::make_tuple(e.job, e.host, e.at + e.dur),
          Span{e.at, e.at + e.dur, static_cast<std::int32_t>(e.a)});
      (void)it;
      if (inserted) note_retention(1);
      break;
    }
    case EventKind::kPsAggregate: {
      auto [it, inserted] = ix_.agg_by_end.insert_or_assign(
          std::make_tuple(e.job, e.host, e.at + e.dur),
          Span{e.at, e.at + e.dur, static_cast<std::int32_t>(e.a)});
      (void)it;
      if (inserted) note_retention(1);
      break;
    }
    case EventKind::kBarrierEnter: {
      if (e.b < 0) break;  // non-barrier span; batch never reports these
      auto [it, inserted] = enters_.try_emplace({e.job, e.b}, 0);
      if (inserted) note_retention(1);
      ++it->second;
      break;
    }
    case EventKind::kBarrierRelease: {
      if (e.b < 0) break;  // batch skips iteration < 0 identically
      std::pair<std::int32_t, std::int64_t> key{e.job, e.b};
      std::vector<Release>& rels = ix_.releases[key];
      rels.push_back(Release{e.at, e.dur, static_cast<std::int32_t>(e.a)});
      note_retention(1);
      auto en = enters_.find(key);
      if (en != enters_.end() &&
          static_cast<std::int64_t>(rels.size()) >= en->second) {
        // All expected workers released; arm finalization for the first
        // event past the last release instant.
        ripe_[key] = e.at;
        next_deadline_ = std::min(next_deadline_, e.at);
      }
      break;
    }
    default:
      break;
  }
}

void StreamingAnalyzer::finalize_ripe(sim::Time now) {
  // Collect first (finalize mutates ripe_); map order keeps this
  // deterministic, and order does not affect output (finish() sorts).
  std::vector<std::pair<std::int32_t, std::int64_t>> ready;
  for (const auto& [key, deadline] : ripe_) {
    if (deadline < now) ready.push_back(key);
  }
  for (const auto& key : ready) {
    ripe_.erase(key);
    finalize(key.first, key.second);
  }
  next_deadline_ = sim::kTimeMax;
  for (const auto& [key, deadline] : ripe_) {
    (void)key;
    next_deadline_ = std::min(next_deadline_, deadline);
  }
}

void StreamingAnalyzer::finalize(std::int32_t job, std::int64_t iteration) {
  auto rit = ix_.releases.find({job, iteration});
  if (rit == ix_.releases.end() || rit->second.empty()) return;

  std::vector<QueueVisit> visits;
  IterationReport r =
      detail::build_iteration(ix_, job, iteration, rit->second, visits);

  // Blame pass over the retained per-host port records: the same
  // exclusive (begin_idx, end_idx) log windows the batch engine scans —
  // dequeues for egress visits, deliveries for ingress visits.
  std::map<detail::BlameKey, std::int64_t> blame;
  for (const QueueVisit& v : visits) {
    const auto& lane =
        v.side == BlameSide::kEgress ? deq_by_host_ : del_by_host_;
    auto dit = lane.find(v.host);
    if (dit == lane.end()) continue;
    const std::deque<PortRec>& dq = dit->second;
    auto lo = std::upper_bound(
        dq.begin(), dq.end(), v.begin_idx,
        [](std::size_t idx, const PortRec& rec) { return idx < rec.idx; });
    auto hi = std::lower_bound(
        dq.begin(), dq.end(), v.end_idx,
        [](const PortRec& rec, std::size_t idx) { return rec.idx < idx; });
    for (auto it = lo; it != hi; ++it) {
      if (it->flow == v.victim_flow) continue;  // own pipeline, not blame
      blame[{static_cast<std::uint8_t>(v.side), v.host, it->job,
             it->band}] += it->bytes;
    }
  }
  detail::emit_blame(blame, r);

  detail::fold_into_summary(jobs_[job], r);

  // Retire. Watermark: min release time of this iteration. Any later
  // iteration's window starts at enter >= its worker's previous release
  // >= this minimum, so index entries keyed strictly below it can never
  // be referenced again (see header contract).
  sim::Time watermark = rit->second.front().at;
  for (const Release& rel : rit->second) {
    watermark = std::min(watermark, rel.at);
  }
  note_retention(-static_cast<std::ptrdiff_t>(rit->second.size()));
  ix_.releases.erase(rit);
  auto en = enters_.find({job, iteration});
  if (en != enters_.end()) {
    enters_.erase(en);
    note_retention(-1);
  }

  auto wit = watermark_.find(job);
  if (wit == watermark_.end()) {
    watermark_[job] = watermark;
  } else {
    wit->second = std::max(wit->second, watermark);
  }
  prune_job(job, watermark_[job]);

  // Background traffic (job < 0) never finalizes an iteration of its own;
  // it retires under the most conservative per-job watermark.
  if (!watermark_.empty()) {
    sim::Time global = watermark_.begin()->second;
    for (const auto& [j, w] : watermark_) {
      (void)j;
      global = std::min(global, w);
    }
    for (const auto& [j, flows] : flows_by_job_) {
      (void)flows;
      if (j < 0) prune_job(j, global);
    }
  }
  prune_port_records();

  finalized_.push_back(std::move(r));
}

void StreamingAnalyzer::prune_job(std::int32_t job, sim::Time watermark) {
  // Ended flows strictly below the watermark (in-flight flows must stay:
  // a later flow_end would otherwise rebuild them without their chunks).
  auto fj = flows_by_job_.find(job);
  if (fj != flows_by_job_.end()) {
    std::vector<std::int64_t>& ids = fj->second;
    std::size_t kept = 0;
    for (std::int64_t id : ids) {
      auto it = ix_.flows.find(id);
      if (it == ix_.flows.end()) continue;
      const FlowTrace& f = it->second;
      if (f.end_at >= sim::Time{0} && f.end_at < watermark) {
        note_retention(-static_cast<std::ptrdiff_t>(1 + f.chunks.size()));
        ix_.flows.erase(it);
      } else {
        ids[kept++] = id;
      }
    }
    ids.resize(kept);
  }

  auto prune_range = [this](auto& m, auto first_key, std::int32_t j,
                            sim::Time w, auto time_of) {
    auto it = m.lower_bound(first_key);
    while (it != m.end() && std::get<0>(it->first) == j) {
      if (time_of(it->first) < w) {
        it = m.erase(it);
        note_retention(-1);
      } else {
        ++it;
      }
    }
  };
  prune_range(ix_.flow_by_end,
              std::make_tuple(job, kI32Min, kI32Min, sim::kTimeMin), job,
              watermark,
              [](const auto& k) { return std::get<3>(k); });
  prune_range(ix_.compute_by_end,
              std::make_tuple(job, kI32Min, sim::kTimeMin), job, watermark,
              [](const auto& k) { return std::get<2>(k); });
  prune_range(ix_.agg_by_end, std::make_tuple(job, kI32Min, sim::kTimeMin),
              job, watermark,
              [](const auto& k) { return std::get<2>(k); });
}

void StreamingAnalyzer::prune_port_records() {
  // Every future egress blame window (enq_idx, deq_idx) comes from a
  // chunk of a still-live flow, so the minimum enqueue index across live
  // flows bounds all of them from below; the ingress lane's windows
  // (arr_idx, del_idx) are bounded by the minimum arrival index the same
  // way. Each lane prunes under its own floor, keeping the per-host
  // delivery records live exactly until the last window that could
  // reference them has finalized.
  std::size_t enq_floor = next_idx_;
  std::size_t arr_floor = next_idx_;
  for (const auto& [id, f] : ix_.flows) {
    (void)id;
    if (f.min_enq_idx < enq_floor) enq_floor = f.min_enq_idx;
    if (f.min_arr_idx < arr_floor) arr_floor = f.min_arr_idx;
  }
  auto prune_lane = [this](std::map<std::int32_t, std::deque<PortRec>>& lane,
                           std::size_t floor_idx) {
    for (auto& [host, dq] : lane) {
      (void)host;
      while (!dq.empty() && dq.front().idx < floor_idx) {
        dq.pop_front();
        note_retention(-1);
      }
    }
  };
  prune_lane(deq_by_host_, enq_floor);
  prune_lane(del_by_host_, arr_floor);
}

RunReport StreamingAnalyzer::snapshot() const {
  RunReport report;
  report.iterations = finalized_;
  std::sort(report.iterations.begin(), report.iterations.end(),
            [](const IterationReport& a, const IterationReport& b) {
              if (a.job != b.job) return a.job < b.job;
              return a.iteration < b.iteration;
            });
  for (const auto& [job, js] : jobs_) {
    (void)job;
    report.jobs.push_back(js);
  }
  report.health = health_;
  return report;
}

RunReport StreamingAnalyzer::finish() {
  if (!finished_) {
    finished_ = true;
    // Armed iterations first, then stragglers whose enters were filtered
    // out (or whose barrier never completed) — exactly the set the batch
    // engine reports.
    std::vector<std::pair<std::int32_t, std::int64_t>> pending;
    for (const auto& [key, deadline] : ripe_) {
      (void)deadline;
      pending.push_back(key);
    }
    ripe_.clear();
    for (const auto& [key, rels] : ix_.releases) {
      (void)rels;
      if (std::find(pending.begin(), pending.end(), key) == pending.end()) {
        pending.push_back(key);
      }
    }
    std::sort(pending.begin(), pending.end());
    for (const auto& key : pending) finalize(key.first, key.second);
  }
  return snapshot();
}

RunReport analyze_streaming(const std::vector<TraceEvent>& events) {
  StreamingAnalyzer analyzer;
  for (const TraceEvent& e : events) analyzer.ingest(e);
  return analyzer.finish();
}

}  // namespace tls::obs
