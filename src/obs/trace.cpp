#include "obs/trace.hpp"

#include <cstdlib>

#include "obs/metrics_registry.hpp"

namespace tls::obs {

namespace {

struct CatName {
  Cat cat;
  const char* name;
};

// Ordered to match the Cat bit layout; also the canonical listing order in
// error messages and docs.
constexpr CatName kCatNames[] = {
    {Cat::kChunk, "chunk"},        {Cat::kQdisc, "qdisc"},
    {Cat::kHtb, "htb"},            {Cat::kRotation, "rotation"},
    {Cat::kBarrier, "barrier"},    {Cat::kStraggler, "straggler"},
    {Cat::kSample, "sample"},      {Cat::kFlow, "flow"},
    {Cat::kIngress, "ingress"},    {Cat::kCompute, "compute"},
};

/// Canonical comma-separated listing of every category name, embedded in
/// both parse_categories' and parse_sampling's unknown-name diagnostics so
/// the two flags never drift apart.
std::string known_categories() {
  std::string known;
  for (const CatName& cn : kCatNames) {
    if (!known.empty()) known += ",";
    known += cn.name;
  }
  return known;
}

}  // namespace

int cat_index(Cat cat) {
  std::uint32_t bits = static_cast<std::uint32_t>(cat);
  for (int i = 0; i < kNumCats; ++i) {
    if (bits == (1u << i)) return i;
  }
  return kNumCats - 1;
}

const char* to_string(Cat cat) {
  for (const CatName& cn : kCatNames) {
    if (cn.cat == cat) return cn.name;
  }
  return "?";
}

bool parse_categories(const std::string& text, std::uint32_t* mask,
                      std::string* error) {
  std::uint32_t out = 0;
  std::size_t start = 0;
  bool saw_token = false;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    std::size_t end = comma == std::string::npos ? text.size() : comma;
    std::string tok = text.substr(start, end - start);
    // Trim surrounding spaces.
    while (!tok.empty() && tok.front() == ' ') tok.erase(tok.begin());
    while (!tok.empty() && tok.back() == ' ') tok.pop_back();
    if (!tok.empty()) {
      saw_token = true;
      if (tok == "all") {
        out |= kAllCats;
      } else if (tok == "none") {
        // Explicitly contributes no bits; lets "--trace-filter none" mean
        // "trace file requested but empty" for overhead measurement.
      } else {
        bool found = false;
        for (const CatName& cn : kCatNames) {
          if (tok == cn.name) {
            out |= static_cast<std::uint32_t>(cn.cat);
            found = true;
            break;
          }
        }
        if (!found) {
          if (error != nullptr) {
            *error = "unknown trace category '" + tok +
                     "' (expected all, none, or a comma list of " +
                     known_categories() + ")";
          }
          return false;
        }
      }
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (!saw_token) {
    if (error != nullptr) *error = "empty trace category filter";
    return false;
  }
  *mask = out;
  return true;
}

bool parse_sampling(const std::string& text, std::uint32_t* out,
                    std::string* error) {
  std::size_t start = 0;
  bool saw_token = false;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    std::size_t end = comma == std::string::npos ? text.size() : comma;
    std::string tok = text.substr(start, end - start);
    while (!tok.empty() && tok.front() == ' ') tok.erase(tok.begin());
    while (!tok.empty() && tok.back() == ' ') tok.pop_back();
    if (!tok.empty()) {
      saw_token = true;
      std::size_t eq = tok.find('=');
      std::string name = eq == std::string::npos ? tok : tok.substr(0, eq);
      std::string val = eq == std::string::npos ? "" : tok.substr(eq + 1);
      const CatName* match = nullptr;
      for (const CatName& cn : kCatNames) {
        if (name == cn.name) {
          match = &cn;
          break;
        }
      }
      long n = val.empty() ? 0 : std::strtol(val.c_str(), nullptr, 10);
      if (match == nullptr || n <= 0) {
        if (error != nullptr) {
          *error = "bad sampling term '" + tok +
                   "' (expected a comma list of cat=N with N >= 1 and cat "
                   "one of " +
                   known_categories() + ", e.g. qdisc=16,htb=8)";
        }
        return false;
      }
      out[cat_index(match->cat)] = static_cast<std::uint32_t>(n);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (!saw_token) {
    if (error != nullptr) *error = "empty sampling spec";
    return false;
  }
  return true;
}

void Tracer::set_sample_every(Cat cat, std::uint32_t n, bool force) {
  if (n == 0) n = 1;
  std::uint32_t bit = static_cast<std::uint32_t>(cat);
  if (!force && (bit & kAnalysisCats) != 0) n = 1;  // keep the critical chain
  sample_every_[cat_index(cat)] = n;
}

void Tracer::push(const TraceEvent& e) {
  int ci = cat_index(e.cat);
  std::uint32_t every = sample_every_[ci];
  if (every > 1 && (sample_seen_[ci]++ % every) != 0) {
    ++health_.sampled_out_total;
    ++health_.sampled_out_by_cat[ci];
    return;
  }
  if (max_events_ != 0 && events_.size() >= max_events_) {
    ++health_.dropped_total;
    ++health_.dropped_by_cat[ci];
    return;
  }
  events_.push_back(e);
}

void Tracer::chunk_enqueue(sim::Time at, net::HostId host, std::int32_t job,
                           net::BandId band, std::int64_t flow,
                           std::int64_t index, net::Bytes bytes) {
  if (registry_ != nullptr) {
    registry_->counter("chunks_enqueued", host.idx(), -1, band.idx()).add(1);
  }
  if (!enabled(Cat::kChunk)) return;
  TraceEvent e;
  e.at = at;
  e.kind = EventKind::kChunkEnqueue;
  e.cat = Cat::kChunk;
  e.host = host.idx();
  e.job = job;
  e.band = band.idx();
  e.flow = flow;
  e.bytes = bytes.raw();
  e.b = index;
  push(e);
}

void Tracer::chunk_dequeue(sim::Time at, net::HostId host, std::int32_t job,
                           net::BandId band, std::int64_t flow,
                           std::int64_t index, net::Bytes bytes,
                           sim::Time queue_wait) {
  if (registry_ != nullptr) {
    registry_->counter("bytes_drained", host.idx(), -1, band.idx())
        .add(bytes.raw());
    registry_->histogram("queue_wait_ns", host.idx(), -1, band.idx())
        .record(sim::to_nanos(queue_wait));
  }
  if (!enabled(Cat::kChunk)) return;
  TraceEvent e;
  e.at = at;
  e.kind = EventKind::kChunkDequeue;
  e.cat = Cat::kChunk;
  e.host = host.idx();
  e.job = job;
  e.band = band.idx();
  e.flow = flow;
  e.bytes = bytes.raw();
  e.a = sim::to_nanos(queue_wait);
  e.b = index;
  push(e);
}

void Tracer::band_service(sim::Time at, net::HostId host, net::BandId band,
                          net::Bytes bytes) {
  if (registry_ != nullptr) {
    registry_->counter("band_services", host.idx(), -1, band.idx()).add(1);
  }
  if (!enabled(Cat::kQdisc)) return;
  TraceEvent e;
  e.at = at;
  e.kind = EventKind::kBandService;
  e.cat = Cat::kQdisc;
  e.host = host.idx();
  e.band = band.idx();
  e.bytes = bytes.raw();
  push(e);
}

void Tracer::htb_send(sim::Time at, net::HostId host, net::BandId band,
                      net::Bytes bytes, bool borrowed) {
  if (registry_ != nullptr) {
    registry_->counter(borrowed ? "htb_yellow_bytes" : "htb_green_bytes",
                       host.idx(), -1, band.idx())
        .add(bytes.raw());
  }
  if (!enabled(Cat::kHtb)) return;
  TraceEvent e;
  e.at = at;
  e.kind = borrowed ? EventKind::kHtbYellow : EventKind::kHtbGreen;
  e.cat = Cat::kHtb;
  e.host = host.idx();
  e.band = band.idx();
  e.bytes = bytes.raw();
  push(e);
}

void Tracer::overlimit(sim::Time at, net::HostId host, sim::Time retry_at) {
  if (registry_ != nullptr) {
    registry_->counter("overlimits", host.idx(), -1, -1).add(1);
    registry_->histogram("overlimit_stall_ns", host.idx(), -1, -1)
        .record(sim::to_nanos(retry_at > at ? retry_at - at : sim::Time{0}));
  }
  if (!enabled(Cat::kHtb)) return;
  TraceEvent e;
  e.at = at;
  e.kind = EventKind::kOverlimit;
  e.cat = Cat::kHtb;
  e.host = host.idx();
  e.a = sim::to_nanos(retry_at);
  push(e);
}

void Tracer::rotation(sim::Time at, std::int64_t offset) {
  if (registry_ != nullptr) {
    registry_->counter("rotations", -1, -1, -1).add(1);
  }
  if (!enabled(Cat::kRotation)) return;
  TraceEvent e;
  e.at = at;
  e.kind = EventKind::kRotation;
  e.cat = Cat::kRotation;
  e.a = offset;
  push(e);
}

void Tracer::band_assign(sim::Time at, net::HostId host, std::int32_t job,
                         net::BandId band) {
  if (registry_ != nullptr) {
    registry_->counter("band_assigns", host.idx(), job, band.idx()).add(1);
  }
  if (!enabled(Cat::kRotation)) return;
  TraceEvent e;
  e.at = at;
  e.kind = EventKind::kBandAssign;
  e.cat = Cat::kRotation;
  e.host = host.idx();
  e.job = job;
  e.band = band.idx();
  push(e);
}

void Tracer::barrier_enter(sim::Time at, std::int32_t job,
                           std::int32_t worker, std::int64_t iteration) {
  if (!enabled(Cat::kBarrier)) return;
  TraceEvent e;
  e.at = at;
  e.kind = EventKind::kBarrierEnter;
  e.cat = Cat::kBarrier;
  e.job = job;
  e.a = worker;
  e.b = iteration;
  push(e);
}

void Tracer::barrier_release(sim::Time at, std::int32_t job,
                             std::int32_t worker, std::int64_t iteration,
                             sim::Time wait) {
  if (registry_ != nullptr) {
    registry_->histogram("barrier_wait_ns", -1, job, -1)
        .record(sim::to_nanos(wait));
  }
  if (!enabled(Cat::kBarrier)) return;
  TraceEvent e;
  e.at = at;
  e.kind = EventKind::kBarrierRelease;
  e.cat = Cat::kBarrier;
  e.job = job;
  e.a = worker;
  e.b = iteration;
  e.dur = wait;
  push(e);
}

void Tracer::flow_start(sim::Time at, net::HostId src, net::HostId dst,
                        std::int32_t job, std::int32_t kind_ordinal,
                        std::int64_t flow, net::Bytes bytes,
                        std::int64_t iteration) {
  if (registry_ != nullptr) {
    registry_->counter("flows_started", src.idx(), job, -1).add(1);
  }
  if (!enabled(Cat::kFlow)) return;
  TraceEvent e;
  e.at = at;
  e.kind = EventKind::kFlowStart;
  e.cat = Cat::kFlow;
  e.host = src.idx();
  e.job = job;
  e.band = kind_ordinal;
  e.flow = flow;
  e.bytes = bytes.raw();
  e.a = dst.idx();
  e.b = iteration;
  push(e);
}

void Tracer::flow_end(sim::Time at, net::HostId src, net::HostId dst,
                      std::int32_t job, std::int32_t kind_ordinal,
                      std::int64_t flow, net::Bytes bytes,
                      std::int64_t iteration, sim::Time elapsed) {
  if (registry_ != nullptr) {
    registry_->counter("flows_completed", src.idx(), job, -1).add(1);
    registry_->histogram("flow_completion_ns", src.idx(), job, -1)
        .record(sim::to_nanos(elapsed));
  }
  if (!enabled(Cat::kFlow)) return;
  TraceEvent e;
  e.at = at;
  e.kind = EventKind::kFlowEnd;
  e.cat = Cat::kFlow;
  e.host = src.idx();
  e.job = job;
  e.band = kind_ordinal;
  e.flow = flow;
  e.bytes = bytes.raw();
  e.a = dst.idx();
  e.b = iteration;
  e.dur = elapsed;
  push(e);
}

void Tracer::ingress_arrive(sim::Time at, net::HostId host, std::int32_t job,
                            net::BandId band, std::int64_t flow,
                            std::int64_t index, net::Bytes bytes) {
  if (!enabled(Cat::kIngress)) return;
  TraceEvent e;
  e.at = at;
  e.kind = EventKind::kIngressArrive;
  e.cat = Cat::kIngress;
  e.host = host.idx();
  e.job = job;
  e.band = band.idx();
  e.flow = flow;
  e.bytes = bytes.raw();
  e.b = index;
  push(e);
}

void Tracer::ingress_deliver(sim::Time at, net::HostId host, std::int32_t job,
                             net::BandId band, std::int64_t flow,
                             std::int64_t index, net::Bytes bytes,
                             sim::Time wait, sim::Time residence) {
  if (registry_ != nullptr) {
    registry_->histogram("ingress_wait_ns", host.idx(), -1, -1)
        .record(sim::to_nanos(wait));
  }
  if (!enabled(Cat::kIngress)) return;
  TraceEvent e;
  e.at = at;
  e.kind = EventKind::kIngressDeliver;
  e.cat = Cat::kIngress;
  e.host = host.idx();
  e.job = job;
  e.band = band.idx();
  e.flow = flow;
  e.bytes = bytes.raw();
  e.a = sim::to_nanos(wait);
  e.b = index;
  e.dur = residence;
  push(e);
}

void Tracer::worker_compute(sim::Time at, net::HostId host, std::int32_t job,
                            std::int32_t worker, std::int64_t iteration,
                            sim::Time duration) {
  if (registry_ != nullptr) {
    registry_->histogram("worker_compute_ns", host.idx(), job, -1)
        .record(sim::to_nanos(duration));
  }
  if (!enabled(Cat::kCompute)) return;
  TraceEvent e;
  e.at = at;
  e.kind = EventKind::kWorkerCompute;
  e.cat = Cat::kCompute;
  e.host = host.idx();
  e.job = job;
  e.a = worker;
  e.b = iteration;
  e.dur = duration;
  push(e);
}

void Tracer::ps_aggregate(sim::Time at, net::HostId host, std::int32_t job,
                          std::int32_t shard, std::int64_t iteration,
                          sim::Time duration) {
  if (registry_ != nullptr) {
    registry_->histogram("ps_aggregate_ns", host.idx(), job, -1)
        .record(sim::to_nanos(duration));
  }
  if (!enabled(Cat::kCompute)) return;
  TraceEvent e;
  e.at = at;
  e.kind = EventKind::kPsAggregate;
  e.cat = Cat::kCompute;
  e.host = host.idx();
  e.job = job;
  e.a = shard;
  e.b = iteration;
  e.dur = duration;
  push(e);
}

void Tracer::straggler_lag(sim::Time at, std::int32_t job,
                           std::int64_t iteration, sim::Time lag) {
  if (registry_ != nullptr) {
    registry_->histogram("straggler_lag_ns", -1, job, -1)
        .record(sim::to_nanos(lag));
  }
  if (!enabled(Cat::kStraggler)) return;
  TraceEvent e;
  e.at = at;
  e.kind = EventKind::kStragglerLag;
  e.cat = Cat::kStraggler;
  e.job = job;
  e.a = iteration;
  e.b = sim::to_nanos(lag);
  push(e);
}

void Tracer::gauge_sample(sim::Time at, const std::string& name,
                          net::HostId host, std::int32_t job, double value) {
  if (registry_ != nullptr) {
    registry_->gauge(name, host.idx(), job, -1).set(value);
    registry_->record(at, name, host.idx(), job, -1, value);
  }
  if (!enabled(Cat::kSample)) return;
  TraceEvent e;
  e.at = at;
  e.kind = EventKind::kGaugeSample;
  e.cat = Cat::kSample;
  e.host = host.idx();
  e.job = job;
  // The sampled value, truncated; the registry keeps full precision.
  e.a = static_cast<std::int64_t>(value);
  push(e);
}

std::string per_run_path(const std::string& base, const std::string& label) {
  if (base.empty() || label.empty()) return base;
  std::string safe = label;
  for (char& c : safe) {
    if (c == '/' || c == '\\' || c == ' ') c = '-';
  }
  std::size_t slash = base.find_last_of('/');
  std::size_t dot = base.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return base + "." + safe;
  }
  return base.substr(0, dot) + "." + safe + base.substr(dot);
}

}  // namespace tls::obs
