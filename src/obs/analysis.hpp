// tls::obs::analysis — post-hoc straggler root-cause attribution.
//
// Consumes a simulation's trace event stream (in-memory Tracer or a trace
// CSV re-read through obs/reader.hpp) and reconstructs, per job per
// synchronous iteration:
//
//   (a) the critical path of the barrier: starting from the worker with
//       the largest barrier wait, the backward causal chain
//         barrier release <- critical model-update flow <- PS aggregation
//         <- last gradient flow <- straggler compute <- (previous
//         iteration's model flow ...)
//       decomposed into contiguous integer-ns segments — compute (worker
//       step + PS aggregation), host-egress queueing, serialization
//       (wire + switch), receiver fan-in (ingress queue + receive
//       serialization), and `other` (coordination gaps, e.g. transmission
//       gate waits). Segments partition [barrier enter, barrier release]
//       exactly: their lengths always sum to the barrier wait.
//
//   (b) a two-sided contention blame matrix: for every egress-queueing
//       segment on the critical path, the bytes each competing (job, band)
//       drained ahead of the blamed chunk at that host ("egress" side), and
//       for every fan-in segment, the bytes sibling flows got delivered
//       ahead of the critical chunk at the receiving host ("ingress" side).
//       "Ahead" is log-order: a chunk_dequeue (resp. ingress_deliver) event
//       positioned after the blamed chunk's enqueue (resp. arrival) and
//       before its dequeue (resp. delivery) in the trace. The chunk already
//       in service when the victim arrived was dequeued (delivered) earlier
//       in the log, so the non-preempted in-service chunk is naturally
//       excluded on both sides.
//
//   (c) policy diff reports: two runs of the same scenario under
//       different disciplines (e.g. FIFO vs TLs-One), aligned per
//       (job, iteration), certifying whether priority bands removed the
//       queueing-behind-other-jobs blame for the prioritized job.
//
// Everything is integer arithmetic on trace timestamps, iterated in
// deterministic (std::map / log) order, and rendered with fixed integer
// formatting — reports are byte-identical across repeated seeded runs and
// serial-vs-parallel RunSets (the golden-report test pins this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace tls::obs {

/// What a critical-path segment's time was spent on.
enum class SegmentKind : std::uint8_t {
  kCompute = 0,        ///< worker step or PS aggregation span
  kEgressQueue = 1,    ///< queued in a host egress qdisc
  kSerialization = 2,  ///< on the wire + switch traversal
  kFanIn = 3,          ///< destination ingress queue + receive serialization
  kOther = 4,          ///< coordination gaps (gate waits, unattributed)
};

/// Stable lower-snake name ("compute", "egress_queue", ...).
const char* to_string(SegmentKind kind);

/// One contiguous slice of a barrier's critical path. Segments are emitted
/// in increasing time order and tile [enter, release] with no gaps.
struct PathSegment {
  SegmentKind kind = SegmentKind::kOther;
  sim::Time begin{};
  sim::Time end{};
  /// Host where the time accrued (-1 when not host-specific).
  std::int32_t host = -1;
  /// Flow the segment belongs to (0 for compute/other segments).
  std::int64_t flow = 0;
  /// kFanIn only: instant where the ingress-queue wait ended and receive
  /// serialization began, clamped into [begin, end]. -1 for other kinds.
  sim::Time fan_in_wait_end{-1};
};

/// Which port of the fabric a blame cell was measured at.
enum class BlameSide : std::uint8_t {
  kEgress = 0,   ///< sender's egress qdisc (chunk_dequeue window)
  kIngress = 1,  ///< receiver's ingress port (ingress_deliver window)
};

/// Stable lower-snake name ("egress" / "ingress").
const char* to_string(BlameSide side);

/// Bytes a competing (job, band) moved ahead of the victim job's
/// critical-path chunks at one host — at the sender's egress qdisc
/// (kEgress) or the receiver's ingress port (kIngress).
struct BlameEntry {
  BlameSide side = BlameSide::kEgress;
  std::int32_t host = -1;
  std::int32_t culprit_job = -1;
  std::int32_t culprit_band = -1;
  std::int64_t bytes = 0;
};

/// Attribution for one (job, iteration) barrier.
struct IterationReport {
  std::int32_t job = -1;
  std::int64_t iteration = -1;
  /// Worker with the largest barrier wait; its window is decomposed.
  std::int32_t critical_worker = -1;
  sim::Time enter_at{};
  sim::Time release_at{};
  sim::Time barrier_wait{};
  // Per-kind totals; these five always sum exactly to barrier_wait.
  sim::Time compute_ns{};
  sim::Time egress_queue_ns{};
  sim::Time serialization_ns{};
  sim::Time fan_in_ns{};
  sim::Time other_ns{};
  /// fan_in_ns split at the receiver: ingress-queue wait vs receive
  /// serialization. Always sums exactly to fan_in_ns.
  sim::Time fan_in_wait_ns{};
  sim::Time fan_in_ser_ns{};
  std::vector<PathSegment> segments;  ///< time order, tiling [enter, release]
  std::vector<BlameEntry> blame;      ///< sorted by (side, host, job, band)
};

/// Whole-run rollup for one job.
struct JobSummary {
  std::int32_t job = -1;
  std::int64_t iterations = 0;
  sim::Time total_wait_ns{};
  sim::Time compute_ns{};
  sim::Time egress_queue_ns{};
  sim::Time serialization_ns{};
  sim::Time fan_in_ns{};
  sim::Time other_ns{};
  sim::Time fan_in_wait_ns{};
  sim::Time fan_in_ser_ns{};
  /// Egress-side blame bytes from other jobs vs the job's own traffic.
  std::int64_t cross_job_blame_bytes = 0;
  std::int64_t self_blame_bytes = 0;
  /// Ingress-side (receiver fan-in) blame bytes, split the same way.
  std::int64_t cross_job_ingress_blame_bytes = 0;
  std::int64_t self_ingress_blame_bytes = 0;
};

/// Full attribution report for one run.
struct RunReport {
  std::vector<IterationReport> iterations;  ///< sorted by (job, iteration)
  std::vector<JobSummary> jobs;             ///< sorted by job
  /// Capture completeness of the trace the report was built from. When the
  /// tracer dropped events (max_events cap) the text/JSON renderers emit a
  /// warning — a truncated trace must never pass as a complete one.
  TraceHealth health{};
};

/// Builds the attribution report from a trace event stream. Requires the
/// kAnalysisCats categories (chunk, barrier, flow, ingress, compute); with
/// fewer categories the analysis degrades gracefully — unattributable time
/// lands in the `other` bucket instead of failing.
RunReport analyze(const std::vector<TraceEvent>& events);

/// Human-readable report (per-iteration table + per-job rollup).
std::string report_text(const RunReport& report);
/// Tidy long CSV: one row per segment total and per blame cell.
std::string report_csv(const RunReport& report);
/// JSON document ("tlsreport-v2" schema), integers only.
std::string report_json(const RunReport& report);

/// One aligned (job, iteration) comparison row. A value of -1 for a wait
/// means that run had no such iteration.
struct DiffRow {
  std::int32_t job = -1;
  std::int64_t iteration = -1;
  sim::Time wait_a{-1};
  sim::Time wait_b{-1};
  std::int64_t cross_blame_a = 0;
  std::int64_t cross_blame_b = 0;
  std::int64_t cross_ingress_blame_a = 0;
  std::int64_t cross_ingress_blame_b = 0;
};

/// Per-job totals of the two runs side by side.
struct JobDiff {
  std::int32_t job = -1;
  sim::Time total_wait_a{};
  sim::Time total_wait_b{};
  std::int64_t cross_blame_a = 0;
  std::int64_t cross_blame_b = 0;
  std::int64_t cross_ingress_blame_a = 0;
  std::int64_t cross_ingress_blame_b = 0;
};

/// Aligned comparison of two runs of the same scenario.
struct DiffReport {
  std::string label_a;
  std::string label_b;
  std::vector<DiffRow> rows;   ///< sorted by (job, iteration)
  std::vector<JobDiff> jobs;   ///< sorted by job
};

DiffReport diff_reports(const RunReport& a, const RunReport& b,
                        const std::string& label_a,
                        const std::string& label_b);

std::string diff_text(const DiffReport& diff);
std::string diff_csv(const DiffReport& diff);
std::string diff_json(const DiffReport& diff);

}  // namespace tls::obs
