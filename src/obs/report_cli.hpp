// Command-line core of the `tlsreport` tool, kept in the library so tests
// drive it without spawning processes. The tools/tlsreport.cpp main is a
// two-line trampoline into run_report_cli().
//
// Usage:
//   tlsreport <trace.csv> [--csv PATH] [--json PATH] [--quiet]
//   tlsreport --diff <a.csv> <b.csv> [--label-a NAME] [--label-b NAME]
//             [--csv PATH] [--json PATH] [--quiet]
//
// Analyzes one run's trace CSV (or compares two) and prints the text
// report to `out`; --csv/--json additionally write the machine-readable
// forms. Exit codes: 0 success, 2 usage/input error.
#pragma once

#include <ostream>

namespace tls::obs {

int run_report_cli(int argc, const char* const* argv, std::ostream& out,
                   std::ostream& err);

}  // namespace tls::obs
