// Command-line core of the `tlsreport` tool, kept in the library so tests
// drive it without spawning processes. The tools/tlsreport.cpp main is a
// two-line trampoline into run_report_cli().
//
// Usage:
//   tlsreport <trace.csv> [--csv PATH] [--json PATH] [--html PATH]
//             [--stream] [--quiet]
//   tlsreport --follow <trace.csv> --html PATH [--poll-ms N]
//             [--max-polls N] [--idle-polls N] [--json PATH] [--quiet]
//   tlsreport --diff <a.csv> <b.csv> [--label-a NAME] [--label-b NAME]
//             [--csv PATH] [--json PATH] [--html PATH] [--quiet]
//
// Analyzes one run's trace CSV (or compares two) and prints the text
// report to `out`; --csv/--json/--html additionally write the
// machine-readable and dashboard forms. --stream runs the bounded-memory
// StreamingAnalyzer over the file instead of buffering every event;
// --follow tails a growing trace CSV, re-rendering the --html dashboard as
// new iterations finalize. Exit codes: 0 success, 2 usage/input error.
//
// The library never sleeps or reads wall clocks (determinism lint); the
// pause between --follow polls is injected by the caller through
// ReportCliHooks — tools/tlsreport.cpp passes a real sleeper, tests pass a
// hook that appends trace rows instead.
#pragma once

#include <functional>
#include <ostream>

namespace tls::obs {

struct ReportCliHooks {
  /// Called between --follow polls with the configured poll interval.
  /// Null means polls run back-to-back (tests drive file growth here).
  std::function<void(int poll_ms)> sleep_ms;
};

int run_report_cli(int argc, const char* const* argv, std::ostream& out,
                   std::ostream& err);
int run_report_cli(int argc, const char* const* argv, std::ostream& out,
                   std::ostream& err, const ReportCliHooks& hooks);

}  // namespace tls::obs
