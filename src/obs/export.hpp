// tls::obs — trace/metrics file renderers.
//
// Pure functions from an in-memory Tracer/Registry to file contents; the
// caller (exp::run_experiment, tests) decides where bytes land. Formats:
//
//  * chrome_trace_json(): Chrome trace-event JSON (the `traceEvents` array
//    form), loadable in Perfetto and chrome://tracing. Tracks: one "thread"
//    per host NIC under a "net" process, one per job under a "jobs"
//    process, and a "tensorlights" process for controller activity.
//    Timestamps are simulation nanoseconds rendered as microseconds with
//    three fixed decimals — integer arithmetic only, so output bytes are a
//    pure function of the event list.
//
//  * trace_csv(): the same events in compact long form, one row per event,
//    for ad-hoc grep/pandas work without a JSON parser.
#pragma once

#include <string>

#include "obs/trace.hpp"

namespace tls::obs {

/// Stable lower-case name of an event kind ("chunk_enqueue", ...).
const char* to_string(EventKind kind);

/// Renders the full Chrome trace-event JSON document.
std::string chrome_trace_json(const Tracer& tracer);

/// Renders events as CSV: at_ns,kind,cat,host,job,band,flow,bytes,a,b,dur_ns.
std::string trace_csv(const Tracer& tracer);

}  // namespace tls::obs
