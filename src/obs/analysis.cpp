#include "obs/analysis.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

#include "obs/analysis_detail.hpp"

namespace tls::obs {

namespace {

using detail::Index;
using detail::QueueVisit;
using detail::Release;

Index build_index(const std::vector<TraceEvent>& events) {
  using detail::ChunkTrace;
  using detail::FlowTrace;
  using detail::Span;
  Index ix;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    switch (e.kind) {
      case EventKind::kFlowStart: {
        FlowTrace& f = ix.flows[e.flow];
        f.src = e.host;
        f.dst = static_cast<std::int32_t>(e.a);
        f.job = e.job;
        f.kind = e.band;
        f.iteration = e.b;
        f.start_at = e.at;
        break;
      }
      case EventKind::kFlowEnd: {
        FlowTrace& f = ix.flows[e.flow];
        if (f.start_at < sim::Time{0}) {  // end without start (filtered/truncated)
          f.src = e.host;
          f.dst = static_cast<std::int32_t>(e.a);
          f.job = e.job;
          f.kind = e.band;
          f.iteration = e.b;
          f.start_at = e.at - e.dur;
        }
        f.end_at = e.at;
        ix.flow_by_end[{e.job, e.band, static_cast<std::int32_t>(e.a),
                        e.at}] = e.flow;
        break;
      }
      case EventKind::kChunkEnqueue: {
        ChunkTrace& c = ix.flows[e.flow].chunks[e.b];
        c.enq_at = e.at;
        c.enq_idx = i;
        c.egress_host = e.host;
        c.band = e.band;
        c.bytes = e.bytes;
        break;
      }
      case EventKind::kChunkDequeue: {
        ChunkTrace& c = ix.flows[e.flow].chunks[e.b];
        c.deq_at = e.at;
        c.deq_idx = i;
        c.egress_host = e.host;
        c.band = e.band;
        c.bytes = e.bytes;
        break;
      }
      case EventKind::kIngressArrive: {
        ChunkTrace& c = ix.flows[e.flow].chunks[e.b];
        c.arr_at = e.at;
        c.arr_idx = i;
        break;
      }
      case EventKind::kIngressDeliver: {
        FlowTrace& f = ix.flows[e.flow];
        ChunkTrace& c = f.chunks[e.b];
        c.del_at = e.at;
        c.del_idx = i;
        c.del_wait = sim::from_nanos(e.a);
        c.ingress_host = e.host;
        f.index_by_deliver[e.at] = e.b;
        break;
      }
      case EventKind::kWorkerCompute: {
        ix.worker_host[{e.job, static_cast<std::int32_t>(e.a)}] = e.host;
        ix.compute_by_end[{e.job, e.host, e.at + e.dur}] =
            Span{e.at, e.at + e.dur, static_cast<std::int32_t>(e.a)};
        break;
      }
      case EventKind::kPsAggregate: {
        ix.agg_by_end[{e.job, e.host, e.at + e.dur}] =
            Span{e.at, e.at + e.dur, static_cast<std::int32_t>(e.a)};
        break;
      }
      case EventKind::kBarrierRelease: {
        ix.releases[{e.job, e.b}].push_back(
            Release{e.at, e.dur, static_cast<std::int32_t>(e.a)});
        break;
      }
      default:
        break;
    }
  }
  return ix;
}

}  // namespace

const char* to_string(SegmentKind kind) {
  switch (kind) {
    case SegmentKind::kCompute: return "compute";
    case SegmentKind::kEgressQueue: return "egress_queue";
    case SegmentKind::kSerialization: return "serialization";
    case SegmentKind::kFanIn: return "fan_in";
    case SegmentKind::kOther: return "other";
  }
  return "?";
}

const char* to_string(BlameSide side) {
  return side == BlameSide::kEgress ? "egress" : "ingress";
}

RunReport analyze(const std::vector<TraceEvent>& events) {
  Index ix = build_index(events);
  RunReport report;
  std::map<std::int32_t, JobSummary> jobs;

  for (const auto& [key, rels] : ix.releases) {
    auto [job, iteration] = key;
    if (iteration < 0) continue;
    std::vector<QueueVisit> visits;
    IterationReport r = detail::build_iteration(ix, job, iteration, rels,
                                                visits);

    // Blame pass: log-order window scan per queueing visit. Egress visits
    // look for foreign dequeues at the sender, ingress visits for foreign
    // deliveries at the receiver — the same exclusive-window rule.
    std::map<detail::BlameKey, std::int64_t> blame;
    for (const QueueVisit& v : visits) {
      EventKind want = v.side == BlameSide::kEgress
                           ? EventKind::kChunkDequeue
                           : EventKind::kIngressDeliver;
      for (std::size_t i = v.begin_idx + 1; i < v.end_idx; ++i) {
        const TraceEvent& e = events[i];
        if (e.kind != want) continue;
        if (e.host != v.host) continue;
        if (e.flow == v.victim_flow) continue;  // own pipeline, not blame
        blame[{static_cast<std::uint8_t>(v.side), e.host, e.job, e.band}] +=
            e.bytes;
      }
    }
    detail::emit_blame(blame, r);

    detail::fold_into_summary(jobs[job], r);
    report.iterations.push_back(std::move(r));
  }

  for (const auto& [job, js] : jobs) {
    (void)job;
    report.jobs.push_back(js);
  }
  return report;
}

// ---------------------------------------------------------------------------
// Renderers. Integer formatting only: every value is an int64 rendered with
// operator<<, so byte-identical output is free.

namespace {

/// Integer percentage of part in whole (0 when whole is 0).
std::int64_t pct(sim::Time part, sim::Time whole) {
  return whole > sim::Time{0} ? part * 100 / whole : 0;
}

/// Renders `name=count` pairs for every nonzero per-category counter.
void append_cat_counts(std::ostringstream& os,
                       const std::uint64_t (&by_cat)[kNumCats]) {
  bool first = true;
  for (int i = 0; i < kNumCats; ++i) {
    if (by_cat[i] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << to_string(static_cast<Cat>(1u << i)) << '=' << by_cat[i];
  }
}

void append_iteration_row(std::ostringstream& os, const IterationReport& r) {
  os << "  iter " << r.iteration << " worker " << r.critical_worker
     << ": wait " << r.barrier_wait << " ns = compute " << r.compute_ns
     << " + egress_queue " << r.egress_queue_ns << " + serialization "
     << r.serialization_ns << " + fan_in " << r.fan_in_ns << " (wait "
     << r.fan_in_wait_ns << " + recv " << r.fan_in_ser_ns << ") + other "
     << r.other_ns << "\n";
  for (const BlameEntry& b : r.blame) {
    if (b.side == BlameSide::kEgress) {
      os << "    blame host " << b.host << ": job " << b.culprit_job
         << " band " << b.culprit_band << " drained " << b.bytes
         << " bytes ahead\n";
    } else {
      os << "    ingress blame host " << b.host << ": job " << b.culprit_job
         << " band " << b.culprit_band << " delivered " << b.bytes
         << " bytes ahead\n";
    }
  }
}

}  // namespace

std::string report_text(const RunReport& report) {
  std::ostringstream os;
  os << "tlsreport: per-iteration critical-path attribution\n";
  os << "jobs " << report.jobs.size() << ", iterations "
     << report.iterations.size() << "\n";
  if (report.health.dropped_total > 0) {
    os << "WARNING: trace is incomplete - the tracer dropped "
       << report.health.dropped_total
       << " events at the max-events cap (";
    append_cat_counts(os, report.health.dropped_by_cat);
    os << "); attribution below may be missing time and blame\n";
  }
  if (report.health.sampled_out_total > 0) {
    os << "note: capture sampling excluded "
       << report.health.sampled_out_total << " events (";
    append_cat_counts(os, report.health.sampled_out_by_cat);
    os << "); critical-chain categories are never sampled\n";
  }
  for (const JobSummary& js : report.jobs) {
    os << "\njob " << js.job << " (" << js.iterations << " iterations)\n";
    for (const IterationReport& r : report.iterations) {
      if (r.job == js.job) append_iteration_row(os, r);
    }
    os << "  total wait " << js.total_wait_ns << " ns: compute "
       << js.compute_ns << " (" << pct(js.compute_ns, js.total_wait_ns)
       << "%), egress_queue " << js.egress_queue_ns << " ("
       << pct(js.egress_queue_ns, js.total_wait_ns) << "%), serialization "
       << js.serialization_ns << " ("
       << pct(js.serialization_ns, js.total_wait_ns) << "%), fan_in "
       << js.fan_in_ns << " (" << pct(js.fan_in_ns, js.total_wait_ns)
       << "%), other " << js.other_ns << " ("
       << pct(js.other_ns, js.total_wait_ns) << "%)\n";
    os << "  fan_in split: ingress wait " << js.fan_in_wait_ns
       << " ns, receive " << js.fan_in_ser_ns << " ns\n";
    os << "  blame: cross-job " << js.cross_job_blame_bytes
       << " bytes, self " << js.self_blame_bytes << " bytes\n";
    os << "  ingress blame: cross-job " << js.cross_job_ingress_blame_bytes
       << " bytes, self " << js.self_ingress_blame_bytes << " bytes\n";
  }
  return os.str();
}

std::string report_csv(const RunReport& report) {
  std::ostringstream os;
  os << "job,iteration,critical_worker,record,host,culprit_job,culprit_band,"
        "metric,value\n";
  auto seg_row = [&os](const IterationReport& r, const char* metric,
                       sim::Time v) {
    os << r.job << ',' << r.iteration << ',' << r.critical_worker
       << ",segment,-1,-1,-1," << metric << ',' << v << '\n';
  };
  for (const IterationReport& r : report.iterations) {
    seg_row(r, "barrier_wait_ns", r.barrier_wait);
    seg_row(r, "compute_ns", r.compute_ns);
    seg_row(r, "egress_queue_ns", r.egress_queue_ns);
    seg_row(r, "serialization_ns", r.serialization_ns);
    seg_row(r, "fan_in_ns", r.fan_in_ns);
    seg_row(r, "fan_in_wait_ns", r.fan_in_wait_ns);
    seg_row(r, "fan_in_ser_ns", r.fan_in_ser_ns);
    seg_row(r, "other_ns", r.other_ns);
    for (const BlameEntry& b : r.blame) {
      const bool egress = b.side == BlameSide::kEgress;
      os << r.job << ',' << r.iteration << ',' << r.critical_worker << ','
         << (egress ? "blame" : "ingress_blame") << ',' << b.host << ','
         << b.culprit_job << ',' << b.culprit_band << ','
         << (egress ? "blame_bytes" : "ingress_blame_bytes") << ','
         << b.bytes << '\n';
    }
  }
  return os.str();
}

namespace {

/// JSON object of nonzero per-category counters ({"chunk":12,...}).
void append_cat_counts_json(std::ostringstream& os,
                            const std::uint64_t (&by_cat)[kNumCats]) {
  os << '{';
  bool first = true;
  for (int i = 0; i < kNumCats; ++i) {
    if (by_cat[i] == 0) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << to_string(static_cast<Cat>(1u << i)) << "\":" << by_cat[i];
  }
  os << '}';
}

}  // namespace

std::string report_json(const RunReport& report) {
  std::ostringstream os;
  os << "{\"schema\":\"tlsreport-v2\",";
  // Only an incomplete capture carries a health object, so reports from
  // complete traces keep their historical bytes (golden-report contract).
  if (report.health.dropped_total > 0 ||
      report.health.sampled_out_total > 0) {
    os << "\"trace_health\":{\"dropped_total\":"
       << report.health.dropped_total
       << ",\"sampled_out_total\":" << report.health.sampled_out_total
       << ",\"dropped_by_cat\":";
    append_cat_counts_json(os, report.health.dropped_by_cat);
    os << ",\"sampled_out_by_cat\":";
    append_cat_counts_json(os, report.health.sampled_out_by_cat);
    os << "},";
  }
  os << "\"jobs\":[";
  bool first_job = true;
  for (const JobSummary& js : report.jobs) {
    if (!first_job) os << ',';
    first_job = false;
    os << "{\"job\":" << js.job << ",\"iterations\":" << js.iterations
       << ",\"total_wait_ns\":" << js.total_wait_ns
       << ",\"compute_ns\":" << js.compute_ns
       << ",\"egress_queue_ns\":" << js.egress_queue_ns
       << ",\"serialization_ns\":" << js.serialization_ns
       << ",\"fan_in_ns\":" << js.fan_in_ns
       << ",\"other_ns\":" << js.other_ns
       << ",\"fan_in_wait_ns\":" << js.fan_in_wait_ns
       << ",\"fan_in_ser_ns\":" << js.fan_in_ser_ns
       << ",\"cross_job_blame_bytes\":" << js.cross_job_blame_bytes
       << ",\"self_blame_bytes\":" << js.self_blame_bytes
       << ",\"cross_job_ingress_blame_bytes\":"
       << js.cross_job_ingress_blame_bytes
       << ",\"self_ingress_blame_bytes\":" << js.self_ingress_blame_bytes
       << ",\"per_iteration\":[";
    bool first_iter = true;
    for (const IterationReport& r : report.iterations) {
      if (r.job != js.job) continue;
      if (!first_iter) os << ',';
      first_iter = false;
      os << "{\"iteration\":" << r.iteration
         << ",\"critical_worker\":" << r.critical_worker
         << ",\"enter_ns\":" << r.enter_at
         << ",\"release_ns\":" << r.release_at
         << ",\"wait_ns\":" << r.barrier_wait
         << ",\"compute_ns\":" << r.compute_ns
         << ",\"egress_queue_ns\":" << r.egress_queue_ns
         << ",\"serialization_ns\":" << r.serialization_ns
         << ",\"fan_in_ns\":" << r.fan_in_ns
         << ",\"other_ns\":" << r.other_ns
         << ",\"fan_in_wait_ns\":" << r.fan_in_wait_ns
         << ",\"fan_in_ser_ns\":" << r.fan_in_ser_ns << ",\"blame\":[";
      bool first_blame = true;
      for (const BlameEntry& b : r.blame) {
        if (!first_blame) os << ',';
        first_blame = false;
        os << "{\"side\":\"" << to_string(b.side)
           << "\",\"host\":" << b.host
           << ",\"culprit_job\":" << b.culprit_job
           << ",\"culprit_band\":" << b.culprit_band
           << ",\"bytes\":" << b.bytes << '}';
      }
      os << "]}";
    }
    os << "]}";
  }
  os << "]}\n";
  return os.str();
}

DiffReport diff_reports(const RunReport& a, const RunReport& b,
                        const std::string& label_a,
                        const std::string& label_b) {
  DiffReport d;
  d.label_a = label_a;
  d.label_b = label_b;

  std::map<std::pair<std::int32_t, std::int64_t>, DiffRow> rows;
  auto fold = [&rows](const RunReport& r, bool is_a) {
    for (const IterationReport& it : r.iterations) {
      DiffRow& row = rows[{it.job, it.iteration}];
      row.job = it.job;
      row.iteration = it.iteration;
      std::int64_t cross = 0;
      std::int64_t cross_ingress = 0;
      for (const BlameEntry& bl : it.blame) {
        if (bl.culprit_job == it.job) continue;
        (bl.side == BlameSide::kEgress ? cross : cross_ingress) += bl.bytes;
      }
      if (is_a) {
        row.wait_a = it.barrier_wait;
        row.cross_blame_a = cross;
        row.cross_ingress_blame_a = cross_ingress;
      } else {
        row.wait_b = it.barrier_wait;
        row.cross_blame_b = cross;
        row.cross_ingress_blame_b = cross_ingress;
      }
    }
  };
  fold(a, true);
  fold(b, false);
  for (const auto& [key, row] : rows) {
    (void)key;
    d.rows.push_back(row);
  }

  std::map<std::int32_t, JobDiff> jobs;
  for (const JobSummary& js : a.jobs) {
    JobDiff& jd = jobs[js.job];
    jd.job = js.job;
    jd.total_wait_a = js.total_wait_ns;
    jd.cross_blame_a = js.cross_job_blame_bytes;
    jd.cross_ingress_blame_a = js.cross_job_ingress_blame_bytes;
  }
  for (const JobSummary& js : b.jobs) {
    JobDiff& jd = jobs[js.job];
    jd.job = js.job;
    jd.total_wait_b = js.total_wait_ns;
    jd.cross_blame_b = js.cross_job_blame_bytes;
    jd.cross_ingress_blame_b = js.cross_job_ingress_blame_bytes;
  }
  for (const auto& [job, jd] : jobs) {
    (void)job;
    d.jobs.push_back(jd);
  }
  return d;
}

std::string diff_text(const DiffReport& diff) {
  std::ostringstream os;
  os << "tlsreport diff: A=" << diff.label_a << " B=" << diff.label_b << "\n";
  for (const JobDiff& jd : diff.jobs) {
    os << "\njob " << jd.job << "\n";
    for (const DiffRow& r : diff.rows) {
      if (r.job != jd.job) continue;
      os << "  iter " << r.iteration << ": wait " << r.wait_a << " -> "
         << r.wait_b << " ns (delta " << (r.wait_b - r.wait_a)
         << "), cross-job blame " << r.cross_blame_a << " -> "
         << r.cross_blame_b << " bytes, ingress "
         << r.cross_ingress_blame_a << " -> " << r.cross_ingress_blame_b
         << " bytes\n";
    }
    os << "  totals: wait " << jd.total_wait_a << " -> " << jd.total_wait_b
       << " ns (delta " << (jd.total_wait_b - jd.total_wait_a)
       << "), cross-job blame " << jd.cross_blame_a << " -> "
       << jd.cross_blame_b << " bytes, ingress "
       << jd.cross_ingress_blame_a << " -> " << jd.cross_ingress_blame_b
       << " bytes";
    if (jd.cross_blame_a > 0 && jd.cross_blame_b == 0) {
      os << " [queueing-behind-other-jobs eliminated]";
    }
    if (jd.cross_ingress_blame_a > 0 && jd.cross_ingress_blame_b == 0) {
      os << " [fan-in contention eliminated]";
    }
    os << "\n";
  }
  return os.str();
}

std::string diff_csv(const DiffReport& diff) {
  std::ostringstream os;
  os << "job,iteration,metric,a,b\n";
  for (const DiffRow& r : diff.rows) {
    os << r.job << ',' << r.iteration << ",wait_ns," << r.wait_a << ','
       << r.wait_b << '\n';
    os << r.job << ',' << r.iteration << ",cross_job_blame_bytes,"
       << r.cross_blame_a << ',' << r.cross_blame_b << '\n';
    os << r.job << ',' << r.iteration << ",cross_job_ingress_blame_bytes,"
       << r.cross_ingress_blame_a << ',' << r.cross_ingress_blame_b << '\n';
  }
  for (const JobDiff& jd : diff.jobs) {
    os << jd.job << ",-1,total_wait_ns," << jd.total_wait_a << ','
       << jd.total_wait_b << '\n';
    os << jd.job << ",-1,cross_job_blame_bytes," << jd.cross_blame_a << ','
       << jd.cross_blame_b << '\n';
    os << jd.job << ",-1,cross_job_ingress_blame_bytes,"
       << jd.cross_ingress_blame_a << ',' << jd.cross_ingress_blame_b
       << '\n';
  }
  return os.str();
}

std::string diff_json(const DiffReport& diff) {
  std::ostringstream os;
  os << "{\"schema\":\"tlsreport-diff-v2\",\"a\":\"" << diff.label_a
     << "\",\"b\":\"" << diff.label_b << "\",\"jobs\":[";
  bool first_job = true;
  for (const JobDiff& jd : diff.jobs) {
    if (!first_job) os << ',';
    first_job = false;
    os << "{\"job\":" << jd.job << ",\"total_wait_ns_a\":" << jd.total_wait_a
       << ",\"total_wait_ns_b\":" << jd.total_wait_b
       << ",\"cross_job_blame_bytes_a\":" << jd.cross_blame_a
       << ",\"cross_job_blame_bytes_b\":" << jd.cross_blame_b
       << ",\"cross_job_ingress_blame_bytes_a\":" << jd.cross_ingress_blame_a
       << ",\"cross_job_ingress_blame_bytes_b\":" << jd.cross_ingress_blame_b
       << ",\"per_iteration\":[";
    bool first_row = true;
    for (const DiffRow& r : diff.rows) {
      if (r.job != jd.job) continue;
      if (!first_row) os << ',';
      first_row = false;
      os << "{\"iteration\":" << r.iteration << ",\"wait_ns_a\":" << r.wait_a
         << ",\"wait_ns_b\":" << r.wait_b
         << ",\"cross_job_blame_bytes_a\":" << r.cross_blame_a
         << ",\"cross_job_blame_bytes_b\":" << r.cross_blame_b
         << ",\"cross_job_ingress_blame_bytes_a\":" << r.cross_ingress_blame_a
         << ",\"cross_job_ingress_blame_bytes_b\":" << r.cross_ingress_blame_b
         << '}';
    }
    os << "]}";
  }
  os << "]}\n";
  return os.str();
}

}  // namespace tls::obs
