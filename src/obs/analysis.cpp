#include "obs/analysis.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

namespace tls::obs {

namespace {

// net::FlowKind ordinals as stamped into flow events' `band` field; the
// analysis must not depend on net/ (it also runs on offline CSVs), so the
// two ordinals it interprets are pinned here and guarded by a test.
constexpr std::int32_t kModelUpdateKind = 0;
constexpr std::int32_t kGradientUpdateKind = 1;

/// Per-chunk trace times gathered from the four chunk/ingress events.
/// Missing stages stay -1 (category filtered out or chunk still in flight
/// at end of trace).
struct ChunkTrace {
  sim::Time enq_at{-1};
  sim::Time deq_at{-1};
  sim::Time arr_at{-1};
  sim::Time del_at{-1};
  std::size_t enq_idx = 0;  ///< log position of the enqueue event
  std::size_t deq_idx = 0;  ///< log position of the dequeue event
  std::int32_t egress_host = -1;
  std::int32_t band = -1;
  std::int64_t bytes = 0;
};

struct FlowTrace {
  std::int32_t src = -1;
  std::int32_t dst = -1;
  std::int32_t job = -1;
  std::int32_t kind = -1;  ///< FlowKind ordinal
  std::int64_t iteration = -1;
  sim::Time start_at{-1};
  sim::Time end_at{-1};
  std::map<std::int64_t, ChunkTrace> chunks;        ///< by chunk index
  std::map<sim::Time, std::int64_t> index_by_deliver;  ///< deliver -> index
};

struct Span {
  sim::Time begin{};
  sim::Time end{};
  std::int32_t actor = -1;  ///< worker or shard id
};

struct Release {
  sim::Time at{};
  sim::Time wait{};
  std::int32_t worker = -1;
};

/// Everything analyze() needs, indexed once in a single pass over the log.
struct Index {
  std::map<std::int64_t, FlowTrace> flows;  ///< by flow id
  /// (job, kind, dst host, end time) -> flow id, last in log order wins.
  std::map<std::tuple<std::int32_t, std::int32_t, std::int32_t, sim::Time>,
           std::int64_t>
      flow_by_end;
  /// (job, worker) -> host, from worker_compute emission sites.
  std::map<std::pair<std::int32_t, std::int32_t>, std::int32_t> worker_host;
  /// (job, host) -> compute/aggregation spans ending at key time.
  std::map<std::tuple<std::int32_t, std::int32_t, sim::Time>, Span>
      compute_by_end;
  std::map<std::tuple<std::int32_t, std::int32_t, sim::Time>, Span>
      agg_by_end;
  /// (job, iteration) -> barrier releases in log order.
  std::map<std::pair<std::int32_t, std::int64_t>, std::vector<Release>>
      releases;
};

Index build_index(const std::vector<TraceEvent>& events) {
  Index ix;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    switch (e.kind) {
      case EventKind::kFlowStart: {
        FlowTrace& f = ix.flows[e.flow];
        f.src = e.host;
        f.dst = static_cast<std::int32_t>(e.a);
        f.job = e.job;
        f.kind = e.band;
        f.iteration = e.b;
        f.start_at = e.at;
        break;
      }
      case EventKind::kFlowEnd: {
        FlowTrace& f = ix.flows[e.flow];
        if (f.start_at < sim::Time{0}) {  // end without start (filtered/truncated)
          f.src = e.host;
          f.dst = static_cast<std::int32_t>(e.a);
          f.job = e.job;
          f.kind = e.band;
          f.iteration = e.b;
          f.start_at = e.at - e.dur;
        }
        f.end_at = e.at;
        ix.flow_by_end[{e.job, e.band, static_cast<std::int32_t>(e.a),
                        e.at}] = e.flow;
        break;
      }
      case EventKind::kChunkEnqueue: {
        ChunkTrace& c = ix.flows[e.flow].chunks[e.b];
        c.enq_at = e.at;
        c.enq_idx = i;
        c.egress_host = e.host;
        c.band = e.band;
        c.bytes = e.bytes;
        break;
      }
      case EventKind::kChunkDequeue: {
        ChunkTrace& c = ix.flows[e.flow].chunks[e.b];
        c.deq_at = e.at;
        c.deq_idx = i;
        c.egress_host = e.host;
        c.band = e.band;
        c.bytes = e.bytes;
        break;
      }
      case EventKind::kIngressArrive: {
        ix.flows[e.flow].chunks[e.b].arr_at = e.at;
        break;
      }
      case EventKind::kIngressDeliver: {
        FlowTrace& f = ix.flows[e.flow];
        f.chunks[e.b].del_at = e.at;
        f.index_by_deliver[e.at] = e.b;
        break;
      }
      case EventKind::kWorkerCompute: {
        ix.worker_host[{e.job, static_cast<std::int32_t>(e.a)}] = e.host;
        ix.compute_by_end[{e.job, e.host, e.at + e.dur}] =
            Span{e.at, e.at + e.dur, static_cast<std::int32_t>(e.a)};
        break;
      }
      case EventKind::kPsAggregate: {
        ix.agg_by_end[{e.job, e.host, e.at + e.dur}] =
            Span{e.at, e.at + e.dur, static_cast<std::int32_t>(e.a)};
        break;
      }
      case EventKind::kBarrierRelease: {
        ix.releases[{e.job, e.b}].push_back(
            Release{e.at, e.dur, static_cast<std::int32_t>(e.a)});
        break;
      }
      default:
        break;
    }
  }
  return ix;
}

/// An egress-queueing interval on the critical path, remembered so the
/// blame pass can scan the log window (enq_idx, deq_idx).
struct QueueVisit {
  std::int32_t host = -1;
  std::int64_t victim_flow = 0;
  std::size_t enq_idx = 0;
  std::size_t deq_idx = 0;
};

/// Collects backward-ordered segments; clamps every interval to >= lo and
/// coalesces nothing (renderers aggregate by kind).
class SegmentSink {
 public:
  explicit SegmentSink(sim::Time lo) : lo_(lo) {}

  void add(SegmentKind kind, sim::Time begin, sim::Time end,
           std::int32_t host, std::int64_t flow) {
    begin = std::max(begin, lo_);
    end = std::max(end, lo_);
    if (end <= begin) return;
    segs_.push_back(PathSegment{kind, begin, end, host, flow});
  }

  /// Segments in forward time order.
  std::vector<PathSegment> take() {
    std::reverse(segs_.begin(), segs_.end());
    return std::move(segs_);
  }

 private:
  sim::Time lo_;
  std::vector<PathSegment> segs_;
};

/// Decomposes the critical flow's span [start, end] into the backward
/// chunk chain: the last-delivered chunk's fan-in / wire / egress-queue
/// intervals, then (recursively) the chunk whose delivery admitted it,
/// until the chain reaches the flow start. The transport admits follow-up
/// chunks at the exact delivery instant of earlier ones, so the chain
/// tiles the span with no gaps; anything unattributable (no chunk events,
/// zero-byte flow) lands in `other`.
void decompose_flow(const FlowTrace& f, sim::Time lo, SegmentSink& sink,
                    std::vector<QueueVisit>& visits, std::int64_t flow_id) {
  sim::Time cursor = f.end_at;
  // Last chunk: the one delivered at flow end.
  const ChunkTrace* c = nullptr;
  if (!f.index_by_deliver.empty()) {
    auto last = std::prev(f.index_by_deliver.end());
    c = &f.chunks.at(last->second);
  }
  while (c != nullptr && cursor > lo) {
    if (c->arr_at < sim::Time{0} || c->deq_at < sim::Time{0} ||
        c->enq_at < sim::Time{0} || c->del_at < sim::Time{0}) {
      break;  // partial chunk record; leave the remainder to `other`
    }
    sink.add(SegmentKind::kFanIn, c->arr_at, cursor, f.dst, flow_id);
    sink.add(SegmentKind::kSerialization, c->deq_at, c->arr_at, f.src,
             flow_id);
    sink.add(SegmentKind::kEgressQueue, c->enq_at, c->deq_at, f.src, flow_id);
    if (c->deq_at > c->enq_at && c->deq_at > lo) {
      visits.push_back(
          QueueVisit{c->egress_host, flow_id, c->enq_idx, c->deq_idx});
    }
    cursor = c->enq_at;
    if (cursor <= f.start_at || cursor <= lo) break;
    // The chunk was admitted by the delivery of an earlier chunk at the
    // same instant; follow it.
    auto it = f.index_by_deliver.find(cursor);
    if (it == f.index_by_deliver.end()) break;
    c = &f.chunks.at(it->second);
  }
  // Gap between flow start and where the chunk chain bottomed out (missing
  // chunk data, truncated trace): unattributable.
  if (cursor > f.start_at) {
    sink.add(SegmentKind::kOther, std::max(f.start_at, lo), cursor, f.src,
             flow_id);
  }
}

/// Walks the backward causal chain for one barrier window [lo, release],
/// alternating transfer and compute links per the PS state machine:
/// model flow <- aggregation <- gradient flow <- worker compute <- model
/// flow of the previous iteration <- ... Every link ends exactly where the
/// next begins (same-instant callbacks in the simulator), so the segments
/// tile the window; when a link cannot be found the remainder is `other`.
void walk_critical_path(const Index& ix, std::int32_t job, sim::Time lo,
                        sim::Time release_at, std::int32_t release_host,
                        SegmentSink& sink, std::vector<QueueVisit>& visits) {
  enum class Phase { kModelFlow, kAggregate, kGradientFlow, kCompute };
  Phase phase = Phase::kModelFlow;
  std::int32_t host = release_host;
  sim::Time cursor = release_at;
  // The chain shortens cursor by >= 1 ns per full cycle; the bound only
  // guards against malformed (hand-edited) traces.
  for (int steps = 0; cursor > lo && steps < 1 << 20; ++steps) {
    switch (phase) {
      case Phase::kModelFlow: {
        auto it = ix.flow_by_end.find({job, kModelUpdateKind, host, cursor});
        if (it == ix.flow_by_end.end()) {
          sink.add(SegmentKind::kOther, lo, cursor, host, 0);
          return;
        }
        const FlowTrace& f = ix.flows.at(it->second);
        decompose_flow(f, lo, sink, visits, it->second);
        host = f.src;
        cursor = std::max(f.start_at, lo);
        phase = Phase::kAggregate;
        break;
      }
      case Phase::kAggregate: {
        // Greatest aggregation span at this host ending at or before the
        // flow start; the gap between its end and the flow start is the
        // coordination wait (transmission gate).
        auto it = ix.agg_by_end.upper_bound({job, host, cursor});
        if (it == ix.agg_by_end.begin()) {
          sink.add(SegmentKind::kOther, lo, cursor, host, 0);
          return;
        }
        --it;
        if (std::get<0>(it->first) != job || std::get<1>(it->first) != host) {
          sink.add(SegmentKind::kOther, lo, cursor, host, 0);
          return;
        }
        const Span& agg = it->second;
        sink.add(SegmentKind::kOther, agg.end, cursor, host, 0);
        sink.add(SegmentKind::kCompute, agg.begin, std::min(agg.end, cursor),
                 host, 0);
        cursor = std::max(agg.begin, lo);
        phase = Phase::kGradientFlow;
        break;
      }
      case Phase::kGradientFlow: {
        // Aggregation starts the instant the last gradient lands.
        auto it =
            ix.flow_by_end.find({job, kGradientUpdateKind, host, cursor});
        if (it == ix.flow_by_end.end()) {
          sink.add(SegmentKind::kOther, lo, cursor, host, 0);
          return;
        }
        const FlowTrace& f = ix.flows.at(it->second);
        decompose_flow(f, lo, sink, visits, it->second);
        host = f.src;
        cursor = std::max(f.start_at, lo);
        phase = Phase::kCompute;
        break;
      }
      case Phase::kCompute: {
        // Gradient flows leave at the exact compute-done instant.
        auto it = ix.compute_by_end.find({job, host, cursor});
        if (it == ix.compute_by_end.end()) {
          sink.add(SegmentKind::kOther, lo, cursor, host, 0);
          return;
        }
        const Span& cs = it->second;
        sink.add(SegmentKind::kCompute, cs.begin, cursor, host, 0);
        cursor = std::max(cs.begin, lo);
        // Compute started when the previous iteration's model update
        // finished arriving at this worker host.
        phase = Phase::kModelFlow;
        break;
      }
    }
  }
  if (cursor > lo) sink.add(SegmentKind::kOther, lo, cursor, host, 0);
}

void accumulate(IterationReport& r) {
  for (const PathSegment& s : r.segments) {
    sim::Time len = s.end - s.begin;
    switch (s.kind) {
      case SegmentKind::kCompute: r.compute_ns += len; break;
      case SegmentKind::kEgressQueue: r.egress_queue_ns += len; break;
      case SegmentKind::kSerialization: r.serialization_ns += len; break;
      case SegmentKind::kFanIn: r.fan_in_ns += len; break;
      case SegmentKind::kOther: r.other_ns += len; break;
    }
  }
}

}  // namespace

const char* to_string(SegmentKind kind) {
  switch (kind) {
    case SegmentKind::kCompute: return "compute";
    case SegmentKind::kEgressQueue: return "egress_queue";
    case SegmentKind::kSerialization: return "serialization";
    case SegmentKind::kFanIn: return "fan_in";
    case SegmentKind::kOther: return "other";
  }
  return "?";
}

RunReport analyze(const std::vector<TraceEvent>& events) {
  Index ix = build_index(events);
  RunReport report;
  std::map<std::int32_t, JobSummary> jobs;

  for (const auto& [key, rels] : ix.releases) {
    auto [job, iteration] = key;
    if (iteration < 0) continue;
    // Critical worker: largest wait; first in log order breaks ties.
    const Release* crit = &rels.front();
    for (const Release& r : rels) {
      if (r.wait > crit->wait) crit = &r;
    }

    IterationReport r;
    r.job = job;
    r.iteration = iteration;
    r.critical_worker = crit->worker;
    r.release_at = crit->at;
    r.barrier_wait = crit->wait;
    r.enter_at = crit->at - crit->wait;

    std::int32_t worker_host = -1;
    auto wh = ix.worker_host.find({job, crit->worker});
    if (wh != ix.worker_host.end()) worker_host = wh->second;

    SegmentSink sink(r.enter_at);
    std::vector<QueueVisit> visits;
    if (worker_host >= 0) {
      walk_critical_path(ix, job, r.enter_at, r.release_at, worker_host, sink,
                         visits);
    } else {
      sink.add(SegmentKind::kOther, r.enter_at, r.release_at, -1, 0);
    }
    r.segments = sink.take();
    accumulate(r);

    // Blame pass: log-order window scan per queueing visit.
    std::map<std::tuple<std::int32_t, std::int32_t, std::int32_t>,
             std::int64_t>
        blame;
    for (const QueueVisit& v : visits) {
      for (std::size_t i = v.enq_idx + 1; i < v.deq_idx; ++i) {
        const TraceEvent& e = events[i];
        if (e.kind != EventKind::kChunkDequeue) continue;
        if (e.host != v.host) continue;
        if (e.flow == v.victim_flow) continue;  // own pipeline, not blame
        blame[{e.host, e.job, e.band}] += e.bytes;
      }
    }
    for (const auto& [bk, bytes] : blame) {
      r.blame.push_back(BlameEntry{std::get<0>(bk), std::get<1>(bk),
                                   std::get<2>(bk), bytes});
    }

    JobSummary& js = jobs[job];
    js.job = job;
    ++js.iterations;
    js.total_wait_ns += r.barrier_wait;
    js.compute_ns += r.compute_ns;
    js.egress_queue_ns += r.egress_queue_ns;
    js.serialization_ns += r.serialization_ns;
    js.fan_in_ns += r.fan_in_ns;
    js.other_ns += r.other_ns;
    for (const BlameEntry& b : r.blame) {
      if (b.culprit_job == job) {
        js.self_blame_bytes += b.bytes;
      } else {
        js.cross_job_blame_bytes += b.bytes;
      }
    }
    report.iterations.push_back(std::move(r));
  }

  for (const auto& [job, js] : jobs) {
    (void)job;
    report.jobs.push_back(js);
  }
  return report;
}

// ---------------------------------------------------------------------------
// Renderers. Integer formatting only: every value is an int64 rendered with
// operator<<, so byte-identical output is free.

namespace {

/// Integer percentage of part in whole (0 when whole is 0).
std::int64_t pct(sim::Time part, sim::Time whole) {
  return whole > sim::Time{0} ? part * 100 / whole : 0;
}

void append_iteration_row(std::ostringstream& os, const IterationReport& r) {
  os << "  iter " << r.iteration << " worker " << r.critical_worker
     << ": wait " << r.barrier_wait << " ns = compute " << r.compute_ns
     << " + egress_queue " << r.egress_queue_ns << " + serialization "
     << r.serialization_ns << " + fan_in " << r.fan_in_ns << " + other "
     << r.other_ns << "\n";
  for (const BlameEntry& b : r.blame) {
    os << "    blame host " << b.host << ": job " << b.culprit_job
       << " band " << b.culprit_band << " drained " << b.bytes
       << " bytes ahead\n";
  }
}

}  // namespace

std::string report_text(const RunReport& report) {
  std::ostringstream os;
  os << "tlsreport: per-iteration critical-path attribution\n";
  os << "jobs " << report.jobs.size() << ", iterations "
     << report.iterations.size() << "\n";
  for (const JobSummary& js : report.jobs) {
    os << "\njob " << js.job << " (" << js.iterations << " iterations)\n";
    for (const IterationReport& r : report.iterations) {
      if (r.job == js.job) append_iteration_row(os, r);
    }
    os << "  total wait " << js.total_wait_ns << " ns: compute "
       << js.compute_ns << " (" << pct(js.compute_ns, js.total_wait_ns)
       << "%), egress_queue " << js.egress_queue_ns << " ("
       << pct(js.egress_queue_ns, js.total_wait_ns) << "%), serialization "
       << js.serialization_ns << " ("
       << pct(js.serialization_ns, js.total_wait_ns) << "%), fan_in "
       << js.fan_in_ns << " (" << pct(js.fan_in_ns, js.total_wait_ns)
       << "%), other " << js.other_ns << " ("
       << pct(js.other_ns, js.total_wait_ns) << "%)\n";
    os << "  blame: cross-job " << js.cross_job_blame_bytes
       << " bytes, self " << js.self_blame_bytes << " bytes\n";
  }
  return os.str();
}

std::string report_csv(const RunReport& report) {
  std::ostringstream os;
  os << "job,iteration,critical_worker,record,host,culprit_job,culprit_band,"
        "metric,value\n";
  auto seg_row = [&os](const IterationReport& r, const char* metric,
                       sim::Time v) {
    os << r.job << ',' << r.iteration << ',' << r.critical_worker
       << ",segment,-1,-1,-1," << metric << ',' << v << '\n';
  };
  for (const IterationReport& r : report.iterations) {
    seg_row(r, "barrier_wait_ns", r.barrier_wait);
    seg_row(r, "compute_ns", r.compute_ns);
    seg_row(r, "egress_queue_ns", r.egress_queue_ns);
    seg_row(r, "serialization_ns", r.serialization_ns);
    seg_row(r, "fan_in_ns", r.fan_in_ns);
    seg_row(r, "other_ns", r.other_ns);
    for (const BlameEntry& b : r.blame) {
      os << r.job << ',' << r.iteration << ',' << r.critical_worker
         << ",blame," << b.host << ',' << b.culprit_job << ','
         << b.culprit_band << ",blame_bytes," << b.bytes << '\n';
    }
  }
  return os.str();
}

std::string report_json(const RunReport& report) {
  std::ostringstream os;
  os << "{\"schema\":\"tlsreport-v1\",\"jobs\":[";
  bool first_job = true;
  for (const JobSummary& js : report.jobs) {
    if (!first_job) os << ',';
    first_job = false;
    os << "{\"job\":" << js.job << ",\"iterations\":" << js.iterations
       << ",\"total_wait_ns\":" << js.total_wait_ns
       << ",\"compute_ns\":" << js.compute_ns
       << ",\"egress_queue_ns\":" << js.egress_queue_ns
       << ",\"serialization_ns\":" << js.serialization_ns
       << ",\"fan_in_ns\":" << js.fan_in_ns
       << ",\"other_ns\":" << js.other_ns
       << ",\"cross_job_blame_bytes\":" << js.cross_job_blame_bytes
       << ",\"self_blame_bytes\":" << js.self_blame_bytes
       << ",\"per_iteration\":[";
    bool first_iter = true;
    for (const IterationReport& r : report.iterations) {
      if (r.job != js.job) continue;
      if (!first_iter) os << ',';
      first_iter = false;
      os << "{\"iteration\":" << r.iteration
         << ",\"critical_worker\":" << r.critical_worker
         << ",\"enter_ns\":" << r.enter_at
         << ",\"release_ns\":" << r.release_at
         << ",\"wait_ns\":" << r.barrier_wait
         << ",\"compute_ns\":" << r.compute_ns
         << ",\"egress_queue_ns\":" << r.egress_queue_ns
         << ",\"serialization_ns\":" << r.serialization_ns
         << ",\"fan_in_ns\":" << r.fan_in_ns
         << ",\"other_ns\":" << r.other_ns << ",\"blame\":[";
      bool first_blame = true;
      for (const BlameEntry& b : r.blame) {
        if (!first_blame) os << ',';
        first_blame = false;
        os << "{\"host\":" << b.host << ",\"culprit_job\":" << b.culprit_job
           << ",\"culprit_band\":" << b.culprit_band
           << ",\"bytes\":" << b.bytes << '}';
      }
      os << "]}";
    }
    os << "]}";
  }
  os << "]}\n";
  return os.str();
}

DiffReport diff_reports(const RunReport& a, const RunReport& b,
                        const std::string& label_a,
                        const std::string& label_b) {
  DiffReport d;
  d.label_a = label_a;
  d.label_b = label_b;

  std::map<std::pair<std::int32_t, std::int64_t>, DiffRow> rows;
  auto fold = [&rows](const RunReport& r, bool is_a) {
    for (const IterationReport& it : r.iterations) {
      DiffRow& row = rows[{it.job, it.iteration}];
      row.job = it.job;
      row.iteration = it.iteration;
      std::int64_t cross = 0;
      for (const BlameEntry& bl : it.blame) {
        if (bl.culprit_job != it.job) cross += bl.bytes;
      }
      if (is_a) {
        row.wait_a = it.barrier_wait;
        row.cross_blame_a = cross;
      } else {
        row.wait_b = it.barrier_wait;
        row.cross_blame_b = cross;
      }
    }
  };
  fold(a, true);
  fold(b, false);
  for (const auto& [key, row] : rows) {
    (void)key;
    d.rows.push_back(row);
  }

  std::map<std::int32_t, JobDiff> jobs;
  for (const JobSummary& js : a.jobs) {
    JobDiff& jd = jobs[js.job];
    jd.job = js.job;
    jd.total_wait_a = js.total_wait_ns;
    jd.cross_blame_a = js.cross_job_blame_bytes;
  }
  for (const JobSummary& js : b.jobs) {
    JobDiff& jd = jobs[js.job];
    jd.job = js.job;
    jd.total_wait_b = js.total_wait_ns;
    jd.cross_blame_b = js.cross_job_blame_bytes;
  }
  for (const auto& [job, jd] : jobs) {
    (void)job;
    d.jobs.push_back(jd);
  }
  return d;
}

std::string diff_text(const DiffReport& diff) {
  std::ostringstream os;
  os << "tlsreport diff: A=" << diff.label_a << " B=" << diff.label_b << "\n";
  for (const JobDiff& jd : diff.jobs) {
    os << "\njob " << jd.job << "\n";
    for (const DiffRow& r : diff.rows) {
      if (r.job != jd.job) continue;
      os << "  iter " << r.iteration << ": wait " << r.wait_a << " -> "
         << r.wait_b << " ns (delta " << (r.wait_b - r.wait_a)
         << "), cross-job blame " << r.cross_blame_a << " -> "
         << r.cross_blame_b << " bytes\n";
    }
    os << "  totals: wait " << jd.total_wait_a << " -> " << jd.total_wait_b
       << " ns (delta " << (jd.total_wait_b - jd.total_wait_a)
       << "), cross-job blame " << jd.cross_blame_a << " -> "
       << jd.cross_blame_b << " bytes";
    if (jd.cross_blame_a > 0 && jd.cross_blame_b == 0) {
      os << " [queueing-behind-other-jobs eliminated]";
    }
    os << "\n";
  }
  return os.str();
}

std::string diff_csv(const DiffReport& diff) {
  std::ostringstream os;
  os << "job,iteration,metric,a,b\n";
  for (const DiffRow& r : diff.rows) {
    os << r.job << ',' << r.iteration << ",wait_ns," << r.wait_a << ','
       << r.wait_b << '\n';
    os << r.job << ',' << r.iteration << ",cross_job_blame_bytes,"
       << r.cross_blame_a << ',' << r.cross_blame_b << '\n';
  }
  for (const JobDiff& jd : diff.jobs) {
    os << jd.job << ",-1,total_wait_ns," << jd.total_wait_a << ','
       << jd.total_wait_b << '\n';
    os << jd.job << ",-1,cross_job_blame_bytes," << jd.cross_blame_a << ','
       << jd.cross_blame_b << '\n';
  }
  return os.str();
}

std::string diff_json(const DiffReport& diff) {
  std::ostringstream os;
  os << "{\"schema\":\"tlsreport-diff-v1\",\"a\":\"" << diff.label_a
     << "\",\"b\":\"" << diff.label_b << "\",\"jobs\":[";
  bool first_job = true;
  for (const JobDiff& jd : diff.jobs) {
    if (!first_job) os << ',';
    first_job = false;
    os << "{\"job\":" << jd.job << ",\"total_wait_ns_a\":" << jd.total_wait_a
       << ",\"total_wait_ns_b\":" << jd.total_wait_b
       << ",\"cross_job_blame_bytes_a\":" << jd.cross_blame_a
       << ",\"cross_job_blame_bytes_b\":" << jd.cross_blame_b
       << ",\"per_iteration\":[";
    bool first_row = true;
    for (const DiffRow& r : diff.rows) {
      if (r.job != jd.job) continue;
      if (!first_row) os << ',';
      first_row = false;
      os << "{\"iteration\":" << r.iteration << ",\"wait_ns_a\":" << r.wait_a
         << ",\"wait_ns_b\":" << r.wait_b
         << ",\"cross_job_blame_bytes_a\":" << r.cross_blame_a
         << ",\"cross_job_blame_bytes_b\":" << r.cross_blame_b << '}';
    }
    os << "]}";
  }
  os << "]}\n";
  return os.str();
}

}  // namespace tls::obs
