#include "obs/html.hpp"

#include <sstream>

namespace tls::obs {

namespace {

/// Escapes text destined for HTML element/attribute context.
std::string escape_html(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

/// Makes a JSON document safe to embed inside <script>: '<' can only occur
/// inside JSON strings, where < is an equivalent escape, so a global
/// replace can never corrupt the document (it forecloses '</script>').
std::string escape_json_for_script(const std::string& json) {
  std::string out;
  out.reserve(json.size());
  for (char c : json) {
    if (c == '<') {
      out += "\\u003c";
    } else {
      out += c;
    }
  }
  return out;
}

constexpr const char* kStyle = R"css(
  :root { color-scheme: light; }
  body { font: 14px/1.45 -apple-system, "Segoe UI", Roboto, sans-serif;
         margin: 24px auto; max-width: 1100px; padding: 0 16px;
         color: #1c2733; background: #fafbfc; }
  h1 { font-size: 22px; margin-bottom: 4px; }
  h2 { font-size: 17px; margin: 28px 0 8px; border-bottom: 1px solid #d8dee4;
       padding-bottom: 4px; }
  h3 { font-size: 15px; margin: 18px 0 6px; }
  .meta { color: #57606a; margin-bottom: 16px; }
  .banner { background: #fff1f0; border: 1px solid #d4380d; color: #a8071a;
            padding: 8px 12px; border-radius: 6px; margin: 12px 0; }
  .note { background: #fffbe6; border: 1px solid #d4b106; color: #614700;
          padding: 8px 12px; border-radius: 6px; margin: 12px 0; }
  .legend { margin: 8px 0 16px; }
  .legend span { display: inline-block; margin-right: 14px; }
  .swatch { display: inline-block; width: 12px; height: 12px;
            border-radius: 2px; margin-right: 4px; vertical-align: -1px; }
  table.iters { border-collapse: collapse; width: 100%; }
  table.iters td { padding: 2px 6px; vertical-align: middle; }
  td.lbl { white-space: nowrap; color: #57606a; font-family: ui-monospace,
           SFMono-Regular, Menlo, monospace; font-size: 12px; width: 1%; }
  .bar { display: flex; height: 16px; background: #eceff2;
         border-radius: 3px; overflow: hidden; }
  .bar span { display: block; height: 100%; }
  .num { font-family: ui-monospace, SFMono-Regular, Menlo, monospace;
         font-size: 12px; }
  table.heat { border-collapse: collapse; margin-top: 6px; }
  table.heat th, table.heat td { border: 1px solid #d8dee4; padding: 3px 8px;
         font-size: 12px; text-align: right;
         font-family: ui-monospace, SFMono-Regular, Menlo, monospace; }
  table.heat th { background: #f0f2f4; font-weight: 600; }
  .pair { display: flex; gap: 6px; align-items: center; }
  .pair .tag { width: 14px; color: #57606a; font-size: 11px;
         font-family: ui-monospace, SFMono-Regular, Menlo, monospace; }
  .delta-good { color: #1a7f37; }
  .delta-bad { color: #cf222e; }
  .empty { color: #57606a; font-style: italic; }
  .sides { margin: 6px 0; }
  .sides button { font: inherit; font-size: 12px; padding: 3px 12px;
         border: 1px solid #d8dee4; background: #f0f2f4; color: #57606a;
         cursor: pointer; }
  .sides button:first-child { border-radius: 4px 0 0 4px; }
  .sides button:last-child { border-radius: 0 4px 4px 0; }
  .sides button.on { background: #1c2733; color: #fafbfc;
         border-color: #1c2733; }
)css";

constexpr const char* kScript = R"js(
"use strict";
(function () {
  var KINDS = ["compute", "egress_queue", "serialization", "fan_in", "other"];
  var COLORS = {
    compute: "#4c9aff",
    egress_queue: "#f5222d",
    serialization: "#52c41a",
    fan_in: "#fa8c16",
    other: "#bfbfbf"
  };

  function parseReport(id) {
    var node = document.getElementById(id);
    return node ? JSON.parse(node.textContent) : null;
  }

  function el(tag, cls, text) {
    var e = document.createElement(tag);
    if (cls) e.className = cls;
    if (text !== undefined) e.textContent = text;
    return e;
  }

  function fmt(n) {
    return String(n).replace(/\B(?=(\d{3})+(?!\d))/g, ",");
  }

  function catCounts(obj) {
    return Object.keys(obj).map(function (k) {
      return k + "=" + obj[k];
    }).join(", ");
  }

  function renderHealth(rep, root) {
    var h = rep.trace_health;
    if (!h) return;
    if (h.dropped_total > 0) {
      root.appendChild(el("div", "banner",
          "WARNING: trace is incomplete - the tracer dropped " +
          fmt(h.dropped_total) + " events at the max-events cap (" +
          catCounts(h.dropped_by_cat) +
          "); attribution may be missing time and blame"));
    }
    if (h.sampled_out_total > 0) {
      root.appendChild(el("div", "note",
          "capture sampling excluded " + fmt(h.sampled_out_total) +
          " events (" + catCounts(h.sampled_out_by_cat) +
          "); critical-chain categories are never sampled"));
    }
  }

  function legend(root) {
    var box = el("div", "legend");
    KINDS.forEach(function (k) {
      var item = el("span");
      var sw = el("span", "swatch");
      sw.style.background = COLORS[k];
      item.appendChild(sw);
      item.appendChild(document.createTextNode(k));
      box.appendChild(item);
    });
    root.appendChild(box);
  }

  function stackedBar(row, maxWait) {
    var bar = el("div", "bar");
    var wait = row.wait_ns !== undefined ? row.wait_ns : row.total_wait_ns;
    if (maxWait > 0) bar.style.width = (wait * 100 / maxWait) + "%";
    KINDS.forEach(function (k) {
      var v = row[k + "_ns"];
      if (!v || wait <= 0) return;
      var seg = el("span");
      seg.style.width = (v * 100 / wait) + "%";
      seg.style.background = COLORS[k];
      bar.appendChild(seg);
    });
    bar.title = KINDS.map(function (k) {
      return k + " " + fmt(row[k + "_ns"] || 0) + " ns";
    }).join(", ");
    return bar;
  }

  function renderSegments(rep, root) {
    root.appendChild(el("h2", null, "Per-iteration critical-path segments"));
    legend(root);
    if (!rep.jobs.length) {
      root.appendChild(el("div", "empty", "no iterations in this trace"));
      return;
    }
    rep.jobs.forEach(function (js) {
      root.appendChild(el("h3", null,
          "job " + js.job + " - " + js.iterations + " iterations, total wait " +
          fmt(js.total_wait_ns) + " ns"));
      var maxWait = 0;
      js.per_iteration.forEach(function (it) {
        if (it.wait_ns > maxWait) maxWait = it.wait_ns;
      });
      var table = el("table", "iters");
      js.per_iteration.forEach(function (it) {
        var tr = el("tr");
        tr.appendChild(el("td", "lbl",
            "iter " + it.iteration + " w" + it.critical_worker));
        var cell = el("td");
        cell.appendChild(stackedBar(it, maxWait));
        tr.appendChild(cell);
        tr.appendChild(el("td", "lbl num", fmt(it.wait_ns) + " ns"));
        table.appendChild(tr);
      });
      root.appendChild(table);
    });
  }

  function blameSide(b) {
    return b.side || "egress";
  }

  function heatPane(rep, side, emptyText) {
    var pane = el("div");
    var cells = {};  // "host|job|band" -> bytes
    var hosts = {};
    var cols = {};   // "job|band"
    var max = 0;
    rep.jobs.forEach(function (js) {
      js.per_iteration.forEach(function (it) {
        it.blame.forEach(function (b) {
          if (blameSide(b) !== side) return;
          var col = b.culprit_job + "|" + b.culprit_band;
          var key = b.host + "|" + col;
          cells[key] = (cells[key] || 0) + b.bytes;
          hosts[b.host] = true;
          cols[col] = true;
          if (cells[key] > max) max = cells[key];
        });
      });
    });
    var hostIds = Object.keys(hosts).map(Number).sort(function (a, b) {
      return a - b;
    });
    var colIds = Object.keys(cols).sort();
    if (!hostIds.length) {
      pane.appendChild(el("div", "empty", emptyText));
      return pane;
    }
    var table = el("table", "heat");
    var head = el("tr");
    head.appendChild(el("th", null, "host"));
    colIds.forEach(function (c) {
      var parts = c.split("|");
      head.appendChild(el("th", null,
          "job " + parts[0] + " / band " + parts[1]));
    });
    table.appendChild(head);
    hostIds.forEach(function (h) {
      var tr = el("tr");
      tr.appendChild(el("th", null, String(h)));
      colIds.forEach(function (c) {
        var v = cells[h + "|" + c] || 0;
        var td = el("td", null, v ? fmt(v) : "");
        if (v && max > 0) {
          td.style.background =
              "rgba(245, 34, 45, " + (0.08 + 0.72 * v / max).toFixed(3) + ")";
        }
        tr.appendChild(td);
      });
      table.appendChild(tr);
    });
    pane.appendChild(table);
    return pane;
  }

  function renderHeatmap(rep, root) {
    root.appendChild(el("h2", null,
        "Blame heatmap - bytes moved ahead of critical chunks"));
    var SIDES = ["egress", "ingress"];
    var EMPTY = {
      egress: "no egress-queue contention on any critical path",
      ingress: "no ingress fan-in contention on any critical path"
    };
    var bar = el("div", "sides");
    root.appendChild(bar);
    var buttons = {};
    var panes = {};
    SIDES.forEach(function (side) {
      var btn = el("button", null, side);
      btn.type = "button";
      bar.appendChild(btn);
      buttons[side] = btn;
      panes[side] = heatPane(rep, side, EMPTY[side]);
      root.appendChild(panes[side]);
    });
    function show(side) {
      SIDES.forEach(function (s) {
        panes[s].style.display = s === side ? "" : "none";
        buttons[s].className = s === side ? "on" : "";
      });
    }
    SIDES.forEach(function (side) {
      buttons[side].addEventListener("click", function () { show(side); });
    });
    show("egress");
  }

  function crossBlame(it, side) {
    var sum = 0;
    it.blame.forEach(function (b) {
      if (blameSide(b) === side && b.culprit_job !== it.job_self) {
        sum += b.bytes;
      }
    });
    return sum;
  }

  function indexIters(rep) {
    var by = {};  // job -> iteration -> row
    rep.jobs.forEach(function (js) {
      var m = {};
      js.per_iteration.forEach(function (it) {
        it.job_self = js.job;
        m[it.iteration] = it;
      });
      by[js.job] = { summary: js, iters: m };
    });
    return by;
  }

  function renderDiff(a, b, labelA, labelB, root) {
    root.appendChild(el("h2", null,
        "A/B diff - " + labelA + " vs " + labelB));
    var ia = indexIters(a);
    var ib = indexIters(b);
    var jobIds = {};
    Object.keys(ia).forEach(function (j) { jobIds[j] = true; });
    Object.keys(ib).forEach(function (j) { jobIds[j] = true; });
    var ordered = Object.keys(jobIds).map(Number).sort(function (x, y) {
      return x - y;
    });
    var maxWait = 0;
    [a, b].forEach(function (rep) {
      rep.jobs.forEach(function (js) {
        js.per_iteration.forEach(function (it) {
          if (it.wait_ns > maxWait) maxWait = it.wait_ns;
        });
      });
    });
    ordered.forEach(function (job) {
      var ja = ia[job];
      var jb = ib[job];
      root.appendChild(el("h3", null, "job " + job));
      var iterIds = {};
      if (ja) Object.keys(ja.iters).forEach(function (i) { iterIds[i] = true; });
      if (jb) Object.keys(jb.iters).forEach(function (i) { iterIds[i] = true; });
      var table = el("table", "iters");
      Object.keys(iterIds).map(Number).sort(function (x, y) {
        return x - y;
      }).forEach(function (iter) {
        var ra = ja && ja.iters[iter];
        var rb = jb && jb.iters[iter];
        var tr = el("tr");
        tr.appendChild(el("td", "lbl", "iter " + iter));
        var cell = el("td");
        [[ra, "A"], [rb, "B"]].forEach(function (pair) {
          var row = el("div", "pair");
          row.appendChild(el("span", "tag", pair[1]));
          if (pair[0]) {
            var wrap = el("div");
            wrap.style.flex = "1";
            wrap.appendChild(stackedBar(pair[0], maxWait));
            row.appendChild(wrap);
          } else {
            row.appendChild(el("span", "empty", "absent"));
          }
          cell.appendChild(row);
        });
        tr.appendChild(cell);
        var txt = el("td", "lbl num");
        if (ra && rb) {
          var d = rb.wait_ns - ra.wait_ns;
          var span = el("span", d <= 0 ? "delta-good" : "delta-bad",
              (d >= 0 ? "+" : "") + fmt(d) + " ns");
          txt.appendChild(span);
          var ca = crossBlame(ra, "egress");
          var cb = crossBlame(rb, "egress");
          var ia = crossBlame(ra, "ingress");
          var ib = crossBlame(rb, "ingress");
          txt.appendChild(document.createTextNode(
              " | cross blame " + fmt(ca) + " -> " + fmt(cb) +
              " | ingress " + fmt(ia) + " -> " + fmt(ib)));
        }
        tr.appendChild(txt);
        table.appendChild(tr);
      });
      root.appendChild(table);
      if (ja && jb) {
        var sa = ja.summary;
        var sb = jb.summary;
        var totals = el("div", "num");
        totals.appendChild(document.createTextNode(
            "totals: wait " + fmt(sa.total_wait_ns) + " -> " +
            fmt(sb.total_wait_ns) + " ns, cross-job blame " +
            fmt(sa.cross_job_blame_bytes) + " -> " +
            fmt(sb.cross_job_blame_bytes) + " bytes, ingress " +
            fmt(sa.cross_job_ingress_blame_bytes || 0) + " -> " +
            fmt(sb.cross_job_ingress_blame_bytes || 0) + " bytes"));
        if (sa.cross_job_blame_bytes > 0 && sb.cross_job_blame_bytes === 0) {
          totals.appendChild(el("span", "delta-good",
              " [queueing-behind-other-jobs eliminated]"));
        }
        if (sa.cross_job_ingress_blame_bytes > 0 &&
            sb.cross_job_ingress_blame_bytes === 0) {
          totals.appendChild(el("span", "delta-good",
              " [fan-in contention eliminated]"));
        }
        root.appendChild(totals);
      }
    });
  }

  var A = parseReport("tlsreport-a");
  var B = parseReport("tlsreport-b");
  var root = document.getElementById("content");
  var labelA = document.body.getAttribute("data-label-a") || "A";
  var labelB = document.body.getAttribute("data-label-b") || "B";
  renderHealth(A, root);
  if (B) {
    renderHealth(B, root);
    renderDiff(A, B, labelA, labelB, root);
  }
  renderSegments(A, root);
  renderHeatmap(A, root);
})();
)js";

}  // namespace

std::string report_html(const std::string& json_a, const std::string& json_b,
                        const HtmlOptions& options) {
  std::string title = options.title.empty() ? "tlsreport" : options.title;
  std::ostringstream os;
  os << "<!doctype html>\n<html lang=\"en\">\n<head>\n"
     << "<meta charset=\"utf-8\">\n"
     << "<meta name=\"viewport\" content=\"width=device-width, "
        "initial-scale=1\">\n";
  if (options.refresh_seconds > 0) {
    os << "<meta http-equiv=\"refresh\" content=\"" << options.refresh_seconds
       << "\">\n";
  }
  os << "<title>" << escape_html(title) << "</title>\n"
     << "<style>" << kStyle << "</style>\n</head>\n"
     << "<body data-page=\"tlsreport\" data-label-a=\""
     << escape_html(options.label_a) << "\" data-label-b=\""
     << escape_html(options.label_b) << "\">\n"
     << "<h1>" << escape_html(title) << "</h1>\n"
     << "<div class=\"meta\">straggler attribution dashboard";
  if (!options.label_a.empty()) {
    os << " &middot; " << escape_html(options.label_a);
    if (!options.label_b.empty()) {
      os << " vs " << escape_html(options.label_b);
    }
  }
  if (options.refresh_seconds > 0) {
    os << " &middot; live (reloads every " << options.refresh_seconds << "s)";
  }
  os << "</div>\n<div id=\"content\"></div>\n"
     << "<script type=\"application/json\" id=\"tlsreport-a\">"
     << escape_json_for_script(json_a) << "</script>\n";
  if (!json_b.empty()) {
    os << "<script type=\"application/json\" id=\"tlsreport-b\">"
       << escape_json_for_script(json_b) << "</script>\n";
  }
  os << "<script>" << kScript << "</script>\n</body>\n</html>\n";
  return os.str();
}

}  // namespace tls::obs
