// Internal machinery shared by the batch (obs/analysis.cpp) and streaming
// (obs/streaming.cpp) attribution engines: the causal index, the critical-
// path walk and the flow decomposition. Both engines MUST run the exact
// same walk over the exact same index types — the streaming analyzer's
// byte-identical-to-batch contract (golden-report tests) rests on it. Not
// part of the public obs API; include obs/analysis.hpp instead.
#pragma once

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "obs/analysis.hpp"
#include "obs/trace.hpp"

namespace tls::obs::detail {

// net::FlowKind ordinals as stamped into flow events' `band` field; the
// analysis must not depend on net/ (it also runs on offline CSVs), so the
// two ordinals it interprets are pinned here and guarded by a test.
inline constexpr std::int32_t kModelUpdateKind = 0;
inline constexpr std::int32_t kGradientUpdateKind = 1;

/// Per-chunk trace times gathered from the four chunk/ingress events.
/// Missing stages stay -1 (category filtered out or chunk still in flight
/// at end of trace).
struct ChunkTrace {
  sim::Time enq_at{-1};
  sim::Time deq_at{-1};
  sim::Time arr_at{-1};
  sim::Time del_at{-1};
  /// Ingress-queue wait at the receiver (deliver event's `a` field); the
  /// fan-in wait/serialization split point is arr_at + del_wait.
  sim::Time del_wait{0};
  std::size_t enq_idx = 0;  ///< log position of the enqueue event
  std::size_t deq_idx = 0;  ///< log position of the dequeue event
  std::size_t arr_idx = 0;  ///< log position of the ingress arrival
  std::size_t del_idx = 0;  ///< log position of the ingress delivery
  std::int32_t egress_host = -1;
  std::int32_t ingress_host = -1;
  std::int32_t band = -1;
  std::int64_t bytes = 0;
};

struct FlowTrace {
  std::int32_t src = -1;
  std::int32_t dst = -1;
  std::int32_t job = -1;
  std::int32_t kind = -1;  ///< FlowKind ordinal
  std::int64_t iteration = -1;
  sim::Time start_at{-1};
  sim::Time end_at{-1};
  std::map<std::int64_t, ChunkTrace> chunks;        ///< by chunk index
  std::map<sim::Time, std::int64_t> index_by_deliver;  ///< deliver -> index
  /// Log position of the flow's earliest enqueue event (streaming only:
  /// the dequeue-record retention watermark; ignored by the batch path).
  std::size_t min_enq_idx = static_cast<std::size_t>(-1);
  /// Same for the earliest ingress arrival (deliver-record retention).
  std::size_t min_arr_idx = static_cast<std::size_t>(-1);
};

struct Span {
  sim::Time begin{};
  sim::Time end{};
  std::int32_t actor = -1;  ///< worker or shard id
};

struct Release {
  sim::Time at{};
  sim::Time wait{};
  std::int32_t worker = -1;
};

/// Everything the critical-path walk needs. The batch engine fills it in
/// one pass over the whole log (build_index); the streaming engine grows
/// it per event and prunes entries behind the finalization watermark.
struct Index {
  std::map<std::int64_t, FlowTrace> flows;  ///< by flow id
  /// (job, kind, dst host, end time) -> flow id, last in log order wins.
  std::map<std::tuple<std::int32_t, std::int32_t, std::int32_t, sim::Time>,
           std::int64_t>
      flow_by_end;
  /// (job, worker) -> host, from worker_compute emission sites.
  std::map<std::pair<std::int32_t, std::int32_t>, std::int32_t> worker_host;
  /// (job, host) -> compute/aggregation spans ending at key time.
  std::map<std::tuple<std::int32_t, std::int32_t, sim::Time>, Span>
      compute_by_end;
  std::map<std::tuple<std::int32_t, std::int32_t, sim::Time>, Span>
      agg_by_end;
  /// (job, iteration) -> barrier releases in log order.
  std::map<std::pair<std::int32_t, std::int64_t>, std::vector<Release>>
      releases;
};

/// A queueing interval on the critical path — an egress-qdisc visit
/// (kEgress: window (enq_idx, deq_idx) scanned for foreign chunk_dequeue)
/// or an ingress-port visit (kIngress: window (arr_idx, del_idx) scanned
/// for foreign ingress_deliver) — remembered so the blame pass can scan
/// the exclusive log window (begin_idx, end_idx).
struct QueueVisit {
  BlameSide side = BlameSide::kEgress;
  std::int32_t host = -1;
  std::int64_t victim_flow = 0;
  std::size_t begin_idx = 0;
  std::size_t end_idx = 0;
};

/// Blame accumulator key: (side, host, culprit job, culprit band). Map
/// iteration order is exactly the report's sorted blame order — egress
/// cells first, then ingress.
using BlameKey =
    std::tuple<std::uint8_t, std::int32_t, std::int32_t, std::int32_t>;

/// Converts the accumulated blame map into the report's sorted entries;
/// shared so the batch and streaming engines emit byte-identically.
inline void emit_blame(const std::map<BlameKey, std::int64_t>& blame,
                       IterationReport& r) {
  for (const auto& [bk, bytes] : blame) {
    r.blame.push_back(BlameEntry{static_cast<BlameSide>(std::get<0>(bk)),
                                 std::get<1>(bk), std::get<2>(bk),
                                 std::get<3>(bk), bytes});
  }
}

/// Collects backward-ordered segments; clamps every interval to >= lo and
/// coalesces nothing (renderers aggregate by kind).
class SegmentSink {
 public:
  explicit SegmentSink(sim::Time lo) : lo_(lo) {}

  void add(SegmentKind kind, sim::Time begin, sim::Time end,
           std::int32_t host, std::int64_t flow,
           sim::Time fan_in_wait_end = sim::Time{-1}) {
    begin = std::max(begin, lo_);
    end = std::max(end, lo_);
    if (end <= begin) return;
    if (fan_in_wait_end >= sim::Time{0}) {
      fan_in_wait_end = std::min(std::max(fan_in_wait_end, begin), end);
    }
    segs_.push_back(
        PathSegment{kind, begin, end, host, flow, fan_in_wait_end});
  }

  /// Segments in forward time order.
  std::vector<PathSegment> take() {
    std::reverse(segs_.begin(), segs_.end());
    return std::move(segs_);
  }

 private:
  sim::Time lo_;
  std::vector<PathSegment> segs_;
};

/// Decomposes the critical flow's span [start, end] into the backward
/// chunk chain: the last-delivered chunk's fan-in / wire / egress-queue
/// intervals, then (recursively) the chunk whose delivery admitted it,
/// until the chain reaches the flow start. The transport admits follow-up
/// chunks at the exact delivery instant of earlier ones, so the chain
/// tiles the span with no gaps; anything unattributable (no chunk events,
/// zero-byte flow) lands in `other`.
inline void decompose_flow(const FlowTrace& f, sim::Time lo, SegmentSink& sink,
                           std::vector<QueueVisit>& visits,
                           std::int64_t flow_id) {
  sim::Time cursor = f.end_at;
  // Last chunk: the one delivered at flow end.
  const ChunkTrace* c = nullptr;
  if (!f.index_by_deliver.empty()) {
    auto last = std::prev(f.index_by_deliver.end());
    c = &f.chunks.at(last->second);
  }
  while (c != nullptr && cursor > lo) {
    if (c->arr_at < sim::Time{0} || c->deq_at < sim::Time{0} ||
        c->enq_at < sim::Time{0} || c->del_at < sim::Time{0}) {
      break;  // partial chunk record; leave the remainder to `other`
    }
    sink.add(SegmentKind::kFanIn, c->arr_at, cursor, f.dst, flow_id,
             c->arr_at + c->del_wait);
    sink.add(SegmentKind::kSerialization, c->deq_at, c->arr_at, f.src,
             flow_id);
    sink.add(SegmentKind::kEgressQueue, c->enq_at, c->deq_at, f.src, flow_id);
    if (c->deq_at > c->enq_at && c->deq_at > lo) {
      visits.push_back(QueueVisit{BlameSide::kEgress, c->egress_host, flow_id,
                                  c->enq_idx, c->deq_idx});
    }
    if (c->del_at > c->arr_at && c->del_at > lo) {
      visits.push_back(QueueVisit{BlameSide::kIngress, c->ingress_host,
                                  flow_id, c->arr_idx, c->del_idx});
    }
    cursor = c->enq_at;
    if (cursor <= f.start_at || cursor <= lo) break;
    // The chunk was admitted by the delivery of an earlier chunk at the
    // same instant; follow it.
    auto it = f.index_by_deliver.find(cursor);
    if (it == f.index_by_deliver.end()) break;
    c = &f.chunks.at(it->second);
  }
  // Gap between flow start and where the chunk chain bottomed out (missing
  // chunk data, truncated trace): unattributable.
  if (cursor > f.start_at) {
    sink.add(SegmentKind::kOther, std::max(f.start_at, lo), cursor, f.src,
             flow_id);
  }
}

/// Walks the backward causal chain for one barrier window [lo, release],
/// alternating transfer and compute links per the PS state machine:
/// model flow <- aggregation <- gradient flow <- worker compute <- model
/// flow of the previous iteration <- ... Every link ends exactly where the
/// next begins (same-instant callbacks in the simulator), so the segments
/// tile the window; when a link cannot be found the remainder is `other`.
inline void walk_critical_path(const Index& ix, std::int32_t job, sim::Time lo,
                               sim::Time release_at, std::int32_t release_host,
                               SegmentSink& sink,
                               std::vector<QueueVisit>& visits) {
  enum class Phase { kModelFlow, kAggregate, kGradientFlow, kCompute };
  Phase phase = Phase::kModelFlow;
  std::int32_t host = release_host;
  sim::Time cursor = release_at;
  // The chain shortens cursor by >= 1 ns per full cycle; the bound only
  // guards against malformed (hand-edited) traces.
  for (int steps = 0; cursor > lo && steps < 1 << 20; ++steps) {
    switch (phase) {
      case Phase::kModelFlow: {
        auto it = ix.flow_by_end.find({job, kModelUpdateKind, host, cursor});
        if (it == ix.flow_by_end.end()) {
          sink.add(SegmentKind::kOther, lo, cursor, host, 0);
          return;
        }
        const FlowTrace& f = ix.flows.at(it->second);
        decompose_flow(f, lo, sink, visits, it->second);
        host = f.src;
        cursor = std::max(f.start_at, lo);
        phase = Phase::kAggregate;
        break;
      }
      case Phase::kAggregate: {
        // Greatest aggregation span at this host ending at or before the
        // flow start; the gap between its end and the flow start is the
        // coordination wait (transmission gate).
        auto it = ix.agg_by_end.upper_bound({job, host, cursor});
        if (it == ix.agg_by_end.begin()) {
          sink.add(SegmentKind::kOther, lo, cursor, host, 0);
          return;
        }
        --it;
        if (std::get<0>(it->first) != job || std::get<1>(it->first) != host) {
          sink.add(SegmentKind::kOther, lo, cursor, host, 0);
          return;
        }
        const Span& agg = it->second;
        sink.add(SegmentKind::kOther, agg.end, cursor, host, 0);
        sink.add(SegmentKind::kCompute, agg.begin, std::min(agg.end, cursor),
                 host, 0);
        cursor = std::max(agg.begin, lo);
        phase = Phase::kGradientFlow;
        break;
      }
      case Phase::kGradientFlow: {
        // Aggregation starts the instant the last gradient lands.
        auto it =
            ix.flow_by_end.find({job, kGradientUpdateKind, host, cursor});
        if (it == ix.flow_by_end.end()) {
          sink.add(SegmentKind::kOther, lo, cursor, host, 0);
          return;
        }
        const FlowTrace& f = ix.flows.at(it->second);
        decompose_flow(f, lo, sink, visits, it->second);
        host = f.src;
        cursor = std::max(f.start_at, lo);
        phase = Phase::kCompute;
        break;
      }
      case Phase::kCompute: {
        // Gradient flows leave at the exact compute-done instant.
        auto it = ix.compute_by_end.find({job, host, cursor});
        if (it == ix.compute_by_end.end()) {
          sink.add(SegmentKind::kOther, lo, cursor, host, 0);
          return;
        }
        const Span& cs = it->second;
        sink.add(SegmentKind::kCompute, cs.begin, cursor, host, 0);
        cursor = std::max(cs.begin, lo);
        // Compute started when the previous iteration's model update
        // finished arriving at this worker host.
        phase = Phase::kModelFlow;
        break;
      }
    }
  }
  if (cursor > lo) sink.add(SegmentKind::kOther, lo, cursor, host, 0);
}

/// Folds the segment list into the per-kind ns totals. Fan-in segments
/// also split at fan_in_wait_end into ingress-queue wait vs receive
/// serialization; the two sub-totals always sum exactly to fan_in_ns.
inline void accumulate(IterationReport& r) {
  for (const PathSegment& s : r.segments) {
    sim::Time len = s.end - s.begin;
    switch (s.kind) {
      case SegmentKind::kCompute: r.compute_ns += len; break;
      case SegmentKind::kEgressQueue: r.egress_queue_ns += len; break;
      case SegmentKind::kSerialization: r.serialization_ns += len; break;
      case SegmentKind::kFanIn: {
        r.fan_in_ns += len;
        // The sink clamps fan_in_wait_end into [begin, end]; a segment
        // built without the split (degraded trace) carries -1 and counts
        // fully as receive serialization.
        sim::Time split = s.fan_in_wait_end >= s.begin ? s.fan_in_wait_end
                                                      : s.begin;
        r.fan_in_wait_ns += split - s.begin;
        r.fan_in_ser_ns += s.end - split;
        break;
      }
      case SegmentKind::kOther: r.other_ns += len; break;
    }
  }
}

/// Builds one IterationReport skeleton (segments + per-kind totals, no
/// blame) for the critical release of (job, iteration); shared verbatim by
/// the batch and streaming engines.
inline IterationReport build_iteration(const Index& ix, std::int32_t job,
                                       std::int64_t iteration,
                                       const std::vector<Release>& rels,
                                       std::vector<QueueVisit>& visits) {
  // Critical worker: largest wait; first in log order breaks ties.
  const Release* crit = &rels.front();
  for (const Release& r : rels) {
    if (r.wait > crit->wait) crit = &r;
  }

  IterationReport r;
  r.job = job;
  r.iteration = iteration;
  r.critical_worker = crit->worker;
  r.release_at = crit->at;
  r.barrier_wait = crit->wait;
  r.enter_at = crit->at - crit->wait;

  std::int32_t worker_host = -1;
  auto wh = ix.worker_host.find({job, crit->worker});
  if (wh != ix.worker_host.end()) worker_host = wh->second;

  SegmentSink sink(r.enter_at);
  if (worker_host >= 0) {
    walk_critical_path(ix, job, r.enter_at, r.release_at, worker_host, sink,
                       visits);
  } else {
    sink.add(SegmentKind::kOther, r.enter_at, r.release_at, -1, 0);
  }
  r.segments = sink.take();
  accumulate(r);
  return r;
}

/// Folds one finalized iteration into its job rollup; shared so the two
/// engines aggregate identically.
inline void fold_into_summary(JobSummary& js, const IterationReport& r) {
  js.job = r.job;
  ++js.iterations;
  js.total_wait_ns += r.barrier_wait;
  js.compute_ns += r.compute_ns;
  js.egress_queue_ns += r.egress_queue_ns;
  js.serialization_ns += r.serialization_ns;
  js.fan_in_ns += r.fan_in_ns;
  js.other_ns += r.other_ns;
  js.fan_in_wait_ns += r.fan_in_wait_ns;
  js.fan_in_ser_ns += r.fan_in_ser_ns;
  for (const BlameEntry& b : r.blame) {
    if (b.side == BlameSide::kEgress) {
      if (b.culprit_job == r.job) {
        js.self_blame_bytes += b.bytes;
      } else {
        js.cross_job_blame_bytes += b.bytes;
      }
    } else {
      if (b.culprit_job == r.job) {
        js.self_ingress_blame_bytes += b.bytes;
      } else {
        js.cross_job_ingress_blame_bytes += b.bytes;
      }
    }
  }
}

}  // namespace tls::obs::detail
