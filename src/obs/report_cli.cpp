#include "obs/report_cli.hpp"

#include <fstream>
#include <string>
#include <vector>

#include "obs/analysis.hpp"
#include "obs/reader.hpp"

namespace tls::obs {

namespace {

constexpr const char* kUsage =
    "usage: tlsreport <trace.csv> [--csv PATH] [--json PATH] [--quiet]\n"
    "       tlsreport --diff <a.csv> <b.csv> [--label-a NAME] "
    "[--label-b NAME]\n"
    "                 [--csv PATH] [--json PATH] [--quiet]\n"
    "\n"
    "Post-hoc straggler attribution from a tlsim trace CSV (--trace-csv):\n"
    "per-iteration critical-path decomposition and contention blame, or an\n"
    "aligned two-run policy diff. Text goes to stdout; --csv/--json write\n"
    "the machine-readable forms.\n";

bool write_file(const std::string& path, const std::string& content,
                std::ostream& err) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    err << "tlsreport: cannot write " << path << "\n";
    return false;
  }
  out << content;
  return true;
}

/// Derives a short run label from a path: basename without extension.
std::string label_from_path(const std::string& path) {
  std::size_t slash = path.find_last_of("/\\");
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  std::size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

}  // namespace

int run_report_cli(int argc, const char* const* argv, std::ostream& out,
                   std::ostream& err) {
  bool diff_mode = false;
  bool quiet = false;
  std::string csv_path;
  std::string json_path;
  std::string label_a;
  std::string label_b;
  std::vector<std::string> inputs;

  auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      err << "tlsreport: " << flag << " requires a value\n" << kUsage;
      return nullptr;
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--diff") {
      diff_mode = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--csv") {
      const char* v = need_value(i, "--csv");
      if (v == nullptr) return 2;
      csv_path = v;
    } else if (arg == "--json") {
      const char* v = need_value(i, "--json");
      if (v == nullptr) return 2;
      json_path = v;
    } else if (arg == "--label-a") {
      const char* v = need_value(i, "--label-a");
      if (v == nullptr) return 2;
      label_a = v;
    } else if (arg == "--label-b") {
      const char* v = need_value(i, "--label-b");
      if (v == nullptr) return 2;
      label_b = v;
    } else if (arg == "--help" || arg == "-h") {
      out << kUsage;
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "tlsreport: unknown flag " << arg << "\n" << kUsage;
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }

  std::size_t expected = diff_mode ? 2u : 1u;
  if (inputs.size() != expected) {
    err << "tlsreport: expected " << expected << " trace CSV path"
        << (expected == 1 ? "" : "s") << ", got " << inputs.size() << "\n"
        << kUsage;
    return 2;
  }

  std::vector<RunReport> reports;
  for (const std::string& path : inputs) {
    std::vector<TraceEvent> events;
    std::string error;
    if (!read_trace_csv_file(path, &events, &error)) {
      err << "tlsreport: " << error << "\n";
      return 2;
    }
    reports.push_back(analyze(events));
  }

  if (diff_mode) {
    if (label_a.empty()) label_a = label_from_path(inputs[0]);
    if (label_b.empty()) label_b = label_from_path(inputs[1]);
    DiffReport d = diff_reports(reports[0], reports[1], label_a, label_b);
    if (!quiet) out << diff_text(d);
    if (!csv_path.empty() && !write_file(csv_path, diff_csv(d), err)) {
      return 2;
    }
    if (!json_path.empty() && !write_file(json_path, diff_json(d), err)) {
      return 2;
    }
    return 0;
  }

  const RunReport& r = reports[0];
  if (!quiet) out << report_text(r);
  if (!csv_path.empty() && !write_file(csv_path, report_csv(r), err)) {
    return 2;
  }
  if (!json_path.empty() && !write_file(json_path, report_json(r), err)) {
    return 2;
  }
  return 0;
}

}  // namespace tls::obs
