#include "obs/report_cli.hpp"

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "obs/analysis.hpp"
#include "obs/html.hpp"
#include "obs/reader.hpp"
#include "obs/streaming.hpp"

namespace tls::obs {

namespace {

constexpr const char* kUsage =
    "usage: tlsreport <trace.csv> [--csv PATH] [--json PATH] [--html PATH]\n"
    "                 [--stream] [--quiet]\n"
    "       tlsreport --follow <trace.csv> --html PATH [--poll-ms N]\n"
    "                 [--max-polls N] [--idle-polls N] [--json PATH] "
    "[--quiet]\n"
    "       tlsreport --diff <a.csv> <b.csv> [--label-a NAME] "
    "[--label-b NAME]\n"
    "                 [--csv PATH] [--json PATH] [--html PATH] [--quiet]\n"
    "\n"
    "Post-hoc straggler attribution from a tlsim trace CSV (--trace-csv):\n"
    "per-iteration critical-path decomposition and contention blame, or an\n"
    "aligned two-run policy diff. Text goes to stdout; --csv/--json write\n"
    "the machine-readable forms and --html a self-contained dashboard.\n"
    "--stream analyzes in bounded memory; --follow tails a growing trace,\n"
    "re-rendering the dashboard as iterations finalize (stops after\n"
    "--max-polls polls or --idle-polls polls without growth; 0 = no "
    "limit).\n";

bool write_file(const std::string& path, const std::string& content,
                std::ostream& err) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    err << "tlsreport: cannot write " << path << "\n";
    return false;
  }
  out << content;
  return true;
}

/// Derives a short run label from a path: basename without extension.
std::string label_from_path(const std::string& path) {
  std::size_t slash = path.find_last_of("/\\");
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  std::size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

bool parse_int(const std::string& text, long* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtol(text.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

struct CliConfig {
  bool diff_mode = false;
  bool follow = false;
  bool stream = false;
  bool quiet = false;
  std::string csv_path;
  std::string json_path;
  std::string html_path;
  std::string label_a;
  std::string label_b;
  long poll_ms = 500;
  long max_polls = 0;   // 0 = unlimited
  long idle_polls = 0;  // 0 = never stop on idle
  std::vector<std::string> inputs;
};

/// Tails `path` with a StreamingAnalyzer, re-rendering the dashboard
/// whenever a poll delivered new events. Returns the exit code.
int run_follow(const CliConfig& cfg, const ReportCliHooks& hooks,
               std::ostream& out, std::ostream& err) {
  const std::string& path = cfg.inputs[0];
  StreamingAnalyzer analyzer;
  TraceCsvTail tail(path);
  HtmlOptions html_opts;
  html_opts.title = "tlsreport: " + label_from_path(path);
  html_opts.label_a = label_from_path(path);
  html_opts.refresh_seconds =
      static_cast<int>(cfg.poll_ms >= 1000 ? cfg.poll_ms / 1000 : 1);

  long polls = 0;
  long idle = 0;
  std::uint64_t seen = 0;
  for (;;) {
    std::string error;
    bool ok =
        tail.poll([&analyzer](const TraceEvent& e) { analyzer.ingest(e); },
                  &error);
    if (!ok) {
      // "cannot open" just means the writer has not created the file yet;
      // anything else is a malformed line and will never get better.
      if (error.find("cannot open") == std::string::npos) {
        err << "tlsreport: " << error << "\n";
        return 2;
      }
    }
    ++polls;
    if (tail.events_read() != seen) {
      seen = tail.events_read();
      idle = 0;
      analyzer.set_health(tail.health());
      RunReport snap = analyzer.snapshot();
      if (!write_file(cfg.html_path, report_html(report_json(snap), "",
                                                 html_opts),
                      err)) {
        return 2;
      }
    } else {
      ++idle;
    }
    if (cfg.max_polls > 0 && polls >= cfg.max_polls) break;
    if (cfg.idle_polls > 0 && idle >= cfg.idle_polls) break;
    if (hooks.sleep_ms) {
      hooks.sleep_ms(static_cast<int>(cfg.poll_ms));
    }
  }

  analyzer.set_health(tail.health());
  RunReport final_report = analyzer.finish();
  HtmlOptions final_opts = html_opts;
  final_opts.refresh_seconds = 0;  // the run is over; stop reloading
  if (!write_file(cfg.html_path,
                  report_html(report_json(final_report), "", final_opts),
                  err)) {
    return 2;
  }
  if (!cfg.quiet) out << report_text(final_report);
  if (!cfg.json_path.empty() &&
      !write_file(cfg.json_path, report_json(final_report), err)) {
    return 2;
  }
  return 0;
}

}  // namespace

int run_report_cli(int argc, const char* const* argv, std::ostream& out,
                   std::ostream& err) {
  return run_report_cli(argc, argv, out, err, ReportCliHooks{});
}

int run_report_cli(int argc, const char* const* argv, std::ostream& out,
                   std::ostream& err, const ReportCliHooks& hooks) {
  CliConfig cfg;

  auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      err << "tlsreport: " << flag << " requires a value\n" << kUsage;
      return nullptr;
    }
    return argv[++i];
  };
  auto need_int = [&](int& i, const char* flag, long* slot) -> bool {
    const char* v = need_value(i, flag);
    if (v == nullptr) return false;
    if (!parse_int(v, slot) || *slot < 0) {
      err << "tlsreport: " << flag << " expects a non-negative integer, got '"
          << v << "'\n"
          << kUsage;
      return false;
    }
    return true;
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--diff") {
      cfg.diff_mode = true;
    } else if (arg == "--follow") {
      cfg.follow = true;
    } else if (arg == "--stream") {
      cfg.stream = true;
    } else if (arg == "--quiet") {
      cfg.quiet = true;
    } else if (arg == "--csv") {
      const char* v = need_value(i, "--csv");
      if (v == nullptr) return 2;
      cfg.csv_path = v;
    } else if (arg == "--json") {
      const char* v = need_value(i, "--json");
      if (v == nullptr) return 2;
      cfg.json_path = v;
    } else if (arg == "--html") {
      const char* v = need_value(i, "--html");
      if (v == nullptr) return 2;
      cfg.html_path = v;
    } else if (arg == "--label-a") {
      const char* v = need_value(i, "--label-a");
      if (v == nullptr) return 2;
      cfg.label_a = v;
    } else if (arg == "--label-b") {
      const char* v = need_value(i, "--label-b");
      if (v == nullptr) return 2;
      cfg.label_b = v;
    } else if (arg == "--poll-ms") {
      if (!need_int(i, "--poll-ms", &cfg.poll_ms)) return 2;
    } else if (arg == "--max-polls") {
      if (!need_int(i, "--max-polls", &cfg.max_polls)) return 2;
    } else if (arg == "--idle-polls") {
      if (!need_int(i, "--idle-polls", &cfg.idle_polls)) return 2;
    } else if (arg == "--help" || arg == "-h") {
      out << kUsage;
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "tlsreport: unknown flag " << arg << "\n" << kUsage;
      return 2;
    } else {
      cfg.inputs.push_back(arg);
    }
  }

  if (cfg.follow && cfg.diff_mode) {
    err << "tlsreport: --follow and --diff are mutually exclusive\n"
        << kUsage;
    return 2;
  }

  std::size_t expected = cfg.diff_mode ? 2u : 1u;
  if (cfg.inputs.size() != expected) {
    err << "tlsreport: expected " << expected << " trace CSV path"
        << (expected == 1 ? "" : "s") << ", got " << cfg.inputs.size() << "\n"
        << kUsage;
    return 2;
  }

  if (cfg.follow) {
    if (cfg.html_path.empty()) {
      err << "tlsreport: --follow requires --html PATH (the live "
             "dashboard)\n"
          << kUsage;
      return 2;
    }
    return run_follow(cfg, hooks, out, err);
  }

  std::vector<RunReport> reports;
  for (const std::string& path : cfg.inputs) {
    std::string error;
    if (cfg.stream) {
      // Bounded memory: events flow straight from the chunked reader into
      // the streaming engine, never materializing the full vector.
      StreamingAnalyzer analyzer;
      TraceHealth health;
      if (!for_each_trace_csv_event(
              path,
              [&analyzer](const TraceEvent& e) { analyzer.ingest(e); },
              &health, &error)) {
        err << "tlsreport: " << error << "\n";
        return 2;
      }
      analyzer.set_health(health);
      reports.push_back(analyzer.finish());
    } else {
      std::vector<TraceEvent> events;
      TraceHealth health;
      if (!read_trace_csv_file(path, &events, &health, &error)) {
        err << "tlsreport: " << error << "\n";
        return 2;
      }
      RunReport r = analyze(events);
      r.health = health;
      reports.push_back(std::move(r));
    }
  }

  if (cfg.diff_mode) {
    if (cfg.label_a.empty()) cfg.label_a = label_from_path(cfg.inputs[0]);
    if (cfg.label_b.empty()) cfg.label_b = label_from_path(cfg.inputs[1]);
    DiffReport d =
        diff_reports(reports[0], reports[1], cfg.label_a, cfg.label_b);
    if (!cfg.quiet) out << diff_text(d);
    if (!cfg.csv_path.empty() &&
        !write_file(cfg.csv_path, diff_csv(d), err)) {
      return 2;
    }
    if (!cfg.json_path.empty() &&
        !write_file(cfg.json_path, diff_json(d), err)) {
      return 2;
    }
    if (!cfg.html_path.empty()) {
      HtmlOptions opts;
      opts.title = "tlsreport diff: " + cfg.label_a + " vs " + cfg.label_b;
      opts.label_a = cfg.label_a;
      opts.label_b = cfg.label_b;
      if (!write_file(cfg.html_path,
                      report_html(report_json(reports[0]),
                                  report_json(reports[1]), opts),
                      err)) {
        return 2;
      }
    }
    return 0;
  }

  const RunReport& r = reports[0];
  if (!cfg.quiet) out << report_text(r);
  if (!cfg.csv_path.empty() && !write_file(cfg.csv_path, report_csv(r), err)) {
    return 2;
  }
  if (!cfg.json_path.empty() &&
      !write_file(cfg.json_path, report_json(r), err)) {
    return 2;
  }
  if (!cfg.html_path.empty()) {
    HtmlOptions opts;
    opts.title = "tlsreport: " + label_from_path(cfg.inputs[0]);
    opts.label_a = label_from_path(cfg.inputs[0]);
    if (!write_file(cfg.html_path, report_html(report_json(r), "", opts),
                    err)) {
      return 2;
    }
  }
  return 0;
}

}  // namespace tls::obs
