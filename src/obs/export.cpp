#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

namespace tls::obs {

namespace {

// Synthetic process ids grouping Perfetto tracks. Host NIC tracks live
// under kNetPid (tid = host id), per-job tracks under kJobsPid (tid = job
// id), controller activity under kCtrlPid.
constexpr int kNetPid = 1;
constexpr int kJobsPid = 2;
constexpr int kCtrlPid = 3;

/// Nanoseconds rendered as microseconds with exactly three decimals —
/// integer math only, so the same event always produces the same bytes.
std::string ts_us(sim::Time t) {
  std::int64_t ns = sim::to_nanos(t);
  if (ns < 0) ns = 0;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

struct Track {
  int pid = kNetPid;
  int tid = 0;
};

/// Which Perfetto track an event renders on.
Track track_for(const TraceEvent& e) {
  switch (e.kind) {
    case EventKind::kChunkEnqueue:
    case EventKind::kChunkDequeue:
    case EventKind::kBandService:
    case EventKind::kHtbGreen:
    case EventKind::kHtbYellow:
    case EventKind::kOverlimit:
    case EventKind::kIngressArrive:
    case EventKind::kIngressDeliver:
      return Track{kNetPid, e.host < 0 ? 0 : e.host};
    case EventKind::kBarrierEnter:
    case EventKind::kBarrierRelease:
    case EventKind::kStragglerLag:
    case EventKind::kWorkerCompute:
    case EventKind::kPsAggregate:
      return Track{kJobsPid, e.job < 0 ? 0 : e.job};
    case EventKind::kFlowStart:
    case EventKind::kFlowEnd:
      if (e.job >= 0) return Track{kJobsPid, e.job};
      return Track{kNetPid, e.host < 0 ? 0 : e.host};
    case EventKind::kRotation:
    case EventKind::kBandAssign:
      return Track{kCtrlPid, 0};
    case EventKind::kGaugeSample:
      if (e.job >= 0) return Track{kJobsPid, e.job};
      return Track{kNetPid, e.host < 0 ? 0 : e.host};
  }
  return Track{kCtrlPid, 0};
}

void append_common(std::ostringstream& os, const TraceEvent& e,
                   const Track& t, const char* ph) {
  os << "{\"name\":\"" << to_string(e.kind) << "\",\"cat\":\""
     << to_string(e.cat) << "\",\"ph\":\"" << ph << "\",\"ts\":" << ts_us(e.at)
     << ",\"pid\":" << t.pid << ",\"tid\":" << t.tid;
}

void append_args(std::ostringstream& os, const TraceEvent& e) {
  os << ",\"args\":{";
  bool first = true;
  auto arg = [&](const char* key, std::int64_t v) {
    if (!first) os << ',';
    first = false;
    os << '"' << key << "\":" << v;
  };
  // Flow events reuse the band field for the FlowKind ordinal; render it
  // under its real meaning instead of a misleading "band".
  bool flow_event =
      e.kind == EventKind::kFlowStart || e.kind == EventKind::kFlowEnd;
  if (e.band >= 0 && !flow_event) arg("band", e.band);
  if (e.flow != 0) arg("flow", e.flow);
  if (e.bytes != 0) arg("bytes", e.bytes);
  switch (e.kind) {
    case EventKind::kChunkDequeue:
      arg("index", e.b);
      arg("queue_wait_ns", e.a);
      break;
    case EventKind::kChunkEnqueue:
    case EventKind::kIngressArrive:
      arg("index", e.b);
      break;
    case EventKind::kIngressDeliver:
      arg("index", e.b);
      arg("fan_in_wait_ns", e.a);
      break;
    case EventKind::kFlowStart:
    case EventKind::kFlowEnd:
      arg("kind", e.band);
      arg("src", e.host);
      arg("dst", e.a);
      arg("iteration", e.b);
      break;
    case EventKind::kWorkerCompute:
      arg("worker", e.a);
      arg("iteration", e.b);
      break;
    case EventKind::kPsAggregate:
      arg("shard", e.a);
      arg("iteration", e.b);
      break;
    case EventKind::kOverlimit:
      arg("retry_at_ns", e.a);
      break;
    case EventKind::kRotation:
      arg("offset", e.a);
      break;
    case EventKind::kBandAssign:
      arg("job", e.job);
      break;
    case EventKind::kBarrierEnter:
    case EventKind::kBarrierRelease:
      arg("worker", e.a);
      arg("iteration", e.b);
      break;
    case EventKind::kStragglerLag:
      arg("iteration", e.a);
      arg("lag_ns", e.b);
      break;
    case EventKind::kGaugeSample:
      arg("value", e.a);
      break;
    default:
      break;
  }
  os << '}';
}

void append_metadata(std::ostringstream& os, int pid, int tid,
                     const char* which, const std::string& name, bool* first) {
  if (!*first) os << ",\n";
  *first = false;
  os << "{\"name\":\"" << which << "\",\"ph\":\"M\",\"pid\":" << pid;
  if (tid >= 0) os << ",\"tid\":" << tid;
  os << ",\"args\":{\"name\":\"" << name << "\"}}";
}

}  // namespace

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kChunkEnqueue: return "chunk_enqueue";
    case EventKind::kChunkDequeue: return "chunk_dequeue";
    case EventKind::kBandService: return "band_service";
    case EventKind::kHtbGreen: return "htb_green";
    case EventKind::kHtbYellow: return "htb_yellow";
    case EventKind::kOverlimit: return "overlimit";
    case EventKind::kRotation: return "rotation";
    case EventKind::kBandAssign: return "band_assign";
    case EventKind::kBarrierEnter: return "barrier_enter";
    case EventKind::kBarrierRelease: return "barrier_release";
    case EventKind::kStragglerLag: return "straggler_lag";
    case EventKind::kGaugeSample: return "gauge_sample";
    case EventKind::kFlowStart: return "flow_start";
    case EventKind::kFlowEnd: return "flow_end";
    case EventKind::kIngressArrive: return "ingress_arrive";
    case EventKind::kIngressDeliver: return "ingress_deliver";
    case EventKind::kWorkerCompute: return "worker_compute";
    case EventKind::kPsAggregate: return "ps_aggregate";
  }
  return "?";
}

std::string chrome_trace_json(const Tracer& tracer) {
  const std::vector<TraceEvent>& events = tracer.events();

  // Collect the tracks actually used so metadata stays minimal and ordered.
  std::vector<int> hosts;
  std::vector<int> jobs;
  bool ctrl = false;
  for (const TraceEvent& e : events) {
    Track t = track_for(e);
    if (t.pid == kNetPid) {
      hosts.push_back(t.tid);
    } else if (t.pid == kJobsPid) {
      jobs.push_back(t.tid);
    } else {
      ctrl = true;
    }
  }
  auto uniq = [](std::vector<int>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  uniq(hosts);
  uniq(jobs);

  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  bool first = true;
  if (!hosts.empty()) {
    append_metadata(os, kNetPid, -1, "process_name", "net", &first);
    for (int h : hosts) {
      append_metadata(os, kNetPid, h, "thread_name",
                      "host " + std::to_string(h) + " nic", &first);
    }
  }
  if (!jobs.empty()) {
    append_metadata(os, kJobsPid, -1, "process_name", "jobs", &first);
    for (int j : jobs) {
      append_metadata(os, kJobsPid, j, "thread_name",
                      "job " + std::to_string(j), &first);
    }
  }
  if (ctrl) {
    append_metadata(os, kCtrlPid, -1, "process_name", "tensorlights", &first);
    append_metadata(os, kCtrlPid, 0, "thread_name", "controller", &first);
  }

  for (const TraceEvent& e : events) {
    if (!first) os << ",\n";
    first = false;
    Track t = track_for(e);
    if (e.kind == EventKind::kBarrierRelease && e.dur > sim::Time{0}) {
      // Render the barrier wait as a duration span ending at release time.
      TraceEvent span = e;
      span.at = e.at - e.dur;
      append_common(os, span, t, "X");
      os << ",\"dur\":" << ts_us(e.dur);
      append_args(os, e);
      os << '}';
      continue;
    }
    if ((e.kind == EventKind::kWorkerCompute ||
         e.kind == EventKind::kPsAggregate) &&
        e.dur > sim::Time{0}) {
      // Compute spans are stamped at their start with the duration known.
      append_common(os, e, t, "X");
      os << ",\"dur\":" << ts_us(e.dur);
      append_args(os, e);
      os << '}';
      continue;
    }
    append_common(os, e, t, "i");
    os << ",\"s\":\"t\"";
    append_args(os, e);
    os << '}';
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

std::string trace_csv(const Tracer& tracer) {
  std::ostringstream os;
  os << "at_ns,kind,cat,host,job,band,flow,bytes,a,b,dur_ns\n";
  for (const TraceEvent& e : tracer.events()) {
    os << e.at << ',' << to_string(e.kind) << ',' << to_string(e.cat) << ','
       << e.host << ',' << e.job << ',' << e.band << ',' << e.flow << ','
       << e.bytes << ',' << e.a << ',' << e.b << ',' << e.dur << '\n';
  }
  // Capture-health trailer: omitted entirely for complete traces, so the
  // file format (and every golden) is unchanged unless events went missing.
  const TraceHealth& h = tracer.health();
  if (!h.complete()) {
    auto emit = [&os](const char* which, std::uint64_t total,
                      const std::uint64_t (&by_cat)[kNumCats]) {
      if (total == 0) return;
      os << "#health," << which << ",total," << total << '\n';
      for (std::uint32_t bit = 1; bit <= kAllCats; bit <<= 1) {
        Cat cat = static_cast<Cat>(bit);
        std::uint64_t n = by_cat[cat_index(cat)];
        if (n != 0) os << "#health," << which << ',' << to_string(cat) << ','
                       << n << '\n';
      }
    };
    emit("dropped", h.dropped_total, h.dropped_by_cat);
    emit("sampled", h.sampled_out_total, h.sampled_out_by_cat);
  }
  return os.str();
}

}  // namespace tls::obs
