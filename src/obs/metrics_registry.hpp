// tls::obs — named metrics sampled on the simulation clock.
//
// A Registry owns counters, gauges, and log2-bucketed histograms keyed by
// (name, host, job, band), plus a long-format timeseries of periodic
// samples. Everything lives in std::map so export order — and therefore the
// bytes of the CSV files — is deterministic. Values are updated from trace
// emission sites (obs::Tracer) and from periodic sampling timers driven by
// sim::PeriodicTimer; there is no host-clock anywhere in this module.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "simcore/time.hpp"

namespace tls::obs {

/// Identifies one instrument: a metric name plus the entity it describes.
/// -1 in host/job/band means "not applicable" for that dimension.
struct MetricKey {
  std::string name;
  std::int32_t host = -1;
  std::int32_t job = -1;
  std::int32_t band = -1;

  bool operator<(const MetricKey& o) const {
    if (name != o.name) return name < o.name;
    if (host != o.host) return host < o.host;
    if (job != o.job) return job < o.job;
    return band < o.band;
  }
  bool operator==(const MetricKey& o) const {
    return name == o.name && host == o.host && job == o.job && band == o.band;
  }
};

/// Monotonically increasing integer metric.
class Counter {
 public:
  void add(std::int64_t delta) { value_ += delta; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Last-write-wins floating-point metric.
class Gauge {
 public:
  void set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Power-of-two bucketed histogram for non-negative integer samples
/// (durations in ns, sizes in bytes). Bucket i counts samples in
/// [2^(i-1), 2^i); bucket 0 counts zeros and ones. Fixed bucket count so
/// two histograms merge bucket-by-bucket without rebinning.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::int64_t sample);

  /// Adds every bucket, count, sum, and min/max of `other` into *this.
  /// Used when aggregating per-run registries into a sweep-level view.
  void merge(const Histogram& other);

  std::int64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  std::int64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  std::int64_t bucket(int i) const { return buckets_[i]; }

  /// Smallest value v such that at least `q` (in [0,1]) of samples are <= v,
  /// resolved to the upper edge of the containing bucket.
  std::int64_t quantile_upper_bound(double q) const;

  /// Rank-interpolated quantile: locates the containing bucket like
  /// quantile_upper_bound, then interpolates linearly by rank across the
  /// bucket's span (edges clamped to the observed min/max), so quantile
  /// estimates move smoothly instead of jumping between power-of-two
  /// edges. Integer arithmetic throughout — the result is byte-stable.
  std::int64_t quantile(double q) const;

 private:
  std::int64_t buckets_[kBuckets] = {};
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// One periodic sample in the long-format timeseries.
struct SamplePoint {
  sim::Time at{};
  MetricKey key;
  double value = 0.0;
};

/// Deterministic container for a simulation's metrics. Instruments are
/// created on first touch; lookups return stable references (std::map never
/// invalidates on insert).
class Registry {
 public:
  Counter& counter(const std::string& name, std::int32_t host,
                   std::int32_t job, std::int32_t band);
  Gauge& gauge(const std::string& name, std::int32_t host, std::int32_t job,
               std::int32_t band);
  Histogram& histogram(const std::string& name, std::int32_t host,
                       std::int32_t job, std::int32_t band);

  /// Appends a timeseries point (periodic sampling on the sim clock).
  void record(sim::Time at, const std::string& name, std::int32_t host,
              std::int32_t job, std::int32_t band, double value);

  const std::map<MetricKey, Counter>& counters() const { return counters_; }
  const std::map<MetricKey, Gauge>& gauges() const { return gauges_; }
  const std::map<MetricKey, Histogram>& histograms() const {
    return histograms_;
  }
  const std::vector<SamplePoint>& samples() const { return samples_; }

  /// Tidy long-format CSV: one row per final counter/gauge/histogram
  /// summary and one per timeseries point. Columns:
  ///   t_ns,metric,kind,host,job,band,value
  /// Summaries use t_ns = `end` (the final simulation time); histogram
  /// summaries expand to count/sum/min/max/p50/p95/p99 rows (quantiles
  /// rank-interpolated within their log2 bucket). Byte-identical across
  /// runs by construction (map order + fixed numeric formatting).
  std::string timeseries_csv(sim::Time end) const;

 private:
  std::map<MetricKey, Counter> counters_;
  std::map<MetricKey, Gauge> gauges_;
  std::map<MetricKey, Histogram> histograms_;
  std::vector<SamplePoint> samples_;
};

}  // namespace tls::obs
