// tls::obs::StreamingAnalyzer — incremental straggler attribution.
//
// The batch engine (obs::analyze) buffers a complete trace and walks it
// post-mortem; at Fig. 5a scale that means holding millions of events for
// a report that only ever inspects a sliding window of them. This class
// is the same attribution engine restructured as a consumer: events are
// ingested one at a time (from a live Tracer or a tailed trace CSV), each
// (job, iteration) is finalized the moment its barrier fully releases and
// the stream moves past the release instant, and everything behind the
// finalization watermark is retired — so peak retention is proportional
// to the in-flight window (roughly two iterations per job), independent
// of trace length.
//
// Equivalence contract: on any trace the simulator emits (events appended
// in nondecreasing time order), finish() returns a RunReport whose three
// renderings are byte-identical to obs::analyze on the same events. The
// golden-report tests witness this — the in-process tlsim report path
// runs on this engine while tlsreport's offline default stays batch, and
// CI compares the two outputs. The walk itself is shared code
// (obs/analysis_detail.hpp); what this class adds is the finalization
// trigger and the retirement rules:
//
//  * Finalization trigger: count kBarrierEnter per (job, iteration); when
//    the release count matches and an event with a strictly later
//    timestamp arrives, every index entry the walk could reference is
//    final (time is nondecreasing), so the iteration is built and emitted.
//    Iterations whose enters were never seen (filtered trace) finalize at
//    finish(), exactly like batch.
//
//  * Retirement: after finalizing (job j, iteration N) the per-job
//    watermark W_j = min release time of N. Any future walk for j starts
//    at lo = enter(N+1) >= W_j, and every index lookup happens at
//    cursor > lo, so entries keyed strictly below W_j are unreachable —
//    flows (once ended), flow_by_end / compute_by_end / agg_by_end
//    entries are erased below it. (The kAggregate upper_bound probe can
//    land on an erased-older entry, but batch and streaming then emit the
//    identical clamped `other` segment — see walk_critical_path.)
//    Dequeue records for the egress blame pass are kept per host and
//    pruned by log index: the minimum enqueue index over still-live flows
//    bounds every future blame window. The ingress delivery lane is the
//    mirror image — per-receiving-host kIngressDeliver records pruned by
//    the minimum ingress-arrival index over still-live flows — so it too
//    stays live exactly until the last blame window that could reference
//    it closes. Events with job < 0 (background traffic) retire under the
//    minimum watermark across jobs.
//
//  * Blame without the log: batch scans the raw event window
//    (enq_idx, deq_idx) for foreign kChunkDequeue at the same host, and
//    (arr_idx, del_idx) for foreign kIngressDeliver at the receiver; the
//    streaming engine keeps exactly those records — per-host, in log
//    order — and binary-searches the same windows, yielding identical
//    bytes on both blame sides.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "obs/analysis.hpp"
#include "obs/analysis_detail.hpp"
#include "obs/trace.hpp"

namespace tls::obs {

struct StreamingOptions {
  /// Soft retention budget in records (0 = unlimited). Purely diagnostic:
  /// budget_exceeded() reports whether retention ever crossed it; the
  /// analyzer never trades correctness for the budget.
  std::size_t retention_budget = 0;
};

class StreamingAnalyzer {
 public:
  explicit StreamingAnalyzer(StreamingOptions options = {});

  StreamingAnalyzer(const StreamingAnalyzer&) = delete;
  StreamingAnalyzer& operator=(const StreamingAnalyzer&) = delete;

  /// Consumes the next trace event. Events must arrive in nondecreasing
  /// time order (the simulator's append order; out_of_order() reports
  /// violations, under which equivalence to batch is no longer promised).
  void ingest(const TraceEvent& e);

  /// Attaches the capture-health record carried into the final report
  /// (tracer drops / sampling exclusions).
  void set_health(const TraceHealth& health) { health_ = health; }

  /// Finalizes every pending iteration and returns the complete report.
  /// Call once, after the last ingest; rendering finish() of an unsampled
  /// trace is byte-identical to obs::analyze of the same events.
  RunReport finish();

  /// Report of everything finalized so far, without disturbing pending
  /// state — the live dashboard renders these mid-stream.
  RunReport snapshot() const;

  /// Records currently retained across all index structures (flows,
  /// chunks, span keys, dequeue records, pending releases).
  std::size_t retained_records() const { return retained_; }
  /// High-water mark of retained_records() over the whole stream.
  std::size_t peak_retained_records() const { return peak_retained_; }
  /// Iterations finalized so far.
  std::int64_t finalized_iterations() const {
    return static_cast<std::int64_t>(finalized_.size());
  }
  /// Events ingested so far.
  std::uint64_t ingested_events() const { return next_idx_; }
  /// True when retention ever exceeded options.retention_budget.
  bool budget_exceeded() const { return budget_exceeded_; }
  /// True when an event arrived with a timestamp before its predecessor.
  bool out_of_order() const { return out_of_order_; }

 private:
  /// One kChunkDequeue (egress lane) or kIngressDeliver (ingress lane)
  /// record, the blame pass's working set.
  struct PortRec {
    std::size_t idx = 0;  ///< global log position
    std::int64_t flow = 0;
    std::int32_t job = -1;
    std::int32_t band = -1;
    std::int64_t bytes = 0;
  };

  void finalize_ripe(sim::Time now);
  void finalize(std::int32_t job, std::int64_t iteration);
  void prune_job(std::int32_t job, sim::Time watermark);
  void prune_port_records();
  void note_retention(std::ptrdiff_t delta);

  StreamingOptions options_;
  detail::Index ix_;
  TraceHealth health_;

  /// Per-host kChunkDequeue records in log order (egress blame windows).
  std::map<std::int32_t, std::deque<PortRec>> deq_by_host_;
  /// Per-receiving-host kIngressDeliver records in log order (ingress
  /// blame windows).
  std::map<std::int32_t, std::deque<PortRec>> del_by_host_;
  /// Flow ids per job, so per-job pruning never scans foreign flows.
  std::map<std::int32_t, std::vector<std::int64_t>> flows_by_job_;
  /// kBarrierEnter count per (job, iteration).
  std::map<std::pair<std::int32_t, std::int64_t>, std::int64_t> enters_;
  /// Iterations whose releases all arrived, keyed to the last release
  /// instant; finalized when the stream passes that time.
  std::map<std::pair<std::int32_t, std::int64_t>, sim::Time> ripe_;
  /// Per-job retirement watermark (min release time of the last finalized
  /// iteration); kMinWatermark until the job first finalizes.
  std::map<std::int32_t, sim::Time> watermark_;

  std::vector<IterationReport> finalized_;
  std::map<std::int32_t, JobSummary> jobs_;

  std::size_t next_idx_ = 0;
  sim::Time last_at_{};
  /// Min deadline over ripe_ (kTimeMax when none): one compare per event.
  sim::Time next_deadline_{sim::kTimeMax};
  std::size_t retained_ = 0;
  std::size_t peak_retained_ = 0;
  bool budget_exceeded_ = false;
  bool out_of_order_ = false;
  bool finished_ = false;
};

/// Convenience: streams `events` through a fresh analyzer. Exists mostly
/// for tests and benches comparing against obs::analyze.
RunReport analyze_streaming(const std::vector<TraceEvent>& events);

}  // namespace tls::obs
