// Simulation time: a signed 64-bit count of nanoseconds since experiment
// start. Integer time keeps event ordering exact and experiments bit-for-bit
// reproducible across platforms; doubles are used only for rates.
//
// Time is a strong type (see simcore/strong.hpp): it never mixes with byte
// counts or bare integers, construction from a raw nanosecond count is
// explicit, and the only blessed ways in and out are the helpers below
// (from_seconds/to_seconds/...) plus the unit constants. Code elsewhere
// that reaches for Time{...}.raw() is flagged by the tls_lint `unit-escape`
// rule.
#pragma once

#include <cstdint>
#include <string>

#include "simcore/strong.hpp"

namespace tls::sim {

/// Simulation timestamp or duration, in integer nanoseconds.
class Time : public StrongQuantity<Time, std::int64_t> {
 public:
  using StrongQuantity::StrongQuantity;
};

inline constexpr Time kNanosecond{1};
inline constexpr Time kMicrosecond{1'000};
inline constexpr Time kMillisecond{1'000'000};
inline constexpr Time kSecond{1'000'000'000};

/// Largest representable time; used as "never".
inline constexpr Time kTimeMax{INT64_MAX};

/// Smallest representable time; used as "before everything".
inline constexpr Time kTimeMin{INT64_MIN};

/// Converts a duration in (fractional) seconds to a Time, rounding to the
/// nearest nanosecond. Negative durations are preserved.
constexpr Time from_seconds(double s) {
  return Time{static_cast<std::int64_t>(
      s * static_cast<double>(kSecond.raw()) + (s >= 0 ? 0.5 : -0.5))};
}

/// Converts a duration in (fractional) milliseconds to a Time.
constexpr Time from_millis(double ms) { return from_seconds(ms / 1e3); }

/// Converts a duration in (fractional) microseconds to a Time.
constexpr Time from_micros(double us) { return from_seconds(us / 1e6); }

/// Converts a whole number of nanoseconds to a Time; the named counterpart
/// of the explicit constructor for call sites fed by parsed/serialized
/// integers.
constexpr Time from_nanos(std::int64_t ns) { return Time{ns}; }

/// Converts a Time to whole nanoseconds (for serialization boundaries).
constexpr std::int64_t to_nanos(Time t) { return t.raw(); }

/// Converts a Time to fractional seconds (for reporting and rate math).
constexpr double to_seconds(Time t) {
  return static_cast<double>(t.raw()) / static_cast<double>(kSecond.raw());
}

/// Converts a Time to fractional milliseconds.
constexpr double to_millis(Time t) {
  return static_cast<double>(t.raw()) /
         static_cast<double>(kMillisecond.raw());
}

/// Converts a Time to fractional microseconds.
constexpr double to_micros(Time t) {
  return static_cast<double>(t.raw()) /
         static_cast<double>(kMicrosecond.raw());
}

/// Renders a time as a compact human-readable string, e.g. "1.250s",
/// "37.5ms", "800ns". Chooses the coarsest unit that keeps the value >= 1.
std::string format_time(Time t);

}  // namespace tls::sim
