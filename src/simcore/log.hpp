// Minimal leveled logger for the simulator.
//
// Logging is off by default (kWarn) so experiment binaries stay quiet; tests
// and examples raise the level explicitly. Messages are timestamped with the
// *simulation* clock when a Simulator is attached, which is what one wants
// when debugging event interleavings.
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "simcore/time.hpp"

namespace tls::sim {

class Simulator;

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Process-wide logger configuration.
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static LogLevel level();
  static void set_level(LogLevel level);

  /// Attaches the simulator whose clock timestamps messages (nullptr to
  /// detach; wall-clock-free "t=?" prefix is then used).
  static void attach_clock(const Simulator* sim);

  /// Replaces the output sink (default writes to stderr). Pass nullptr to
  /// restore the default.
  static void set_sink(Sink sink);

  /// Emits a message if `level` is enabled.
  static void write(LogLevel level, const std::string& msg);

  static bool enabled(LogLevel l) { return l >= level(); }

  static const char* level_name(LogLevel l);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace tls::sim

// Streaming log macros; the stream expression is not evaluated when the
// level is disabled.
#define TLS_LOG(lvl)                                  \
  if (!::tls::sim::Log::enabled(lvl)) {               \
  } else                                              \
    ::tls::sim::detail::LogLine(lvl)

#define TLS_TRACE TLS_LOG(::tls::sim::LogLevel::kTrace)
#define TLS_DEBUG TLS_LOG(::tls::sim::LogLevel::kDebug)
#define TLS_INFO TLS_LOG(::tls::sim::LogLevel::kInfo)
#define TLS_WARN TLS_LOG(::tls::sim::LogLevel::kWarn)
#define TLS_ERROR TLS_LOG(::tls::sim::LogLevel::kError)
