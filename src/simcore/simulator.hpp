// The discrete-event simulator: a clock plus an event queue plus run loops.
//
// All simulated components hold a Simulator& and schedule work through it.
// The simulator never advances time except by draining events, so every
// timing decision is explicit in some component's schedule() call.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "simcore/event_queue.hpp"
#include "simcore/rng.hpp"
#include "simcore/time.hpp"

namespace tls::obs {
class Tracer;
}  // namespace tls::obs

namespace tls::sim {

/// Discrete-event simulation driver.
class Simulator {
 public:
  /// `seed` feeds the root Rng; all component streams fork from it.
  explicit Simulator(std::uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  Time now() const { return now_; }

  /// Schedules `cb` to run `delay` from now (delay >= 0).
  EventId schedule_after(Time delay, EventQueue::Callback cb);

  /// Schedules `cb` at absolute time `at` (at >= now()).
  EventId schedule_at(Time at, EventQueue::Callback cb);

  /// Cancels a pending event; see EventQueue::cancel.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the event queue is empty or `until` is reached, whichever
  /// comes first. Events scheduled exactly at `until` do fire. Returns the
  /// number of events dispatched.
  std::uint64_t run(Time until = kTimeMax);

  /// Runs a single event if one is pending. Returns false when idle.
  bool step();

  /// True when no events remain.
  bool idle() const { return queue_.empty(); }

  /// Number of pending events.
  std::size_t pending() const { return queue_.size(); }

  /// Total events dispatched since construction.
  std::uint64_t dispatched() const { return dispatched_; }

  /// Event-queue activity counters (schedules, cancels, tombstone skips,
  /// calendar tier migrations); bench_simcore and the end-of-run obs
  /// export read these.
  const EventQueue::Stats& queue_stats() const { return queue_.stats(); }

  /// Root random generator. Components should fork() child streams with
  /// stable labels rather than drawing from this directly.
  Rng& rng() { return rng_; }

  /// Installs a hard cap on dispatched events (guards against runaway
  /// feedback loops in tests). 0 disables the cap (default).
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

  /// Observability hook. The simulator only carries the pointer (forward
  /// declaration — no dependency on src/obs); components fetch it at
  /// construction/wiring time and guard every emission with
  /// TLS_OBS_ACTIVE. Null (the default) means "no observability".
  obs::Tracer* tracer() const { return tracer_; }
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  EventQueue queue_;
  Time now_{};
  std::uint64_t dispatched_ = 0;
  std::uint64_t event_limit_ = 0;
  obs::Tracer* tracer_ = nullptr;
  Rng rng_;
};

/// Re-arming periodic timer built on a Simulator. Used for utilization
/// sampling and the TLs-RR rotation interval. The callback may stop the
/// timer from within itself.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& simulator, Time period, std::function<void()> on_tick);
  ~PeriodicTimer();

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Starts ticking; first tick fires one period from now (or at `phase`
  /// from now if given). No-op when already running.
  void start(Time phase = Time{-1});

  /// Stops ticking; pending tick is cancelled.
  void stop();

  bool running() const { return running_; }
  Time period() const { return period_; }

  /// Changes the period; takes effect at the next re-arm.
  void set_period(Time period) { period_ = period; }

 private:
  void arm(Time delay);

  Simulator& sim_;
  Time period_;
  std::function<void()> on_tick_;
  EventId pending_{};
  bool running_ = false;
};

}  // namespace tls::sim
