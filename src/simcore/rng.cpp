#include "simcore/rng.hpp"

#include <cassert>
#include <cmath>

namespace tls::sim {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Mix the current state with the stream id through splitmix64 so children
  // are decorrelated from the parent and from each other.
  std::uint64_t mix = s_[0] ^ rotl(s_[2], 31) ^ (stream_id * 0xD6E8FEB86659FD93ULL);
  return Rng(splitmix64(mix));
}

Rng Rng::fork(std::string_view label) const { return fork(fnv1a(label)); }

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  assert(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::normal() {
  // Box-Muller; draw until u1 is nonzero to keep log() finite.
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal_median(double median, double sigma) {
  if (sigma == 0.0) return median;
  return median * std::exp(sigma * normal());
}

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

}  // namespace tls::sim
