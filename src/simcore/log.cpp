#include "simcore/log.hpp"

#include <cstdio>
#include <iomanip>

#include "simcore/simulator.hpp"

namespace tls::sim {

namespace {
LogLevel g_level = LogLevel::kWarn;
const Simulator* g_clock = nullptr;
Log::Sink g_sink;

void default_sink(LogLevel level, const std::string& msg) {
  std::string prefix;
  if (g_clock != nullptr) {
    prefix = "[" + format_time(g_clock->now()) + "] ";
  }
  std::fprintf(stderr, "%s%-5s %s\n", prefix.c_str(), Log::level_name(level),
               msg.c_str());
}
}  // namespace

LogLevel Log::level() { return g_level; }
void Log::set_level(LogLevel level) { g_level = level; }
void Log::attach_clock(const Simulator* sim) { g_clock = sim; }
void Log::set_sink(Sink sink) { g_sink = std::move(sink); }

void Log::write(LogLevel level, const std::string& msg) {
  if (!enabled(level)) return;
  if (g_sink) {
    g_sink(level, msg);
  } else {
    default_sink(level, msg);
  }
}

const char* Log::level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::string format_time(Time t) {
  std::ostringstream os;
  os << std::setprecision(4);
  Time a = t < Time{0} ? -t : t;
  if (a >= kSecond) {
    os << to_seconds(t) << "s";
  } else if (a >= kMillisecond) {
    os << to_millis(t) << "ms";
  } else if (a >= kMicrosecond) {
    os << to_micros(t) << "us";
  } else {
    os << t << "ns";
  }
  return os.str();
}

}  // namespace tls::sim
