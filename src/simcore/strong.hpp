// Tagged wrappers for unit-safe quantities and indices.
//
// The simulator's claims rest on integer-exact time and byte conservation,
// yet a bare `int64_t` time mixes silently with a bare `int64_t` byte count.
// These CRTP bases give each unit its own type so that a time-for-bytes or
// band-for-host mixup is a *compile* error instead of a runtime surprise:
//
//   StrongQuantity  integer amounts (durations, sizes): explicit
//                   construction from the representation, homogeneous
//                   addition/subtraction, integer scalar scaling, ratio
//                   division, total ordering. Two distinct quantity types
//                   never mix, and floating-point scaling is deleted so a
//                   `t * 0.5` cannot silently truncate.
//   StrongOrdinal   dense indices (hosts, bands): equality/ordering and
//                   ++ for iteration, but no arithmetic at all — adding two
//                   host ids is meaningless.
//
// Escape hatches and policy (see DESIGN.md §11):
//   .raw()  returns the representation. Outside the unit-vocabulary headers
//           (simcore/time.hpp, net/units.hpp) every use is flagged by the
//           tls_lint `unit-escape` rule and needs an allowlist entry with a
//           justification; prefer the typed helpers those headers provide
//           (to_seconds, transmit_time, to_double, ...).
//   .idx()  ordinal-only accessor, sanctioned for container subscripting
//           (`ring[band.idx()]`). Doing arithmetic on idx() and wrapping the
//           result back defeats the types; use the typed helpers instead.
//
// operator<< streams the raw representation, so exporters and TLS_CHECK
// messages render byte-identically to the pre-wrapper integers.
#pragma once

#include <ostream>
#include <type_traits>

namespace tls::sim {

/// CRTP base for an integer amount of some unit. `Derived` inherits the
/// constructors (`using StrongQuantity::StrongQuantity;`) and gains the
/// full homogeneous-arithmetic surface.
template <class Derived, class Rep>
class StrongQuantity {
 public:
  using rep = Rep;

  constexpr StrongQuantity() = default;
  constexpr explicit StrongQuantity(Rep value) : v_(value) {}

  /// Escape hatch to the raw representation; lint-flagged outside the
  /// unit-vocabulary headers (rule `unit-escape`).
  constexpr Rep raw() const { return v_; }

  friend constexpr Derived operator+(Derived a, Derived b) {
    return Derived{a.raw() + b.raw()};
  }
  friend constexpr Derived operator-(Derived a, Derived b) {
    return Derived{a.raw() - b.raw()};
  }
  friend constexpr Derived operator-(Derived a) { return Derived{-a.raw()}; }
  friend constexpr Derived& operator+=(Derived& a, Derived b) {
    a = a + b;
    return a;
  }
  friend constexpr Derived& operator-=(Derived& a, Derived b) {
    a = a - b;
    return a;
  }

  /// Integer scaling. Floating-point factors are deleted below: scaling a
  /// quantity by a double silently truncates, so such sites must decide
  /// their rounding explicitly (e.g. via from_seconds).
  friend constexpr Derived operator*(Derived a, Rep k) {
    return Derived{a.raw() * k};
  }
  friend constexpr Derived operator*(Rep k, Derived a) {
    return Derived{k * a.raw()};
  }
  friend constexpr Derived operator/(Derived a, Rep k) {
    return Derived{a.raw() / k};
  }
  template <class F>
    requires std::is_floating_point_v<F>
  friend constexpr Derived operator*(Derived, F) = delete;
  template <class F>
    requires std::is_floating_point_v<F>
  friend constexpr Derived operator*(F, Derived) = delete;
  template <class F>
    requires std::is_floating_point_v<F>
  friend constexpr Derived operator/(Derived, F) = delete;

  /// Ratio of two like quantities is a dimensionless integer; the remainder
  /// keeps the unit.
  friend constexpr Rep operator/(Derived a, Derived b) {
    return a.raw() / b.raw();
  }
  friend constexpr Derived operator%(Derived a, Derived b) {
    return Derived{a.raw() % b.raw()};
  }

  friend constexpr bool operator==(Derived a, Derived b) {
    return a.raw() == b.raw();
  }
  friend constexpr auto operator<=>(Derived a, Derived b) {
    return a.raw() <=> b.raw();
  }

  friend std::ostream& operator<<(std::ostream& os, Derived a) {
    return os << a.raw();
  }

 private:
  Rep v_ = 0;
};

/// CRTP base for a dense index (host number, priority band). Ordered and
/// incrementable so it can drive loops and sorted containers, but with no
/// arithmetic: index math belongs in typed helpers next to the type.
template <class Derived, class Rep>
class StrongOrdinal {
 public:
  using rep = Rep;

  constexpr StrongOrdinal() = default;
  constexpr explicit StrongOrdinal(Rep value) : v_(value) {}

  /// Sanctioned accessor for container subscripting; see the header
  /// comment for the idx()-vs-raw() policy.
  constexpr Rep idx() const { return v_; }

  /// Escape hatch, same policy as StrongQuantity::raw().
  constexpr Rep raw() const { return v_; }

  /// True for real (non-sentinel) indices.
  constexpr bool valid() const { return v_ >= 0; }

  constexpr Derived& operator++() {
    ++v_;
    return static_cast<Derived&>(*this);
  }

  friend constexpr bool operator==(Derived a, Derived b) {
    return a.idx() == b.idx();
  }
  friend constexpr auto operator<=>(Derived a, Derived b) {
    return a.idx() <=> b.idx();
  }

  friend std::ostream& operator<<(std::ostream& os, Derived a) {
    return os << a.idx();
  }

 private:
  Rep v_ = 0;
};

}  // namespace tls::sim
