// Deterministic random-number generation for simulations.
//
// We use xoshiro256++ seeded through splitmix64. Every stochastic component
// of the simulator draws from an Rng that is either the experiment's root
// generator or a child forked from it with a stable stream id, so adding a
// new consumer of randomness does not perturb the draws seen by existing
// consumers (important when comparing policies run-for-run).
#pragma once

#include <cstdint>
#include <string_view>

namespace tls::sim {

/// xoshiro256++ pseudo-random generator with convenience distributions.
///
/// Not thread-safe; each simulation owns its generators. Satisfies the
/// UniformRandomBitGenerator requirements so it can also feed <random>
/// distributions if callers prefer those.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return UINT64_MAX; }

  /// Next raw 64-bit draw.
  result_type operator()() { return next(); }
  result_type next();

  /// Forks a statistically independent child stream. The child is a pure
  /// function of (parent seed material, stream_id), so streams are stable
  /// under code evolution as long as ids are stable.
  Rng fork(std::uint64_t stream_id) const;

  /// Forks a child stream keyed by a string label (hashed with FNV-1a).
  Rng fork(std::string_view label) const;

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (no cached spare; branch-free state).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Lognormal such that the *median* of the distribution is `median` and
  /// the underlying normal has standard deviation `sigma`. sigma = 0 returns
  /// `median` exactly.
  double lognormal_median(double median, double sigma);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Bernoulli draw with probability p in [0, 1].
  bool bernoulli(double p);

  /// Fisher-Yates shuffles a range of indices [0, n) into `out`.
  template <typename Vec>
  void shuffle(Vec& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_u64(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

/// splitmix64 step; exposed for deterministic hashing needs elsewhere.
std::uint64_t splitmix64(std::uint64_t& state);

/// FNV-1a 64-bit hash of a string, for stable stream labels.
std::uint64_t fnv1a(std::string_view s);

}  // namespace tls::sim
