#include "simcore/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace tls::sim {

EventId EventQueue::schedule(Time at, Callback cb) {
  assert(cb);
  std::uint64_t seq = next_seq_++;
  heap_.push_back(Entry{at, seq, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
  ++live_;
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  if (id.seq == 0 || id.seq >= next_seq_) return false;
  if (is_cancelled(id.seq)) return false;
  // The event may already have fired; verify it is still in the heap.
  bool pending = std::any_of(heap_.begin(), heap_.end(),
                             [&](const Entry& e) { return e.seq == id.seq; });
  if (!pending) return false;
  auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), id.seq);
  cancelled_.insert(it, id.seq);
  --live_;
  return true;
}

bool EventQueue::is_cancelled(std::uint64_t seq) const {
  return std::binary_search(cancelled_.begin(), cancelled_.end(), seq);
}

void EventQueue::skim() {
  while (!heap_.empty() && is_cancelled(heap_.front().seq)) {
    std::uint64_t seq = heap_.front().seq;
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    heap_.pop_back();
    auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), seq);
    assert(it != cancelled_.end() && *it == seq);
    cancelled_.erase(it);
  }
}

Time EventQueue::peek_time() {
  skim();
  assert(!heap_.empty());
  return heap_.front().at;
}

std::pair<Time, EventQueue::Callback> EventQueue::pop() {
  skim();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  --live_;
  return {e.at, std::move(e.cb)};
}

void EventQueue::clear() {
  heap_.clear();
  cancelled_.clear();
  live_ = 0;
}

}  // namespace tls::sim
