#include "simcore/event_queue.hpp"

#include <algorithm>

namespace tls::sim {

EventId EventQueue::schedule(Time at, Callback cb) {
  TLS_CHECK(cb, "scheduling a null callback at t=", at);
  std::uint64_t seq = next_seq_++;
  heap_.push_back(Entry{at, seq, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
  ++live_;
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  if (id.seq == 0 || id.seq >= next_seq_) return false;
  if (is_cancelled(id.seq)) return false;
  // The event may already have fired; verify it is still in the heap.
  bool pending = std::any_of(heap_.begin(), heap_.end(),
                             [&](const Entry& e) { return e.seq == id.seq; });
  if (!pending) return false;
  auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), id.seq);
  cancelled_.insert(it, id.seq);
  TLS_CHECK(live_ > 0, "cancel with zero live events (seq=", id.seq, ")");
  --live_;
  return true;
}

bool EventQueue::is_cancelled(std::uint64_t seq) const {
  return std::binary_search(cancelled_.begin(), cancelled_.end(), seq);
}

void EventQueue::skim() {
  while (!heap_.empty() && is_cancelled(heap_.front().seq)) {
    std::uint64_t seq = heap_.front().seq;
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    heap_.pop_back();
    auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), seq);
    TLS_CHECK(it != cancelled_.end() && *it == seq,
              "tombstone missing for cancelled seq=", seq);
    cancelled_.erase(it);
  }
}

Time EventQueue::peek_time() {
  skim();
  TLS_CHECK(!heap_.empty(), "peek_time() on an empty event queue");
  return heap_.front().at;
}

std::pair<Time, EventQueue::Callback> EventQueue::pop() {
  skim();
  TLS_CHECK(!heap_.empty(), "pop() on an empty event queue");
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  TLS_CHECK(live_ > 0, "pop with zero live events");
  --live_;
  // Event-time monotonicity: the heap must deliver times in nondecreasing
  // order or the simulation clock would run backwards.
  TLS_CHECK(e.at >= last_pop_time_, "event queue went backwards: popped t=",
            e.at, " after t=", last_pop_time_);
  last_pop_time_ = e.at;
  return {e.at, std::move(e.cb)};
}

void EventQueue::clear() {
  heap_.clear();
  cancelled_.clear();
  live_ = 0;
  last_pop_time_ = kTimeMin;
}

}  // namespace tls::sim
