#include "simcore/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <utility>

namespace tls::sim {

std::uint8_t& EventQueue::state_of(std::uint64_t seq) {
  TLS_DCHECK(seq >= state_base_ && seq - state_base_ < state_.size(),
             "liveness table miss for seq=", seq, " base=", state_base_);
  return state_[static_cast<std::size_t>(seq - state_base_)];
}

Time EventQueue::window_end() const {
  Time span = width_ * static_cast<std::int64_t>(kBuckets);
  return window_start_ > kTimeMax - span ? kTimeMax : window_start_ + span;
}

void EventQueue::push_bucket(std::size_t idx, Entry&& e) {
  TLS_DCHECK(idx < kBuckets, "bucket index out of range: ", idx);
  Bucket& b = buckets_[idx];
  // Always an O(1) append: in-order arrivals (the overwhelmingly common
  // case — completions scheduled at monotone times) keep the pending range
  // sorted for free, and anything else just marks the bucket for a lazy
  // sort at consumption time.
  if (!b.v.empty() && entry_less(e, b.v.back())) b.dirty = true;
  b.v.push_back(std::move(e));
  occupied_[idx >> 6] |= std::uint64_t(1) << (idx & 63);
  ++cal_count_;
}

void EventQueue::insert_entry(Entry&& e) {
  if (e.at < window_start_) {
    // Behind the consuming cursor (legitimately possible when earlier
    // buckets drained empty, or past-scheduling misuse — the monotonicity
    // TLS_CHECK in pop() flags the latter). Funnel into the next bucket to
    // be consumed; in-bucket (at, seq) order puts it first.
    push_bucket(cur_, std::move(e));
    return;
  }
  if (e.at < window_end()) {
    std::size_t idx =
        static_cast<std::size_t>((e.at - window_start_) / width_);
    push_bucket(idx < cur_ ? cur_ : idx, std::move(e));
    return;
  }
  overflow_.push_back(std::move(e));
  std::push_heap(overflow_.begin(), overflow_.end(),
                 [](const Entry& a, const Entry& b) { return entry_less(b, a); });
}

EventQueue::Entry EventQueue::pop_overflow() {
  std::pop_heap(overflow_.begin(), overflow_.end(),
                [](const Entry& a, const Entry& b) { return entry_less(b, a); });
  Entry e = std::move(overflow_.back());
  overflow_.pop_back();
  return e;
}

void EventQueue::refill_window() {
  TLS_CHECK(!overflow_.empty(), "calendar refill with an empty overflow tier");
  ++stats_.window_jumps;
  // Sample the head of the overflow tier to estimate event spacing, then
  // re-anchor the window at the earliest pending time. The estimate only
  // depends on queue content, so the structure stays deterministic.
  Entry first = pop_overflow();
  Time t0 = first.at;
  std::vector<Entry> sample;
  sample.push_back(std::move(first));
  while (sample.size() < kWidthSample && !overflow_.empty()) {
    sample.push_back(pop_overflow());
  }
  if (sample.size() > 1) {
    Time gap =
        (sample.back().at - t0) / static_cast<std::int64_t>(sample.size() - 1);
    // Aim for a handful of events per bucket; clamp so span arithmetic
    // never overflows and width never hits zero.
    Time w = gap > kMaxWidth / 4 ? kMaxWidth : gap * 4;
    width_ = std::clamp(w, Time{1}, kMaxWidth);
  }
  // A pending rebucket() cap must bound the width BEFORE any entry is
  // distributed: every entry in one window generation must be bucketed
  // under the same width, or an insert with a narrower width could land
  // in a higher bucket than an already-placed later-time entry and the
  // pop order would invert. Normal refills (empty calendar) reset it.
  width_ = std::min(width_, width_cap_);
  width_cap_ = kMaxWidth;
  window_start_ = t0;
  cur_ = 0;
  stats_.overflow_pulls += sample.size();
  for (Entry& e : sample) insert_entry(std::move(e));
  Time we = window_end();
  while (!overflow_.empty() && overflow_.front().at < we) {
    insert_entry(pop_overflow());
    ++stats_.overflow_pulls;
  }
}

void EventQueue::rebucket() {
  // Each rebucket at least halves the width (enforced via width_cap_
  // inside refill_window, before anything is distributed), so a dense
  // cluster hiding behind a sparse head — which fools the spacing sample
  // into the same estimate every time — cannot retrigger forever: width_
  // reaches 1 in at most ~40 steps and the trigger requires width_ > 1.
  width_cap_ = std::max(Time{1}, width_ / 2);
  for (Bucket& b : buckets_) {
    for (std::size_t j = b.head; j < b.v.size(); ++j) {
      overflow_.push_back(std::move(b.v[j]));
    }
    b.v.clear();
    b.head = 0;
    b.dirty = false;
  }
  for (std::uint64_t& w : occupied_) w = 0;
  cal_count_ = 0;
  std::make_heap(overflow_.begin(), overflow_.end(),
                 [](const Entry& a, const Entry& b) { return entry_less(b, a); });
  refill_window();
}

EventQueue::Entry* EventQueue::peek_physical() {
  for (;;) {
    if (cal_count_ == 0) {
      TLS_CHECK(!overflow_.empty(),
                "event queue cursor ran past every physical entry");
      refill_window();
      continue;
    }
    // Scan the occupancy bitmap from cur_ for the first non-empty bucket.
    std::size_t word = cur_ >> 6;
    std::uint64_t bits =
        occupied_[word] & (~std::uint64_t(0) << (cur_ & 63));
    while (bits == 0) {
      ++word;
      TLS_CHECK(word < kBitmapWords,
                "calendar occupancy bitmap inconsistent with cal_count=",
                cal_count_);
      bits = occupied_[word];
    }
    cur_ = (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
    Bucket& b = buckets_[cur_];
    TLS_DCHECK(b.head < b.v.size(), "occupied bit set on drained bucket ",
               cur_);
    if (b.v.size() - b.head > kDenseBucket && width_ > Time{1}) {
      // Too many pending entries share one bucket: the width is wrong for
      // the current event density (e.g. a funnelled burst of near-past
      // schedules). Narrow the geometry instead of paying a large re-sort
      // on every pop. width_ == 1 cannot narrow further — coincident
      // events legitimately share a bucket and the lazy sort handles them.
      rebucket();
      continue;
    }
    if (b.dirty) {
      std::sort(b.v.begin() + static_cast<std::ptrdiff_t>(b.head), b.v.end(),
                [](const Entry& a, const Entry& bb) {
                  return entry_less(a, bb);
                });
      b.dirty = false;
    }
    return &b.v[b.head];
  }
}

void EventQueue::drop_front() {
  Bucket& b = buckets_[cur_];
  ++b.head;
  --cal_count_;
  if (b.head == b.v.size()) {
    b.v.clear();
    b.head = 0;
    b.dirty = false;
    occupied_[cur_ >> 6] &= ~(std::uint64_t(1) << (cur_ & 63));
  }
}

EventQueue::Entry* EventQueue::next_live() {
  for (;;) {
    Entry* e = peek_physical();
    std::uint8_t st = e->seq < state_base_ ? std::uint8_t{kFired}
                                           : state_of(e->seq);
    if (st == kPending) return e;
    // Tombstone (cancelled, or retired below the trimmed table base).
    ++stats_.tombstones_skipped;
    drop_front();
  }
}

EventId EventQueue::schedule(Time at, Callback cb) {
  TLS_CHECK(cb, "scheduling a null callback at t=", at);
  std::uint64_t seq = next_seq_++;
  TLS_DCHECK(state_base_ + state_.size() == seq,
             "liveness table out of sync with seq allocation");
  state_.push_back(kPending);
  if (cal_count_ == 0 && overflow_.empty()) {
    // Physically empty: re-anchor the window so the new event lands in
    // bucket 0 instead of forcing everything through a stale cursor.
    window_start_ = at;
    cur_ = 0;
  }
  insert_entry(Entry{at, seq, std::move(cb)});
  ++live_;
  ++stats_.scheduled;
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  if (id.seq == 0 || id.seq >= next_seq_) return false;
  if (id.seq < state_base_) return false;  // fired, cancelled, or cleared
  std::uint8_t& st = state_of(id.seq);
  if (st != kPending) return false;
  st = kCancelled;
  ++stats_.cancelled;
  TLS_CHECK(live_ > 0, "cancel with zero live events (seq=", id.seq, ")");
  --live_;
  return true;
}

void EventQueue::maybe_trim_state() {
  // Each table slot is scanned at most once over its lifetime, so the
  // trim is amortized O(1) per event.
  while (state_scan_ < state_.size() && state_[state_scan_] != kPending) {
    ++state_scan_;
  }
  if (state_scan_ >= kStateTrimMin && state_scan_ * 2 >= state_.size()) {
    state_.erase(state_.begin(),
                 state_.begin() + static_cast<std::ptrdiff_t>(state_scan_));
    state_base_ += state_scan_;
    state_scan_ = 0;
  }
}

Time EventQueue::peek_time() {
  TLS_CHECK(!empty(), "peek_time() on an empty event queue");
  return next_live()->at;
}

std::pair<Time, EventQueue::Callback> EventQueue::pop() {
  TLS_CHECK(!empty(), "pop() on an empty event queue");
  Entry* e = next_live();
  state_of(e->seq) = kFired;
  --live_;
  ++stats_.popped;
  // Event-time monotonicity: the queue must deliver times in nondecreasing
  // order or the simulation clock would run backwards.
  TLS_CHECK(e->at >= last_pop_time_, "event queue went backwards: popped t=",
            e->at, " after t=", last_pop_time_);
  last_pop_time_ = e->at;
  Entry out = std::move(*e);
  drop_front();
  maybe_trim_state();
  return {out.at, std::move(out.cb)};
}

void EventQueue::clear() {
  for (Bucket& b : buckets_) {
    b.v.clear();
    b.head = 0;
    b.dirty = false;
  }
  for (std::uint64_t& w : occupied_) w = 0;
  cal_count_ = 0;
  overflow_.clear();
  live_ = 0;
  last_pop_time_ = kTimeMin;
  // Stale EventIds must stay dead: keep the seq allocator running and
  // advance the table base past every id issued so far, so cancel() on a
  // pre-clear() handle can never touch a post-clear() event.
  state_.clear();
  state_base_ = next_seq_;
  state_scan_ = 0;
  window_start_ = Time{0};
  width_ = kDefaultWidth;
  width_cap_ = kMaxWidth;
  cur_ = 0;
}

}  // namespace tls::sim
