// Runtime invariant checks for the simulator core.
//
// TLS_CHECK(cond, msg...)  — always compiled in; for cheap invariants whose
//   violation means simulation results cannot be trusted (event-time
//   monotonicity, non-negative queue depths). Unlike assert(), it survives
//   NDEBUG builds and prints a formatted message with the failing values.
// TLS_DCHECK(cond, msg...) — compiled in only when TLS_ENABLE_DCHECKS is
//   defined (Debug and sanitizer builds, see the top-level CMakeLists); for
//   costlier audits such as byte-conservation ledgers. In RelWithDebInfo the
//   condition and message are not evaluated, so hot paths pay nothing.
//
// The message arguments are streamed, e.g.:
//   TLS_CHECK(at >= now_, "event scheduled in the past: at=", at,
//             " now=", now_);
// On failure the check prints file:line, the stringified condition, and the
// message to stderr, then aborts (so sanitizers and ctest both see a hard
// failure with a usable stack).
#pragma once

#include <sstream>
#include <string>

namespace tls::sim::internal {

/// Streams all arguments into one string; empty argument list yields "".
template <typename... Args>
std::string format_check_message(const Args&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return {};
  } else {
    std::ostringstream os;
    (os << ... << args);
    return os.str();
  }
}

/// Prints the failure report and aborts. Out-of-line so the cold path adds
/// one call per check site instead of a stream expansion.
[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const std::string& message);

}  // namespace tls::sim::internal

#define TLS_CHECK(cond, ...)                                                 \
  do {                                                                       \
    if (!(cond)) [[unlikely]] {                                              \
      ::tls::sim::internal::check_failed(                                    \
          __FILE__, __LINE__, #cond,                                         \
          ::tls::sim::internal::format_check_message(__VA_ARGS__));          \
    }                                                                        \
  } while (0)

#ifdef TLS_ENABLE_DCHECKS
#define TLS_DCHECK(cond, ...) TLS_CHECK(cond, __VA_ARGS__)
#else
// Compiles the condition away entirely but keeps it syntactically checked,
// so a DCHECK cannot rot in release builds.
#define TLS_DCHECK(cond, ...)             \
  do {                                    \
    if (false) {                          \
      (void)sizeof(!(cond));              \
    }                                     \
  } while (0)
#endif
