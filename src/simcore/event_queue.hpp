// Pending-event set for the discrete-event simulator.
//
// A binary heap keyed on (time, sequence number). The sequence number makes
// ordering of simultaneous events deterministic (FIFO by scheduling order),
// which in turn makes whole experiments reproducible. Events can be
// cancelled in O(1) amortized via tombstoning: cancellation marks the entry
// dead and it is skipped at pop time.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "simcore/check.hpp"
#include "simcore/time.hpp"

namespace tls::sim {

/// Opaque handle identifying a scheduled event; used for cancellation.
struct EventId {
  std::uint64_t seq = 0;
  friend bool operator==(const EventId&, const EventId&) = default;
};

/// Min-heap of timed callbacks with stable ordering and O(1) cancellation.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `cb` at absolute time `at`. Returns a handle usable with
  /// cancel(). Events at equal times fire in scheduling order.
  EventId schedule(Time at, Callback cb);

  /// Cancels a previously scheduled event. Returns true if the event was
  /// still pending (and is now guaranteed not to fire), false if it already
  /// fired or was already cancelled.
  bool cancel(EventId id);

  /// True when no live events remain.
  bool empty() const { return live_ == 0; }

  /// Number of live (non-cancelled, not-yet-fired) events.
  std::size_t size() const { return live_; }

  /// Time of the earliest live event. Requires !empty().
  Time peek_time();

  /// Removes and returns the earliest live event. Requires !empty().
  /// The returned pair is (time, callback).
  std::pair<Time, Callback> pop();

  /// Drops everything, firing nothing.
  void clear();

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    Callback cb;
    bool operator>(const Entry& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  // Pops cancelled entries off the top of the heap.
  void skim();
  bool is_cancelled(std::uint64_t seq) const;

  std::vector<Entry> heap_;
  std::vector<std::uint64_t> cancelled_;  // sorted-insert small set
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  // Time of the last popped event; pops must never go backwards or the
  // simulation clock (and therefore every derived metric) is corrupt.
  Time last_pop_time_ = kTimeMin;
};

}  // namespace tls::sim
