// Pending-event set for the discrete-event simulator.
//
// A two-tier calendar queue keyed on (time, sequence number). The sequence
// number makes ordering of simultaneous events deterministic (FIFO by
// scheduling order), which in turn makes whole experiments reproducible.
//
// Structure: a flat window of fixed-count, adaptive-width time buckets
// covers the near future; events beyond the window land in a binary-heap
// overflow tier and migrate into buckets when the window re-anchors. Each
// bucket is a sorted vector consumed through a head cursor, so the common
// short-horizon schedule (a transmit completion a few microseconds out)
// is an O(1) append and never touches the heap. The pop order is exactly
// ascending (time, seq) — byte-identical to the binary heap this replaced.
//
// Cancellation is O(1): every event's liveness lives in a dense
// seq-indexed state table (pending / fired / cancelled), so cancel() is a
// table write and cancelled entries are skipped as tombstones when the
// consuming cursor reaches them. The table's dead prefix is trimmed in
// amortized O(1) as events retire.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "simcore/check.hpp"
#include "simcore/time.hpp"

namespace tls::sim {

/// Opaque handle identifying a scheduled event; used for cancellation.
struct EventId {
  std::uint64_t seq = 0;
  friend bool operator==(const EventId&, const EventId&) = default;
};

/// Calendar queue of timed callbacks with stable ordering and O(1)
/// cancellation.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Internal activity counters; bench_simcore and the obs wiring read
  /// these to publish events/sec and tier behavior.
  struct Stats {
    std::uint64_t scheduled = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t popped = 0;
    /// Cancelled entries physically discarded by the consuming cursor.
    std::uint64_t tombstones_skipped = 0;
    /// Entries migrated overflow-heap -> calendar window.
    std::uint64_t overflow_pulls = 0;
    /// Window re-anchors (calendar exhausted, refilled from overflow).
    std::uint64_t window_jumps = 0;
  };

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `cb` at absolute time `at`. Returns a handle usable with
  /// cancel(). Events at equal times fire in scheduling order.
  EventId schedule(Time at, Callback cb);

  /// Cancels a previously scheduled event in O(1). Returns true if the
  /// event was still pending (and is now guaranteed not to fire), false if
  /// it already fired, was already cancelled, or predates clear().
  bool cancel(EventId id);

  /// True when no live events remain.
  bool empty() const { return live_ == 0; }

  /// Number of live (non-cancelled, not-yet-fired) events.
  std::size_t size() const { return live_; }

  /// Time of the earliest live event. Requires !empty().
  Time peek_time();

  /// Removes and returns the earliest live event. Requires !empty().
  /// The returned pair is (time, callback).
  std::pair<Time, Callback> pop();

  /// Drops everything, firing nothing. EventIds issued before clear()
  /// become stale: cancelling one returns false and can never affect an
  /// event scheduled afterwards.
  void clear();

  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    Callback cb;
  };
  /// Strict total order: (at, seq). seq is unique, so no ties.
  static bool entry_less(const Entry& a, const Entry& b) {
    return a.at != b.at ? a.at < b.at : a.seq < b.seq;
  }

  /// One calendar bucket: entries in [head, v.size()) pending, slots
  /// before head consumed. Out-of-order arrivals only set `dirty`; the
  /// pending range is sorted by (at, seq) lazily when the consuming
  /// cursor first reaches the bucket, so a burst of non-monotone
  /// schedules into one bucket costs one O(k log k) sort instead of k
  /// O(k) sorted inserts.
  struct Bucket {
    std::vector<Entry> v;
    std::size_t head = 0;
    bool dirty = false;
  };

  // Per-event liveness states in state_.
  enum : std::uint8_t { kPending = 0, kFired = 1, kCancelled = 2 };

  static constexpr std::size_t kBuckets = 512;  // power of two
  static constexpr std::size_t kBitmapWords = kBuckets / 64;
  static constexpr Time kDefaultWidth{1 << 12};  // ~4us at ns resolution
  static constexpr Time kMaxWidth{std::int64_t{1} << 42};
  static constexpr std::size_t kWidthSample = 16;
  static constexpr std::size_t kStateTrimMin = 4096;
  /// Pending-range size at which a bucket is too dense for the current
  /// width and the calendar re-anchors with a narrower geometry.
  static constexpr std::size_t kDenseBucket = 64;

  Time window_end() const;
  void push_bucket(std::size_t idx, Entry&& e);
  void insert_entry(Entry&& e);
  Entry pop_overflow();
  /// Re-anchors the window at the overflow minimum, adapts the bucket
  /// width to the observed head spacing, and migrates in-window entries.
  void refill_window();
  /// Spills every calendar entry into the overflow heap and re-anchors
  /// with a freshly estimated width. Called when one bucket turns dense
  /// relative to the current geometry; without it, a stream of
  /// out-of-order inserts into the cursor bucket would re-sort an
  /// ever-growing range on every pop.
  void rebucket();
  /// Positions (cur_, head) on the earliest physical entry, refilling from
  /// overflow as needed. Requires a physical entry to exist.
  Entry* peek_physical();
  /// Consumes the entry peek_physical() returned.
  void drop_front();
  /// Positions on the earliest *live* entry, discarding tombstones.
  Entry* next_live();
  std::uint8_t& state_of(std::uint64_t seq);
  void maybe_trim_state();

  // --- liveness table: state_[seq - state_base_], dense and trimmed ---
  std::vector<std::uint8_t> state_;
  std::uint64_t state_base_ = 1;
  std::size_t state_scan_ = 0;  // dead-prefix scan cursor

  // --- calendar window ---
  std::vector<Bucket> buckets_{kBuckets};
  std::uint64_t occupied_[kBitmapWords] = {};
  Time window_start_{};
  Time width_ = kDefaultWidth;
  /// One-shot upper bound on the next refill's width estimate, armed by
  /// rebucket() to guarantee the geometry narrows. kMaxWidth = unarmed.
  Time width_cap_ = kMaxWidth;
  std::size_t cur_ = 0;        // lowest possibly-occupied bucket
  std::size_t cal_count_ = 0;  // physical entries in buckets

  // --- overflow tier: min-heap on (at, seq) ---
  std::vector<Entry> overflow_;

  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  Stats stats_;
  // Time of the last popped event; pops must never go backwards or the
  // simulation clock (and therefore every derived metric) is corrupt.
  Time last_pop_time_ = kTimeMin;
};

}  // namespace tls::sim
