#include "simcore/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace tls::sim::internal {

void check_failed(const char* file, int line, const char* expr,
                  const std::string& message) {
  std::fflush(stdout);
  std::fprintf(stderr, "TLS_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               message.empty() ? "" : " — ", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace tls::sim::internal
