#include "simcore/simulator.hpp"

#include <stdexcept>

#include "simcore/check.hpp"

namespace tls::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

EventId Simulator::schedule_after(Time delay, EventQueue::Callback cb) {
  TLS_CHECK(delay >= Time{0}, "schedule_after with negative delay=", delay,
            " at now=", now_);
  return queue_.schedule(now_ + delay, std::move(cb));
}

EventId Simulator::schedule_at(Time at, EventQueue::Callback cb) {
  TLS_CHECK(at >= now_, "schedule_at in the past: at=", at, " now=", now_);
  return queue_.schedule(at, std::move(cb));
}

std::uint64_t Simulator::run(Time until) {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    Time t = queue_.peek_time();
    if (t > until) break;
    auto [at, cb] = queue_.pop();
    TLS_CHECK(at >= now_, "clock would run backwards: event t=", at,
              " now=", now_);
    now_ = at;
    cb();
    ++n;
    ++dispatched_;
    if (event_limit_ != 0 && dispatched_ >= event_limit_) {
      throw std::runtime_error("Simulator event limit exceeded");
    }
  }
  // When stopping on the time bound with events still pending, advance the
  // clock to the bound so now() reflects the elapsed horizon.
  if (!queue_.empty() && until != kTimeMax && now_ < until) now_ = until;
  return n;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [at, cb] = queue_.pop();
  TLS_CHECK(at >= now_, "clock would run backwards: event t=", at,
            " now=", now_);
  now_ = at;
  cb();
  ++dispatched_;
  return true;
}

PeriodicTimer::PeriodicTimer(Simulator& simulator, Time period,
                             std::function<void()> on_tick)
    : sim_(simulator), period_(period), on_tick_(std::move(on_tick)) {
  TLS_CHECK(period_ > Time{0}, "PeriodicTimer period must be positive, got ",
            period_);
  TLS_CHECK(on_tick_, "PeriodicTimer with null tick callback");
}

PeriodicTimer::~PeriodicTimer() { stop(); }

void PeriodicTimer::start(Time phase) {
  if (running_) return;
  running_ = true;
  arm(phase >= Time{0} ? phase : period_);
}

void PeriodicTimer::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = EventId{};
}

void PeriodicTimer::arm(Time delay) {
  pending_ = sim_.schedule_after(delay, [this] {
    if (!running_) return;
    on_tick_();
    if (running_) arm(period_);
  });
}

}  // namespace tls::sim
