#include "cluster/placement.hpp"

#include <numeric>
#include <sstream>
#include <stdexcept>

namespace tls::cluster {

int PsPlacement::total_jobs() const {
  return std::accumulate(group_sizes.begin(), group_sizes.end(), 0);
}

namespace {
std::string render(const std::vector<int>& sizes) {
  std::ostringstream os;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (i) os << ", ";
    os << sizes[i];
  }
  return os.str();
}
}  // namespace

PsPlacement even_groups(int num_jobs, int num_groups) {
  if (num_jobs < 1 || num_groups < 1 || num_groups > num_jobs) {
    throw std::invalid_argument("even_groups: bad arguments");
  }
  PsPlacement p;
  int base = num_jobs / num_groups;
  int extra = num_jobs % num_groups;
  // Smallest groups first, matching Table I's "5, 5, 5, 6" ordering.
  for (int k = 0; k < num_groups; ++k) {
    p.group_sizes.push_back(base + (k >= num_groups - extra ? 1 : 0));
  }
  p.name = render(p.group_sizes);
  return p;
}

PsPlacement table1(int index, int num_jobs) {
  PsPlacement p;
  switch (index) {
    case 1: p = even_groups(num_jobs, 1); break;
    case 2: {
      // The paper's irregular "5, 16": roughly a 1/4 vs 3/4 split.
      int small = std::max(1, num_jobs * 5 / 21);
      p.group_sizes = {small, num_jobs - small};
      p.name = render(p.group_sizes);
      break;
    }
    case 3: p = even_groups(num_jobs, 2); break;
    case 4: p = even_groups(num_jobs, 3); break;
    case 5: p = even_groups(num_jobs, 4); break;
    case 6: p = even_groups(num_jobs, 5); break;
    case 7: p = even_groups(num_jobs, 7 <= num_jobs ? 7 : num_jobs); break;
    case 8: p = even_groups(num_jobs, num_jobs); break;
    default:
      throw std::invalid_argument("table1 index must be in [1, 8]");
  }
  p.index = index;
  return p;
}

std::vector<PsPlacement> table1_all(int num_jobs) {
  std::vector<PsPlacement> all;
  for (int i = 1; i <= 8; ++i) all.push_back(table1(i, num_jobs));
  return all;
}

std::vector<dl::JobPlacement> assign_tasks_sharded(const PsPlacement& placement,
                                                   int num_hosts,
                                                   int workers_per_job,
                                                   int num_ps) {
  if (num_ps < 1 || num_ps > num_hosts) {
    throw std::invalid_argument("num_ps must be in [1, num_hosts]");
  }
  std::vector<dl::JobPlacement> jobs =
      assign_tasks(placement, num_hosts, workers_per_job);
  for (dl::JobPlacement& jp : jobs) {
    jp.ps_hosts.clear();
    for (int p = 0; p < num_ps; ++p) {
      jp.ps_hosts.push_back(
          net::HostId{(jp.ps_host.idx() + p) % num_hosts});
    }
  }
  return jobs;
}

std::vector<dl::JobPlacement> assign_tasks(const PsPlacement& placement,
                                           int num_hosts,
                                           int workers_per_job) {
  if (placement.num_groups() > num_hosts) {
    throw std::invalid_argument("more PS groups than hosts");
  }
  if (workers_per_job > num_hosts - 1 || workers_per_job < 1) {
    throw std::invalid_argument("workers_per_job must be in [1, num_hosts-1]");
  }
  std::vector<dl::JobPlacement> jobs;
  jobs.reserve(static_cast<std::size_t>(placement.total_jobs()));
  for (int group = 0; group < placement.num_groups(); ++group) {
    net::HostId ps_host{group};
    for (int j = 0; j < placement.group_sizes[static_cast<std::size_t>(group)];
         ++j) {
      dl::JobPlacement jp;
      jp.ps_host = ps_host;
      jp.worker_hosts.reserve(static_cast<std::size_t>(workers_per_job));
      for (int w = 0; w < workers_per_job; ++w) {
        // Walk hosts after the PS host, skipping the PS host itself.
        net::HostId h{(ps_host.idx() + 1 + w) % num_hosts};
        jp.worker_hosts.push_back(h);
      }
      jobs.push_back(std::move(jp));
    }
  }
  return jobs;
}

}  // namespace tls::cluster
