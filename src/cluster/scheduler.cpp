#include "cluster/scheduler.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <tuple>

namespace tls::cluster {

const char* to_string(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kPsAgnostic: return "ps-agnostic";
    case SchedulerPolicy::kPsAware: return "ps-aware";
  }
  return "?";
}

const char* to_string(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kShareBand: return "share-band";
    case AdmissionPolicy::kQueue: return "queue";
    case AdmissionPolicy::kReject: return "reject";
  }
  return "?";
}

const char* to_string(AdmissionOutcome outcome) {
  switch (outcome) {
    case AdmissionOutcome::kPlaced: return "placed";
    case AdmissionOutcome::kQueued: return "queued";
    case AdmissionOutcome::kRejected: return "rejected";
  }
  return "?";
}

OnlineScheduler::OnlineScheduler(int num_hosts, SchedulerPolicy policy,
                                 AdmissionPolicy admission, int ps_band_limit)
    : policy_(policy),
      admission_(admission),
      band_limit_(ps_band_limit),
      tasks_(static_cast<std::size_t>(num_hosts), 0),
      ps_(static_cast<std::size_t>(num_hosts), 0) {
  if (num_hosts < 2) throw std::invalid_argument("need at least 2 hosts");
  if (ps_band_limit < 0) throw std::invalid_argument("ps_band_limit < 0");
}

net::HostId OnlineScheduler::pick_ps_host(bool respect_limit) const {
  net::HostId best = net::kNoHost;
  for (net::HostId h{0}; h < net::HostId{num_hosts()}; ++h) {
    auto hi = static_cast<std::size_t>(h.idx());
    if (respect_limit && band_limit_ > 0 && ps_[hi] >= band_limit_) continue;
    if (best == net::kNoHost) {
      best = h;
      continue;
    }
    auto bi = static_cast<std::size_t>(best.idx());
    bool better;
    if (policy_ == SchedulerPolicy::kPsAware) {
      better = std::tie(ps_[hi], tasks_[hi]) < std::tie(ps_[bi], tasks_[bi]);
    } else {
      better = tasks_[hi] < tasks_[bi];
    }
    if (better) best = h;
  }
  return best;
}

Admission OnlineScheduler::try_place(const dl::JobSpec& spec) {
  Admission result;
  // Band exhaustion is probed with the *first* shard's candidate set: when
  // no host can take one more PS without passing the band budget, the
  // cluster is exhausted for this job as a whole.
  if (band_limit_ > 0 && admission_ != AdmissionPolicy::kShareBand &&
      pick_ps_host(/*respect_limit=*/true) == net::kNoHost) {
    result.outcome = admission_ == AdmissionPolicy::kQueue
                         ? AdmissionOutcome::kQueued
                         : AdmissionOutcome::kRejected;
    result.ps_colocation = max_ps_colocation();
    return result;
  }
  result.outcome = AdmissionOutcome::kPlaced;
  result.placement = place(spec);
  result.ps_colocation = max_ps_colocation();
  return result;
}

dl::JobPlacement OnlineScheduler::place(const dl::JobSpec& spec) {
  if (spec.num_workers > num_hosts() - 1) {
    throw std::invalid_argument("more workers than non-PS hosts");
  }
  dl::JobPlacement placement;
  // Place PS shards one at a time so later shards see earlier ones' load.
  // A shard prefers hosts under the band budget and falls back to plain
  // least-loaded when every host is at it (the share-band regime).
  for (int p = 0; p < spec.num_ps; ++p) {
    net::HostId host = pick_ps_host(/*respect_limit=*/true);
    if (host == net::kNoHost) host = pick_ps_host(/*respect_limit=*/false);
    if (p == 0) placement.ps_host = host;
    if (spec.num_ps > 1) placement.ps_hosts.push_back(host);
    ++ps_[static_cast<std::size_t>(host.idx())];
    ++tasks_[static_cast<std::size_t>(host.idx())];
  }
  // Workers: one per least-loaded host, excluding the first PS host (the
  // paper's layout keeps the PS's own host free of this job's workers).
  std::vector<net::HostId> order(static_cast<std::size_t>(num_hosts()));
  std::iota(order.begin(), order.end(), net::HostId{0});
  std::stable_sort(order.begin(), order.end(), [&](net::HostId a, net::HostId b) {
    return tasks_[static_cast<std::size_t>(a.idx())] <
           tasks_[static_cast<std::size_t>(b.idx())];
  });
  for (net::HostId h : order) {
    if (h == placement.ps_host) continue;
    if (static_cast<int>(placement.worker_hosts.size()) == spec.num_workers) {
      break;
    }
    placement.worker_hosts.push_back(h);
    ++tasks_[static_cast<std::size_t>(h.idx())];
  }
  return placement;
}

void OnlineScheduler::remove(const dl::JobSpec& spec,
                             const dl::JobPlacement& placement) {
  for (int p = 0; p < spec.num_ps; ++p) {
    auto hi = static_cast<std::size_t>(placement.ps_shard_host(p).idx());
    --ps_[hi];
    --tasks_[hi];
  }
  for (net::HostId h : placement.worker_hosts) {
    --tasks_[static_cast<std::size_t>(h.idx())];
  }
}

int OnlineScheduler::ps_count(net::HostId host) const {
  return ps_.at(static_cast<std::size_t>(host.idx()));
}

int OnlineScheduler::task_count(net::HostId host) const {
  return tasks_.at(static_cast<std::size_t>(host.idx()));
}

int OnlineScheduler::max_ps_colocation() const {
  return *std::max_element(ps_.begin(), ps_.end());
}

}  // namespace tls::cluster
