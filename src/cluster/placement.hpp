// PS placement schemes (Table I of the paper) and task-to-host assignment.
//
// For M concurrent jobs, a placement is written m_1,...,m_K with
// sum(m_k) = M: group k colocates m_k parameter servers on one host.
// Placement #1 ("21") puts every PS on one host — the shared-PS rack-scale
// design of Parameter Hub; #8 ("1,...,1") gives every host one PS.
#pragma once

#include <string>
#include <vector>

#include "dl/job.hpp"

namespace tls::cluster {

struct PsPlacement {
  /// Table index (1-8) when this came from Table I, 0 for custom.
  int index = 0;
  /// Display form, e.g. "5, 5, 5, 6".
  std::string name;
  /// Jobs whose PSes share a host, per group.
  std::vector<int> group_sizes;

  int total_jobs() const;
  int num_groups() const { return static_cast<int>(group_sizes.size()); }
};

/// Splits `num_jobs` into `num_groups` sizes as evenly as possible,
/// smallest groups first (e.g. 21 into 4 -> 5,5,5,6).
PsPlacement even_groups(int num_jobs, int num_groups);

/// Table I entry `index` in [1, 8] for `num_jobs` concurrent jobs.
/// Index #2 is the paper's irregular "5, 16" split (scaled for other M);
/// all others are even splits into 1, 2, 3, 4, 5, 7, and M groups.
PsPlacement table1(int index, int num_jobs = 21);

/// All eight Table I placements.
std::vector<PsPlacement> table1_all(int num_jobs = 21);

/// Expands a PS placement into per-job task placements on `num_hosts`
/// hosts: group k's PSes land on host k, and each job's workers are spread
/// one-per-host over the other hosts starting after the PS host (the
/// paper's "20 workers distributed evenly on the rest of 20 hosts").
/// Requires num_groups <= num_hosts and workers_per_job <= num_hosts - 1.
/// Throws std::invalid_argument otherwise.
std::vector<dl::JobPlacement> assign_tasks(const PsPlacement& placement,
                                           int num_hosts,
                                           int workers_per_job);

/// Multi-PS variant (the paper's "general case where one DL job has
/// multiple PSes"): shard 0 of each job lands on its group host and the
/// remaining shards walk the following hosts, so shard k of the group's
/// jobs colocate on host (group + k). Workers spread as in assign_tasks,
/// excluding only the first shard's host. Requires num_ps >= 1 and
/// num_ps <= num_hosts.
std::vector<dl::JobPlacement> assign_tasks_sharded(const PsPlacement& placement,
                                                   int num_hosts,
                                                   int workers_per_job,
                                                   int num_ps);

}  // namespace tls::cluster
