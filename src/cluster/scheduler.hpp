// Online task scheduler — the paper's Future Work direction #1.
//
// Production schedulers (YARN/Borg/Mesos) place tasks by resource demand
// and are agnostic of a task's *role* in the job, so PS tasks naturally
// pile onto the emptiest host (Section II: "colocation of PS tasks can
// naturally occur"). The paper suggests notifying the scheduler of the
// task type so PS tasks can be spread before the job starts. Both policies
// are implemented here so the bench can quantify the difference and how it
// composes with TensorLights.
#pragma once

#include <vector>

#include "dl/job.hpp"

namespace tls::cluster {

enum class SchedulerPolicy {
  /// Role-agnostic least-loaded placement (task count as the load proxy;
  /// ties break toward the lowest host id, as a deterministic bin-packer
  /// would). PS colocation emerges on symmetric clusters.
  kPsAgnostic,
  /// PS-aware: the PS lands on the host with the fewest PS tasks first,
  /// least total load second — spreading the fan-out burst sources.
  kPsAware,
};

const char* to_string(SchedulerPolicy policy);

/// What the scheduler does when admitting one more job would push some
/// host past its PS band budget (tc offers a bounded number of distinct
/// bands — the paper uses 6 — so past that point priorities stop being
/// distinct). The paper's testbed never leaves the share regime; dynamic
/// cluster scenarios exercise all three.
enum class AdmissionPolicy {
  /// Admit anyway; colocated jobs beyond the budget share bands (the
  /// controller's band_for_rank already folds ranks together).
  kShareBand,
  /// Hold the job until a departure frees a band slot (the caller owns the
  /// queue; try_place simply reports kQueued without mutating state).
  kQueue,
  /// Refuse the job outright.
  kReject,
};

const char* to_string(AdmissionPolicy policy);

enum class AdmissionOutcome { kPlaced, kQueued, kRejected };

const char* to_string(AdmissionOutcome outcome);

/// Typed admission result. `placement` is meaningful only for kPlaced (the
/// scheduler's load accounting has then already been charged); kQueued and
/// kRejected leave the scheduler untouched so the caller can retry later.
struct Admission {
  AdmissionOutcome outcome = AdmissionOutcome::kRejected;
  dl::JobPlacement placement;
  /// Largest per-host PS count after placement (kPlaced) or the value that
  /// triggered the refusal (kQueued/kRejected).
  int ps_colocation = 0;
};

/// Stateful online scheduler over a fixed host pool.
class OnlineScheduler {
 public:
  /// `ps_band_limit` caps PS jobs per host before the admission policy
  /// kicks in (0 = unlimited, the seed behaviour). A limit of 6 models the
  /// paper's 6-band tc budget.
  OnlineScheduler(int num_hosts, SchedulerPolicy policy,
                  AdmissionPolicy admission = AdmissionPolicy::kShareBand,
                  int ps_band_limit = 0);

  /// Places one arriving job: chooses the PS host (or shard hosts) by the
  /// policy, then spreads workers one per least-loaded host, excluding the
  /// first PS host. Updates internal load accounting. Requires
  /// spec.num_workers <= num_hosts - 1.
  dl::JobPlacement place(const dl::JobSpec& spec);

  /// Admission-aware placement for dynamic clusters. When every candidate
  /// PS host already carries `ps_band_limit` PS jobs, the admission policy
  /// decides: kShareBand places anyway (band sharing), kQueue/kReject
  /// report the refusal without touching the load accounting. Structural
  /// impossibilities (more workers than hosts) still throw — they are
  /// configuration errors, not load conditions.
  Admission try_place(const dl::JobSpec& spec);

  /// Releases a departing job's tasks.
  void remove(const dl::JobSpec& spec, const dl::JobPlacement& placement);

  int ps_count(net::HostId host) const;
  int task_count(net::HostId host) const;
  int num_hosts() const { return static_cast<int>(tasks_.size()); }

  /// Largest number of PS tasks sharing one host right now — the
  /// contention indicator Table I indexes.
  int max_ps_colocation() const;

  AdmissionPolicy admission_policy() const { return admission_; }
  int ps_band_limit() const { return band_limit_; }

 private:
  /// Least-loaded candidate under the policy. With `respect_limit`, hosts
  /// already at the PS band budget are excluded; returns HostId{-1} when
  /// every host is at the budget (band exhaustion).
  net::HostId pick_ps_host(bool respect_limit) const;

  SchedulerPolicy policy_;
  AdmissionPolicy admission_;
  int band_limit_;          // 0 = unlimited
  std::vector<int> tasks_;  // total tasks per host
  std::vector<int> ps_;     // PS tasks per host
};

}  // namespace tls::cluster
