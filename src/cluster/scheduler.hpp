// Online task scheduler — the paper's Future Work direction #1.
//
// Production schedulers (YARN/Borg/Mesos) place tasks by resource demand
// and are agnostic of a task's *role* in the job, so PS tasks naturally
// pile onto the emptiest host (Section II: "colocation of PS tasks can
// naturally occur"). The paper suggests notifying the scheduler of the
// task type so PS tasks can be spread before the job starts. Both policies
// are implemented here so the bench can quantify the difference and how it
// composes with TensorLights.
#pragma once

#include <vector>

#include "dl/job.hpp"

namespace tls::cluster {

enum class SchedulerPolicy {
  /// Role-agnostic least-loaded placement (task count as the load proxy;
  /// ties break toward the lowest host id, as a deterministic bin-packer
  /// would). PS colocation emerges on symmetric clusters.
  kPsAgnostic,
  /// PS-aware: the PS lands on the host with the fewest PS tasks first,
  /// least total load second — spreading the fan-out burst sources.
  kPsAware,
};

const char* to_string(SchedulerPolicy policy);

/// Stateful online scheduler over a fixed host pool.
class OnlineScheduler {
 public:
  OnlineScheduler(int num_hosts, SchedulerPolicy policy);

  /// Places one arriving job: chooses the PS host (or shard hosts) by the
  /// policy, then spreads workers one per least-loaded host, excluding the
  /// first PS host. Updates internal load accounting. Requires
  /// spec.num_workers <= num_hosts - 1.
  dl::JobPlacement place(const dl::JobSpec& spec);

  /// Releases a departing job's tasks.
  void remove(const dl::JobSpec& spec, const dl::JobPlacement& placement);

  int ps_count(net::HostId host) const;
  int task_count(net::HostId host) const;
  int num_hosts() const { return static_cast<int>(tasks_.size()); }

  /// Largest number of PS tasks sharing one host right now — the
  /// contention indicator Table I indexes.
  int max_ps_colocation() const;

 private:
  net::HostId pick_ps_host() const;

  SchedulerPolicy policy_;
  std::vector<int> tasks_;  // total tasks per host
  std::vector<int> ps_;     // PS tasks per host
};

}  // namespace tls::cluster
