#include "cluster/launcher.hpp"

#include <algorithm>
#include <stdexcept>

namespace tls::cluster {

Launcher::Launcher(sim::Simulator& simulator, net::Fabric& fabric)
    : sim_(simulator), fabric_(fabric) {}

void Launcher::add_listener(JobEventListener* listener) {
  listeners_.push_back(listener);
}

std::uint16_t Launcher::take_port_slot(const LaunchConfig& config) {
  std::uint16_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();  // sorted descending -> lowest slot
    free_slots_.pop_back();
  } else {
    slot = next_fresh_slot_++;
  }
  std::uint32_t port = static_cast<std::uint32_t>(config.base_port) +
                       static_cast<std::uint32_t>(slot) * config.port_stride;
  if (port + config.port_stride > 65536) {
    throw std::runtime_error("port space exhausted: too many concurrent jobs");
  }
  return static_cast<std::uint16_t>(port);
}

dl::JobRuntime& Launcher::admit(
    dl::JobSpec spec, dl::JobPlacement placement, const LaunchConfig& config,
    std::function<void(const dl::JobRuntime&)> on_departed) {
  if (!jobs_.empty() && !dynamic_) {
    throw std::logic_error("admit() cannot follow launch_all()");
  }
  dynamic_ = true;
  if (config.port_stride <
      static_cast<std::uint16_t>(1 + spec.num_ps + spec.num_workers)) {
    throw std::invalid_argument("port_stride too small for task count");
  }
  spec.ps_port = take_port_slot(config);
  std::uint16_t slot = static_cast<std::uint16_t>(
      (spec.ps_port - config.base_port) / config.port_stride);
  std::size_t index = jobs_.size();
  auto on_finish = [this, index, slot, cb = std::move(on_departed)] {
    ++finished_;
    // Lowest-slot-first reuse keeps port assignment a pure function of the
    // admission/departure sequence (determinism across runs).
    free_slots_.insert(
        std::upper_bound(free_slots_.begin(), free_slots_.end(), slot,
                         std::greater<std::uint16_t>()),
        slot);
    const dl::JobRuntime& job = *jobs_[index];
    for (JobEventListener* l : listeners_) {
      l->on_job_departure(job.spec(), job.placement());
    }
    if (cb) cb(job);
  };
  jobs_.push_back(std::make_unique<dl::JobRuntime>(
      sim_, fabric_, std::move(spec), std::move(placement), on_finish,
      busy_sink_));
  dl::JobRuntime& job = *jobs_.back();
  if (gate_ != nullptr) job.set_transmission_gate(gate_);
  for (JobEventListener* l : listeners_) {
    l->on_job_arrival(job.spec(), job.placement());
  }
  job.start();
  return job;
}

void Launcher::launch_all(std::vector<dl::JobSpec> specs,
                          std::vector<dl::JobPlacement> placements,
                          const LaunchConfig& config) {
  if (!jobs_.empty()) throw std::logic_error("launch_all may be called once");
  if (specs.size() != placements.size()) {
    throw std::invalid_argument("specs/placements size mismatch");
  }
  jobs_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    dl::JobSpec& spec = specs[i];
    if (config.port_stride <
        static_cast<std::uint16_t>(1 + spec.num_ps + spec.num_workers)) {
      throw std::invalid_argument("port_stride too small for task count");
    }
    spec.ps_port = static_cast<std::uint16_t>(config.base_port +
                                              i * config.port_stride);
    auto* self = this;
    auto on_finish = [self, i] {
      ++self->finished_;
      const auto& job = *self->jobs_[i];
      for (JobEventListener* l : self->listeners_) {
        l->on_job_departure(job.spec(), job.placement());
      }
    };
    jobs_.push_back(std::make_unique<dl::JobRuntime>(
        sim_, fabric_, spec, placements[i], on_finish, busy_sink_));
    if (gate_ != nullptr) jobs_.back()->set_transmission_gate(gate_);
  }
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    sim_.schedule_after(config.stagger * static_cast<std::int64_t>(i),
                        [this, i] { launch_one(i); });
  }
}

void Launcher::launch_one(std::size_t index) {
  dl::JobRuntime& job = *jobs_[index];
  // Evicted before its staggered start: nothing to launch.
  if (job.finished()) return;
  // Arrival precedes the first packet so controllers can configure tc
  // before the initial model broadcast hits the NIC.
  for (JobEventListener* l : listeners_) {
    l->on_job_arrival(job.spec(), job.placement());
  }
  job.start();
}

}  // namespace tls::cluster
