#include "cluster/launcher.hpp"

#include <stdexcept>

namespace tls::cluster {

Launcher::Launcher(sim::Simulator& simulator, net::Fabric& fabric)
    : sim_(simulator), fabric_(fabric) {}

void Launcher::add_listener(JobEventListener* listener) {
  listeners_.push_back(listener);
}

void Launcher::launch_all(std::vector<dl::JobSpec> specs,
                          std::vector<dl::JobPlacement> placements,
                          const LaunchConfig& config) {
  if (!jobs_.empty()) throw std::logic_error("launch_all may be called once");
  if (specs.size() != placements.size()) {
    throw std::invalid_argument("specs/placements size mismatch");
  }
  jobs_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    dl::JobSpec& spec = specs[i];
    if (config.port_stride <
        static_cast<std::uint16_t>(1 + spec.num_ps + spec.num_workers)) {
      throw std::invalid_argument("port_stride too small for task count");
    }
    spec.ps_port = static_cast<std::uint16_t>(config.base_port +
                                              i * config.port_stride);
    auto* self = this;
    auto on_finish = [self, i] {
      ++self->finished_;
      const auto& job = *self->jobs_[i];
      for (JobEventListener* l : self->listeners_) {
        l->on_job_departure(job.spec(), job.placement());
      }
    };
    jobs_.push_back(std::make_unique<dl::JobRuntime>(
        sim_, fabric_, spec, placements[i], on_finish, busy_sink_));
    if (gate_ != nullptr) jobs_.back()->set_transmission_gate(gate_);
  }
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    sim_.schedule_after(config.stagger * static_cast<std::int64_t>(i),
                        [this, i] { launch_one(i); });
  }
}

void Launcher::launch_one(std::size_t index) {
  dl::JobRuntime& job = *jobs_[index];
  // Arrival precedes the first packet so controllers can configure tc
  // before the initial model broadcast hits the NIC.
  for (JobEventListener* l : listeners_) {
    l->on_job_arrival(job.spec(), job.placement());
  }
  job.start();
}

}  // namespace tls::cluster
