// Job launcher: instantiates JobRuntimes, assigns stable PS ports, staggers
// starts (the paper spaces launches 0.1 s apart to avoid RPC/SSH overload),
// and publishes arrival/departure events — the hook the TensorLights
// controller subscribes to.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dl/job_runtime.hpp"
#include "net/fabric.hpp"
#include "simcore/simulator.hpp"

namespace tls::cluster {

/// Observer of job lifecycle. Arrival fires *before* the job's first flow
/// enters the network, so a controller can install priorities in time;
/// departure fires when the job reaches its global-step target.
class JobEventListener {
 public:
  virtual ~JobEventListener() = default;
  virtual void on_job_arrival(const dl::JobSpec& spec,
                              const dl::JobPlacement& placement) = 0;
  virtual void on_job_departure(const dl::JobSpec& spec,
                                const dl::JobPlacement& placement) = 0;
};

struct LaunchConfig {
  /// Delay between consecutive job launches.
  sim::Time stagger = 100 * sim::kMillisecond;
  /// First PS port; job j gets base_port + j * port_stride. The stride
  /// must cover 1 + num_ps + workers so PS shard ports (ps_port+p) and
  /// worker ports (ps_port+num_ps+w) never collide across jobs.
  std::uint16_t base_port = 5000;
  std::uint16_t port_stride = 64;
};

class Launcher {
 public:
  Launcher(sim::Simulator& simulator, net::Fabric& fabric);

  Launcher(const Launcher&) = delete;
  Launcher& operator=(const Launcher&) = delete;

  /// Listener lifetime must cover the simulation.
  void add_listener(JobEventListener* listener);

  /// Optional sink receiving every CPU-busy interval of every job.
  void set_busy_sink(dl::BusySink sink) { busy_sink_ = std::move(sink); }

  /// Optional transmission-coordination gate passed to every job (must
  /// outlive the simulation). Set before launch_all().
  void set_transmission_gate(dl::TransmissionGate* gate) { gate_ = gate; }

  /// Creates runtimes for `specs[i]` placed at `placements[i]` and
  /// schedules their staggered starts from the current simulation time.
  /// Assigns each spec's ps_port. May be called once; incompatible with
  /// the dynamic admit() path.
  void launch_all(std::vector<dl::JobSpec> specs,
                  std::vector<dl::JobPlacement> placements,
                  const LaunchConfig& config = {});

  /// Dynamic-cluster admission: creates one job and starts it at the
  /// current simulation time (arrival listeners fire first, as in
  /// launch_all). The spec's ps_port is drawn from a free-slot pool —
  /// slots are recycled on departure so hour-long churn traces never walk
  /// off the end of the 16-bit port space. `on_departed` (optional) runs
  /// after the departure listeners when this job ends, whether by
  /// completion or eviction. Incompatible with launch_all.
  dl::JobRuntime& admit(dl::JobSpec spec, dl::JobPlacement placement,
                        const LaunchConfig& config = {},
                        std::function<void(const dl::JobRuntime&)>
                            on_departed = {});

  /// Evicts a running job mid-flight; its departure fires exactly like a
  /// normal completion (listeners + on_departed + port-slot release).
  /// No-op on an already-finished job.
  void evict(dl::JobRuntime& job) { job.request_stop(); }

  const std::vector<std::unique_ptr<dl::JobRuntime>>& jobs() const {
    return jobs_;
  }
  int finished_count() const { return finished_; }
  bool all_finished() const {
    return finished_ == static_cast<int>(jobs_.size()) && !jobs_.empty();
  }

 private:
  void launch_one(std::size_t index);
  /// Lowest free port slot (allocating a fresh one when the pool is dry).
  std::uint16_t take_port_slot(const LaunchConfig& config);

  sim::Simulator& sim_;
  net::Fabric& fabric_;
  std::vector<JobEventListener*> listeners_;
  std::vector<std::unique_ptr<dl::JobRuntime>> jobs_;
  dl::BusySink busy_sink_;
  dl::TransmissionGate* gate_ = nullptr;
  int finished_ = 0;
  bool dynamic_ = false;
  /// Port-slot recycling for the dynamic path: slot s covers ports
  /// [base_port + s*stride, base_port + (s+1)*stride).
  std::vector<std::uint16_t> free_slots_;  // kept sorted descending
  std::uint16_t next_fresh_slot_ = 0;
};

}  // namespace tls::cluster
