#include "tensorlights/controller.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <sstream>
#include <stdexcept>

#include "obs/trace.hpp"
#include "simcore/log.hpp"

namespace tls::core {

namespace {
/// Filter preference for one PS shard's steering rule: unique per
/// (job, shard), stable across re-ranks so re-issuing a filter replaces
/// the old mapping. Up to 64 PS shards per job.
int filter_pref(std::int32_t job_id, int shard) {
  return 1000 + job_id * 64 + shard;
}

/// Filter preference for a gradient-steering rule on a worker host
/// (two-sided mode); disjoint from the model-update prefs above.
int gradient_pref(std::int32_t job_id, int shard) {
  return 200000 + job_id * 64 + shard;
}
}  // namespace

Controller::Controller(sim::Simulator& simulator, tc::TrafficControl& control,
                       ControllerConfig config)
    : sim_(simulator),
      control_(control),
      config_(config),
      rng_(simulator.rng().fork("tensorlights")) {
  if (config_.max_bands < 1) throw std::invalid_argument("max_bands < 1");
  int plane_limit = config_.data_plane == DataPlane::kHtb ? 8 : 15;
  if (config_.max_bands > plane_limit) {
    // htb class prio is 0..7; prio offers 16 bands and we reserve the last
    // one for default traffic. Respect the data plane's real limits.
    throw std::invalid_argument("max_bands exceeds data-plane limit");
  }
  if (config_.policy == PolicyKind::kTlsRR) {
    if (config_.rotation_interval <= sim::Time{0}) {
      throw std::invalid_argument("rotation_interval must be positive");
    }
    rotation_timer_ = std::make_unique<sim::PeriodicTimer>(
        sim_, config_.rotation_interval, [this] { rotate(); });
    rotation_timer_->start();
  }
}

Controller::~Controller() = default;

void Controller::exec_or_die(const std::string& command) {
  tc::Status s = control_.exec(command);
  if (!s.ok) {
    throw std::runtime_error("tensorlights: tc command failed: " + s.error +
                             " [" + command + "]");
  }
}

void Controller::on_job_arrival(const dl::JobSpec& spec,
                                const dl::JobPlacement& placement) {
  if (config_.policy == PolicyKind::kFifo) return;
  std::uint64_t arrival_seq = arrivals_++;
  std::uint64_t random_key = rng_.next();
  std::vector<net::HostId>& hosts = job_hosts_[spec.job_id];
  for (int p = 0; p < spec.num_ps; ++p) {
    net::HostId host = placement.ps_shard_host(p);
    HostState& state = hosts_[host];
    if (!state.configured) configure_host(host);
    auto jit = std::find_if(
        state.jobs.begin(), state.jobs.end(),
        [&](const ManagedJob& j) { return j.job_id == spec.job_id; });
    if (jit == state.jobs.end()) {
      ManagedJob job;
      job.job_id = spec.job_id;
      job.update_bytes = spec.model.update_bytes();
      job.arrival_seq = arrival_seq;
      job.random_key = random_key;
      state.jobs.push_back(job);
      jit = state.jobs.end() - 1;
      hosts.push_back(host);
    }
    jit->shards.push_back(ManagedShard{p, spec.ps_shard_port(p)});
  }
  for (net::HostId host : hosts) install_filters(host);

  if (config_.prioritize_gradients) {
    GradientState& grad = gradient_jobs_[spec.job_id];
    grad.worker_hosts = placement.worker_hosts;
    for (int p = 0; p < spec.num_ps; ++p) {
      grad.ps_ports.push_back(spec.ps_shard_port(p));
    }
    install_gradient_filters();
  }
  TLS_DEBUG << "TensorLights: job " << spec.job_id << " arrived ("
            << spec.num_ps << " PS shard(s))";
}

void Controller::on_job_departure(const dl::JobSpec& spec,
                                  const dl::JobPlacement& placement) {
  if (config_.policy == PolicyKind::kFifo) return;
  (void)placement;
  auto hosts_it = job_hosts_.find(spec.job_id);
  if (hosts_it == job_hosts_.end()) return;
  for (net::HostId host : hosts_it->second) {
    auto hit = hosts_.find(host);
    if (hit == hosts_.end()) continue;
    HostState& state = hit->second;
    auto jit = std::find_if(
        state.jobs.begin(), state.jobs.end(),
        [&](const ManagedJob& j) { return j.job_id == spec.job_id; });
    if (jit == state.jobs.end()) continue;
    for (const ManagedShard& shard : jit->shards) {
      exec_or_die("tc filter del dev " + tc::device_name(host) + " pref " +
                  std::to_string(filter_pref(spec.job_id, shard.shard)));
    }
    state.jobs.erase(jit);
    // Remaining jobs shift up in priority (batch-mode reassignment on
    // departure, Section IV-B).
    if (!state.jobs.empty()) install_filters(host);
  }
  job_hosts_.erase(hosts_it);

  auto grad_it = gradient_jobs_.find(spec.job_id);
  if (grad_it != gradient_jobs_.end()) {
    std::set<net::HostId> worker_hosts(grad_it->second.worker_hosts.begin(),
                                       grad_it->second.worker_hosts.end());
    for (net::HostId host : worker_hosts) {
      for (std::size_t p = 0; p < grad_it->second.ps_ports.size(); ++p) {
        exec_or_die("tc filter del dev " + tc::device_name(host) + " pref " +
                    std::to_string(gradient_pref(spec.job_id,
                                                 static_cast<int>(p))));
      }
    }
    gradient_jobs_.erase(grad_it);
    install_gradient_filters();  // remaining jobs' bands may have shifted
  }
}

void Controller::configure_host(net::HostId host) {
  const std::string dev = tc::device_name(host);
  net::Rate link = control_.link_rate(host);
  std::ostringstream cmd;
  if (config_.data_plane == DataPlane::kHtb) {
    // Root htb whose default class carries unclassified traffic (colocated
    // workers' gradient pushes, control RPCs) with an assured share so
    // prioritized model-update bursts cannot starve it.
    exec_or_die("tc qdisc add dev " + dev + " root handle 1: htb default 3f");
    cmd << "tc class add dev " << dev << " parent 1: classid 1:3f htb rate "
        << tc::format_rate(link * config_.default_class_rate_fraction)
        << " ceil " << tc::format_rate(link) << " prio 7";
    exec_or_die(cmd.str());
    for (int b = 0; b < config_.max_bands; ++b) {
      std::ostringstream c;
      c << "tc class add dev " << dev << " parent 1: classid "
        << tc::Handle{1, static_cast<std::uint16_t>(b + 1)}.str()
        << " htb rate " << tc::format_rate(net::mbps(1)) << " ceil "
        << tc::format_rate(link) << " prio " << b;
      exec_or_die(c.str());
    }
  } else {
    // prio plane: bands 0..max_bands-1 carry jobs, one extra band carries
    // default traffic via a catch-all filter at the lowest preference.
    int bands = config_.max_bands + 1;
    exec_or_die("tc qdisc add dev " + dev + " root handle 1: prio bands " +
                std::to_string(bands));
    exec_or_die("tc filter add dev " + dev + " parent 1: pref 65000 u32 flowid " +
                tc::Handle{1, static_cast<std::uint16_t>(bands)}.str());
  }
  hosts_[host].configured = true;
}

std::vector<int> Controller::ranks_for(const HostState& state) const {
  int n = static_cast<int>(state.jobs.size());
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  auto key_less = [&](int a, int b) {
    const ManagedJob& ja = state.jobs[static_cast<std::size_t>(a)];
    const ManagedJob& jb = state.jobs[static_cast<std::size_t>(b)];
    switch (config_.strategy) {
      case AssignStrategy::kRandom:
        return std::tie(ja.random_key, ja.arrival_seq) <
               std::tie(jb.random_key, jb.arrival_seq);
      case AssignStrategy::kSmallestModelFirst:
        return std::tie(ja.update_bytes, ja.arrival_seq) <
               std::tie(jb.update_bytes, jb.arrival_seq);
      case AssignStrategy::kArrivalOrder:
      default:
        return ja.arrival_seq < jb.arrival_seq;
    }
  };
  std::sort(order.begin(), order.end(), key_less);
  std::vector<int> ranks(static_cast<std::size_t>(n));
  for (int pos = 0; pos < n; ++pos) {
    int rank = static_cast<int>(
        (static_cast<std::uint64_t>(pos) + rotation_offset_) %
        static_cast<std::uint64_t>(n));
    ranks[static_cast<std::size_t>(order[static_cast<std::size_t>(pos)])] = rank;
  }
  return ranks;
}

void Controller::install_filters(net::HostId host) {
  const HostState& state = hosts_.at(host);
  const std::string dev = tc::device_name(host);
  std::vector<int> ranks = ranks_for(state);
  int n = static_cast<int>(state.jobs.size());
  for (int i = 0; i < n; ++i) {
    const ManagedJob& job = state.jobs[static_cast<std::size_t>(i)];
    int band = band_for_rank(ranks[static_cast<std::size_t>(i)], n,
                             config_.max_bands);
    if (TLS_OBS_ACTIVE(sim_.tracer())) {
      sim_.tracer()->band_assign(sim_.now(), host, job.job_id,
                                 net::BandId{band});
    }
    for (const ManagedShard& shard : job.shards) {
      std::ostringstream cmd;
      cmd << "tc filter add dev " << dev << " parent 1: pref "
          << filter_pref(job.job_id, shard.shard) << " u32 match ip sport "
          << shard.port << " 0xffff flowid "
          << tc::Handle{1, static_cast<std::uint16_t>(band + 1)}.str();
      exec_or_die(cmd.str());
    }
  }
}

void Controller::install_gradient_filters() {
  for (const auto& [job_id, grad] : gradient_jobs_) {
    int band = band_of(job_id);
    if (band < 0) continue;
    std::set<net::HostId> worker_hosts(grad.worker_hosts.begin(),
                                       grad.worker_hosts.end());
    for (net::HostId host : worker_hosts) {
      HostState& state = hosts_[host];
      if (!state.configured) configure_host(host);
      for (std::size_t p = 0; p < grad.ps_ports.size(); ++p) {
        std::ostringstream cmd;
        cmd << "tc filter add dev " << tc::device_name(host) << " parent 1: "
            << "pref " << gradient_pref(job_id, static_cast<int>(p))
            << " u32 match ip dport " << grad.ps_ports[p] << " 0xffff flowid "
            << tc::Handle{1, static_cast<std::uint16_t>(band + 1)}.str();
        exec_or_die(cmd.str());
      }
    }
  }
}

void Controller::rotate() {
  ++rotation_offset_;
  ++rotations_;
  if (TLS_OBS_ACTIVE(sim_.tracer())) {
    sim_.tracer()->rotation(sim_.now(),
                            static_cast<std::int64_t>(rotation_offset_));
  }
  for (const auto& [host, state] : hosts_) {
    // Only hosts with actual contention need re-ranking; single-PS hosts
    // keep their lone filter (the paper limits tc churn the same way).
    if (state.jobs.size() >= 2) install_filters(host);
  }
  if (config_.prioritize_gradients) install_gradient_filters();
}

int Controller::rank_of(std::int32_t job_id) const {
  auto it = job_hosts_.find(job_id);
  if (it == job_hosts_.end() || it->second.empty()) return -1;
  net::HostId first =
      *std::min_element(it->second.begin(), it->second.end());
  const HostState& state = hosts_.at(first);
  std::vector<int> ranks = ranks_for(state);
  for (std::size_t i = 0; i < state.jobs.size(); ++i) {
    if (state.jobs[i].job_id == job_id) return ranks[i];
  }
  return -1;
}

int Controller::band_of(std::int32_t job_id) const {
  auto it = job_hosts_.find(job_id);
  if (it == job_hosts_.end() || it->second.empty()) return -1;
  net::HostId first =
      *std::min_element(it->second.begin(), it->second.end());
  const HostState& state = hosts_.at(first);
  int rank = rank_of(job_id);
  if (rank < 0) return -1;
  return band_for_rank(rank, static_cast<int>(state.jobs.size()),
                       config_.max_bands);
}

bool Controller::host_configured(net::HostId host) const {
  auto it = hosts_.find(host);
  return it != hosts_.end() && it->second.configured;
}

int Controller::managed_job_count(net::HostId host) const {
  auto it = hosts_.find(host);
  return it == hosts_.end() ? 0 : static_cast<int>(it->second.jobs.size());
}

}  // namespace tls::core
