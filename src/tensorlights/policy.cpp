#include "tensorlights/policy.hpp"

#include <cassert>

namespace tls::core {

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFifo: return "FIFO";
    case PolicyKind::kTlsOne: return "TLs-One";
    case PolicyKind::kTlsRR: return "TLs-RR";
  }
  return "?";
}

const char* to_string(AssignStrategy strategy) {
  switch (strategy) {
    case AssignStrategy::kArrivalOrder: return "arrival-order";
    case AssignStrategy::kRandom: return "random";
    case AssignStrategy::kSmallestModelFirst: return "smallest-model-first";
  }
  return "?";
}

const char* to_string(DataPlane plane) {
  switch (plane) {
    case DataPlane::kHtb: return "htb";
    case DataPlane::kPrio: return "prio";
  }
  return "?";
}

int band_for_rank(int rank, int n, int bands) {
  assert(rank >= 0 && rank < n && bands >= 1);
  if (n <= bands) return rank;
  // Spread n jobs across the bands evenly; consecutive ranks share.
  return rank * bands / n;
}

}  // namespace tls::core
