// Centralized transmission coordinator — the paper's Future Work #2
// ("a customized protocol to coordinate model/gradient updates ...
// orchestrated by a logically centralized coordinator"), built as a
// TransmissionGate so it can be compared head-to-head with TensorLights.
//
// Each per-iteration model-update burst must obtain a slot on its egress
// host before transmitting; at most `slots_per_host` bursts are active per
// host at a time (1 = fully serialized bursts — the ideal schedule a
// global coordinator would aim for). Every grant costs one coordination
// round trip, the overhead the paper warns about: with RTT = 0 this is an
// oracle; with realistic RTTs the oracle pays for its coordination.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "dl/transmission_gate.hpp"
#include "simcore/simulator.hpp"

namespace tls::core {

struct CoordinatorConfig {
  /// Concurrent bursts allowed per egress host.
  int slots_per_host = 1;
  /// One-way request latency to the coordinator; a grant costs two of
  /// these (request + response).
  sim::Time coordination_rtt = 2 * sim::kMillisecond;
};

class CentralCoordinator final : public dl::TransmissionGate {
 public:
  CentralCoordinator(sim::Simulator& simulator, CoordinatorConfig config);

  void request(net::HostId host, net::Bytes bytes,
               std::function<void()> grant) override;
  void release(net::HostId host) override;

  /// Grants issued so far.
  std::uint64_t grants() const { return grants_; }
  /// Total time bursts spent queued waiting for a slot (excludes the RTT).
  double total_wait_s() const { return total_wait_s_; }
  /// Bursts currently holding a slot on `host`.
  int active(net::HostId host) const;
  /// Bursts queued on `host`.
  std::size_t queued(net::HostId host) const;

 private:
  struct Pending {
    std::function<void()> grant;
    sim::Time enqueued{};
  };
  struct HostState {
    int active = 0;
    std::deque<Pending> queue;
  };

  void issue(net::HostId host, Pending pending);

  sim::Simulator& sim_;
  CoordinatorConfig config_;
  std::map<net::HostId, HostState> hosts_;
  std::uint64_t grants_ = 0;
  double total_wait_s_ = 0;
};

}  // namespace tls::core
