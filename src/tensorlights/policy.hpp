// TensorLights policy configuration.
#pragma once

#include "simcore/time.hpp"

namespace tls::core {

/// Network scheduling policy under evaluation.
enum class PolicyKind {
  /// Baseline: no tc configuration at all; the NIC keeps its default FIFO
  /// behaviour.
  kFifo,
  /// TensorLights-One: distinct per-job priority, reconfigured only on job
  /// arrival and departure (batch mode, Section IV-B).
  kTlsOne,
  /// TensorLights-Round-Robin: like TLs-One but the assignment rotates
  /// every `rotation_interval` for long-term fairness (Section IV-C).
  kTlsRR,
};

const char* to_string(PolicyKind kind);

/// How arriving jobs are ranked into priorities on a host (Section IV-B:
/// "we do not constrain how priorities are assigned").
enum class AssignStrategy {
  kArrivalOrder,        ///< earlier arrival = higher priority
  kRandom,              ///< random, suited to homogeneous grid search
  kSmallestModelFirst,  ///< avoid head-of-line blocking by big updates
};

const char* to_string(AssignStrategy strategy);

/// Which qdisc the controller deploys on contended hosts.
enum class DataPlane {
  kHtb,   ///< hierarchical token bucket, as in the paper's implementation
  kPrio,  ///< strict-priority bands; simpler, same scheduling order
};

const char* to_string(DataPlane plane);

struct ControllerConfig {
  PolicyKind policy = PolicyKind::kTlsOne;
  AssignStrategy strategy = AssignStrategy::kArrivalOrder;
  DataPlane data_plane = DataPlane::kHtb;
  /// tc offers a limited number of distinct bands; the paper uses up to 6
  /// and lets jobs share bands beyond that.
  int max_bands = 6;
  /// TLs-RR rotation interval T (paper: 20 s).
  sim::Time rotation_interval = 20 * sim::kSecond;
  /// Fraction of the link rate guaranteed to unclassified (non-model-
  /// update) traffic through the htb default class, so colocated workers'
  /// gradient pushes are not starved by prioritized bursts.
  double default_class_rate_fraction = 0.2;

  /// Two-sided extension: also configure every *worker* host and steer the
  /// job's gradient updates (matched by destination PS port) into the
  /// job's band. The paper's Insight #2 argues this is unnecessary —
  /// PS-side control implicitly paces gradients — and this knob exists to
  /// test exactly that claim (see bench_ablate_two_sided).
  bool prioritize_gradients = false;
};

/// Maps a job's priority rank among `n` colocated jobs onto one of
/// `bands` bands, spreading jobs evenly when n > bands (jobs then share
/// bands, as the paper notes). rank 0 = highest priority = band 0.
int band_for_rank(int rank, int n, int bands);

}  // namespace tls::core
