// The TensorLights controller: the paper's end-host traffic scheduler.
//
// One logical daemon per host (implemented as one object holding per-host
// state). It subscribes to job arrival/departure, and on every host that
// runs parameter servers it installs an htb (or prio) root qdisc whose
// bands realize per-job priorities; each job's model-update traffic is
// steered into its band by a tc filter matching the PS's TCP port. Under
// TLs-RR a timer rotates the assignment every interval T. Hosts without
// PS tasks are never touched, and all commands go through the tc DSL —
// exactly the deployment story of the paper (no application, scheduler, or
// hardware changes).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "cluster/launcher.hpp"
#include "simcore/simulator.hpp"
#include "tc/tc.hpp"
#include "tensorlights/policy.hpp"

namespace tls::core {

class Controller : public cluster::JobEventListener {
 public:
  Controller(sim::Simulator& simulator, tc::TrafficControl& control,
             ControllerConfig config);
  ~Controller() override;

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  void on_job_arrival(const dl::JobSpec& spec,
                      const dl::JobPlacement& placement) override;
  void on_job_departure(const dl::JobSpec& spec,
                        const dl::JobPlacement& placement) override;

  const ControllerConfig& config() const { return config_; }

  /// Band currently assigned to a job's model updates, or -1 when the job
  /// is not managed (FIFO policy or unknown job). For a multi-PS job this
  /// is the band on the job's lowest-numbered PS host; ranks are computed
  /// per host, so shards on different hosts may sit in different bands.
  int band_of(std::int32_t job_id) const;

  /// Priority rank of a job among the PS jobs of its (first) PS host
  /// (0 = highest), or -1 when unmanaged.
  int rank_of(std::int32_t job_id) const;

  /// True when the controller has installed a qdisc on this host.
  bool host_configured(net::HostId host) const;

  /// PS jobs currently managed on `host` (0 when unconfigured or FIFO) —
  /// the band-map occupancy dynamic-cluster scenarios sample over time.
  int managed_job_count(net::HostId host) const;

  /// Jobs with at least one managed PS shard anywhere, each counted once.
  /// Returns to 0 when every job has departed (churn leak check).
  int total_managed_jobs() const {
    return static_cast<int>(job_hosts_.size());
  }

  /// Number of TLs-RR rotations performed so far.
  std::uint64_t rotations() const { return rotations_; }

 private:
  struct ManagedShard {
    int shard = 0;
    std::uint16_t port = 0;
  };
  struct ManagedJob {
    std::int32_t job_id = 0;
    net::Bytes update_bytes{};
    std::uint64_t arrival_seq = 0;
    std::uint64_t random_key = 0;
    /// PS shards of this job living on this host (usually one).
    std::vector<ManagedShard> shards;
  };
  struct HostState {
    bool configured = false;
    std::vector<ManagedJob> jobs;  // in arrival order
  };

  void configure_host(net::HostId host);
  /// Computes ranks for a host's jobs under the current strategy and
  /// rotation offset, then (re)issues one filter per job.
  void install_filters(net::HostId host);
  /// Two-sided mode: (re)issues gradient-steering filters on every worker
  /// host of every managed job (bands follow the jobs' current ranks).
  void install_gradient_filters();
  std::vector<int> ranks_for(const HostState& state) const;
  void rotate();
  void exec_or_die(const std::string& command);

  sim::Simulator& sim_;
  tc::TrafficControl& control_;
  ControllerConfig config_;
  struct GradientState {
    std::vector<net::HostId> worker_hosts;
    std::vector<std::uint16_t> ps_ports;  // indexed by shard
  };

  sim::Rng rng_;
  std::map<net::HostId, HostState> hosts_;
  std::map<std::int32_t, std::vector<net::HostId>> job_hosts_;
  std::map<std::int32_t, GradientState> gradient_jobs_;
  std::uint64_t arrivals_ = 0;
  std::uint64_t rotations_ = 0;
  std::uint64_t rotation_offset_ = 0;
  std::unique_ptr<sim::PeriodicTimer> rotation_timer_;
};

}  // namespace tls::core
