#include "tensorlights/coordinator.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace tls::core {

CentralCoordinator::CentralCoordinator(sim::Simulator& simulator,
                                       CoordinatorConfig config)
    : sim_(simulator), config_(config) {
  if (config_.slots_per_host < 1) {
    throw std::invalid_argument("slots_per_host < 1");
  }
  if (config_.coordination_rtt < sim::Time{0}) {
    throw std::invalid_argument("negative coordination_rtt");
  }
}

void CentralCoordinator::request(net::HostId host, net::Bytes /*bytes*/,
                                 std::function<void()> grant) {
  assert(grant);
  // The request itself travels to the coordinator first.
  sim_.schedule_after(config_.coordination_rtt, [this, host,
                                                 g = std::move(grant)]() mutable {
    HostState& state = hosts_[host];
    Pending pending{std::move(g), sim_.now()};
    if (state.active < config_.slots_per_host) {
      issue(host, std::move(pending));
    } else {
      state.queue.push_back(std::move(pending));
    }
  });
}

void CentralCoordinator::issue(net::HostId host, Pending pending) {
  HostState& state = hosts_[host];
  ++state.active;
  ++grants_;
  total_wait_s_ += sim::to_seconds(sim_.now() - pending.enqueued);
  // The grant travels back to the requesting host.
  sim_.schedule_after(config_.coordination_rtt,
                      [g = std::move(pending.grant)] { g(); });
}

void CentralCoordinator::release(net::HostId host) {
  // The release notification also takes one trip to the coordinator.
  sim_.schedule_after(config_.coordination_rtt, [this, host] {
    HostState& state = hosts_[host];
    assert(state.active > 0);
    --state.active;
    if (!state.queue.empty() && state.active < config_.slots_per_host) {
      Pending next = std::move(state.queue.front());
      state.queue.pop_front();
      issue(host, std::move(next));
    }
  });
}

int CentralCoordinator::active(net::HostId host) const {
  auto it = hosts_.find(host);
  return it == hosts_.end() ? 0 : it->second.active;
}

std::size_t CentralCoordinator::queued(net::HostId host) const {
  auto it = hosts_.find(host);
  return it == hosts_.end() ? 0 : it->second.queue.size();
}

}  // namespace tls::core
