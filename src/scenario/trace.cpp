#include "scenario/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>
#include <stdexcept>

#include "dl/model.hpp"
#include "simcore/rng.hpp"

namespace tls::scenario {

const char* to_string(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kParetoBounded: return "pareto";
  }
  return "?";
}

double bounded_pareto(double u, double alpha, double lo, double hi) {
  // Inverse CDF of the Pareto(alpha) distribution truncated to [lo, hi]:
  // F(x) = (1 - (lo/x)^alpha) / (1 - (lo/hi)^alpha).
  double tail = 1.0 - std::pow(lo / hi, alpha);
  return lo / std::pow(1.0 - u * tail, 1.0 / alpha);
}

namespace {

void validate(const TraceConfig& config) {
  if (config.num_jobs < 1) throw std::invalid_argument("num_jobs < 1");
  if (config.mean_interarrival_s <= 0) {
    throw std::invalid_argument("mean_interarrival_s <= 0");
  }
  if (config.pareto_alpha <= 0) {
    throw std::invalid_argument("pareto_alpha <= 0");
  }
  if (config.pareto_min_s <= 0 || config.pareto_max_s <= config.pareto_min_s) {
    throw std::invalid_argument("pareto bounds: need 0 < min < max");
  }
  if (config.models.empty()) throw std::invalid_argument("empty model mix");
  for (const std::string& name : config.models) {
    if (!dl::zoo::by_name(name)) {
      throw std::invalid_argument("unknown model in mix: " + name);
    }
  }
  if (config.min_workers < 1 || config.max_workers < config.min_workers) {
    throw std::invalid_argument("worker range: need 1 <= min <= max");
  }
  if (config.min_iterations < 1 ||
      config.max_iterations < config.min_iterations) {
    throw std::invalid_argument("iteration range: need 1 <= min <= max");
  }
  if (config.local_batch_size < 1) {
    throw std::invalid_argument("local_batch_size < 1");
  }
  if (config.evict_fraction < 0 || config.evict_fraction > 1) {
    throw std::invalid_argument("evict_fraction outside [0, 1]");
  }
  if (config.evict_fraction > 0 &&
      (config.evict_min_s <= 0 || config.evict_max_s < config.evict_min_s)) {
    throw std::invalid_argument("evict range: need 0 < min <= max");
  }
}

}  // namespace

Trace generate_trace(const TraceConfig& config) {
  validate(config);
  sim::Rng root(config.seed);
  // Separate streams per quantity: adding a new draw to one stream never
  // perturbs the others (the run-for-run comparability contract).
  sim::Rng arrivals = root.fork("arrivals");
  sim::Rng shape = root.fork("shape");
  sim::Rng churn = root.fork("churn");

  Trace trace;
  trace.jobs.reserve(static_cast<std::size_t>(config.num_jobs));
  double clock_s = 0;
  for (int j = 0; j < config.num_jobs; ++j) {
    double gap_s =
        config.process == ArrivalProcess::kPoisson
            ? arrivals.exponential(config.mean_interarrival_s)
            : bounded_pareto(arrivals.uniform(), config.pareto_alpha,
                             config.pareto_min_s, config.pareto_max_s);
    clock_s += gap_s;

    TraceJob job;
    job.job_id = j;
    job.arrival = sim::from_seconds(clock_s);
    job.model = config.models[static_cast<std::size_t>(
        shape.uniform_u64(config.models.size()))];
    job.num_workers = static_cast<int>(
        shape.uniform_i64(config.min_workers, config.max_workers));
    job.local_batch_size = config.local_batch_size;
    job.iterations =
        shape.uniform_i64(config.min_iterations, config.max_iterations);
    if (churn.bernoulli(config.evict_fraction)) {
      job.lifetime = sim::from_seconds(
          churn.uniform(config.evict_min_s, config.evict_max_s));
    }
    trace.jobs.push_back(std::move(job));
  }
  return trace;
}

namespace {

std::string fmt_seconds(sim::Time t) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9f", sim::to_seconds(t));
  return buf;
}

}  // namespace

std::string trace_csv(const Trace& trace) {
  std::string out = "job_id,arrival_s,lifetime_s,model,workers,batch,iterations\n";
  for (const TraceJob& job : trace.jobs) {
    out += std::to_string(job.job_id);
    out += ',';
    out += fmt_seconds(job.arrival);
    out += ',';
    out += fmt_seconds(job.lifetime);
    out += ',';
    out += job.model;
    out += ',';
    out += std::to_string(job.num_workers);
    out += ',';
    out += std::to_string(job.local_batch_size);
    out += ',';
    out += std::to_string(job.iterations);
    out += '\n';
  }
  return out;
}

bool parse_trace_csv(const std::string& text, Trace* out, std::string* error) {
  Trace trace;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  std::set<std::int32_t> seen_ids;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line_no == 1 && line.rfind("job_id,", 0) == 0) continue;  // header
    std::vector<std::string> fields;
    std::size_t start = 0;
    for (;;) {
      std::size_t comma = line.find(',', start);
      fields.push_back(line.substr(
          start, comma == std::string::npos ? comma : comma - start));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    if (fields.size() != 7) {
      *error = "trace line " + std::to_string(line_no) + ": expected 7 fields, got " +
               std::to_string(fields.size());
      return false;
    }
    auto fail = [&](const char* what) {
      *error = "trace line " + std::to_string(line_no) + ": " + what;
      return false;
    };
    TraceJob job;
    char* end = nullptr;
    long id = std::strtol(fields[0].c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || fields[0].empty()) {
      return fail("bad job_id");
    }
    job.job_id = static_cast<std::int32_t>(id);
    double arrival_s = std::strtod(fields[1].c_str(), &end);
    if (end == nullptr || *end != '\0' || fields[1].empty() || arrival_s < 0) {
      return fail("bad arrival_s");
    }
    job.arrival = sim::from_seconds(arrival_s);
    double lifetime_s = std::strtod(fields[2].c_str(), &end);
    if (end == nullptr || *end != '\0' || fields[2].empty()) {
      return fail("bad lifetime_s");
    }
    job.lifetime = sim::from_seconds(lifetime_s);
    if (fields[3].empty()) return fail("empty model name");
    job.model = fields[3];
    long workers = std::strtol(fields[4].c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || workers < 1) {
      return fail("bad workers");
    }
    job.num_workers = static_cast<int>(workers);
    long batch = std::strtol(fields[5].c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || batch < 1) return fail("bad batch");
    job.local_batch_size = static_cast<int>(batch);
    long iters = std::strtol(fields[6].c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || iters < 1) {
      return fail("bad iterations");
    }
    job.iterations = iters;
    if (!seen_ids.insert(job.job_id).second) {
      return fail("duplicate job_id");
    }
    trace.jobs.push_back(std::move(job));
  }
  std::sort(trace.jobs.begin(), trace.jobs.end(),
            [](const TraceJob& a, const TraceJob& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return a.job_id < b.job_id;
            });
  *out = std::move(trace);
  return true;
}

bool parse_model_mix(const std::string& text, std::vector<std::string>* out,
                     std::string* error) {
  std::string valid;
  for (const dl::ModelSpec& m : dl::zoo::all()) {
    if (!valid.empty()) valid += "|";
    valid += m.name;
  }
  out->clear();
  std::stringstream stream(text);
  std::string name;
  while (std::getline(stream, name, ',')) {
    if (name.empty()) continue;
    if (name == "mix") {
      for (const dl::ModelSpec& m : dl::zoo::all()) out->push_back(m.name);
      continue;
    }
    if (!dl::zoo::by_name(name)) {
      *error = "unknown model '" + name + "' (" + valid + "|mix)";
      return false;
    }
    out->push_back(name);
  }
  if (out->empty()) {
    *error = "empty model mix (" + valid + "|mix)";
    return false;
  }
  return true;
}

}  // namespace tls::scenario
