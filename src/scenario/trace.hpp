// tls::scenario — trace-driven dynamic-cluster workloads.
//
// A Trace is a deterministic timeline of job arrivals: when each job
// shows up, what model it trains, how many workers it wants, and (for a
// churn fraction) when it is forcibly evicted. Traces are either
// generated from a seeded TraceConfig — Poisson or bounded-Pareto
// interarrival, heterogeneous model/worker/iteration draws, all through
// sim::Rng so the same seed yields the same workload byte-for-byte — or
// replayed from a CSV produced by trace_csv (or written by hand).
//
// Generation is decoupled from the simulator's seed on purpose: a policy
// comparison runs the *identical* workload under FIFO / TLs-One / TLs-RR
// while each run's compute-noise streams stay independent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/time.hpp"

namespace tls::scenario {

/// Interarrival-time distribution of the generated trace.
enum class ArrivalProcess {
  /// Memoryless arrivals: exponential interarrival with the configured
  /// mean — the classic cluster-trace baseline.
  kPoisson,
  /// Heavy-tailed arrivals: bounded Pareto interarrival (shape alpha on
  /// [min, max]), producing the bursts-then-lulls pattern real cluster
  /// traces exhibit. Bursts are what exhaust tc's band budget.
  kParetoBounded,
};

const char* to_string(ArrivalProcess process);

/// One job of the timeline.
struct TraceJob {
  std::int32_t job_id = 0;
  /// Absolute arrival time (nondecreasing across the trace).
  sim::Time arrival{};
  /// Forced departure this long after admission; <= 0 = run to
  /// completion. Models preemption / user cancellation churn.
  sim::Time lifetime{};
  /// dl::zoo model name (validated at engine time).
  std::string model = "resnet32_cifar10";
  int num_workers = 2;
  int local_batch_size = 4;
  /// Synchronous iterations to run (global_step_target = iterations *
  /// num_workers).
  std::int64_t iterations = 40;
};

struct Trace {
  std::vector<TraceJob> jobs;  // sorted by (arrival, job_id)
};

/// Knobs of the trace generator. Every distribution is sampled from
/// sim::Rng streams forked off `seed`, so a config maps to exactly one
/// trace.
struct TraceConfig {
  int num_jobs = 100;
  ArrivalProcess process = ArrivalProcess::kPoisson;
  /// Mean interarrival for kPoisson.
  double mean_interarrival_s = 30.0;
  /// Bounded-Pareto interarrival parameters for kParetoBounded.
  double pareto_alpha = 1.5;
  double pareto_min_s = 2.0;
  double pareto_max_s = 600.0;
  /// Model mix, drawn uniformly; every name must exist in dl::zoo.
  std::vector<std::string> models = {"resnet32_cifar10"};
  /// Worker count drawn uniformly in [min_workers, max_workers].
  int min_workers = 2;
  int max_workers = 8;
  /// Iteration target drawn uniformly in [min_iterations, max_iterations].
  std::int64_t min_iterations = 20;
  std::int64_t max_iterations = 80;
  int local_batch_size = 4;
  /// Fraction of jobs evicted mid-flight; their lifetime is drawn
  /// uniformly in [evict_min_s, evict_max_s].
  double evict_fraction = 0.0;
  double evict_min_s = 30.0;
  double evict_max_s = 300.0;
  std::uint64_t seed = 1;
};

/// Deterministically generates a trace from the config. Throws
/// std::invalid_argument on out-of-range knobs or unknown model names.
Trace generate_trace(const TraceConfig& config);

/// One bounded-Pareto draw (shape `alpha` on [lo, hi]) from `u` in
/// [0, 1). Exposed for unit testing the inverse CDF.
double bounded_pareto(double u, double alpha, double lo, double hi);

/// CSV round-trip: header `job_id,arrival_s,lifetime_s,model,workers,
/// batch,iterations`, times printed at nanosecond precision so
/// parse(trace_csv(t)) == t exactly.
std::string trace_csv(const Trace& trace);

/// Parses a trace CSV. Returns false with a line-numbered message on
/// malformed input. Jobs are sorted by (arrival, job_id); duplicate job
/// ids are rejected.
bool parse_trace_csv(const std::string& text, Trace* out, std::string* error);

/// Parses a comma-separated model mix for configuration surfaces; the
/// special name "mix" expands to the whole dl::zoo. Returns false with a
/// message listing the valid names when one is unknown or the list is
/// empty.
bool parse_model_mix(const std::string& text, std::vector<std::string>* out,
                     std::string* error);

}  // namespace tls::scenario
