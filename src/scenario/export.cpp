#include "scenario/export.hpp"

#include <cstdio>
#include <fstream>

namespace tls::scenario {

namespace {

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

void append_summary(std::string* out, const char* name,
                    const metrics::Summary& s) {
  *out += "    \"";
  *out += name;
  *out += "\": {\"count\": " + std::to_string(s.count);
  *out += ", \"mean\": " + fmt(s.mean);
  *out += ", \"p50\": " + fmt(s.median);
  *out += ", \"p90\": " + fmt(s.p90);
  *out += ", \"p99\": " + fmt(s.p99);
  *out += ", \"min\": " + fmt(s.min);
  *out += ", \"max\": " + fmt(s.max) + "}";
}

}  // namespace

std::string scenario_json(const Result& result) {
  std::string out = "{\n";
  out += "  \"schema\": \"scenario-v1\",\n";
  out += "  \"policy\": \"" + result.policy_name + "\",\n";
  out += "  \"admission\": \"" + result.admission_name + "\",\n";
  out += "  \"seed\": " + std::to_string(result.seed) + ",\n";
  out += "  \"trace_seed\": " + std::to_string(result.trace_seed) + ",\n";
  out += "  \"num_hosts\": " + std::to_string(result.num_hosts) + ",\n";
  out += "  \"horizon_s\": " + fmt(result.horizon_s) + ",\n";
  out += "  \"trace_drained\": ";
  out += result.trace_drained ? "true" : "false";
  out += ",\n";
  out += "  \"counts\": {\"jobs\": " + std::to_string(result.jobs.size());
  out += ", \"completed\": " + std::to_string(result.completed);
  out += ", \"evicted\": " + std::to_string(result.evicted);
  out += ", \"rejected\": " + std::to_string(result.rejected);
  out += ", \"unfinished\": " + std::to_string(result.unfinished) + "},\n";
  out += "  \"summaries\": {\n";
  append_summary(&out, "jct_s", result.jct);
  out += ",\n";
  append_summary(&out, "queue_wait_s", result.queue_wait);
  out += "\n  },\n";
  out += "  \"peak_active_jobs\": " + std::to_string(result.peak_active_jobs) +
         ",\n";
  out += "  \"peak_ps_colocation\": " +
         std::to_string(result.peak_ps_colocation) + ",\n";
  out += "  \"cluster_cpu_util\": " + fmt(result.cluster_cpu_util) + ",\n";
  out += "  \"rotations\": " + std::to_string(result.rotations) + ",\n";
  out += "  \"tc_commands\": " + std::to_string(result.tc_commands) + ",\n";
  out += "  \"sim_events\": " + std::to_string(result.sim_events) + ",\n";
  out += "  \"jobs_detail\": [\n";
  for (std::size_t i = 0; i < result.jobs.size(); ++i) {
    const JobOutcome& o = result.jobs[i];
    out += "    {\"job_id\": " + std::to_string(o.job_id);
    out += ", \"model\": \"" + o.model + "\"";
    out += ", \"workers\": " + std::to_string(o.num_workers);
    out += ", \"iters_target\": " + std::to_string(o.iterations_target);
    out += ", \"iters_done\": " + std::to_string(o.iterations_done);
    out += ", \"arrival_s\": " + fmt(o.arrival_s);
    out += ", \"admit_s\": " + fmt(o.admit_s);
    out += ", \"finish_s\": " + fmt(o.finish_s);
    out += ", \"queue_wait_s\": " + fmt(o.queue_wait_s);
    out += ", \"jct_s\": " + fmt(o.jct_s);
    out += ", \"band\": " + std::to_string(o.band_at_admit);
    out += ", \"status\": \"";
    out += to_string(o.status);
    out += "\"}";
    out += i + 1 < result.jobs.size() ? ",\n" : "\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

std::string scenario_csv(const Result& result) {
  std::string out =
      "job_id,model,workers,iters_target,iters_done,arrival_s,admit_s,"
      "finish_s,queue_wait_s,jct_s,band,status\n";
  for (const JobOutcome& o : result.jobs) {
    out += std::to_string(o.job_id);
    out += ',' + o.model;
    out += ',' + std::to_string(o.num_workers);
    out += ',' + std::to_string(o.iterations_target);
    out += ',' + std::to_string(o.iterations_done);
    out += ',' + fmt(o.arrival_s);
    out += ',' + fmt(o.admit_s);
    out += ',' + fmt(o.finish_s);
    out += ',' + fmt(o.queue_wait_s);
    out += ',' + fmt(o.jct_s);
    out += ',' + std::to_string(o.band_at_admit);
    out += ',';
    out += to_string(o.status);
    out += '\n';
  }
  return out;
}

bool write_file(const std::string& path, const std::string& content,
                std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    *error = "cannot open " + path;
    return false;
  }
  out << content;
  out.flush();
  if (!out) {
    *error = "write failed for " + path;
    return false;
  }
  return true;
}

}  // namespace tls::scenario
