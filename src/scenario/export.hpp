// Scenario result exports: the `scenario-v1` JSON schema and a per-job
// CSV. Formatting is fixed (%.6f for every floating-point field, map-free
// trace-order iteration) so a seeded scenario exports byte-identical
// files across runs and host thread counts — the repo-wide determinism
// contract extended to the dynamic-cluster engine.
#pragma once

#include <string>

#include "scenario/engine.hpp"

namespace tls::scenario {

/// Full result as `scenario-v1` JSON: run metadata, outcome counts,
/// JCT / queue-wait summaries, break-regime indicators (peak band
/// occupancy, rotations, tc churn), and one record per trace job.
std::string scenario_json(const Result& result);

/// Per-job outcomes as CSV, one row per trace entry:
///   job_id,model,workers,iters_target,iters_done,arrival_s,admit_s,
///   finish_s,queue_wait_s,jct_s,band,status
std::string scenario_csv(const Result& result);

/// Writes `content` to `path` (trailing newline not added). Returns false
/// and fills `error` on I/O failure.
bool write_file(const std::string& path, const std::string& content,
                std::string* error);

}  // namespace tls::scenario
