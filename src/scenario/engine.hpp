// The dynamic-cluster scenario engine.
//
// run_scenario drives one long-horizon simulation in which jobs arrive,
// train, and depart (or are evicted) according to a Trace, while the
// online scheduler places them, the admission policy arbitrates tc's
// finite band budget, and the TensorLights controller (re)assigns bands
// as the cluster churns. This is the regime the paper's static testbed
// never reaches: band exhaustion past max_bands colocated PSes, rotation
// thrash under churn, and queueing delay as a first-class metric.
//
// Determinism: the trace is a pure function of TraceConfig::seed, the
// simulation of Config::seed, and every aggregate is accumulated in trace
// order — so a scenario's exported bytes are identical across repeated
// runs and across any host thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/launcher.hpp"
#include "cluster/scheduler.hpp"
#include "metrics/stats.hpp"
#include "net/fabric.hpp"
#include "scenario/trace.hpp"
#include "tensorlights/policy.hpp"

namespace tls::scenario {

struct Config {
  int num_hosts = 12;
  int cores_per_host = 6;
  /// num_hosts is overwritten from the field above at run time.
  net::FabricConfig fabric;
  core::ControllerConfig controller;
  cluster::SchedulerPolicy scheduler = cluster::SchedulerPolicy::kPsAware;
  cluster::AdmissionPolicy admission = cluster::AdmissionPolicy::kShareBand;
  /// PS jobs per host before the admission policy kicks in. -1 (default)
  /// follows controller.max_bands — one job per distinct tc band — and 0
  /// disables the limit entirely.
  int ps_band_limit = -1;
  /// Workload: replay wins when it has jobs, otherwise `trace` is
  /// generated from its own seed.
  TraceConfig trace;
  Trace replay;
  /// Simulator seed (compute noise, TCP weight noise). Deliberately
  /// decoupled from trace.seed so policy comparisons share the workload.
  std::uint64_t seed = 1;
  /// Hard stop; jobs still running or queued then count as unfinished.
  sim::Time time_limit = 4 * 3600 * sim::kSecond;
  /// Period of the occupancy gauges (active jobs, per-host PS/band
  /// counts) in the obs registry; <= 0 disables sampling.
  sim::Time sample_period = 10 * sim::kSecond;
  /// Port-space layout for the dynamic admit path.
  cluster::LaunchConfig launch;
  /// Metrics timeseries CSV destination; empty = no file written.
  std::string metrics_path;
};

enum class JobStatus { kCompleted, kEvicted, kRejected, kUnfinished };

const char* to_string(JobStatus status);

/// Per-job account of what the scenario did with one trace entry.
struct JobOutcome {
  std::int32_t job_id = -1;
  std::string model;
  int num_workers = 0;
  std::int64_t iterations_target = 0;
  std::int64_t iterations_done = 0;
  double arrival_s = 0;
  double admit_s = -1;   ///< -1 = never admitted
  double finish_s = -1;  ///< -1 = still running at the horizon
  /// Arrival-to-admission delay (0 when placed on arrival).
  double queue_wait_s = 0;
  /// Admission-to-completion time; filled for completed and evicted jobs.
  double jct_s = -1;
  /// tc band the job landed in at admission (-1 under FIFO).
  int band_at_admit = -1;
  JobStatus status = JobStatus::kUnfinished;
};

struct Result {
  std::string policy_name;
  std::string admission_name;
  std::uint64_t seed = 0;
  std::uint64_t trace_seed = 0;
  int num_hosts = 0;
  std::vector<JobOutcome> jobs;  // trace order
  std::size_t completed = 0;
  std::size_t evicted = 0;
  std::size_t rejected = 0;
  std::size_t unfinished = 0;
  metrics::Summary jct;         ///< completed jobs only
  metrics::Summary queue_wait;  ///< admitted jobs
  int peak_active_jobs = 0;
  int peak_ps_colocation = 0;
  /// Mean per-host CPU utilization over [0, horizon].
  double cluster_cpu_util = 0;
  std::uint64_t rotations = 0;
  std::uint64_t tc_commands = 0;
  std::uint64_t sim_events = 0;
  double horizon_s = 0;
  /// False when the time limit cut the trace short.
  bool trace_drained = true;
};

/// Runs one scenario to completion (or the time limit). Throws
/// std::invalid_argument on inconsistent configuration (unknown model
/// names, num_hosts < 2, ...).
Result run_scenario(const Config& config);

}  // namespace tls::scenario
